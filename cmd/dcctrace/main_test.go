package main

import (
	"strings"
	"testing"
)

func TestGenStatsSchedulePipeline(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"gen", "-nodes", "60", "-epochs", "10", "-seed", "5"}, nil, &log); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(log.String(), "# greenorbs-sim v1") {
		t.Fatal("log header missing")
	}

	var statsOut strings.Builder
	if err := run([]string{"stats"}, strings.NewReader(log.String()), &statsOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(statsOut.String(), "undirected links") {
		t.Fatalf("stats output unexpected:\n%s", statsOut.String())
	}

	var schedOut strings.Builder
	if err := run([]string{"schedule", "-tau", "4"}, strings.NewReader(log.String()), &schedOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(schedOut.String(), "criterion") {
		t.Fatalf("schedule output unexpected:\n%s", schedOut.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, nil, nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := run([]string{"bogus"}, nil, nil); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"stats"}, strings.NewReader("garbage"), &strings.Builder{}); err == nil {
		t.Fatal("garbage log accepted")
	}
}
