// Command dcctrace drives the GreenOrbs-like packet-log pipeline.
//
// Usage:
//
//	dcctrace gen -nodes 270 -epochs 288 > trace.log   # synthesise a packet log
//	dcctrace stats < trace.log                        # RSSI CDF + extraction stats
//	dcctrace schedule -tau 5 < trace.log              # run DCC on the extracted graph
//
// The stats and schedule subcommands consume a packet log (synthetic here,
// but the format mirrors what a real deployment's collection tier would
// emit) and run the paper's accumulate → threshold → extract pipeline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dcc/internal/core"
	"dcc/internal/stats"
	"dcc/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dcctrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: dcctrace <gen|stats|schedule> [flags]")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:], stdout)
	case "stats":
		return runStats(stdin, stdout)
	case "schedule":
		return runSchedule(args[1:], stdin, stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want gen, stats or schedule)", args[0])
	}
}

func runGen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	var (
		nodes  = fs.Int("nodes", 270, "interior motes")
		epochs = fs.Int("epochs", 288, "collection epochs")
		seed   = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, err := trace.GenerateWithLog(trace.Config{
		Seed:          *seed,
		InteriorNodes: *nodes,
		Epochs:        *epochs,
	}, stdout)
	return err
}

func runStats(stdin io.Reader, stdout io.Writer) error {
	tr, err := trace.ParseLog(stdin)
	if err != nil {
		return err
	}
	values := tr.RSSIValues()
	cdf := stats.NewCDF(values)
	th := tr.ThresholdForFraction(0.8)
	fmt.Fprintf(stdout, "undirected links: %d\n", len(values))
	fmt.Fprintf(stdout, "RSSI quantiles: p5=%.1f p50=%.1f p95=%.1f dBm\n",
		cdf.Quantile(0.05), cdf.Quantile(0.5), cdf.Quantile(0.95))
	fmt.Fprintf(stdout, "80%% retention threshold: %.1f dBm\n", th)
	g := tr.ExtractGraph(th)
	fmt.Fprintf(stdout, "extracted graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	return nil
}

func runSchedule(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("schedule", flag.ContinueOnError)
	var (
		tau  = fs.Int("tau", 4, "confine size")
		seed = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := trace.ParseLog(stdin)
	if err != nil {
		return err
	}
	net, err := tr.Network(tr.ThresholdForFraction(0.8))
	if err != nil {
		return err
	}
	res, err := core.Schedule(net, core.Options{Tau: *tau, Seed: *seed, Mode: core.Parallel})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "τ=%d: kept %d of %d internal nodes (deleted %d) in %d tests\n",
		*tau, len(res.KeptInternal), len(res.KeptInternal)+len(res.Deleted),
		len(res.Deleted), res.Stats.Tests)
	ok, err := core.VerifyConfine(res.Final, net.BoundaryCycles, *tau)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "cycle-partition criterion: %v\n", ok)
	return nil
}
