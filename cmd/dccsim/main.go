// Command dccsim regenerates the paper's evaluation figures from the
// command line.
//
// Usage:
//
//	dccsim -fig all                # every figure at quick scale
//	dccsim -fig 3 -full -runs 100  # paper-scale Figure 3 (slow)
//	dccsim -fig 4 -nodes 800
//
// Each figure prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the expected shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dcc/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dccsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dccsim", flag.ContinueOnError)
	var (
		fig     = fs.String("fig", "all", "figure to regenerate: 1..7, 'engines', 'loss', 'reliability', 'rotation', 'scenarios', 'stability', 'streaming', comma-separated, or 'all'")
		seed    = fs.Int64("seed", 1, "random seed")
		runs    = fs.Int("runs", 0, "random repetitions (0 = preset default)")
		nodes   = fs.Int("nodes", 0, "deployment size (0 = preset default)")
		maxTau  = fs.Int("maxtau", 0, "largest confine size for Figure 3 (0 = preset default)")
		full    = fs.Bool("full", false, "paper-scale presets (1600 nodes; slow) instead of quick presets")
		workers = fs.Int("workers", 0, "concurrent Monte-Carlo runs (0 = all CPUs, 1 = sequential; output is identical for any value)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{
		Seed:    *seed,
		Runs:    *runs,
		Nodes:   *nodes,
		MaxTau:  *maxTau,
		Quick:   !*full,
		Workers: *workers,
	}

	want := map[string]bool{}
	all := *fig == "all"
	if !all {
		for _, f := range strings.Split(*fig, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	type runner struct {
		id string
		fn func() error
	}
	w := os.Stdout
	runners := []runner{
		{"1", func() error { _, err := experiments.Figure1(w); return err }},
		{"2", func() error { _, err := experiments.Figure2(w, cfg); return err }},
		{"3", func() error { _, err := experiments.Figure3(w, cfg); return err }},
		{"4", func() error { _, err := experiments.Figure4(w, cfg); return err }},
		{"5", func() error { _, err := experiments.Figure5(w, cfg); return err }},
		{"6", func() error { _, err := experiments.Figure6(w, cfg); return err }},
		{"7", func() error { _, err := experiments.Figure7(w, cfg); return err }},
		{"engines", func() error { _, err := experiments.AblationEngines(w, cfg); return err }},
		{"loss", func() error { _, err := experiments.AblationLoss(w, cfg); return err }},
		{"reliability", func() error { _, err := experiments.AblationReliability(w, cfg); return err }},
		{"rotation", func() error { _, err := experiments.AblationRotation(w, cfg); return err }},
		{"quasiudg", func() error { _, err := experiments.AblationQuasiUDG(w, cfg); return err }},
		{"scenarios", func() error { _, err := experiments.ScenarioOracles(w, cfg); return err }},
		{"stability", func() error { _, err := experiments.ScenarioStability(w, cfg); return err }},
		{"streaming", func() error {
			if _, err := experiments.Streaming(w, cfg); err != nil {
				return err
			}
			benchNodes, benchEvents := 300, 400
			if *full {
				benchNodes, benchEvents = 1000, 2000
			}
			if *nodes > 0 {
				benchNodes = *nodes
			}
			return streamingThroughput(w, *seed, benchNodes, benchEvents)
		}},
	}
	ran := 0
	for _, r := range runners {
		if !all && !want[r.id] {
			continue
		}
		start := time.Now()
		if err := r.fn(); err != nil {
			return fmt.Errorf("figure %s: %w", r.id, err)
		}
		fmt.Fprintf(w, "  (figure %s: %v)\n\n", r.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no figure matched %q (want 1..7 or 'all')", *fig)
	}
	return nil
}
