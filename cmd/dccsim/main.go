// Command dccsim regenerates the paper's evaluation figures from the
// command line.
//
// Usage:
//
//	dccsim -fig all                # every figure at quick scale
//	dccsim -fig 3 -full -runs 100  # paper-scale Figure 3 (slow)
//	dccsim -fig 4 -nodes 800
//	dccsim -fig all -metrics m.ndjson -http 127.0.0.1:6060
//
// Each figure prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the expected shapes. Telemetry is on by default and
// never changes figure output (the observability contract, DESIGN.md §14);
// -metrics dumps the final registry as NDJSON and -http serves /metrics,
// /debug/vars and /debug/pprof while the figures run.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"dcc/internal/experiments"
	"dcc/internal/runner"
	"dcc/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dccsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dccsim", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", "figure to regenerate: 1..7, 'engines', 'loss', 'reliability', 'rotation', 'scenarios', 'stability', 'streaming', 'sharded', comma-separated, or 'all'")
		seed     = fs.Int64("seed", 1, "random seed")
		runs     = fs.Int("runs", 0, "random repetitions (0 = preset default)")
		nodes    = fs.Int("nodes", 0, "deployment size (0 = preset default)")
		maxTau   = fs.Int("maxtau", 0, "largest confine size for Figure 3 (0 = preset default)")
		full     = fs.Bool("full", false, "paper-scale presets (1600 nodes; slow) instead of quick presets")
		workers  = fs.Int("workers", 0, "concurrent Monte-Carlo runs (0 = all CPUs, 1 = sequential; output is identical for any value)")
		telOn    = fs.Bool("telemetry", true, "collect metrics and spans while figures run (never changes figure output)")
		timings  = fs.Bool("timings", true, "print per-figure wall-clock durations (needs -telemetry)")
		shardN   = fs.Int("shardnodes", 0, "run a shard-engine headline deployment of this many interior nodes after the sharded figure's scaling sweep (0 = sweep only)")
		metrics  = fs.String("metrics", "", "write the final metrics registry to this file as NDJSON (schema dcc-metrics-v1)")
		httpAddr = fs.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address while figures run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg, err := newRegistry(*telOn, *metrics, *httpAddr)
	if err != nil {
		return err
	}
	runner.Instrument(reg)
	defer runner.Instrument(nil)
	cfg := experiments.Config{
		Seed:      *seed,
		Runs:      *runs,
		Nodes:     *nodes,
		MaxTau:    *maxTau,
		Quick:     !*full,
		Workers:   *workers,
		Telemetry: reg,
	}

	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: reg.Handler()}
		go func() { _ = srv.Serve(ln) }()
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(w, "[metrics] serving on http://%s/metrics\n\n", ln.Addr())
	}

	want := map[string]bool{}
	all := *fig == "all"
	if !all {
		for _, f := range strings.Split(*fig, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	type figRunner struct {
		id string
		fn func() error
	}
	runners := []figRunner{
		{"1", func() error { _, err := experiments.Figure1(w); return err }},
		{"2", func() error { _, err := experiments.Figure2(w, cfg); return err }},
		{"3", func() error { _, err := experiments.Figure3(w, cfg); return err }},
		{"4", func() error { _, err := experiments.Figure4(w, cfg); return err }},
		{"5", func() error { _, err := experiments.Figure5(w, cfg); return err }},
		{"6", func() error { _, err := experiments.Figure6(w, cfg); return err }},
		{"7", func() error { _, err := experiments.Figure7(w, cfg); return err }},
		{"engines", func() error { _, err := experiments.AblationEngines(w, cfg); return err }},
		{"loss", func() error { _, err := experiments.AblationLoss(w, cfg); return err }},
		{"reliability", func() error { _, err := experiments.AblationReliability(w, cfg); return err }},
		{"rotation", func() error { _, err := experiments.AblationRotation(w, cfg); return err }},
		{"quasiudg", func() error { _, err := experiments.AblationQuasiUDG(w, cfg); return err }},
		{"scenarios", func() error { _, err := experiments.ScenarioOracles(w, cfg); return err }},
		{"stability", func() error { _, err := experiments.ScenarioStability(w, cfg); return err }},
		{"streaming", func() error {
			if _, err := experiments.Streaming(w, cfg); err != nil {
				return err
			}
			benchNodes, benchEvents := 300, 400
			if *full {
				benchNodes, benchEvents = 1000, 2000
			}
			if *nodes > 0 {
				benchNodes = *nodes
			}
			return streamingThroughput(w, reg, *seed, benchNodes, benchEvents)
		}},
		{"sharded", func() error {
			if _, err := experiments.Sharded(w, cfg); err != nil {
				return err
			}
			return shardedScaling(w, reg, *seed, *shardN, *full)
		}},
	}
	ran := 0
	for _, r := range runners {
		if !all && !want[r.id] {
			continue
		}
		sp := reg.StartSpan("sim.figure." + r.id)
		if err := r.fn(); err != nil {
			return fmt.Errorf("figure %s: %w", r.id, err)
		}
		if d := time.Duration(sp.End()); *timings && reg != nil {
			fmt.Fprintf(w, "  (figure %s: %v)\n\n", r.id, d.Round(time.Millisecond))
		} else {
			fmt.Fprintln(w)
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no figure matched %q (want 1..7 or 'all')", *fig)
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			return err
		}
		if err := reg.WriteNDJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "[metrics] wrote %s\n", *metrics)
	}
	return nil
}

// newRegistry builds the process-wide registry, or nil (collection
// disabled) with every dependent flag validated up front.
func newRegistry(enabled bool, metrics, httpAddr string) (*telemetry.Registry, error) {
	if !enabled {
		if metrics != "" {
			return nil, fmt.Errorf("-metrics requires -telemetry")
		}
		if httpAddr != "" {
			return nil, fmt.Errorf("-http requires -telemetry")
		}
		return nil, nil
	}
	return telemetry.NewWithClock(telemetry.WallClock{}), nil
}
