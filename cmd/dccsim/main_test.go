package main

import "testing"

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "42"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunFigure1(t *testing.T) {
	// Figure 1 is instant and exercises the full wiring.
	if err := run([]string{"-fig", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunStreaming(t *testing.T) {
	// The streaming figure end to end at a tiny scale: the deterministic
	// convergence/recovery half plus the wall-clock replay driver.
	if err := run([]string{"-fig", "streaming", "-nodes", "60", "-runs", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkersFlag(t *testing.T) {
	// -workers reaches the engine; any value must be accepted and produce
	// the same figure (byte equivalence is covered in internal/experiments).
	for _, w := range []string{"1", "4"} {
		if err := run([]string{"-fig", "6", "-nodes", "60", "-runs", "1", "-workers", w}); err != nil {
			t.Fatalf("workers=%s: %v", w, err)
		}
	}
}
