package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "42"}, io.Discard); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunFigure1(t *testing.T) {
	// Figure 1 is instant and exercises the full wiring.
	if err := run([]string{"-fig", "1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunStreaming(t *testing.T) {
	// The streaming figure end to end at a tiny scale: the deterministic
	// convergence/recovery half plus the wall-clock replay driver.
	if err := run([]string{"-fig", "streaming", "-nodes", "60", "-runs", "1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunSharded(t *testing.T) {
	// The sharded figure end to end at a tiny scale: the deterministic
	// equivalence half plus the scaling sweep, with -shardnodes reaching
	// the headline branch.
	var out strings.Builder
	if err := run([]string{"-fig", "sharded", "-nodes", "60", "-runs", "1", "-shardnodes", "500"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"[shard-bench]", "[shard-headline]", "byte-identical schedules: 3/3"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("sharded figure output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunWorkersFlag(t *testing.T) {
	// -workers reaches the engine; any value must be accepted and produce
	// the same figure (byte equivalence is covered in internal/experiments).
	for _, w := range []string{"1", "4"} {
		if err := run([]string{"-fig", "6", "-nodes", "60", "-runs", "1", "-workers", w}, io.Discard); err != nil {
			t.Fatalf("workers=%s: %v", w, err)
		}
	}
}

func TestTelemetryOffMatchesOn(t *testing.T) {
	// The observability contract at the CLI surface: with the wall-clock
	// timing lines suppressed, enabling collection must not change a byte.
	var off, on strings.Builder
	base := []string{"-fig", "1,6", "-nodes", "60", "-runs", "1", "-timings=false"}
	if err := run(append([]string{"-telemetry=false"}, base...), &off); err != nil {
		t.Fatal(err)
	}
	if err := run(base, &on); err != nil {
		t.Fatal(err)
	}
	if off.String() != on.String() {
		t.Fatalf("telemetry changed CLI output\n--- off ---\n%s\n--- on ---\n%s", off.String(), on.String())
	}
}

func TestRunMetricsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ndjson")
	var out strings.Builder
	if err := run([]string{"-fig", "6", "-nodes", "60", "-runs", "1", "-metrics", path}, &out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dump := string(b)
	for _, want := range []string{`"schema":"dcc-metrics-v1"`, "core.runs", "sim.figure.6"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, dump)
		}
	}
	if !strings.Contains(out.String(), "[metrics] wrote "+path) {
		t.Fatalf("missing metrics confirmation line in output:\n%s", out.String())
	}
}

func TestRunHTTPEndpoint(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "1", "-http", "127.0.0.1:0"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "[metrics] serving on http://127.0.0.1:") {
		t.Fatalf("missing serving line in output:\n%s", out.String())
	}
}

func TestFlagsRequireTelemetry(t *testing.T) {
	for _, args := range [][]string{
		{"-telemetry=false", "-metrics", "x.ndjson", "-fig", "1"},
		{"-telemetry=false", "-http", "127.0.0.1:0", "-fig", "1"},
	} {
		if err := run(args, io.Discard); err == nil {
			t.Fatalf("args %v: want error, got nil", args)
		}
	}
}
