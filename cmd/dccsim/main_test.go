package main

import "testing"

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "42"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunFigure1(t *testing.T) {
	// Figure 1 is instant and exercises the full wiring.
	if err := run([]string{"-fig", "1"}); err != nil {
		t.Fatal(err)
	}
}
