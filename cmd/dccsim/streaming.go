package main

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"dcc"
	"dcc/internal/core"
	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/stream"
)

// streamingThroughput is the wall-clock half of the streaming figure (the
// convergence/recovery half is experiments.Streaming, which is
// deterministic and timing-free). It replays one mutation stream twice:
//
//   - stepped: every event is applied and the cover re-elected immediately
//     — the per-event update-latency profile (p99 reported);
//   - batched: events are ingested under the engine's coalescing
//     backpressure with a bounded-staleness consumer polling every 50
//     events — the sustained events/sec figure.
//
// A from-scratch canonical schedule of the final topology is timed as the
// baseline an operator would pay per poll without incremental maintenance.
// The [stream-bench] line is machine-readable; scripts/bench.sh turns it
// into BENCH_stream.json.
func streamingThroughput(w io.Writer, seed int64, nodes, events int) error {
	dep, err := dcc.Deploy(dcc.DeployOptions{
		Nodes: nodes, AvgDegree: 25, Gamma: math.Sqrt(3), Seed: seed,
	})
	if err != nil {
		return err
	}
	net := dep.Network()
	pos := make(map[graph.NodeID]geom.Point, len(dep.Points))
	for i, p := range dep.Points {
		pos[graph.NodeID(i)] = p
	}
	cfg := stream.Config{Tau: 4, Seed: seed, Radius: dep.Rc, Positions: pos}

	// Pre-generate the stream so synthesis cost stays out of the timings.
	mut := stream.NewMutator(net, cfg, seed+1)
	evs := make([]stream.Event, events)
	for i := range evs {
		evs[i] = mut.Next()
	}

	// Stepped replay: per-event latency including re-election.
	eng, err := stream.New(net, cfg)
	if err != nil {
		return err
	}
	lat := make([]time.Duration, 0, events)
	for _, ev := range evs {
		t0 := time.Now()
		if err := eng.Step(ev); err != nil {
			return fmt.Errorf("streaming bench: %w", err)
		}
		eng.Cover()
		lat = append(lat, time.Since(t0))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50 := lat[len(lat)/2]
	p99 := lat[len(lat)*99/100]

	// Batched replay: sustained ingest with a bounded-staleness consumer.
	eng2, err := stream.New(net, cfg)
	if err != nil {
		return err
	}
	t0 := time.Now()
	for i, ev := range evs {
		if err := eng2.Ingest(ev); err != nil {
			return fmt.Errorf("streaming bench: %w", err)
		}
		if (i+1)%50 == 0 {
			eng2.Cover()
		}
	}
	eng2.Cover()
	batched := time.Since(t0)
	perSec := float64(events) / batched.Seconds()

	// Baseline: one from-scratch canonical schedule of the final topology —
	// the per-poll cost without incremental maintenance.
	final := eng2.MaterializedNetwork()
	t0 = time.Now()
	if _, err := core.Schedule(final, core.Options{Tau: 4, Seed: seed, Mode: core.Canonical}); err != nil {
		return err
	}
	batch := time.Since(t0)

	st := eng2.Stats()
	fmt.Fprintf(w, "  throughput: %.0f events/sec sustained (batched, coalesced %d of %d)\n",
		perSec, st.Coalesced, events)
	fmt.Fprintf(w, "  per-event latency (stepped, with re-election): p50 %v  p99 %v\n",
		p50.Round(time.Microsecond), p99.Round(time.Microsecond))
	fmt.Fprintf(w, "  from-scratch canonical schedule of the final topology: %v\n",
		batch.Round(time.Microsecond))
	fmt.Fprintf(w, "  [stream-bench] events_per_sec=%.0f p50_event_us=%.0f p99_event_us=%.0f batch_schedule_us=%.0f events=%d nodes=%d\n",
		perSec,
		float64(p50.Nanoseconds())/1e3,
		float64(p99.Nanoseconds())/1e3,
		float64(batch.Nanoseconds())/1e3,
		events, nodes)
	return nil
}
