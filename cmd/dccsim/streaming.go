package main

import (
	"fmt"
	"io"
	"math"
	"time"

	"dcc"
	"dcc/internal/core"
	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/stream"
	"dcc/internal/telemetry"
)

// streamingThroughput is the wall-clock half of the streaming figure (the
// convergence/recovery half is experiments.Streaming, which is
// deterministic and timing-free). It replays one mutation stream twice:
//
//   - stepped: every event is applied and the cover re-elected immediately
//     under a dccsim.stream_step span — the per-event update-latency
//     profile (p50/p99 read back from the span's timing histogram);
//   - batched: events are ingested under the engine's coalescing
//     backpressure with a bounded-staleness consumer polling every 50
//     events — the sustained events/sec figure (dccsim.stream_batch span).
//
// A from-scratch canonical schedule of the final topology is timed as the
// baseline an operator would pay per poll without incremental maintenance
// (dccsim.batch_schedule span). All timing flows through the registry's
// clock; the percentiles are histogram-bucket upper edges, so they are
// conservative. The [stream-bench] line is machine-readable;
// scripts/bench.sh turns it into BENCH_stream.json.
func streamingThroughput(w io.Writer, reg *telemetry.Registry, seed int64, nodes, events int) error {
	if reg == nil {
		// -telemetry=false: the bench still needs a clock, so it runs on a
		// private registry instead of silently reporting zeros.
		reg = telemetry.NewWithClock(telemetry.WallClock{})
	}
	dep, err := dcc.Deploy(dcc.DeployOptions{
		Nodes: nodes, AvgDegree: 25, Gamma: math.Sqrt(3), Seed: seed,
	})
	if err != nil {
		return err
	}
	net := dep.Network()
	pos := make(map[graph.NodeID]geom.Point, len(dep.Points))
	for i, p := range dep.Points {
		pos[graph.NodeID(i)] = p
	}
	cfg := stream.Config{Tau: 4, Seed: seed, Radius: dep.Rc, Positions: pos, Telemetry: reg}

	// Pre-generate the stream so synthesis cost stays out of the timings.
	mut := stream.NewMutator(net, cfg, seed+1)
	evs := make([]stream.Event, events)
	for i := range evs {
		evs[i] = mut.Next()
	}

	// Stepped replay: per-event latency including re-election.
	eng, err := stream.New(net, cfg)
	if err != nil {
		return err
	}
	stepHist := reg.TimingHistogram("dccsim.stream_step")
	for _, ev := range evs {
		sp := reg.StartSpan("dccsim.stream_step")
		if err := eng.Step(ev); err != nil {
			return fmt.Errorf("streaming bench: %w", err)
		}
		eng.Cover()
		sp.End()
	}
	p50 := time.Duration(stepHist.Quantile(0.5))
	p99 := time.Duration(stepHist.Quantile(0.99))

	// Batched replay: sustained ingest with a bounded-staleness consumer.
	eng2, err := stream.New(net, cfg)
	if err != nil {
		return err
	}
	spBatch := reg.StartSpan("dccsim.stream_batch")
	for i, ev := range evs {
		if err := eng2.Ingest(ev); err != nil {
			return fmt.Errorf("streaming bench: %w", err)
		}
		if (i+1)%50 == 0 {
			eng2.Cover()
		}
	}
	eng2.Cover()
	batched := time.Duration(spBatch.End())
	perSec := float64(events) / batched.Seconds()

	// Baseline: one from-scratch canonical schedule of the final topology —
	// the per-poll cost without incremental maintenance.
	final := eng2.MaterializedNetwork()
	spSched := reg.StartSpan("dccsim.batch_schedule")
	if _, err := core.Schedule(final, core.Options{
		Tau: 4, Seed: seed, Mode: core.Canonical, Telemetry: reg,
	}); err != nil {
		return err
	}
	batch := time.Duration(spSched.End())

	st := eng2.Stats()
	fmt.Fprintf(w, "  throughput: %.0f events/sec sustained (batched, coalesced %d of %d)\n",
		perSec, st.Coalesced, events)
	fmt.Fprintf(w, "  per-event latency (stepped, with re-election): p50 %v  p99 %v\n",
		p50.Round(time.Microsecond), p99.Round(time.Microsecond))
	fmt.Fprintf(w, "  from-scratch canonical schedule of the final topology: %v\n",
		batch.Round(time.Microsecond))
	fmt.Fprintf(w, "  [stream-bench] events_per_sec=%.0f p50_event_us=%.0f p99_event_us=%.0f batch_schedule_us=%.0f events=%d nodes=%d\n",
		perSec,
		float64(p50.Nanoseconds())/1e3,
		float64(p99.Nanoseconds())/1e3,
		float64(batch.Nanoseconds())/1e3,
		events, nodes)
	return nil
}
