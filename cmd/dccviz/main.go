// Command dccviz renders networks and coverage schedules as SVG — the
// visual counterpart of the paper's Figures 2 and 7.
//
// Usage:
//
//	dccviz -nodes 400 -taus 3,4,5,6 -o fig2      # random UDG deployment
//	dccviz -trace -taus 3,5,7 -o fig7            # GreenOrbs-like trace
//
// One SVG file is written per τ (e.g. fig2-tau4.svg), plus the original
// network (fig2-orig.svg).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dcc"
	"dcc/internal/core"
	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/trace"
	"dcc/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dccviz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dccviz", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 300, "interior nodes of the random deployment")
		seed     = fs.Int64("seed", 1, "random seed")
		tausFlag = fs.String("taus", "3,4,5,6", "comma-separated confine sizes")
		out      = fs.String("o", "network", "output file prefix")
		useTrace = fs.Bool("trace", false, "use the GreenOrbs-like trace topology")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var taus []int
	for _, s := range strings.Split(*tausFlag, ",") {
		tau, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad tau %q: %w", s, err)
		}
		taus = append(taus, tau)
	}

	var (
		net core.Network
		pos map[graph.NodeID]geom.Point
	)
	if *useTrace {
		tr := trace.Generate(trace.Config{Seed: *seed, InteriorNodes: *nodes})
		n, err := tr.Network(tr.ThresholdForFraction(0.8))
		if err != nil {
			return err
		}
		net = n
		pos = make(map[graph.NodeID]geom.Point, len(tr.Pts))
		for i, p := range tr.Pts {
			pos[graph.NodeID(i)] = p
		}
	} else {
		dep, err := dcc.Deploy(dcc.DeployOptions{Nodes: *nodes, Seed: *seed})
		if err != nil {
			return err
		}
		net = dep.Network()
		pos = make(map[graph.NodeID]geom.Point, len(dep.Points))
		for i, p := range dep.Points {
			pos[graph.NodeID(i)] = p
		}
	}

	render := func(name, title string, g *graph.Graph, deleted []graph.NodeID) error {
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }() // error path only; success path checks Close below
		scene := viz.Scene{
			G:          g,
			Pos:        pos,
			Boundary:   net.Boundary,
			Deleted:    deleted,
			DeletedPos: pos,
			Title:      title,
		}
		if err := viz.Render(f, scene, viz.Style{}); err != nil {
			return err
		}
		return f.Close()
	}

	orig := fmt.Sprintf("%s-orig.svg", *out)
	if err := render(orig, fmt.Sprintf("original network (n=%d)", net.G.NumNodes()), net.G, nil); err != nil {
		return err
	}
	fmt.Println("wrote", orig)

	for _, tau := range taus {
		res, err := core.Schedule(net, core.Options{Tau: tau, Seed: *seed, Mode: core.Parallel})
		if err != nil {
			return err
		}
		name := fmt.Sprintf("%s-tau%d.svg", *out, tau)
		title := fmt.Sprintf("τ=%d confine coverage: %d nodes kept, %d deleted",
			tau, len(res.Kept), len(res.Deleted))
		if err := render(name, title, res.Final, res.Deleted); err != nil {
			return err
		}
		fmt.Println("wrote", name)
	}
	return nil
}
