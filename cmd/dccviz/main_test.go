package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRendersSVGs(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "net")
	err := run([]string{"-nodes", "60", "-seed", "3", "-taus", "3", "-o", prefix})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{prefix + "-orig.svg", prefix + "-tau3.svg"} {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("missing output %s: %v", name, err)
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Fatalf("%s is not an SVG", name)
		}
	}
}

func TestRunRejectsBadTaus(t *testing.T) {
	if err := run([]string{"-taus", "three"}); err == nil {
		t.Fatal("non-numeric tau accepted")
	}
}
