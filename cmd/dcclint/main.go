// Command dcclint runs the repository's determinism & safety analyzers
// (internal/lint) over the given packages and exits nonzero on findings.
//
// Usage:
//
//	dcclint [-list] [-json] [-analyzers a,b,...] [packages]
//
// Packages default to ./... resolved from the current directory; the
// patterns understood are "./...", "./dir" and "./dir/...". Typical use,
// from the module root:
//
//	go run ./cmd/dcclint ./...
//	go run ./cmd/dcclint -json ./... | jq .analyzer
//
// With -json each finding is one NDJSON object on stdout:
//
//	{"file":"internal/core/core.go","line":12,"col":2,"analyzer":"maprange","message":"..."}
//
// Findings are ordered by file, line, column, then analyzer name, so two
// runs over the same tree produce byte-identical output. Exit status:
// 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dcc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the NDJSON wire shape of one finding. Field order is fixed
// by the struct, so output is stable across runs and Go versions.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("dcclint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list analyzers and exit")
	asJSON := flags.Bool("json", false, "emit findings as NDJSON on stdout")
	names := flags.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := lint.Analyzers()
	if *names != "" {
		var err error
		analyzers, err = lint.AnalyzersByName(*names)
		if err != nil {
			fmt.Fprintln(stderr, "dcclint:", err)
			return 2
		}
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "dcclint:", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "dcclint:", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	enc := json.NewEncoder(stdout)
	for _, d := range diags {
		// Report paths relative to the working directory when possible.
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			d.Pos.Filename = rel
		}
		if *asJSON {
			if err := enc.Encode(jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintln(stderr, "dcclint:", err)
				return 2
			}
		} else {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "dcclint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
