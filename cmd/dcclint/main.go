// Command dcclint runs the repository's determinism & safety analyzers
// (internal/lint) over the given packages and exits nonzero on findings.
//
// Usage:
//
//	dcclint [-list] [packages]
//
// Packages default to ./... resolved from the current directory; the
// patterns understood are "./...", "./dir" and "./dir/...". Typical use,
// from the module root:
//
//	go run ./cmd/dcclint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dcc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	flags := flag.NewFlagSet("dcclint", flag.ContinueOnError)
	list := flags.Bool("list", false, "list analyzers and exit")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcclint:", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcclint:", err)
		return 2
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	for _, d := range diags {
		// Report paths relative to the working directory when possible.
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dcclint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
