package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcc/internal/lint"
)

// TestSelfLint runs the full analyzer suite over the repository's own
// source and fails on any finding, so the tree stays lint-clean without
// external CI. A violation anywhere in shipped code (an unsorted map range
// in a deterministic package, a global rand call, a wall-clock read in the
// simulator, a dropped error) fails `go test ./...` directly.
func TestSelfLint(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := lint.FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("dcclint found %d violation(s) in the tree; fix them or add a reasoned waiver", len(diags))
	}
}

// tempModule writes a throwaway module and chdirs into it for the duration
// of the test, since run() resolves patterns from the working directory.
func tempModule(t *testing.T, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.22\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	prev, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(prev); err != nil {
			t.Fatal(err)
		}
	})
}

const violatingSrc = `package scratch

import "os"

func Probe() {
	os.Remove("x")
}
`

// TestRunFindingsExitOne: findings go to stdout, the count to stderr, and
// the process exits 1.
func TestRunFindingsExitOne(t *testing.T) {
	tempModule(t, map[string]string{"a.go": violatingSrc})
	var out, errw bytes.Buffer
	if code := run([]string{"./..."}, &out, &errw); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "droppederr") {
		t.Errorf("stdout missing the finding: %q", out.String())
	}
	if !strings.Contains(errw.String(), "1 finding(s)") {
		t.Errorf("stderr missing the count: %q", errw.String())
	}
}

// TestRunJSON: -json emits one NDJSON object per finding with the stable
// five-field shape.
func TestRunJSON(t *testing.T) {
	tempModule(t, map[string]string{"a.go": violatingSrc})
	var out, errw bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errw); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errw.String())
	}
	var got []jsonDiag
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		var d jsonDiag
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		got = append(got, d)
	}
	if len(got) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(got), got)
	}
	d := got[0]
	if d.File != "a.go" || d.Line != 6 || d.Col != 2 || d.Analyzer != "droppederr" || d.Message == "" {
		t.Errorf("unexpected finding: %+v", d)
	}
}

// TestRunCleanExitZero: a clean tree produces no output and exit 0.
func TestRunCleanExitZero(t *testing.T) {
	tempModule(t, map[string]string{"a.go": "package scratch\n\nfunc OK() int { return 1 }\n"})
	var out, errw bytes.Buffer
	if code := run([]string{"./..."}, &out, &errw); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, errw.String())
	}
	if out.Len() != 0 || errw.Len() != 0 {
		t.Errorf("clean run produced output: stdout=%q stderr=%q", out.String(), errw.String())
	}
}

// TestRunLoadErrorExitTwo: an unparseable tree is a load failure, not a
// finding.
func TestRunLoadErrorExitTwo(t *testing.T) {
	tempModule(t, map[string]string{"a.go": "package scratch\n\nfunc Broken( {\n"})
	var out, errw bytes.Buffer
	if code := run([]string{"./..."}, &out, &errw); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "dcclint:") {
		t.Errorf("stderr missing the load error: %q", errw.String())
	}
}

// TestRunAnalyzersFlag: -analyzers restricts the run, and an unknown name
// is a usage error.
func TestRunAnalyzersFlag(t *testing.T) {
	tempModule(t, map[string]string{"a.go": violatingSrc})
	var out, errw bytes.Buffer
	if code := run([]string{"-analyzers", "wallclock", "./..."}, &out, &errw); code != 0 {
		t.Fatalf("filtered exit = %d, want 0; stdout: %s", code, out.String())
	}
	out.Reset()
	errw.Reset()
	if code := run([]string{"-analyzers", "bogus", "./..."}, &out, &errw); code != 2 {
		t.Fatalf("unknown analyzer exit = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "unknown analyzer") {
		t.Errorf("stderr missing the unknown-analyzer error: %q", errw.String())
	}
}

// TestRunList: -list names every registered analyzer.
func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	lines := strings.Count(out.String(), "\n")
	if want := len(lint.Analyzers()); lines != want {
		t.Errorf("-list printed %d lines, want %d:\n%s", lines, want, out.String())
	}
	for _, name := range []string{"seedflow", "streamid", "barrier", "hotalloc"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}
