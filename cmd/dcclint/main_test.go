package main

import (
	"os"
	"path/filepath"
	"testing"

	"dcc/internal/lint"
)

// TestSelfLint runs the full analyzer suite over the repository's own
// source and fails on any finding, so the tree stays lint-clean without
// external CI. A violation anywhere in shipped code (an unsorted map range
// in a deterministic package, a global rand call, a wall-clock read in the
// simulator, a dropped error) fails `go test ./...` directly.
func TestSelfLint(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := lint.FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("dcclint found %d violation(s) in the tree; fix them or add a reasoned waiver", len(diags))
	}
}
