#!/bin/sh
# Regenerates the data recorded in EXPERIMENTS.md.
#
# Scale note: the paper uses 1600 nodes and 100 runs per point; on a
# single-core machine this script defaults to 800 nodes and 3 runs, which
# reproduces every reported shape in ~30-60 minutes. Override via NODES,
# RUNS, MAXTAU, or set FIGARGS=-full for paper-scale presets.
set -e
cd "$(dirname "$0")/.."
go build ./...
go run ./cmd/dccsim -fig all -nodes "${NODES:-800}" -runs "${RUNS:-3}" -maxtau "${MAXTAU:-9}" -seed 1 ${FIGARGS:-}
