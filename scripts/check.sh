#!/bin/sh
# Pre-PR gate: formatting, vet, build, determinism lint, race detector,
# and the dccdebug deep-assertion test run. Everything here must pass
# before a change ships (see README "Development").
set -e
cd "$(dirname "$0")/.."

echo '== gofmt'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo '== go vet'
go vet ./...

echo '== go build'
go build ./...

echo '== dcclint'
go run ./cmd/dcclint ./...

echo '== go test -race'
go test -race ./...

echo '== go test -tags dccdebug'
go test -tags dccdebug ./...

echo 'check.sh: all gates passed'
