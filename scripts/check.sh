#!/bin/sh
# Pre-PR gate: formatting, vet, build, determinism lint, race detector,
# the dccdebug deep-assertion test run, a repeated race run of the worker
# pool, a chaos smoke (fault-injection matrix under race + deep
# assertions), and a short fuzz smoke of every fuzz target. Everything
# here must pass before a change ships (see README "Development").
set -e
cd "$(dirname "$0")/.."

# Per-target fuzz budget; CI trims it (see .github/workflows/check.yml).
FUZZTIME="${FUZZTIME:-5s}"

echo '== gofmt'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo '== go vet'
go vet ./...

echo '== go build'
go build ./...

echo '== dcclint'
go run ./cmd/dcclint ./...

echo '== go test -race'
go test -race -timeout 30m ./...

echo '== go test -tags dccdebug'
go test -tags dccdebug ./...

echo '== cache consistency smoke (deep assertions)'
# The incremental deletability engine with its dccdebug cross-checks armed:
# every cached verdict is compared against fresh recomputation, and every
# Commit/Remove is followed by a dirty-set audit. The reference regression
# pins the cache-backed schedulers to the pre-cache engines byte for byte.
go test -tags dccdebug -run '^TestCache|^FuzzCacheConsistency$' ./internal/vpt
go test -tags dccdebug -run 'MatchesReference$' ./internal/core

echo '== scenario oracle smoke (-short)'
# The ground-truth catalogue against the pipeline: closed-form oracles,
# threshold crossings, and the DCC-vs-HGC differential (DESIGN.md §12).
go test -short -run '^TestCatalogueOracles$|^TestThresholdCrossing$|^TestRipsRelaxation$|^TestDifferentialDCCvsHGC$' ./internal/scenario

echo '== coverage floor'
# Per-package statement coverage against the committed floors. The -short
# run keeps this pass cheap; floors live in scripts/coverage_floor.txt.
cover_out=$(go test -short -cover ./...)
echo "$cover_out" | awk '
    NR == FNR {
        if ($0 !~ /^#/ && NF == 2) floor[$1] = $2
        next
    }
    $1 == "ok" {
        pct = ""
        for (i = 1; i <= NF; i++) if ($i ~ /%$/) { pct = $i; sub(/%/, "", pct) }
        if (pct == "") next
        seen[$2] = 1
        if ($2 in floor && pct + 0 < floor[$2] + 0) {
            printf "coverage: %s at %s%% is below the committed floor %s%%\n", $2, pct, floor[$2]
            fail = 1
        }
    }
    END {
        for (p in floor) if (!(p in seen)) {
            printf "coverage: floor lists %s but go test reported no coverage for it\n", p
            fail = 1
        }
        exit fail
    }
' scripts/coverage_floor.txt -

echo '== runner race (repeated)'
go test -race -count=2 ./internal/runner

echo '== chaos smoke (race + deep assertions)'
# The reliability/fault-injection matrix under the race detector with the
# dccdebug MIS-independence assertions armed — the combination neither
# plain gate above covers. -short trims the matrix to a smoke-sized slice.
go test -short -race -tags dccdebug -run '^TestChaosMatrix$' ./internal/dist

echo '== sharded equivalence smoke (race)'
# The spatial shard engine's byte-identity contract under the race
# detector: coordinator, halo-delta exchange and verdict waves across
# several shard × worker counts must reproduce the unsharded canonical
# engine exactly. -short trims the sweep to a smoke-sized slice.
go test -short -race -run '^TestScheduleMatchesCanonical$' ./internal/shard
go test -short -race -run '^TestShardCountEquivalence$' .

echo '== streaming chaos smoke (race + deep assertions)'
# The event-stream chaos harness: crash-restart at seeded WAL offsets with
# producer redelivery, torn snapshots, and the WAL mutation matrix, with
# the dccdebug memo cross-checks armed.
go test -short -race -tags dccdebug -run '^TestStreamChaosMatrix$' ./internal/stream

echo '== telemetry byte-identity'
# The observability contract (DESIGN.md §14): collecting metrics must not
# change a single output byte. Wall-clock timing lines are suppressed so
# the two runs compare exactly; the NDJSON dump is sanity-checked for the
# schema header and a live deterministic series.
go build -o /tmp/dccsim.check ./cmd/dccsim
TELFIGS='-fig 1,6,scenarios -nodes 60 -runs 1 -timings=false'
/tmp/dccsim.check $TELFIGS -telemetry=false > /tmp/dccsim.tel_off.txt
/tmp/dccsim.check $TELFIGS -metrics /tmp/dccsim.metrics.ndjson \
    | grep -v '^\[metrics\]' > /tmp/dccsim.tel_on.txt
cmp /tmp/dccsim.tel_off.txt /tmp/dccsim.tel_on.txt
grep -q '"schema":"dcc-metrics-v1"' /tmp/dccsim.metrics.ndjson
grep -q '"class":"deterministic","type":"counter","name":"core.runs"' /tmp/dccsim.metrics.ndjson

echo "== fuzz smoke (${FUZZTIME} per target)"
go test -run=NONE -fuzz='^FuzzVectorXOR$' -fuzztime="$FUZZTIME" ./internal/bitvec
go test -run=NONE -fuzz='^FuzzRank$' -fuzztime="$FUZZTIME" ./internal/bitvec
go test -run=NONE -fuzz='^FuzzFrameRoundTrip$' -fuzztime="$FUZZTIME" ./internal/dist
go test -run=NONE -fuzz='^FuzzCacheConsistency$' -fuzztime="$FUZZTIME" ./internal/vpt
go test -run=NONE -fuzz='^FuzzScenarioDeterminism$' -fuzztime="$FUZZTIME" ./internal/scenario
go test -run=NONE -fuzz='^FuzzWALReplay$' -fuzztime="$FUZZTIME" ./internal/stream

echo 'check.sh: all gates passed'
