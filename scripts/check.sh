#!/bin/sh
# Pre-PR gate: formatting, vet, build, determinism lint, race detector,
# the dccdebug deep-assertion test run, a repeated race run of the worker
# pool, a chaos smoke (fault-injection matrix under race + deep
# assertions), and a short fuzz smoke of every fuzz target. Everything
# here must pass before a change ships (see README "Development").
set -e
cd "$(dirname "$0")/.."

# Per-target fuzz budget; CI trims it (see .github/workflows/check.yml).
FUZZTIME="${FUZZTIME:-5s}"

echo '== gofmt'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo '== go vet'
go vet ./...

echo '== go build'
go build ./...

echo '== dcclint'
go run ./cmd/dcclint ./...

echo '== go test -race'
go test -race -timeout 30m ./...

echo '== go test -tags dccdebug'
go test -tags dccdebug ./...

echo '== cache consistency smoke (deep assertions)'
# The incremental deletability engine with its dccdebug cross-checks armed:
# every cached verdict is compared against fresh recomputation, and every
# Commit/Remove is followed by a dirty-set audit. The reference regression
# pins the cache-backed schedulers to the pre-cache engines byte for byte.
go test -tags dccdebug -run '^TestCache|^FuzzCacheConsistency$' ./internal/vpt
go test -tags dccdebug -run 'MatchesReference$' ./internal/core

echo '== runner race (repeated)'
go test -race -count=2 ./internal/runner

echo '== chaos smoke (race + deep assertions)'
# The reliability/fault-injection matrix under the race detector with the
# dccdebug MIS-independence assertions armed — the combination neither
# plain gate above covers. -short trims the matrix to a smoke-sized slice.
go test -short -race -tags dccdebug -run '^TestChaosMatrix$' ./internal/dist

echo "== fuzz smoke (${FUZZTIME} per target)"
go test -run=NONE -fuzz='^FuzzVectorXOR$' -fuzztime="$FUZZTIME" ./internal/bitvec
go test -run=NONE -fuzz='^FuzzRank$' -fuzztime="$FUZZTIME" ./internal/bitvec
go test -run=NONE -fuzz='^FuzzFrameRoundTrip$' -fuzztime="$FUZZTIME" ./internal/dist
go test -run=NONE -fuzz='^FuzzCacheConsistency$' -fuzztime="$FUZZTIME" ./internal/vpt

echo 'check.sh: all gates passed'
