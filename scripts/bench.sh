#!/bin/sh
# Benchmarks the scheduling engine: times Figure 3 regeneration with the
# worker pool at 1 worker (sequential) and at N workers (one per CPU), then
# writes two JSON records at the repo root:
#
#   BENCH_parallel.json     — the worker-pool scaling record (current run)
#   BENCH_incremental.json  — the incremental-engine record: current
#                             sequential/parallel times against the
#                             baseline sequential time recorded in
#                             BENCH_parallel.json *before* this run (i.e.
#                             the committed pre-change figure), with the
#                             speedup targets of the incremental
#                             deletability engine (≥2× sequential vs
#                             baseline, parallel speedup > 1.0)
#   BENCH_stream.json       — the streaming-engine record: sustained
#                             events/sec under coalescing backpressure and
#                             p50/p99 per-event update latency (stepped,
#                             with re-election), against the from-scratch
#                             canonical-schedule cost per poll
#   BENCH_sharded.json      — the spatial-shard-engine record: end-to-end
#                             wall-clock over an n × shard-count grid
#                             (min-of-reps per point) plus one headline
#                             deployment at SHARD_NODES interior nodes
#                             (default 100000; SHARD_NODES=1000000 for the
#                             full million-node run)
#
# Output is byte-identical across worker counts (the engine's determinism
# contract; see DESIGN.md §9) — only wall-clock changes. Usage:
#
#   scripts/bench.sh [runs] [nodes]
#
# Defaults: runs=16, nodes=150 (quick preset scale).
set -e
cd "$(dirname "$0")/.."

RUNS=${1:-16}
NODES=${2:-150}
WORKERS=${WORKERS:-4}
CPUS=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

# Baseline: the sequential figure recorded by the previous committed run.
BASELINE=$(awk -F': *|,' '/"sequential_seconds"/ { print $2 }' BENCH_parallel.json 2>/dev/null || echo "")

go build -o /tmp/dccsim.bench ./cmd/dccsim

# time_fig WORKERS -> seconds (fractional) on stdout: min of REPS runs,
# damping scheduler noise on small/shared machines.
REPS=${REPS:-2}
time_fig() {
    best=""
    i=0
    while [ "$i" -lt "$REPS" ]; do
        start=$(date +%s%N)
        /tmp/dccsim.bench -fig 3 -runs "$RUNS" -nodes "$NODES" -workers "$1" >/dev/null
        end=$(date +%s%N)
        t=$(awk "BEGIN { printf \"%.3f\", ($end - $start) / 1e9 }")
        if [ -z "$best" ] || awk "BEGIN { exit !($t < $best) }"; then
            best=$t
        fi
        i=$((i + 1))
    done
    printf '%s' "$best"
}

echo "== bench: Figure 3, runs=$RUNS nodes=$NODES cpus=$CPUS"
T1=$(time_fig 1)
echo "   workers=1:        ${T1}s"
TN=$(time_fig "$WORKERS")
echo "   workers=$WORKERS:        ${TN}s"

SPEEDUP=$(awk "BEGIN { printf \"%.2f\", $T1 / $TN }")
echo "   speedup:          ${SPEEDUP}x"

# speedup ≈ min(cpus, workers) on an otherwise idle machine; on a 1-CPU
# box the two timings coincide and speedup ≈ 1.0 by construction.
cat > BENCH_parallel.json <<EOF
{
  "bench": "figure3",
  "runs": $RUNS,
  "nodes": $NODES,
  "cpus": $CPUS,
  "sequential_workers": 1,
  "sequential_seconds": $T1,
  "parallel_workers": $WORKERS,
  "parallel_seconds": $TN,
  "speedup": $SPEEDUP
}
EOF
echo "== wrote BENCH_parallel.json"

if [ -n "$BASELINE" ]; then
    INCR=$(awk "BEGIN { printf \"%.2f\", $BASELINE / $T1 }")
else
    BASELINE=null
    INCR=null
fi
cat > BENCH_incremental.json <<EOF
{
  "bench": "figure3-incremental",
  "runs": $RUNS,
  "nodes": $NODES,
  "cpus": $CPUS,
  "baseline_sequential_seconds": $BASELINE,
  "sequential_seconds": $T1,
  "parallel_workers": $WORKERS,
  "parallel_seconds": $TN,
  "sequential_speedup_vs_baseline": $INCR,
  "parallel_speedup": $SPEEDUP,
  "targets": { "sequential_speedup_vs_baseline": 2.0, "parallel_speedup": 1.0 }
}
EOF
echo "== wrote BENCH_incremental.json (baseline ${BASELINE}s -> ${T1}s, ${INCR}x)"

echo "== bench: streaming replay, nodes=$NODES"
STREAM_LINE=$(/tmp/dccsim.bench -fig streaming -runs 2 -nodes "$NODES" -workers "$WORKERS" \
    | awk '/\[stream-bench\]/ { print }')
stream_field() {
    printf '%s\n' "$STREAM_LINE" | tr ' ' '\n' | awk -F= -v k="$1" '$1 == k { print $2 }'
}
EPS=$(stream_field events_per_sec)
P50US=$(stream_field p50_event_us)
P99US=$(stream_field p99_event_us)
BATCHUS=$(stream_field batch_schedule_us)
EVENTS=$(stream_field events)
echo "   sustained:        ${EPS} events/sec"
echo "   p99 update:       ${P99US}us (from-scratch schedule: ${BATCHUS}us)"
cat > BENCH_stream.json <<EOF
{
  "bench": "streaming-replay",
  "nodes": $NODES,
  "events": $EVENTS,
  "cpus": $CPUS,
  "events_per_sec": $EPS,
  "p50_event_us": $P50US,
  "p99_event_us": $P99US,
  "from_scratch_schedule_us": $BATCHUS
}
EOF
echo "== wrote BENCH_stream.json"

echo "== bench: spatial shard engine, SHARD_NODES=${SHARD_NODES:-100000}"
SHARD_NODES=${SHARD_NODES:-100000}
SHARD_OUT=$(/tmp/dccsim.bench -fig sharded -runs 2 -nodes "$NODES" \
    -shardnodes "$SHARD_NODES" -workers "$WORKERS")
# Each [shard-bench] line is one curve point; the [shard-headline] line is
# the scale demonstration. Both are k=v word lists — turn them into JSON.
shard_json() {
    printf '%s\n' "$SHARD_OUT" | awk -v tag="$1" '
        index($0, tag) {
            sep = ""
            printf "      { "
            for (i = 1; i <= NF; i++) {
                if (split($i, kv, "=") != 2) continue
                printf "%s\"%s\": %s", sep, kv[1], kv[2]
                sep = ", "
            }
            printf " }%s\n", (tag == "[shard-bench]" ? "," : "")
        }' | sed '$ s/,$//'
}
CURVE=$(shard_json "[shard-bench]")
HEADLINE=$(shard_json "[shard-headline]")
HEAD_SEC=$(printf '%s\n' "$SHARD_OUT" | awk '/\[shard-headline\]/ { for (i=1;i<=NF;i++) if (split($i,kv,"=")==2 && kv[1]=="seconds") print kv[2] }')
echo "   headline:         ${HEAD_SEC}s end-to-end"
cat > BENCH_sharded.json <<EOF
{
  "bench": "sharded-scaling",
  "cpus": $CPUS,
  "reps": 2,
  "tau": 4,
  "curve": [
$CURVE
  ],
  "headline":
$HEADLINE
}
EOF
echo "== wrote BENCH_sharded.json"

# Merge the per-figure records into one schema-versioned artifact
# with run metadata (the file dashboards should consume; the per-figure
# files stay for diffing). No jq on the build image, so the embed is
# plain concatenation — each BENCH_*.json is already one JSON object.
COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
STAMP=$(date -u +%Y-%m-%dT%H:%M:%SZ)
{
    printf '{\n  "schema": "dcc-bench-v1",\n'
    printf '  "metadata": {\n'
    printf '    "generated_at": "%s",\n' "$STAMP"
    printf '    "commit": "%s",\n' "$COMMIT"
    printf '    "go": "%s",\n' "$(go env GOVERSION)"
    printf '    "platform": "%s/%s",\n' "$(go env GOOS)" "$(go env GOARCH)"
    printf '    "cpus": %s,\n' "$CPUS"
    printf '    "runs": %s,\n    "nodes": %s,\n    "workers": %s\n  },\n' "$RUNS" "$NODES" "$WORKERS"
    printf '  "benches": {\n    "parallel": '
    cat BENCH_parallel.json
    printf ',\n    "incremental": '
    cat BENCH_incremental.json
    printf ',\n    "stream": '
    cat BENCH_stream.json
    printf ',\n    "sharded": '
    cat BENCH_sharded.json
    printf '  }\n}\n'
} > BENCH_all.json
echo "== wrote BENCH_all.json"
