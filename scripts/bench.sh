#!/bin/sh
# Benchmarks the parallel experiment engine: times Figure 3 regeneration
# with the worker pool at 1 worker (sequential) and at N workers (one per
# CPU), then writes BENCH_parallel.json at the repo root. Output is
# byte-identical across worker counts (the engine's determinism contract;
# see DESIGN.md §9) — only wall-clock changes, and only on multi-CPU
# machines. Usage:
#
#   scripts/bench.sh [runs] [nodes]
#
# Defaults: runs=16, nodes=150 (quick preset scale).
set -e
cd "$(dirname "$0")/.."

RUNS=${1:-16}
NODES=${2:-150}
WORKERS=${WORKERS:-4}
CPUS=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

go build -o /tmp/dccsim.bench ./cmd/dccsim

# time_fig WORKERS -> seconds (fractional) on stdout.
time_fig() {
    start=$(date +%s%N)
    /tmp/dccsim.bench -fig 3 -runs "$RUNS" -nodes "$NODES" -workers "$1" >/dev/null
    end=$(date +%s%N)
    awk "BEGIN { printf \"%.3f\", ($end - $start) / 1e9 }"
}

echo "== bench: Figure 3, runs=$RUNS nodes=$NODES cpus=$CPUS"
T1=$(time_fig 1)
echo "   workers=1:        ${T1}s"
TN=$(time_fig "$WORKERS")
echo "   workers=$WORKERS:        ${TN}s"

SPEEDUP=$(awk "BEGIN { printf \"%.2f\", $T1 / $TN }")
echo "   speedup:          ${SPEEDUP}x"

# speedup ≈ min(cpus, workers) on an otherwise idle machine; on a 1-CPU
# box the two timings coincide and speedup ≈ 1.0 by construction.
cat > BENCH_parallel.json <<EOF
{
  "bench": "figure3",
  "runs": $RUNS,
  "nodes": $NODES,
  "cpus": $CPUS,
  "sequential_workers": 1,
  "sequential_seconds": $T1,
  "parallel_workers": $WORKERS,
  "parallel_seconds": $TN,
  "speedup": $SPEEDUP
}
EOF
echo "== wrote BENCH_parallel.json"
