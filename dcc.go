// Package dcc is a Go implementation of distributed connectivity-based
// coverage scheduling for wireless ad hoc and sensor networks, reproducing
// "Distributed Coverage in Wireless Ad Hoc and Sensor Networks by
// Topological Graph Approaches" (Dong, Liu, Liu, Liao — ICDCS 2010).
//
// The library schedules a sparse coverage set using only connectivity
// information: no coordinates, no range measurements. Its criterion is
// cycle-partition based — a network τ-confine covers the target area when
// the boundary cycles are expressible as a GF(2) sum of cycles of length
// ≤ τ — which both relaxes the homology-group criterion of Ghrist et al.
// (implemented here as the HGC baseline) and makes the coverage granularity
// configurable via τ.
//
// Typical use:
//
//	dep, err := dcc.Deploy(dcc.DeployOptions{Nodes: 1600, AvgDegree: 25, Seed: 1})
//	tau, err := dcc.PlanTau(dcc.Requirement{Gamma: dep.Gamma()})
//	res, err := dep.ScheduleDCC(tau, dcc.ScheduleOptions{Seed: 1})
//	report := dep.CoverageReport(res.Final, 0)     // ground-truth validation
//
// Geometry appears only at deployment and evaluation time; the scheduling
// path (internal/core, internal/dist) is purely graph-theoretic, exactly as
// in the paper.
package dcc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dcc/internal/boundary"
	"dcc/internal/core"
	"dcc/internal/cover"
	"dcc/internal/dist"
	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/hgc"
	"dcc/internal/runner"
	"dcc/internal/shard"
	"dcc/internal/telemetry"
)

// Re-exported fundamental types. Aliases keep the single implementation in
// the internal packages while making the names part of the public API.
type (
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// Graph is an immutable undirected connectivity graph.
	Graph = graph.Graph
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Point is a point in the deployment plane.
	Point = geom.Point
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
	// Circle is a circle in the deployment plane.
	Circle = geom.Circle
	// Requirement expresses a coverage demand (Proposition 1).
	Requirement = core.Requirement
	// ScheduleResult is the outcome of a centralized scheduling run.
	ScheduleResult = core.Result
	// DistConfig configures the distributed protocol.
	DistConfig = dist.Config
	// DistResult is the outcome of a distributed run.
	DistResult = dist.Result
	// HGCResult is the outcome of the homology-baseline scheduler.
	HGCResult = hgc.Result
	// CoverageReport is a ground-truth coverage measurement.
	CoverageReport = cover.Report
	// RotationResult is one epoch of a sleep-rotation schedule.
	RotationResult = core.RotationResult
	// Telemetry is a metrics registry: every scheduling entry point
	// accepts one through its options' Telemetry field (nil = collection
	// off). Collection never changes schedule output — the observability
	// contract of DESIGN.md §14.
	Telemetry = telemetry.Registry
	// ShardStats counts the work a sharded schedule performed (regions,
	// replicas, batches, halo deltas) alongside the ScheduleResult.
	ShardStats = shard.Stats
)

// NewTelemetry returns an empty metrics registry to pass through the
// options' Telemetry fields. The registry has no time source — counters,
// gauges and histograms collect; spans are no-ops — so library callers
// cannot accidentally make results timing-dependent. Wall-clock spans
// are a binary-level concern (see cmd/dccsim).
func NewTelemetry() *Telemetry { return telemetry.New() }

// Sentinel errors of the scheduling API. Every public entry point wraps
// these (with fmt.Errorf and %w) rather than returning bare strings, so
// callers branch with errors.Is regardless of which layer produced the
// failure:
//
//	if _, err := dcc.PlanTau(req); errors.Is(err, dcc.ErrNoFeasibleTau) { ... }
//	if _, err := dep.ScheduleDCC(2, opts); errors.Is(err, dcc.ErrTauTooSmall) { ... }
//
// The aliases mirror the internal/core definitions, so errors.Is matches
// whether an error crossed the public boundary or was produced internally.
var (
	// ErrNoFeasibleTau is returned by PlanTau when no confine size ≥ 3
	// satisfies the coverage requirement.
	ErrNoFeasibleTau = core.ErrNoFeasibleTau
	// ErrNotAchievable is returned by AchievableTau when no confine size
	// within the bound makes the boundary partitionable.
	ErrNotAchievable = core.ErrNotAchievable
	// ErrTauTooSmall is wrapped by every scheduling entry point —
	// ScheduleDCC, ScheduleDCCSharded, ScheduleDCCDistributed, ThinEdges,
	// Rotate — handed a confine size below the minimum of 3.
	ErrTauTooSmall = core.ErrTauTooSmall
	// ErrShardedUnsupported is wrapped by ScheduleDCCSharded for
	// deployment shapes the spatial shard engine cannot partition
	// soundly: multiply-connected targets (obstacle repair introduces
	// position-less virtual apexes) and graphs with links longer than Rc
	// (the halo invariant is geometric). Fall back to ScheduleDCC.
	ErrShardedUnsupported = errors.New("dcc: deployment not supported by the sharded engine")
)

// DeriveSeed deterministically derives an independent sub-seed from a base
// seed, a stream identifier, and a run index (chained SplitMix64
// finalizers). It is the one seed-derivation primitive of the module — the
// experiment harness derives every per-run deployment and scheduling seed
// through it — exported so downstream sweeps compose with the library's
// streams instead of inventing ad-hoc `seed + run*prime` offsets, whose
// streams overlap.
//
// The seed surface of the public API:
//
//	field                 consumed by                    randomness it drives
//	DeployOptions.Seed    Deploy                         node positions, QuasiUDG links
//	ScheduleOptions.Seed  ScheduleDCC (both modes)       deletion order, MIS priorities
//	ShardOptions.Seed     ScheduleDCCSharded             canonical deletion priorities
//	DistConfig.Seed       ScheduleDCCDistributed         protocol priorities, loss, faults
//	seed arguments        ScheduleHGC, ThinEdges, Rotate same role as ScheduleOptions.Seed
//
// Each field fully determines its stage: equal inputs plus equal seeds give
// byte-identical outputs (independent of ScheduleOptions.Workers). To run N
// independent repetitions, hold one base seed and derive per-run values,
// giving each randomness consumer its own stream constant:
//
//	dep, _ := dcc.Deploy(dcc.DeployOptions{Nodes: n, Seed: dcc.DeriveSeed(base, 0, run)})
//	res, _ := dep.ScheduleDCC(tau, dcc.ScheduleOptions{Seed: dcc.DeriveSeed(base, 1, run)})
func DeriveSeed(base int64, stream uint64, run int) int64 {
	//lint:ignore streamid public re-export shim: callers of dcc.DeriveSeed pick the stream constant, and the analyzer checks them through the forwarder fact
	return runner.DeriveSeed(base, stream, run)
}

// PlanTau returns the largest confine size satisfying a requirement
// (Proposition 1).
func PlanTau(req Requirement) (int, error) { return core.PlanTau(req) }

// LinkModel selects how connectivity is derived from positions.
type LinkModel int

const (
	// UDG connects nodes within Rc (unit disk graph).
	UDG LinkModel = iota + 1
	// QuasiUDG always connects within QuasiInner·Rc, probabilistically
	// (QuasiP) between that and Rc, never beyond Rc.
	QuasiUDG
)

// DeployOptions parameterises Deploy.
type DeployOptions struct {
	// Nodes is the number of interior sensor nodes (excluding the
	// boundary ring added automatically).
	Nodes int
	// Target is the area to monitor (default: the unit-density square
	// sized so AvgDegree holds; see Rc).
	Target Rect
	// AvgDegree selects Rc so that the expected UDG degree matches
	// (default 25, the paper's Figure 3 configuration). Ignored when Rc is
	// set explicitly.
	AvgDegree float64
	// Rc is the maximum communication range. Zero derives it from
	// AvgDegree. The paper normalises Rc = 1 and scales the field instead.
	Rc float64
	// Gamma is the sensing ratio γ = Rc/Rs (default √3, the HGC
	// threshold).
	Gamma float64
	// Seed drives deployment and link randomness.
	Seed int64
	// Model selects the link model (default UDG).
	Model LinkModel
	// QuasiInner and QuasiP configure QuasiUDG (defaults 0.6 and 0.5).
	QuasiInner, QuasiP float64
	// Obstacles are circular regions without nodes; each obtains an inner
	// boundary ring, making the target multiply-connected.
	Obstacles []Circle
	// BandWidth marks deployed nodes within this distance of the target
	// border (or an obstacle edge) as boundary nodes, in addition to the
	// rings. Zero marks only the rings.
	BandWidth float64
}

func (o DeployOptions) withDefaults() (DeployOptions, error) {
	if o.Nodes <= 0 {
		return o, errors.New("dcc: Nodes must be positive")
	}
	if o.AvgDegree == 0 {
		o.AvgDegree = 25
	}
	if o.Target == (Rect{}) {
		// Normalise Rc = 1 like the paper and size the square for the
		// requested degree: deg = n·π·Rc²/area.
		side := math.Sqrt(float64(o.Nodes) * math.Pi / o.AvgDegree)
		o.Target = geom.Square(side)
	}
	if o.Rc == 0 {
		o.Rc = geom.RcForAvgDegree(o.Nodes, o.Target.Area(), o.AvgDegree)
	}
	if o.Gamma == 0 {
		o.Gamma = math.Sqrt(3)
	}
	if o.Model == 0 {
		o.Model = UDG
	}
	if o.QuasiInner == 0 {
		o.QuasiInner = 0.6
	}
	if o.QuasiP == 0 {
		o.QuasiP = 0.5
	}
	return o, nil
}

// Deployment is an embedded network: positions, connectivity, boundary
// structure and radio parameters. The scheduling algorithms only consume
// its graph-theoretic projection (Network); positions exist for evaluation
// and rendering.
type Deployment struct {
	// Points maps node ID (the index) to its position.
	Points []Point
	// G is the connectivity graph.
	G *Graph
	// Target is the monitored area.
	Target Rect
	// Rc and Rs are the communication and sensing ranges.
	Rc, Rs float64
	// BoundaryNodes lists all nodes marked as boundary.
	BoundaryNodes []NodeID
	// OuterCycle is the outer boundary ring in cycle order.
	OuterCycle []NodeID
	// InnerCycles are the obstacle rings in cycle order.
	InnerCycles [][]NodeID
	// Obstacles echoes the deployment obstacles.
	Obstacles []Circle
}

// Gamma returns the sensing ratio γ = Rc/Rs.
func (d *Deployment) Gamma() float64 { return d.Rc / d.Rs }

// Deploy generates an embedded network: interior nodes uniformly at random
// in the target area, a boundary ring along the target border (spacing
// 0.9·Rc, or 0.9·QuasiInner·Rc under QuasiUDG so ring links are certain),
// rings around obstacles, and the connectivity graph under the chosen link
// model.
func Deploy(opts DeployOptions) (*Deployment, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// The periphery band (paper §III-A: width ≥ Rc between the sensing
	// area's edge and the target's edge) is realised as a staggered double
	// ring: the outer ring carries the explicit boundary cycle, and an
	// inner ring inset by half a link guarantees a triangle apex for every
	// outer ring edge, so the boundary cycle is always 3-partitionable
	// regardless of where the random interior nodes landed. A single
	// sparse ring instead leaves occasional apex-less segments whose 4–6
	// cycle patches then block nearby deletions at odd τ.
	reach := opts.Rc
	if opts.Model == QuasiUDG {
		reach = opts.QuasiInner * opts.Rc
	}
	ringSpacing := 0.6 * reach
	ringInset := 0.45 * reach

	// Interior nodes, rejecting positions inside obstacles. The attempt
	// bound guards against obstacle sets that cover the whole target.
	pts := make([]Point, 0, opts.Nodes)
	for attempts := 0; len(pts) < opts.Nodes; attempts++ {
		if attempts > 1000*opts.Nodes {
			return nil, errors.New("dcc: obstacles leave too little free area for the deployment")
		}
		p := geom.UniformPoints(rng, 1, opts.Target)[0]
		if insideObstacle(p, opts.Obstacles, 0) {
			continue
		}
		pts = append(pts, p)
	}

	// Outer boundary ring (the explicit outer cycle).
	outerPts := geom.RingPoints(opts.Target, ringSpacing)
	outer := make([]NodeID, len(outerPts))
	for i, p := range outerPts {
		outer[i] = NodeID(len(pts))
		pts = append(pts, p)
	}
	// Staggered support ring just inside it (part of the periphery band;
	// not itself a boundary cycle).
	var band []NodeID
	for _, p := range geom.RingPoints(opts.Target.Shrink(ringInset), ringSpacing) {
		band = append(band, NodeID(len(pts)))
		pts = append(pts, p)
	}

	// Obstacle rings: the explicit inner cycle on the obstacle edge plus a
	// staggered support ring just outside it.
	var inner [][]NodeID
	for _, ob := range opts.Obstacles {
		n := int(math.Ceil(2 * math.Pi * ob.R / ringSpacing))
		if n < 3 {
			n = 3
		}
		cyc := make([]NodeID, n)
		for i, p := range geom.CirclePoints(ob.Center, ob.R, n) {
			cyc[i] = NodeID(len(pts))
			pts = append(pts, p)
		}
		inner = append(inner, cyc)
		outR := ob.R + ringInset
		m := int(math.Ceil(2 * math.Pi * outR / ringSpacing))
		for _, p := range geom.CirclePoints(ob.Center, outR, m) {
			if !opts.Target.Contains(p) {
				continue
			}
			band = append(band, NodeID(len(pts)))
			pts = append(pts, p)
		}
	}

	var g *Graph
	switch opts.Model {
	case UDG:
		g = geom.UDG(pts, opts.Rc)
	case QuasiUDG:
		g = geom.QuasiUDG(rng, pts, opts.QuasiInner*opts.Rc, opts.Rc, opts.QuasiP)
	default:
		return nil, fmt.Errorf("dcc: unknown link model %d", opts.Model)
	}

	bset := make(map[NodeID]bool)
	for _, v := range outer {
		bset[v] = true
	}
	for _, v := range band {
		bset[v] = true
	}
	for _, cyc := range inner {
		for _, v := range cyc {
			bset[v] = true
		}
	}
	if opts.BandWidth > 0 {
		for _, v := range boundary.Band(pts, opts.Target, opts.BandWidth) {
			bset[v] = true
		}
		for i, p := range pts {
			if insideObstacle(p, opts.Obstacles, opts.BandWidth) {
				bset[NodeID(i)] = true
			}
		}
	}
	var bnodes []NodeID
	for _, v := range g.Nodes() {
		if bset[v] {
			bnodes = append(bnodes, v)
		}
	}

	d := &Deployment{
		Points:        pts,
		G:             g,
		Target:        opts.Target,
		Rc:            opts.Rc,
		Rs:            opts.Rc / opts.Gamma,
		BoundaryNodes: bnodes,
		OuterCycle:    outer,
		InnerCycles:   inner,
		Obstacles:     opts.Obstacles,
	}
	if err := d.Network().Validate(); err != nil {
		return nil, fmt.Errorf("dcc: deployment invalid: %w", err)
	}
	return d, nil
}

func insideObstacle(p Point, obstacles []Circle, margin float64) bool {
	for _, ob := range obstacles {
		if geom.Dist(p, ob.Center) < ob.R+margin {
			return true
		}
	}
	return false
}

// Network projects the deployment to the scheduler input.
func (d *Deployment) Network() core.Network {
	b := make(map[NodeID]bool, len(d.BoundaryNodes))
	for _, v := range d.BoundaryNodes {
		b[v] = true
	}
	cyc := make([][]NodeID, 0, 1+len(d.InnerCycles))
	cyc = append(cyc, d.OuterCycle)
	cyc = append(cyc, d.InnerCycles...)
	return core.Network{G: d.G, Boundary: b, BoundaryCycles: cyc}
}

// AchievableTau returns the smallest confine size τ ∈ [3, maxTau] already
// satisfied by the full deployment. Scheduling preserves the criterion only
// from this τ upward (Theorem 5's precondition).
func (d *Deployment) AchievableTau(maxTau int) (int, error) {
	net, _, err := core.RepairBoundaries(d.Network())
	if err != nil {
		return 0, err
	}
	return core.AchievableTau(net, maxTau)
}

// ScheduleOptions configures the centralized schedulers. Seed, Workers
// and Telemetry follow the module-wide config vocabulary (DESIGN.md §15):
// every scheduling options struct spells them the same way with the same
// zero-value defaults.
type ScheduleOptions struct {
	// Seed drives randomized choices.
	Seed int64
	// Parallel selects the MIS round engine instead of sequential
	// deletion.
	Parallel bool
	// Workers caps concurrency in parallel mode (0 = all CPUs, 1 =
	// sequential; output is identical for any value).
	Workers int
	// Telemetry is the optional metrics registry (nil = collection off;
	// never changes the schedule).
	Telemetry *Telemetry
}

// ShardOptions configures the spatial shard engine behind
// ScheduleDCCSharded. Seed, Workers and Telemetry mirror ScheduleOptions
// field-for-field; Shards and HaloHops size the shard map. Every option
// is result-neutral except Seed: the schedule is byte-identical for any
// Workers, Shards and HaloHops choice — those trade memory and wall
// clock only.
type ShardOptions struct {
	// Seed drives the canonical deletion priorities.
	Seed int64
	// Workers caps concurrency of every parallel section (0 = all CPUs,
	// 1 = sequential; output is identical for any value).
	Workers int
	// Telemetry is the optional metrics registry (nil = collection off;
	// never changes the schedule).
	Telemetry *Telemetry
	// Shards is the number of grid regions to partition the deployment
	// into (0 = auto-size at roughly one region per 4096 nodes).
	Shards int
	// HaloHops is the replication depth of each region's halo in hops
	// (0 = the minimum sound depth ⌈τ/2⌉; smaller values are rejected).
	HaloHops int
}

// ScheduleDCC computes a sparse τ-confine coverage set with the paper's
// algorithm. For multiply-connected deployments the inner boundaries are
// cone-repaired first (§V-B).
func (d *Deployment) ScheduleDCC(tau int, opts ScheduleOptions) (ScheduleResult, error) {
	net, _, err := core.RepairBoundaries(d.Network())
	if err != nil {
		return ScheduleResult{}, err
	}
	mode := core.Sequential
	if opts.Parallel {
		mode = core.Parallel
	}
	return core.Schedule(net, core.Options{
		Tau:       tau,
		Seed:      opts.Seed,
		Mode:      mode,
		Workers:   opts.Workers,
		Telemetry: opts.Telemetry,
	})
}

// ScheduleDCCSharded computes the same τ-confine coverage set through
// the spatial shard engine: the deployment is partitioned into grid
// regions with ⌈τ/2⌉-hop halos, each region holds only its local
// subgraph, and a coordinator replays the canonical election across
// regions (internal/shard; DESIGN.md §15). The schedule equals the
// canonical-mode centralized engine byte-for-byte and is invariant
// under Workers, Shards and HaloHops — sharding changes how far the
// deployment can scale (millions of nodes on one box), never what is
// elected. Note the engine's deletion order is the canonical priority
// order, not ScheduleDCC's seed-shuffled order, so results match across
// shard counts and runs, not ScheduleDCC's output.
//
// Multiply-connected deployments (obstacles) are rejected with
// ErrShardedUnsupported: their repair introduces virtual apex nodes
// without positions, which the geometric shard map cannot place. Use
// ScheduleDCC for those.
func (d *Deployment) ScheduleDCCSharded(tau int, opts ShardOptions) (ScheduleResult, error) {
	if err := d.Network().Validate(); err != nil {
		return ScheduleResult{}, err
	}
	if tau < 3 {
		return ScheduleResult{}, fmt.Errorf("dcc: tau %d: %w", tau, ErrTauTooSmall)
	}
	if len(d.InnerCycles) > 0 {
		return ScheduleResult{}, fmt.Errorf("%w: %d obstacle boundaries need cone repair", ErrShardedUnsupported, len(d.InnerCycles))
	}
	boundary := make([]bool, len(d.Points))
	for _, v := range d.BoundaryNodes {
		boundary[v] = true
	}
	res, _, err := shard.Schedule(shard.Input{
		Points:   d.Points,
		Rc:       d.Rc,
		Boundary: boundary,
		G:        d.G,
	}, shard.Options{
		Tau:       tau,
		Seed:      opts.Seed,
		Workers:   opts.Workers,
		Shards:    opts.Shards,
		HaloHops:  opts.HaloHops,
		Telemetry: opts.Telemetry,
	})
	if err != nil {
		if errors.Is(err, shard.ErrUnsupported) {
			return ScheduleResult{}, fmt.Errorf("%w: %v", ErrShardedUnsupported, err)
		}
		return ScheduleResult{}, fmt.Errorf("dcc: sharded schedule: %w", err)
	}
	return res, nil
}

// ScheduleDCCDistributed runs the message-passing protocol.
func (d *Deployment) ScheduleDCCDistributed(cfg DistConfig) (DistResult, error) {
	net, _, err := core.RepairBoundaries(d.Network())
	if err != nil {
		return DistResult{}, err
	}
	return dist.Run(net, cfg)
}

// ScheduleHGC runs the homology-group baseline (triangle granularity).
func (d *Deployment) ScheduleHGC(seed int64) (HGCResult, error) {
	net, _, err := core.RepairBoundaries(d.Network())
	if err != nil {
		return HGCResult{}, err
	}
	return hgc.Schedule(net, hgc.Options{Seed: seed})
}

// ThinEdges removes redundant links from a scheduled coverage set using
// the edge-deletion operator of the void-preserving transformation; the
// τ-confine guarantee is preserved.
func (d *Deployment) ThinEdges(final *Graph, tau int, seed int64) (*Graph, []Edge, error) {
	net, _, err := core.RepairBoundaries(d.Network())
	if err != nil {
		return nil, nil, err
	}
	return core.ThinEdges(net, final, tau, seed)
}

// Rotate computes successive coverage sets for sleep rotation: every epoch
// satisfies τ-confine coverage while duty is shifted away from the nodes
// that have worked the most, extending network lifetime.
func (d *Deployment) Rotate(tau, epochs int, seed int64) ([]RotationResult, error) {
	net, _, err := core.RepairBoundaries(d.Network())
	if err != nil {
		return nil, err
	}
	return core.Rotate(net, core.Options{Tau: tau, Seed: seed}, epochs)
}

// VerifyConfine checks the global cycle-partition criterion on a reduced
// graph of this deployment.
func (d *Deployment) VerifyConfine(final *Graph, tau int) (bool, error) {
	cyc := make([][]NodeID, 0, 1+len(d.InnerCycles))
	cyc = append(cyc, d.OuterCycle)
	cyc = append(cyc, d.InnerCycles...)
	return core.VerifyConfine(final, cyc, tau)
}

// CoreArea returns the part of the target the confine guarantees apply to:
// the target shrunk by the periphery band (one Rc), per the paper's network
// model (§III-A).
func (d *Deployment) CoreArea() Rect { return d.Target.Shrink(d.Rc) }

// CoverageReport measures ground-truth sensing coverage of the kept node
// set over the core area at the given sampling resolution (0 picks Rs/8).
// Virtual repair nodes (no position) are ignored. Points inside obstacles
// are exempt: obstacle interiors are not part of the monitored area.
func (d *Deployment) CoverageReport(final *Graph, resolution float64) CoverageReport {
	if resolution <= 0 {
		resolution = d.Rs / 8
	}
	var active []Point
	for _, v := range final.Nodes() {
		if int(v) < len(d.Points) {
			active = append(active, d.Points[v])
		}
	}
	rep := cover.Analyze(active, d.Rs, d.CoreArea(), resolution)
	if len(d.Obstacles) == 0 {
		return rep
	}
	// Remove holes that lie entirely inside obstacle regions.
	kept := rep.Holes[:0]
	for _, h := range rep.Holes {
		outside := false
		for _, c := range h.Cells {
			if !insideObstacle(c, d.Obstacles, 0) {
				outside = true
				break
			}
		}
		if outside {
			kept = append(kept, h)
		}
	}
	rep.Holes = kept
	return rep
}
