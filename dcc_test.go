package dcc

import (
	"math"
	"testing"
)

func TestDeployDefaults(t *testing.T) {
	dep, err := Deploy(DeployOptions{Nodes: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Points) <= 300 {
		t.Fatal("boundary ring missing")
	}
	// Average degree near the default 25.
	avg := 2 * float64(dep.G.NumEdges()) / float64(dep.G.NumNodes())
	if avg < 15 || avg > 40 {
		t.Fatalf("average degree %.1f far from configured 25", avg)
	}
	if math.Abs(dep.Gamma()-math.Sqrt(3)) > 1e-9 {
		t.Fatalf("gamma = %v, want √3", dep.Gamma())
	}
	if err := dep.Network().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeployRejectsBadOptions(t *testing.T) {
	if _, err := Deploy(DeployOptions{}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := Deploy(DeployOptions{Nodes: 10, Model: LinkModel(99)}); err == nil {
		t.Fatal("unknown link model accepted")
	}
	// Obstacles covering the entire target leave nowhere to deploy.
	if _, err := Deploy(DeployOptions{
		Nodes:     10,
		Target:    Rect{MaxX: 2, MaxY: 2},
		Rc:        1,
		Obstacles: []Circle{{Center: Point{X: 1, Y: 1}, R: 5}},
	}); err == nil {
		t.Fatal("fully-obstructed target accepted")
	}
}

func TestDeployQuasiUDG(t *testing.T) {
	dep, err := Deploy(DeployOptions{Nodes: 250, Seed: 2, Model: QuasiUDG})
	if err != nil {
		t.Fatal(err)
	}
	// Ring links are within the inner radius, hence always present.
	for i := range dep.OuterCycle {
		u := dep.OuterCycle[i]
		v := dep.OuterCycle[(i+1)%len(dep.OuterCycle)]
		if !dep.G.HasEdge(u, v) {
			t.Fatalf("quasi-UDG ring edge {%d,%d} missing", u, v)
		}
	}
}

func TestScheduleDCCEndToEnd(t *testing.T) {
	dep, err := Deploy(DeployOptions{Nodes: 260, Seed: 3, Gamma: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	tau, err := PlanTau(Requirement{Gamma: dep.Gamma()})
	if err != nil {
		t.Fatal(err)
	}
	if tau != 6 {
		t.Fatalf("PlanTau(γ=1) = %d, want 6", tau)
	}
	res, err := dep.ScheduleDCC(tau, ScheduleOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deleted) == 0 {
		t.Fatal("no deletions on a degree-25 network")
	}
	ok, err := dep.VerifyConfine(res.Final, tau)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("criterion violated after scheduling")
	}
	// Proposition 1: γ=1 with τ=6 is blanket coverage — the ground truth
	// must show no holes in the core area (up to sampling slack).
	rep := dep.CoverageReport(res.Final, 0)
	slack := rep.Resolution * 2 * math.Sqrt2
	if rep.MaxHoleDiameter() > slack {
		t.Fatalf("blanket coverage violated: hole diameter %.3f (slack %.3f)",
			rep.MaxHoleDiameter(), slack)
	}
}

func TestScheduleDistributedEndToEnd(t *testing.T) {
	dep, err := Deploy(DeployOptions{Nodes: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 5 preserves the criterion only from the achievable τ upward
	// (this deployment has a sparse pocket with a 5-void, so τ starts at 5).
	tau, err := dep.AchievableTau(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dep.ScheduleDCCDistributed(DistConfig{Tau: tau, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := dep.VerifyConfine(res.Final, tau)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("distributed run violated the τ=%d criterion", tau)
	}
	if res.Stats.Broadcasts == 0 {
		t.Fatal("no communication recorded")
	}
}

func TestScheduleHGCEndToEnd(t *testing.T) {
	dep, err := Deploy(DeployOptions{Nodes: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dep.ScheduleHGC(5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HomologyOK {
		t.Fatal("HGC result fails homology verification")
	}
}

func TestDeployWithObstacle(t *testing.T) {
	dep, err := Deploy(DeployOptions{
		Nodes: 300,
		Seed:  6,
		Obstacles: []Circle{
			{Center: Point{X: 3, Y: 3}, R: 1.2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.InnerCycles) != 1 {
		t.Fatalf("inner cycles = %d, want 1", len(dep.InnerCycles))
	}
	// No interior node inside the obstacle.
	for i := 0; i < 300; i++ {
		if insideObstacle(dep.Points[i], dep.Obstacles, 0) {
			t.Fatalf("node %d inside obstacle", i)
		}
	}
	// Scheduling works on the multiply-connected deployment.
	res, err := dep.ScheduleDCC(4, ScheduleOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := dep.VerifyConfine(res.Final, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("criterion violated on obstacle deployment")
	}
	// The obstacle interior must not count as a coverage hole.
	rep := dep.CoverageReport(res.Final, 0)
	for _, h := range rep.Holes {
		allInside := true
		for _, c := range h.Cells {
			if !insideObstacle(c, dep.Obstacles, 0) {
				allInside = false
				break
			}
		}
		if allInside {
			t.Fatal("obstacle interior reported as coverage hole")
		}
	}
}

func TestParallelScheduleOption(t *testing.T) {
	dep, err := Deploy(DeployOptions{Nodes: 180, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dep.ScheduleDCC(4, ScheduleOptions{Seed: 7, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := dep.VerifyConfine(res.Final, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("parallel schedule violated the criterion")
	}
}
