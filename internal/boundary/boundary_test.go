package boundary

import (
	"math/rand"
	"testing"

	"dcc/internal/geom"
	"dcc/internal/graph"
)

func TestBand(t *testing.T) {
	target := geom.Square(10)
	pts := []geom.Point{
		{X: 0.5, Y: 5},  // in band (width 1)
		{X: 5, Y: 5},    // interior
		{X: 9.5, Y: 9},  // in band
		{X: 5, Y: 0.99}, // in band
		{X: 2, Y: 2},    // interior
	}
	got := Band(pts, target, 1)
	want := map[graph.NodeID]bool{0: true, 2: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("Band = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected boundary node %d", v)
		}
	}
}

func TestSet(t *testing.T) {
	s := Set([]graph.NodeID{1, 4})
	if !s[1] || !s[4] || s[2] {
		t.Fatalf("Set = %v", s)
	}
}

func TestHeuristicPrecisionRecall(t *testing.T) {
	// On a dense uniform deployment the k-hop-population heuristic must
	// recover the geometric band with reasonable accuracy.
	rng := rand.New(rand.NewSource(11))
	target := geom.Square(20)
	n := 800
	pts := geom.UniformPoints(rng, n, target)
	rc := geom.RcForAvgDegree(n, target.Area(), 18)
	g := geom.UDG(pts, rc)

	truth := Set(Band(pts, target, rc))
	detected := Set(Heuristic(g, HeuristicOptions{}))

	tp, fp, fn := 0, 0, 0
	for _, v := range g.Nodes() {
		switch {
		case truth[v] && detected[v]:
			tp++
		case !truth[v] && detected[v]:
			fp++
		case truth[v] && !detected[v]:
			fn++
		}
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	if precision < 0.5 {
		t.Fatalf("precision %.2f too low (tp=%d fp=%d fn=%d)", precision, tp, fp, fn)
	}
	if recall < 0.5 {
		t.Fatalf("recall %.2f too low (tp=%d fp=%d fn=%d)", recall, tp, fp, fn)
	}
}

func TestHeuristicEmptyGraph(t *testing.T) {
	g := graph.NewBuilder().MustBuild()
	if got := Heuristic(g, HeuristicOptions{}); got != nil {
		t.Fatalf("Heuristic on empty graph = %v", got)
	}
}

func TestHeuristicDefaults(t *testing.T) {
	o := HeuristicOptions{}.withDefaults()
	if o.Hops != 2 || o.Ratio != 0.75 {
		t.Fatalf("defaults = %+v", o)
	}
	o2 := HeuristicOptions{Hops: 3, Ratio: 0.5}.withDefaults()
	if o2.Hops != 3 || o2.Ratio != 0.5 {
		t.Fatalf("explicit options overridden: %+v", o2)
	}
}
