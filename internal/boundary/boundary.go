// Package boundary identifies boundary nodes and boundary cycles.
//
// The paper assumes every node knows whether it is a boundary or an
// internal node ("a conventional assumption adopted by almost all existing
// connectivity-based methods", §III-A), obtained in practice from
// fine-grained boundary recognition [13]. This package provides:
//
//   - the geometric periphery-band oracle used by the simulations (exactly
//     the paper's assumption: nodes within a band of width ≥ Rc of the
//     target-area edge are boundary nodes), and
//   - a connectivity-only heuristic detector based on k-hop neighbourhood
//     population, demonstrating fully location-free operation.
package boundary

import (
	"sort"

	"dcc/internal/geom"
	"dcc/internal/graph"
)

// Band returns the IDs of nodes lying within the periphery band of the
// given width along the border of the target rectangle. Node i corresponds
// to pts[i].
func Band(pts []geom.Point, target geom.Rect, width float64) []graph.NodeID {
	var out []graph.NodeID
	for i, p := range pts {
		if target.BorderDist(p) <= width {
			out = append(out, graph.NodeID(i))
		}
	}
	return out
}

// Set converts a node list into a membership set.
func Set(nodes []graph.NodeID) map[graph.NodeID]bool {
	s := make(map[graph.NodeID]bool, len(nodes))
	for _, v := range nodes {
		s[v] = true
	}
	return s
}

// HeuristicOptions tunes the connectivity-only detector.
type HeuristicOptions struct {
	// Hops is the neighbourhood radius whose population is compared
	// (default 2).
	Hops int
	// Ratio flags a node as boundary when its k-hop population is below
	// Ratio × median population (default 0.75). Interior nodes of a
	// uniform deployment see a full disk of neighbours; nodes near the
	// border see roughly half a disk.
	Ratio float64
}

func (o HeuristicOptions) withDefaults() HeuristicOptions {
	if o.Hops <= 0 {
		o.Hops = 2
	}
	if o.Ratio <= 0 {
		o.Ratio = 0.75
	}
	return o
}

// Heuristic returns likely boundary nodes using only connectivity: nodes
// whose k-hop neighbourhood population falls below a fraction of the
// network median. It is a location-free approximation of fine-grained
// boundary recognition, adequate for demonstrations; simulations default to
// the Band oracle, mirroring the paper's assumption.
func Heuristic(g *graph.Graph, opts HeuristicOptions) []graph.NodeID {
	opts = opts.withDefaults()
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return nil
	}
	pop := make([]int, len(nodes))
	for i, v := range nodes {
		pop[i] = len(g.KHopNeighbors(v, opts.Hops))
	}
	sorted := append([]int(nil), pop...)
	sort.Ints(sorted)
	median := float64(sorted[len(sorted)/2])
	var out []graph.NodeID
	for i, v := range nodes {
		if float64(pop[i]) < opts.Ratio*median {
			out = append(out, v)
		}
	}
	return out
}
