package hgc

import (
	"math/rand"
	"testing"

	"dcc/internal/core"
	"dcc/internal/cycles"
	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/nets"
)

func TestVerifyKnownGraphs(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"filled triangle", graph.Complete(3), true},
		{"hollow hexagon", graph.Cycle(6), false},
		{"triangulated grid", graph.TriangulatedGrid(5, 5), true},
		{"plain grid", graph.Grid(4, 4), false},
		{"K5", graph.Complete(5), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Verify(tt.g, nil); got != tt.want {
				t.Fatalf("Verify = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestVerifyMobiusFalsePositive is the paper's Figure 1: the möbius
// network is fully covered (its boundary is 3-partitionable, accepted by
// DCC), but the homology criterion reports a hole.
func TestVerifyMobiusFalsePositive(t *testing.T) {
	g, _, boundary := nets.Mobius()
	if Verify(g, nil) {
		t.Fatal("HGC should report a (phantom) hole on the möbius network")
	}
	outer, err := cycles.FromVertices(g, boundary)
	if err != nil {
		t.Fatal(err)
	}
	if !cycles.Partitionable(g, outer.Vector(g.NumEdges()), 3) {
		t.Fatal("DCC criterion should accept the möbius network")
	}
}

func TestVerifyConedInnerBoundary(t *testing.T) {
	// Carved triangulated grid (hexagonal hole around node 14): absolute
	// H1 is non-trivial, but coning the declared inner boundary makes the
	// criterion pass.
	g := graph.TriangulatedGrid(6, 6).DeleteVertices([]graph.NodeID{14})
	if Verify(g, nil) {
		t.Fatal("hole not detected")
	}
	inner := [][]graph.NodeID{{7, 8, 15, 21, 20, 13}}
	if !Verify(g, inner) {
		t.Fatal("declared inner boundary not accepted after coning")
	}
}

// denseNet mirrors the construction in the core tests.
func denseNet(t *testing.T, seed int64, rows, cols int, radius float64) core.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rect := geom.Rect{MaxX: float64(cols), MaxY: float64(rows)}
	pts := geom.PerturbedGrid(rng, rows, cols, rect, 0.15)
	g := geom.UDG(pts, radius)
	if !g.IsConnected() {
		t.Fatal("test network disconnected")
	}
	var order []graph.NodeID
	for c := 0; c < cols; c++ {
		order = append(order, graph.NodeID(c))
	}
	for r := 1; r < rows; r++ {
		order = append(order, graph.NodeID(r*cols+cols-1))
	}
	for c := cols - 2; c >= 0; c-- {
		order = append(order, graph.NodeID((rows-1)*cols+c))
	}
	for r := rows - 2; r >= 1; r-- {
		order = append(order, graph.NodeID(r*cols))
	}
	b := make(map[graph.NodeID]bool, len(order))
	for _, v := range order {
		b[v] = true
	}
	net := core.Network{G: g, Boundary: b, BoundaryCycles: [][]graph.NodeID{order}}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestScheduleProducesVerifiedSet(t *testing.T) {
	net := denseNet(t, 80, 7, 7, 1.9)
	res, err := Schedule(net, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HomologyOK {
		t.Fatal("scheduled set fails homology verification")
	}
	if len(res.Deleted) == 0 {
		t.Fatal("no deletions on a dense network")
	}
	// Boundary preserved.
	for v := range net.Boundary {
		if !res.Final.HasNode(v) {
			t.Fatalf("boundary node %d deleted", v)
		}
	}
}

func TestScheduleExactSmall(t *testing.T) {
	net := denseNet(t, 81, 5, 5, 1.9)
	res, err := ScheduleExact(net, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HomologyOK {
		t.Fatal("exact scheduler returned unverified set")
	}
	// Exhaustive: no further single deletion can preserve the criterion.
	for _, v := range res.KeptInternal {
		if Verify(res.Final.DeleteVertices([]graph.NodeID{v}), nil) {
			t.Fatalf("node %d still deletable under the homology criterion", v)
		}
	}
}

func TestScheduleVsExactComparable(t *testing.T) {
	net := denseNet(t, 82, 5, 5, 1.9)
	fast, err := Schedule(net, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ScheduleExact(net, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	nf, ne := len(fast.KeptInternal), len(exact.KeptInternal)
	if ne == 0 {
		t.Skip("degenerate exact result")
	}
	ratio := float64(nf) / float64(ne)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("pattern scheduler kept %d vs exact %d", nf, ne)
	}
}

func TestScheduleExactRejectsUncoveredInput(t *testing.T) {
	// A hollow grid fails the homology criterion up front.
	g := graph.Grid(4, 4)
	var order []graph.NodeID
	for c := 0; c < 4; c++ {
		order = append(order, graph.NodeID(c))
	}
	for r := 1; r < 4; r++ {
		order = append(order, graph.NodeID(r*4+3))
	}
	for c := 2; c >= 0; c-- {
		order = append(order, graph.NodeID(12+c))
	}
	for r := 2; r >= 1; r-- {
		order = append(order, graph.NodeID(r*4))
	}
	b := make(map[graph.NodeID]bool)
	for _, v := range order {
		b[v] = true
	}
	net := core.Network{G: g, Boundary: b, BoundaryCycles: [][]graph.NodeID{order}}
	if _, err := ScheduleExact(net, Options{}); err == nil {
		t.Fatal("hollow grid accepted by exact HGC")
	}
}

// TestHGCKeepsMoreThanLargerTau is the motivation for Figure 4: HGC is
// stuck at triangle granularity, so a τ=5 DCC schedule on the same network
// retains no more (and typically fewer) nodes.
func TestHGCKeepsMoreThanLargerTau(t *testing.T) {
	net := denseNet(t, 83, 8, 8, 1.9)
	hgcRes, err := Schedule(net, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	dccRes, err := core.Schedule(net, core.Options{Tau: 5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(dccRes.KeptInternal) > len(hgcRes.KeptInternal) {
		t.Fatalf("DCC τ=5 kept %d > HGC %d", len(dccRes.KeptInternal), len(hgcRes.KeptInternal))
	}
}
