// Package hgc implements the baseline the paper compares against:
// homology-group coverage (HGC) by Ghrist et al. — coverage verification
// through the triviality of the first homology group of the Rips
// 2-complex, and node scheduling restricted to triangle granularity.
//
// Over GF(2), H1 of a Rips complex is trivial exactly when the cycle space
// of the connectivity graph is spanned by its 3-cycles, which connects the
// homology criterion to the cycle-partition framework: HGC is the special,
// stricter case τ = 3 (paper §IV-B). The möbius-band network of Figure 1
// separates the two: its boundary is 3-partitionable (DCC accepts) while
// H1 is non-trivial (HGC reports a phantom hole).
//
// Two schedulers are provided:
//
//   - Schedule: the scalable triangle-granularity scheduler (the τ = 3
//     pattern run through the DCC machinery, per §III-C), whose output is
//     verified with the homology criterion;
//   - ScheduleExact: greedy deletion with a full homology recomputation
//     after every tentative deletion — the literal centralized procedure,
//     quadratic and intended for small networks and cross-validation.
package hgc

import (
	"fmt"
	"math/rand"

	"dcc/internal/core"
	"dcc/internal/graph"
	"dcc/internal/simplicial"
)

// Verify runs the homology-group coverage verification on a connectivity
// graph: it builds the Rips 2-complex, cones every inner boundary (regions
// declared as not requiring coverage), and reports whether the first
// homology group is trivial. A trivial H1 certifies blanket coverage under
// the HGC range condition Rs ≥ Rc/√3; a non-trivial H1 reports a hole
// (possibly spuriously — see the möbius example).
func Verify(g *graph.Graph, innerBoundaries [][]graph.NodeID) bool {
	k := simplicial.Rips(g)
	for _, cyc := range innerBoundaries {
		k, _ = k.ConeFence(cyc)
	}
	return k.H1Trivial()
}

// Options configures HGC scheduling.
type Options struct {
	// Seed drives the deletion order.
	Seed int64
	// Mode selects the engine of the τ=3 pattern scheduler (Sequential by
	// default); ignored by ScheduleExact.
	Mode core.Mode
}

// Result is the outcome of an HGC scheduling run.
type Result struct {
	// Final is the reduced graph.
	Final *graph.Graph
	// Kept, KeptInternal, Deleted follow core.Result semantics.
	Kept, KeptInternal, Deleted []graph.NodeID
	// HomologyOK records whether the final set passes Verify.
	HomologyOK bool
}

// Schedule computes an HGC coverage set at triangle granularity: the τ = 3
// confine pattern (the only granularity HGC supports), with the final set
// verified against the homology criterion. Inner boundary cycles (all but
// the first) are coned for the verification, mirroring Ghrist et al.'s
// boundary repair.
func Schedule(net core.Network, opts Options) (Result, error) {
	res, err := core.Schedule(net, core.Options{Tau: 3, Seed: opts.Seed, Mode: opts.Mode})
	if err != nil {
		return Result{}, fmt.Errorf("hgc: %w", err)
	}
	var inner [][]graph.NodeID
	if len(net.BoundaryCycles) > 1 {
		inner = net.BoundaryCycles[1:]
	}
	return Result{
		Final:        res.Final,
		Kept:         res.Kept,
		KeptInternal: res.KeptInternal,
		Deleted:      res.Deleted,
		HomologyOK:   Verify(res.Final, inner),
	}, nil
}

// ScheduleExact runs the literal centralized HGC scheduling: visit internal
// nodes in random order and delete a node whenever the homology criterion
// still holds afterwards, repeating until no deletion survives
// verification. Every tentative deletion costs a full H1 computation, so
// this is intended for small networks (hundreds of nodes) and for
// validating Schedule.
func ScheduleExact(net core.Network, opts Options) (Result, error) {
	if err := net.Validate(); err != nil {
		return Result{}, fmt.Errorf("hgc: %w", err)
	}
	var inner [][]graph.NodeID
	if len(net.BoundaryCycles) > 1 {
		inner = net.BoundaryCycles[1:]
	}
	g := net.G
	if !Verify(g, inner) {
		return Result{}, fmt.Errorf("hgc: input network fails the homology criterion")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var deleted []graph.NodeID
	for {
		candidates := internalNodes(net, g)
		rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		progressed := false
		for _, v := range candidates {
			if !g.HasNode(v) {
				continue
			}
			reduced := g.DeleteVertices([]graph.NodeID{v})
			if Verify(reduced, inner) {
				g = reduced
				deleted = append(deleted, v)
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	kept := g.Nodes()
	var internal []graph.NodeID
	for _, v := range kept {
		if !net.Boundary[v] {
			internal = append(internal, v)
		}
	}
	return Result{
		Final:        g,
		Kept:         kept,
		KeptInternal: internal,
		Deleted:      deleted,
		HomologyOK:   true,
	}, nil
}

func internalNodes(net core.Network, g *graph.Graph) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range g.Nodes() {
		if !net.Boundary[v] {
			out = append(out, v)
		}
	}
	return out
}
