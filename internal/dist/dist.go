// Package dist realises the paper's distributed coverage algorithm (§V-B)
// with explicit message passing over a simulated radio network.
//
// Each node runs the same local protocol:
//
//  1. Neighbourhood discovery — k rounds of adjacency gossip give every
//     node the connectivity among its k-hop neighbours (k = ⌈τ/2⌉).
//  2. Redundancy testing — every internal node evaluates the void-
//     preserving transformation on its local view.
//  3. MIS election — deletable nodes draw random priorities and flood them
//     m−1 hops (m = ⌈τ/2⌉+1); a candidate that hears no higher priority
//     wins, which makes winners pairwise ≥ m hops apart, exactly the
//     independence radius at which simultaneous deletions are safe.
//  4. Deletion — winners announce a DELETE that floods k hops so that
//     affected nodes update their views, and the process iterates until no
//     node anywhere is deletable.
//
// The runtime is a deterministic synchronous-round simulator with optional
// per-link message loss and fail-stop crash injection. Determinism comes
// from sorted iteration plus per-(seed,node,round) hashed priorities, so a
// run is reproducible from its Config alone.
package dist

import (
	"fmt"
	"sort"

	"dcc/internal/core"
	"dcc/internal/graph"
	"dcc/internal/vpt"
)

// Config parameterises a distributed run.
type Config struct {
	// Tau is the confine size (≥ 3).
	Tau int
	// Seed drives priorities and loss decisions.
	Seed int64
	// Loss is the independent per-link message-loss probability in [0,1).
	// With loss, liveness is preserved but the safety guarantee of
	// pairwise-independent deletions can be violated (documented
	// limitation; real deployments would acknowledge candidate floods).
	Loss float64
	// MaxSuperRounds bounds the deletion iterations (0 = number of nodes).
	MaxSuperRounds int
	// CrashNodes fail silently (fail-stop) at the start of super-round
	// CrashAtSuperRound (1-based; 0 disables).
	CrashNodes        []graph.NodeID
	CrashAtSuperRound int
}

// Stats counts the communication work of a run.
type Stats struct {
	// CommRounds is the number of synchronous radio rounds.
	CommRounds int
	// Broadcasts counts radio frames sent (one frame reaches all live
	// neighbours, modulo loss).
	Broadcasts int
	// Delivered counts frame receptions.
	Delivered int
	// BytesSent counts wire-format frame bytes transmitted.
	BytesSent int
	// BytesDelivered counts wire-format frame bytes received.
	BytesDelivered int
	// SuperRounds counts deletion iterations.
	SuperRounds int
	// Tests counts local deletability evaluations.
	Tests int
}

// Result is the outcome of a distributed run.
type Result struct {
	// Final is the surviving connectivity graph (crashed nodes excluded).
	Final *graph.Graph
	// Kept lists surviving nodes; KeptInternal the non-boundary ones.
	Kept, KeptInternal []graph.NodeID
	// Deleted lists nodes removed by the protocol, in deletion order.
	Deleted []graph.NodeID
	// Crashed lists nodes removed by fault injection.
	Crashed []graph.NodeID
	// Stats summarises communication and computation.
	Stats Stats
}

// Run executes the distributed confine-coverage protocol.
func Run(net core.Network, cfg Config) (Result, error) {
	if err := net.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Tau < 3 {
		return Result{}, fmt.Errorf("dist: tau %d < 3", cfg.Tau)
	}
	if cfg.Loss < 0 || cfg.Loss >= 1 {
		return Result{}, fmt.Errorf("dist: loss %v outside [0,1)", cfg.Loss)
	}
	r := newRuntime(net, cfg)
	r.discover()
	r.mainLoop()
	return r.result(), nil
}

type runtime struct {
	cfg   Config
	net   core.Network
	k, m  int
	cur   *graph.Graph // ground-truth surviving topology
	views map[graph.NodeID]*localView
	// cached deletability per node; valid while the node's view is
	// unchanged.
	deletable map[graph.NodeID]bool
	deleted   []graph.NodeID
	crashed   map[graph.NodeID]bool
	crashList []graph.NodeID
	rng       *splitMix
	stats     Stats
}

func newRuntime(net core.Network, cfg Config) *runtime {
	r := &runtime{
		cfg:       cfg,
		net:       net,
		k:         vpt.NeighborhoodRadius(cfg.Tau),
		m:         vpt.IndependenceRadius(cfg.Tau),
		cur:       net.G,
		views:     make(map[graph.NodeID]*localView, net.G.NumNodes()),
		deletable: make(map[graph.NodeID]bool),
		crashed:   make(map[graph.NodeID]bool),
		rng:       newSplitMix(uint64(cfg.Seed) ^ 0x9e3779b97f4a7c15),
	}
	for _, v := range net.G.Nodes() {
		r.views[v] = newLocalView(v, net.G.Neighbors(v))
	}
	return r
}

// liveNodes returns the surviving, non-crashed nodes in sorted order.
func (r *runtime) liveNodes() []graph.NodeID {
	nodes := r.cur.Nodes()
	out := nodes[:0]
	for _, v := range nodes {
		if !r.crashed[v] {
			out = append(out, v)
		}
	}
	return out
}

// dropLink reports whether a particular delivery is lost.
func (r *runtime) dropLink() bool {
	return r.cfg.Loss > 0 && r.rng.float64() < r.cfg.Loss
}

// broadcastRound delivers one synchronous round: every sender with a
// pending frame broadcasts it; each surviving link decodes the frame at
// the receiver and hands the packets to onPacket. Frames travel through
// the real wire format (EncodeFrame/DecodeFrame), so byte accounting and
// serialisation are exercised on every delivery.
func (r *runtime) broadcastRound(frames map[graph.NodeID][]Packet, onPacket func(from, to graph.NodeID, p Packet)) {
	senders := make([]graph.NodeID, 0, len(frames))
	for v, pkts := range frames {
		if len(pkts) > 0 {
			senders = append(senders, v)
		}
	}
	if len(senders) == 0 {
		return
	}
	r.stats.CommRounds++
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
	for _, from := range senders {
		if r.crashed[from] {
			continue
		}
		frame, err := EncodeFrame(frames[from])
		if err != nil {
			// Node IDs are validated at build time; an encoding failure is
			// a programming error.
			panic(fmt.Sprintf("dist: encode frame: %v", err))
		}
		r.stats.Broadcasts++
		r.stats.BytesSent += len(frame)
		for _, to := range r.cur.Neighbors(from) {
			if r.crashed[to] || r.dropLink() {
				continue
			}
			packets, err := DecodeFrame(frame)
			if err != nil {
				panic(fmt.Sprintf("dist: decode frame: %v", err))
			}
			r.stats.Delivered++
			r.stats.BytesDelivered += len(frame)
			for _, p := range packets {
				onPacket(from, to, p)
			}
		}
	}
}

// discover runs k rounds of adjacency gossip so every node learns the
// connectivity among its k-hop neighbours.
func (r *runtime) discover() {
	pending := make(map[graph.NodeID][]Packet)
	for _, v := range r.liveNodes() {
		rec := r.views[v].record()
		pending[v] = []Packet{{Kind: MsgHello, Owner: rec.owner, Neighbors: rec.nbrs}}
	}
	for round := 0; round < r.k; round++ {
		next := make(map[graph.NodeID][]Packet)
		delivered := false
		r.broadcastRound(pending, func(_, to graph.NodeID, p Packet) {
			delivered = true
			if p.Kind != MsgHello {
				return
			}
			if r.views[to].learn(adjRecord{owner: p.Owner, nbrs: p.Neighbors}) {
				next[to] = append(next[to], p)
			}
		})
		if !delivered {
			break
		}
		pending = next
	}
}

// candidate is one node's MIS bid.
type candidate struct {
	origin   graph.NodeID
	priority uint64
}

// wins reports whether a beats b (higher priority, ID as tie-break).
func (a candidate) wins(b candidate) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.origin > b.origin
}

func (r *runtime) mainLoop() {
	maxRounds := r.cfg.MaxSuperRounds
	if maxRounds <= 0 {
		maxRounds = r.net.G.NumNodes() + 1
	}
	for sr := 1; sr <= maxRounds; sr++ {
		if r.cfg.CrashAtSuperRound == sr {
			r.injectCrashes()
		}
		cands := r.evaluateCandidates()
		if len(cands) == 0 {
			return
		}
		r.stats.SuperRounds++
		winners := r.electMIS(cands, sr)
		if len(winners) == 0 {
			// All candidate floods lost; retry with fresh priorities.
			continue
		}
		r.debugCheckWinners(cands, winners, sr) // no-op unless -tags dccdebug
		before := len(r.deleted)
		r.deleteWinners(winners)
		r.debugCheckDeletionLog(before, winners)
	}
}

func (r *runtime) injectCrashes() {
	for _, v := range r.cfg.CrashNodes {
		if r.cur.HasNode(v) && !r.crashed[v] {
			r.crashed[v] = true
			r.crashList = append(r.crashList, v)
		}
	}
}

// evaluateCandidates runs the local VPT test at every internal node whose
// view changed since its last test.
func (r *runtime) evaluateCandidates() []graph.NodeID {
	var cands []graph.NodeID
	for _, v := range r.liveNodes() {
		if r.net.Boundary[v] {
			continue
		}
		view := r.views[v]
		if view.changed {
			view.changed = false
			r.stats.Tests++
			r.deletable[v] = vpt.NeighborhoodDeletable(
				view.neighborhoodGraph(r.k), view.liveNeighbors(v), r.cfg.Tau)
		}
		if r.deletable[v] {
			cands = append(cands, v)
		}
	}
	return cands
}

// electMIS floods candidate priorities m−1 hops and returns the local
// winners: candidates that heard no stronger bid.
func (r *runtime) electMIS(cands []graph.NodeID, superRound int) []graph.NodeID {
	bids := make(map[graph.NodeID]candidate, len(cands))
	heard := make(map[graph.NodeID]map[graph.NodeID]candidate) // node -> origin -> bid
	pending := make(map[graph.NodeID][]Packet)
	for _, v := range cands {
		bid := candidate{
			origin:   v,
			priority: hashPriority(uint64(r.cfg.Seed), uint64(v), uint64(superRound)),
		}
		bids[v] = bid
		pending[v] = []Packet{{Kind: MsgCandidate, Origin: v, Priority: bid.priority}}
	}
	for hop := 0; hop < r.m-1; hop++ {
		next := make(map[graph.NodeID][]Packet)
		delivered := false
		r.broadcastRound(pending, func(_, to graph.NodeID, p Packet) {
			delivered = true
			if p.Kind != MsgCandidate || p.Origin == to {
				return
			}
			m, ok := heard[to]
			if !ok {
				m = make(map[graph.NodeID]candidate)
				heard[to] = m
			}
			if _, seen := m[p.Origin]; seen {
				return
			}
			m[p.Origin] = candidate{origin: p.Origin, priority: p.Priority}
			next[to] = append(next[to], p)
		})
		if !delivered {
			break
		}
		pending = next
	}
	var winners []graph.NodeID
	for _, v := range cands {
		own := bids[v]
		lost := false
		//lint:ordered ∃-reduction: "did any heard bid beat mine" is order-independent
		for _, other := range heard[v] {
			if other.wins(own) {
				lost = true
				break
			}
		}
		if !lost {
			winners = append(winners, v)
		}
	}
	sort.Slice(winners, func(i, j int) bool { return winners[i] < winners[j] })
	return winners
}

// deleteWinners removes the winners from the ground truth and floods their
// DELETE announcements k hops so neighbours update their local views.
func (r *runtime) deleteWinners(winners []graph.NodeID) {
	// The winner's own farewell broadcast happens while its links are
	// still up.
	farewell := make(map[graph.NodeID][]Packet, len(winners))
	for _, w := range winners {
		farewell[w] = []Packet{{Kind: MsgDelete, Origin: w}}
	}
	pending := make(map[graph.NodeID][]Packet) // forwarder -> announcements
	r.broadcastRound(farewell, func(_, to graph.NodeID, p Packet) {
		if p.Kind == MsgDelete && r.applyDelete(to, p.Origin) {
			pending[to] = append(pending[to], p)
		}
	})
	for _, w := range winners {
		r.deleted = append(r.deleted, w)
	}
	r.cur = r.cur.DeleteVertices(winners)

	// Forward the announcements k−1 more hops among survivors.
	for hop := 1; hop < r.k; hop++ {
		//lint:ordered prune-only pass; broadcastRound sorts the surviving senders
		for v := range pending {
			if !r.cur.HasNode(v) {
				delete(pending, v)
			}
		}
		next := make(map[graph.NodeID][]Packet)
		delivered := false
		r.broadcastRound(pending, func(_, to graph.NodeID, p Packet) {
			delivered = true
			if p.Kind == MsgDelete && r.applyDelete(to, p.Origin) {
				next[to] = append(next[to], p)
			}
		})
		if !delivered {
			break
		}
		pending = next
	}
}

// applyDelete updates node's view with a DELETE(origin); returns true when
// the announcement was new (and should be forwarded).
func (r *runtime) applyDelete(node, origin graph.NodeID) bool {
	view := r.views[node]
	if !view.markDead(origin) {
		return false
	}
	view.dropNeighbor(origin)
	return true
}

func (r *runtime) result() Result {
	final := r.cur.DeleteVertices(r.crashList)
	kept := final.Nodes()
	var internal []graph.NodeID
	for _, v := range kept {
		if !r.net.Boundary[v] {
			internal = append(internal, v)
		}
	}
	return Result{
		Final:        final,
		Kept:         kept,
		KeptInternal: internal,
		Deleted:      r.deleted,
		Crashed:      append([]graph.NodeID(nil), r.crashList...),
		Stats:        r.stats,
	}
}

// splitMix is a tiny deterministic PRNG (SplitMix64) used for loss
// decisions; math/rand is avoided here so that the stream is stable across
// Go versions.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix) float64() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

// hashPriority derives a stable per-(seed, node, round) MIS priority.
func hashPriority(seed, node, round uint64) uint64 {
	sm := newSplitMix(seed*0x100000001b3 ^ node*0x9e3779b97f4a7c15 ^ round*0x85ebca77c2b2ae63)
	return sm.next()
}
