// Package dist realises the paper's distributed coverage algorithm (§V-B)
// with explicit message passing over a simulated radio network.
//
// Each node runs the same local protocol:
//
//  1. Neighbourhood discovery — k rounds of adjacency gossip give every
//     node the connectivity among its k-hop neighbours (k = ⌈τ/2⌉).
//  2. Redundancy testing — every internal node evaluates the void-
//     preserving transformation on its local view.
//  3. MIS election — deletable nodes draw random priorities and flood them
//     m−1 hops (m = ⌈τ/2⌉+1); a candidate that hears no higher priority
//     wins, which makes winners pairwise ≥ m hops apart, exactly the
//     independence radius at which simultaneous deletions are safe.
//  4. Deletion — winners announce a DELETE that floods k hops so that
//     affected nodes update their views, and the process iterates until no
//     node anywhere is deletable.
//
// The runtime is a deterministic synchronous-round simulator with optional
// per-link message loss and structured fault injection (fail-stop crashes,
// crash-recover, Gilbert–Elliott bursty loss, timed partitions — see
// FaultPlan). Determinism comes from sorted iteration plus
// per-(seed,node,round) hashed priorities, so a run is reproducible from
// its Config alone.
//
// Delivery of the safety-critical CANDIDATE and DELETE floods is
// selectable (Config.Reliability): the paper's bare fire-and-forget
// broadcasts, or a per-hop ACK/retransmit layer over sequenced v2 frames
// that restores MIS independence under message loss (DESIGN.md §10).
package dist

import (
	"fmt"
	"sort"

	"dcc/internal/core"
	"dcc/internal/graph"
	"dcc/internal/telemetry"
	"dcc/internal/vpt"
)

// Config parameterises a distributed run.
type Config struct {
	// Tau is the confine size (≥ 3).
	Tau int
	// Seed drives priorities and loss decisions.
	Seed int64
	// Loss is the independent per-link message-loss probability in [0,1).
	// Under ReliabilityNone, loss preserves liveness but the safety
	// guarantee of pairwise-independent deletions can be violated (the
	// paper's documented limitation); AckFloods closes that gap by
	// acknowledging the candidate and delete floods.
	Loss float64
	// Reliability selects the delivery guarantee of the CANDIDATE and
	// DELETE floods: ReliabilityNone (zero value) reproduces the paper's
	// bare floods, AckFloods adds per-hop ACK/retransmit.
	Reliability Reliability
	// MaxSuperRounds bounds the deletion iterations (0 = number of nodes).
	MaxSuperRounds int
	// CrashNodes fail silently (fail-stop) at the start of super-round
	// CrashAtSuperRound (1-based; 0 disables). The pair is the legacy
	// single-event schedule; it is merged into Faults at startup.
	CrashNodes        []graph.NodeID
	CrashAtSuperRound int
	// Faults optionally schedules structured fault injection: per-node
	// crash and crash-recover times, Gilbert–Elliott bursty link loss,
	// and timed partition/heal events, all reproducible from the plan.
	Faults *FaultPlan
	// Telemetry, when non-nil, receives the run's Stats as deterministic
	// dist.* counters (comm_rounds, broadcasts, retransmits, ...) plus —
	// when the registry has a clock — the dist.run span. Published after
	// the run completes; collection never changes the Result.
	Telemetry *telemetry.Registry
}

// Stats counts the communication work of a run.
type Stats struct {
	// CommRounds is the number of synchronous radio rounds.
	CommRounds int
	// Broadcasts counts radio frames sent (one frame reaches all live
	// neighbours, modulo loss).
	Broadcasts int
	// Delivered counts frame receptions.
	Delivered int
	// BytesSent counts wire-format frame bytes transmitted.
	BytesSent int
	// BytesDelivered counts wire-format frame bytes received.
	BytesDelivered int
	// Rounds counts deletion iterations (the vocabulary shared with the
	// centralized scheduler's Stats).
	Rounds int
	// SuperRounds is the former name of Rounds, kept in sync for one
	// final release.
	//
	// Deprecated: use Rounds. This alias is scheduled for removal in the
	// next release; no code in this module may read it (the alias audit
	// in api_test.go fails the build on new internal uses), and the only
	// writer is the result() sync that keeps external readers working
	// through the deprecation window. MaxSuperRounds (the config bound)
	// is a different, non-deprecated name: a "super-round" remains the
	// protocol's unit of progress, only the stats vocabulary is unified.
	SuperRounds int
	// Deletions counts nodes removed by the protocol.
	Deletions int
	// Tests counts local deletability evaluations.
	Tests int
	// AckFrames and AckBytes count the acknowledgement traffic of the
	// reliability layer (zero under ReliabilityNone).
	AckFrames int
	AckBytes  int
	// Retransmits counts data-frame rebroadcasts beyond each first
	// attempt.
	Retransmits int
	// Withdrawals counts candidates that gave up a super-round because
	// their bid's first hop could not be fully acknowledged.
	Withdrawals int
	// Suspicions counts ACK-timeout failure-detector events: a sender gave
	// up on a neighbour and marked it suspected-crashed in its local view.
	Suspicions int
	// IndependenceViolations counts elected winner pairs closer than the
	// independence radius m on the live communication topology — the
	// safety gap the reliability layer exists to close. The count is
	// ground-truth observability (a real node cannot compute it) and
	// consumes no randomness.
	IndependenceViolations int
}

// Result is the outcome of a distributed run.
type Result struct {
	// Final is the surviving connectivity graph (crashed nodes excluded).
	Final *graph.Graph
	// Kept lists surviving nodes; KeptInternal the non-boundary ones.
	Kept, KeptInternal []graph.NodeID
	// Deleted lists nodes removed by the protocol, in deletion order.
	Deleted []graph.NodeID
	// Crashed lists nodes removed by fault injection and still down at
	// the end of the run.
	Crashed []graph.NodeID
	// Recovered lists nodes that crashed and later rejoined, in recovery
	// order.
	Recovered []graph.NodeID
	// Stats summarises communication and computation.
	Stats Stats
}

// Run executes the distributed confine-coverage protocol.
func Run(net core.Network, cfg Config) (Result, error) {
	if err := net.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Tau < 3 {
		return Result{}, fmt.Errorf("dist: tau %d: %w", cfg.Tau, core.ErrTauTooSmall)
	}
	if cfg.Loss < 0 || cfg.Loss >= 1 {
		return Result{}, fmt.Errorf("dist: loss %v outside [0,1)", cfg.Loss)
	}
	if cfg.Reliability != ReliabilityNone && cfg.Reliability != AckFloods {
		return Result{}, fmt.Errorf("dist: unknown reliability mode %d", cfg.Reliability)
	}
	if cfg.CrashAtSuperRound < 0 {
		return Result{}, fmt.Errorf("dist: crash super-round %d < 0", cfg.CrashAtSuperRound)
	}
	for _, v := range cfg.CrashNodes {
		if !net.G.HasNode(v) {
			return Result{}, fmt.Errorf("dist: crash node %d not in network", v)
		}
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.validate(net.G, cfg.Loss); err != nil {
			return Result{}, err
		}
	}
	sp := cfg.Telemetry.StartSpan("dist.run")
	defer sp.End()
	r := newRuntime(net, cfg)
	r.discover()
	r.mainLoop()
	res := r.result()
	publishRunStats(cfg.Telemetry, res.Stats)
	return res, nil
}

// publishRunStats mirrors a completed run's Stats into deterministic
// counters. Stats are a pure function of (Network, Config), so the
// counters stay worker-count-invariant no matter how runs are fanned out.
func publishRunStats(reg *telemetry.Registry, s Stats) {
	if reg == nil {
		return
	}
	reg.Counter("dist.runs").Inc()
	reg.Counter("dist.comm_rounds").Add(int64(s.CommRounds))
	reg.Counter("dist.broadcasts").Add(int64(s.Broadcasts))
	reg.Counter("dist.delivered").Add(int64(s.Delivered))
	reg.Counter("dist.bytes_sent").Add(int64(s.BytesSent))
	reg.Counter("dist.bytes_delivered").Add(int64(s.BytesDelivered))
	reg.Counter("dist.rounds").Add(int64(s.Rounds))
	reg.Counter("dist.deletions").Add(int64(s.Deletions))
	reg.Counter("dist.tests").Add(int64(s.Tests))
	reg.Counter("dist.ack_frames").Add(int64(s.AckFrames))
	reg.Counter("dist.ack_bytes").Add(int64(s.AckBytes))
	reg.Counter("dist.retransmits").Add(int64(s.Retransmits))
	reg.Counter("dist.withdrawals").Add(int64(s.Withdrawals))
	reg.Counter("dist.suspicions").Add(int64(s.Suspicions))
	reg.Counter("dist.independence_violations").Add(int64(s.IndependenceViolations))
}

type runtime struct {
	cfg   Config
	net   core.Network
	k, m  int
	cur   *graph.Graph // ground-truth surviving topology
	views map[graph.NodeID]*localView
	// cached deletability per node; valid while the node's view is
	// unchanged.
	deletable map[graph.NodeID]bool
	deleted   []graph.NodeID
	crashed   map[graph.NodeID]bool
	crashList []graph.NodeID
	recovered []graph.NodeID
	faults    *faultState
	rel       *reliableState
	// pendingSuspects queues failure-detector events (detector, suspect)
	// for the next suspicion-announcement flood.
	pendingSuspects []suspicion
	rng             *splitMix
	// tester holds the reusable deletability-test scratch (graph buffers
	// and GF(2) workspace) shared by every per-node candidate evaluation;
	// evaluation is single-threaded within a runtime.
	tester *vpt.Tester
	stats  Stats
}

// suspicion is one ACK-timeout failure-detector event.
type suspicion struct{ by, of graph.NodeID }

func newRuntime(net core.Network, cfg Config) *runtime {
	r := &runtime{
		cfg:       cfg,
		net:       net,
		k:         vpt.NeighborhoodRadius(cfg.Tau),
		m:         vpt.IndependenceRadius(cfg.Tau),
		cur:       net.G,
		views:     make(map[graph.NodeID]*localView, net.G.NumNodes()),
		deletable: make(map[graph.NodeID]bool),
		crashed:   make(map[graph.NodeID]bool),
		rng:       newSplitMix(uint64(cfg.Seed) ^ 0x9e3779b97f4a7c15),
		tester:    vpt.NewTester(),
	}
	for _, v := range net.G.Nodes() {
		r.views[v] = newLocalView(v, net.G.Neighbors(v))
	}
	plan := FaultPlan{}
	if cfg.Faults != nil {
		plan = *cfg.Faults
	}
	if cfg.CrashAtSuperRound > 0 && len(cfg.CrashNodes) > 0 {
		// Merge the legacy single-event schedule into the plan without
		// mutating the caller's slice.
		crashes := make([]CrashEvent, 0, len(plan.Crashes)+len(cfg.CrashNodes))
		crashes = append(crashes, plan.Crashes...)
		for _, v := range cfg.CrashNodes {
			crashes = append(crashes, CrashEvent{Node: v, At: cfg.CrashAtSuperRound})
		}
		plan.Crashes = crashes
	}
	if len(plan.Crashes) > 0 || plan.Bursty != nil || len(plan.Partitions) > 0 {
		r.faults = newFaultState(plan, net.G)
	}
	if cfg.Reliability == AckFloods {
		r.rel = newReliableState()
	}
	return r
}

// liveNodes returns the surviving, non-crashed nodes in sorted order.
// Graph.Nodes hands out a fresh copy (a documented guarantee), so the
// in-place filter below cannot alias graph internals or earlier Nodes()
// results.
func (r *runtime) liveNodes() []graph.NodeID {
	nodes := r.cur.Nodes()
	out := nodes[:0]
	for _, v := range nodes {
		if !r.crashed[v] {
			out = append(out, v)
		}
	}
	return out
}

// unreliableLossy reports whether the run combines fire-and-forget floods
// with a lossy channel — the one configuration whose MIS-independence
// guarantee is explicitly waived (see Config.Loss). The dccdebug topology
// assertions skip exactly this combination and stay armed everywhere else,
// including AckFloods under loss.
func (r *runtime) unreliableLossy() bool {
	if r.cfg.Reliability != ReliabilityNone {
		return false
	}
	if r.cfg.Loss > 0 {
		return true
	}
	return r.faults != nil && r.faults.plan.Bursty != nil
}

// dropDelivery reports whether a particular delivery is lost: severed by
// an active partition, dropped by the per-link Gilbert–Elliott chain, or
// dropped by the i.i.d. Loss model. Partition cuts consume no randomness,
// so the loss stream is unchanged by partition events.
func (r *runtime) dropDelivery(from, to graph.NodeID) bool {
	if r.faults != nil {
		if r.faults.linkCut(from, to) {
			return true
		}
		if r.faults.ge != nil {
			return r.faults.geDrop(from, to, r.rng)
		}
	}
	return r.cfg.Loss > 0 && r.rng.float64() < r.cfg.Loss
}

// proofOfLife clears any stale suspicion of a transmitting node: crashed
// and deleted nodes never transmit, so every reception proves its sender
// alive. Called on every delivery, before the packets are processed.
func (r *runtime) proofOfLife(from, to graph.NodeID) {
	r.views[to].resurrect(from)
}

// broadcastRound delivers one synchronous round: every sender with a
// pending frame broadcasts it; each surviving link decodes the frame at
// the receiver and hands the packets to onPacket. Frames travel through
// the real wire format (EncodeFrame/DecodeFrame), so byte accounting and
// serialisation are exercised on every delivery.
func (r *runtime) broadcastRound(frames map[graph.NodeID][]Packet, onPacket func(from, to graph.NodeID, p Packet)) {
	senders := make([]graph.NodeID, 0, len(frames))
	for v, pkts := range frames {
		if len(pkts) > 0 {
			senders = append(senders, v)
		}
	}
	if len(senders) == 0 {
		return
	}
	r.stats.CommRounds++
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
	for _, from := range senders {
		if r.crashed[from] {
			continue
		}
		frame, err := EncodeFrame(frames[from])
		if err != nil {
			// Node IDs are validated at build time; an encoding failure is
			// a programming error.
			panic(fmt.Sprintf("dist: encode frame: %v", err))
		}
		r.stats.Broadcasts++
		r.stats.BytesSent += len(frame)
		for _, to := range r.cur.Neighbors(from) {
			if r.crashed[to] || r.dropDelivery(from, to) {
				continue
			}
			packets, err := DecodeFrame(frame)
			if err != nil {
				panic(fmt.Sprintf("dist: decode frame: %v", err))
			}
			r.stats.Delivered++
			r.stats.BytesDelivered += len(frame)
			r.proofOfLife(from, to)
			for _, p := range packets {
				onPacket(from, to, p)
			}
		}
	}
}

// discover runs k rounds of adjacency gossip so every node learns the
// connectivity among its k-hop neighbours.
func (r *runtime) discover() {
	pending := make(map[graph.NodeID][]Packet)
	for _, v := range r.liveNodes() {
		rec := r.views[v].record()
		pending[v] = []Packet{{Kind: MsgHello, Owner: rec.owner, Neighbors: rec.nbrs}}
	}
	for round := 0; round < r.k; round++ {
		next := make(map[graph.NodeID][]Packet)
		delivered := false
		r.broadcastRound(pending, func(_, to graph.NodeID, p Packet) {
			delivered = true
			if p.Kind != MsgHello {
				return
			}
			if r.views[to].learn(adjRecord{owner: p.Owner, nbrs: p.Neighbors}) {
				next[to] = append(next[to], p)
			}
		})
		if !delivered {
			break
		}
		pending = next
	}
}

// candidate is one node's MIS bid.
type candidate struct {
	origin   graph.NodeID
	priority uint64
}

// wins reports whether a beats b (higher priority, ID as tie-break).
func (a candidate) wins(b candidate) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.origin > b.origin
}

func (r *runtime) mainLoop() {
	maxRounds := r.cfg.MaxSuperRounds
	if maxRounds <= 0 {
		maxRounds = r.net.G.NumNodes() + 1
	}
	for sr := 1; sr <= maxRounds; sr++ {
		if r.faults != nil {
			r.faults.enterSuperRound(sr)
			r.applyCrashes(r.faults.crashStart[sr])
			if rec := r.applyRecoveries(r.faults.recoverAt[sr]); len(rec) > 0 {
				r.resync(rec)
			}
		}
		if r.rel != nil {
			// Detect silent neighbours and spread the word before this
			// round's candidacy decisions, not after them.
			r.heartbeat()
			r.announceSuspicions()
		}
		cands := r.evaluateCandidates()
		if len(cands) == 0 {
			if r.faults != nil && r.faults.eventsAfter(sr) {
				continue // idle: scheduled faults can still change the world
			}
			return
		}
		r.stats.Rounds++
		winners, elected := r.electMIS(cands, sr)
		if len(winners) == 0 {
			// All candidate floods lost or withdrawn; retry with fresh
			// priorities.
			continue
		}
		r.debugCheckWinners(elected, winners, sr) // no-op unless -tags dccdebug
		r.countIndependenceViolations(winners)
		if r.faults != nil {
			// Adversarial schedule: a winner may die after the election
			// but before announcing its deletion.
			r.applyCrashes(r.faults.crashPost[sr])
			winners = r.filterLive(winners)
			if len(winners) == 0 {
				continue
			}
		}
		before := len(r.deleted)
		r.deleteWinners(winners)
		r.debugCheckDeletionLog(before, winners)
	}
}

// applyCrashes fail-stops the round's victims.
func (r *runtime) applyCrashes(evs []CrashEvent) {
	for _, c := range sortedCrashEvents(evs) {
		if r.cur.HasNode(c.Node) && !r.crashed[c.Node] {
			r.crashed[c.Node] = true
			r.crashList = append(r.crashList, c.Node)
		}
	}
}

// applyRecoveries rejoins crashed nodes with a fresh view seeded from
// their physical radio links; the caller follows up with a resync so the
// node relearns its k-hop neighbourhood and the deletions it missed.
func (r *runtime) applyRecoveries(nodes []graph.NodeID) []graph.NodeID {
	var rec []graph.NodeID
	for _, v := range sortedIDs(nodes) {
		if !r.crashed[v] || !r.cur.HasNode(v) {
			continue
		}
		r.crashed[v] = false
		for i, w := range r.crashList {
			if w == v {
				r.crashList = append(r.crashList[:i], r.crashList[i+1:]...)
				break
			}
		}
		r.recovered = append(r.recovered, v)
		r.views[v] = newLocalView(v, r.cur.Neighbors(v))
		delete(r.deletable, v)
		rec = append(rec, v)
	}
	return rec
}

// resync rebuilds a rejoining node's view: the node announces itself
// (REJOIN), and every direct neighbour that hears the announcement dumps
// its live adjacency records plus its deletion knowledge. The union of the
// 1-hop neighbours' k-hop records covers the rejoiner's own k-hop
// neighbourhood, so after one dump round its Γ^k view is complete again.
// The announcement itself floods k hops so that every node that suspected
// the rejoiner while it was down hears the proof of life and resurrects
// it.
func (r *runtime) resync(recovered []graph.NodeID) {
	pending := make(map[graph.NodeID][]Packet, len(recovered))
	for _, v := range recovered {
		pending[v] = []Packet{{Kind: MsgRejoin, Origin: v}}
	}
	dumpers := make(map[graph.NodeID]bool)
	seenRejoin := make(map[suspicion]bool) // (hearer, rejoiner) pairs
	for hop := 0; hop < r.k; hop++ {
		next := make(map[graph.NodeID][]Packet)
		delivered := false
		r.flood(pending, func(_, to graph.NodeID, p Packet) {
			delivered = true
			if p.Kind != MsgRejoin || p.Origin == to {
				return
			}
			r.views[to].resurrect(p.Origin)
			if hop == 0 {
				dumpers[to] = true
			}
			key := suspicion{by: to, of: p.Origin}
			if !seenRejoin[key] {
				seenRejoin[key] = true
				next[to] = append(next[to], p)
			}
		})
		if !delivered {
			break
		}
		pending = next
	}
	ids := make([]graph.NodeID, 0, len(dumpers))
	for v := range dumpers {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dump := make(map[graph.NodeID][]Packet, len(ids))
	for _, u := range ids {
		view := r.views[u]
		owners := make([]graph.NodeID, 0, len(view.records))
		for o := range view.records {
			owners = append(owners, o)
		}
		sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
		var pkts []Packet
		for _, o := range owners {
			if !view.dead[o] {
				pkts = append(pkts, Packet{Kind: MsgHello, Owner: o, Neighbors: view.records[o]})
			}
		}
		deads := make([]graph.NodeID, 0, len(view.dead))
		for d := range view.dead {
			deads = append(deads, d)
		}
		sort.Slice(deads, func(i, j int) bool { return deads[i] < deads[j] })
		for _, d := range deads {
			pkts = append(pkts, Packet{Kind: MsgDelete, Origin: d})
		}
		dump[u] = pkts
	}
	r.flood(dump, func(_, to graph.NodeID, p Packet) {
		switch p.Kind {
		case MsgHello:
			r.views[to].learn(adjRecord{owner: p.Owner, nbrs: p.Neighbors})
		case MsgDelete:
			r.applyDelete(to, p.Origin)
		}
	})
}

// heartbeat opens a super-round (AckFloods only) with one reliable beacon
// from every live node. A neighbour that stays silent through the beacon's
// retries is suspected crashed by every node adjacent to it — so a silent
// crash is detected by all its neighbours in the same round, before any
// node stakes a deletion on a view that still contains the phantom.
// Beacon deliveries double as proof of life, clearing stale suspicion of
// neighbours that came back after a partition healed or a crash recovered.
func (r *runtime) heartbeat() {
	frames := make(map[graph.NodeID][]Packet)
	for _, v := range r.liveNodes() {
		frames[v] = []Packet{{Kind: MsgHello, Owner: v}}
	}
	r.reliableRound(frames, func(_, _ graph.NodeID, _ Packet) {})
}

// announceSuspicions floods queued failure-detector events k hops as
// SUSPECT packets. Every node whose Γ^k view can contain a silent node x
// is within k hops of one of x's neighbours — all of which detect x at the
// same heartbeat — so after this flood no candidacy decision anywhere
// rests on the phantom. Receivers adopt the suspicion (reversible: any
// frame later heard from the suspect resurrects it) and abstain from
// candidacy while it stands, trading local liveness for global safety.
func (r *runtime) announceSuspicions() {
	if len(r.pendingSuspects) == 0 {
		return
	}
	pending := make(map[graph.NodeID][]Packet)
	for _, s := range r.pendingSuspects {
		if !r.crashed[s.by] {
			pending[s.by] = append(pending[s.by], Packet{Kind: MsgSuspect, Origin: s.of})
		}
	}
	r.pendingSuspects = r.pendingSuspects[:0]
	for hop := 0; hop < r.k; hop++ {
		next := make(map[graph.NodeID][]Packet)
		delivered := false
		r.flood(pending, func(_, to graph.NodeID, p Packet) {
			delivered = true
			if p.Kind != MsgSuspect || p.Origin == to {
				return
			}
			if r.views[to].markSuspect(p.Origin) {
				next[to] = append(next[to], p)
			}
		})
		if !delivered {
			break
		}
		pending = next
	}
}

// filterLive drops crashed nodes from a sorted ID list.
func (r *runtime) filterLive(ids []graph.NodeID) []graph.NodeID {
	out := ids[:0]
	for _, v := range ids {
		if !r.crashed[v] {
			out = append(out, v)
		}
	}
	return out
}

// commTopology is the live communication graph: surviving nodes minus
// crashed ones, minus links severed by active partitions. It is the
// topology on which flood reachability — and therefore MIS independence —
// is actually defined.
func (r *runtime) commTopology() *graph.Graph {
	if len(r.crashList) == 0 && (r.faults == nil || r.faults.activeCuts == 0) {
		return r.cur
	}
	b := graph.NewBuilder()
	for _, v := range r.cur.Nodes() {
		if !r.crashed[v] {
			b.AddNode(v)
		}
	}
	for _, e := range r.cur.Edges() {
		if r.crashed[e.U] || r.crashed[e.V] {
			continue
		}
		if r.faults != nil && r.faults.linkCut(e.U, e.V) {
			continue
		}
		b.AddEdge(e.U, e.V)
	}
	return b.MustBuild()
}

// countIndependenceViolations records elected winner pairs closer than m
// hops on the live communication topology — exactly the simultaneous
// deletions Theorem 5/6 forbids. Ground-truth observability only; no
// randomness is consumed and no behaviour changes.
func (r *runtime) countIndependenceViolations(winners []graph.NodeID) {
	if len(winners) < 2 {
		return
	}
	top := r.commTopology()
	for i, w := range winners {
		t := top.BFS(w, r.m-1)
		for _, o := range winners[i+1:] {
			if t.Depth(o) >= 0 {
				r.stats.IndependenceViolations++
			}
		}
	}
}

// evaluateCandidates runs the local VPT test at every internal node whose
// view changed since its last test.
//
// A node that currently suspects a neighbour crashed abstains from
// candidacy (quarantine): its deletability certificate was computed on a
// view it knows is degraded, and deleting itself could strand a suspect
// that is merely partitioned, not dead. Suspicion of a true crash never
// clears, so nodes adjacent to a silent crash stop deleting themselves —
// safety over liveness; suspicion of a partitioned neighbour is erased by
// the first frame heard from it after the partition heals.
func (r *runtime) evaluateCandidates() []graph.NodeID {
	var cands []graph.NodeID
	for _, v := range r.liveNodes() {
		if r.net.Boundary[v] {
			continue
		}
		view := r.views[v]
		if view.changed {
			view.changed = false
			r.stats.Tests++
			r.deletable[v] = r.tester.NeighborhoodDeletable(
				view.neighborhoodGraph(r.k), view.liveNeighbors(v), r.cfg.Tau)
		}
		if r.deletable[v] && len(view.suspect) == 0 {
			cands = append(cands, v)
		}
	}
	return cands
}

// electMIS floods candidate priorities m−1 hops and returns the local
// winners — candidates that heard no stronger bid — plus the effective
// electorate (candidates minus withdrawals). Under AckFloods, a candidate
// whose own first-hop broadcast could not be fully acknowledged withdraws
// for this super-round: its bid provably failed to reach its whole 1-hop
// neighbourhood, so self-electing would risk a non-independent deletion.
func (r *runtime) electMIS(cands []graph.NodeID, superRound int) (winners, elected []graph.NodeID) {
	bids := make(map[graph.NodeID]candidate, len(cands))
	heard := make(map[graph.NodeID]map[graph.NodeID]candidate) // node -> origin -> bid
	withdrawn := make(map[graph.NodeID]bool)
	pending := make(map[graph.NodeID][]Packet)
	for _, v := range cands {
		bid := candidate{
			origin:   v,
			priority: hashPriority(uint64(r.cfg.Seed), uint64(v), uint64(superRound)),
		}
		bids[v] = bid
		pending[v] = []Packet{{Kind: MsgCandidate, Origin: v, Priority: bid.priority}}
	}
	for hop := 0; hop < r.m-1; hop++ {
		next := make(map[graph.NodeID][]Packet)
		delivered := false
		gaveUp := r.flood(pending, func(_, to graph.NodeID, p Packet) {
			delivered = true
			if p.Kind != MsgCandidate || p.Origin == to {
				return
			}
			m, ok := heard[to]
			if !ok {
				m = make(map[graph.NodeID]candidate)
				heard[to] = m
			}
			if _, seen := m[p.Origin]; seen {
				return
			}
			m[p.Origin] = candidate{origin: p.Origin, priority: p.Priority}
			next[to] = append(next[to], p)
		})
		if hop == 0 {
			for _, v := range gaveUp {
				if _, isCand := bids[v]; isCand && !withdrawn[v] {
					withdrawn[v] = true
					r.stats.Withdrawals++
				}
			}
		}
		if !delivered {
			break
		}
		pending = next
	}
	elected = make([]graph.NodeID, 0, len(cands))
	for _, v := range cands {
		if !withdrawn[v] {
			elected = append(elected, v)
		}
	}
	for _, v := range elected {
		own := bids[v]
		lost := false
		//lint:ordered ∃-reduction: "did any heard bid beat mine" is order-independent
		for _, other := range heard[v] {
			if other.wins(own) {
				lost = true
				break
			}
		}
		if !lost {
			winners = append(winners, v)
		}
	}
	sort.Slice(winners, func(i, j int) bool { return winners[i] < winners[j] })
	return winners, elected
}

// deleteWinners removes the winners from the ground truth and floods their
// DELETE announcements k hops so neighbours update their local views.
func (r *runtime) deleteWinners(winners []graph.NodeID) {
	// The winner's own farewell broadcast happens while its links are
	// still up.
	farewell := make(map[graph.NodeID][]Packet, len(winners))
	for _, w := range winners {
		farewell[w] = []Packet{{Kind: MsgDelete, Origin: w}}
	}
	pending := make(map[graph.NodeID][]Packet) // forwarder -> announcements
	r.flood(farewell, func(_, to graph.NodeID, p Packet) {
		if p.Kind == MsgDelete && r.applyDelete(to, p.Origin) {
			pending[to] = append(pending[to], p)
		}
	})
	for _, w := range winners {
		r.deleted = append(r.deleted, w)
	}
	r.cur = r.cur.DeleteVertices(winners)

	// Forward the announcements k−1 more hops among survivors.
	for hop := 1; hop < r.k; hop++ {
		//lint:ordered prune-only pass; broadcastRound sorts the surviving senders
		for v := range pending {
			if !r.cur.HasNode(v) {
				delete(pending, v)
			}
		}
		next := make(map[graph.NodeID][]Packet)
		delivered := false
		r.flood(pending, func(_, to graph.NodeID, p Packet) {
			delivered = true
			if p.Kind == MsgDelete && r.applyDelete(to, p.Origin) {
				next[to] = append(next[to], p)
			}
		})
		if !delivered {
			break
		}
		pending = next
	}
}

// applyDelete updates node's view with a DELETE(origin); returns true when
// the announcement was new (and should be forwarded).
func (r *runtime) applyDelete(node, origin graph.NodeID) bool {
	view := r.views[node]
	if !view.markDead(origin) {
		return false
	}
	view.dropNeighbor(origin)
	return true
}

func (r *runtime) result() Result {
	final := r.cur.DeleteVertices(r.crashList)
	kept := final.Nodes()
	var internal []graph.NodeID
	for _, v := range kept {
		if !r.net.Boundary[v] {
			internal = append(internal, v)
		}
	}
	r.stats.SuperRounds = r.stats.Rounds // deprecated alias, synced for one final release
	r.stats.Deletions = len(r.deleted)
	return Result{
		Final:        final,
		Kept:         kept,
		KeptInternal: internal,
		Deleted:      r.deleted,
		Crashed:      append([]graph.NodeID(nil), r.crashList...),
		Recovered:    append([]graph.NodeID(nil), r.recovered...),
		Stats:        r.stats,
	}
}

// splitMix is a tiny deterministic PRNG (SplitMix64) used for loss
// decisions; math/rand is avoided here so that the stream is stable across
// Go versions.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix) float64() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

// hashPriority derives a stable per-(seed, node, round) MIS priority.
func hashPriority(seed, node, round uint64) uint64 {
	sm := newSplitMix(seed*0x100000001b3 ^ node*0x9e3779b97f4a7c15 ^ round*0x85ebca77c2b2ae63)
	return sm.next()
}
