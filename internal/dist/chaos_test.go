package dist

import (
	"fmt"
	"testing"

	"dcc/internal/core"
	"dcc/internal/graph"
)

// chaosPlans are the seeded fault schedules of the chaos matrix. Every
// plan is reproducible from its literal value: crash times, recovery
// times, partition windows and side seeds are all explicit, and the
// bursty-loss chains ride the run's own SplitMix stream.
func chaosPlans() []struct {
	name   string
	plan   *FaultPlan
	bursty bool // plan carries its own loss model; skip the iid-loss axis
} {
	return []struct {
		name   string
		plan   *FaultPlan
		bursty bool
	}{
		{name: "clean", plan: nil},
		// Crash victims are chosen so that removing them alone keeps the
		// τ-confine criterion satisfiable for every τ in the matrix: a
		// fail-stop crash is an uncertified removal no protocol can undo,
		// so a victim whose bare removal already breaks coverage (node 17
		// does, at τ=3) would make the cell unwinnable by construction.
		// TestChaosMatrix asserts this precondition before each faulty run.
		{name: "crashes", plan: &FaultPlan{
			Seed: 1,
			Crashes: []CrashEvent{
				{Node: 30, At: 1},
				{Node: 45, At: 2, AfterElection: true},
			},
		}},
		{name: "crash-recover", plan: &FaultPlan{
			Seed: 2,
			Crashes: []CrashEvent{
				{Node: 24, At: 1, RecoverAt: 3},
				{Node: 38, At: 2, RecoverAt: 5},
			},
		}},
		{name: "partition-heal", plan: &FaultPlan{
			Seed:       3,
			Partitions: []PartitionEvent{{At: 1, Heal: 3}},
		}},
		{name: "bursty", plan: &FaultPlan{
			Seed:   4,
			Bursty: &GilbertElliott{PGoodToBad: 0.1, PBadToGood: 0.35, LossGood: 0.02, LossBad: 0.5},
		}, bursty: true},
		{name: "kitchen-sink", plan: &FaultPlan{
			Seed:       5,
			Crashes:    []CrashEvent{{Node: 25, At: 2, RecoverAt: 4}},
			Partitions: []PartitionEvent{{At: 3, Heal: 5}},
		}},
	}
}

// checkRunIntegrity asserts the structural invariants every chaos run must
// satisfy regardless of reliability mode: a duplicate-free deletion log
// consistent with the final graph, and crashed nodes actually gone.
func checkRunIntegrity(t *testing.T, res Result) {
	t.Helper()
	seen := make(map[graph.NodeID]bool, len(res.Deleted))
	for _, d := range res.Deleted {
		if seen[d] {
			t.Fatalf("deletion log contains %d twice", d)
		}
		seen[d] = true
		if res.Final.HasNode(d) {
			t.Fatalf("deleted node %d still in final graph", d)
		}
	}
	for _, c := range res.Crashed {
		if res.Final.HasNode(c) {
			t.Fatalf("crashed node %d still in final graph", c)
		}
	}
}

// TestChaosMatrix sweeps (τ, loss model, fault plan) × reliability mode.
//
// Under AckFloods every cell must keep the safety invariant: zero
// independence violations (the dccdebug MIS-independence assertion backs
// this up when the matrix runs under -tags dccdebug, as scripts/check.sh
// does) and a survivor graph that passes the global τ-confine verifier.
//
// Under ReliabilityNone the same sweep must reproduce the documented
// Theorem 5/6 gap: at loss ≥ 0.1 at least one cell elects winner pairs
// inside the independence radius — proof that the harness can detect the
// original safety hole, not just that the fix hides it.
func TestChaosMatrix(t *testing.T) {
	net := testNet(t, 90, 8, 8, 1.9)
	taus := []int{3, 4, 5}
	losses := []float64{0, 0.1, 0.2}
	if testing.Short() {
		taus = []int{4}
		losses = []float64{0, 0.2}
	}
	noneViolations := 0
	for _, tau := range taus {
		for _, loss := range losses {
			for _, pc := range chaosPlans() {
				if pc.bursty && loss > 0 {
					continue // the plan brings its own loss model
				}
				name := fmt.Sprintf("tau=%d/loss=%v/%s", tau, loss, pc.name)
				t.Run("ack/"+name, func(t *testing.T) {
					// Precondition: the plan's permanent crashes must be
					// absorbable — their bare removal alone (no protocol)
					// keeps the criterion. Otherwise the cell is unwinnable
					// by construction, not by any protocol defect.
					if pc.plan != nil {
						var perm []graph.NodeID
						for _, c := range pc.plan.Crashes {
							if c.RecoverAt == 0 {
								perm = append(perm, c.Node)
							}
						}
						if len(perm) > 0 {
							ok, err := core.VerifyConfine(net.G.DeleteVertices(perm), net.BoundaryCycles, tau)
							if err != nil {
								t.Fatal(err)
							}
							if !ok {
								t.Fatalf("bad plan: bare removal of crash victims %v already breaks τ=%d confinement", perm, tau)
							}
						}
					}
					res, err := Run(net, Config{
						Tau:         tau,
						Seed:        1000 + int64(tau),
						Loss:        loss,
						Reliability: AckFloods,
						Faults:      pc.plan,
					})
					if err != nil {
						t.Fatal(err)
					}
					checkRunIntegrity(t, res)
					if res.Stats.IndependenceViolations != 0 {
						t.Fatalf("AckFloods cell has %d independence violations",
							res.Stats.IndependenceViolations)
					}
					ok, err := core.VerifyConfine(res.Final, net.BoundaryCycles, tau)
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						t.Fatal("AckFloods cell broke the τ-confine criterion")
					}
				})
				t.Run("none/"+name, func(t *testing.T) {
					res, err := Run(net, Config{
						Tau:         tau,
						Seed:        1000 + int64(tau),
						Loss:        loss,
						Reliability: ReliabilityNone,
						Faults:      pc.plan,
					})
					if err != nil {
						t.Fatal(err)
					}
					checkRunIntegrity(t, res)
					if loss >= 0.1 {
						noneViolations += res.Stats.IndependenceViolations
					}
				})
			}
		}
	}
	if noneViolations == 0 {
		t.Fatal("unreliable sweep at loss ≥ 0.1 produced no independence violations; " +
			"the harness cannot reproduce the documented gap")
	}
}
