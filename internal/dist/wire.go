package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dcc/internal/graph"
)

// The distributed protocol's wire format. Every radio frame is a sequence
// of packets:
//
//	frame   := version(1) count(uvarint) packet*
//	packet  := kind(1) body
//	HELLO   := owner(uvarint) n(uvarint) neighbor(uvarint)*   // adjacency gossip
//	CAND    := origin(uvarint) priority(8, big endian)        // MIS bid
//	DELETE  := origin(uvarint)                                // deletion announce
//
// Node IDs are non-negative and fit in uvarints. The simulator encodes
// every frame it transmits and decodes it at each receiver, so the format
// (and its size accounting) is exercised on every delivery, not just in
// round-trip tests.

// wireVersion is the frame format version.
const wireVersion = 1

// MsgKind discriminates packet bodies.
type MsgKind byte

// Message kinds of the coverage protocol.
const (
	MsgHello MsgKind = iota + 1
	MsgCandidate
	MsgDelete
)

// Errors returned by frame decoding.
var (
	ErrBadFrame   = errors.New("dist: malformed frame")
	ErrBadVersion = errors.New("dist: unsupported frame version")
)

// Packet is one protocol message. Fields are used according to Kind.
type Packet struct {
	Kind MsgKind
	// Owner and Neighbors carry a HELLO adjacency record.
	Owner     graph.NodeID
	Neighbors []graph.NodeID
	// Origin identifies the subject of CANDIDATE and DELETE packets.
	Origin graph.NodeID
	// Priority is the MIS bid of a CANDIDATE.
	Priority uint64
}

// appendPacket serialises p onto dst.
func appendPacket(dst []byte, p Packet) ([]byte, error) {
	dst = append(dst, byte(p.Kind))
	switch p.Kind {
	case MsgHello:
		if p.Owner < 0 {
			return nil, fmt.Errorf("dist: negative node id %d", p.Owner)
		}
		dst = binary.AppendUvarint(dst, uint64(p.Owner))
		dst = binary.AppendUvarint(dst, uint64(len(p.Neighbors)))
		for _, n := range p.Neighbors {
			if n < 0 {
				return nil, fmt.Errorf("dist: negative node id %d", n)
			}
			dst = binary.AppendUvarint(dst, uint64(n))
		}
	case MsgCandidate:
		if p.Origin < 0 {
			return nil, fmt.Errorf("dist: negative node id %d", p.Origin)
		}
		dst = binary.AppendUvarint(dst, uint64(p.Origin))
		dst = binary.BigEndian.AppendUint64(dst, p.Priority)
	case MsgDelete:
		if p.Origin < 0 {
			return nil, fmt.Errorf("dist: negative node id %d", p.Origin)
		}
		dst = binary.AppendUvarint(dst, uint64(p.Origin))
	default:
		return nil, fmt.Errorf("dist: unknown packet kind %d", p.Kind)
	}
	return dst, nil
}

// EncodeFrame serialises a batch of packets into one radio frame.
func EncodeFrame(packets []Packet) ([]byte, error) {
	buf := make([]byte, 0, 16+8*len(packets))
	buf = append(buf, wireVersion)
	buf = binary.AppendUvarint(buf, uint64(len(packets)))
	var err error
	for _, p := range packets {
		buf, err = appendPacket(buf, p)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeFrame parses a radio frame back into packets.
func DecodeFrame(frame []byte) ([]Packet, error) {
	if len(frame) == 0 {
		return nil, ErrBadFrame
	}
	if frame[0] != wireVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, frame[0])
	}
	rest := frame[1:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, ErrBadFrame
	}
	rest = rest[n:]
	if count > uint64(len(frame)) {
		return nil, ErrBadFrame // count cannot exceed the byte length
	}
	packets := make([]Packet, 0, count)
	readID := func() (graph.NodeID, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, ErrBadFrame
		}
		if v > math.MaxInt64 || graph.NodeID(v) < 0 {
			// IDs are non-negative ints; a uvarint above that range can
			// never have been produced by the encoder.
			return 0, fmt.Errorf("%w: node id %d out of range", ErrBadFrame, v)
		}
		rest = rest[n:]
		return graph.NodeID(v), nil
	}
	for i := uint64(0); i < count; i++ {
		if len(rest) == 0 {
			return nil, ErrBadFrame
		}
		p := Packet{Kind: MsgKind(rest[0])}
		rest = rest[1:]
		switch p.Kind {
		case MsgHello:
			owner, err := readID()
			if err != nil {
				return nil, err
			}
			p.Owner = owner
			cnt, n := binary.Uvarint(rest)
			if n <= 0 || cnt > uint64(len(frame)) {
				return nil, ErrBadFrame
			}
			rest = rest[n:]
			p.Neighbors = make([]graph.NodeID, 0, cnt)
			for j := uint64(0); j < cnt; j++ {
				id, err := readID()
				if err != nil {
					return nil, err
				}
				p.Neighbors = append(p.Neighbors, id)
			}
		case MsgCandidate:
			origin, err := readID()
			if err != nil {
				return nil, err
			}
			p.Origin = origin
			if len(rest) < 8 {
				return nil, ErrBadFrame
			}
			p.Priority = binary.BigEndian.Uint64(rest)
			rest = rest[8:]
		case MsgDelete:
			origin, err := readID()
			if err != nil {
				return nil, err
			}
			p.Origin = origin
		default:
			return nil, fmt.Errorf("%w: kind %d", ErrBadFrame, p.Kind)
		}
		packets = append(packets, p)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(rest))
	}
	return packets, nil
}
