package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dcc/internal/graph"
)

// The distributed protocol's wire format. Every radio frame is a sequence
// of packets:
//
//	frame   := v1 | v2
//	v1      := version(1)=1 count(uvarint) packet*
//	v2      := version(1)=2 seq(uvarint) count(uvarint) packet*
//	packet  := kind(1) body
//	HELLO   := owner(uvarint) n(uvarint) neighbor(uvarint)*   // adjacency gossip
//	CAND    := origin(uvarint) priority(8, big endian)        // MIS bid
//	DELETE  := origin(uvarint)                                // deletion announce
//	ACK     := origin(uvarint) seq(uvarint)                   // per-hop frame ack
//	REJOIN  := origin(uvarint)                                // crash-recover announce
//	SUSPECT := origin(uvarint)                                // failure-detector announce
//
// Version 2 (the reliability layer, DESIGN.md §10) adds a per-frame
// sequence number so receivers can deduplicate retransmissions and
// acknowledge exactly the frame they heard; an ACK names the original
// sender (origin) and the sequence number of the frame it acknowledges.
// Version 1 frames remain byte-compatible: every v1 frame the old encoder
// produced still decodes to the same packets.
//
// Node IDs are non-negative and fit in uvarints. The simulator encodes
// every frame it transmits and decodes it at each receiver, so the format
// (and its size accounting) is exercised on every delivery, not just in
// round-trip tests.

// Frame format versions. wireVersion is the legacy v1 (no sequence
// number); wireVersionSeq is the v2 layout carrying a per-frame sequence
// number for the ACK/retransmit reliability layer.
const (
	wireVersion    = 1
	wireVersionSeq = 2
)

// MsgKind discriminates packet bodies.
type MsgKind byte

// Message kinds of the coverage protocol.
const (
	MsgHello MsgKind = iota + 1
	MsgCandidate
	MsgDelete
	MsgAck     // per-hop acknowledgement of a sequenced frame
	MsgRejoin  // crash-recover announcement soliciting a view resync
	MsgSuspect // ACK-timeout failure-detector announcement
)

// Errors returned by frame decoding.
var (
	ErrBadFrame   = errors.New("dist: malformed frame")
	ErrBadVersion = errors.New("dist: unsupported frame version")
)

// Packet is one protocol message. Fields are used according to Kind.
type Packet struct {
	Kind MsgKind
	// Owner and Neighbors carry a HELLO adjacency record.
	Owner     graph.NodeID
	Neighbors []graph.NodeID
	// Origin identifies the subject of CANDIDATE, DELETE, ACK and REJOIN
	// packets; for an ACK it names the sender of the acknowledged frame.
	Origin graph.NodeID
	// Priority is the MIS bid of a CANDIDATE.
	Priority uint64
	// Seq is the sequence number of the frame an ACK acknowledges.
	Seq uint64
}

// appendPacket serialises p onto dst.
func appendPacket(dst []byte, p Packet) ([]byte, error) {
	dst = append(dst, byte(p.Kind))
	switch p.Kind {
	case MsgHello:
		if p.Owner < 0 {
			return nil, fmt.Errorf("dist: negative node id %d", p.Owner)
		}
		dst = binary.AppendUvarint(dst, uint64(p.Owner))
		dst = binary.AppendUvarint(dst, uint64(len(p.Neighbors)))
		for _, n := range p.Neighbors {
			if n < 0 {
				return nil, fmt.Errorf("dist: negative node id %d", n)
			}
			dst = binary.AppendUvarint(dst, uint64(n))
		}
	case MsgCandidate:
		if p.Origin < 0 {
			return nil, fmt.Errorf("dist: negative node id %d", p.Origin)
		}
		dst = binary.AppendUvarint(dst, uint64(p.Origin))
		dst = binary.BigEndian.AppendUint64(dst, p.Priority)
	case MsgDelete, MsgRejoin, MsgSuspect:
		if p.Origin < 0 {
			return nil, fmt.Errorf("dist: negative node id %d", p.Origin)
		}
		dst = binary.AppendUvarint(dst, uint64(p.Origin))
	case MsgAck:
		if p.Origin < 0 {
			return nil, fmt.Errorf("dist: negative node id %d", p.Origin)
		}
		dst = binary.AppendUvarint(dst, uint64(p.Origin))
		dst = binary.AppendUvarint(dst, p.Seq)
	default:
		return nil, fmt.Errorf("dist: unknown packet kind %d", p.Kind)
	}
	return dst, nil
}

// EncodeFrame serialises a batch of packets into one v1 radio frame (no
// sequence number; the unreliable-flood baseline).
func EncodeFrame(packets []Packet) ([]byte, error) {
	buf := make([]byte, 0, 16+8*len(packets))
	buf = append(buf, wireVersion)
	buf = binary.AppendUvarint(buf, uint64(len(packets)))
	var err error
	for _, p := range packets {
		buf, err = appendPacket(buf, p)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// EncodeFrameV2 serialises a batch of packets into one v2 radio frame
// carrying the sender's per-frame sequence number (the reliability layer).
func EncodeFrameV2(seq uint64, packets []Packet) ([]byte, error) {
	buf := make([]byte, 0, 24+8*len(packets))
	buf = append(buf, wireVersionSeq)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(packets)))
	var err error
	for _, p := range packets {
		buf, err = appendPacket(buf, p)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Frame is a decoded radio frame: its wire version, the sequence number
// (v2 only; zero for v1 frames), and the packet batch.
type Frame struct {
	Version byte
	Seq     uint64
	Packets []Packet
}

// Encode re-serialises a decoded frame in its original version.
func (f Frame) Encode() ([]byte, error) {
	switch f.Version {
	case wireVersion:
		return EncodeFrame(f.Packets)
	case wireVersionSeq:
		return EncodeFrameV2(f.Seq, f.Packets)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, f.Version)
	}
}

// DecodeFrame parses a v1 radio frame back into packets. It is the legacy
// entry point of the unreliable baseline and rejects sequenced v2 frames;
// version-aware receivers use DecodeFrameAny.
func DecodeFrame(frame []byte) ([]Packet, error) {
	if len(frame) == 0 {
		return nil, ErrBadFrame
	}
	if frame[0] != wireVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, frame[0])
	}
	f, err := DecodeFrameAny(frame)
	if err != nil {
		return nil, err
	}
	return f.Packets, nil
}

// DecodeFrameAny parses a radio frame of any supported version (v1 or v2)
// back into packets plus frame metadata.
func DecodeFrameAny(frame []byte) (Frame, error) {
	if len(frame) == 0 {
		return Frame{}, ErrBadFrame
	}
	out := Frame{Version: frame[0]}
	if out.Version != wireVersion && out.Version != wireVersionSeq {
		return Frame{}, fmt.Errorf("%w: %d", ErrBadVersion, out.Version)
	}
	rest := frame[1:]
	if out.Version == wireVersionSeq {
		seq, n := binary.Uvarint(rest)
		if n <= 0 {
			return Frame{}, ErrBadFrame
		}
		out.Seq = seq
		rest = rest[n:]
	}
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return Frame{}, ErrBadFrame
	}
	rest = rest[n:]
	if count > uint64(len(frame)) {
		return Frame{}, ErrBadFrame // count cannot exceed the byte length
	}
	packets := make([]Packet, 0, count)
	readID := func() (graph.NodeID, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, ErrBadFrame
		}
		if v > math.MaxInt64 || graph.NodeID(v) < 0 {
			// IDs are non-negative ints; a uvarint above that range can
			// never have been produced by the encoder.
			return 0, fmt.Errorf("%w: node id %d out of range", ErrBadFrame, v)
		}
		rest = rest[n:]
		return graph.NodeID(v), nil
	}
	for i := uint64(0); i < count; i++ {
		if len(rest) == 0 {
			return Frame{}, ErrBadFrame
		}
		p := Packet{Kind: MsgKind(rest[0])}
		rest = rest[1:]
		switch p.Kind {
		case MsgHello:
			owner, err := readID()
			if err != nil {
				return Frame{}, err
			}
			p.Owner = owner
			cnt, n := binary.Uvarint(rest)
			if n <= 0 || cnt > uint64(len(frame)) {
				return Frame{}, ErrBadFrame
			}
			rest = rest[n:]
			p.Neighbors = make([]graph.NodeID, 0, cnt)
			for j := uint64(0); j < cnt; j++ {
				id, err := readID()
				if err != nil {
					return Frame{}, err
				}
				p.Neighbors = append(p.Neighbors, id)
			}
		case MsgCandidate:
			origin, err := readID()
			if err != nil {
				return Frame{}, err
			}
			p.Origin = origin
			if len(rest) < 8 {
				return Frame{}, ErrBadFrame
			}
			p.Priority = binary.BigEndian.Uint64(rest)
			rest = rest[8:]
		case MsgDelete, MsgRejoin, MsgSuspect:
			origin, err := readID()
			if err != nil {
				return Frame{}, err
			}
			p.Origin = origin
		case MsgAck:
			origin, err := readID()
			if err != nil {
				return Frame{}, err
			}
			p.Origin = origin
			seq, n := binary.Uvarint(rest)
			if n <= 0 {
				return Frame{}, ErrBadFrame
			}
			p.Seq = seq
			rest = rest[n:]
		default:
			return Frame{}, fmt.Errorf("%w: kind %d", ErrBadFrame, p.Kind)
		}
		packets = append(packets, p)
	}
	if len(rest) != 0 {
		return Frame{}, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(rest))
	}
	out.Packets = packets
	return out, nil
}
