package dist

import (
	"fmt"
	"sort"

	"dcc/internal/graph"
)

// The reliability layer (Config.Reliability == AckFloods) wraps the
// safety-critical CANDIDATE and DELETE floods in a per-hop
// ACK/retransmit exchange:
//
//   - every data frame is a sequenced v2 frame; receivers deduplicate by
//     (sender, seq) and acknowledge every copy they hear;
//   - a sender retransmits until every neighbour it believes alive has
//     acknowledged the frame, up to ackAttempts attempts, idling an
//     exponentially growing number of radio rounds between attempts;
//   - a sender that exhausts its attempts gives up (a crashed or
//     partitioned neighbour can never acknowledge); electMIS withdraws a
//     candidate whose own first hop gave up, so a bid that provably did
//     not reach the full 1-hop neighbourhood can never win.
//
// ACK frames themselves are unacknowledged: a lost ACK only costs a
// redundant retransmission, which the (sender, seq) dedup absorbs.

// ackAttempts bounds the transmissions of one reliable exchange. With
// i.i.d. loss p the probability that a data frame misses a neighbour on
// every attempt is p^ackAttempts (≈ 2.6e-6 at p = 0.2), which the chaos
// matrix pins to "the MIS-independence assertion never fires" on its
// seeded runs.
const ackAttempts = 8

// ackBackoffCap caps the exponential idle backoff between attempts.
const ackBackoffCap = 16

// reliableState is the runtime bookkeeping of the reliability layer.
type reliableState struct {
	// nextSeq is each node's next frame sequence number.
	nextSeq map[graph.NodeID]uint64
	// seen marks (receiver, sender, seq) triples already delivered, so
	// retransmissions are not re-delivered to the protocol.
	seen map[ackKey]bool
}

// ackKey identifies one delivered frame at one receiver.
type ackKey struct {
	to, from graph.NodeID
	seq      uint64
}

func newReliableState() *reliableState {
	return &reliableState{
		nextSeq: make(map[graph.NodeID]uint64),
		seen:    make(map[ackKey]bool),
	}
}

// txState tracks one sender's frame through a reliable exchange.
type txState struct {
	frame []byte
	seq   uint64
	// want holds the neighbours the sender still needs an ACK from: the
	// nodes its local view believes alive. A crashed neighbour the view
	// has not learned about stays in want forever and burns the retry
	// budget — the node-local knowledge a real radio has.
	want map[graph.NodeID]bool
}

// reliableRound delivers one synchronous exchange with per-hop
// ACK/retransmit (see the package comment above). onPacket fires exactly
// once per (sender, receiver, frame). It returns the senders that gave
// up with at least one neighbour unacknowledged, in sorted order.
func (r *runtime) reliableRound(frames map[graph.NodeID][]Packet, onPacket func(from, to graph.NodeID, p Packet)) []graph.NodeID {
	senders := make([]graph.NodeID, 0, len(frames))
	for v, pkts := range frames {
		if len(pkts) > 0 && !r.crashed[v] {
			senders = append(senders, v)
		}
	}
	if len(senders) == 0 {
		return nil
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })

	tx := make(map[graph.NodeID]*txState, len(senders))
	for _, from := range senders {
		seq := r.rel.nextSeq[from]
		r.rel.nextSeq[from]++
		frame, err := EncodeFrameV2(seq, frames[from])
		if err != nil {
			panic(fmt.Sprintf("dist: encode v2 frame: %v", err))
		}
		want := make(map[graph.NodeID]bool)
		for _, n := range r.views[from].liveNeighbors(from) {
			want[n] = true
		}
		tx[from] = &txState{frame: frame, seq: seq, want: want}
	}

	for attempt := 0; attempt < ackAttempts; attempt++ {
		active := make([]graph.NodeID, 0, len(senders))
		for _, from := range senders {
			if (attempt == 0 || len(tx[from].want) > 0) && !r.crashed[from] {
				active = append(active, from)
			}
		}
		if len(active) == 0 {
			break
		}

		// Data round: every active sender (re)broadcasts its frame.
		r.stats.CommRounds++
		acks := make(map[graph.NodeID][]Packet)
		for _, from := range active {
			st := tx[from]
			r.stats.Broadcasts++
			r.stats.BytesSent += len(st.frame)
			if attempt > 0 {
				r.stats.Retransmits++
			}
			for _, to := range r.cur.Neighbors(from) {
				if r.crashed[to] || r.dropDelivery(from, to) {
					continue
				}
				f, err := DecodeFrameAny(st.frame)
				if err != nil {
					panic(fmt.Sprintf("dist: decode v2 frame: %v", err))
				}
				r.stats.Delivered++
				r.stats.BytesDelivered += len(st.frame)
				r.proofOfLife(from, to)
				key := ackKey{to: to, from: from, seq: st.seq}
				if !r.rel.seen[key] {
					r.rel.seen[key] = true
					for _, p := range f.Packets {
						onPacket(from, to, p)
					}
				}
				acks[to] = append(acks[to], Packet{Kind: MsgAck, Origin: from, Seq: st.seq})
			}
		}

		// ACK round: every receiver acknowledges the frames it just
		// heard; ACK frames ride the same lossy radio.
		if len(acks) > 0 {
			ackers := make([]graph.NodeID, 0, len(acks))
			for v := range acks {
				ackers = append(ackers, v)
			}
			sort.Slice(ackers, func(i, j int) bool { return ackers[i] < ackers[j] })
			r.stats.CommRounds++
			for _, a := range ackers {
				seq := r.rel.nextSeq[a]
				r.rel.nextSeq[a]++
				frame, err := EncodeFrameV2(seq, acks[a])
				if err != nil {
					panic(fmt.Sprintf("dist: encode ack frame: %v", err))
				}
				r.stats.Broadcasts++
				r.stats.AckFrames++
				r.stats.BytesSent += len(frame)
				r.stats.AckBytes += len(frame)
				for _, to := range r.cur.Neighbors(a) {
					if r.crashed[to] || r.dropDelivery(a, to) {
						continue
					}
					f, err := DecodeFrameAny(frame)
					if err != nil {
						panic(fmt.Sprintf("dist: decode ack frame: %v", err))
					}
					r.stats.Delivered++
					r.stats.BytesDelivered += len(frame)
					r.proofOfLife(a, to)
					st := tx[to]
					if st == nil {
						continue // overheard ACK for somebody else's frame
					}
					for _, p := range f.Packets {
						if p.Kind == MsgAck && p.Origin == to && p.Seq == st.seq {
							delete(st.want, a)
						}
					}
				}
			}
		}

		incomplete := false
		for _, from := range senders {
			if len(tx[from].want) > 0 && !r.crashed[from] {
				incomplete = true
				break
			}
		}
		if !incomplete {
			break
		}
		if attempt+1 < ackAttempts {
			// Exponential idle backoff before the next retransmission.
			backoff := 1 << attempt
			if backoff > ackBackoffCap {
				backoff = ackBackoffCap
			}
			r.stats.CommRounds += backoff
		}
	}

	var gaveUp []graph.NodeID
	for _, from := range senders {
		if len(tx[from].want) > 0 && !r.crashed[from] {
			gaveUp = append(gaveUp, from)
			// Failure detector: a neighbour that stayed silent through
			// every retry is suspected crashed and leaves the sender's
			// local view until it proves itself alive again. Without this,
			// views 1 hop from a silent crash keep a phantom neighbour
			// forever and later deletability tests turn unsafely
			// permissive.
			silent := make([]graph.NodeID, 0, len(tx[from].want))
			for n := range tx[from].want {
				silent = append(silent, n)
			}
			sort.Slice(silent, func(i, j int) bool { return silent[i] < silent[j] })
			for _, n := range silent {
				if r.views[from].markSuspect(n) {
					r.stats.Suspicions++
					r.pendingSuspects = append(r.pendingSuspects, suspicion{by: from, of: n})
				}
			}
		}
	}
	return gaveUp
}

// flood delivers one hop with the configured reliability: the bare
// broadcast round under ReliabilityNone, the ACK/retransmit exchange
// under AckFloods. It returns the senders that gave up (always nil for
// the unreliable mode, which cannot detect loss).
func (r *runtime) flood(frames map[graph.NodeID][]Packet, onPacket func(from, to graph.NodeID, p Packet)) []graph.NodeID {
	if r.cfg.Reliability == AckFloods {
		return r.reliableRound(frames, onPacket)
	}
	r.broadcastRound(frames, onPacket)
	return nil
}
