package dist

import (
	"sort"

	"dcc/internal/graph"
)

// adjRecord is one node's 1-hop adjacency list as learned through gossip.
// Records are immutable once created; deletions are tracked separately so
// that stale gossip cannot resurrect a dead node.
type adjRecord struct {
	owner graph.NodeID
	nbrs  []graph.NodeID
}

// localView is the connectivity knowledge a node accumulates: the adjacency
// lists of every node it has heard about, the set of nodes it knows to be
// deleted, and the set it merely suspects crashed.
//
// dead and suspect differ in reversibility. A DELETE announcement is a
// fact — deleted nodes never come back, and stale gossip cannot resurrect
// them. A suspicion is the reliability layer's local guess after an ACK
// timeout (the suspect may be crashed, or just on the far side of a
// partition), so it is erased by any proof of life: crashed and deleted
// nodes never transmit, hence every received frame proves its sender
// alive. Suspected nodes keep their adjacency records so that a
// resurrection restores the old view unchanged.
type localView struct {
	self    graph.NodeID
	records map[graph.NodeID][]graph.NodeID
	dead    map[graph.NodeID]bool
	suspect map[graph.NodeID]bool
	changed bool // set when the view changed since the last deletability test
}

func newLocalView(self graph.NodeID, ownNbrs []graph.NodeID) *localView {
	v := &localView{
		self:    self,
		records: make(map[graph.NodeID][]graph.NodeID),
		dead:    make(map[graph.NodeID]bool),
		suspect: make(map[graph.NodeID]bool),
		changed: true,
	}
	v.records[self] = append([]graph.NodeID(nil), ownNbrs...)
	return v
}

// learn stores a gossiped adjacency record. It returns true when the record
// was new (and should be forwarded).
func (v *localView) learn(rec adjRecord) bool {
	if _, known := v.records[rec.owner]; known {
		return false
	}
	v.records[rec.owner] = append([]graph.NodeID(nil), rec.nbrs...)
	v.changed = true
	return true
}

// markDead records a node deletion. Returns true when previously unknown.
// An announced death supersedes any suspicion.
func (v *localView) markDead(n graph.NodeID) bool {
	if v.dead[n] {
		return false
	}
	v.dead[n] = true
	delete(v.suspect, n)
	v.changed = true
	return true
}

// markSuspect records an ACK-timeout suspicion. Returns true when the node
// was not already dead or suspected.
func (v *localView) markSuspect(n graph.NodeID) bool {
	if v.dead[n] || v.suspect[n] {
		return false
	}
	v.suspect[n] = true
	v.changed = true
	return true
}

// resurrect clears a suspicion after proof of life. Announced deaths are
// irreversible and stay.
func (v *localView) resurrect(n graph.NodeID) {
	if !v.suspect[n] {
		return
	}
	delete(v.suspect, n)
	v.changed = true
}

// record returns the owned adjacency record for gossiping.
func (v *localView) record() adjRecord {
	return adjRecord{owner: v.self, nbrs: v.records[v.self]}
}

// dropNeighbor removes a deleted node from the view owner's own adjacency
// list (the radio link is gone).
func (v *localView) dropNeighbor(n graph.NodeID) {
	own := v.records[v.self]
	out := own[:0]
	for _, w := range own {
		if w != n {
			out = append(out, w)
		}
	}
	v.records[v.self] = out
}

// neighborhoodGraph extracts Γ^k(self): the subgraph induced by the nodes
// within k hops of self in the view (dead nodes excluded), with self
// removed — exactly the input of the void-preserving transformation.
func (v *localView) neighborhoodGraph(k int) *graph.Graph {
	// BFS from self over known, live adjacency.
	depth := map[graph.NodeID]int{v.self: 0}
	queue := []graph.NodeID{v.self}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if depth[u] >= k {
			continue
		}
		for _, w := range v.liveNeighbors(u) {
			if _, seen := depth[w]; !seen {
				depth[w] = depth[u] + 1
				queue = append(queue, w)
			}
		}
	}
	members := make([]graph.NodeID, 0, len(depth))
	for n := range depth {
		if n != v.self {
			members = append(members, n)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	inSet := make(map[graph.NodeID]bool, len(members))
	for _, n := range members {
		inSet[n] = true
	}
	b := graph.NewBuilder()
	for _, n := range members {
		b.AddNode(n)
	}
	for _, n := range members {
		for _, w := range v.liveNeighbors(n) {
			if inSet[w] {
				b.AddEdge(n, w)
			}
		}
	}
	return b.MustBuild()
}

// liveNeighbors returns the known adjacency of n restricted to nodes
// believed alive (neither dead nor suspected). An edge is believed present
// only if n's record lists it; symmetric records keep this consistent.
func (v *localView) liveNeighbors(n graph.NodeID) []graph.NodeID {
	rec, ok := v.records[n]
	if !ok || v.dead[n] || v.suspect[n] {
		return nil
	}
	out := make([]graph.NodeID, 0, len(rec))
	for _, w := range rec {
		if !v.dead[w] && !v.suspect[w] {
			out = append(out, w)
		}
	}
	return out
}
