//go:build !dccdebug

package dist

import "dcc/internal/graph"

// debugChecks gates the protocol's deep invariant assertions. Build with
// -tags dccdebug (e.g. `go test -tags dccdebug ./...`) to enable them; in
// regular builds this file provides free no-ops.
const debugChecks = false

func (r *runtime) debugCheckWinners([]graph.NodeID, []graph.NodeID, int) {}

func (r *runtime) debugCheckDeletionLog(int, []graph.NodeID) {}
