package dist

import (
	"math/rand"
	"reflect"
	"testing"

	"dcc/internal/core"
	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/vpt"
)

// testNet builds a dense perturbed-grid UDG network with the grid perimeter
// as boundary cycle (same construction as the core tests).
func testNet(t *testing.T, seed int64, rows, cols int, radius float64) core.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rect := geom.Rect{MaxX: float64(cols), MaxY: float64(rows)}
	pts := geom.PerturbedGrid(rng, rows, cols, rect, 0.15)
	g := geom.UDG(pts, radius)
	if !g.IsConnected() {
		t.Fatal("test network disconnected")
	}
	var order []graph.NodeID
	for c := 0; c < cols; c++ {
		order = append(order, graph.NodeID(c))
	}
	for r := 1; r < rows; r++ {
		order = append(order, graph.NodeID(r*cols+cols-1))
	}
	for c := cols - 2; c >= 0; c-- {
		order = append(order, graph.NodeID((rows-1)*cols+c))
	}
	for r := rows - 2; r >= 1; r-- {
		order = append(order, graph.NodeID(r*cols))
	}
	b := make(map[graph.NodeID]bool, len(order))
	for _, v := range order {
		b[v] = true
	}
	net := core.Network{G: g, Boundary: b, BoundaryCycles: [][]graph.NodeID{order}}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestRunRejectsBadConfig(t *testing.T) {
	net := testNet(t, 60, 5, 5, 1.9)
	if _, err := Run(net, Config{Tau: 2}); err == nil {
		t.Fatal("tau=2 accepted")
	}
	if _, err := Run(net, Config{Tau: 3, Loss: 1.0}); err == nil {
		t.Fatal("loss=1 accepted")
	}
	if _, err := Run(core.Network{}, Config{Tau: 3}); err == nil {
		t.Fatal("invalid network accepted")
	}
}

func TestRunPreservesCriterion(t *testing.T) {
	for _, tau := range []int{3, 4, 5} {
		net := testNet(t, 61, 8, 8, 1.9)
		res, err := Run(net, Config{Tau: tau, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := core.VerifyConfine(res.Final, net.BoundaryCycles, tau)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("τ=%d: distributed run broke the criterion", tau)
		}
	}
}

func TestRunLocallyMaximal(t *testing.T) {
	net := testNet(t, 62, 8, 8, 1.9)
	tau := 4
	res, err := Run(net, Config{Tau: tau, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.KeptInternal {
		if vpt.VertexDeletable(res.Final, v, tau) {
			t.Fatalf("node %d still deletable after the protocol terminated", v)
		}
	}
	if len(res.Deleted) == 0 {
		t.Fatal("dense network yielded no deletions")
	}
}

func TestRunDeterministic(t *testing.T) {
	net := testNet(t, 63, 7, 7, 1.9)
	cfg := Config{Tau: 4, Seed: 5, Loss: 0.05}
	r1, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Deleted, r2.Deleted) {
		t.Fatal("same seed produced different deletion sequences")
	}
	if r1.Stats != r2.Stats {
		t.Fatalf("same seed produced different stats: %+v vs %+v", r1.Stats, r2.Stats)
	}
}

func TestRunMatchesCentralizedQuality(t *testing.T) {
	// The distributed result must be comparable in size to the centralized
	// sequential oracle (both are maximal deletions; sizes differ only by
	// deletion-order effects).
	net := testNet(t, 64, 8, 8, 1.9)
	tau := 4
	distRes, err := Run(net, Config{Tau: tau, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	coreRes, err := core.Schedule(net, core.Options{Tau: tau, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	nd, nc := len(distRes.KeptInternal), len(coreRes.KeptInternal)
	if nd == 0 || nc == 0 {
		t.Fatalf("degenerate results: dist=%d core=%d", nd, nc)
	}
	ratio := float64(nd) / float64(nc)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("distributed kept %d vs centralized %d — beyond order effects", nd, nc)
	}
}

func TestRunCommunicationAccounting(t *testing.T) {
	net := testNet(t, 65, 6, 6, 1.9)
	res, err := Run(net, Config{Tau: 4, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.CommRounds < vpt.NeighborhoodRadius(4) {
		t.Fatalf("CommRounds %d below discovery depth", s.CommRounds)
	}
	if s.Broadcasts == 0 || s.Delivered == 0 {
		t.Fatalf("no traffic recorded: %+v", s)
	}
	if s.Delivered < s.Broadcasts {
		t.Fatalf("delivered %d < broadcasts %d in a dense network", s.Delivered, s.Broadcasts)
	}
	if s.Tests == 0 || s.SuperRounds == 0 {
		t.Fatalf("no work recorded: %+v", s)
	}
}

func TestRunWithMessageLossTerminates(t *testing.T) {
	net := testNet(t, 66, 7, 7, 1.9)
	res, err := Run(net, Config{Tau: 4, Seed: 43, Loss: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Liveness: terminates and still deletes something in a dense network.
	if len(res.Deleted) == 0 {
		t.Fatal("no deletions despite dense redundancy under 20% loss")
	}
	// Lossy discovery can only make nodes more conservative or elect
	// near-simultaneous winners; the kept set must remain a superset of
	// the boundary.
	for v := range net.Boundary {
		if !res.Final.HasNode(v) {
			t.Fatalf("boundary node %d lost", v)
		}
	}
}

func TestRunWithCrashesTerminates(t *testing.T) {
	net := testNet(t, 67, 7, 7, 1.9)
	crash := []graph.NodeID{16, 17, 24}
	res, err := Run(net, Config{
		Tau:               4,
		Seed:              47,
		CrashNodes:        crash,
		CrashAtSuperRound: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crashed) != len(crash) {
		t.Fatalf("crashed = %v, want %v", res.Crashed, crash)
	}
	for _, v := range crash {
		if res.Final.HasNode(v) {
			t.Fatalf("crashed node %d still in final graph", v)
		}
	}
}

func TestViewNeighborhoodGraphMatchesTruth(t *testing.T) {
	// After loss-free discovery, every node's local Γ^k must equal the
	// ground-truth induced k-hop neighbourhood.
	net := testNet(t, 68, 6, 6, 1.9)
	k := vpt.NeighborhoodRadius(5)
	r := newRuntime(net, Config{Tau: 5, Seed: 3})
	r.discover()
	for _, v := range net.G.Nodes() {
		local := r.views[v].neighborhoodGraph(k)
		truth := net.G.InducedSubgraph(net.G.KHopNeighbors(v, k))
		if local.NumNodes() != truth.NumNodes() || local.NumEdges() != truth.NumEdges() {
			t.Fatalf("node %d: local view (n=%d,m=%d) != truth (n=%d,m=%d)",
				v, local.NumNodes(), local.NumEdges(), truth.NumNodes(), truth.NumEdges())
		}
		for _, e := range truth.Edges() {
			if !local.HasEdge(e.U, e.V) {
				t.Fatalf("node %d: edge %v missing from local view", v, e)
			}
		}
	}
}

func TestSplitMixDeterminism(t *testing.T) {
	a, b := newSplitMix(7), newSplitMix(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("splitmix not deterministic")
		}
	}
	f := newSplitMix(9)
	for i := 0; i < 1000; i++ {
		x := f.float64()
		if x < 0 || x >= 1 {
			t.Fatalf("float64 out of range: %v", x)
		}
	}
}

func TestHashPriorityVaries(t *testing.T) {
	seen := make(map[uint64]bool)
	for node := uint64(0); node < 50; node++ {
		for round := uint64(1); round < 5; round++ {
			p := hashPriority(1, node, round)
			if seen[p] {
				t.Fatalf("priority collision at node %d round %d", node, round)
			}
			seen[p] = true
		}
	}
	if hashPriority(1, 3, 1) == hashPriority(2, 3, 1) {
		t.Fatal("seed does not influence priority")
	}
}

func BenchmarkDistRun(b *testing.B) {
	rng := rand.New(rand.NewSource(70))
	rect := geom.Rect{MaxX: 8, MaxY: 8}
	pts := geom.PerturbedGrid(rng, 8, 8, rect, 0.15)
	g := geom.UDG(pts, 1.9)
	var order []graph.NodeID
	for c := 0; c < 8; c++ {
		order = append(order, graph.NodeID(c))
	}
	for r := 1; r < 8; r++ {
		order = append(order, graph.NodeID(r*8+7))
	}
	for c := 6; c >= 0; c-- {
		order = append(order, graph.NodeID(7*8+c))
	}
	for r := 6; r >= 1; r-- {
		order = append(order, graph.NodeID(r*8))
	}
	bd := make(map[graph.NodeID]bool)
	for _, v := range order {
		bd[v] = true
	}
	net := core.Network{G: g, Boundary: bd, BoundaryCycles: [][]graph.NodeID{order}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(net, Config{Tau: 4, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
