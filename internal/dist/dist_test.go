package dist

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dcc/internal/core"
	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/vpt"
)

// testNet builds a dense perturbed-grid UDG network with the grid perimeter
// as boundary cycle (same construction as the core tests).
func testNet(t *testing.T, seed int64, rows, cols int, radius float64) core.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rect := geom.Rect{MaxX: float64(cols), MaxY: float64(rows)}
	pts := geom.PerturbedGrid(rng, rows, cols, rect, 0.15)
	g := geom.UDG(pts, radius)
	if !g.IsConnected() {
		t.Fatal("test network disconnected")
	}
	var order []graph.NodeID
	for c := 0; c < cols; c++ {
		order = append(order, graph.NodeID(c))
	}
	for r := 1; r < rows; r++ {
		order = append(order, graph.NodeID(r*cols+cols-1))
	}
	for c := cols - 2; c >= 0; c-- {
		order = append(order, graph.NodeID((rows-1)*cols+c))
	}
	for r := rows - 2; r >= 1; r-- {
		order = append(order, graph.NodeID(r*cols))
	}
	b := make(map[graph.NodeID]bool, len(order))
	for _, v := range order {
		b[v] = true
	}
	net := core.Network{G: g, Boundary: b, BoundaryCycles: [][]graph.NodeID{order}}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestRunRejectsBadConfig(t *testing.T) {
	net := testNet(t, 60, 5, 5, 1.9)
	if _, err := Run(net, Config{Tau: 2}); err == nil {
		t.Fatal("tau=2 accepted")
	}
	if _, err := Run(net, Config{Tau: 3, Loss: 1.0}); err == nil {
		t.Fatal("loss=1 accepted")
	}
	if _, err := Run(core.Network{}, Config{Tau: 3}); err == nil {
		t.Fatal("invalid network accepted")
	}
}

func TestRunPreservesCriterion(t *testing.T) {
	for _, tau := range []int{3, 4, 5} {
		net := testNet(t, 61, 8, 8, 1.9)
		res, err := Run(net, Config{Tau: tau, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := core.VerifyConfine(res.Final, net.BoundaryCycles, tau)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("τ=%d: distributed run broke the criterion", tau)
		}
	}
}

func TestRunLocallyMaximal(t *testing.T) {
	net := testNet(t, 62, 8, 8, 1.9)
	tau := 4
	res, err := Run(net, Config{Tau: tau, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.KeptInternal {
		if vpt.VertexDeletable(res.Final, v, tau) {
			t.Fatalf("node %d still deletable after the protocol terminated", v)
		}
	}
	if len(res.Deleted) == 0 {
		t.Fatal("dense network yielded no deletions")
	}
}

func TestRunDeterministic(t *testing.T) {
	net := testNet(t, 63, 7, 7, 1.9)
	cfg := Config{Tau: 4, Seed: 5, Loss: 0.05}
	r1, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Deleted, r2.Deleted) {
		t.Fatal("same seed produced different deletion sequences")
	}
	if r1.Stats != r2.Stats {
		t.Fatalf("same seed produced different stats: %+v vs %+v", r1.Stats, r2.Stats)
	}
}

func TestRunMatchesCentralizedQuality(t *testing.T) {
	// The distributed result must be comparable in size to the centralized
	// sequential oracle (both are maximal deletions; sizes differ only by
	// deletion-order effects).
	net := testNet(t, 64, 8, 8, 1.9)
	tau := 4
	distRes, err := Run(net, Config{Tau: tau, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	coreRes, err := core.Schedule(net, core.Options{Tau: tau, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	nd, nc := len(distRes.KeptInternal), len(coreRes.KeptInternal)
	if nd == 0 || nc == 0 {
		t.Fatalf("degenerate results: dist=%d core=%d", nd, nc)
	}
	ratio := float64(nd) / float64(nc)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("distributed kept %d vs centralized %d — beyond order effects", nd, nc)
	}
}

func TestRunCommunicationAccounting(t *testing.T) {
	net := testNet(t, 65, 6, 6, 1.9)
	res, err := Run(net, Config{Tau: 4, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.CommRounds < vpt.NeighborhoodRadius(4) {
		t.Fatalf("CommRounds %d below discovery depth", s.CommRounds)
	}
	if s.Broadcasts == 0 || s.Delivered == 0 {
		t.Fatalf("no traffic recorded: %+v", s)
	}
	if s.Delivered < s.Broadcasts {
		t.Fatalf("delivered %d < broadcasts %d in a dense network", s.Delivered, s.Broadcasts)
	}
	if s.Tests == 0 || s.Rounds == 0 {
		t.Fatalf("no work recorded: %+v", s)
	}
}

func TestRunWithMessageLossTerminates(t *testing.T) {
	net := testNet(t, 66, 7, 7, 1.9)
	res, err := Run(net, Config{Tau: 4, Seed: 43, Loss: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Liveness: terminates and still deletes something in a dense network.
	if len(res.Deleted) == 0 {
		t.Fatal("no deletions despite dense redundancy under 20% loss")
	}
	// Lossy discovery can only make nodes more conservative or elect
	// near-simultaneous winners; the kept set must remain a superset of
	// the boundary.
	for v := range net.Boundary {
		if !res.Final.HasNode(v) {
			t.Fatalf("boundary node %d lost", v)
		}
	}
}

func TestRunWithCrashesTerminates(t *testing.T) {
	net := testNet(t, 67, 7, 7, 1.9)
	crash := []graph.NodeID{16, 17, 24}
	res, err := Run(net, Config{
		Tau:               4,
		Seed:              47,
		CrashNodes:        crash,
		CrashAtSuperRound: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crashed) != len(crash) {
		t.Fatalf("crashed = %v, want %v", res.Crashed, crash)
	}
	for _, v := range crash {
		if res.Final.HasNode(v) {
			t.Fatalf("crashed node %d still in final graph", v)
		}
	}
}

func TestRunRejectsUnknownCrashNode(t *testing.T) {
	// Regression: unknown CrashNodes IDs used to be silently ignored — the
	// crash simply never happened and the run looked healthy.
	net := testNet(t, 60, 5, 5, 1.9)
	_, err := Run(net, Config{Tau: 3, CrashNodes: []graph.NodeID{9999}, CrashAtSuperRound: 1})
	if err == nil {
		t.Fatal("unknown crash node accepted")
	}
	if !strings.Contains(err.Error(), "9999") {
		t.Fatalf("error does not name the offending node: %v", err)
	}
	// The same validation applies to structured fault plans.
	_, err = Run(net, Config{Tau: 3, Faults: &FaultPlan{Crashes: []CrashEvent{{Node: 555, At: 1}}}})
	if err == nil || !strings.Contains(err.Error(), "555") {
		t.Fatalf("fault plan with unknown node accepted: %v", err)
	}
}

func TestRunRejectsBadFaultPlan(t *testing.T) {
	net := testNet(t, 60, 5, 5, 1.9)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"crash round zero", Config{Tau: 3, Faults: &FaultPlan{Crashes: []CrashEvent{{Node: 7, At: 0}}}}},
		{"recovery before crash", Config{Tau: 3, Faults: &FaultPlan{
			Crashes: []CrashEvent{{Node: 7, At: 3, RecoverAt: 2}}}}},
		{"iid loss and bursty together", Config{Tau: 3, Loss: 0.1, Faults: &FaultPlan{
			Bursty: &GilbertElliott{PGoodToBad: 0.1, PBadToGood: 0.5, LossBad: 0.5}}}},
		{"bursty loss ≥ 1", Config{Tau: 3, Faults: &FaultPlan{
			Bursty: &GilbertElliott{PGoodToBad: 0.1, PBadToGood: 0.5, LossBad: 1.0}}}},
		{"bursty transition > 1", Config{Tau: 3, Faults: &FaultPlan{
			Bursty: &GilbertElliott{PGoodToBad: 1.5, PBadToGood: 0.5}}}},
		{"partition heals before it starts", Config{Tau: 3, Faults: &FaultPlan{
			Partitions: []PartitionEvent{{At: 4, Heal: 2}}}}},
		{"partition with unknown node", Config{Tau: 3, Faults: &FaultPlan{
			Partitions: []PartitionEvent{{At: 1, SideA: []graph.NodeID{4242}}}}}},
		{"unknown reliability mode", Config{Tau: 3, Reliability: Reliability(42)}},
	}
	for _, tc := range cases {
		if _, err := Run(net, tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestLiveNodesDoesNotAliasNodes(t *testing.T) {
	// Regression guard for the satellite audit: liveNodes filters in place
	// over r.cur.Nodes(), which is only sound because Graph.Nodes returns a
	// fresh copy on every call. A caller's earlier Nodes() slice must be
	// untouched by a subsequent liveNodes call that drops crashed entries.
	net := testNet(t, 69, 5, 5, 1.9)
	r := newRuntime(net, Config{Tau: 3, Seed: 1})
	before := r.cur.Nodes()
	snapshot := append([]graph.NodeID(nil), before...)
	r.crashed[before[0]] = true
	r.crashed[before[3]] = true
	live := r.liveNodes()
	if len(live) != len(snapshot)-2 {
		t.Fatalf("liveNodes kept %d of %d with 2 crashed", len(live), len(snapshot))
	}
	if !reflect.DeepEqual(before, snapshot) {
		t.Fatalf("liveNodes mutated an earlier Nodes() result:\nbefore: %v\nafter:  %v", snapshot, before)
	}
}

func TestAckFloodsLosslessMatchesBaseline(t *testing.T) {
	// With a perfect channel the reliability layer must change bookkeeping
	// (sequencing, ACK traffic) but not one protocol decision: the deletion
	// sequence is identical to the fire-and-forget baseline.
	net := testNet(t, 70, 7, 7, 1.9)
	base, err := Run(net, Config{Tau: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	acked, err := Run(net, Config{Tau: 4, Seed: 11, Reliability: AckFloods})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Deleted, acked.Deleted) {
		t.Fatalf("AckFloods changed lossless deletions:\nbase: %v\nack:  %v", base.Deleted, acked.Deleted)
	}
	if acked.Stats.AckFrames == 0 || acked.Stats.AckBytes == 0 {
		t.Fatalf("no ACK traffic recorded: %+v", acked.Stats)
	}
	if acked.Stats.Retransmits != 0 || acked.Stats.Withdrawals != 0 {
		t.Fatalf("lossless run retransmitted or withdrew: %+v", acked.Stats)
	}
	if base.Stats.AckFrames != 0 || base.Stats.AckBytes != 0 {
		t.Fatalf("baseline recorded ACK traffic: %+v", base.Stats)
	}
}

func TestAckFloodsUnderLossKeepsIndependence(t *testing.T) {
	// The tentpole property: with ACK/retransmit floods, heavy i.i.d. loss
	// must not produce winner pairs inside the independence radius, and the
	// survivor graph must still satisfy the global criterion.
	net := testNet(t, 71, 8, 8, 1.9)
	for _, loss := range []float64{0.1, 0.2} {
		res, err := Run(net, Config{Tau: 4, Seed: 13, Loss: loss, Reliability: AckFloods})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.IndependenceViolations != 0 {
			t.Fatalf("loss %v: %d independence violations under AckFloods",
				loss, res.Stats.IndependenceViolations)
		}
		if res.Stats.Retransmits == 0 {
			t.Fatalf("loss %v: no retransmissions recorded", loss)
		}
		ok, err := core.VerifyConfine(res.Final, net.BoundaryCycles, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("loss %v: AckFloods run broke the criterion", loss)
		}
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	net := testNet(t, 72, 7, 7, 1.9)
	cfg := Config{
		Tau:         4,
		Seed:        19,
		Reliability: AckFloods,
		Faults: &FaultPlan{
			Seed:       5,
			Crashes:    []CrashEvent{{Node: 17, At: 1, RecoverAt: 3}, {Node: 24, At: 2}},
			Bursty:     &GilbertElliott{PGoodToBad: 0.1, PBadToGood: 0.4, LossGood: 0.01, LossBad: 0.5},
			Partitions: []PartitionEvent{{At: 2, Heal: 4}},
		},
		MaxSuperRounds: 10,
	}
	r1, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Deleted, r2.Deleted) || !reflect.DeepEqual(r1.Recovered, r2.Recovered) {
		t.Fatal("same fault plan produced different runs")
	}
	if r1.Stats != r2.Stats {
		t.Fatalf("same fault plan produced different stats:\n%+v\n%+v", r1.Stats, r2.Stats)
	}
}

func TestCrashRecoverRejoins(t *testing.T) {
	net := testNet(t, 73, 7, 7, 1.9)
	victim := graph.NodeID(24) // interior node
	res, err := Run(net, Config{
		Tau:  4,
		Seed: 29,
		Faults: &FaultPlan{
			Crashes: []CrashEvent{{Node: victim, At: 1, RecoverAt: 3}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recovered) != 1 || res.Recovered[0] != victim {
		t.Fatalf("recovered = %v, want [%d]", res.Recovered, victim)
	}
	if len(res.Crashed) != 0 {
		t.Fatalf("recovered node still listed as crashed: %v", res.Crashed)
	}
	// The rejoined node is back in the final graph unless the protocol
	// legitimately deleted it after its recovery.
	deleted := false
	for _, d := range res.Deleted {
		if d == victim {
			deleted = true
		}
	}
	if !deleted && !res.Final.HasNode(victim) {
		t.Fatalf("recovered node %d missing from final graph without a deletion", victim)
	}
	ok, err := core.VerifyConfine(res.Final, net.BoundaryCycles, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("crash-recover run broke the criterion")
	}
}

func TestCrashOfWinnerRegression(t *testing.T) {
	// A node elected by the MIS that crashes in the same super-round —
	// after the election, before its DELETE announcement — must not corrupt
	// the deletion log or leave the survivor graph invalid.
	net := testNet(t, 74, 7, 7, 1.9)
	tau := 4
	base, err := Run(net, Config{Tau: tau, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Deleted) == 0 {
		t.Fatal("baseline deleted nothing; test needs a winner to kill")
	}
	winner := base.Deleted[0] // a first-super-round winner
	for _, mode := range []Reliability{ReliabilityNone, AckFloods} {
		res, err := Run(net, Config{
			Tau:         tau,
			Seed:        37,
			Reliability: mode,
			Faults: &FaultPlan{
				Crashes: []CrashEvent{{Node: winner, At: 1, AfterElection: true}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range res.Deleted {
			if d == winner {
				t.Fatalf("%v: crashed winner %d appears in deletion log at %d", mode, winner, i)
			}
		}
		if len(res.Crashed) != 1 || res.Crashed[0] != winner {
			t.Fatalf("%v: crashed = %v, want [%d]", mode, res.Crashed, winner)
		}
		if res.Final.HasNode(winner) {
			t.Fatalf("%v: crashed winner %d survives in the final graph", mode, winner)
		}
		seen := make(map[graph.NodeID]bool, len(res.Deleted))
		for _, d := range res.Deleted {
			if seen[d] {
				t.Fatalf("%v: deletion log contains %d twice", mode, d)
			}
			seen[d] = true
			if res.Final.HasNode(d) {
				t.Fatalf("%v: deleted node %d still in final graph", mode, d)
			}
		}
		if mode != AckFloods {
			// Without the ACK-timeout failure detector, views near a silent
			// crash keep a phantom neighbour and later deletability tests
			// can turn unsafely permissive — the documented gap. Only the
			// reliable mode promises final-graph validity here.
			continue
		}
		if res.Stats.Suspicions == 0 {
			t.Fatal("AckFloods: crash produced no failure-detector suspicions")
		}
		ok, err := core.VerifyConfine(res.Final, net.BoundaryCycles, tau)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("AckFloods: crash-of-a-winner run broke the criterion")
		}
	}
}

func TestAckFloodsWithdrawsOnCrashedNeighbor(t *testing.T) {
	// Withdrawal is the backstop for the one window the heartbeat detector
	// cannot cover: a neighbour that crashes after the round's heartbeat
	// but before the CANDIDATE flood. (A full Run never shows this —
	// heartbeat give-ups suspect the victim before candidacy, and the
	// candidate quarantines instead — so this test drives the runtime
	// directly and crashes the neighbour inside the window.)
	net := testNet(t, 75, 6, 6, 1.9)
	r := newRuntime(net, Config{Tau: 4, Seed: 41, Reliability: AckFloods})
	r.discover()
	cands := r.evaluateCandidates()
	if len(cands) == 0 {
		t.Fatal("no candidates after discovery")
	}
	// Crash a neighbour of the first candidate; no heartbeat runs between
	// here and the election, so the candidate still believes it alive.
	c := cands[0]
	victim := net.G.Neighbors(c)[0]
	r.crashed[victim] = true
	winners, _ := r.electMIS(cands, 1)
	if r.stats.Withdrawals == 0 {
		t.Fatalf("no withdrawals despite crashed-but-believed-alive neighbour: %+v", r.stats)
	}
	for _, w := range winners {
		if w == c {
			t.Fatalf("candidate %d won despite its hop-0 flood giving up on crashed neighbour %d", c, victim)
		}
	}
	// The give-up doubles as failure detection: the victim is now suspected
	// and queued for the next suspicion flood.
	if r.stats.Suspicions == 0 {
		t.Fatalf("give-up raised no suspicion: %+v", r.stats)
	}
	found := false
	for _, s := range r.pendingSuspects {
		if s.of == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim %d not in pending suspicion queue %v", victim, r.pendingSuspects)
	}
}

func TestPartitionSeveredAndHealed(t *testing.T) {
	net := testNet(t, 76, 7, 7, 1.9)
	cfg := Config{
		Tau:         4,
		Seed:        43,
		Reliability: AckFloods,
		Faults: &FaultPlan{
			Seed:       9,
			Partitions: []PartitionEvent{{At: 1, Heal: 4}},
		},
		MaxSuperRounds: 12,
	}
	res, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IndependenceViolations != 0 {
		t.Fatalf("partitioned AckFloods run violated independence: %+v", res.Stats)
	}
	ok, err := core.VerifyConfine(res.Final, net.BoundaryCycles, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("partition/heal run broke the criterion")
	}
}

func TestGilbertElliottBurstyLoss(t *testing.T) {
	net := testNet(t, 77, 7, 7, 1.9)
	cfg := Config{
		Tau:         4,
		Seed:        47,
		Reliability: AckFloods,
		Faults: &FaultPlan{
			Bursty: &GilbertElliott{PGoodToBad: 0.15, PBadToGood: 0.3, LossGood: 0.02, LossBad: 0.6},
		},
	}
	res, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Retransmits == 0 {
		t.Fatalf("bursty channel caused no retransmissions: %+v", res.Stats)
	}
	if res.Stats.IndependenceViolations != 0 {
		t.Fatalf("bursty AckFloods run violated independence: %+v", res.Stats)
	}
	ok, err := core.VerifyConfine(res.Final, net.BoundaryCycles, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("bursty-loss run broke the criterion")
	}
}

func TestLegacyCrashConfigStillWorks(t *testing.T) {
	// The legacy CrashNodes/CrashAtSuperRound pair must keep working and
	// must not mutate the caller's slice when merged into the fault plan.
	net := testNet(t, 67, 7, 7, 1.9)
	crash := []graph.NodeID{16, 17, 24}
	orig := append([]graph.NodeID(nil), crash...)
	res, err := Run(net, Config{Tau: 4, Seed: 47, CrashNodes: crash, CrashAtSuperRound: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crashed) != len(crash) {
		t.Fatalf("crashed = %v, want %v", res.Crashed, crash)
	}
	if !reflect.DeepEqual(crash, orig) {
		t.Fatalf("Run mutated the caller's CrashNodes slice: %v", crash)
	}
}

func TestViewNeighborhoodGraphMatchesTruth(t *testing.T) {
	// After loss-free discovery, every node's local Γ^k must equal the
	// ground-truth induced k-hop neighbourhood.
	net := testNet(t, 68, 6, 6, 1.9)
	k := vpt.NeighborhoodRadius(5)
	r := newRuntime(net, Config{Tau: 5, Seed: 3})
	r.discover()
	for _, v := range net.G.Nodes() {
		local := r.views[v].neighborhoodGraph(k)
		truth := net.G.InducedSubgraph(net.G.KHopNeighbors(v, k))
		if local.NumNodes() != truth.NumNodes() || local.NumEdges() != truth.NumEdges() {
			t.Fatalf("node %d: local view (n=%d,m=%d) != truth (n=%d,m=%d)",
				v, local.NumNodes(), local.NumEdges(), truth.NumNodes(), truth.NumEdges())
		}
		for _, e := range truth.Edges() {
			if !local.HasEdge(e.U, e.V) {
				t.Fatalf("node %d: edge %v missing from local view", v, e)
			}
		}
	}
}

func TestSplitMixDeterminism(t *testing.T) {
	a, b := newSplitMix(7), newSplitMix(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("splitmix not deterministic")
		}
	}
	f := newSplitMix(9)
	for i := 0; i < 1000; i++ {
		x := f.float64()
		if x < 0 || x >= 1 {
			t.Fatalf("float64 out of range: %v", x)
		}
	}
}

func TestHashPriorityVaries(t *testing.T) {
	seen := make(map[uint64]bool)
	for node := uint64(0); node < 50; node++ {
		for round := uint64(1); round < 5; round++ {
			p := hashPriority(1, node, round)
			if seen[p] {
				t.Fatalf("priority collision at node %d round %d", node, round)
			}
			seen[p] = true
		}
	}
	if hashPriority(1, 3, 1) == hashPriority(2, 3, 1) {
		t.Fatal("seed does not influence priority")
	}
}

func BenchmarkDistRun(b *testing.B) {
	rng := rand.New(rand.NewSource(70))
	rect := geom.Rect{MaxX: 8, MaxY: 8}
	pts := geom.PerturbedGrid(rng, 8, 8, rect, 0.15)
	g := geom.UDG(pts, 1.9)
	var order []graph.NodeID
	for c := 0; c < 8; c++ {
		order = append(order, graph.NodeID(c))
	}
	for r := 1; r < 8; r++ {
		order = append(order, graph.NodeID(r*8+7))
	}
	for c := 6; c >= 0; c-- {
		order = append(order, graph.NodeID(7*8+c))
	}
	for r := 6; r >= 1; r-- {
		order = append(order, graph.NodeID(r*8))
	}
	bd := make(map[graph.NodeID]bool)
	for _, v := range order {
		bd[v] = true
	}
	net := core.Network{G: g, Boundary: bd, BoundaryCycles: [][]graph.NodeID{order}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(net, Config{Tau: 4, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
