//go:build dccdebug

package dist

import (
	"testing"

	"dcc/internal/core"
	"dcc/internal/graph"
)

func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: invariant violation passed the dccdebug check", name)
		}
	}()
	f()
}

// TestDebugChecksCatchViolations verifies the protocol assertions are not
// vacuous: fabricated election outcomes that break the MIS safety rules
// must panic.
func TestDebugChecksCatchViolations(t *testing.T) {
	// A path 1-2-3-4-5: adjacent nodes are 1 hop apart, far below any
	// independence radius m ≥ 2.
	g, err := graph.FromEdges([]graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}})
	if err != nil {
		t.Fatal(err)
	}
	net := core.Network{G: g, Boundary: map[graph.NodeID]bool{1: true, 5: true}}
	r := newRuntime(net, Config{Tau: 3, Seed: 1})

	cands := []graph.NodeID{2, 3, 4}
	expectPanic(t, "winners too close", func() {
		r.debugCheckWinners(cands, []graph.NodeID{2, 3}, 1)
	})
	expectPanic(t, "winners unsorted", func() {
		r.debugCheckWinners(cands, []graph.NodeID{4, 2}, 1)
	})
	expectPanic(t, "winner not a candidate", func() {
		r.debugCheckWinners(cands, []graph.NodeID{5}, 1)
	})
	expectPanic(t, "deletion log mismatch", func() {
		r.deleted = append(r.deleted, 3)
		r.debugCheckDeletionLog(0, []graph.NodeID{2})
	})
}
