//go:build dccdebug

package dist

import (
	"fmt"

	"dcc/internal/graph"
)

// debugChecks gates the protocol's deep invariant assertions; this build
// has them on (-tags dccdebug).
const debugChecks = true

// debugCheckWinners deep-checks one super-round's MIS election against the
// ground-truth topology (which a real node never sees — this is exactly
// what the distributed protocol cannot check for itself):
//
//   - winners are strictly sorted and were candidates;
//   - winners are pairwise ≥ m hops apart, the independence radius at
//     which simultaneous deletions are safe (§V-B);
//   - each winner's hashed priority beats every rival candidate within
//     m−1 hops, i.e. the election picked exactly the local maxima.
//
// cands is the effective electorate of the round (candidates minus
// AckFloods withdrawals).
//
// Under ReliabilityNone with a lossy channel the flood may not reach
// everyone and the safety guarantee is explicitly waived (see
// Config.Loss), so the topology checks are skipped for exactly that
// combination. Under AckFloods they stay on even with loss — the chaos
// harness pins that they never fire on its seeded runs. Hop distances are
// measured on the live communication topology: crashed nodes do not
// forward floods, and partition-severed links carry nothing.
func (r *runtime) debugCheckWinners(cands, winners []graph.NodeID, superRound int) {
	isCand := make(map[graph.NodeID]bool, len(cands))
	for _, c := range cands {
		isCand[c] = true
	}
	for i, w := range winners {
		if i > 0 && winners[i-1] >= w {
			panic(fmt.Sprintf("dist debug: winners not strictly sorted at %d: %d >= %d", i, winners[i-1], w))
		}
		if !isCand[w] {
			panic(fmt.Sprintf("dist debug: winner %d was never a candidate", w))
		}
	}
	if r.unreliableLossy() {
		return
	}
	top := r.commTopology()
	for _, w := range winners {
		t := top.BFS(w, r.m-1)
		own := candidate{origin: w, priority: hashPriority(uint64(r.cfg.Seed), uint64(w), uint64(superRound))}
		for _, o := range winners {
			if o != w && t.Depth(o) >= 0 {
				panic(fmt.Sprintf("dist debug: winners %d and %d are %d hops apart, want ≥ %d",
					w, o, t.Depth(o), r.m))
			}
		}
		for _, c := range cands {
			if c == w || t.Depth(c) < 0 {
				continue
			}
			rival := candidate{origin: c, priority: hashPriority(uint64(r.cfg.Seed), uint64(c), uint64(superRound))}
			if rival.wins(own) {
				panic(fmt.Sprintf("dist debug: winner %d is not locally maximal: candidate %d within %d hops outbids it",
					w, c, r.m-1))
			}
		}
	}
}

// debugCheckDeletionLog verifies that the round's appended deletion-log
// segment is exactly the elected winner set in announcement order, so the
// global deletion order replayed from a Result matches the priority-ordered
// election that produced it.
func (r *runtime) debugCheckDeletionLog(before int, winners []graph.NodeID) {
	seg := r.deleted[before:]
	if len(seg) != len(winners) {
		panic(fmt.Sprintf("dist debug: deletion log grew by %d entries for %d winners", len(seg), len(winners)))
	}
	for i := range seg {
		if seg[i] != winners[i] {
			panic(fmt.Sprintf("dist debug: deletion log[%d] = %d, want winner %d", before+i, seg[i], winners[i]))
		}
	}
}
