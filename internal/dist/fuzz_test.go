package dist

import (
	"reflect"
	"testing"

	"dcc/internal/graph"
)

// FuzzFrameRoundTrip feeds arbitrary bytes to the wire-format decoders.
// For every input:
//
//  1. DecodeFrameAny (and the legacy v1-only DecodeFrame) never panics —
//     malformed radio frames are a runtime condition, not a programming
//     error;
//  2. any frame that decodes re-encodes losslessly in its own version:
//     for the decoded frame f, DecodeFrameAny(f.Encode()) == f. (The byte
//     images may differ — the decoder tolerates non-minimal uvarints the
//     encoder never emits — so the law is stated on decoded frames, not
//     bytes.)
//  3. DecodeFrame agrees with DecodeFrameAny on every v1 frame and rejects
//     everything else with ErrBadVersion or ErrBadFrame.
func FuzzFrameRoundTrip(f *testing.F) {
	// Seed corpus: one frame per packet kind in both wire versions, a
	// multi-packet frame, and classic malformed shapes (bad version,
	// truncations, trailing bytes).
	helloFrame, err := EncodeFrame([]Packet{{Kind: MsgHello, Owner: 2, Neighbors: []graph.NodeID{3, 4, 9}}})
	if err != nil {
		f.Fatal(err)
	}
	candFrame, err := EncodeFrame([]Packet{{Kind: MsgCandidate, Origin: 5, Priority: 0xDEADBEEF01020304}})
	if err != nil {
		f.Fatal(err)
	}
	mixed, err := EncodeFrame([]Packet{
		{Kind: MsgDelete, Origin: 7},
		{Kind: MsgHello, Owner: 0, Neighbors: nil},
		{Kind: MsgCandidate, Origin: 1, Priority: 42},
	})
	if err != nil {
		f.Fatal(err)
	}
	ackFrame, err := EncodeFrameV2(9, []Packet{
		{Kind: MsgAck, Origin: 3, Seq: 8},
		{Kind: MsgAck, Origin: 300, Seq: 1 << 30},
	})
	if err != nil {
		f.Fatal(err)
	}
	v2Mixed, err := EncodeFrameV2(1<<40, []Packet{
		{Kind: MsgRejoin, Origin: 11},
		{Kind: MsgCandidate, Origin: 4, Priority: 77},
		{Kind: MsgDelete, Origin: 2},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(helloFrame)
	f.Add(candFrame)
	f.Add(mixed)
	f.Add(ackFrame)
	f.Add(v2Mixed)
	f.Add([]byte{})
	f.Add([]byte{99, 1, 3, 7})                        // unsupported version
	f.Add([]byte{1})                                  // missing count
	f.Add([]byte{1, 1})                               // count without packet
	f.Add([]byte{1, 1, 1, 2, 200})                    // HELLO with truncated neighbor count
	f.Add(append(mixed, 0xee))                        // trailing byte
	f.Add([]byte{1, 2, 2, 1, 0, 0, 0, 0, 0, 0, 0, 1}) // CANDIDATE then truncated packet
	f.Add([]byte{2})                                  // v2 missing seq
	f.Add([]byte{2, 0, 1, 4, 9})                      // v2 ACK without seq bytes
	f.Add(append(v2Mixed, 0x01))                      // v2 trailing byte

	f.Fuzz(func(t *testing.T, frame []byte) {
		decoded, anyErr := DecodeFrameAny(frame) // must not panic on any input
		packets, v1Err := DecodeFrame(frame)     // neither must the legacy decoder

		// Law 3: the legacy decoder is exactly "DecodeFrameAny restricted
		// to v1".
		if anyErr == nil && decoded.Version == 1 {
			if v1Err != nil {
				t.Fatalf("v1 frame accepted by DecodeFrameAny, rejected by DecodeFrame: %v", v1Err)
			}
			if !reflect.DeepEqual(packets, decoded.Packets) {
				t.Fatalf("decoder disagreement:\nv1:  %+v\nany: %+v", packets, decoded.Packets)
			}
		} else if v1Err == nil {
			t.Fatalf("DecodeFrame accepted a frame DecodeFrameAny rejects or a non-v1 frame (version %d)",
				decoded.Version)
		}
		if anyErr != nil {
			return
		}

		// Law 2: decode → Encode → decode is the identity on frames.
		reencoded, err := decoded.Encode()
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v\nframe: %+v", err, decoded)
		}
		again, err := DecodeFrameAny(reencoded)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if !reflect.DeepEqual(decoded, again) {
			t.Fatalf("round trip not lossless:\nfirst:  %+v\nsecond: %+v", decoded, again)
		}
	})
}
