package dist

import (
	"reflect"
	"testing"

	"dcc/internal/graph"
)

// FuzzFrameRoundTrip feeds arbitrary bytes to the wire-format decoder. Two
// properties must hold for every input:
//
//  1. DecodeFrame never panics (malformed radio frames are a runtime
//     condition, not a programming error), and
//  2. any frame that decodes re-encodes losslessly: for the decoded packet
//     sequence f, decode(encode(f)) == f. (The byte images may differ —
//     the decoder tolerates non-minimal uvarints the encoder never emits —
//     so the law is stated on packets, not bytes.)
func FuzzFrameRoundTrip(f *testing.F) {
	// Seed corpus: one frame per packet kind, a multi-packet frame, and
	// classic malformed shapes (bad version, truncations, trailing bytes).
	helloFrame, err := EncodeFrame([]Packet{{Kind: MsgHello, Owner: 2, Neighbors: []graph.NodeID{3, 4, 9}}})
	if err != nil {
		f.Fatal(err)
	}
	candFrame, err := EncodeFrame([]Packet{{Kind: MsgCandidate, Origin: 5, Priority: 0xDEADBEEF01020304}})
	if err != nil {
		f.Fatal(err)
	}
	mixed, err := EncodeFrame([]Packet{
		{Kind: MsgDelete, Origin: 7},
		{Kind: MsgHello, Owner: 0, Neighbors: nil},
		{Kind: MsgCandidate, Origin: 1, Priority: 42},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(helloFrame)
	f.Add(candFrame)
	f.Add(mixed)
	f.Add([]byte{})
	f.Add([]byte{2, 1, 3, 7})                         // wrong version
	f.Add([]byte{1})                                  // missing count
	f.Add([]byte{1, 1})                               // count without packet
	f.Add([]byte{1, 1, 1, 2, 200})                    // HELLO with truncated neighbor count
	f.Add(append(mixed, 0xee))                        // trailing byte
	f.Add([]byte{1, 2, 2, 1, 0, 0, 0, 0, 0, 0, 0, 1}) // CANDIDATE then truncated packet

	f.Fuzz(func(t *testing.T, frame []byte) {
		packets, err := DecodeFrame(frame) // must not panic on any input
		if err != nil {
			return
		}
		reencoded, err := EncodeFrame(packets)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v\npackets: %+v", err, packets)
		}
		again, err := DecodeFrame(reencoded)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if !reflect.DeepEqual(packets, again) {
			t.Fatalf("round trip not lossless:\nfirst:  %+v\nsecond: %+v", packets, again)
		}
	})
}
