package dist

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dcc/internal/graph"
)

func TestFrameRoundTrip(t *testing.T) {
	packets := []Packet{
		{Kind: MsgHello, Owner: 7, Neighbors: []graph.NodeID{1, 2, 300}},
		{Kind: MsgHello, Owner: 0, Neighbors: nil},
		{Kind: MsgCandidate, Origin: 42, Priority: 0xdeadbeefcafef00d},
		{Kind: MsgDelete, Origin: 9001},
	}
	frame, err := EncodeFrame(packets)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(packets) {
		t.Fatalf("decoded %d packets, want %d", len(got), len(packets))
	}
	for i := range packets {
		if got[i].Kind != packets[i].Kind ||
			got[i].Owner != packets[i].Owner ||
			got[i].Origin != packets[i].Origin ||
			got[i].Priority != packets[i].Priority {
			t.Fatalf("packet %d mismatch: %+v vs %+v", i, got[i], packets[i])
		}
		if len(got[i].Neighbors) != len(packets[i].Neighbors) {
			t.Fatalf("packet %d neighbour count mismatch", i)
		}
		if len(packets[i].Neighbors) > 0 && !reflect.DeepEqual(got[i].Neighbors, packets[i].Neighbors) {
			t.Fatalf("packet %d neighbours mismatch", i)
		}
	}
}

func TestEmptyFrame(t *testing.T) {
	frame, err := EncodeFrame(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d packets from empty frame", len(got))
	}
}

func TestEncodeRejectsBadPackets(t *testing.T) {
	if _, err := EncodeFrame([]Packet{{Kind: MsgKind(99)}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := EncodeFrame([]Packet{{Kind: MsgDelete, Origin: -1}}); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := EncodeFrame([]Packet{{Kind: MsgHello, Owner: 1, Neighbors: []graph.NodeID{-2}}}); err == nil {
		t.Fatal("negative neighbour accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},         // bad version
		{1},          // missing count
		{1, 5},       // count 5, no packets
		{1, 1, 42},   // unknown kind
		{1, 1, 2, 7}, // candidate without priority bytes
		{1, 1, 3},    // delete without origin
		{1, 0, 0xff}, // trailing bytes
	}
	for i, frame := range cases {
		if _, err := DecodeFrame(frame); err == nil {
			t.Fatalf("case %d: garbage frame accepted", i)
		}
	}
	// Version error is distinguishable.
	if _, err := DecodeFrame([]byte{2, 0}); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
}

func TestDecodeTruncatedHello(t *testing.T) {
	full, err := EncodeFrame([]Packet{{Kind: MsgHello, Owner: 5, Neighbors: []graph.NodeID{1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		if _, err := DecodeFrame(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(20)
		packets := make([]Packet, 0, n)
		for i := 0; i < n; i++ {
			switch r.Intn(3) {
			case 0:
				p := Packet{Kind: MsgHello, Owner: graph.NodeID(r.Intn(1 << 20))}
				for j := r.Intn(12); j > 0; j-- {
					p.Neighbors = append(p.Neighbors, graph.NodeID(r.Intn(1<<20)))
				}
				packets = append(packets, p)
			case 1:
				packets = append(packets, Packet{
					Kind: MsgCandidate, Origin: graph.NodeID(r.Intn(1 << 20)), Priority: r.Uint64(),
				})
			default:
				packets = append(packets, Packet{Kind: MsgDelete, Origin: graph.NodeID(r.Intn(1 << 20))})
			}
		}
		frame, err := EncodeFrame(packets)
		if err != nil {
			return false
		}
		got, err := DecodeFrame(frame)
		if err != nil || len(got) != len(packets) {
			return false
		}
		for i := range packets {
			a, b := got[i], packets[i]
			if a.Kind != b.Kind || a.Owner != b.Owner || a.Origin != b.Origin || a.Priority != b.Priority {
				return false
			}
			if len(a.Neighbors) != len(b.Neighbors) {
				return false
			}
			for j := range a.Neighbors {
				if a.Neighbors[j] != b.Neighbors[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeDecodeFrame(b *testing.B) {
	packets := []Packet{
		{Kind: MsgHello, Owner: 7, Neighbors: []graph.NodeID{1, 2, 3, 4, 5, 6, 8, 9, 10, 11}},
		{Kind: MsgCandidate, Origin: 42, Priority: 1 << 60},
		{Kind: MsgDelete, Origin: 3},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := EncodeFrame(packets)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}
