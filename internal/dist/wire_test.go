package dist

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dcc/internal/graph"
)

func TestFrameRoundTrip(t *testing.T) {
	packets := []Packet{
		{Kind: MsgHello, Owner: 7, Neighbors: []graph.NodeID{1, 2, 300}},
		{Kind: MsgHello, Owner: 0, Neighbors: nil},
		{Kind: MsgCandidate, Origin: 42, Priority: 0xdeadbeefcafef00d},
		{Kind: MsgDelete, Origin: 9001},
	}
	frame, err := EncodeFrame(packets)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(packets) {
		t.Fatalf("decoded %d packets, want %d", len(got), len(packets))
	}
	for i := range packets {
		if got[i].Kind != packets[i].Kind ||
			got[i].Owner != packets[i].Owner ||
			got[i].Origin != packets[i].Origin ||
			got[i].Priority != packets[i].Priority {
			t.Fatalf("packet %d mismatch: %+v vs %+v", i, got[i], packets[i])
		}
		if len(got[i].Neighbors) != len(packets[i].Neighbors) {
			t.Fatalf("packet %d neighbour count mismatch", i)
		}
		if len(packets[i].Neighbors) > 0 && !reflect.DeepEqual(got[i].Neighbors, packets[i].Neighbors) {
			t.Fatalf("packet %d neighbours mismatch", i)
		}
	}
}

func TestEmptyFrame(t *testing.T) {
	frame, err := EncodeFrame(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d packets from empty frame", len(got))
	}
}

func TestEncodeRejectsBadPackets(t *testing.T) {
	if _, err := EncodeFrame([]Packet{{Kind: MsgKind(99)}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := EncodeFrame([]Packet{{Kind: MsgDelete, Origin: -1}}); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := EncodeFrame([]Packet{{Kind: MsgHello, Owner: 1, Neighbors: []graph.NodeID{-2}}}); err == nil {
		t.Fatal("negative neighbour accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},         // bad version
		{1},          // missing count
		{1, 5},       // count 5, no packets
		{1, 1, 42},   // unknown kind
		{1, 1, 2, 7}, // candidate without priority bytes
		{1, 1, 3},    // delete without origin
		{1, 0, 0xff}, // trailing bytes
	}
	for i, frame := range cases {
		if _, err := DecodeFrame(frame); err == nil {
			t.Fatalf("case %d: garbage frame accepted", i)
		}
	}
	// Version error is distinguishable.
	if _, err := DecodeFrame([]byte{2, 0}); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
}

func TestDecodeTruncatedHello(t *testing.T) {
	full, err := EncodeFrame([]Packet{{Kind: MsgHello, Owner: 5, Neighbors: []graph.NodeID{1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		if _, err := DecodeFrame(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(20)
		packets := make([]Packet, 0, n)
		for i := 0; i < n; i++ {
			switch r.Intn(3) {
			case 0:
				p := Packet{Kind: MsgHello, Owner: graph.NodeID(r.Intn(1 << 20))}
				for j := r.Intn(12); j > 0; j-- {
					p.Neighbors = append(p.Neighbors, graph.NodeID(r.Intn(1<<20)))
				}
				packets = append(packets, p)
			case 1:
				packets = append(packets, Packet{
					Kind: MsgCandidate, Origin: graph.NodeID(r.Intn(1 << 20)), Priority: r.Uint64(),
				})
			default:
				packets = append(packets, Packet{Kind: MsgDelete, Origin: graph.NodeID(r.Intn(1 << 20))})
			}
		}
		frame, err := EncodeFrame(packets)
		if err != nil {
			return false
		}
		got, err := DecodeFrame(frame)
		if err != nil || len(got) != len(packets) {
			return false
		}
		for i := range packets {
			a, b := got[i], packets[i]
			if a.Kind != b.Kind || a.Owner != b.Owner || a.Origin != b.Origin || a.Priority != b.Priority {
				return false
			}
			if len(a.Neighbors) != len(b.Neighbors) {
				return false
			}
			for j := range a.Neighbors {
				if a.Neighbors[j] != b.Neighbors[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameV2RoundTrip(t *testing.T) {
	packets := []Packet{
		{Kind: MsgHello, Owner: 7, Neighbors: []graph.NodeID{1, 2, 300}},
		{Kind: MsgCandidate, Origin: 42, Priority: 0xdeadbeefcafef00d},
		{Kind: MsgDelete, Origin: 9001},
		{Kind: MsgAck, Origin: 13, Seq: 77},
		{Kind: MsgRejoin, Origin: 5},
	}
	for _, seq := range []uint64{0, 1, 127, 128, 1 << 40, 1<<64 - 1} {
		frame, err := EncodeFrameV2(seq, packets)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeFrameAny(frame)
		if err != nil {
			t.Fatal(err)
		}
		if got.Version != 2 || got.Seq != seq {
			t.Fatalf("seq %d: decoded header version=%d seq=%d", seq, got.Version, got.Seq)
		}
		if !reflect.DeepEqual(got.Packets, packets) {
			t.Fatalf("seq %d: packets mismatch:\ngot:  %+v\nwant: %+v", seq, got.Packets, packets)
		}
	}
}

func TestDecodeFrameAnyHandlesV1(t *testing.T) {
	packets := []Packet{{Kind: MsgDelete, Origin: 3}}
	frame, err := EncodeFrame(packets)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrameAny(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || got.Seq != 0 {
		t.Fatalf("v1 header decoded as version=%d seq=%d", got.Version, got.Seq)
	}
	if !reflect.DeepEqual(got.Packets, packets) {
		t.Fatalf("v1 packets mismatch: %+v", got.Packets)
	}
}

func TestFrameEncodePreservesBytes(t *testing.T) {
	// The encoder emits canonical (minimal-uvarint) frames, so for
	// encoder-produced input decode→Encode must reproduce the bytes exactly
	// in both versions.
	packets := []Packet{
		{Kind: MsgHello, Owner: 1, Neighbors: []graph.NodeID{2, 9}},
		{Kind: MsgAck, Origin: 4, Seq: 1 << 21},
	}
	v1, err := EncodeFrame(packets)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := EncodeFrameV2(999, packets)
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range [][]byte{v1, v2} {
		f, err := DecodeFrameAny(frame)
		if err != nil {
			t.Fatal(err)
		}
		again, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, frame) {
			t.Fatalf("re-encode changed bytes:\ngot:  %x\nwant: %x", again, frame)
		}
	}
	if _, err := (Frame{Version: 9}).Encode(); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("unknown version accepted by Encode: %v", err)
	}
}

func TestEncodeV2RejectsBadPackets(t *testing.T) {
	if _, err := EncodeFrameV2(1, []Packet{{Kind: MsgAck, Origin: -1}}); err == nil {
		t.Fatal("negative ack origin accepted")
	}
	if _, err := EncodeFrameV2(1, []Packet{{Kind: MsgRejoin, Origin: -7}}); err == nil {
		t.Fatal("negative rejoin origin accepted")
	}
}

func TestDecodeFrameAnyRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},            // unsupported version
		{2},             // v2 missing seq
		{2, 5},          // seq 5, missing count
		{2, 0, 1},       // count 1, no packet
		{2, 0, 1, 4, 9}, // ACK without seq bytes
		{2, 0, 1, 5},    // REJOIN without origin
		{2, 0, 0, 0xff}, // trailing byte
	}
	for i, frame := range cases {
		if _, err := DecodeFrameAny(frame); err == nil {
			t.Fatalf("case %d: garbage v2 frame accepted", i)
		}
	}
	// Truncations of a valid v2 frame must all be rejected.
	full, err := EncodeFrameV2(300, []Packet{
		{Kind: MsgHello, Owner: 5, Neighbors: []graph.NodeID{1, 2, 3}},
		{Kind: MsgAck, Origin: 2, Seq: 9000},
	})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		if _, err := DecodeFrameAny(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func BenchmarkEncodeDecodeFrame(b *testing.B) {
	packets := []Packet{
		{Kind: MsgHello, Owner: 7, Neighbors: []graph.NodeID{1, 2, 3, 4, 5, 6, 8, 9, 10, 11}},
		{Kind: MsgCandidate, Origin: 42, Priority: 1 << 60},
		{Kind: MsgDelete, Origin: 3},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := EncodeFrame(packets)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}
