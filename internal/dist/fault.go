package dist

import (
	"fmt"
	"sort"

	"dcc/internal/graph"
)

// Reliability selects the delivery guarantee of the CANDIDATE and DELETE
// floods (the paper's safety-critical messages).
type Reliability int

const (
	// ReliabilityNone is the paper's bare fire-and-forget flooding: under
	// message loss two MIS "winners" closer than m hops can delete
	// simultaneously (the documented Theorem 5/6 gap).
	ReliabilityNone Reliability = iota
	// AckFloods adds per-hop ACK/retransmit to the CANDIDATE and DELETE
	// floods: sequenced v2 frames, bounded retries with exponential round
	// backoff, and candidate withdrawal when the origin's own first hop
	// cannot be fully acknowledged. MIS independence then holds for any
	// Loss < 1 (up to the retry bound, which the chaos harness pins).
	AckFloods
)

func (r Reliability) String() string {
	switch r {
	case ReliabilityNone:
		return "none"
	case AckFloods:
		return "ack-floods"
	default:
		return fmt.Sprintf("Reliability(%d)", int(r))
	}
}

// CrashEvent schedules one fail-stop crash, optionally followed by a
// recovery (the node rejoins with an empty view and resyncs from its
// neighbours).
type CrashEvent struct {
	// Node is the crash victim.
	Node graph.NodeID
	// At is the 1-based super-round at whose start the node fails.
	At int
	// AfterElection delays the crash within super-round At until after
	// the MIS election, so an elected winner can die before announcing
	// its deletion — the adversarial schedule of the crash-of-a-winner
	// regression.
	AfterElection bool
	// RecoverAt is the super-round at whose start the node rejoins
	// (0 = never). A rejoining node rebuilds its local view from a
	// neighbour-assisted resync (MsgRejoin + record dump).
	RecoverAt int
}

// GilbertElliott parameterises the classic two-state bursty-loss channel:
// each directed link carries an independent Good/Bad Markov chain, stepped
// once per delivery attempt, and drops the frame with the loss probability
// of its current state. When set it replaces the i.i.d. Config.Loss model.
type GilbertElliott struct {
	// PGoodToBad and PBadToGood are the per-use state transition
	// probabilities.
	PGoodToBad, PBadToGood float64
	// LossGood and LossBad are the per-state drop probabilities in [0,1].
	LossGood, LossBad float64
}

// PartitionEvent cuts the network into two sides for a super-round
// interval: deliveries across the cut are dropped until the partition
// heals.
type PartitionEvent struct {
	// At is the 1-based super-round at whose start the partition begins;
	// Heal the super-round at whose start it heals (0 = never).
	At, Heal int
	// SideA lists the nodes of one side explicitly. When nil, sides are
	// drawn from the plan's SplitMix stream: side(v) =
	// hashPriority(planSeed, v, event index) & 1.
	SideA []graph.NodeID
}

// FaultPlan is a structured, seeded fault schedule. Everything in the
// plan is resolved deterministically from the plan itself plus Seed, so a
// faulty run stays reproducible from its Config alone.
type FaultPlan struct {
	// Seed drives seeded partition side assignment (and is folded into
	// nothing else; link-loss draws ride the runtime's SplitMix stream).
	Seed int64
	// Crashes are the fail-stop (and optional recovery) events.
	Crashes []CrashEvent
	// Bursty, when non-nil, replaces the i.i.d. Config.Loss model with
	// per-link Gilbert–Elliott bursty loss.
	Bursty *GilbertElliott
	// Partitions are timed partition/heal events.
	Partitions []PartitionEvent
}

// validate checks a fault plan against the network it will run on.
func (p *FaultPlan) validate(g *graph.Graph, iidLoss float64) error {
	for i, c := range p.Crashes {
		if !g.HasNode(c.Node) {
			return fmt.Errorf("dist: fault plan crash %d names unknown node %d", i, c.Node)
		}
		if c.At < 1 {
			return fmt.Errorf("dist: fault plan crash %d: super-round %d < 1", i, c.At)
		}
		if c.RecoverAt != 0 && c.RecoverAt <= c.At {
			return fmt.Errorf("dist: fault plan crash %d: recovery round %d not after crash round %d",
				i, c.RecoverAt, c.At)
		}
	}
	if ge := p.Bursty; ge != nil {
		if iidLoss > 0 {
			return fmt.Errorf("dist: Loss %v and FaultPlan.Bursty are mutually exclusive loss models", iidLoss)
		}
		for _, pr := range []struct {
			name string
			v    float64
		}{
			{"PGoodToBad", ge.PGoodToBad}, {"PBadToGood", ge.PBadToGood},
		} {
			if pr.v < 0 || pr.v > 1 {
				return fmt.Errorf("dist: Gilbert–Elliott %s %v outside [0,1]", pr.name, pr.v)
			}
		}
		if ge.LossGood < 0 || ge.LossGood >= 1 || ge.LossBad < 0 || ge.LossBad >= 1 {
			return fmt.Errorf("dist: Gilbert–Elliott loss probabilities (%v, %v) outside [0,1)",
				ge.LossGood, ge.LossBad)
		}
	}
	for i, pe := range p.Partitions {
		if pe.At < 1 {
			return fmt.Errorf("dist: fault plan partition %d: super-round %d < 1", i, pe.At)
		}
		if pe.Heal != 0 && pe.Heal <= pe.At {
			return fmt.Errorf("dist: fault plan partition %d: heal round %d not after start round %d",
				i, pe.Heal, pe.At)
		}
		for _, v := range pe.SideA {
			if !g.HasNode(v) {
				return fmt.Errorf("dist: fault plan partition %d names unknown node %d", i, v)
			}
		}
	}
	return nil
}

// linkKey identifies one directed radio link.
type linkKey struct{ from, to graph.NodeID }

// geLink is the per-link Gilbert–Elliott chain state.
type geLink struct{ bad bool }

// partitionState is one partition event with its side assignment
// resolved.
type partitionState struct {
	at, heal int
	sideA    map[graph.NodeID]bool
	active   bool
}

// faultState is the runtime half of a FaultPlan: events indexed by
// super-round, resolved partition sides, and per-link loss chains.
type faultState struct {
	plan       FaultPlan
	crashStart map[int][]CrashEvent // super-round -> start-of-round crashes
	crashPost  map[int][]CrashEvent // super-round -> after-election crashes
	recoverAt  map[int][]graph.NodeID
	partitions []partitionState
	ge         map[linkKey]*geLink
	activeCuts int
}

// newFaultState compiles a validated plan against the deployment graph.
func newFaultState(plan FaultPlan, g *graph.Graph) *faultState {
	f := &faultState{
		plan:       plan,
		crashStart: make(map[int][]CrashEvent),
		crashPost:  make(map[int][]CrashEvent),
		recoverAt:  make(map[int][]graph.NodeID),
	}
	for _, c := range plan.Crashes {
		if c.AfterElection {
			f.crashPost[c.At] = append(f.crashPost[c.At], c)
		} else {
			f.crashStart[c.At] = append(f.crashStart[c.At], c)
		}
		if c.RecoverAt != 0 {
			f.recoverAt[c.RecoverAt] = append(f.recoverAt[c.RecoverAt], c.Node)
		}
	}
	for i, pe := range plan.Partitions {
		ps := partitionState{at: pe.At, heal: pe.Heal, sideA: make(map[graph.NodeID]bool)}
		if pe.SideA != nil {
			for _, v := range pe.SideA {
				ps.sideA[v] = true
			}
		} else {
			for _, v := range g.Nodes() {
				if hashPriority(uint64(plan.Seed)^0xa0761d6478bd642f, uint64(v), uint64(i))&1 == 0 {
					ps.sideA[v] = true
				}
			}
		}
		f.partitions = append(f.partitions, ps)
	}
	if plan.Bursty != nil {
		f.ge = make(map[linkKey]*geLink)
	}
	return f
}

// eventsAfter reports whether the plan schedules any event strictly after
// super-round sr: a crash, a recovery, or a partition heal. While events
// are pending the protocol must keep idling through super-rounds even with
// no candidates — a scheduled recovery can both revive candidacy and is
// required for the rejoiner to count as alive in the final result.
func (f *faultState) eventsAfter(sr int) bool {
	for _, c := range f.plan.Crashes {
		if c.At > sr || c.RecoverAt > sr {
			return true
		}
	}
	for _, p := range f.plan.Partitions {
		if p.At > sr || p.Heal > sr {
			return true
		}
	}
	return false
}

// enterSuperRound updates which partitions are active at super-round sr.
func (f *faultState) enterSuperRound(sr int) {
	f.activeCuts = 0
	for i := range f.partitions {
		p := &f.partitions[i]
		p.active = sr >= p.at && (p.heal == 0 || sr < p.heal)
		if p.active {
			f.activeCuts++
		}
	}
}

// linkCut reports whether an active partition severs the (u,v) link.
func (f *faultState) linkCut(u, v graph.NodeID) bool {
	if f.activeCuts == 0 {
		return false
	}
	for i := range f.partitions {
		p := &f.partitions[i]
		if p.active && p.sideA[u] != p.sideA[v] {
			return true
		}
	}
	return false
}

// geDrop advances the directed link's Gilbert–Elliott chain by one use and
// reports whether this delivery is lost. Draw order (one transition draw,
// then one loss draw) is fixed, so the stream stays reproducible.
func (f *faultState) geDrop(from, to graph.NodeID, rng *splitMix) bool {
	l := f.ge[linkKey{from, to}]
	if l == nil {
		l = &geLink{}
		f.ge[linkKey{from, to}] = l
	}
	ge := f.plan.Bursty
	if l.bad {
		if rng.float64() < ge.PBadToGood {
			l.bad = false
		}
	} else {
		if rng.float64() < ge.PGoodToBad {
			l.bad = true
		}
	}
	p := ge.LossGood
	if l.bad {
		p = ge.LossBad
	}
	return p > 0 && rng.float64() < p
}

// sortedCrashEvents returns the round's events in deterministic (node,
// recover) order.
func sortedCrashEvents(evs []CrashEvent) []CrashEvent {
	out := append([]CrashEvent(nil), evs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].RecoverAt < out[j].RecoverAt
	})
	return out
}

// sortedIDs returns a sorted copy of ids.
func sortedIDs(ids []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
