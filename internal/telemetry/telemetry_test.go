package telemetry

import (
	"io"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(7)
	r.Histogram("h", []int64{1, 2}).Observe(1)
	r.TimingHistogram("t").Observe(1)
	if d := r.StartSpan("s").End(); d != 0 {
		t.Fatalf("nil-registry span returned %d", d)
	}
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value %d", got)
	}
	if err := r.WriteNDJSON(&strings.Builder{}); err != nil {
		t.Fatalf("nil WriteNDJSON: %v", err)
	}
	var zero [32]byte
	if r.Fingerprint() == zero {
		// Fingerprint of an empty registry is the hash of the domain tag,
		// never the zero value.
		t.Fatal("nil fingerprint is zero")
	}
}

func TestCounterMonotonic(t *testing.T) {
	r := New()
	c := r.Counter("events")
	c.Add(3)
	c.Add(-5) // ignored: counters are monotonic
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("events") != c {
		t.Fatal("re-request returned a different handle")
	}
}

func TestRegistryCollisionPanics(t *testing.T) {
	r := New()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind collision did not panic")
		}
	}()
	r.Gauge("x")
}

// bucketOf mirrors Observe's bucket selection for the test oracle.
func bucketOf(bounds []int64, v int64) int {
	return sort.Search(len(bounds), func(i int) bool { return v <= bounds[i] })
}

// TestQuantileBounds is the percentile-correctness property test: for
// random observation sets, Quantile(q) must be an upper bound of the true
// q-quantile, lie in the same bucket, and never exceed the observed max.
func TestQuantileBounds(t *testing.T) {
	bounds := []int64{1, 2, 5, 10, 20, 50, 100, 200, 500}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		r := New()
		h := r.Histogram("q", bounds)
		n := 1 + rng.Intn(400)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(1000)) // beyond the last bound on purpose
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			target := int((q*float64(n) + 0.999999))
			if target < 1 {
				target = 1
			}
			if target > n {
				target = n
			}
			trueQ := vals[target-1]
			got := h.Quantile(q)
			if got < trueQ {
				t.Fatalf("trial %d q=%v: Quantile %d below true quantile %d", trial, q, got, trueQ)
			}
			if got > vals[n-1] {
				t.Fatalf("trial %d q=%v: Quantile %d above max %d", trial, q, got, vals[n-1])
			}
			if bucketOf(bounds, got) != bucketOf(bounds, trueQ) {
				t.Fatalf("trial %d q=%v: Quantile %d in bucket %d, true quantile %d in bucket %d",
					trial, q, got, bucketOf(bounds, got), trueQ, bucketOf(bounds, trueQ))
			}
		}
	}
	if (&Hist{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
}

// histState flattens a histogram for exact comparison.
func histState(t *testing.T, h *Hist) []int64 {
	t.Helper()
	_, counts := h.Buckets()
	return append(counts, h.Count(), h.Sum(), h.Min(), h.Max())
}

func equalState(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMergeExactAssociativeCommutative is the merge-semantics property
// test: merging histograms equals observing the union of their values, in
// any order and grouping.
func TestMergeExactAssociativeCommutative(t *testing.T) {
	bounds := []int64{1, 5, 25, 125}
	rng := rand.New(rand.NewSource(2))
	mk := func(vals []int64) *Hist {
		h := newHist(bounds)
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	for trial := 0; trial < 100; trial++ {
		var a, b, c []int64
		for i, n := 0, rng.Intn(60); i < n; i++ {
			v := int64(rng.Intn(300)) - 20 // negatives land in bucket 0
			switch rng.Intn(3) {
			case 0:
				a = append(a, v)
			case 1:
				b = append(b, v)
			default:
				c = append(c, v)
			}
		}
		all := mk(append(append(append([]int64(nil), a...), b...), c...))

		// (a+b)+c
		ab := mk(a)
		if err := ab.MergeFrom(mk(b)); err != nil {
			t.Fatal(err)
		}
		abc := ab
		if err := abc.MergeFrom(mk(c)); err != nil {
			t.Fatal(err)
		}
		// a+(b+c)
		bc := mk(b)
		if err := bc.MergeFrom(mk(c)); err != nil {
			t.Fatal(err)
		}
		abc2 := mk(a)
		if err := abc2.MergeFrom(bc); err != nil {
			t.Fatal(err)
		}
		// c+b+a (commuted)
		cba := mk(c)
		if err := cba.MergeFrom(mk(b)); err != nil {
			t.Fatal(err)
		}
		if err := cba.MergeFrom(mk(a)); err != nil {
			t.Fatal(err)
		}

		want := histState(t, all)
		for name, h := range map[string]*Hist{"(a+b)+c": abc, "a+(b+c)": abc2, "c+b+a": cba} {
			if got := histState(t, h); !equalState(got, want) {
				t.Fatalf("trial %d: merge %s = %v, direct observation = %v", trial, name, got, want)
			}
		}
	}
}

func TestMergeBoundsMismatch(t *testing.T) {
	a := newHist([]int64{1, 2})
	if err := a.MergeFrom(newHist([]int64{1, 2, 3})); err == nil {
		t.Fatal("bucket-count mismatch accepted")
	}
	if err := a.MergeFrom(newHist([]int64{1, 3})); err == nil {
		t.Fatal("bound-value mismatch accepted")
	}
	if err := a.MergeFrom(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

func TestSpanRecordsWithManualClock(t *testing.T) {
	clk := &ManualClock{}
	r := NewWithClock(clk)
	sp := r.StartSpan("phase")
	clk.Advance(2500)
	if d := sp.End(); d != 2500 {
		t.Fatalf("span duration %d, want 2500", d)
	}
	h := r.TimingHistogram("phase")
	if h.Count() != 1 || h.Sum() != 2500 {
		t.Fatalf("span histogram count=%d sum=%d", h.Count(), h.Sum())
	}

	// Clock-less registries produce no-op spans and register no series.
	r2 := New()
	if d := r2.StartSpan("phase").End(); d != 0 {
		t.Fatalf("clock-less span recorded %d", d)
	}
	var b strings.Builder
	if err := r2.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("clock-less StartSpan registered series: %q", b.String())
	}
}

func TestManualClockTick(t *testing.T) {
	clk := &ManualClock{Tick: 10}
	if a, b := clk.Now(), clk.Now(); a != 0 || b != 10 {
		t.Fatalf("ticking clock read %d then %d, want 0 then 10", a, b)
	}
}

// TestFingerprintExcludesTiming pins the class split: timing series never
// influence the fingerprint, deterministic series always do.
func TestFingerprintExcludesTiming(t *testing.T) {
	mk := func(timingObs int64, detObs int64) [32]byte {
		clk := &ManualClock{Tick: 1}
		r := NewWithClock(clk)
		r.Counter("work").Add(detObs)
		sp := r.StartSpan("lat")
		clk.Advance(timingObs)
		sp.End()
		r.TimingValues("occupancy", []int64{1, 8}).Observe(timingObs)
		return r.Fingerprint()
	}
	if mk(5, 3) != mk(50_000, 3) {
		t.Fatal("timing series leaked into the fingerprint")
	}
	if mk(5, 3) == mk(5, 4) {
		t.Fatal("deterministic counter change did not change the fingerprint")
	}
}

// TestWriteNDJSONGolden is the -metrics schema snapshot test: the exact
// bytes are pinned, so any schema drift is a deliberate, reviewed change.
func TestWriteNDJSONGolden(t *testing.T) {
	r := New()
	r.Counter("core.tests").Add(5)
	r.Gauge("stream.pending").Set(2)
	h := r.Histogram("vpt.dirty_ball", []int64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)
	r.TimingValues("runner.occupancy", []int64{1, 2}).Observe(1)

	var b strings.Builder
	if err := r.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"schema":"dcc-metrics-v1","class":"deterministic","type":"counter","name":"core.tests","value":5}
{"schema":"dcc-metrics-v1","class":"timing","type":"histogram","name":"runner.occupancy","count":1,"sum":1,"min":1,"max":1,"buckets":[{"le":1,"n":1},{"le":2,"n":0},{"n":0}]}
{"schema":"dcc-metrics-v1","class":"deterministic","type":"gauge","name":"stream.pending","value":2}
{"schema":"dcc-metrics-v1","class":"deterministic","type":"histogram","name":"vpt.dirty_ball","count":3,"sum":13,"min":1,"max":9,"buckets":[{"le":1,"n":1},{"le":2,"n":0},{"le":4,"n":1},{"n":1}]}
`
	if b.String() != want {
		t.Fatalf("NDJSON snapshot drifted from the golden schema\n--- want ---\n%s--- got ---\n%s", want, b.String())
	}
}

func TestHandlerServesMetricsAndDebug(t *testing.T) {
	r := New()
	r.Counter("hits").Add(9)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, `"name":"hits","value":9`) {
		t.Fatalf("/metrics missing counter: %q", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars missing expvar memstats: %q", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}
