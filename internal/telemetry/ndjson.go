package telemetry

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// The NDJSON export schema, versioned so downstream tooling (bench.sh,
// dashboards) can detect incompatible changes. One JSON object per line,
// sorted by series name; scalar series carry "value", histograms carry
// count/sum/min/max plus the bucket layout. Field sets are additive within
// a schema version.
const schemaVersion = "dcc-metrics-v1"

// bucketJSON is one histogram bucket: the count of observations ≤ le
// (and above the previous bound). The overflow bucket has no le.
type bucketJSON struct {
	LE *int64 `json:"le,omitempty"`
	N  int64  `json:"n"`
}

// lineJSON is one exported series.
type lineJSON struct {
	Schema  string       `json:"schema"`
	Class   string       `json:"class"`
	Type    string       `json:"type"`
	Name    string       `json:"name"`
	Unit    string       `json:"unit,omitempty"`
	Value   *int64       `json:"value,omitempty"`
	Count   *int64       `json:"count,omitempty"`
	Sum     *int64       `json:"sum,omitempty"`
	Min     *int64       `json:"min,omitempty"`
	Max     *int64       `json:"max,omitempty"`
	Buckets []bucketJSON `json:"buckets,omitempty"`
}

// WriteNDJSON writes every registered series as newline-delimited JSON in
// name order — the `dccsim -metrics` format. Values are read with atomic
// loads; for an exact snapshot, write after the workload quiesces.
func (r *Registry) WriteNDJSON(w io.Writer) error {
	for _, m := range r.sorted() {
		line := lineJSON{
			Schema: schemaVersion,
			Class:  m.class.String(),
			Type:   m.kind,
			Name:   m.name,
			Unit:   m.unit,
		}
		switch m.kind {
		case "counter":
			v := m.c.Value()
			line.Value = &v
		case "gauge":
			v := m.g.Value()
			line.Value = &v
		case "histogram":
			count, sum, min, max := m.h.Count(), m.h.Sum(), m.h.Min(), m.h.Max()
			line.Count, line.Sum, line.Min, line.Max = &count, &sum, &min, &max
			bounds, counts := m.h.Buckets()
			line.Buckets = make([]bucketJSON, len(counts))
			for i := range counts {
				line.Buckets[i].N = counts[i]
				if i < len(bounds) {
					le := bounds[i]
					line.Buckets[i].LE = &le
				}
			}
		}
		b, err := json.Marshal(line)
		if err != nil {
			return fmt.Errorf("telemetry: encoding series %q: %w", m.name, err)
		}
		if _, err := fmt.Fprintf(w, "%s\n", b); err != nil {
			return err
		}
	}
	return nil
}

// Fingerprint hashes the deterministic series — names, kinds and exact
// values, in name order — and nothing else: timing series are excluded by
// class, so the fingerprint is identical across worker counts, machines,
// and telemetry clock choices. It is the value the equivalence tests pin.
func (r *Registry) Fingerprint() [32]byte {
	b := []byte("dcc-metrics-fp-v1")
	for _, m := range r.sorted() {
		if m.class != Deterministic {
			continue
		}
		b = append(b, m.kind...)
		b = append(b, 0)
		b = append(b, m.name...)
		b = append(b, 0)
		switch m.kind {
		case "counter":
			b = binary.LittleEndian.AppendUint64(b, uint64(m.c.Value()))
		case "gauge":
			b = binary.LittleEndian.AppendUint64(b, uint64(m.g.Value()))
		case "histogram":
			bounds, counts := m.h.Buckets()
			b = binary.AppendUvarint(b, uint64(len(bounds)))
			for _, bd := range bounds {
				b = binary.LittleEndian.AppendUint64(b, uint64(bd))
			}
			for _, n := range counts {
				b = binary.LittleEndian.AppendUint64(b, uint64(n))
			}
			b = binary.LittleEndian.AppendUint64(b, uint64(m.h.Count()))
			b = binary.LittleEndian.AppendUint64(b, uint64(m.h.Sum()))
			b = binary.LittleEndian.AppendUint64(b, uint64(m.h.Min()))
			b = binary.LittleEndian.AppendUint64(b, uint64(m.h.Max()))
		}
	}
	return sha256.Sum256(b)
}
