// Package telemetry is the repository's zero-dependency metrics substrate:
// monotonic counters, gauges, fixed-bucket histograms with exact merge
// semantics, and phase-scoped latency spans. It is designed around the
// determinism contract ("reproducible from Config alone", DESIGN.md §8):
//
//   - Every series carries a Class. Deterministic series (counters, gauges
//     and histograms fed from engine work — admissions, cache lookups,
//     dirty-ball sizes) are worker-count-invariant and join the equivalence
//     fingerprints. Timing series (span durations, worker occupancy) depend
//     on the scheduler and the machine; they are segregated by construction
//     and excluded from Fingerprint.
//   - Time flows only through an injected Clock. The package never reads
//     the wall clock on its own: a Registry built by New has no clock and
//     every span is a no-op, so simulation packages can thread a *Registry
//     unconditionally. Production clocks (WallClock) are injected
//     exclusively by cmd/ binaries; the clockflow analyzer (DESIGN.md §14)
//     statically proves no timing value reaches algorithmic state, seeds,
//     or control flow in simulation packages.
//
// All handles and the Registry itself are nil-safe: methods on a nil
// *Registry return nil handles, and operations on nil handles do nothing.
// Instrumented code therefore needs no "telemetry enabled?" branches —
// which is exactly what keeps the telemetry-on-vs-off byte-identity test
// (TestTelemetryDoesNotPerturbResults) trivially true.
//
// Counters, gauges and histogram buckets are updated with atomic
// operations, so concurrent workers may observe into the same series.
// Deterministic counters and histograms stay worker-count-invariant under
// concurrency because their final state is a commutative fold (sums,
// bucket counts, min/max) of a worker-count-invariant multiset of
// observations. Gauges are last-write-wins and therefore must only be set
// from single-goroutine contexts (post-barrier, or a serialized engine).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Class partitions series by their relationship to the determinism
// contract.
type Class uint8

const (
	// Deterministic series are a pure function of the Config: identical
	// across worker counts and included in Fingerprint.
	Deterministic Class = iota
	// Timing series depend on the clock and the scheduler: excluded from
	// Fingerprint and from every equivalence comparison.
	Timing
)

// String returns the NDJSON class label.
func (c Class) String() string {
	if c == Timing {
		return "timing"
	}
	return "deterministic"
}

// Counter is a monotonic event counter. The zero value is ready to use; a
// nil *Counter ignores all operations.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (d < 0 is ignored: counters are
// monotonic).
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins instantaneous value (queue depth, live-node
// count). Because it is last-write-wins, a deterministic gauge must only
// be set from a single-goroutine context; concurrent engines publish
// counters instead. A nil *Gauge ignores all operations.
type Gauge struct{ v atomic.Int64 }

// Set records the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the last value set (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Hist is a fixed-bucket histogram: bucket i counts observations v with
// v ≤ bounds[i] (and above bounds[i-1]), plus one overflow bucket past the
// last bound. Fixed bounds give exact merge semantics: merging two
// histograms with equal bounds is byte-for-byte the histogram of the
// union of their observations (MergeFrom), which is what lets per-shard
// histograms aggregate without approximation error. A nil *Hist ignores
// all operations.
type Hist struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // math.MaxInt64 until the first observation
	max    atomic.Int64 // math.MinInt64 until the first observation
}

func newHist(bounds []int64) *Hist {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not strictly increasing at index %d (%d after %d)",
				i, bounds[i], bounds[i-1]))
		}
	}
	h := &Hist{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Hist) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Min returns the smallest observation (0 when empty).
func (h *Hist) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation (0 when empty).
func (h *Hist) Max() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Buckets returns copies of the bucket upper bounds and the per-bucket
// counts (one extra trailing count for the overflow bucket).
func (h *Hist) Buckets() (bounds, counts []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]int64(nil), h.bounds...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// upper edge of the bucket holding the ⌈q·count⌉-th smallest observation,
// clamped to the observed maximum (which also covers the unbounded
// overflow bucket). Returns 0 when the histogram is empty. The bound is
// exact to bucket resolution — the true quantile lies in the same bucket.
func (h *Hist) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	max := h.max.Load()
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i == len(h.bounds) || h.bounds[i] > max {
				return max
			}
			return h.bounds[i]
		}
	}
	return max
}

// MergeFrom adds o's observations into h. Exact when the bucket bounds are
// identical — the merged histogram equals the histogram of the union of
// observations — and an error otherwise (no approximate rebinning). o is
// read with atomic loads but not snapshotted; merge quiescent histograms.
func (h *Hist) MergeFrom(o *Hist) error {
	if h == nil || o == nil {
		return nil
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("telemetry: merge of histograms with %d vs %d buckets", len(h.bounds), len(o.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("telemetry: merge of histograms with different bounds at index %d (%d vs %d)",
				i, h.bounds[i], o.bounds[i])
		}
	}
	if o.count.Load() == 0 {
		return nil
	}
	for i := range h.counts {
		if d := o.counts[i].Load(); d != 0 {
			h.counts[i].Add(d)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	for {
		v, cur := o.min.Load(), h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		v, cur := o.max.Load(), h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	return nil
}

// DefaultLatencyBounds is the shared latency bucket layout: 1-2-5 decades
// from 1µs to 100s, in nanoseconds. Every span histogram uses it, so span
// histograms from any two registries merge exactly.
var DefaultLatencyBounds = []int64{
	1_000, 2_000, 5_000, // 1µs–5µs
	10_000, 20_000, 50_000,
	100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000, // 1ms–5ms
	10_000_000, 20_000_000, 50_000_000,
	100_000_000, 200_000_000, 500_000_000,
	1_000_000_000, 2_000_000_000, 5_000_000_000, // 1s–5s
	10_000_000_000, 20_000_000_000, 50_000_000_000,
	100_000_000_000, // 100s
}

// metric is one registered series.
type metric struct {
	name  string
	kind  string // "counter", "gauge" or "histogram"
	class Class
	unit  string // "ns" for span histograms, "" otherwise
	c     *Counter
	g     *Gauge
	h     *Hist
}

// Registry holds the named series of one collection domain. A nil
// *Registry is the "telemetry off" state: every method returns a nil
// handle (or a no-op Span), so instrumented code never branches.
type Registry struct {
	clock  Clock
	mu     sync.Mutex
	byName map[string]*metric
}

// New returns a registry with no clock: counters, gauges and histograms
// work, spans are no-ops. Simulation code can safely receive such a
// registry — there is no time source to leak.
func New() *Registry { return NewWithClock(nil) }

// NewWithClock returns a registry whose spans read the given clock.
// Production code injects WallClock (from a cmd/ binary only); tests
// inject a ManualClock.
func NewWithClock(c Clock) *Registry {
	return &Registry{clock: c, byName: make(map[string]*metric)}
}

// lookup returns the series named name, creating it on first use. Name
// collisions across kinds or classes are programmer errors and panic
// deterministically.
func (r *Registry) lookup(name, kind string, class Class, unit string, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind || m.class != class {
			panic(fmt.Sprintf("telemetry: series %q redefined as %s/%s (was %s/%s)",
				name, class, kind, m.class, m.kind))
		}
		return m
	}
	m := mk()
	m.name, m.kind, m.class, m.unit = name, kind, class, unit
	r.byName[name] = m
	return m
}

// Counter returns the deterministic counter named name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, "counter", Deterministic, "", func() *metric {
		return &metric{c: &Counter{}}
	}).c
}

// Gauge returns the deterministic gauge named name. Gauges are
// last-write-wins: set them only from single-goroutine contexts.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, "gauge", Deterministic, "", func() *metric {
		return &metric{g: &Gauge{}}
	}).g
}

// Histogram returns the deterministic histogram named name with the given
// bucket bounds (strictly increasing). Re-requesting an existing histogram
// with different bounds panics.
func (r *Registry) Histogram(name string, bounds []int64) *Hist {
	if r == nil {
		return nil
	}
	return r.histogram(name, bounds, Deterministic, "")
}

// TimingHistogram returns the timing-class latency histogram named name,
// bucketed by DefaultLatencyBounds in nanoseconds. This is the series
// StartSpan records into.
func (r *Registry) TimingHistogram(name string) *Hist {
	if r == nil {
		return nil
	}
	return r.histogram(name, DefaultLatencyBounds, Timing, "ns")
}

// TimingValues returns a timing-class histogram with caller-chosen bounds,
// for scheduler-dependent values that are not durations (worker occupancy,
// batch sizes under contention).
func (r *Registry) TimingValues(name string, bounds []int64) *Hist {
	if r == nil {
		return nil
	}
	return r.histogram(name, bounds, Timing, "")
}

func (r *Registry) histogram(name string, bounds []int64, class Class, unit string) *Hist {
	m := r.lookup(name, "histogram", class, unit, func() *metric {
		return &metric{h: newHist(bounds)}
	})
	if len(m.h.bounds) != len(bounds) {
		panic(fmt.Sprintf("telemetry: histogram %q re-requested with %d bounds (has %d)",
			name, len(bounds), len(m.h.bounds)))
	}
	for i := range bounds {
		if m.h.bounds[i] != bounds[i] {
			panic(fmt.Sprintf("telemetry: histogram %q re-requested with different bounds at index %d", name, i))
		}
	}
	return m.h
}

// Span is one phase-scoped timing measurement: StartSpan reads the clock,
// End reads it again and records the duration into the span's timing
// histogram. The zero Span (from a nil registry or a clock-less one) is a
// no-op whose End returns 0.
type Span struct {
	h     *Hist
	clock Clock
	t0    int64
}

// StartSpan begins a span recording into the timing histogram named name.
// Without a clock (nil registry, or a registry built by New) the span is a
// no-op — which is how simulation packages can be instrumented while
// remaining provably timing-free.
func (r *Registry) StartSpan(name string) Span {
	if r == nil || r.clock == nil {
		return Span{}
	}
	return Span{h: r.TimingHistogram(name), clock: r.clock, t0: r.clock.Now()}
}

// End records the span's duration (clamped at 0) into its histogram and
// returns it in nanoseconds. End on a zero Span returns 0.
func (s Span) End() int64 {
	if s.clock == nil {
		return 0
	}
	d := s.clock.Now() - s.t0
	if d < 0 {
		d = 0
	}
	s.h.Observe(d)
	return d
}

// sorted returns the registered series sorted by name.
func (r *Registry) sorted() []*metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.byName))
	for _, m := range r.byName {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	return ms
}
