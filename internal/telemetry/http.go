package telemetry

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Handler returns the operational HTTP surface a resident daemon (the
// ROADMAP's dccd) mounts: the registry's NDJSON snapshot, Go's expvar
// variables, and the pprof profiling endpoints. dccsim serves it behind
// the -http flag; the handler holds only a reference to r, so metrics
// written after Handler returns are visible.
//
//	/metrics       NDJSON snapshot (dcc-metrics-v1)
//	/debug/vars    expvar JSON
//	/debug/pprof/  profiles (heap, goroutine, profile, trace, ...)
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = r.WriteNDJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
