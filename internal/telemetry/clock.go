package telemetry

import (
	"sync/atomic"
	"time"
)

// Clock is the only way time enters the telemetry layer: spans read
// nanosecond timestamps from an injected Clock, never from the time
// package directly. The production implementation is WallClock; tests use
// ManualClock. Simulation packages receive a Clock only transitively
// through a *Registry and never observe its values — the clockflow
// analyzer proves that statically.
type Clock interface {
	// Now returns a monotonic-ish timestamp in nanoseconds. Only
	// differences of Now values are ever interpreted.
	Now() int64
}

// WallClock reads the real monotonic clock. It exists so cmd/ binaries can
// inject real time; constructing one inside a simulation package is a
// clockflow/wallclock violation by design.
type WallClock struct{}

// Now returns the wall clock's monotonic reading in nanoseconds.
func (WallClock) Now() int64 {
	// The repository-wide wallclock ban covers internal/; this call is the
	// single sanctioned production time source, injected only from cmd/.
	//lint:ignore wallclock WallClock is the injected production time source; timing values stay inside telemetry's timing-class series
	return int64(time.Since(wallEpoch))
}

// wallEpoch anchors WallClock readings so differences use Go's monotonic
// clock (time.Since reads the monotonic component of the epoch).
//
//lint:ignore wallclock process-start epoch for monotonic readings; never observed by simulation code
var wallEpoch = time.Now()

// ManualClock is a deterministic test clock: Now returns the current
// setting and then advances it by Tick. Safe for concurrent use (the
// experiments equivalence tests drive spans from parallel workers).
type ManualClock struct {
	now atomic.Int64
	// Tick is the amount Now auto-advances per call. Zero means the clock
	// is frozen until Set/Advance. Set Tick before sharing the clock.
	Tick int64
}

// Now returns the current reading, post-incrementing by Tick.
func (c *ManualClock) Now() int64 {
	if c.Tick == 0 {
		return c.now.Load()
	}
	return c.now.Add(c.Tick) - c.Tick
}

// Set moves the clock to t.
func (c *ManualClock) Set(t int64) { c.now.Store(t) }

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d int64) { c.now.Add(d) }
