// Package stats provides the small statistical helpers used by the
// experiment harness: means, standard deviations, and empirical CDFs.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples.
func NewCDF(xs []float64) CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return CDF{sorted: s}
}

// Len returns the sample count.
func (c CDF) Len() int { return len(c.sorted) }

// At returns P(X ≤ x).
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (q in [0,1]).
func (c CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(q * float64(len(c.sorted)))
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Series is a labelled sequence of (x, y) pairs, as printed by the
// experiment harness.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Table renders a set of series sharing the same X values as an aligned
// text table.
func Table(xLabel string, series ...Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%14s", s.Name)
	}
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&b, "%-12.4g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%14.4f", s.Y[i])
			} else {
				fmt.Fprintf(&b, "%14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
