package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("StdDev of singleton != 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138) > 0.01 {
		t.Fatalf("StdDev = %v, want ≈2.138", got)
	}
}

func TestStdErr(t *testing.T) {
	if StdErr(nil) != 0 {
		t.Fatal("StdErr(nil) != 0")
	}
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	want := StdDev(xs) / 3
	if got := StdErr(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdErr = %v, want %v", got, want)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	tests := []struct {
		x, want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{2, 0.75},
		{2.5, 0.75},
		{3, 1},
		{10, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if q := c.Quantile(0); q != 1 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	if q := c.Quantile(1); q != 3 {
		t.Fatalf("Quantile(1) = %v", q)
	}
	if q := c.Quantile(0.5); q != 2 {
		t.Fatalf("Quantile(0.5) = %v", q)
	}
	empty := NewCDF(nil)
	if empty.At(1) != 0 {
		t.Fatal("empty CDF At != 0")
	}
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty CDF quantile not NaN")
	}
}

func TestTable(t *testing.T) {
	out := Table("tau",
		Series{Name: "dcc", X: []float64{3, 4}, Y: []float64{1.0, 0.8}},
		Series{Name: "hgc", X: []float64{3, 4}, Y: []float64{1.0, 1.0}},
	)
	if !strings.Contains(out, "tau") || !strings.Contains(out, "dcc") {
		t.Fatalf("table missing headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "0.8000") && !strings.Contains(lines[2], "0.8000") {
		t.Fatalf("missing value:\n%s", out)
	}
}

func TestTableRaggedSeries(t *testing.T) {
	out := Table("x",
		Series{Name: "a", X: []float64{1, 2}, Y: []float64{9, 8}},
		Series{Name: "b", X: []float64{1, 2}, Y: []float64{7}},
	)
	if !strings.Contains(out, "-") {
		t.Fatalf("ragged series not padded:\n%s", out)
	}
}
