// Package vpt implements the paper's Void Preserving Transformation
// (Definition 5): the purely local test that decides whether a vertex or an
// edge can be deleted without breaking τ-confine coverage.
//
// A vertex v of H is τ-deletable when its k-hop neighbourhood graph
// Γ^k_H(v) (k = ⌈τ/2⌉, v excluded) is connected and the maximum
// irreducible cycle in Γ^k_H(v) is bounded by τ. The second condition is
// evaluated as "cycles of length ≤ τ span the whole cycle space of
// Γ^k_H(v)", which is equivalent (see internal/cycles) and allows early
// termination.
//
// Theorem 5 of the paper guarantees that maximal vertex deletion under this
// test preserves τ-partitionability of the boundary; Theorem 6 guarantees
// non-redundancy of the result when the original graph's irreducible cycles
// are bounded by τ.
package vpt

import (
	"sort"

	"dcc/internal/cycles"
	"dcc/internal/graph"
)

// NeighborhoodRadius returns k = ⌈τ/2⌉, the radius of local connectivity a
// node must gather to run the deletability test for parameter τ.
func NeighborhoodRadius(tau int) int { return (tau + 1) / 2 }

// IndependenceRadius returns m = ⌈τ/2⌉ + 1, the hop separation at which two
// candidate deletions are independent (paper §V-B).
func IndependenceRadius(tau int) int { return NeighborhoodRadius(tau) + 1 }

// VertexDeletable reports whether v may be deleted from g under the τ-void
// preserving transformation:
//
//  1. Γ^k(v) (k = ⌈τ/2⌉, v excluded) is connected;
//  2. the cycle space of Γ^k(v) is spanned by cycles of length ≤ τ
//     (equivalently, its maximum irreducible cycle is ≤ τ); and
//  3. the void v leaves behind is confined: v lies on at least one cycle
//     of length ≤ τ, i.e. two of its direct neighbours are joined by a
//     path of length ≤ τ−2 inside Γ^k(v).
//
// Condition 3 makes Definition 5's rope-net semantics explicit: a vertex
// whose neighbourhood is acyclic satisfies condition 2 vacuously, yet
// nothing would confine the hole its deletion opens, so sparse tree-like
// regions would cascade-delete and silently void the confine guarantee.
// The stricter test only ever deletes less, so Theorem 5 (criterion
// preservation) is unaffected, and Theorem 6's precondition (all
// irreducible cycles of G bounded by τ) rules out unconfined vertices
// anyway.
func VertexDeletable(g *graph.Graph, v graph.NodeID, tau int) bool {
	if tau < 3 {
		return false
	}
	k := NeighborhoodRadius(tau)
	nbrs := g.KHopNeighbors(v, k)
	if len(nbrs) == 0 {
		return false // an isolated node's void is confined by nothing
	}
	sub := g.InducedSubgraph(nbrs)
	return NeighborhoodDeletable(sub, g.Neighbors(v), tau)
}

// NeighborhoodDeletable runs the deletability test on an already-extracted
// neighbourhood graph Γ^k(x) given the candidate's direct (1-hop)
// neighbours. It is the primitive the distributed runtime calls after a
// node has gathered its k-hop connectivity.
func NeighborhoodDeletable(neighborhood *graph.Graph, directNeighbors []graph.NodeID, tau int) bool {
	if neighborhood.NumNodes() == 0 {
		return false
	}
	if !neighborhood.IsConnected() {
		return false
	}
	if !voidConfined(neighborhood, directNeighbors, tau) {
		return false
	}
	return cycles.SpannedByShort(neighborhood, tau)
}

// voidConfined reports whether the candidate lies on a cycle of length
// ≤ tau: some pair of its direct neighbours is connected within the
// neighbourhood graph (candidate excluded) by a path of ≤ tau−2 hops.
func voidConfined(neighborhood *graph.Graph, directNeighbors []graph.NodeID, tau int) bool {
	ok, _ := voidConfinedBuf(neighborhood, directNeighbors, tau, nil)
	return ok
}

// voidConfinedBuf is voidConfined with caller-provided storage for the
// filtered direct-neighbour set: hot callers (Tester) pass their reusable
// buffer, the cold package-level path passes nil. The possibly regrown
// buffer is returned for the caller to keep.
//
//lint:ignore hotalloc appends target the caller-owned reusable buffer (nil only on the cold package-level path); growth is bounded by the direct degree and amortized by the Tester
func voidConfinedBuf(neighborhood *graph.Graph, directNeighbors []graph.NodeID, tau int, buf []graph.NodeID) (bool, []graph.NodeID) {
	direct := buf[:0]
	if len(directNeighbors) < 2 {
		return false, direct
	}
	for _, n := range directNeighbors {
		if neighborhood.HasNode(n) {
			direct = append(direct, n)
		}
	}
	sort.Slice(direct, func(i, j int) bool { return direct[i] < direct[j] })
	if len(direct) < 2 {
		return false, direct
	}
	for _, n := range direct {
		t := neighborhood.BFS(n, tau-2)
		for _, m := range direct {
			if m != n && t.Depth(m) >= 0 {
				return true, direct
			}
		}
	}
	return false, direct
}

// EdgeDeletable reports whether the edge {u,v} may be deleted from g under
// the τ-void preserving transformation. The neighbourhood graph of an edge
// is induced by the union of the endpoints' k-hop neighbourhoods plus the
// endpoints themselves, with the edge itself removed. The void-confinement
// analogue of the vertex rule requires the edge to lie on a cycle of
// length ≤ τ: its endpoints must remain within τ−1 hops of each other
// once the edge is gone.
func EdgeDeletable(g *graph.Graph, u, v graph.NodeID, tau int) bool {
	if tau < 3 || !g.HasEdge(u, v) {
		return false
	}
	k := NeighborhoodRadius(tau)
	set := make(map[graph.NodeID]struct{})
	for _, w := range g.KHopNeighbors(u, k) {
		set[w] = struct{}{}
	}
	for _, w := range g.KHopNeighbors(v, k) {
		set[w] = struct{}{}
	}
	set[u] = struct{}{}
	set[v] = struct{}{}
	nodes := make([]graph.NodeID, 0, len(set))
	for w := range set {
		nodes = append(nodes, w)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	sub := g.InducedSubgraph(nodes).DeleteEdges([]graph.Edge{graph.NormEdge(u, v)})
	if !sub.IsConnected() {
		return false
	}
	if d := sub.BFS(u, tau-1).Depth(v); d < 0 {
		return false // edge on no cycle of length ≤ τ: void unconfined
	}
	return cycles.SpannedByShort(sub, tau)
}

// VoidSizes returns the minimum and maximum void (irreducible cycle) sizes
// of a graph — Algorithm 1 applied as a quality-of-coverage probe. A forest
// yields (0, 0).
func VoidSizes(g *graph.Graph) (minSize, maxSize int, err error) {
	return cycles.MinMaxIrreducible(g.TwoCore())
}
