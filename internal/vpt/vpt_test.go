package vpt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dcc/internal/bitvec"
	"dcc/internal/cycles"
	"dcc/internal/graph"
)

func TestRadii(t *testing.T) {
	tests := []struct {
		tau, k, m int
	}{
		{3, 2, 3},
		{4, 2, 3},
		{5, 3, 4},
		{6, 3, 4},
		{7, 4, 5},
		{9, 5, 6},
	}
	for _, tt := range tests {
		if got := NeighborhoodRadius(tt.tau); got != tt.k {
			t.Fatalf("NeighborhoodRadius(%d) = %d, want %d", tt.tau, got, tt.k)
		}
		if got := IndependenceRadius(tt.tau); got != tt.m {
			t.Fatalf("IndependenceRadius(%d) = %d, want %d", tt.tau, got, tt.m)
		}
	}
}

func TestVertexDeletableTriangulatedGrid(t *testing.T) {
	// Deleting an interior vertex of a minimally triangulated grid leaves
	// a hexagonal void (the ring of its six neighbours), so the vertex is
	// NOT 3-deletable — the triangulated grid is already non-redundant for
	// τ=3 — but it IS 6-deletable.
	g := graph.TriangulatedGrid(5, 5)
	center := graph.NodeID(12) // row 2, col 2
	if VertexDeletable(g, center, 3) {
		t.Fatal("interior vertex of minimal triangulation reported 3-deletable")
	}
	if !VertexDeletable(g, center, 6) {
		t.Fatal("interior vertex not 6-deletable despite hexagonal void")
	}
}

func TestVertexDeletableRedundantNode(t *testing.T) {
	// K5 is heavily over-provisioned: any vertex's neighbourhood is K4 —
	// connected and triangle-spanned — so every vertex is 3-deletable.
	g := graph.Complete(5)
	for _, v := range g.Nodes() {
		if !VertexDeletable(g, v, 3) {
			t.Fatalf("K5 vertex %d not 3-deletable", v)
		}
	}
	// An apex stacked over one triangle of a triangulated grid is
	// redundant: its deletion leaves the (still filled) triangle.
	b := graph.NewBuilder()
	tg := graph.TriangulatedGrid(4, 4)
	for _, e := range tg.Edges() {
		b.AddEdge(e.U, e.V)
	}
	apex := graph.NodeID(100)
	b.AddEdge(apex, 0)
	b.AddEdge(apex, 1)
	b.AddEdge(apex, 5) // triangle 0-1-5 is a face of the triangulated grid
	g2 := b.MustBuild()
	if !VertexDeletable(g2, apex, 3) {
		t.Fatal("apex over a filled triangle not 3-deletable")
	}
}

func TestVertexNotDeletableOnPlainGrid(t *testing.T) {
	// A plain grid has 4-cycles only; τ=3 must refuse every deletion
	// whose neighbourhood contains a 4-cycle it cannot partition.
	g := graph.Grid(5, 5)
	center := graph.NodeID(12)
	if VertexDeletable(g, center, 3) {
		t.Fatal("grid interior vertex reported 3-deletable")
	}
	// With τ=4 the 2-hop neighbourhood's cycles are squares → deletable
	// only if the neighbourhood graph stays connected and 4-spanned.
	// The 2-hop neighbourhood of the grid centre (minus the centre) is
	// connected; check the decision agrees with first principles.
	k := NeighborhoodRadius(4)
	nb := g.InducedSubgraph(g.KHopNeighbors(center, k))
	want := nb.IsConnected() && cycles.SpannedByShort(nb, 4)
	if got := VertexDeletable(g, center, 4); got != want {
		t.Fatalf("VertexDeletable(grid,4) = %v, want %v", got, want)
	}
}

func TestVertexDeletableDisconnectedNeighborhood(t *testing.T) {
	// Star: the centre's neighbourhood (leaves) is totally disconnected.
	b := graph.NewBuilder()
	for i := 1; i <= 4; i++ {
		b.AddEdge(0, graph.NodeID(i))
	}
	g := b.MustBuild()
	if VertexDeletable(g, 0, 3) {
		t.Fatal("star centre with disconnected neighbourhood reported deletable")
	}
	// A leaf lies on no cycle at all: its void is unconfined, so it must
	// be kept (the criterion is blind to the area it covers).
	if VertexDeletable(g, 1, 3) {
		t.Fatal("star leaf reported deletable despite unconfined void")
	}
}

func TestUnconfinedVoidsNotDeletable(t *testing.T) {
	// Isolated vertex: nothing confines its void.
	g, err := graph.FromEdges([]graph.Edge{{U: 0, V: 1}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if VertexDeletable(g, 7, 3) {
		t.Fatal("isolated vertex reported deletable")
	}
	// Path interior vertex: connected, acyclic neighbourhood — still not
	// deletable, because no cycle would patch the hole.
	p := graph.Path(7)
	if VertexDeletable(p, 3, 4) {
		t.Fatal("path vertex reported deletable despite unconfined void")
	}
	// The same vertex inside a long cycle IS on a cycle, but only
	// deletable once τ reaches the cycle length... and even then the
	// remaining path must re-close it, which a bare cycle cannot: deleting
	// any C6 vertex leaves a path. τ=6: the void cycle is the C6 itself —
	// neighbours are joined by a 4-hop path (≤ τ−2), the neighbourhood is
	// connected and acyclic (spanned) → deletable.
	c := graph.Cycle(6)
	if VertexDeletable(c, 0, 5) {
		t.Fatal("C6 vertex deletable at τ=5 (cycle longer than τ)")
	}
	if !VertexDeletable(c, 0, 6) {
		t.Fatal("C6 vertex not deletable at τ=6")
	}
}

func TestTauBelowThree(t *testing.T) {
	g := graph.Complete(4)
	if VertexDeletable(g, 0, 2) {
		t.Fatal("τ<3 must never allow deletion")
	}
	if EdgeDeletable(g, 0, 1, 2) {
		t.Fatal("τ<3 must never allow edge deletion")
	}
}

func TestEdgeDeletable(t *testing.T) {
	// K4: deleting one edge leaves cycles of length ≤ 3? K4 minus {0,1}
	// still has triangles 0-2-3 and 1-2-3; the neighbourhood graph is K4
	// minus the edge, connected, and its cycle space is spanned by the two
	// remaining triangles → deletable at τ=3.
	g := graph.Complete(4)
	if !EdgeDeletable(g, 0, 1, 3) {
		t.Fatal("K4 edge not 3-deletable")
	}
	// C4: removing any edge of a bare 4-cycle leaves a path (no cycles),
	// connected → deletable at τ=4.
	c4 := graph.Cycle(4)
	if !EdgeDeletable(c4, 0, 1, 4) {
		t.Fatal("C4 edge not 4-deletable")
	}
	// Missing edge.
	if EdgeDeletable(g, 0, 99, 3) {
		t.Fatal("absent edge reported deletable")
	}
}

func TestVoidSizes(t *testing.T) {
	mn, mx, err := VoidSizes(graph.Grid(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if mn != 4 || mx != 4 {
		t.Fatalf("grid voids = (%d,%d), want (4,4)", mn, mx)
	}
	mn, mx, err = VoidSizes(graph.Path(5))
	if err != nil {
		t.Fatal(err)
	}
	if mn != 0 || mx != 0 {
		t.Fatalf("tree voids = (%d,%d), want (0,0)", mn, mx)
	}
}

// TestDeletionPreservesPartitionability is the property at the heart of
// Theorem 5, checked empirically on random triangulated-grid-like graphs:
// if the outer boundary is τ-partitionable and an internal vertex passes
// the VPT test, the boundary remains τ-partitionable after deletion.
func TestDeletionPreservesPartitionability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 4+rng.Intn(3), 4+rng.Intn(3)
		g := graph.TriangulatedGrid(rows, cols)
		tau := 3 + rng.Intn(3)

		boundarySet, target := gridBoundary(g, rows, cols)
		if !cycles.Partitionable(g, target, tau) {
			return true // precondition not met; skip
		}
		// Try a few random internal vertices.
		internals := internalNodes(g, boundarySet)
		if len(internals) == 0 {
			return true
		}
		for trial := 0; trial < 3; trial++ {
			v := internals[rng.Intn(len(internals))]
			if !VertexDeletable(g, v, tau) {
				continue
			}
			g2 := g.DeleteVertices([]graph.NodeID{v})
			target2 := remapTarget(g, g2, target)
			if !cycles.Partitionable(g2, target2, tau) {
				return false
			}
			g = g2
			target = target2
			internals = internalNodes(g, boundarySet)
			if len(internals) == 0 {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// gridBoundary returns the boundary node set and the perimeter incidence
// vector of a rows×cols (triangulated) grid.
func gridBoundary(g *graph.Graph, rows, cols int) (map[graph.NodeID]bool, bitvec.Vector) {
	set := make(map[graph.NodeID]bool)
	var order []graph.NodeID
	for c := 0; c < cols; c++ {
		order = append(order, graph.NodeID(c))
	}
	for r := 1; r < rows; r++ {
		order = append(order, graph.NodeID(r*cols+cols-1))
	}
	for c := cols - 2; c >= 0; c-- {
		order = append(order, graph.NodeID((rows-1)*cols+c))
	}
	for r := rows - 2; r >= 1; r-- {
		order = append(order, graph.NodeID(r*cols))
	}
	for _, v := range order {
		set[v] = true
	}
	cyc, err := cycles.FromVertices(g, order)
	if err != nil {
		panic(err)
	}
	return set, cyc.Vector(g.NumEdges())
}

func internalNodes(g *graph.Graph, boundary map[graph.NodeID]bool) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range g.Nodes() {
		if !boundary[v] {
			out = append(out, v)
		}
	}
	return out
}

// remapTarget re-expresses an edge-incidence vector of g over g2's edge
// indexing (all referenced edges must survive in g2).
func remapTarget(g, g2 *graph.Graph, target bitvec.Vector) bitvec.Vector {
	out := bitvec.New(g2.NumEdges())
	for _, ei := range target.Indices() {
		e := g.EdgeAt(ei)
		j, ok := g2.EdgeIndex(e.U, e.V)
		if !ok {
			panic("remapTarget: target edge missing from reduced graph")
		}
		out.Set(j, true)
	}
	return out
}

func BenchmarkVertexDeletableTau3(b *testing.B) {
	g := graph.TriangulatedGrid(12, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VertexDeletable(g, 78, 3)
	}
}

func BenchmarkVertexDeletableTau6(b *testing.B) {
	g := graph.TriangulatedGrid(12, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VertexDeletable(g, 78, 6)
	}
}
