package vpt

import (
	"math/rand"
	"reflect"
	"testing"

	"dcc/internal/graph"
)

// randomConnected returns a random connected graph: a random spanning path
// plus extra edges with probability p.
func randomConnected(r *rand.Rand, n int, p float64) *graph.Graph {
	perm := r.Perm(n)
	b := graph.NewBuilder()
	for i := 1; i < n; i++ {
		b.AddEdge(graph.NodeID(perm[i-1]), graph.NodeID(perm[i]))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				b.AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	return b.MustBuild()
}

// checkAgainstFresh asserts that every live verdict of the cache equals a
// from-scratch VertexDeletable on the materialized live graph.
func checkAgainstFresh(t *testing.T, c *Cache, label string) {
	t.Helper()
	fresh := c.LiveGraph()
	for _, v := range c.LiveNodes() {
		got := c.Deletable(v)
		want := VertexDeletable(fresh, v, c.Tau())
		if got != want {
			t.Fatalf("%s: cache.Deletable(%d) = %v, fresh VertexDeletable = %v (tau=%d)",
				label, v, got, want, c.Tau())
		}
	}
}

func TestCacheMatchesFreshOnGrid(t *testing.T) {
	for _, tau := range []int{3, 4, 5, 6} {
		g := graph.TriangulatedGrid(5, 5)
		c := NewCache(g, tau)
		if c.Radius() != NeighborhoodRadius(tau) {
			t.Fatalf("Radius() = %d, want %d", c.Radius(), NeighborhoodRadius(tau))
		}
		checkAgainstFresh(t, c, "initial")
		// Delete a few deletable interior vertices one at a time, checking
		// the whole verdict surface after each commit.
		for round := 0; round < 3; round++ {
			var pick graph.NodeID = ^graph.NodeID(0)
			for _, v := range c.LiveNodes() {
				if c.Deletable(v) {
					pick = v
					break
				}
			}
			if pick == ^graph.NodeID(0) {
				break
			}
			dirty := c.Commit([]graph.NodeID{pick})
			for _, w := range dirty {
				if !c.Alive(w) {
					t.Fatalf("tau %d: Commit returned dead vertex %d as dirty", tau, w)
				}
			}
			if c.Alive(pick) {
				t.Fatalf("tau %d: committed vertex %d still alive", tau, pick)
			}
			checkAgainstFresh(t, c, "after commit")
		}
	}
}

// TestCacheDirtySetIsExactBall pins the invalidation region: Commit must
// return exactly the live k-hop ball of the deleted vertex measured on the
// pre-removal view.
func TestCacheDirtySetIsExactBall(t *testing.T) {
	g := graph.TriangulatedGrid(6, 6)
	for _, tau := range []int{3, 5, 7} {
		c := NewCache(g, tau)
		before := c.LiveGraph()
		v := graph.NodeID(14) // interior
		want := before.KHopNeighbors(v, c.Radius())
		got := c.Commit([]graph.NodeID{v})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("tau %d: dirty set = %v, want pre-removal %d-hop ball %v", tau, got, c.Radius(), want)
		}
	}
}

// TestCacheBoundaryRingDeletion exercises a deletion whose dirty ball is
// clipped by the graph boundary: removing a ring vertex of a cycle-with-
// chords graph must invalidate only its surviving ball and keep the
// remaining verdicts fresh.
func TestCacheBoundaryRingDeletion(t *testing.T) {
	// A ring 0..11 with spokes to a hub 100: ring vertices sit on the
	// "boundary" of the ball structure (their balls are arcs, not disks).
	b := graph.NewBuilder()
	for i := 0; i < 12; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%12))
		b.AddEdge(graph.NodeID(i), 100)
	}
	g := b.MustBuild()
	for _, tau := range []int{3, 4} {
		c := NewCache(g, tau)
		checkAgainstFresh(t, c, "ring initial")
		dirty := c.Commit([]graph.NodeID{0})
		want := g.KHopNeighbors(0, c.Radius())
		if !reflect.DeepEqual(dirty, want) {
			t.Fatalf("tau %d: ring dirty set = %v, want %v", tau, dirty, want)
		}
		checkAgainstFresh(t, c, "ring after commit")
	}
}

// TestCacheTauThreeMinimumRadius: at the minimum confine size τ=3 the
// radius is k=2; deleting a vertex must not leave stale verdicts exactly at
// the ball edge.
func TestCacheTauThreeMinimumRadius(t *testing.T) {
	g := graph.TriangulatedGrid(7, 7)
	c := NewCache(g, 3)
	if c.Radius() != 2 {
		t.Fatalf("tau=3 radius = %d, want 2", c.Radius())
	}
	// Warm every verdict, then delete the center and re-check everything —
	// vertices ≤2 hops away must be recomputed, those beyond must still be
	// correct without recomputation.
	for _, v := range c.LiveNodes() {
		c.Deletable(v)
	}
	warm := c.Stats().Computes
	center := graph.NodeID(3*7 + 3)
	dirty := c.Commit([]graph.NodeID{center})
	checkAgainstFresh(t, c, "tau3 after center deletion")
	recomputed := c.Stats().Computes - warm
	if recomputed > len(dirty) {
		t.Fatalf("recomputed %d verdicts, but only %d were dirtied", recomputed, len(dirty))
	}
	if inv := c.Stats().Invalidated; inv != len(dirty) {
		t.Fatalf("Invalidated = %d, want %d (all warm)", inv, len(dirty))
	}
}

// TestCacheRemoveInvalidatesLikeCommit: crash-removals (Remove) must dirty
// the same region as scheduled deletions (Commit) — the distributed runtime
// relies on this under Config.Faults.
func TestCacheRemoveInvalidatesLikeCommit(t *testing.T) {
	g := graph.TriangulatedGrid(6, 6)
	v := graph.NodeID(2*6 + 3)
	a, b := NewCache(g, 5), NewCache(g, 5)
	da := a.Commit([]graph.NodeID{v})
	db := b.Remove([]graph.NodeID{v})
	if !reflect.DeepEqual(da, db) {
		t.Fatalf("Commit dirty %v != Remove dirty %v", da, db)
	}
	checkAgainstFresh(t, b, "after crash removal")
}

// TestCacheBatchCommit: removing an independent set at once (the parallel
// scheduler's round commit) must dirty the union of balls and never return
// a vertex of the batch itself.
func TestCacheBatchCommit(t *testing.T) {
	g := graph.TriangulatedGrid(6, 6)
	c := NewCache(g, 4)
	batch := []graph.NodeID{8, 27} // far apart
	dirty := c.Commit(batch)
	for _, v := range batch {
		if c.Alive(v) {
			t.Fatalf("batch vertex %d still alive", v)
		}
		for _, w := range dirty {
			if w == v {
				t.Fatalf("dirty set contains deleted vertex %d", v)
			}
		}
	}
	checkAgainstFresh(t, c, "after batch commit")
}

// TestCacheDeadAndAbsent: dead and absent vertices are never deletable and
// never dirty anything.
func TestCacheDeadAndAbsent(t *testing.T) {
	g := graph.TriangulatedGrid(4, 4)
	c := NewCache(g, 3)
	if c.Deletable(999) {
		t.Fatal("absent vertex reported deletable")
	}
	if got := c.Commit([]graph.NodeID{999}); len(got) != 0 {
		t.Fatalf("Commit(absent) dirtied %v", got)
	}
	c.Commit([]graph.NodeID{5})
	if c.Deletable(5) {
		t.Fatal("dead vertex reported deletable")
	}
	if got := c.Commit([]graph.NodeID{5}); len(got) != 0 {
		t.Fatalf("Commit(dead) dirtied %v", got)
	}
}

// TestCacheComputeFreshAndStore models the parallel scheduler's protocol:
// workers compute verdicts with caller-owned scratch, the main goroutine
// publishes them with Store, and subsequent Deletable calls hit the memo.
func TestCacheComputeFreshAndStore(t *testing.T) {
	g := graph.TriangulatedGrid(5, 5)
	c := NewCache(g, 4)
	s, tester := graph.NewScratch(g), NewTester()
	fresh := c.LiveGraph()
	for _, v := range c.LiveNodes() {
		got := c.ComputeFresh(v, s, tester)
		if want := VertexDeletable(fresh, v, 4); got != want {
			t.Fatalf("ComputeFresh(%d) = %v, want %v", v, got, want)
		}
		c.Store(v, got)
	}
	before := c.Stats().Computes
	for _, v := range c.LiveNodes() {
		c.Deletable(v)
	}
	if c.Stats().Computes != before {
		t.Fatalf("Deletable recomputed %d verdicts after Store warmed them", c.Stats().Computes-before)
	}
}

// TestCacheRestore pins the node-rejoin path of the streaming engine:
// Restore revives a removed vertex, dirties exactly the post-restore
// k-hop ball plus the vertex itself, and leaves every live verdict equal
// to fresh recomputation.
func TestCacheRestore(t *testing.T) {
	g := graph.TriangulatedGrid(6, 6)
	for _, tau := range []int{3, 4, 5} {
		c := NewCache(g, tau)
		// Warm everything so invalidation is observable.
		for _, v := range c.LiveNodes() {
			c.Deletable(v)
		}
		v := graph.NodeID(2*6 + 3)
		c.Commit([]graph.NodeID{v})
		checkAgainstFresh(t, c, "after commit")

		dirty := c.Restore(v)
		if !c.Alive(v) {
			t.Fatalf("tau %d: restored vertex %d not alive", tau, v)
		}
		// Expected dirty set: post-restore ball of v, plus v, sorted.
		after := c.LiveGraph()
		want := after.KHopNeighbors(v, c.Radius())
		want = append(want, v)
		sortNodeIDs(want)
		if !reflect.DeepEqual(dirty, want) {
			t.Fatalf("tau %d: Restore dirty = %v, want post-restore ball %v", tau, dirty, want)
		}
		checkAgainstFresh(t, c, "after restore")
	}
}

// TestCacheRestoreNoop: Restore of live or absent vertices changes nothing.
func TestCacheRestoreNoop(t *testing.T) {
	g := graph.TriangulatedGrid(4, 4)
	c := NewCache(g, 3)
	if got := c.Restore(5); got != nil {
		t.Fatalf("Restore(live) dirtied %v", got)
	}
	if got := c.Restore(999); got != nil {
		t.Fatalf("Restore(absent) dirtied %v", got)
	}
}

// TestCacheDeleteRestoreRoundTrip: a full delete+restore cycle must return
// the cache to a state verdict-equivalent to never having deleted at all.
func TestCacheDeleteRestoreRoundTrip(t *testing.T) {
	g := graph.TriangulatedGrid(5, 5)
	c := NewCache(g, 4)
	ref := NewCache(g, 4)
	vs := []graph.NodeID{7, 12, 18}
	c.Commit(vs)
	for _, v := range vs {
		c.Restore(v)
	}
	if c.View().NumLive() != ref.View().NumLive() {
		t.Fatalf("NumLive %d after round trip, want %d", c.View().NumLive(), ref.View().NumLive())
	}
	for _, v := range c.LiveNodes() {
		if got, want := c.Deletable(v), ref.Deletable(v); got != want {
			t.Fatalf("verdict(%d) = %v after delete+restore round trip, fresh cache says %v", v, got, want)
		}
	}
}

func sortNodeIDs(vs []graph.NodeID) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// FuzzCacheConsistency drives a cache through random interleaved
// Commit/Remove/Restore sequences on random connected graphs and asserts
// every live verdict always equals fresh recomputation — the end-to-end
// statement of the dirty-radius soundness argument, in both directions
// (deletions shrink the live graph, restores grow it back).
func FuzzCacheConsistency(f *testing.F) {
	f.Add(int64(1), 12, 3)
	f.Add(int64(2), 20, 4)
	f.Add(int64(3), 16, 5)
	f.Add(int64(4), 24, 6)
	f.Fuzz(func(t *testing.T, seed int64, n, tau int) {
		if n < 4 || n > 40 || tau < 3 || tau > 8 {
			t.Skip()
		}
		r := rand.New(rand.NewSource(seed))
		g := randomConnected(r, n, 0.15)
		c := NewCache(g, tau)
		var dead []graph.NodeID
		for step := 0; step < 8; step++ {
			live := c.LiveNodes()
			if len(live) == 0 {
				break
			}
			// Warm a random subset so invalidation has verdicts to stale.
			for _, v := range live {
				if r.Float64() < 0.5 {
					c.Deletable(v)
				}
			}
			var acted graph.NodeID
			if len(dead) > 0 && r.Float64() < 0.4 {
				// Re-insert a random dead vertex (node-join path).
				i := r.Intn(len(dead))
				acted = dead[i]
				dead = append(dead[:i], dead[i+1:]...)
				if got := c.Restore(acted); got == nil {
					t.Fatalf("step %d: Restore(%d) of dead vertex returned nil", step, acted)
				}
			} else {
				acted = live[r.Intn(len(live))]
				if r.Float64() < 0.5 {
					c.Commit([]graph.NodeID{acted})
				} else {
					c.Remove([]graph.NodeID{acted})
				}
				dead = append(dead, acted)
			}
			fresh := c.LiveGraph()
			for _, w := range c.LiveNodes() {
				if got, want := c.Deletable(w), VertexDeletable(fresh, w, tau); got != want {
					t.Fatalf("step %d: node %d cache=%v fresh=%v (seed=%d n=%d tau=%d, acted on %d)",
						step, w, got, want, seed, n, tau, acted)
				}
			}
		}
	})
}
