//go:build !dccdebug

package vpt

import "dcc/internal/graph"

// Release builds compile the deep cache-consistency assertions away; build
// with -tags dccdebug to arm them.

func debugCheckCacheVerdict(*Cache, graph.NodeID, bool) {}

func debugAuditClean(*Cache) {}
