package vpt

import (
	"sort"

	"dcc/internal/cycles"
	"dcc/internal/graph"
	"dcc/internal/telemetry"
)

// Tester bundles the reusable scratch state of a deletability-testing
// worker: graph extraction buffers (BFS queues, visit stamps, index maps)
// and the GF(2) elimination workspace. One Tester amortizes the per-call
// allocations of the hot loop across the thousands of evaluations a
// scheduling run performs. Not safe for concurrent use — give each worker
// its own.
type Tester struct {
	ws *cycles.Workspace
	// direct is the reusable filtered direct-neighbour buffer of the
	// void-confinement check.
	direct []graph.NodeID
}

// NewTester returns an empty Tester.
func NewTester() *Tester { return &Tester{ws: cycles.NewWorkspace()} }

// NeighborhoodDeletable is the package-level NeighborhoodDeletable
// evaluated with the Tester's reusable buffers — identical verdict,
// amortized allocations.
func (t *Tester) NeighborhoodDeletable(neighborhood *graph.Graph, directNeighbors []graph.NodeID, tau int) bool {
	if neighborhood.NumNodes() == 0 {
		return false
	}
	if !neighborhood.IsConnected() {
		return false
	}
	ok, buf := voidConfinedBuf(neighborhood, directNeighbors, tau, t.direct)
	t.direct = buf
	if !ok {
		return false
	}
	return cycles.SpannedByShortWS(neighborhood, tau, t.ws)
}

// Verdict cache values.
const (
	verdictUnknown int8 = -1
	verdictNo      int8 = 0
	verdictYes     int8 = 1
)

// Cache is the incremental deletability engine: it memoizes the
// VertexDeletable verdict per node over a deletion overlay of the base
// graph, and invalidates exactly the ≤ k-hop ball (k = ⌈τ/2⌉) around each
// vertex removed by a committed round.
//
// Soundness of the dirty radius (see DESIGN.md §11 for the proof sketch):
// the verdict of v depends only on Γ^k(v), the subgraph induced by the
// live vertices within k hops of v. Removing a vertex u with live-path
// distance d(u,v) > k cannot change Γ^k(v): deletions never shorten
// distances, every vertex of Γ^k(v) reaches v by a ≤ k-hop live path
// avoiding u (all its vertices are within k hops of v, and u is not), and
// the edges among ball vertices are untouched. Hence a cached verdict
// outside the k-hop balls of the removed vertices — computed on the
// pre-removal view or later — is still the fresh verdict.
//
// A Cache is not safe for concurrent mutation. Concurrent workers may call
// ComputeFresh (read-only, caller-owned scratch) between mutations and
// publish results through Store afterwards.
type Cache struct {
	g       *graph.Graph
	tau, k  int
	view    *graph.DeleteView
	verdict []int8 // by base dense index
	scratch *graph.Scratch
	tester  *Tester
	stats   CacheStats

	// Telemetry handles, nil (no-op) unless Instrument was called. All
	// three counters and the dirty-ball histogram are deterministic-class:
	// CacheStats is worker-count-invariant by the fixed-chunk decomposition
	// of core's parallel engine, and the Commit/Restore dirty sets are a
	// pure function of the deletion history.
	telLookups, telComputes, telInvalidated *telemetry.Counter
	telDirty                                *telemetry.Hist
}

// dirtyBallBounds buckets Commit/Restore dirty-set sizes: the k-hop ball
// population is the quantity the incremental engine's cost model stands
// on, so power-of-two resolution up to 1024 is plenty.
var dirtyBallBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Instrument attaches the cache to reg: vpt.lookups, vpt.computes and
// vpt.invalidated counters plus the vpt.dirty_ball histogram of
// Commit/Restore dirty-set sizes. A nil reg leaves the cache
// uninstrumented (all handles stay nil-safe no-ops).
func (c *Cache) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.telLookups = reg.Counter("vpt.lookups")
	c.telComputes = reg.Counter("vpt.computes")
	c.telInvalidated = reg.Counter("vpt.invalidated")
	c.telDirty = reg.Histogram("vpt.dirty_ball", dirtyBallBounds)
}

// CacheStats counts the work a Cache performed.
type CacheStats struct {
	// Lookups counts Deletable calls on live nodes.
	Lookups int
	// Computes counts actual verdict evaluations (cache misses plus
	// ComputeFresh calls published via Store are not included).
	Computes int
	// Invalidated counts verdict entries reset by Commit/Remove.
	Invalidated int
}

// NewCache returns a cache over g for confine size tau (≥ 3; smaller
// values yield a cache whose every verdict is false, mirroring
// VertexDeletable).
func NewCache(g *graph.Graph, tau int) *Cache {
	c := &Cache{
		g:       g,
		tau:     tau,
		k:       NeighborhoodRadius(tau),
		view:    graph.NewDeleteView(g),
		verdict: make([]int8, g.NumNodes()),
		scratch: graph.NewScratch(g),
		tester:  NewTester(),
	}
	for i := range c.verdict {
		c.verdict[i] = verdictUnknown
	}
	return c
}

// Tau returns the confine size the cache tests against.
func (c *Cache) Tau() int { return c.tau }

// Radius returns the invalidation radius k = ⌈τ/2⌉.
func (c *Cache) Radius() int { return c.k }

// View returns the live-vertex overlay. Callers must not mutate it
// directly — all deletions go through Commit/Remove so invalidation stays
// coupled to removal.
func (c *Cache) View() *graph.DeleteView { return c.view }

// Alive reports whether v is still a live vertex.
func (c *Cache) Alive(v graph.NodeID) bool { return c.view.Alive(v) }

// LiveNodes returns the live vertices in increasing ID order.
func (c *Cache) LiveNodes() []graph.NodeID { return c.view.LiveNodes() }

// LiveGraph materializes the live remainder as a real Graph, structurally
// identical to applying DeleteVertices for every removed vertex.
func (c *Cache) LiveGraph() *graph.Graph { return c.view.Materialize() }

// Stats returns the work counters accumulated so far.
func (c *Cache) Stats() CacheStats { return c.stats }

// Deletable returns VertexDeletable(live graph, v, tau), memoized: a clean
// cached verdict is returned as-is (the dirty-radius invariant guarantees
// it equals fresh recomputation), a stale one is recomputed with the
// cache-owned scratch. Dead or absent vertices are never deletable.
//
//lint:hotpath
func (c *Cache) Deletable(v graph.NodeID) bool {
	i, ok := c.g.IndexOf(v)
	if !ok || !c.view.Alive(v) {
		return false
	}
	c.stats.Lookups++
	c.telLookups.Inc()
	if c.verdict[i] == verdictUnknown {
		c.verdict[i] = c.compute(v, c.scratch, c.tester)
		c.stats.Computes++
		c.telComputes.Inc()
	}
	return c.verdict[i] == verdictYes
}

// ComputeFresh evaluates the verdict for v with caller-owned scratch,
// without reading or writing the memo — the form concurrent workers use to
// batch cache-miss work (publish with Store once the batch joins). s and t
// must not be shared between concurrent callers.
//
//lint:hotpath
func (c *Cache) ComputeFresh(v graph.NodeID, s *graph.Scratch, t *Tester) bool {
	if !c.view.Alive(v) {
		return false
	}
	return c.compute(v, s, t) == verdictYes
}

// Store publishes an externally computed verdict (from ComputeFresh) into
// the memo. The caller must ensure no Commit/Remove happened between the
// computation and the store.
func (c *Cache) Store(v graph.NodeID, deletable bool) {
	i, ok := c.g.IndexOf(v)
	if !ok || !c.view.Alive(v) {
		return
	}
	if deletable {
		c.verdict[i] = verdictYes
	} else {
		c.verdict[i] = verdictNo
	}
}

func (c *Cache) compute(v graph.NodeID, s *graph.Scratch, t *Tester) int8 {
	res := false
	if c.tau >= 3 {
		sub, direct := c.view.ExtractNeighborhood(v, c.k, s)
		if sub != nil && sub.NumNodes() > 0 {
			res = t.NeighborhoodDeletable(sub, direct, c.tau)
		}
	}
	debugCheckCacheVerdict(c, v, res)
	if res {
		return verdictYes
	}
	return verdictNo
}

// Commit removes a set of vertices deleted by the scheduler and
// invalidates every cached verdict within k live-path hops of a removed
// vertex (balls measured on the pre-removal view — distances only grow
// under deletion, so this covers every vertex whose Γ^k changed). It
// returns the dirtied live vertices in increasing ID order: exactly the
// nodes whose verdict may have changed and must be retested.
func (c *Cache) Commit(deleted []graph.NodeID) []graph.NodeID {
	return c.remove(deleted)
}

// Remove is Commit for vertices that vanish outside the scheduler's
// control (crash faults in the distributed runtime): a bare removal
// invalidates the same dirty region as a scheduled deletion — the cache
// cannot tell why a vertex disappeared, only that its neighbours' Γ^k
// changed.
func (c *Cache) Remove(removed []graph.NodeID) []graph.NodeID {
	return c.remove(removed)
}

// Restore revives a vertex previously removed through Commit/Remove — the
// node-rejoin path of the streaming engine — and invalidates every cached
// verdict within k live-path hops of v measured on the post-restore view.
// The mirror-image soundness argument of Commit applies: an insertion only
// ever shortens live distances, so any vertex whose Γ^k gained v (or gained
// a path through v) is within k post-restore hops of v, and the
// post-restore ball therefore covers everything whose verdict may have
// changed. It returns the dirtied live vertices (v included) in increasing
// ID order; a nil return means v was not a dead vertex of the base graph
// and nothing changed.
func (c *Cache) Restore(v graph.NodeID) []graph.NodeID {
	if !c.view.Restore(v) {
		return nil
	}
	dirty := c.view.KHopBallIndices(v, c.k, c.scratch)
	vi, _ := c.g.IndexOf(v)
	out := make([]graph.NodeID, 0, len(dirty)+1)
	mark := func(bi int32) {
		if c.verdict[bi] != verdictUnknown {
			c.stats.Invalidated++
			c.telInvalidated.Inc()
		}
		c.verdict[bi] = verdictUnknown
		out = append(out, c.g.NodeAt(int(bi)))
	}
	// dirty is sorted by base index (= increasing ID) and excludes v;
	// splice v in at its place.
	placed := false
	for _, bi := range dirty {
		if !placed && int32(vi) < bi {
			mark(int32(vi))
			placed = true
		}
		mark(bi)
	}
	if !placed {
		mark(int32(vi))
	}
	c.telDirty.Observe(int64(len(out)))
	debugAuditClean(c)
	return out
}

func (c *Cache) remove(del []graph.NodeID) []graph.NodeID {
	// Union of the pre-removal k-hop balls. KHopBallIndices reuses the
	// scratch ball buffer, so copy per vertex.
	var dirty []int32
	for _, v := range del {
		dirty = append(dirty, c.view.KHopBallIndices(v, c.k, c.scratch)...)
	}
	for _, v := range del {
		if c.view.Delete(v) {
			if i, ok := c.g.IndexOf(v); ok {
				c.verdict[i] = verdictNo // dead vertices are never deletable
			}
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	out := make([]graph.NodeID, 0, len(dirty))
	for i, bi := range dirty {
		if i > 0 && dirty[i-1] == bi {
			continue
		}
		id := c.g.NodeAt(int(bi))
		if !c.view.Alive(id) {
			continue // removed alongside v in the same batch
		}
		if c.verdict[bi] != verdictUnknown {
			c.stats.Invalidated++
			c.telInvalidated.Inc()
		}
		c.verdict[bi] = verdictUnknown
		out = append(out, id)
	}
	c.telDirty.Observe(int64(len(out)))
	debugAuditClean(c)
	return out
}
