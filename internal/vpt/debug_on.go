//go:build dccdebug

package vpt

import (
	"fmt"

	"dcc/internal/graph"
)

// Deep assertions for the incremental deletability engine (-tags dccdebug):
// every cached verdict must equal a from-scratch recomputation on a freshly
// materialized graph, and after every Commit/Remove the surviving clean
// verdicts must still be fresh (the dirty-set audit — the k-hop
// invalidation radius really covered everything that changed).
//
// Both checks rebuild the live graph and re-run the full non-incremental
// test, so they are gated to small instances to keep dccdebug test runs
// tractable; unit tests exercise them on purpose-built graphs under the
// limits.
const (
	debugVerdictLimit = 200 // max live nodes for the per-compute cross-check
	debugAuditLimit   = 64  // max live nodes for the post-commit audit
)

// debugCheckCacheVerdict cross-checks an incrementally computed verdict
// against VertexDeletable on the materialized live graph.
func debugCheckCacheVerdict(c *Cache, v graph.NodeID, got bool) {
	if c.view.NumLive() > debugVerdictLimit {
		return
	}
	if fresh := VertexDeletable(c.view.Materialize(), v, c.tau); fresh != got {
		panic(fmt.Sprintf("vpt debug: cache verdict for node %d = %v, fresh recomputation = %v (tau=%d)",
			v, got, fresh, c.tau))
	}
}

// debugAuditClean verifies after an invalidation pass that every verdict
// still cached as clean equals fresh recomputation on the post-removal
// graph — i.e. the dirty region was not under-approximated.
func debugAuditClean(c *Cache) {
	if c.view.NumLive() > debugAuditLimit {
		return
	}
	fresh := c.view.Materialize()
	for _, v := range c.view.LiveNodes() {
		i, ok := c.g.IndexOf(v)
		if !ok || c.verdict[i] == verdictUnknown {
			continue
		}
		want := VertexDeletable(fresh, v, c.tau)
		if got := c.verdict[i] == verdictYes; got != want {
			panic(fmt.Sprintf("vpt debug: dirty-set audit: node %d cached %v but fresh %v after removal (tau=%d)",
				v, got, want, c.tau))
		}
	}
}
