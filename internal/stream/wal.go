package stream

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"dcc/internal/core"
	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/trace"
)

// Durability format. Both files are streams of framed records
// (trace.AppendRecord: uvarint length, crc32c, payload), so torn writes
// and bit rot surface as trace.ErrTruncatedRecord / ErrCorruptRecord at
// the frame layer before any payload is trusted.
//
//	WAL      = header record, then one record per admitted event
//	snapshot = a single record: magic + stateBytes + sha256(stateBytes)
//
// The WAL header pins (tau, seed, radius); the snapshot embeds the full
// state fingerprint, so a decoded snapshot proves its own integrity and
// recovery can refuse artifacts from a different configuration.

var (
	walMagic  = []byte("DCCWAL1\x00")
	snapMagic = []byte("DCCSNAP1")
)

// maxSnapshotLen bounds the snapshot record: 64 MiB holds millions of
// nodes while still refusing a corrupt length field before allocation.
const maxSnapshotLen = 1 << 26

func appendWALHeader(dst []byte, cfg Config) []byte {
	dst = append(dst, walMagic...)
	dst = binary.AppendUvarint(dst, uint64(cfg.Tau))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(cfg.Seed))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(cfg.Radius))
	return dst
}

// decodeWALHeader validates a WAL header payload against the recovering
// configuration.
func decodeWALHeader(p []byte, cfg Config) error {
	if len(p) < len(walMagic) || !bytes.Equal(p[:len(walMagic)], walMagic) {
		return fmt.Errorf("%w: leading record is not a WAL header", ErrCorruptWAL)
	}
	p = p[len(walMagic):]
	tau, n := binary.Uvarint(p)
	if n <= 0 || len(p[n:]) != 16 {
		return fmt.Errorf("%w: damaged WAL header", ErrCorruptWAL)
	}
	seed := int64(binary.LittleEndian.Uint64(p[n:]))
	radius := math.Float64frombits(binary.LittleEndian.Uint64(p[n+8:]))
	if int(tau) != cfg.Tau || seed != cfg.Seed || radius != cfg.Radius {
		return fmt.Errorf("%w: WAL written under tau=%d seed=%d radius=%v, recovering with tau=%d seed=%d radius=%v",
			ErrConfigMismatch, tau, seed, radius, cfg.Tau, cfg.Seed, cfg.Radius)
	}
	return nil
}

// Snapshot flushes pending events and writes the engine's full state as
// one framed record; returns the bytes written. A snapshot plus the WAL
// suffix after its watermark is a complete recovery pair.
func (e *Engine) Snapshot(w io.Writer) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.publish()
	e.flush()
	state := e.stateBytes()
	sum := sha256.Sum256(state)
	payload := make([]byte, 0, len(snapMagic)+len(state)+len(sum))
	payload = append(payload, snapMagic...)
	payload = append(payload, state...)
	payload = append(payload, sum[:]...)
	n, err := trace.WriteRecord(w, payload)
	if err != nil {
		return n, err
	}
	e.stats.Snapshots++
	return n, nil
}

// snapState is a decoded snapshot, pre-installation.
type snapState struct {
	tau       int
	seed      int64
	radius    float64
	watermark uint64
	boundary  []graph.NodeID
	cycles    [][]graph.NodeID
	ids       []graph.NodeID
	dead      []bool
	pos       []geom.Point
	edges     []graph.Edge
}

// snapDecoder is a cursor over the snapshot state bytes with uniform
// bounds checking.
type snapDecoder struct {
	p   []byte
	err error
}

func (d *snapDecoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.p)
	if n <= 0 {
		d.err = fmt.Errorf("%w: damaged %s", ErrCorruptSnapshot, what)
		return 0
	}
	d.p = d.p[n:]
	return v
}

// count reads a length field and refuses one that could not possibly fit
// in the remaining bytes (each counted element costs ≥ minBytes), so a
// damaged count cannot drive a huge allocation.
func (d *snapDecoder) count(what string, minBytes int) int {
	v := d.uvarint(what)
	if d.err == nil && v > uint64(len(d.p)/minBytes) {
		d.err = fmt.Errorf("%w: %s count %d exceeds remaining payload", ErrCorruptSnapshot, what, v)
	}
	return int(v)
}

func (d *snapDecoder) u64(what string) uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.p) < 8 {
		d.err = fmt.Errorf("%w: truncated %s", ErrCorruptSnapshot, what)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.p)
	d.p = d.p[8:]
	return v
}

func (d *snapDecoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.p) == 0 {
		d.err = fmt.Errorf("%w: truncated %s", ErrCorruptSnapshot, what)
		return 0
	}
	b := d.p[0]
	d.p = d.p[1:]
	return b
}

func (d *snapDecoder) nodeID(what string) graph.NodeID {
	v := d.uvarint(what)
	if d.err == nil && v > maxStreamNodeID {
		d.err = fmt.Errorf("%w: %s %d out of range", ErrCorruptSnapshot, what, v)
	}
	return graph.NodeID(v)
}

// decodeSnapshot parses and integrity-checks one snapshot payload.
func decodeSnapshot(payload []byte) (snapState, error) {
	var s snapState
	if len(payload) < len(snapMagic)+sha256.Size ||
		!bytes.Equal(payload[:len(snapMagic)], snapMagic) {
		return s, fmt.Errorf("%w: missing snapshot magic", ErrCorruptSnapshot)
	}
	state := payload[len(snapMagic) : len(payload)-sha256.Size]
	var stored [sha256.Size]byte
	copy(stored[:], payload[len(payload)-sha256.Size:])
	if sha256.Sum256(state) != stored {
		return s, fmt.Errorf("%w: state fingerprint mismatch", ErrCorruptSnapshot)
	}
	tag := []byte("dcc-state-v1")
	if len(state) < len(tag) || !bytes.Equal(state[:len(tag)], tag) {
		return s, fmt.Errorf("%w: unknown state version", ErrCorruptSnapshot)
	}
	d := &snapDecoder{p: state[len(tag):]}

	s.tau = int(d.uvarint("tau"))
	s.seed = int64(d.u64("seed"))
	s.radius = math.Float64frombits(d.u64("radius"))
	s.watermark = d.uvarint("watermark")
	nb := d.count("boundary", 1)
	for i := 0; i < nb && d.err == nil; i++ {
		s.boundary = append(s.boundary, d.nodeID("boundary node"))
	}
	nc := d.count("cycle", 1)
	for i := 0; i < nc && d.err == nil; i++ {
		cl := d.count("cycle length", 1)
		var cyc []graph.NodeID
		for j := 0; j < cl && d.err == nil; j++ {
			cyc = append(cyc, d.nodeID("cycle node"))
		}
		s.cycles = append(s.cycles, cyc)
	}
	nn := d.count("node", 18)
	for i := 0; i < nn && d.err == nil; i++ {
		s.ids = append(s.ids, d.nodeID("node id"))
		s.dead = append(s.dead, d.byte("liveness flag") != 0)
		x := math.Float64frombits(d.u64("x"))
		y := math.Float64frombits(d.u64("y"))
		s.pos = append(s.pos, geom.Point{X: x, Y: y})
	}
	ne := d.count("edge", 2)
	for i := 0; i < ne && d.err == nil; i++ {
		u := d.nodeID("edge endpoint")
		v := d.nodeID("edge endpoint")
		s.edges = append(s.edges, graph.Edge{U: u, V: v})
	}
	if d.err != nil {
		return s, d.err
	}
	if len(d.p) != 0 {
		return s, fmt.Errorf("%w: %d trailing state bytes", ErrCorruptSnapshot, len(d.p))
	}
	for i := 1; i < len(s.ids); i++ {
		if s.ids[i] <= s.ids[i-1] {
			return s, fmt.Errorf("%w: universe ids not strictly increasing", ErrCorruptSnapshot)
		}
	}
	return s, nil
}

// RecoveryInfo reports what Recover found and did.
type RecoveryInfo struct {
	// FromSnapshot is true when a snapshot was decoded and installed.
	FromSnapshot bool
	// SnapshotSeq is the snapshot's admission watermark.
	SnapshotSeq uint64
	// Replayed counts WAL events applied on top of the snapshot state.
	Replayed int
	// SkippedOld counts WAL events at or below the snapshot watermark.
	SkippedOld int
	// Duplicates counts WAL events at or below the replay watermark.
	Duplicates int
	// Rejected counts WAL events refused by validation or application —
	// exactly the events the live engine quarantined on first sight.
	Rejected int
	// TornTail is true when the WAL ends mid-record (a torn write); the
	// surviving prefix was replayed.
	TornTail bool
	// CorruptTail is true when replay stopped at a damaged record
	// (checksum or payload) rather than clean EOF.
	CorruptTail bool
	// ValidWALBytes is the byte length of the valid WAL prefix — the
	// offset to truncate the log to before appending new records.
	ValidWALBytes int64
}

// Recover rebuilds an engine from its durability artifacts: the genesis
// network plus configuration (which must match the original), an optional
// snapshot, and an optional WAL. Replay skips events the snapshot already
// contains, applies the rest through the same admission semantics as live
// ingestion, and stops at the first damaged record, reporting the valid
// prefix length so the caller can truncate before reusing the log.
//
// cfg.WAL, when set, is attached for subsequent appends but receives no
// new header — the caller hands over the (truncated) log the engine is
// recovering from, or an empty writer for a fresh epoch after the next
// snapshot.
func Recover(net core.Network, cfg Config, snapshot, wal io.Reader) (*Engine, RecoveryInfo, error) {
	var info RecoveryInfo
	liveWAL := cfg.WAL
	cfg.WAL = nil
	e, err := New(net, cfg)
	if err != nil {
		return nil, info, err
	}
	cfg.WAL = liveWAL

	if snapshot != nil {
		rr := trace.NewRecordReader(snapshot, maxSnapshotLen)
		payload, err := rr.Next()
		if err != nil {
			return nil, info, fmt.Errorf("%w: reading snapshot record: %v", ErrCorruptSnapshot, err)
		}
		s, err := decodeSnapshot(payload)
		if err != nil {
			return nil, info, err
		}
		if s.tau != cfg.Tau || s.seed != cfg.Seed || s.radius != cfg.Radius {
			return nil, info, fmt.Errorf("%w: snapshot taken under tau=%d seed=%d radius=%v",
				ErrConfigMismatch, s.tau, s.seed, s.radius)
		}
		if !sameNodeList(s.boundary, e.boundarySorted) || !sameCycles(s.cycles, e.cycles) {
			return nil, info, fmt.Errorf("%w: snapshot boundary structure differs from the genesis network",
				ErrConfigMismatch)
		}
		t := e.topo
		t.ids, t.pos, t.dead, t.edges = s.ids, s.pos, s.dead, s.edges
		t.rebuild()
		e.stats.Rebuilds-- // installation is not topology churn
		e.watermark = s.watermark
		e.coverStale = true
		info.FromSnapshot = true
		info.SnapshotSeq = s.watermark
	}

	if wal != nil {
		rr := trace.NewRecordReader(wal, maxEventRecordLen+len(walMagic))
		header, err := rr.Next()
		switch {
		case err == io.EOF:
			// Empty log: killed before the header write completed its
			// first byte, or a fresh file. Nothing to replay.
		case errors.Is(err, trace.ErrTruncatedRecord):
			info.TornTail = true
		case errors.Is(err, trace.ErrCorruptRecord):
			info.CorruptTail = true
		case err != nil:
			return nil, info, err
		default:
			if err := decodeWALHeader(header, cfg); err != nil {
				return nil, info, err
			}
			info.ValidWALBytes = rr.Offset()
			if err := e.replayWAL(rr, &info); err != nil {
				return nil, info, err
			}
		}
	}

	e.cfg.WAL = liveWAL
	if s, ok := liveWAL.(walSyncer); ok && cfg.SyncWAL {
		e.walSync = s
	}
	e.publish()
	return e, info, nil
}

// replayWAL applies the event records after the header, stopping at clean
// EOF or the first damaged record.
func (e *Engine) replayWAL(rr *trace.RecordReader, info *RecoveryInfo) error {
	for {
		prevOff := rr.Offset()
		payload, err := rr.Next()
		switch {
		case err == io.EOF:
			return nil
		case errors.Is(err, trace.ErrTruncatedRecord):
			info.TornTail = true
			return nil
		case errors.Is(err, trace.ErrCorruptRecord):
			info.CorruptTail = true
			return nil
		case err != nil:
			return err
		}
		ev, err := decodeEvent(payload)
		if err != nil {
			// A checksummed frame around an undecodable event is not a
			// torn write — the log was edited. Stop at the last good
			// prefix; the damaged record and everything after it are not
			// trusted.
			info.CorruptTail = true
			info.ValidWALBytes = prevOff
			return nil
		}
		info.ValidWALBytes = rr.Offset()
		if err := e.checkImmutable(ev); err != nil {
			// Live admission never logs these; their presence means the
			// producer and log disagree on genesis config. Skipping them
			// deterministically keeps replay total.
			e.reject(ev, err)
			info.Rejected++
			continue
		}
		if ev.Seq <= e.watermark {
			if info.FromSnapshot && ev.Seq <= info.SnapshotSeq {
				info.SkippedOld++
			} else {
				info.Duplicates++
			}
			continue
		}
		e.watermark = ev.Seq
		e.stats.Admitted++
		if err := e.applyOne(ev); err != nil {
			info.Rejected++
			continue
		}
		info.Replayed++
	}
}

func sameCycles(a, b [][]graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameNodeList(a[i], b[i]) {
			return false
		}
	}
	return true
}
