//go:build !dccdebug

package stream

import (
	"dcc/internal/graph"
	"dcc/internal/vpt"
)

// debugCheckMemoVerdict is a no-op in release builds; the dccdebug build
// re-derives every memoized verdict from scratch (debug_on.go).
func debugCheckMemoVerdict(*vpt.Cache, graph.NodeID, bool, *graph.Scratch, *vpt.Tester) {}

// debugCheckTelemetryMirror is a no-op in release builds; the dccdebug
// build asserts published telemetry mirrors Stats (debug_on.go).
func debugCheckTelemetryMirror(*Engine) {}
