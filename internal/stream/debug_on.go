//go:build dccdebug

package stream

import (
	"fmt"

	"dcc/internal/graph"
	"dcc/internal/vpt"
)

// debugMemoCheckLimit caps the number of memo hits cross-checked per
// process: enough to catch a fingerprint-collision or staleness bug in any
// test, cheap enough to leave on for the whole dccdebug suite.
const debugMemoCheckLimit = 4096

var debugMemoChecks int

// debugCheckMemoVerdict re-derives a memoized deletability verdict from
// the residual neighborhood and panics on disagreement — the soundness
// check behind the memo: fingerprint equality must imply verdict equality.
func debugCheckMemoVerdict(cache *vpt.Cache, v graph.NodeID, memoized bool, s *graph.Scratch, t *vpt.Tester) {
	if debugMemoChecks >= debugMemoCheckLimit {
		return
	}
	debugMemoChecks++
	if fresh := cache.ComputeFresh(v, s, t); fresh != memoized {
		panic(fmt.Sprintf("stream: memoized verdict for node %d is %v, fresh computation says %v (fingerprint collision or stale memo)",
			v, memoized, fresh))
	}
}

// debugCheckTelemetryMirror asserts that the amounts published into the
// telemetry registry equal the engine's Stats, field for field — the
// cross-check that no Stats field is missing from publish and no delta
// was dropped. Runs after every publish, under e.mu.
func debugCheckTelemetryMirror(e *Engine) {
	if e.tel == nil {
		return
	}
	if e.telPub != e.stats {
		panic(fmt.Sprintf("stream: telemetry mirror diverged from Stats: published %+v, stats %+v",
			e.telPub, e.stats))
	}
}
