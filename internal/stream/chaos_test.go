package stream

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"dcc/internal/core"
	"dcc/internal/trace"
)

// TestStreamChaosMatrix is the event-stream chaos harness: for each seeded
// stream it runs an uninterrupted reference, then attacks the durability
// artifacts — kills at seeded byte offsets with producer redelivery,
// torn snapshots, and a matrix of WAL mutations (truncation, bit flips,
// duplicated / reordered / excised / garbage records) — asserting that
// every recovery either converges (cover equals the batch canonical
// schedule of its topology; for pure truncations, state equals an exact
// event prefix) or fails with a typed corruption error. Never a panic,
// never silent divergence.
func TestStreamChaosMatrix(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			chaosStream(t, seed)
		})
	}
}

func chaosStream(t *testing.T, seed int64) {
	radius := 0.0
	if seed%2 == 0 {
		radius = 1.6 // alternate topology modes across the matrix
	}
	net, pos := testDeploy(t, 200+seed, 6, 6, 1.6)
	cfg := Config{Tau: 3 + int(seed%3), Seed: seed, Radius: radius, Positions: pos}
	n := 70
	if testing.Short() {
		n = 35
	}
	orig, image, events, fps := walRun(t, net, cfg, 300+seed, n)
	refState := orig.StateFingerprint()
	refCover := orig.CoverFingerprint()
	rng := rand.New(rand.NewSource(400 + seed))

	// A mid-stream snapshot for the snapshot-based scenarios.
	snapAt := n / 2
	snapImage := snapshotAfter(t, net, cfg, events[:snapAt])

	t.Run("crash-restart", func(t *testing.T) {
		// At least 3 seeded kill points per stream, spread across the log.
		cuts := []int{len(image) / 5, len(image) / 2, len(image) * 9 / 10}
		for i := 0; i < 2; i++ {
			cuts = append(cuts, 1+rng.Intn(len(image)-1))
		}
		for _, cut := range cuts {
			rec, info, err := Recover(net, cfg, nil, bytes.NewReader(image[:cut]))
			if err != nil {
				t.Fatalf("cut %d: %v", cut, err)
			}
			if info.ValidWALBytes > int64(cut) {
				t.Fatalf("cut %d: valid prefix %d beyond the surviving bytes", cut, info.ValidWALBytes)
			}
			// The producer redelivers from before the watermark: dups and
			// stale events must be absorbed, the rest applied.
			start := 0
			for i, ev := range events {
				if ev.Seq > rec.Watermark() {
					start = i
					break
				}
			}
			replayFrom := start - rng.Intn(3)
			if replayFrom < 0 {
				replayFrom = 0
			}
			for _, ev := range events[replayFrom:] {
				err := rec.Step(ev)
				if err != nil && !errors.Is(err, ErrDuplicateEvent) && !errors.Is(err, ErrStaleEvent) {
					t.Fatalf("cut %d: redelivery of %v: %v", cut, ev, err)
				}
			}
			if rec.StateFingerprint() != refState {
				t.Fatalf("cut %d: crash-restart state diverged", cut)
			}
			if rec.CoverFingerprint() != refCover {
				t.Fatalf("cut %d: crash-restart cover diverged", cut)
			}
		}
	})

	t.Run("snapshot-crash-restart", func(t *testing.T) {
		// Kill after the snapshot: recover from snapshot + torn full log.
		cut := len(image)*3/4 + rng.Intn(len(image)/4)
		rec, info, err := Recover(net, cfg, bytes.NewReader(snapImage), bytes.NewReader(image[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !info.FromSnapshot {
			t.Fatal("snapshot ignored")
		}
		for _, ev := range events {
			if ev.Seq <= rec.Watermark() {
				continue
			}
			if err := rec.Step(ev); err != nil {
				t.Fatalf("redelivery of %v: %v", ev, err)
			}
		}
		if rec.StateFingerprint() != refState || rec.CoverFingerprint() != refCover {
			t.Fatal("snapshot crash-restart diverged")
		}
	})

	t.Run("mutations", func(t *testing.T) {
		boundaries := recordEnds(image)
		mutations := []struct {
			name   string
			mutate func([]byte) []byte
			// prefixExact: the mutation only removes a suffix, so the
			// recovered state must equal an exact event-prefix state.
			prefixExact bool
		}{
			{"truncate", func(b []byte) []byte {
				return b[:rng.Intn(len(b))]
			}, true},
			{"bitflip", func(b []byte) []byte {
				c := append([]byte(nil), b...)
				c[rng.Intn(len(c))] ^= 1 << uint(rng.Intn(8))
				return c
			}, false},
			{"duplicate-record", func(b []byte) []byte {
				i := rng.Intn(len(boundaries) - 1)
				rec := b[boundaries[i]:boundaries[i+1]]
				c := append([]byte(nil), b[:boundaries[i+1]]...)
				c = append(c, rec...)
				return append(c, b[boundaries[i+1]:]...)
			}, false},
			{"reorder-records", func(b []byte) []byte {
				i := 1 + rng.Intn(len(boundaries)-3) // never the header
				r1 := b[boundaries[i]:boundaries[i+1]]
				r2 := b[boundaries[i+1]:boundaries[i+2]]
				c := append([]byte(nil), b[:boundaries[i]]...)
				c = append(c, r2...)
				c = append(c, r1...)
				return append(c, b[boundaries[i+2]:]...)
			}, false},
			{"excise-record", func(b []byte) []byte {
				i := 1 + rng.Intn(len(boundaries)-2)
				c := append([]byte(nil), b[:boundaries[i]]...)
				return append(c, b[boundaries[i+1]:]...)
			}, false},
			{"garbage-append", func(b []byte) []byte {
				g := make([]byte, 1+rng.Intn(40))
				rng.Read(g)
				return append(append([]byte(nil), b...), g...)
			}, false},
			{"garbage-insert", func(b []byte) []byte {
				i := boundaries[1+rng.Intn(len(boundaries)-1)]
				g := make([]byte, 1+rng.Intn(20))
				rng.Read(g)
				c := append([]byte(nil), b[:i]...)
				c = append(c, g...)
				return append(c, b[i:]...)
			}, false},
		}
		for _, mu := range mutations {
			for round := 0; round < 3; round++ {
				damaged := mu.mutate(image)
				rec, info, err := Recover(net, cfg, nil, bytes.NewReader(damaged))
				if err != nil {
					// A mutation may destroy the header: only typed
					// corruption errors are acceptable.
					if !errors.Is(err, ErrCorruptWAL) && !errors.Is(err, ErrConfigMismatch) &&
						!errors.Is(err, ErrMalformedEvent) {
						t.Fatalf("%s round %d: untyped recovery error %v", mu.name, round, err)
					}
					continue
				}
				if mu.prefixExact {
					if got := rec.StateFingerprint(); got != fps[info.Replayed] {
						t.Fatalf("%s round %d: truncation recovered %d events but not their exact state",
							mu.name, round, info.Replayed)
					}
				}
				assertConverged(t, rec, cfg)
			}
		}
	})

	t.Run("torn-snapshot", func(t *testing.T) {
		for round := 0; round < 3; round++ {
			cut := rng.Intn(len(snapImage))
			_, _, err := Recover(net, cfg, bytes.NewReader(snapImage[:cut]), bytes.NewReader(image))
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("torn snapshot at %d: err = %v, want ErrCorruptSnapshot", cut, err)
			}
		}
	})
}

// snapshotAfter replays an event prefix on a fresh engine and snapshots it.
func snapshotAfter(t *testing.T, net core.Network, cfg Config, events []Event) []byte {
	t.Helper()
	cfg.WAL = nil
	e, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := e.Step(ev); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if _, err := e.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Bytes()
}

// recordEnds returns the cumulative end offsets of every record in a
// framed stream, starting with 0.
func recordEnds(image []byte) []int64 {
	ends := []int64{0}
	rr := trace.NewRecordReader(bytes.NewReader(image), 0)
	for {
		if _, err := rr.Next(); err != nil {
			return ends
		}
		ends = append(ends, rr.Offset())
	}
}
