// Package stream is the event-sourced streaming layer over the incremental
// coverage engine: it ingests typed topology events (node join/leave/crash,
// edge up/down, mobility ticks), maintains the active coverage set by
// re-electing with the canonical engine (core.CanonicalElect) under a
// neighborhood-fingerprint verdict memo, and makes the whole state machine
// crash-safe through a checksummed write-ahead log with periodic snapshots
// (DESIGN.md §13).
//
// The package's convergence contract: after any admitted event prefix —
// reached by live ingestion, by batched application, or by snapshot+WAL
// recovery from a kill at any byte — the engine's cover equals the batch
// canonical schedule of the materialized topology, byte for byte.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dcc/internal/graph"
)

// Kind enumerates the topology event types. The zero Kind is invalid so a
// zero Event can never be mistaken for a real one.
type Kind uint8

const (
	// KindJoin adds a node at (X, Y), or revives a previously departed
	// node. In geometric mode (Config.Radius > 0) its edges are derived
	// from the unit-disk rule; otherwise it joins isolated and gains edges
	// through KindEdgeUp events.
	KindJoin Kind = iota + 1
	// KindLeave removes a live node (planned departure).
	KindLeave
	// KindCrash removes a live node (failure). Topologically identical to
	// KindLeave; kept distinct so traces record intent and stats separate
	// churn from failure.
	KindCrash
	// KindEdgeUp adds an edge between two live nodes (explicit-topology
	// mode only).
	KindEdgeUp
	// KindEdgeDown removes an existing edge (explicit-topology mode only).
	KindEdgeDown
	// KindMove is a mobility tick: the node's position becomes (X, Y). In
	// geometric mode the node's incident edges are re-derived.
	KindMove
)

func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	case KindCrash:
		return "crash"
	case KindEdgeUp:
		return "edge-up"
	case KindEdgeDown:
		return "edge-down"
	case KindMove:
		return "move"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// positional reports whether the kind carries coordinates.
func (k Kind) positional() bool { return k == KindJoin || k == KindMove }

// pairwise reports whether the kind names a second node.
func (k Kind) pairwise() bool { return k == KindEdgeUp || k == KindEdgeDown }

// Event is one typed topology change. Seq is the producer-assigned sequence
// number (strictly positive, strictly increasing along the stream; gaps are
// legal, regressions are not). Peer is set only for edge kinds; X, Y only
// for positional kinds.
type Event struct {
	Seq  uint64
	Kind Kind
	Node graph.NodeID
	Peer graph.NodeID
	X, Y float64
}

func (ev Event) String() string {
	switch {
	case ev.Kind.pairwise():
		return fmt.Sprintf("#%d %s %d-%d", ev.Seq, ev.Kind, ev.Node, ev.Peer)
	case ev.Kind.positional():
		return fmt.Sprintf("#%d %s %d (%.3f,%.3f)", ev.Seq, ev.Kind, ev.Node, ev.X, ev.Y)
	default:
		return fmt.Sprintf("#%d %s %d", ev.Seq, ev.Kind, ev.Node)
	}
}

// Admission and recovery error taxonomy. All are matched with errors.Is;
// the engine never panics on hostile input.
var (
	// ErrMalformedEvent wraps shape violations: unknown kind, damaged
	// encoding, non-finite coordinates, fields set that the kind does not
	// carry.
	ErrMalformedEvent = errors.New("stream: malformed event")
	// ErrDuplicateEvent marks redelivery of the most recently admitted
	// sequence number. Duplicates are dropped silently (counted, not
	// quarantined): at-least-once transports make them routine.
	ErrDuplicateEvent = errors.New("stream: duplicate event")
	// ErrStaleEvent marks a sequence number behind the admission
	// watermark — a reordered or replayed straggler. Quarantined.
	ErrStaleEvent = errors.New("stream: stale event")
	// ErrInvalidEvent wraps semantic violations against the current
	// topology: joining a live node, moving a dead one, dropping an absent
	// edge, or edge events in geometric mode.
	ErrInvalidEvent = errors.New("stream: event invalid on current topology")
	// ErrBoundaryImmutable rejects events that would mutate the boundary
	// structure the criterion's cycle basis stands on: any node event on a
	// boundary node, or an edge-down on a boundary-cycle edge.
	ErrBoundaryImmutable = errors.New("stream: boundary structure is immutable")
	// ErrCorruptSnapshot wraps snapshot decoding failures, including a
	// stored state fingerprint that does not match the decoded state.
	ErrCorruptSnapshot = errors.New("stream: corrupt snapshot")
	// ErrCorruptWAL marks a structurally valid WAL whose leading record is
	// not a recognizable header — the log belongs to something else.
	ErrCorruptWAL = errors.New("stream: corrupt WAL")
	// ErrConfigMismatch rejects recovery artifacts produced under a
	// different (tau, seed, radius) or boundary structure than the
	// recovering engine's.
	ErrConfigMismatch = errors.New("stream: recovery config mismatch")
)

// maxStreamNodeID bounds node ids on the wire so a hostile varint cannot
// smuggle an implausible id into index arithmetic.
const maxStreamNodeID = 1<<31 - 1

// Validate checks the static shape of an event — everything that can be
// judged without consulting the topology. Fields a kind does not carry must
// be zero, which keeps the encoding canonical: every valid event has
// exactly one byte representation.
func (ev Event) Validate() error {
	if ev.Seq == 0 {
		return fmt.Errorf("%w: sequence number must be positive", ErrMalformedEvent)
	}
	switch ev.Kind {
	case KindJoin, KindLeave, KindCrash, KindEdgeUp, KindEdgeDown, KindMove:
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrMalformedEvent, uint8(ev.Kind))
	}
	if ev.Node < 0 || ev.Node > maxStreamNodeID {
		return fmt.Errorf("%w: node id %d out of range", ErrMalformedEvent, ev.Node)
	}
	if ev.Kind.pairwise() {
		if ev.Peer < 0 || ev.Peer > maxStreamNodeID {
			return fmt.Errorf("%w: peer id %d out of range", ErrMalformedEvent, ev.Peer)
		}
		if ev.Peer == ev.Node {
			return fmt.Errorf("%w: self-loop %d-%d", ErrMalformedEvent, ev.Node, ev.Peer)
		}
	} else if ev.Peer != 0 {
		return fmt.Errorf("%w: %s carries no peer, got %d", ErrMalformedEvent, ev.Kind, ev.Peer)
	}
	if ev.Kind.positional() {
		if !finite(ev.X) || !finite(ev.Y) {
			return fmt.Errorf("%w: non-finite coordinates (%v,%v)", ErrMalformedEvent, ev.X, ev.Y)
		}
	} else if ev.X != 0 || ev.Y != 0 {
		return fmt.Errorf("%w: %s carries no coordinates", ErrMalformedEvent, ev.Kind)
	}
	return nil
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// maxEventRecordLen bounds one encoded event on the wire: kind byte, three
// maximal uvarints and two coordinates fit in well under 64 bytes.
const maxEventRecordLen = 64

// appendTo appends the canonical binary encoding of the event: kind byte,
// uvarint seq, uvarint node, then uvarint peer (edge kinds) or the two
// little-endian IEEE-754 coordinates (positional kinds).
func (ev Event) appendTo(dst []byte) []byte {
	dst = append(dst, byte(ev.Kind))
	dst = binary.AppendUvarint(dst, ev.Seq)
	dst = binary.AppendUvarint(dst, uint64(ev.Node))
	switch {
	case ev.Kind.pairwise():
		dst = binary.AppendUvarint(dst, uint64(ev.Peer))
	case ev.Kind.positional():
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(ev.X))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(ev.Y))
	}
	return dst
}

// decodeEvent is the strict inverse of appendTo: any spare byte, truncated
// field, or shape violation is ErrMalformedEvent. Strictness is what makes
// WAL replay deterministic — a record either decodes to exactly one valid
// event or is rejected; there is no lenient middle.
func decodeEvent(p []byte) (Event, error) {
	var ev Event
	if len(p) == 0 {
		return ev, fmt.Errorf("%w: empty record", ErrMalformedEvent)
	}
	ev.Kind = Kind(p[0])
	p = p[1:]
	seq, n := binary.Uvarint(p)
	if n <= 0 {
		return ev, fmt.Errorf("%w: damaged sequence number", ErrMalformedEvent)
	}
	ev.Seq = seq
	p = p[n:]
	node, n := binary.Uvarint(p)
	if n <= 0 || node > maxStreamNodeID {
		return ev, fmt.Errorf("%w: damaged node id", ErrMalformedEvent)
	}
	ev.Node = graph.NodeID(node)
	p = p[n:]
	switch {
	case ev.Kind.pairwise():
		peer, n := binary.Uvarint(p)
		if n <= 0 || peer > maxStreamNodeID {
			return ev, fmt.Errorf("%w: damaged peer id", ErrMalformedEvent)
		}
		ev.Peer = graph.NodeID(peer)
		p = p[n:]
	case ev.Kind.positional():
		if len(p) < 16 {
			return ev, fmt.Errorf("%w: truncated coordinates", ErrMalformedEvent)
		}
		ev.X = math.Float64frombits(binary.LittleEndian.Uint64(p))
		ev.Y = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
		p = p[16:]
	}
	if len(p) != 0 {
		return ev, fmt.Errorf("%w: %d trailing bytes", ErrMalformedEvent, len(p))
	}
	if err := ev.Validate(); err != nil {
		return ev, err
	}
	return ev, nil
}
