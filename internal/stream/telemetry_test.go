package stream

import (
	"bytes"
	"sync"
	"testing"

	"dcc/internal/telemetry"
)

// TestStatsConcurrentWithApply is the -race witness for the engine's
// internal mutex: observers poll Stats, Watermark, PendingLen and
// LiveCount while a producer streams events through Step and Ingest. Any
// unsynchronized access to the counters or the pending queue trips the
// race detector.
func TestStatsConcurrentWithApply(t *testing.T) {
	net, pos := testDeploy(t, 50, 6, 6, 1.6)
	e, err := New(net, Config{Tau: 4, Seed: 11, Positions: pos, Radius: 1.6})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = e.Stats()
				_ = e.Watermark()
				_ = e.PendingLen()
				_ = e.LiveCount()
			}
		}()
	}
	m := NewMutator(net, Config{Radius: 1.6, Positions: pos}, 77)
	for seq := 1; seq <= 200; seq++ {
		ev := m.Next()
		if seq%2 == 0 {
			_ = e.Step(ev)
		} else {
			_ = e.Ingest(ev)
		}
		if seq%50 == 0 {
			e.Cover()
		}
	}
	close(done)
	wg.Wait()
	if s := e.Stats(); s.Admitted == 0 {
		t.Fatalf("no events admitted: %+v", s)
	}
}

// TestEngineTelemetryMirrorsStats pins the publishing contract: after any
// sequence of operations, every deterministic stream.* counter equals the
// corresponding Stats field (the dccdebug build additionally asserts this
// after every publish).
func TestEngineTelemetryMirrorsStats(t *testing.T) {
	net, pos := testDeploy(t, 50, 6, 6, 1.6)
	reg := telemetry.New()
	var wal bytes.Buffer
	e, err := New(net, Config{Tau: 4, Seed: 11, Positions: pos, Radius: 1.6, Telemetry: reg, WAL: &wal})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMutator(net, Config{Radius: 1.6, Positions: pos}, 78)
	for seq := 1; seq <= 120; seq++ {
		_ = e.Ingest(m.Next())
		if seq%40 == 0 {
			e.Cover()
		}
	}
	var snap bytes.Buffer
	if _, err := e.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	for _, c := range []struct {
		name string
		want int64
	}{
		{"stream.admitted", int64(s.Admitted)},
		{"stream.applied", int64(s.Applied)},
		{"stream.rejected", int64(s.Rejected)},
		{"stream.duplicates", int64(s.Duplicates)},
		{"stream.coalesced", int64(s.Coalesced)},
		{"stream.rebuilds", int64(s.Rebuilds)},
		{"stream.fast_restores", int64(s.FastRestores)},
		{"stream.elections", int64(s.Elections)},
		{"stream.tests", int64(s.Tests)},
		{"stream.memo_hits", int64(s.MemoHits)},
		{"stream.memo_misses", int64(s.MemoMisses)},
		{"stream.memo_resets", int64(s.MemoResets)},
		{"stream.wal_bytes", s.WALBytes},
		{"stream.snapshots", int64(s.Snapshots)},
	} {
		if got := reg.Counter(c.name).Value(); got != c.want {
			t.Errorf("%s = %d, Stats says %d", c.name, got, c.want)
		}
	}
	if got := reg.Gauge("stream.watermark").Value(); got != int64(e.Watermark()) {
		t.Errorf("stream.watermark gauge %d, engine watermark %d", got, e.Watermark())
	}
	if got := reg.Gauge("stream.live").Value(); got != int64(e.LiveCount()) {
		t.Errorf("stream.live gauge %d, engine live count %d", got, e.LiveCount())
	}
	if s.Elections == 0 || s.Tests == 0 {
		t.Fatalf("test exercised no elections: %+v", s)
	}
}

// syncCountingWAL is a WAL writer that counts Sync calls.
type syncCountingWAL struct {
	bytes.Buffer
	syncs int
}

func (w *syncCountingWAL) Sync() error {
	w.syncs++
	return nil
}

// TestEngineSpansAndSyncWAL drives an engine with a clocked registry and
// a syncable WAL: the wal_append, fsync, rebuild and election spans must
// record, and Sync must run once per WAL append (header included).
func TestEngineSpansAndSyncWAL(t *testing.T) {
	net, pos := testDeploy(t, 50, 6, 6, 1.6)
	reg := telemetry.NewWithClock(&telemetry.ManualClock{Tick: 1})
	wal := &syncCountingWAL{}
	e, err := New(net, Config{Tau: 4, Seed: 11, Positions: pos, Radius: 1.6, Telemetry: reg, WAL: wal, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMutator(net, Config{Radius: 1.6, Positions: pos}, 79)
	admitted := 0
	for seq := 1; seq <= 30; seq++ {
		if e.Step(m.Next()) == nil {
			admitted++
		}
	}
	e.Cover()
	if want := admitted + 1; wal.syncs != want { // +1 for the header record
		t.Errorf("WAL synced %d times, want %d (admitted %d + header)", wal.syncs, want, admitted)
	}
	for _, name := range []string{"stream.wal_append", "stream.fsync", "stream.election"} {
		if n := reg.TimingHistogram(name).Count(); n == 0 {
			t.Errorf("span %s recorded no observations", name)
		}
	}
	if n := reg.TimingHistogram("stream.wal_append").Count(); n != int64(admitted+1) {
		t.Errorf("wal_append span count %d, want %d", n, admitted+1)
	}
}
