package stream

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to crash recovery as a WAL image.
// For every input, Recover over a fixed genesis must either
//
//  1. succeed — in which case the valid-prefix accounting must be sane
//     (0 ≤ ValidWALBytes ≤ len(input)) and the recovered cover must equal
//     the batch canonical schedule of the recovered topology (the
//     convergence contract holds even for logs assembled by an adversary
//     from valid frames); or
//  2. fail with a typed corruption error (ErrCorruptWAL,
//     ErrConfigMismatch, ErrCorruptSnapshot via the header path).
//
// It must never panic and never return an untyped error: a WAL is disk
// state, and arbitrary damage to it is a runtime condition.
func FuzzWALReplay(f *testing.F) {
	net, pos := testDeploy(f, 77, 5, 5, 1.6)
	cfg := Config{Tau: 3, Seed: 9, Positions: pos}

	// Seed corpus: a real log, truncations, a bit flip, a log written
	// under a mismatched config, and classic malformed shapes. The
	// committed corpus under testdata/fuzz mirrors these.
	_, image, _, _ := walRun(f, net, cfg, 21, 25)
	f.Add(image)
	f.Add(image[:len(image)/2])
	f.Add(image[:len(image)-3])
	flipped := append([]byte(nil), image...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	gcfg := cfg
	gcfg.Radius = 1.6
	_, gimage, _, _ := walRun(f, net, gcfg, 22, 15)
	f.Add(gimage) // header config mismatch
	f.Add([]byte{})
	f.Add([]byte("not a write-ahead log"))
	f.Add(image[:1])

	f.Fuzz(func(t *testing.T, wal []byte) {
		rec, info, err := Recover(net, cfg, nil, bytes.NewReader(wal))
		if err != nil {
			if !errors.Is(err, ErrCorruptWAL) && !errors.Is(err, ErrConfigMismatch) &&
				!errors.Is(err, ErrCorruptSnapshot) && !errors.Is(err, ErrMalformedEvent) {
				t.Fatalf("untyped recovery error: %v", err)
			}
			return
		}
		if info.ValidWALBytes < 0 || info.ValidWALBytes > int64(len(wal)) {
			t.Fatalf("ValidWALBytes %d outside [0, %d]", info.ValidWALBytes, len(wal))
		}
		if info.Replayed > 0 && info.ValidWALBytes == 0 {
			t.Fatalf("replayed %d events from a zero-length valid prefix", info.Replayed)
		}
		assertConverged(t, rec, cfg)
	})
}
