package stream

import (
	"sort"

	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/telemetry"
)

// topology is the engine's authoritative picture of the deployment: the
// universe of every node ever seen (departed nodes stay, flagged dead, so a
// rejoin can take the O(1) DeleteView.Restore fast path), the universe edge
// set, and a compiled CSR base graph with a liveness overlay.
//
// Two mutation tiers keep the hot path hot. Liveness-only changes (leave,
// crash, rejoin-in-place) flip the overlay without touching the CSR.
// Structural changes (new node, edge churn, geometric moves) edit the
// universe slices and recompile the base — O(n+m), amortized fine at event
// granularity and batched under backpressure.
type topology struct {
	radius float64 // > 0: unit-disk edges derived from positions

	ids   []graph.NodeID // sorted universe ids
	pos   []geom.Point   // parallel to ids
	dead  []bool         // parallel to ids
	edges []graph.Edge   // normalized (U < V), sorted

	base    *graph.Graph
	view    *graph.DeleteView
	scratch *graph.Scratch

	stats *Stats              // rebuild / fast-restore counters, owned by the engine
	tel   *telemetry.Registry // rebuild span source; nil when telemetry is off
}

func newTopology(g *graph.Graph, radius float64, pos []geom.Point, stats *Stats) *topology {
	t := &topology{
		radius: radius,
		ids:    g.Nodes(),
		pos:    pos,
		dead:   make([]bool, g.NumNodes()),
		edges:  g.Edges(),
		stats:  stats,
	}
	// The genesis graph is its own compilation: Nodes() and Edges() come
	// back sorted, so recompiling would reproduce g exactly.
	t.base = g
	t.view = graph.NewDeleteView(g)
	t.scratch = graph.NewScratch(g)
	return t
}

// find locates v in the sorted universe.
func (t *topology) find(v graph.NodeID) (int, bool) {
	i := sort.Search(len(t.ids), func(i int) bool { return t.ids[i] >= v })
	return i, i < len(t.ids) && t.ids[i] == v
}

func (t *topology) alive(v graph.NodeID) bool {
	i, ok := t.find(v)
	return ok && !t.dead[i]
}

// liveGraph materializes the live induced subgraph.
func (t *topology) liveGraph() *graph.Graph { return t.view.Materialize() }

func (t *topology) liveCount() int { return t.view.NumLive() }

// rebuild recompiles the CSR base from the universe slices and replays the
// dead flags onto a fresh overlay.
func (t *topology) rebuild() {
	sp := t.tel.StartSpan("stream.rebuild")
	defer sp.End()
	b := graph.NewBuilder()
	for _, v := range t.ids {
		b.AddNode(v)
	}
	for _, e := range t.edges {
		b.AddEdge(e.U, e.V)
	}
	t.base = b.MustBuild()
	t.view = graph.NewDeleteView(t.base)
	t.scratch = graph.NewScratch(t.base)
	for i, d := range t.dead {
		if d {
			t.view.Delete(t.ids[i])
		}
	}
	t.stats.Rebuilds++
}

// edgeIndex locates the normalized edge in the sorted universe edge list.
func (t *topology) edgeIndex(e graph.Edge) (int, bool) {
	i := sort.Search(len(t.edges), func(i int) bool {
		if t.edges[i].U != e.U {
			return t.edges[i].U >= e.U
		}
		return t.edges[i].V >= e.V
	})
	return i, i < len(t.edges) && t.edges[i] == e
}

func (t *topology) hasEdge(u, v graph.NodeID) bool {
	_, ok := t.edgeIndex(graph.NormEdge(u, v))
	return ok
}

// insertEdge splices e into the sorted universe edge list; the caller
// guarantees it is absent.
func (t *topology) insertEdge(e graph.Edge) {
	i, _ := t.edgeIndex(e)
	t.edges = append(t.edges, graph.Edge{})
	copy(t.edges[i+1:], t.edges[i:])
	t.edges[i] = e
}

// removeEdge deletes e from the universe edge list if present.
func (t *topology) removeEdge(e graph.Edge) bool {
	i, ok := t.edgeIndex(e)
	if !ok {
		return false
	}
	t.edges = append(t.edges[:i], t.edges[i+1:]...)
	return true
}

// removeIncident drops every universe edge touching v.
func (t *topology) removeIncident(v graph.NodeID) {
	kept := t.edges[:0]
	for _, e := range t.edges {
		if e.U != v && e.V != v {
			kept = append(kept, e)
		}
	}
	t.edges = kept
}

// deriveNeighbors returns, sorted, the live nodes within the unit-disk
// radius of p (excluding v itself) — the edge set a geometric join or move
// of v must end up with.
func (t *topology) deriveNeighbors(v graph.NodeID, p geom.Point) []graph.NodeID {
	var out []graph.NodeID
	for j, w := range t.ids {
		if w == v || t.dead[j] {
			continue
		}
		if geom.Dist(p, t.pos[j]) <= t.radius {
			out = append(out, w)
		}
	}
	return out
}

// retainedLiveNeighbors returns, sorted, the live universe neighbors v
// would reconnect to if revived in place — the Restore fast-path candidate
// set.
func (t *topology) retainedLiveNeighbors(v graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for _, w := range t.base.Neighbors(v) {
		if j, ok := t.find(w); ok && !t.dead[j] {
			out = append(out, w)
		}
	}
	return out
}

func sameNodeList(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// join places node v at p, either as a brand-new universe member or as a
// revival of a departed one. Revival in place — identical position and, in
// geometric mode, a derived neighbor set identical to the retained one —
// takes the O(1) overlay Restore; everything else is structural.
func (t *topology) join(v graph.NodeID, p geom.Point) {
	i, ok := t.find(v)
	if ok {
		// Revival of a departed node. In explicit-topology mode the node
		// always comes back with its retained universe edges (position is
		// metadata), so revival is always the O(1) overlay flip; in
		// geometric mode only an in-place revival whose derived neighbor
		// set still matches the retained one can skip the recompile.
		if t.radius <= 0 {
			t.pos[i] = p
			t.view.Restore(v)
			t.dead[i] = false
			t.stats.FastRestores++
			return
		}
		if t.pos[i] == p &&
			sameNodeList(t.deriveNeighbors(v, p), t.retainedLiveNeighbors(v)) {
			t.view.Restore(v)
			t.dead[i] = false
			t.stats.FastRestores++
			return
		}
		t.pos[i] = p
		t.dead[i] = false
	} else {
		t.ids = append(t.ids, 0)
		copy(t.ids[i+1:], t.ids[i:])
		t.ids[i] = v
		t.pos = append(t.pos, geom.Point{})
		copy(t.pos[i+1:], t.pos[i:])
		t.pos[i] = p
		t.dead = append(t.dead, false)
		copy(t.dead[i+1:], t.dead[i:])
		t.dead[i] = false
	}
	t.removeIncident(v)
	if t.radius > 0 {
		for _, w := range t.deriveNeighbors(v, p) {
			t.insertEdge(graph.NormEdge(v, w))
		}
	}
	t.rebuild()
}

// depart marks a live node dead: an O(1) overlay flip. Its universe edges
// are retained for a potential in-place revival.
func (t *topology) depart(v graph.NodeID) {
	i, _ := t.find(v)
	t.dead[i] = true
	t.view.Delete(v)
}

// move updates v's position. In explicit-topology mode position is pure
// metadata; in geometric mode v's incident edges are re-derived against the
// live nodes' current positions, which is what makes the final universe
// edge set a function of each node's latest position (and what licenses
// the engine's mobility-tick coalescing).
func (t *topology) move(v graph.NodeID, p geom.Point) {
	i, _ := t.find(v)
	t.pos[i] = p
	if t.radius <= 0 {
		return
	}
	t.removeIncident(v)
	for _, w := range t.deriveNeighbors(v, p) {
		t.insertEdge(graph.NormEdge(v, w))
	}
	t.rebuild()
}

// edgeUp / edgeDown edit the explicit universe edge set; the engine has
// already validated liveness, existence and mode.
func (t *topology) edgeUp(u, v graph.NodeID) {
	t.insertEdge(graph.NormEdge(u, v))
	t.rebuild()
}

func (t *topology) edgeDown(u, v graph.NodeID) {
	t.removeEdge(graph.NormEdge(u, v))
	t.rebuild()
}
