package stream

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dcc/internal/core"
	"dcc/internal/geom"
	"dcc/internal/graph"
)

// testDeploy builds a dense perturbed-grid UDG network with the grid
// perimeter as boundary cycle (the construction the core and dist tests
// use) and returns it with its node positions.
func testDeploy(t testing.TB, seed int64, rows, cols int, radius float64) (core.Network, map[graph.NodeID]geom.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rect := geom.Rect{MaxX: float64(cols), MaxY: float64(rows)}
	pts := geom.PerturbedGrid(rng, rows, cols, rect, 0.15)
	g := geom.UDG(pts, radius)
	if !g.IsConnected() {
		t.Fatal("test network disconnected; adjust parameters")
	}
	var order []graph.NodeID
	for c := 0; c < cols; c++ {
		order = append(order, graph.NodeID(c))
	}
	for r := 1; r < rows; r++ {
		order = append(order, graph.NodeID(r*cols+cols-1))
	}
	for c := cols - 2; c >= 0; c-- {
		order = append(order, graph.NodeID((rows-1)*cols+c))
	}
	for r := rows - 2; r >= 1; r-- {
		order = append(order, graph.NodeID(r*cols))
	}
	b := make(map[graph.NodeID]bool, len(order))
	for _, v := range order {
		b[v] = true
	}
	net := core.Network{G: g, Boundary: b, BoundaryCycles: [][]graph.NodeID{order}}
	if err := net.Validate(); err != nil {
		t.Fatalf("test net invalid: %v", err)
	}
	pos := make(map[graph.NodeID]geom.Point, len(pts))
	for i, p := range pts {
		pos[graph.NodeID(i)] = p
	}
	return net, pos
}

// shadowFingerprint computes the ground-truth side of the convergence
// identity: the batch canonical schedule of the Mutator's independently
// maintained topology.
func shadowFingerprint(t *testing.T, m *Mutator, genesis core.Network, tau int, seed int64) [32]byte {
	t.Helper()
	net := m.Network(genesis)
	res, err := core.Schedule(net, core.Options{Tau: tau, Seed: seed, Mode: core.Canonical})
	if err != nil {
		t.Fatalf("batch schedule of shadow topology: %v", err)
	}
	return CoverFingerprintOf(tau, seed, m.Nodes(), m.Edges(), res.KeptInternal)
}

func TestEngineStaticCover(t *testing.T) {
	net, pos := testDeploy(t, 50, 6, 6, 1.6)
	cfg := Config{Tau: 4, Seed: 11, Positions: pos}
	e, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Schedule(net, core.Options{Tau: 4, Seed: 11, Mode: core.Canonical})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Cover(); !reflect.DeepEqual(got, res.KeptInternal) {
		t.Fatalf("static cover %v differs from batch canonical %v", got, res.KeptInternal)
	}
	want := CoverFingerprintOf(4, 11, e.LiveNodesAt(), net.G.Edges(), res.KeptInternal)
	if got := e.CoverFingerprint(); got != want {
		t.Fatal("static cover fingerprint differs from batch fingerprint")
	}
	e.Cover()
	if s := e.Stats(); s.Elections != 1 {
		t.Fatalf("Cover on clean state re-elected: %d elections", s.Elections)
	}
}

// TestEngineDifferentialConvergence is the differential suite of the
// convergence contract: a seeded valid event stream is applied through the
// engine while the Mutator maintains an engine-independent shadow
// topology; at every checkpoint the engine's cover fingerprint must equal
// the batch canonical schedule of the shadow. Runs both topology modes.
func TestEngineDifferentialConvergence(t *testing.T) {
	cases := []struct {
		name   string
		radius float64
	}{
		{"explicit", 0},
		{"geometric", 1.6},
	}
	events := 90
	if testing.Short() {
		events = 40
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net, pos := testDeploy(t, 60, 6, 6, 1.6)
			cfg := Config{Tau: 4, Seed: 21, Radius: tc.radius, Positions: pos}
			e, err := New(net, cfg)
			if err != nil {
				t.Fatal(err)
			}
			m := NewMutator(net, cfg, 33)
			for i := 0; i < events; i++ {
				if err := e.Step(m.Next()); err != nil {
					t.Fatalf("event %d rejected: %v", i, err)
				}
				if (i+1)%10 == 0 {
					want := shadowFingerprint(t, m, net, cfg.Tau, cfg.Seed)
					if got := e.CoverFingerprint(); got != want {
						t.Fatalf("after %d events: engine diverged from shadow batch schedule", i+1)
					}
				}
			}
			s := e.Stats()
			if s.Applied != events || s.Rejected != 0 {
				t.Fatalf("stream stats %+v: want %d applied, 0 rejected", s, events)
			}
			if s.Elections < events/10 {
				t.Fatalf("only %d elections for %d checkpoints", s.Elections, events/10)
			}
		})
	}
}

// TestEngineBatchedEqualsStepped: backpressure batching (with mobility
// coalescing) and the per-event path land on identical state and cover.
func TestEngineBatchedEqualsStepped(t *testing.T) {
	net, pos := testDeploy(t, 70, 6, 6, 1.6)
	cfg := Config{Tau: 3, Seed: 5, Radius: 1.6, Positions: pos}
	stepped, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := cfg
	bcfg.MaxPending = 8
	batched, err := New(net, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMutator(net, cfg, 44)
	for i := 0; i < 120; i++ {
		ev := m.Next()
		if err := stepped.Step(ev); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		stepped.Cover() // the low-latency consumer polls after every event
		if err := batched.Ingest(ev); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		if batched.PendingLen() >= bcfg.MaxPending {
			t.Fatalf("backpressure cap not enforced: %d pending", batched.PendingLen())
		}
	}
	if stepped.StateFingerprint() != batched.StateFingerprint() {
		t.Fatal("batched ingestion diverged from stepped application (state)")
	}
	if stepped.CoverFingerprint() != batched.CoverFingerprint() {
		t.Fatal("batched ingestion diverged from stepped application (cover)")
	}
	bs := batched.Stats()
	if bs.Coalesced == 0 {
		t.Fatal("mobility-heavy stream produced no coalescing")
	}
	if ss := stepped.Stats(); bs.Elections >= ss.Elections {
		t.Fatalf("batching did not reduce elections: %d vs %d", bs.Elections, ss.Elections)
	}
}

func TestEngineAdmissionErrors(t *testing.T) {
	net, pos := testDeploy(t, 80, 5, 5, 1.6)
	boundaryNode := net.BoundaryCycles[0][0]
	cycleEdge := [2]graph.NodeID{net.BoundaryCycles[0][0], net.BoundaryCycles[0][1]}
	interior := net.InternalNodes()[0]

	cases := []struct {
		name   string
		radius float64
		ev     Event
		want   error
	}{
		{"zero seq", 0, Event{Kind: KindMove, Node: interior, X: 1, Y: 1}, ErrMalformedEvent},
		{"unknown kind", 0, Event{Seq: 5, Kind: 99, Node: interior}, ErrMalformedEvent},
		{"negative node", 0, Event{Seq: 5, Kind: KindLeave, Node: -2}, ErrMalformedEvent},
		{"self loop", 0, Event{Seq: 5, Kind: KindEdgeUp, Node: 3, Peer: 3}, ErrMalformedEvent},
		{"spurious peer", 0, Event{Seq: 5, Kind: KindLeave, Node: interior, Peer: 7}, ErrMalformedEvent},
		{"spurious coords", 0, Event{Seq: 5, Kind: KindCrash, Node: interior, X: 1}, ErrMalformedEvent},
		{"nan coords", 0, Event{Seq: 5, Kind: KindJoin, Node: 999, X: nan(), Y: 0}, ErrMalformedEvent},
		{"boundary join", 0, Event{Seq: 5, Kind: KindJoin, Node: boundaryNode, X: 1, Y: 1}, ErrBoundaryImmutable},
		{"boundary leave", 0, Event{Seq: 5, Kind: KindLeave, Node: boundaryNode}, ErrBoundaryImmutable},
		{"boundary move", 0, Event{Seq: 5, Kind: KindMove, Node: boundaryNode, X: 1, Y: 1}, ErrBoundaryImmutable},
		{"cycle edge down", 0, Event{Seq: 5, Kind: KindEdgeDown, Node: cycleEdge[0], Peer: cycleEdge[1]}, ErrBoundaryImmutable},
		{"geometric edge up", 1.6, Event{Seq: 5, Kind: KindEdgeUp, Node: 0, Peer: 1}, ErrInvalidEvent},
		{"geometric edge down", 1.6, Event{Seq: 5, Kind: KindEdgeDown, Node: 0, Peer: 1}, ErrInvalidEvent},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := New(net, Config{Tau: 3, Seed: 1, Radius: tc.radius, Positions: pos})
			if err != nil {
				t.Fatal(err)
			}
			err = e.Ingest(tc.ev)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Ingest(%v) = %v, want %v", tc.ev, err, tc.want)
			}
			if s := e.Stats(); s.Admitted != 0 || s.Rejected != 1 {
				t.Fatalf("stats %+v: want 0 admitted, 1 rejected", s)
			}
			q := e.Quarantined()
			if len(q) != 1 || !errors.Is(q[0].Err, tc.want) ||
				q[0].Event.Seq != tc.ev.Seq || q[0].Event.Kind != tc.ev.Kind || q[0].Event.Node != tc.ev.Node {
				t.Fatalf("quarantine %+v does not record the rejection", q)
			}
		})
	}
}

func nan() float64 {
	var zero float64
	return zero / zero //lint:ignore SA4012 deliberate NaN
}

func TestEngineSequencing(t *testing.T) {
	net, pos := testDeploy(t, 81, 5, 5, 1.6)
	e, err := New(net, Config{Tau: 3, Seed: 1, Positions: pos})
	if err != nil {
		t.Fatal(err)
	}
	v := net.InternalNodes()[0]
	if err := e.Step(Event{Seq: 10, Kind: KindMove, Node: v, X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	// Redelivery of the watermark: dropped silently, not quarantined.
	err = e.Step(Event{Seq: 10, Kind: KindMove, Node: v, X: 1, Y: 1})
	if !errors.Is(err, ErrDuplicateEvent) {
		t.Fatalf("duplicate: %v", err)
	}
	// A straggler behind the watermark: quarantined.
	err = e.Step(Event{Seq: 4, Kind: KindMove, Node: v, X: 2, Y: 2})
	if !errors.Is(err, ErrStaleEvent) {
		t.Fatalf("stale: %v", err)
	}
	// Gaps ahead of the watermark are legal.
	if err := e.Step(Event{Seq: 100, Kind: KindMove, Node: v, X: 3, Y: 3}); err != nil {
		t.Fatalf("gap: %v", err)
	}
	s := e.Stats()
	if s.Admitted != 2 || s.Duplicates != 1 || s.Rejected != 1 {
		t.Fatalf("stats %+v: want 2 admitted, 1 duplicate, 1 rejected", s)
	}
	if len(e.Quarantined()) != 1 {
		t.Fatalf("quarantine %v: duplicates must not be quarantined", e.Quarantined())
	}
}

func TestEngineApplySemantics(t *testing.T) {
	net, pos := testDeploy(t, 82, 5, 5, 1.6)
	e, err := New(net, Config{Tau: 3, Seed: 1, Positions: pos})
	if err != nil {
		t.Fatal(err)
	}
	in := net.InternalNodes()
	u, v := in[0], in[1]
	seq := uint64(0)
	next := func(ev Event) error {
		seq++
		ev.Seq = seq
		return e.Step(ev)
	}
	if err := next(Event{Kind: KindJoin, Node: u, X: 0, Y: 0}); !errors.Is(err, ErrInvalidEvent) {
		t.Fatalf("join of live node: %v", err)
	}
	if err := next(Event{Kind: KindLeave, Node: 9999}); !errors.Is(err, ErrInvalidEvent) {
		t.Fatalf("leave of unknown node: %v", err)
	}
	if err := next(Event{Kind: KindMove, Node: 9999, X: 1, Y: 1}); !errors.Is(err, ErrInvalidEvent) {
		t.Fatalf("move of unknown node: %v", err)
	}
	if err := next(Event{Kind: KindLeave, Node: u}); err != nil {
		t.Fatal(err)
	}
	if err := next(Event{Kind: KindMove, Node: u, X: 1, Y: 1}); !errors.Is(err, ErrInvalidEvent) {
		t.Fatalf("move of departed node: %v", err)
	}
	if e.topo.hasEdge(u, v) {
		// Existing universe edge with a dead endpoint: edge-up while one
		// side is down is invalid.
		if err := next(Event{Kind: KindEdgeUp, Node: u, Peer: v}); !errors.Is(err, ErrInvalidEvent) {
			t.Fatalf("edge-up with dead endpoint: %v", err)
		}
	}
	// Revive in place: the O(1) restore fast path.
	p := pos[u]
	if err := next(Event{Kind: KindJoin, Node: u, X: p.X, Y: p.Y}); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.FastRestores != 1 {
		t.Fatalf("stats %+v: revival in place must take the restore fast path", s)
	}
	// Duplicate edge-up between live nodes with a retained universe edge.
	if e.topo.hasEdge(u, v) {
		if err := next(Event{Kind: KindEdgeUp, Node: u, Peer: v}); !errors.Is(err, ErrInvalidEvent) {
			t.Fatalf("duplicate edge-up: %v", err)
		}
	}
	if err := next(Event{Kind: KindEdgeDown, Node: in[2], Peer: 9999}); !errors.Is(err, ErrInvalidEvent) {
		t.Fatalf("edge-down of unknown edge: %v", err)
	}
}

func TestEngineQuarantineRing(t *testing.T) {
	net, pos := testDeploy(t, 83, 5, 5, 1.6)
	e, err := New(net, Config{Tau: 3, Seed: 1, Positions: pos, MaxQuarantine: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		ev := Event{Seq: uint64(i + 1), Kind: KindLeave, Node: graph.NodeID(5000 + i)}
		if err := e.Step(ev); !errors.Is(err, ErrInvalidEvent) {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	q := e.Quarantined()
	if len(q) != 3 {
		t.Fatalf("quarantine holds %d, want cap 3", len(q))
	}
	if q[0].Event.Node != 5003 || q[2].Event.Node != 5005 {
		t.Fatalf("quarantine %v: want the three newest rejections", q)
	}
	if e.Stats().Rejected != 6 {
		t.Fatalf("rejected = %d, want 6 (ring caps storage, not counting)", e.Stats().Rejected)
	}
}

// TestEngineMemoEffectiveness: repeated local churn must hit the verdict
// memo (fingerprint-unchanged regions reuse verdicts), and a tiny memo
// limit must only cost extra computation, never correctness.
func TestEngineMemoEffectiveness(t *testing.T) {
	net, pos := testDeploy(t, 84, 6, 6, 1.6)
	cfg := Config{Tau: 4, Seed: 3, Positions: pos}
	e, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := New(net, Config{Tau: 4, Seed: 3, Positions: pos, MemoLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	v := net.InternalNodes()[0]
	seq := uint64(0)
	for i := 0; i < 6; i++ {
		seq++
		var ev Event
		if i%2 == 0 {
			ev = Event{Seq: seq, Kind: KindLeave, Node: v}
		} else {
			p := pos[v]
			ev = Event{Seq: seq, Kind: KindJoin, Node: v, X: p.X, Y: p.Y}
		}
		if err := e.Step(ev); err != nil {
			t.Fatal(err)
		}
		if err := tiny.Step(ev); err != nil {
			t.Fatal(err)
		}
		if e.CoverFingerprint() != tiny.CoverFingerprint() {
			t.Fatalf("step %d: memo limit changed the cover", i)
		}
	}
	s := e.Stats()
	if s.MemoHits == 0 {
		t.Fatalf("stats %+v: oscillating one node never hit the memo", s)
	}
	if ts := tiny.Stats(); ts.MemoResets == 0 {
		t.Fatalf("stats %+v: memo limit 4 never reset", ts)
	}
}

func TestCoverFingerprintOfCanonicalizes(t *testing.T) {
	nodes := []NodeAt{{ID: 1, X: 0.5}, {ID: 2, Y: 1}, {ID: 7}}
	edges := []graph.Edge{{U: 1, V: 2}, {U: 7, V: 2}}
	cover := []graph.NodeID{2, 1}
	a := CoverFingerprintOf(3, 9, nodes, edges, cover)
	perm := CoverFingerprintOf(3, 9,
		[]NodeAt{{ID: 7}, {ID: 1, X: 0.5}, {ID: 2, Y: 1}},
		[]graph.Edge{{U: 2, V: 7}, {U: 1, V: 2}},
		[]graph.NodeID{1, 2})
	if a != perm {
		t.Fatal("fingerprint sensitive to input order")
	}
	if b := CoverFingerprintOf(3, 9, nodes, edges, []graph.NodeID{1}); b == a {
		t.Fatal("fingerprint blind to the cover")
	}
	if b := CoverFingerprintOf(4, 9, nodes, edges, cover); b == a {
		t.Fatal("fingerprint blind to tau")
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: KindJoin, Node: 42, X: 1.25, Y: -3.5},
		{Seq: 2, Kind: KindLeave, Node: 0},
		{Seq: 1 << 40, Kind: KindCrash, Node: maxStreamNodeID},
		{Seq: 4, Kind: KindEdgeUp, Node: 7, Peer: 9},
		{Seq: 5, Kind: KindEdgeDown, Node: 9, Peer: 7},
		{Seq: 6, Kind: KindMove, Node: 3, X: 0, Y: 0},
	}
	for _, ev := range events {
		enc := ev.appendTo(nil)
		if len(enc) > maxEventRecordLen {
			t.Fatalf("%v encodes to %d bytes, above the record bound", ev, len(enc))
		}
		dec, err := decodeEvent(enc)
		if err != nil {
			t.Fatalf("%v: %v", ev, err)
		}
		if dec != ev {
			t.Fatalf("round trip %v -> %v", ev, dec)
		}
	}
}

func TestEventDecodeMalformed(t *testing.T) {
	valid := Event{Seq: 3, Kind: KindJoin, Node: 5, X: 1, Y: 2}.appendTo(nil)
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"unknown kind", []byte{0x40, 1, 1}},
		{"zero kind", []byte{0, 1, 1}},
		{"truncated seq", []byte{byte(KindLeave), 0x80}},
		{"truncated node", []byte{byte(KindLeave), 1, 0x80}},
		{"truncated peer", []byte{byte(KindEdgeUp), 1, 1, 0x80}},
		{"truncated coords", valid[:len(valid)-1]},
		{"trailing bytes", append(append([]byte{}, valid...), 0)},
		{"oversized node id", append([]byte{byte(KindLeave), 1}, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := decodeEvent(tc.buf); !errors.Is(err, ErrMalformedEvent) {
				t.Fatalf("decodeEvent(%x) = %v, want ErrMalformedEvent", tc.buf, err)
			}
		})
	}
}

func TestEngineCoalescingBlockedByIntervening(t *testing.T) {
	net, pos := testDeploy(t, 85, 5, 5, 1.6)
	cfg := Config{Tau: 3, Seed: 1, Radius: 1.6, Positions: pos, MaxPending: 100}
	e, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(net, Config{Tau: 3, Seed: 1, Radius: 1.6, Positions: pos, NoCoalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	v := net.InternalNodes()[0]
	p := pos[v]
	events := []Event{
		{Seq: 1, Kind: KindMove, Node: v, X: p.X + 0.1, Y: p.Y},
		{Seq: 2, Kind: KindCrash, Node: v},
		{Seq: 3, Kind: KindJoin, Node: v, X: p.X, Y: p.Y},
		// This tick must NOT coalesce into the seq-1 tick: the crash/join
		// pair between them reads v's liveness.
		{Seq: 4, Kind: KindMove, Node: v, X: p.X, Y: p.Y + 0.2},
		// This one coalesces into seq 4.
		{Seq: 5, Kind: KindMove, Node: v, X: p.X, Y: p.Y + 0.3},
	}
	for _, ev := range events {
		if err := e.Ingest(ev); err != nil {
			t.Fatalf("%v: %v", ev, err)
		}
		if err := plain.Step(ev); err != nil {
			t.Fatalf("%v: %v", ev, err)
		}
	}
	if got := e.Stats().Coalesced; got != 1 {
		t.Fatalf("coalesced %d ticks, want exactly 1", got)
	}
	if e.StateFingerprint() != plain.StateFingerprint() {
		t.Fatal("coalescing changed the final state")
	}
	if e.CoverFingerprint() != plain.CoverFingerprint() {
		t.Fatal("coalescing changed the cover")
	}
}

func TestNewValidation(t *testing.T) {
	net, pos := testDeploy(t, 86, 5, 5, 1.6)
	if _, err := New(net, Config{Tau: 2, Seed: 1, Positions: pos}); err == nil {
		t.Fatal("tau 2 accepted")
	}
	if _, err := New(net, Config{Tau: 3, Seed: 1, Radius: -1, Positions: pos}); err == nil {
		t.Fatal("negative radius accepted")
	}
	if _, err := New(net, Config{Tau: 3, Seed: 1, Radius: 1.6}); err == nil {
		t.Fatal("geometric mode without positions accepted")
	}
	if _, err := New(core.Network{}, Config{Tau: 3}); err == nil {
		t.Fatal("invalid network accepted")
	}
}

// TestEngineWALWriteFailure: a failing WAL writer is fatal at admission,
// before the event mutates anything.
func TestEngineWALWriteFailure(t *testing.T) {
	net, pos := testDeploy(t, 87, 5, 5, 1.6)
	w := &failingWriter{failAfter: 1}
	e, err := New(net, Config{Tau: 3, Seed: 1, Positions: pos, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	before := e.StateFingerprint()
	v := net.InternalNodes()[0]
	err = e.Step(Event{Seq: 1, Kind: KindLeave, Node: v})
	if err == nil {
		t.Fatal("WAL write failure not surfaced")
	}
	if errors.Is(err, ErrInvalidEvent) || errors.Is(err, ErrMalformedEvent) {
		t.Fatalf("durability failure misclassified: %v", err)
	}
	if e.StateFingerprint() != before {
		t.Fatal("event applied despite failed WAL append")
	}
}

type failingWriter struct {
	writes    int
	failAfter int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.failAfter {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

// TestEngineWALImageDeterministic: two engines fed the same events write
// byte-identical logs — the property torn-tail arithmetic in the chaos
// harness relies on.
func TestEngineWALImageDeterministic(t *testing.T) {
	net, pos := testDeploy(t, 88, 5, 5, 1.6)
	var a, b bytes.Buffer
	cfgA := Config{Tau: 3, Seed: 2, Radius: 1.6, Positions: pos, WAL: &a}
	cfgB := cfgA
	cfgB.WAL = &b
	ea, err := New(net, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := New(net, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMutator(net, cfgA, 9)
	for i := 0; i < 30; i++ {
		ev := m.Next()
		if err := ea.Step(ev); err != nil {
			t.Fatal(err)
		}
		if err := eb.Ingest(ev); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WAL image depends on the application path")
	}
	if int64(a.Len()) != ea.Stats().WALBytes {
		t.Fatalf("WALBytes %d, image %d", ea.Stats().WALBytes, a.Len())
	}
}

func TestKindString(t *testing.T) {
	for k := KindJoin; k <= KindMove; k++ {
		if s := k.String(); s == "" || s == fmt.Sprintf("kind(%d)", uint8(k)) {
			t.Fatalf("kind %d has no name", uint8(k))
		}
	}
	if Kind(0).String() != "kind(0)" {
		t.Fatal("zero kind must print numerically")
	}
}
