package stream

import (
	"math/rand"
	"sort"

	"dcc/internal/core"
	"dcc/internal/geom"
	"dcc/internal/graph"
)

// Mutator synthesizes well-formed event streams over a genesis network and
// simultaneously maintains an independent shadow model of the topology
// those events produce. The shadow shares no code with the engine's
// topology layer — edges are re-derived globally, liveness lives in plain
// sorted slices — which is what gives the differential convergence suite
// and the experiments replay driver an engine-free source of truth: after
// any prefix, CoverFingerprintOf(tau, seed, m.Nodes(), m.Edges(), batch
// cover) is the fingerprint the streaming engine must reproduce.
//
// Every generated event is valid by construction: boundary nodes are never
// touched, liveness preconditions hold, and sequence numbers increase
// (with occasional legal gaps). Hostile input is the chaos harness's
// department, not the Mutator's.
type Mutator struct {
	rng    *rand.Rand
	radius float64
	rect   geom.Rect
	seq    uint64
	nextID graph.NodeID

	// Shadow state: the universe in sorted-id order. Departed nodes stay,
	// flagged dead, and their explicit-mode edges are retained — the same
	// revival semantics the engine implements.
	ids      []graph.NodeID
	pos      []geom.Point
	dead     []bool
	boundary []bool
	edges    []graph.Edge // explicit mode universe edges (radius == 0)

	cycleEdge map[graph.Edge]bool
}

// NewMutator builds a stream synthesizer over the genesis network; cfg
// supplies tau-independent stream parameters (Radius, Positions) and seed
// derives the event randomness.
func NewMutator(net core.Network, cfg Config, seed int64) *Mutator {
	nodes := net.G.Nodes()
	m := &Mutator{
		rng:       rand.New(rand.NewSource(seed)),
		radius:    cfg.Radius,
		nextID:    nodes[len(nodes)-1] + 1,
		ids:       nodes,
		pos:       make([]geom.Point, len(nodes)),
		dead:      make([]bool, len(nodes)),
		boundary:  make([]bool, len(nodes)),
		cycleEdge: make(map[graph.Edge]bool),
	}
	for i, v := range nodes {
		m.pos[i] = cfg.Positions[v]
		m.boundary[i] = net.Boundary[v]
	}
	if m.radius <= 0 {
		m.edges = net.G.Edges()
	}
	for _, cyc := range net.BoundaryCycles {
		for i, v := range cyc {
			m.cycleEdge[graph.NormEdge(v, cyc[(i+1)%len(cyc)])] = true
		}
	}
	m.rect = geom.Rect{MinX: m.pos[0].X, MaxX: m.pos[0].X, MinY: m.pos[0].Y, MaxY: m.pos[0].Y}
	for _, p := range m.pos {
		if p.X < m.rect.MinX {
			m.rect.MinX = p.X
		}
		if p.X > m.rect.MaxX {
			m.rect.MaxX = p.X
		}
		if p.Y < m.rect.MinY {
			m.rect.MinY = p.Y
		}
		if p.Y > m.rect.MaxY {
			m.rect.MaxY = p.Y
		}
	}
	if m.rect.Width() == 0 && m.rect.Height() == 0 {
		m.rect = geom.Square(1)
	}
	return m
}

// Seq returns the sequence number of the last generated event.
func (m *Mutator) Seq() uint64 { return m.seq }

// interior returns the indices of live non-boundary nodes.
func (m *Mutator) interior() []int {
	var out []int
	for i := range m.ids {
		if !m.dead[i] && !m.boundary[i] {
			out = append(out, i)
		}
	}
	return out
}

func (m *Mutator) deadIdx() []int {
	var out []int
	for i := range m.ids {
		if m.dead[i] {
			out = append(out, i)
		}
	}
	return out
}

func (m *Mutator) randPoint() geom.Point {
	return geom.Point{
		X: m.rect.MinX + m.rng.Float64()*m.rect.Width(),
		Y: m.rect.MinY + m.rng.Float64()*m.rect.Height(),
	}
}

// Next synthesizes the next event and applies it to the shadow model.
func (m *Mutator) Next() Event {
	m.seq++
	if m.rng.Intn(8) == 0 {
		m.seq += uint64(m.rng.Intn(3)) // legal sequence gap
	}
	ev := m.pick()
	ev.Seq = m.seq
	m.applyShadow(ev)
	return ev
}

// pick draws an event kind respecting shadow-state preconditions.
func (m *Mutator) pick() Event {
	interior := m.interior()
	for attempt := 0; attempt < 16; attempt++ {
		roll := m.rng.Intn(100)
		switch {
		case roll < 45 && len(interior) > 0: // mobility tick
			i := interior[m.rng.Intn(len(interior))]
			p := m.step(m.pos[i])
			return Event{Kind: KindMove, Node: m.ids[i], X: p.X, Y: p.Y}
		case roll < 65: // join: revive or fresh
			if dead := m.deadIdx(); len(dead) > 0 && m.rng.Intn(2) == 0 {
				i := dead[m.rng.Intn(len(dead))]
				p := m.pos[i]
				if m.rng.Intn(2) == 0 {
					p = m.randPoint() // revive elsewhere
				}
				return Event{Kind: KindJoin, Node: m.ids[i], X: p.X, Y: p.Y}
			}
			p := m.randPoint()
			return Event{Kind: KindJoin, Node: m.nextID, X: p.X, Y: p.Y}
		case roll < 85 && len(interior) > 4: // churn out a node
			i := interior[m.rng.Intn(len(interior))]
			kind := KindLeave
			if m.rng.Intn(3) == 0 {
				kind = KindCrash
			}
			return Event{Kind: kind, Node: m.ids[i]}
		case m.radius <= 0 && len(interior) > 1: // explicit edge churn
			if ev, ok := m.pickEdge(interior); ok {
				return ev
			}
		}
	}
	// Degenerate shadow state (everything boundary or dead): grow it.
	p := m.randPoint()
	return Event{Kind: KindJoin, Node: m.nextID, X: p.X, Y: p.Y}
}

// step perturbs a position by a fraction of the field size, clamped.
func (m *Mutator) step(p geom.Point) geom.Point {
	scale := 0.1 * (m.rect.Width() + m.rect.Height()) / 2
	q := geom.Point{
		X: p.X + m.rng.NormFloat64()*scale,
		Y: p.Y + m.rng.NormFloat64()*scale,
	}
	if q.X < m.rect.MinX {
		q.X = m.rect.MinX
	}
	if q.X > m.rect.MaxX {
		q.X = m.rect.MaxX
	}
	if q.Y < m.rect.MinY {
		q.Y = m.rect.MinY
	}
	if q.Y > m.rect.MaxY {
		q.Y = m.rect.MaxY
	}
	return q
}

// pickEdge draws an explicit-mode edge event: up between live non-adjacent
// nodes, down on a non-cycle edge with live endpoints.
func (m *Mutator) pickEdge(interior []int) (Event, bool) {
	if m.rng.Intn(2) == 0 {
		for attempt := 0; attempt < 8; attempt++ {
			i := interior[m.rng.Intn(len(interior))]
			j := interior[m.rng.Intn(len(interior))]
			if i == j {
				continue
			}
			e := graph.NormEdge(m.ids[i], m.ids[j])
			if !m.shadowHasEdge(e) {
				return Event{Kind: KindEdgeUp, Node: e.U, Peer: e.V}, true
			}
		}
		return Event{}, false
	}
	var down []graph.Edge
	for _, e := range m.edges {
		if m.cycleEdge[e] {
			continue
		}
		iu, _ := m.find(e.U)
		iv, _ := m.find(e.V)
		if !m.dead[iu] && !m.dead[iv] {
			down = append(down, e)
		}
	}
	if len(down) == 0 {
		return Event{}, false
	}
	e := down[m.rng.Intn(len(down))]
	return Event{Kind: KindEdgeDown, Node: e.U, Peer: e.V}, true
}

func (m *Mutator) find(v graph.NodeID) (int, bool) {
	i := sort.Search(len(m.ids), func(i int) bool { return m.ids[i] >= v })
	return i, i < len(m.ids) && m.ids[i] == v
}

func (m *Mutator) shadowHasEdge(e graph.Edge) bool {
	for _, f := range m.edges {
		if f == e {
			return true
		}
	}
	return false
}

// applyShadow mirrors the event onto the shadow model.
func (m *Mutator) applyShadow(ev Event) {
	switch ev.Kind {
	case KindJoin:
		i, ok := m.find(ev.Node)
		if !ok {
			m.ids = append(m.ids, 0)
			copy(m.ids[i+1:], m.ids[i:])
			m.ids[i] = ev.Node
			m.pos = append(m.pos, geom.Point{})
			copy(m.pos[i+1:], m.pos[i:])
			m.dead = append(m.dead, false)
			copy(m.dead[i+1:], m.dead[i:])
			m.boundary = append(m.boundary, false)
			copy(m.boundary[i+1:], m.boundary[i:])
			m.boundary[i] = false
			if ev.Node >= m.nextID {
				m.nextID = ev.Node + 1
			}
		}
		m.pos[i] = geom.Point{X: ev.X, Y: ev.Y}
		m.dead[i] = false
	case KindLeave, KindCrash:
		i, _ := m.find(ev.Node)
		m.dead[i] = true
	case KindMove:
		i, _ := m.find(ev.Node)
		m.pos[i] = geom.Point{X: ev.X, Y: ev.Y}
	case KindEdgeUp:
		m.edges = append(m.edges, graph.NormEdge(ev.Node, ev.Peer))
	case KindEdgeDown:
		e := graph.NormEdge(ev.Node, ev.Peer)
		for i, f := range m.edges {
			if f == e {
				m.edges = append(m.edges[:i], m.edges[i+1:]...)
				break
			}
		}
	}
}

// Nodes returns the shadow model's live nodes with positions, sorted.
func (m *Mutator) Nodes() []NodeAt {
	var out []NodeAt
	for i, v := range m.ids {
		if !m.dead[i] {
			out = append(out, NodeAt{ID: v, X: m.pos[i].X, Y: m.pos[i].Y})
		}
	}
	return out
}

// Edges returns the shadow model's live edge set: in geometric mode a full
// from-scratch unit-disk derivation over live positions (independent of
// the engine's incremental maintenance), in explicit mode the universe
// edges whose endpoints are both live.
func (m *Mutator) Edges() []graph.Edge {
	var out []graph.Edge
	if m.radius > 0 {
		for i := range m.ids {
			if m.dead[i] {
				continue
			}
			for j := i + 1; j < len(m.ids); j++ {
				if m.dead[j] {
					continue
				}
				if geom.Dist(m.pos[i], m.pos[j]) <= m.radius {
					out = append(out, graph.Edge{U: m.ids[i], V: m.ids[j]})
				}
			}
		}
		return out
	}
	for _, e := range m.edges {
		iu, _ := m.find(e.U)
		iv, _ := m.find(e.V)
		if !m.dead[iu] && !m.dead[iv] {
			out = append(out, e)
		}
	}
	return out
}

// Network assembles the shadow model's live topology as a batch-schedulable
// network with the genesis boundary structure — the "materialized topology"
// of the convergence contract, built without consulting the engine.
func (m *Mutator) Network(genesis core.Network) core.Network {
	var isolated []graph.NodeID
	edges := m.Edges()
	touched := make(map[graph.NodeID]bool, 2*len(edges))
	for _, e := range edges {
		touched[e.U] = true
		touched[e.V] = true
	}
	for i, v := range m.ids {
		if !m.dead[i] && !touched[v] {
			isolated = append(isolated, v)
		}
	}
	g, err := graph.FromEdges(edges, isolated...)
	if err != nil {
		panic("stream: shadow model produced an invalid graph: " + err.Error())
	}
	cycles := make([][]graph.NodeID, len(genesis.BoundaryCycles))
	for i, c := range genesis.BoundaryCycles {
		cycles[i] = append([]graph.NodeID(nil), c...)
	}
	boundary := make(map[graph.NodeID]bool, len(genesis.Boundary))
	for i, v := range m.ids {
		if m.boundary[i] {
			boundary[v] = true
		}
	}
	return core.Network{G: g, Boundary: boundary, BoundaryCycles: cycles}
}
