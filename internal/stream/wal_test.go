package stream

import (
	"bytes"
	"errors"
	"testing"

	"dcc/internal/core"
	"dcc/internal/trace"
)

// walRun feeds n Mutator events through an engine writing a WAL, recording
// the state fingerprint after every event. Returns the engine, the log
// image, the events, and the per-prefix fingerprints (index i = state
// after the first i events; index 0 = genesis).
func walRun(t testing.TB, net core.Network, cfg Config, mutSeed int64, n int) (*Engine, []byte, []Event, [][32]byte) {
	t.Helper()
	var buf bytes.Buffer
	cfg.WAL = &buf
	e, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMutator(net, cfg, mutSeed)
	events := make([]Event, 0, n)
	fps := [][32]byte{e.StateFingerprint()}
	for i := 0; i < n; i++ {
		ev := m.Next()
		events = append(events, ev)
		if err := e.Step(ev); err != nil {
			t.Fatalf("event %d (%v): %v", i, ev, err)
		}
		fps = append(fps, e.StateFingerprint())
	}
	return e, buf.Bytes(), events, fps
}

func TestRecoverFullWAL(t *testing.T) {
	net, pos := testDeploy(t, 90, 6, 6, 1.6)
	cfg := Config{Tau: 4, Seed: 13, Radius: 1.6, Positions: pos}
	orig, image, _, _ := walRun(t, net, cfg, 55, 60)

	rec, info, err := Recover(net, cfg, nil, bytes.NewReader(image))
	if err != nil {
		t.Fatal(err)
	}
	if info.TornTail || info.CorruptTail {
		t.Fatalf("clean log reported damage: %+v", info)
	}
	if info.ValidWALBytes != int64(len(image)) {
		t.Fatalf("ValidWALBytes %d, image %d", info.ValidWALBytes, len(image))
	}
	if info.Replayed != orig.Stats().Applied {
		t.Fatalf("replayed %d, original applied %d", info.Replayed, orig.Stats().Applied)
	}
	if rec.StateFingerprint() != orig.StateFingerprint() {
		t.Fatal("recovered state differs from the original")
	}
	if rec.CoverFingerprint() != orig.CoverFingerprint() {
		t.Fatal("recovered cover differs from the original")
	}
	if rec.Watermark() != orig.Watermark() {
		t.Fatalf("watermark %d vs %d", rec.Watermark(), orig.Watermark())
	}
}

// TestRecoverKillAtEveryByte is the tentpole durability property: for a
// kill at ANY byte of the log, recovery converges to exactly the state
// after the last fully persisted event — byte-identical fingerprint —
// with the torn tail reported and the valid prefix length exact.
func TestRecoverKillAtEveryByte(t *testing.T) {
	net, pos := testDeploy(t, 91, 5, 5, 1.6)
	cfg := Config{Tau: 3, Seed: 7, Radius: 1.6, Positions: pos}
	n := 25
	if testing.Short() {
		n = 12
	}
	_, image, _, fps := walRun(t, net, cfg, 56, n)

	// Reconstruct the record boundaries: header then one record per event.
	var ends []int64
	rr := trace.NewRecordReader(bytes.NewReader(image), 0)
	for {
		if _, err := rr.Next(); err != nil {
			break
		}
		ends = append(ends, rr.Offset())
	}
	if len(ends) != n+1 {
		t.Fatalf("log holds %d records, want %d", len(ends), n+1)
	}

	for cut := 0; cut <= len(image); cut++ {
		// How many complete records (header included) survive the cut?
		complete := 0
		var validBytes int64
		for _, e := range ends {
			if int64(cut) >= e {
				complete++
				validBytes = e
			}
		}
		rec, info, err := Recover(net, cfg, nil, bytes.NewReader(image[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantTorn := int64(cut) != validBytes
		if info.TornTail != wantTorn || info.CorruptTail {
			t.Fatalf("cut %d: info %+v, want torn=%v", cut, info, wantTorn)
		}
		if info.ValidWALBytes != validBytes {
			t.Fatalf("cut %d: ValidWALBytes %d, want %d", cut, info.ValidWALBytes, validBytes)
		}
		applied := complete - 1 // events beyond the header
		if applied < 0 {
			applied = 0
		}
		if got := rec.StateFingerprint(); got != fps[applied] {
			t.Fatalf("cut %d: recovered state is not the state after %d events", cut, applied)
		}
	}
}

func TestSnapshotRecovery(t *testing.T) {
	net, pos := testDeploy(t, 92, 6, 6, 1.6)
	cfg := Config{Tau: 4, Seed: 19, Positions: pos} // explicit mode
	var wal bytes.Buffer
	cfg.WAL = &wal
	e, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMutator(net, cfg, 57)
	var snap bytes.Buffer
	for i := 0; i < 50; i++ {
		if err := e.Step(m.Next()); err != nil {
			t.Fatal(err)
		}
		if i == 24 {
			if _, err := e.Snapshot(&snap); err != nil {
				t.Fatal(err)
			}
		}
	}
	rec, info, err := Recover(net, cfg, bytes.NewReader(snap.Bytes()), bytes.NewReader(wal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !info.FromSnapshot || info.SnapshotSeq == 0 {
		t.Fatalf("snapshot not used: %+v", info)
	}
	if info.SkippedOld == 0 {
		t.Fatalf("no WAL records skipped below the snapshot watermark: %+v", info)
	}
	if info.Replayed == 0 {
		t.Fatalf("no WAL records replayed above the snapshot watermark: %+v", info)
	}
	if rec.StateFingerprint() != e.StateFingerprint() {
		t.Fatal("snapshot+tail recovery diverged from the original state")
	}
	if rec.CoverFingerprint() != e.CoverFingerprint() {
		t.Fatal("snapshot+tail recovery diverged from the original cover")
	}

	// Snapshot alone recovers the mid-stream state.
	recSnap, info2, err := Recover(net, cfg, bytes.NewReader(snap.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if recSnap.Watermark() != info2.SnapshotSeq {
		t.Fatalf("watermark %d, snapshot seq %d", recSnap.Watermark(), info2.SnapshotSeq)
	}
	assertConverged(t, recSnap, cfg)
}

// assertConverged checks the universal invariant every recovered engine
// must satisfy: its cover equals the batch canonical schedule of its own
// materialized topology.
func assertConverged(t *testing.T, e *Engine, cfg Config) {
	t.Helper()
	net := e.MaterializedNetwork()
	res, err := core.Schedule(net, core.Options{Tau: cfg.Tau, Seed: cfg.Seed, Mode: core.Canonical})
	if err != nil {
		t.Fatalf("batch schedule of materialized topology: %v", err)
	}
	want := CoverFingerprintOf(cfg.Tau, cfg.Seed, e.LiveNodesAt(), net.G.Edges(), res.KeptInternal)
	if got := e.CoverFingerprint(); got != want {
		t.Fatal("engine cover diverged from the batch schedule of its topology")
	}
}

// TestSnapshotTornAtEveryByte: every strict prefix of a snapshot is
// rejected as ErrCorruptSnapshot — a half-written snapshot can never be
// installed.
func TestSnapshotTornAtEveryByte(t *testing.T) {
	net, pos := testDeploy(t, 93, 5, 5, 1.6)
	cfg := Config{Tau: 3, Seed: 2, Radius: 1.6, Positions: pos}
	e, _, _, _ := walRun(t, net, cfg, 58, 10)
	var snap bytes.Buffer
	if _, err := e.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	image := snap.Bytes()
	step := 1
	if testing.Short() {
		step = 7
	}
	for cut := 0; cut < len(image); cut += step {
		_, _, err := Recover(net, cfg, bytes.NewReader(image[:cut]), nil)
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("cut %d: err = %v, want ErrCorruptSnapshot", cut, err)
		}
	}
	// The intact image still loads.
	if _, _, err := Recover(net, cfg, bytes.NewReader(image), nil); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotBitFlips: single-byte damage anywhere in the snapshot is
// caught by the frame checksum or the embedded state fingerprint.
func TestSnapshotBitFlips(t *testing.T) {
	net, pos := testDeploy(t, 94, 5, 5, 1.6)
	cfg := Config{Tau: 3, Seed: 2, Positions: pos}
	e, _, _, _ := walRun(t, net, cfg, 59, 10)
	var snap bytes.Buffer
	if _, err := e.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	image := snap.Bytes()
	step := 3
	if testing.Short() {
		step = 17
	}
	for pos := 0; pos < len(image); pos += step {
		damaged := append([]byte(nil), image...)
		damaged[pos] ^= 0x20
		_, _, err := Recover(net, cfg, bytes.NewReader(damaged), nil)
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("flip at %d: err = %v, want ErrCorruptSnapshot", pos, err)
		}
	}
}

func TestRecoverConfigMismatch(t *testing.T) {
	net, pos := testDeploy(t, 95, 5, 5, 1.6)
	cfg := Config{Tau: 3, Seed: 2, Radius: 1.6, Positions: pos}
	e, image, _, _ := walRun(t, net, cfg, 60, 10)
	var snap bytes.Buffer
	if _, err := e.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	alter := []struct {
		name string
		mod  func(c *Config)
	}{
		{"tau", func(c *Config) { c.Tau = 5 }},
		{"seed", func(c *Config) { c.Seed = 99 }},
		{"radius", func(c *Config) { c.Radius = 2.5 }},
	}
	for _, a := range alter {
		t.Run(a.name, func(t *testing.T) {
			bad := cfg
			a.mod(&bad)
			if _, _, err := Recover(net, bad, nil, bytes.NewReader(image)); !errors.Is(err, ErrConfigMismatch) {
				t.Fatalf("WAL under altered %s: err = %v, want ErrConfigMismatch", a.name, err)
			}
			if _, _, err := Recover(net, bad, bytes.NewReader(snap.Bytes()), nil); !errors.Is(err, ErrConfigMismatch) {
				t.Fatalf("snapshot under altered %s: err = %v, want ErrConfigMismatch", a.name, err)
			}
		})
	}
}

func TestRecoverForeignWAL(t *testing.T) {
	net, pos := testDeploy(t, 96, 5, 5, 1.6)
	cfg := Config{Tau: 3, Seed: 2, Positions: pos}
	// A structurally valid record stream that is not a WAL.
	foreign := trace.AppendRecord(nil, []byte("not a wal header"))
	foreign = trace.AppendRecord(foreign, []byte("still not"))
	_, _, err := Recover(net, cfg, nil, bytes.NewReader(foreign))
	if !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("foreign log: err = %v, want ErrCorruptWAL", err)
	}
	// Raw garbage is indistinguishable from a torn header: recovery
	// falls back to genesis and reports the damage.
	rec, info, err := Recover(net, cfg, nil, bytes.NewReader([]byte("\xff\xfe\xfdgarbage")))
	if err != nil {
		t.Fatalf("garbage log: %v", err)
	}
	if !info.TornTail && !info.CorruptTail {
		t.Fatalf("garbage log reported clean: %+v", info)
	}
	if info.ValidWALBytes != 0 || info.Replayed != 0 {
		t.Fatalf("garbage log replayed something: %+v", info)
	}
	assertConverged(t, rec, cfg)
}

// TestRecoverEventDecodeCorruption: a checksummed frame whose payload is
// not a valid event stops replay at the last good record.
func TestRecoverEventDecodeCorruption(t *testing.T) {
	net, pos := testDeploy(t, 97, 5, 5, 1.6)
	cfg := Config{Tau: 3, Seed: 2, Radius: 1.6, Positions: pos}
	_, image, _, fps := walRun(t, net, cfg, 61, 6)
	// Append a properly framed record that is not an event.
	tampered := trace.AppendRecord(append([]byte(nil), image...), []byte{0x7F, 0x01, 0x02, 0x03})
	// And a valid event after it, which must NOT be trusted.
	after := Event{Seq: 1000, Kind: KindMove, Node: net.InternalNodes()[0], X: 1, Y: 1}
	tampered = trace.AppendRecord(tampered, after.appendTo(nil))

	rec, info, err := Recover(net, cfg, nil, bytes.NewReader(tampered))
	if err != nil {
		t.Fatal(err)
	}
	if !info.CorruptTail {
		t.Fatalf("tampered record not reported: %+v", info)
	}
	if info.ValidWALBytes != int64(len(image)) {
		t.Fatalf("ValidWALBytes %d, want %d (end of last good record)", info.ValidWALBytes, len(image))
	}
	if rec.StateFingerprint() != fps[len(fps)-1] {
		t.Fatal("recovered state is not the last good prefix")
	}
	if rec.Watermark() >= after.Seq {
		t.Fatal("event beyond the corruption was applied")
	}
}

// TestRecoverContinuesWAL: recover from a torn log, truncate it to the
// valid prefix, attach it for appends, ingest more — then recover again
// from the extended log. The double-crash path of the recovery contract.
func TestRecoverContinuesWAL(t *testing.T) {
	net, pos := testDeploy(t, 98, 6, 6, 1.6)
	cfg := Config{Tau: 3, Seed: 23, Radius: 1.6, Positions: pos}
	n := 40
	orig, image, events, _ := walRun(t, net, cfg, 62, n)

	// Crash mid-log: keep ~60% of the bytes plus a torn tail.
	cut := len(image) * 6 / 10
	cfg1 := cfg
	cfg1.WAL = nil
	rec1, info1, err := Recover(net, cfg1, nil, bytes.NewReader(image[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	// Truncate to the valid prefix and attach for appends.
	log := bytes.NewBuffer(append([]byte(nil), image[:info1.ValidWALBytes]...))
	rec1.cfg.WAL = log
	// The producer redelivers everything after the recovered watermark
	// (plus a stale straggler, which is refused).
	redelivered := 0
	for _, ev := range events {
		if ev.Seq <= rec1.Watermark() {
			continue
		}
		if err := rec1.Step(ev); err != nil {
			t.Fatalf("redelivery of %v: %v", ev, err)
		}
		redelivered++
	}
	if redelivered == 0 {
		t.Fatal("cut preserved the whole log; pick a smaller cut")
	}
	if rec1.StateFingerprint() != orig.StateFingerprint() {
		t.Fatal("crash-restart with redelivery diverged from the uninterrupted run")
	}

	// Second crash on the extended log: full recovery this time.
	rec2, _, err := Recover(net, cfg, nil, bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rec2.StateFingerprint() != orig.StateFingerprint() {
		t.Fatal("second recovery diverged")
	}
	if rec2.CoverFingerprint() != orig.CoverFingerprint() {
		t.Fatal("second recovery cover diverged")
	}
}

func TestSnapshotBoundaryMismatch(t *testing.T) {
	net, pos := testDeploy(t, 99, 5, 5, 1.6)
	cfg := Config{Tau: 3, Seed: 2, Positions: pos}
	e, _, _, _ := walRun(t, net, cfg, 63, 5)
	var snap bytes.Buffer
	if _, err := e.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	other, opos := testDeploy(t, 100, 6, 6, 1.6)
	ocfg := Config{Tau: 3, Seed: 2, Positions: opos}
	if _, _, err := Recover(other, ocfg, bytes.NewReader(snap.Bytes()), nil); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("foreign genesis accepted: %v", err)
	}
}

func TestRecoverOversizedWALRecord(t *testing.T) {
	net, pos := testDeploy(t, 101, 5, 5, 1.6)
	cfg := Config{Tau: 3, Seed: 2, Positions: pos}
	image := trace.AppendRecord(nil, appendWALHeader(nil, cfg))
	// A record larger than any event can be: rejected at the frame layer
	// as corrupt, stopping replay without allocation games.
	image = trace.AppendRecord(image, bytes.Repeat([]byte{1}, maxEventRecordLen+100))
	rec, info, err := Recover(net, cfg, nil, bytes.NewReader(image))
	if err != nil {
		t.Fatal(err)
	}
	if !info.CorruptTail || info.Replayed != 0 {
		t.Fatalf("oversized record not treated as corruption: %+v", info)
	}
	assertConverged(t, rec, cfg)
}
