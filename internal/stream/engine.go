package stream

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"dcc/internal/core"
	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/telemetry"
	"dcc/internal/trace"
	"dcc/internal/vpt"
)

// Config parameterizes a streaming engine. Tau and Seed fix the canonical
// schedule; Radius selects geometric (unit-disk) edge derivation when
// positive and explicit event-driven edges when zero.
type Config struct {
	// Tau is the confine size (≥ 3).
	Tau int
	// Seed drives the canonical election priorities. Part of the
	// convergence identity: recovery must use the genesis seed.
	Seed int64
	// Radius, when positive, derives each joining or moving node's edges
	// from the unit-disk rule over current positions; edge events are then
	// rejected. Zero means edges change only through explicit events.
	Radius float64
	// Positions carries genesis coordinates, indexed by node id. Required
	// for every genesis node when Radius > 0; optional metadata otherwise.
	Positions map[graph.NodeID]geom.Point
	// MaxPending bounds the backpressure queue: when the pending batch
	// reaches this depth the engine degrades gracefully by applying the
	// whole batch at once (one re-election instead of one per event).
	// 0 means 256.
	MaxPending int
	// NoCoalesce disables mobility-tick coalescing (mostly for tests; the
	// default last-write-wins coalescing is semantics-preserving).
	NoCoalesce bool
	// MemoLimit caps the verdict memo; at the cap the memo is dropped
	// wholesale, which keeps eviction deterministic. 0 means 1<<20.
	MemoLimit int
	// MaxQuarantine bounds the rejected-event ring. 0 means 64.
	MaxQuarantine int
	// WAL, when non-nil, receives the write-ahead log: a header record at
	// genesis, then every admitted event, framed and checksummed
	// (trace.AppendRecord) before it is applied.
	WAL io.Writer
	// SyncWAL, when true and WAL implements Sync() error (an *os.File),
	// syncs the log after every append, making each admission durable the
	// moment admit returns. The sync is timed under the stream.fsync span.
	SyncWAL bool
	// Telemetry, when non-nil, receives the engine's metrics: deterministic
	// counters mirroring Stats (stream.admitted, stream.applied, ...),
	// gauges (stream.watermark, stream.pending, stream.live), and — when the
	// registry has a clock — the stream.wal_append, stream.fsync,
	// stream.rebuild and stream.election spans. Collection never perturbs
	// results: counters are published as deltas after the work they count.
	Telemetry *telemetry.Registry
}

// walSyncer is the optional durability surface of a WAL writer.
type walSyncer interface{ Sync() error }

const (
	defaultMaxPending    = 256
	defaultMemoLimit     = 1 << 20
	defaultMaxQuarantine = 64
)

// Stats counts the engine's work since construction (or recovery).
type Stats struct {
	// Admission.
	Admitted   int // events accepted past validation, sequencing and WAL
	Applied    int // events applied to the topology
	Rejected   int // events quarantined (shape, boundary, stale, semantic)
	Duplicates int // watermark redeliveries dropped silently
	Coalesced  int // mobility ticks absorbed by a pending tick

	// Topology.
	Rebuilds     int // CSR recompilations (structural events)
	FastRestores int // rejoins served by the O(1) overlay Restore

	// Election.
	Elections  int
	Tests      int // deletability verdicts requested by the canonical loop
	MemoHits   int // verdicts served by the neighborhood-fingerprint memo
	MemoMisses int
	MemoResets int // wholesale memo drops at MemoLimit

	// Durability.
	WALBytes  int64
	Snapshots int
}

// Rejection is one quarantined event with the reason it was refused.
type Rejection struct {
	Event Event
	Err   error
}

// memoKey identifies a deletability verdict: the vertex plus the
// fingerprint of its k-hop neighborhood on the residual it was judged
// against. Equal fingerprints mean isomorphic (indeed identically labeled)
// neighborhoods, which the verdict is a pure function of.
type memoKey struct {
	v  graph.NodeID
	fp uint64
}

// Engine is the event-sourced streaming coverage engine. Every exported
// method holds an internal mutex, so concurrent producers and observers
// (a goroutine polling Stats while another ingests) are safe; events are
// still applied one at a time, in whatever order callers acquire the
// lock.
type Engine struct {
	mu sync.Mutex

	tau, k int
	seed   int64
	cfg    Config

	topo           *topology
	boundary       map[graph.NodeID]bool
	boundarySorted []graph.NodeID
	cycles         [][]graph.NodeID
	boundaryEdges  map[graph.Edge]bool

	watermark uint64 // highest admitted sequence number
	pending   []Event

	memo      map[memoKey]bool
	memoLimit int

	cover      []graph.NodeID // live internal nodes after the last election
	coverStale bool

	quarantine []Rejection
	stats      Stats

	tel     *telemetry.Registry
	th      telHandles
	telPub  Stats // amounts already published into th; the dccdebug build asserts telPub == stats after every publish
	walSync walSyncer

	tester *vpt.Tester
	encBuf []byte
}

// telHandles caches the engine's registry handles so publish never takes
// the registry's name-lookup path on the hot path.
type telHandles struct {
	admitted, applied, rejected, duplicates, coalesced *telemetry.Counter
	rebuilds, fastRestores                             *telemetry.Counter
	elections, tests, memoHits, memoMisses, memoResets *telemetry.Counter
	walBytes, snapshots                                *telemetry.Counter
	watermark, pending, live                           *telemetry.Gauge
}

func newTelHandles(reg *telemetry.Registry) telHandles {
	return telHandles{
		admitted:     reg.Counter("stream.admitted"),
		applied:      reg.Counter("stream.applied"),
		rejected:     reg.Counter("stream.rejected"),
		duplicates:   reg.Counter("stream.duplicates"),
		coalesced:    reg.Counter("stream.coalesced"),
		rebuilds:     reg.Counter("stream.rebuilds"),
		fastRestores: reg.Counter("stream.fast_restores"),
		elections:    reg.Counter("stream.elections"),
		tests:        reg.Counter("stream.tests"),
		memoHits:     reg.Counter("stream.memo_hits"),
		memoMisses:   reg.Counter("stream.memo_misses"),
		memoResets:   reg.Counter("stream.memo_resets"),
		walBytes:     reg.Counter("stream.wal_bytes"),
		snapshots:    reg.Counter("stream.snapshots"),
		watermark:    reg.Gauge("stream.watermark"),
		pending:      reg.Gauge("stream.pending"),
		live:         reg.Gauge("stream.live"),
	}
}

// publish mirrors the Stats delta since the last publish into the
// registry, then refreshes the gauges. Runs under e.mu at the end of
// every exported mutating method, so counters are pure post-hoc
// observations of work already done — enabling telemetry cannot change
// any result.
func (e *Engine) publish() {
	if e.tel == nil {
		return
	}
	s, p := &e.stats, &e.telPub
	pubInt(e.th.admitted, &p.Admitted, s.Admitted)
	pubInt(e.th.applied, &p.Applied, s.Applied)
	pubInt(e.th.rejected, &p.Rejected, s.Rejected)
	pubInt(e.th.duplicates, &p.Duplicates, s.Duplicates)
	pubInt(e.th.coalesced, &p.Coalesced, s.Coalesced)
	pubInt(e.th.rebuilds, &p.Rebuilds, s.Rebuilds)
	pubInt(e.th.fastRestores, &p.FastRestores, s.FastRestores)
	pubInt(e.th.elections, &p.Elections, s.Elections)
	pubInt(e.th.tests, &p.Tests, s.Tests)
	pubInt(e.th.memoHits, &p.MemoHits, s.MemoHits)
	pubInt(e.th.memoMisses, &p.MemoMisses, s.MemoMisses)
	pubInt(e.th.memoResets, &p.MemoResets, s.MemoResets)
	pubInt64(e.th.walBytes, &p.WALBytes, s.WALBytes)
	pubInt(e.th.snapshots, &p.Snapshots, s.Snapshots)
	e.th.watermark.Set(int64(e.watermark))
	e.th.pending.Set(int64(len(e.pending)))
	e.th.live.Set(int64(e.topo.liveCount()))
	debugCheckTelemetryMirror(e)
}

func pubInt(c *telemetry.Counter, prev *int, now int) {
	c.Add(int64(now - *prev))
	*prev = now
}

func pubInt64(c *telemetry.Counter, prev *int64, now int64) {
	c.Add(now - *prev)
	*prev = now
}

// New builds a streaming engine over the genesis network. The genesis
// topology is taken as-is (also in geometric mode: derivation governs
// subsequent events, not the initial edge set). If cfg.WAL is set, the WAL
// header record is written immediately.
func New(net core.Network, cfg Config) (*Engine, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if cfg.Tau < 3 {
		return nil, fmt.Errorf("stream: tau %d below minimum 3", cfg.Tau)
	}
	if cfg.Radius < 0 || !finite(cfg.Radius) {
		return nil, fmt.Errorf("stream: invalid radius %v", cfg.Radius)
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = defaultMaxPending
	}
	if cfg.MemoLimit <= 0 {
		cfg.MemoLimit = defaultMemoLimit
	}
	if cfg.MaxQuarantine <= 0 {
		cfg.MaxQuarantine = defaultMaxQuarantine
	}

	nodes := net.G.Nodes()
	pos := make([]geom.Point, len(nodes))
	for i, v := range nodes {
		p, ok := cfg.Positions[v]
		if !ok && cfg.Radius > 0 {
			return nil, fmt.Errorf("stream: geometric mode: no position for genesis node %d", v)
		}
		if !finite(p.X) || !finite(p.Y) {
			return nil, fmt.Errorf("stream: non-finite position for node %d", v)
		}
		pos[i] = p
	}

	e := &Engine{
		tau:       cfg.Tau,
		k:         vpt.NeighborhoodRadius(cfg.Tau),
		seed:      cfg.Seed,
		cfg:       cfg,
		memo:      make(map[memoKey]bool),
		memoLimit: cfg.MemoLimit,
		tester:    vpt.NewTester(),
		encBuf:    make([]byte, 0, maxEventRecordLen),
	}
	if cfg.Telemetry != nil {
		e.tel = cfg.Telemetry
		e.th = newTelHandles(cfg.Telemetry)
	}
	if s, ok := cfg.WAL.(walSyncer); ok && cfg.SyncWAL {
		e.walSync = s
	}
	e.topo = newTopology(net.G, cfg.Radius, pos, &e.stats)
	e.topo.tel = e.tel

	e.boundary = make(map[graph.NodeID]bool, len(net.Boundary))
	for _, v := range nodes {
		if net.Boundary[v] {
			e.boundary[v] = true
			e.boundarySorted = append(e.boundarySorted, v)
		}
	}
	e.cycles = make([][]graph.NodeID, len(net.BoundaryCycles))
	e.boundaryEdges = make(map[graph.Edge]bool)
	for ci, cyc := range net.BoundaryCycles {
		e.cycles[ci] = append([]graph.NodeID(nil), cyc...)
		for i, v := range cyc {
			e.boundaryEdges[graph.NormEdge(v, cyc[(i+1)%len(cyc)])] = true
		}
	}
	e.coverStale = true

	if cfg.WAL != nil {
		if err := e.walAppend(appendWALHeader(nil, cfg)); err != nil {
			return nil, err
		}
	}
	e.publish()
	return e, nil
}

// walAppend writes one framed record to the WAL (timed under the
// stream.wal_append span) and, when SyncWAL is on, syncs the file (timed
// under stream.fsync).
func (e *Engine) walAppend(payload []byte) error {
	sp := e.tel.StartSpan("stream.wal_append")
	n, err := trace.WriteRecord(e.cfg.WAL, payload)
	sp.End()
	e.stats.WALBytes += int64(n)
	if err != nil {
		return err
	}
	if e.walSync != nil {
		fs := e.tel.StartSpan("stream.fsync")
		err = e.walSync.Sync()
		fs.End()
	}
	return err
}

// checkImmutable enforces the static boundary/mode contract: the boundary
// structure the criterion's cycle basis stands on never changes, and
// explicit edge events are meaningless under geometric derivation. These
// checks depend only on genesis configuration, so rejecting them before
// the WAL keeps live ingestion and replay identical.
func (e *Engine) checkImmutable(ev Event) error {
	switch ev.Kind {
	case KindJoin, KindLeave, KindCrash, KindMove:
		if e.boundary[ev.Node] {
			return fmt.Errorf("%w: %s targets boundary node %d", ErrBoundaryImmutable, ev.Kind, ev.Node)
		}
	case KindEdgeUp, KindEdgeDown:
		if e.topo.radius > 0 {
			return fmt.Errorf("%w: %s: geometric mode derives edges from positions", ErrInvalidEvent, ev.Kind)
		}
		if ev.Kind == KindEdgeDown && e.boundaryEdges[graph.NormEdge(ev.Node, ev.Peer)] {
			return fmt.Errorf("%w: edge %d-%d lies on a boundary cycle", ErrBoundaryImmutable, ev.Node, ev.Peer)
		}
	}
	return nil
}

// reject quarantines ev, keeping the most recent MaxQuarantine rejections.
func (e *Engine) reject(ev Event, err error) {
	e.stats.Rejected++
	if len(e.quarantine) == e.cfg.MaxQuarantine {
		copy(e.quarantine, e.quarantine[1:])
		e.quarantine = e.quarantine[:len(e.quarantine)-1]
	}
	e.quarantine = append(e.quarantine, Rejection{Event: ev, Err: err})
}

// admit runs the admission pipeline: shape validation, immutability, the
// sequencing watermark, then the WAL append. An event is durable before it
// is ever applied; a crash after admit replays it from the log.
func (e *Engine) admit(ev Event) error {
	if err := ev.Validate(); err != nil {
		e.reject(ev, err)
		return err
	}
	if err := e.checkImmutable(ev); err != nil {
		e.reject(ev, err)
		return err
	}
	if ev.Seq <= e.watermark {
		if ev.Seq == e.watermark {
			e.stats.Duplicates++
			return fmt.Errorf("%w: sequence %d is the admission watermark", ErrDuplicateEvent, ev.Seq)
		}
		err := fmt.Errorf("%w: sequence %d behind watermark %d", ErrStaleEvent, ev.Seq, e.watermark)
		e.reject(ev, err)
		return err
	}
	if e.cfg.WAL != nil {
		if err := e.walAppend(ev.appendTo(e.encBuf[:0])); err != nil {
			return err // durability failure is fatal, not a quarantine
		}
	}
	e.watermark = ev.Seq
	e.stats.Admitted++
	return nil
}

// apply mutates the topology under ev's semantics, or explains why it
// cannot. It is a total deterministic function of (topology, event), which
// is what makes WAL replay converge: the same admitted prefix produces the
// same state and the same quarantine verdicts on every path.
func (e *Engine) apply(ev Event) error {
	t := e.topo
	switch ev.Kind {
	case KindJoin:
		if t.alive(ev.Node) {
			return fmt.Errorf("%w: join of live node %d", ErrInvalidEvent, ev.Node)
		}
		t.join(ev.Node, geom.Point{X: ev.X, Y: ev.Y})
	case KindLeave, KindCrash:
		if !t.alive(ev.Node) {
			return fmt.Errorf("%w: %s of absent node %d", ErrInvalidEvent, ev.Kind, ev.Node)
		}
		t.depart(ev.Node)
	case KindEdgeUp:
		if !t.alive(ev.Node) || !t.alive(ev.Peer) {
			return fmt.Errorf("%w: edge-up %d-%d with an absent endpoint", ErrInvalidEvent, ev.Node, ev.Peer)
		}
		if t.hasEdge(ev.Node, ev.Peer) {
			return fmt.Errorf("%w: edge %d-%d already present", ErrInvalidEvent, ev.Node, ev.Peer)
		}
		t.edgeUp(ev.Node, ev.Peer)
	case KindEdgeDown:
		if !t.alive(ev.Node) || !t.alive(ev.Peer) {
			return fmt.Errorf("%w: edge-down %d-%d with an absent endpoint", ErrInvalidEvent, ev.Node, ev.Peer)
		}
		if !t.hasEdge(ev.Node, ev.Peer) {
			return fmt.Errorf("%w: edge %d-%d not present", ErrInvalidEvent, ev.Node, ev.Peer)
		}
		t.edgeDown(ev.Node, ev.Peer)
	case KindMove:
		if !t.alive(ev.Node) {
			return fmt.Errorf("%w: move of absent node %d", ErrInvalidEvent, ev.Node)
		}
		t.move(ev.Node, geom.Point{X: ev.X, Y: ev.Y})
	}
	e.stats.Applied++
	e.coverStale = true
	return nil
}

// applyOne applies and quarantines on failure.
func (e *Engine) applyOne(ev Event) error {
	if err := e.apply(ev); err != nil {
		e.reject(ev, err)
		return err
	}
	return nil
}

// Ingest admits ev and enqueues it for batched application. Mobility ticks
// coalesce last-write-wins against a pending tick of the same node when no
// later pending event references that node — a window in which replacing
// the tick provably reaches the same final topology, because a node's
// derived edges depend only on its latest position. When the queue reaches
// MaxPending the whole batch is applied at once (bounded staleness: one
// re-election amortizes the burst).
//
// The returned error reports this event's admission verdict (nil means
// admitted); apply-time verdicts of batched events surface through
// Quarantined and Stats.
func (e *Engine) Ingest(ev Event) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.publish()
	if err := e.admit(ev); err != nil {
		return err
	}
	if ev.Kind == KindMove && !e.cfg.NoCoalesce {
		for i := len(e.pending) - 1; i >= 0; i-- {
			p := e.pending[i]
			if p.Node == ev.Node || (p.Kind.pairwise() && p.Peer == ev.Node) {
				if p.Kind == KindMove && p.Node == ev.Node {
					e.pending[i] = ev
					e.stats.Coalesced++
					return nil
				}
				break
			}
		}
	}
	e.pending = append(e.pending, ev)
	if len(e.pending) >= e.cfg.MaxPending {
		e.flush()
	}
	return nil
}

// Step is the low-latency path: admit ev and apply it (after any pending
// batch) immediately. The returned error is the event's full admission or
// application verdict.
func (e *Engine) Step(ev Event) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.publish()
	if err := e.admit(ev); err != nil {
		return err
	}
	e.flush()
	return e.applyOne(ev)
}

// Flush applies every pending event in admission order.
func (e *Engine) Flush() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.flush()
	e.publish()
}

func (e *Engine) flush() {
	for _, ev := range e.pending {
		_ = e.applyOne(ev) // verdict recorded in the quarantine
	}
	e.pending = e.pending[:0]
}

// elect re-runs the canonical election over the live topology. The verdict
// function is cache.Deletable memoized by neighborhood fingerprint: a
// vertex whose k-hop residual neighborhood is unchanged since any earlier
// election reuses its verdict, so an event's cost concentrates inside its
// ≤⌈τ/2⌉-hop dirty region — every fingerprint outside it is unchanged.
// Memo hits cannot change the outcome (fingerprint equality implies
// identically labeled neighborhoods), so the cover stays a pure function
// of the topology; the dccdebug build re-derives every hit to prove it.
func (e *Engine) elect() {
	if !e.coverStale {
		return
	}
	sp := e.tel.StartSpan("stream.election")
	defer sp.End()
	live := e.topo.liveGraph()
	cache := vpt.NewCache(live, e.tau)
	cache.Instrument(e.tel)
	view := cache.View()
	scratch := graph.NewScratch(live)
	test := func(v graph.NodeID) bool {
		fp := view.NeighborhoodFingerprint(v, e.k, scratch)
		key := memoKey{v: v, fp: fp}
		if verdict, ok := e.memo[key]; ok {
			e.stats.MemoHits++
			debugCheckMemoVerdict(cache, v, verdict, scratch, e.tester)
			cache.Store(v, verdict)
			return verdict
		}
		e.stats.MemoMisses++
		verdict := cache.Deletable(v)
		if len(e.memo) >= e.memoLimit {
			e.memo = make(map[memoKey]bool)
			e.stats.MemoResets++
		}
		e.memo[key] = verdict
		return verdict
	}
	net := core.Network{G: live, Boundary: e.boundary, BoundaryCycles: e.cycles}
	_, tests := core.CanonicalElect(net, e.seed, cache, test)
	e.stats.Elections++
	e.stats.Tests += tests
	e.cover = e.cover[:0]
	for _, v := range cache.LiveNodes() {
		if !e.boundary[v] {
			e.cover = append(e.cover, v)
		}
	}
	e.coverStale = false
}

// Cover flushes pending events, re-elects if needed, and returns the
// active coverage set: the live internal nodes the canonical schedule
// keeps, sorted by id.
func (e *Engine) Cover() []graph.NodeID {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.flush()
	e.elect()
	e.publish()
	return append([]graph.NodeID(nil), e.cover...)
}

// Watermark returns the highest admitted sequence number.
func (e *Engine) Watermark() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.watermark
}

// PendingLen reports the backpressure queue depth.
func (e *Engine) PendingLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// LiveCount reports the number of live nodes (boundary included).
func (e *Engine) LiveCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.topo.liveCount()
}

// Stats returns a snapshot of the work counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Quarantined returns a copy of the rejected-event ring, oldest first.
func (e *Engine) Quarantined() []Rejection {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Rejection(nil), e.quarantine...)
}

// MaterializedNetwork flushes pending events and returns the live topology
// as a batch-schedulable network — the object the differential convergence
// suite feeds to core.Schedule.
func (e *Engine) MaterializedNetwork() core.Network {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.flush()
	e.publish()
	cycles := make([][]graph.NodeID, len(e.cycles))
	for i, c := range e.cycles {
		cycles[i] = append([]graph.NodeID(nil), c...)
	}
	boundary := make(map[graph.NodeID]bool, len(e.boundarySorted))
	for _, v := range e.boundarySorted {
		boundary[v] = true
	}
	return core.Network{G: e.topo.liveGraph(), Boundary: boundary, BoundaryCycles: cycles}
}

// NodeAt is a positioned node, the vocabulary of CoverFingerprintOf.
type NodeAt struct {
	ID   graph.NodeID
	X, Y float64
}

// LiveNodesAt flushes pending events and returns the live nodes with their
// current positions, sorted by id.
func (e *Engine) LiveNodesAt() []NodeAt {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.flush()
	e.publish()
	return e.liveNodesAt()
}

func (e *Engine) liveNodesAt() []NodeAt {
	t := e.topo
	out := make([]NodeAt, 0, t.liveCount())
	for i, v := range t.ids {
		if !t.dead[i] {
			out = append(out, NodeAt{ID: v, X: t.pos[i].X, Y: t.pos[i].Y})
		}
	}
	return out
}

// CoverFingerprintOf hashes a (configuration, live topology, cover) triple
// into the convergence identity. Exported so shadow models — the
// differential suite's independently maintained topology plus a batch
// core.Schedule cover — can compute the exact fingerprint the engine must
// match. Inputs are canonicalized (sorted, normalized) internally.
func CoverFingerprintOf(tau int, seed int64, nodes []NodeAt, edges []graph.Edge, cover []graph.NodeID) [32]byte {
	ns := append([]NodeAt(nil), nodes...)
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
	es := make([]graph.Edge, len(edges))
	for i, e := range edges {
		es[i] = graph.NormEdge(e.U, e.V)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	cv := append([]graph.NodeID(nil), cover...)
	sort.Slice(cv, func(i, j int) bool { return cv[i] < cv[j] })

	b := []byte("dcc-cover-v1")
	b = binary.AppendUvarint(b, uint64(tau))
	b = binary.LittleEndian.AppendUint64(b, uint64(seed))
	b = binary.AppendUvarint(b, uint64(len(ns)))
	for _, n := range ns {
		b = binary.AppendUvarint(b, uint64(n.ID))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(n.X))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(n.Y))
	}
	b = binary.AppendUvarint(b, uint64(len(es)))
	for _, e := range es {
		b = binary.AppendUvarint(b, uint64(e.U))
		b = binary.AppendUvarint(b, uint64(e.V))
	}
	b = binary.AppendUvarint(b, uint64(len(cv)))
	for _, v := range cv {
		b = binary.AppendUvarint(b, uint64(v))
	}
	return sha256.Sum256(b)
}

// CoverFingerprint flushes, re-elects, and returns the engine's side of
// the convergence identity: the hash of (tau, seed, live nodes with
// positions, live edges, cover).
func (e *Engine) CoverFingerprint() [32]byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.flush()
	e.elect()
	e.publish()
	return CoverFingerprintOf(e.tau, e.seed, e.liveNodesAt(), e.topo.liveGraph().Edges(), e.cover)
}

// stateBytes is the canonical encoding of the full engine state — universe
// (dead nodes included), configuration, watermark — everything crash
// recovery must reproduce exactly. The snapshot embeds sha256(stateBytes)
// so a decoded snapshot self-verifies, and StateFingerprint exposes the
// same hash as the kill-at-any-byte identity.
func (e *Engine) stateBytes() []byte {
	t := e.topo
	b := []byte("dcc-state-v1")
	b = binary.AppendUvarint(b, uint64(e.tau))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.seed))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.radius))
	b = binary.AppendUvarint(b, e.watermark)
	b = binary.AppendUvarint(b, uint64(len(e.boundarySorted)))
	for _, v := range e.boundarySorted {
		b = binary.AppendUvarint(b, uint64(v))
	}
	b = binary.AppendUvarint(b, uint64(len(e.cycles)))
	for _, cyc := range e.cycles {
		b = binary.AppendUvarint(b, uint64(len(cyc)))
		for _, v := range cyc {
			b = binary.AppendUvarint(b, uint64(v))
		}
	}
	b = binary.AppendUvarint(b, uint64(len(t.ids)))
	for i, v := range t.ids {
		b = binary.AppendUvarint(b, uint64(v))
		if t.dead[i] {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.pos[i].X))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.pos[i].Y))
	}
	b = binary.AppendUvarint(b, uint64(len(t.edges)))
	for _, ed := range t.edges {
		b = binary.AppendUvarint(b, uint64(ed.U))
		b = binary.AppendUvarint(b, uint64(ed.V))
	}
	return b
}

// StateFingerprint flushes pending events and hashes the full engine
// state. Two engines with equal state fingerprints are observationally
// identical: same universe, same liveness, same watermark, and therefore
// (by canonical election) the same cover for the rest of time.
func (e *Engine) StateFingerprint() [32]byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.flush()
	e.publish()
	return sha256.Sum256(e.stateBytes())
}
