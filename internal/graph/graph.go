// Package graph provides the undirected-graph substrate used throughout the
// repository: adjacency queries, BFS shortest-path trees, k-hop
// neighbourhoods, connectivity, induced subgraphs and vertex deletion.
//
// Graphs are immutable after construction (build with a Builder; derive new
// graphs with InducedSubgraph or DeleteVertices). Immutability keeps the
// edge indexing stable, which the cycle-space algebra in internal/cycles
// relies on: a cycle in graph G is a GF(2) vector over G's edge indices.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. IDs are arbitrary non-negative integers chosen
// by the caller; they need not be contiguous.
type NodeID int

// Edge is an undirected edge between two nodes, stored with U < V.
type Edge struct {
	U, V NodeID
}

// NormEdge returns the edge (u,v) normalized so that U < V.
func NormEdge(u, v NodeID) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Builder accumulates nodes and edges and produces an immutable Graph.
// Adding an edge implicitly adds its endpoints. Duplicate edges and
// self-loops are rejected at Build time via error.
type Builder struct {
	nodes map[NodeID]struct{}
	edges map[Edge]struct{}
	order []Edge // insertion order, for deterministic edge indexing
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		nodes: make(map[NodeID]struct{}),
		edges: make(map[Edge]struct{}),
	}
}

// AddNode adds an isolated node (no-op if present).
func (b *Builder) AddNode(v NodeID) {
	b.nodes[v] = struct{}{}
}

// AddEdge adds the undirected edge {u,v}, implicitly adding both endpoints.
// Duplicate additions are no-ops. Self-loops are recorded and reported as an
// error by Build.
func (b *Builder) AddEdge(u, v NodeID) {
	e := NormEdge(u, v)
	b.nodes[u] = struct{}{}
	b.nodes[v] = struct{}{}
	if _, dup := b.edges[e]; dup {
		return
	}
	b.edges[e] = struct{}{}
	b.order = append(b.order, e)
}

// Build constructs the immutable Graph. It returns an error if a self-loop
// was added.
func (b *Builder) Build() (*Graph, error) {
	ids := make([]NodeID, 0, len(b.nodes))
	for v := range b.nodes {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	g := &Graph{ids: ids}
	g.adj = make([][]int32, len(ids))
	g.adjEdge = make([][]int32, len(ids))
	// Deterministic edge indexing: sort edges by endpoints rather than
	// insertion order so that logically equal graphs index identically.
	edges := append([]Edge(nil), b.order...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	g.edges = edges
	g.edgeU = make([]int32, len(edges))
	g.edgeV = make([]int32, len(edges))
	for i, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at node %d", e.U)
		}
		ui, vi := g.internalIndex(e.U), g.internalIndex(e.V)
		g.edgeU[i], g.edgeV[i] = int32(ui), int32(vi)
		g.adj[ui] = append(g.adj[ui], int32(vi))
		g.adjEdge[ui] = append(g.adjEdge[ui], int32(i))
		g.adj[vi] = append(g.adj[vi], int32(ui))
		g.adjEdge[vi] = append(g.adjEdge[vi], int32(i))
	}
	for i := range g.adj {
		a, ae := g.adj[i], g.adjEdge[i]
		sort.Sort(&adjPair{nbrs: a, edges: ae})
	}
	debugCheckGraph(g) // no-op unless built with -tags dccdebug
	return g, nil
}

// adjPair sorts an adjacency list and its parallel edge-index list together.
type adjPair struct {
	nbrs  []int32
	edges []int32
}

func (p *adjPair) Len() int           { return len(p.nbrs) }
func (p *adjPair) Less(i, j int) bool { return p.nbrs[i] < p.nbrs[j] }
func (p *adjPair) Swap(i, j int) {
	p.nbrs[i], p.nbrs[j] = p.nbrs[j], p.nbrs[i]
	p.edges[i], p.edges[j] = p.edges[j], p.edges[i]
}

// MustBuild is Build that panics on error; intended for tests and for
// construction from inputs already known to be loop-free.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds a graph directly from an edge list plus optional isolated
// nodes.
func FromEdges(edges []Edge, isolated ...NodeID) (*Graph, error) {
	b := NewBuilder()
	for _, v := range isolated {
		b.AddNode(v)
	}
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// Graph is an immutable undirected simple graph.
//
// The representation is fully array-based (no maps): node IDs are kept
// sorted, so ID-to-index resolution is a binary search, and an edge's index
// is found by a binary search in the sorted adjacency list of an endpoint.
// Map-free construction is what makes the compact-subgraph path (compact.go)
// cheap enough to run inside the deletability hot loop.
type Graph struct {
	ids     []NodeID
	adj     [][]int32 // adjacency by internal index, sorted
	adjEdge [][]int32 // edge index parallel to adj
	edges   []Edge
	edgeU   []int32 // internal index of edges[i].U (dense, for scan loops)
	edgeV   []int32 // internal index of edges[i].V
}

// index returns the dense index of v via binary search over the sorted ID
// list, with ok reporting membership.
func (g *Graph) index(v NodeID) (int, bool) {
	lo, hi := 0, len(g.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.ids[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(g.ids) && g.ids[lo] == v {
		return lo, true
	}
	return 0, false
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.ids) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Nodes returns all node IDs in increasing order.
//
// The slice is a fresh copy on every call — callers may retain it, mutate
// it, or filter it in place without aliasing graph internals or the result
// of any other Nodes call. Code relies on this guarantee (e.g. the dist
// runtime's in-place live-node filter), so it must survive refactors.
func (g *Graph) Nodes() []NodeID {
	return append([]NodeID(nil), g.ids...)
}

// HasNode reports whether v is a node of the graph.
func (g *Graph) HasNode(v NodeID) bool {
	_, ok := g.index(v)
	return ok
}

// IndexOf returns the dense index of v in [0, NumNodes()) — the position of
// v in the sorted ID list — with ok reporting membership. Dense indices are
// stable for the graph's lifetime and are how overlay-aware callers (the
// vpt verdict cache) key per-node state without maps.
func (g *Graph) IndexOf(v NodeID) (int, bool) { return g.index(v) }

// NodeAt returns the node ID with dense index i (inverse of IndexOf).
func (g *Graph) NodeAt(i int) NodeID { return g.ids[i] }

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.EdgeIndex(u, v)
	return ok
}

// EdgeIndex returns the stable index of edge {u,v} in [0, NumEdges()). It
// resolves the endpoints and binary-searches the sorted adjacency list of
// the lower-degree endpoint.
func (g *Graph) EdgeIndex(u, v NodeID) (int, bool) {
	ui, ok := g.index(u)
	if !ok {
		return 0, false
	}
	vi, ok := g.index(v)
	if !ok {
		return 0, false
	}
	if len(g.adj[vi]) < len(g.adj[ui]) {
		ui, vi = vi, ui
	}
	a := g.adj[ui]
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < int32(vi) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a) && a[lo] == int32(vi) {
		return int(g.adjEdge[ui][lo]), true
	}
	return 0, false
}

// EdgeAt returns the edge with the given index.
func (g *Graph) EdgeAt(i int) Edge { return g.edges[i] }

// Edges returns a copy of the edge list in index order.
func (g *Graph) Edges() []Edge {
	return append([]Edge(nil), g.edges...)
}

// Degree returns the degree of v (0 if v is not in the graph).
func (g *Graph) Degree(v NodeID) int {
	i, ok := g.index(v)
	if !ok {
		return 0
	}
	return len(g.adj[i])
}

// Neighbors returns the neighbours of v in increasing ID order. The slice is
// a copy. Returns nil if v is not in the graph.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	i, ok := g.index(v)
	if !ok {
		return nil
	}
	out := make([]NodeID, len(g.adj[i]))
	for j, w := range g.adj[i] {
		out[j] = g.ids[w]
	}
	return out
}

// internalIndex returns the dense index of v, panicking if absent. Reserved
// for internal callers that have already validated membership.
func (g *Graph) internalIndex(v NodeID) int {
	i, ok := g.index(v)
	if !ok {
		panic(fmt.Sprintf("graph: node %d not in graph", v))
	}
	return i
}

// BFSTree holds a breadth-first shortest-path tree rooted at Root. Parent
// and Depth are indexed by internal node index; unreachable nodes have
// Depth -1.
type BFSTree struct {
	g      *Graph
	Root   NodeID
	parent []int32
	depth  []int32
}

// BFS computes a shortest-path tree from root, visiting neighbours in
// increasing ID order (deterministic). maxDepth < 0 means unbounded.
//
//lint:ignore hotalloc returns a freshly allocated tree by contract (it must outlive any scratch); hot callers only run it on the compact neighbourhood graph, bounding the cost by the ball order
func (g *Graph) BFS(root NodeID, maxDepth int) *BFSTree {
	r := g.internalIndex(root)
	t := &BFSTree{
		g:      g,
		Root:   root,
		parent: make([]int32, len(g.ids)),
		depth:  make([]int32, len(g.ids)),
	}
	for i := range t.depth {
		t.depth[i] = -1
		t.parent[i] = -1
	}
	t.depth[r] = 0
	queue := make([]int32, 0, len(g.ids))
	queue = append(queue, int32(r))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if maxDepth >= 0 && int(t.depth[u]) >= maxDepth {
			continue
		}
		for _, w := range g.adj[u] {
			if t.depth[w] < 0 {
				t.depth[w] = t.depth[u] + 1
				t.parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	return t
}

// Depth returns the BFS depth of v, or -1 if unreachable (or outside the
// explored horizon).
func (t *BFSTree) Depth(v NodeID) int {
	i, ok := t.g.index(v)
	if !ok {
		return -1
	}
	return int(t.depth[i])
}

// Parent returns the BFS parent of v and true, or 0,false for the root and
// unreachable nodes.
func (t *BFSTree) Parent(v NodeID) (NodeID, bool) {
	i, ok := t.g.index(v)
	if !ok || t.parent[i] < 0 {
		return 0, false
	}
	return t.g.ids[t.parent[i]], true
}

// PathToRoot returns the node sequence v, parent(v), ..., root. Returns nil
// if v is unreachable.
func (t *BFSTree) PathToRoot(v NodeID) []NodeID {
	i, ok := t.g.index(v)
	if !ok || t.depth[i] < 0 {
		return nil
	}
	path := make([]NodeID, 0, t.depth[i]+1)
	for i >= 0 {
		path = append(path, t.g.ids[i])
		i = int(t.parent[i])
	}
	return path
}

// LCA returns the lowest common ancestor of u and v in the tree, or false if
// either is unreachable.
func (t *BFSTree) LCA(u, v NodeID) (NodeID, bool) {
	ui, uok := t.g.index(u)
	vi, vok := t.g.index(v)
	if !uok || !vok || t.depth[ui] < 0 || t.depth[vi] < 0 {
		return 0, false
	}
	a, b := int32(ui), int32(vi)
	for t.depth[a] > t.depth[b] {
		a = t.parent[a]
	}
	for t.depth[b] > t.depth[a] {
		b = t.parent[b]
	}
	for a != b {
		a = t.parent[a]
		b = t.parent[b]
	}
	return t.g.ids[a], true
}

// KHopNeighbors returns all nodes within k hops of v, excluding v itself,
// in increasing ID order.
func (g *Graph) KHopNeighbors(v NodeID, k int) []NodeID {
	if k <= 0 || !g.HasNode(v) {
		return nil
	}
	t := g.BFS(v, k)
	out := make([]NodeID, 0, 16)
	for i, d := range t.depth {
		if d > 0 {
			out = append(out, g.ids[i])
		}
	}
	return out
}

// InducedSubgraph returns the subgraph induced by the given node set. Nodes
// absent from g are ignored. Edge indices of the result are independent of
// g's.
func (g *Graph) InducedSubgraph(nodes []NodeID) *Graph {
	s := getScratch(len(g.ids))
	defer putScratch(s)
	keep := s.ball[:0]
	for _, v := range nodes {
		if i, ok := g.index(v); ok {
			keep = append(keep, int32(i))
		}
	}
	keep = sortDedupIndices(keep)
	sub := g.compactInduced(keep, s)
	s.ball = keep[:0]
	return sub
}

// DeleteVertices returns a new graph with the given vertices (and their
// incident edges) removed.
func (g *Graph) DeleteVertices(del []NodeID) *Graph {
	s := getScratch(len(g.ids))
	defer putScratch(s)
	ep := s.nextEpoch()
	for _, v := range del {
		if i, ok := g.index(v); ok {
			s.stamp[i] = ep
		}
	}
	keep := s.ball[:0]
	for i := range g.ids {
		if s.stamp[i] != ep {
			keep = append(keep, int32(i))
		}
	}
	sub := g.compactInduced(keep, s)
	s.ball = keep[:0]
	return sub
}

// DeleteEdges returns a new graph with the given edges removed (endpoints
// retained).
func (g *Graph) DeleteEdges(del []Edge) *Graph {
	drop := make(map[Edge]struct{}, len(del))
	for _, e := range del {
		drop[NormEdge(e.U, e.V)] = struct{}{}
	}
	b := NewBuilder()
	for _, v := range g.ids {
		b.AddNode(v)
	}
	for _, e := range g.edges {
		if _, gone := drop[e]; gone {
			continue
		}
		b.AddEdge(e.U, e.V)
	}
	return b.MustBuild()
}

// IsConnected reports whether the graph is connected. The empty graph and
// single-node graphs are connected. Runs on the pooled epoch-stamped
// scratch, so it is allocation-free once the pool is warm — it sits on the
// deletability hot path (every neighbourhood verdict starts with a
// connectivity check).
func (g *Graph) IsConnected() bool {
	if len(g.ids) <= 1 {
		return true
	}
	s := getScratch(len(g.ids))
	defer putScratch(s)
	return g.flood(s, 0, s.nextEpoch()) == len(g.ids)
}

// flood stamps every vertex reachable from start (by internal index) with
// epoch ep and returns the number of newly stamped vertices; already
// stamped regions are skipped, so repeated floods under one epoch
// enumerate components. The traversal borrows s.queue.
func (g *Graph) flood(s *Scratch, start int32, ep int32) int {
	if s.stamp[start] == ep {
		return 0
	}
	queue := s.queue[:0]
	s.stamp[start] = ep
	queue = append(queue, start)
	count := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		count++
		for _, w := range g.adj[u] {
			if s.stamp[w] != ep {
				s.stamp[w] = ep
				queue = append(queue, w)
			}
		}
	}
	s.queue = queue[:0]
	return count
}

// ConnectedComponents returns the node sets of all connected components,
// each sorted, ordered by their smallest node ID.
func (g *Graph) ConnectedComponents() [][]NodeID {
	seen := make([]bool, len(g.ids))
	var comps [][]NodeID
	for i := range g.ids {
		if seen[i] {
			continue
		}
		var comp []NodeID
		stack := []int32{int32(i)}
		seen[i] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, g.ids[u])
			for _, w := range g.adj[u] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		sort.Slice(comp, func(a, b int) bool { return comp[a] < comp[b] })
		comps = append(comps, comp)
	}
	return comps
}

// NumComponents returns the number of connected components. Unlike
// ConnectedComponents it does not materialize the node sets: the count
// comes from repeated scratch floods, allocation-free once the pool is
// warm (CycleSpaceDim needs it inside the deletability hot loop).
func (g *Graph) NumComponents() int {
	n := len(g.ids)
	if n == 0 {
		return 0
	}
	s := getScratch(n)
	defer putScratch(s)
	ep := s.nextEpoch()
	comps := 0
	for i := range g.ids {
		if s.stamp[i] != ep {
			comps++
			g.flood(s, int32(i), ep)
		}
	}
	return comps
}

// CycleSpaceDim returns the dimension of the graph's cycle space,
// ν = m − n + c.
func (g *Graph) CycleSpaceDim() int {
	return g.NumEdges() - g.NumNodes() + g.NumComponents()
}

// TwoCore returns the subgraph obtained by repeatedly deleting vertices of
// degree < 2. The 2-core carries the entire cycle space of the graph, so
// cycle computations may be restricted to it.
//
//lint:ignore hotalloc transient peel buffers sized by the already-compacted neighbourhood graph, freed with the call; the kept-set and result construction reuse the pooled scratch via compactInduced
func (g *Graph) TwoCore() *Graph {
	deg := make([]int, len(g.ids))
	alive := make([]bool, len(g.ids))
	for i := range g.ids {
		deg[i] = len(g.adj[i])
		alive[i] = true
	}
	queue := make([]int32, 0)
	for i := range g.ids {
		if deg[i] < 2 {
			queue = append(queue, int32(i))
			alive[i] = false
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range g.adj[u] {
			if alive[w] {
				deg[w]--
				if deg[w] < 2 {
					alive[w] = false
					queue = append(queue, w)
				}
			}
		}
	}
	s := getScratch(len(g.ids))
	defer putScratch(s)
	keep := s.ball[:0]
	for i, ok := range alive {
		if ok {
			keep = append(keep, int32(i))
		}
	}
	sub := g.compactInduced(keep, s)
	s.ball = keep[:0]
	return sub
}

// ShortestPathLen returns the hop distance between u and v, or -1 if
// disconnected.
func (g *Graph) ShortestPathLen(u, v NodeID) int {
	if !g.HasNode(u) || !g.HasNode(v) {
		return -1
	}
	return g.BFS(u, -1).Depth(v)
}
