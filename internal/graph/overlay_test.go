package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// pickDead returns a random subset of g's nodes to delete.
func pickDead(r *rand.Rand, g *Graph, p float64) []NodeID {
	var del []NodeID
	for _, v := range g.Nodes() {
		if r.Float64() < p {
			del = append(del, v)
		}
	}
	return del
}

// TestCompactInducedMatchesBuilder pins the core structural claim of the
// incremental engine: compactInduced produces a Graph byte-identical (by
// reflect.DeepEqual on the unexported representation) to the one Builder
// constructs from the same nodes and edges.
func TestCompactInducedMatchesBuilder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(r, 4+r.Intn(40), 0.05+r.Float64()*0.3)
		var keep []int32
		var nodes []NodeID
		for i, v := range g.ids {
			if r.Float64() < 0.7 {
				keep = append(keep, int32(i))
				nodes = append(nodes, v)
			}
		}
		got := g.compactInduced(keep, NewScratch(g))

		b := NewBuilder()
		for _, v := range nodes {
			b.AddNode(v)
		}
		for _, e := range g.Edges() {
			if got.HasNode(e.U) && got.HasNode(e.V) {
				b.AddEdge(e.U, e.V)
			}
		}
		want := b.MustBuild()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: compactInduced differs from Builder\ngot:  %+v\nwant: %+v", trial, got, want)
		}
	}
}

// TestMaterializeMatchesDeleteVertices: the overlay's materialized remainder
// must be structurally identical to rebuilding via DeleteVertices.
func TestMaterializeMatchesDeleteVertices(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(r, 5+r.Intn(35), 0.1+r.Float64()*0.25)
		del := pickDead(r, g, 0.4)
		view := NewDeleteView(g)
		for _, v := range del {
			view.Delete(v)
		}
		got := view.Materialize()
		want := g.DeleteVertices(del)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Materialize differs from DeleteVertices(%v)", trial, del)
		}
		if view.NumLive() != want.NumNodes() {
			t.Fatalf("trial %d: NumLive = %d, want %d", trial, view.NumLive(), want.NumNodes())
		}
	}
}

// TestKHopBallMatchesKHopNeighbors: ball queries on the overlay must agree
// with KHopNeighbors on the rebuilt graph, for every live vertex and radius.
func TestKHopBallMatchesKHopNeighbors(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	s := NewScratch(nil)
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(r, 5+r.Intn(30), 0.1+r.Float64()*0.2)
		view := NewDeleteView(g)
		for _, v := range pickDead(r, g, 0.3) {
			view.Delete(v)
		}
		live := view.Materialize()
		for _, v := range live.Nodes() {
			for k := 1; k <= 3; k++ {
				got := view.KHopBall(v, k, s)
				want := live.KHopNeighbors(v, k)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: KHopBall(%d,%d) = %v, want %v", trial, v, k, got, want)
				}
			}
		}
	}
}

// TestExtractNeighborhoodMatchesInduced: Γ^k(v) extracted from the overlay
// must be structurally identical to InducedSubgraph(KHopNeighbors) on the
// materialized graph, and the direct neighbours must match LiveNeighbors.
func TestExtractNeighborhoodMatchesInduced(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	s := NewScratch(nil)
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(r, 5+r.Intn(30), 0.1+r.Float64()*0.2)
		view := NewDeleteView(g)
		for _, v := range pickDead(r, g, 0.3) {
			view.Delete(v)
		}
		live := view.Materialize()
		for _, v := range live.Nodes() {
			for k := 1; k <= 3; k++ {
				sub, direct := view.ExtractNeighborhood(v, k, s)
				want := live.InducedSubgraph(live.KHopNeighbors(v, k))
				if !reflect.DeepEqual(sub, want) {
					t.Fatalf("trial %d: ExtractNeighborhood(%d,%d) graph differs", trial, v, k)
				}
				wantDirect := view.LiveNeighbors(v)
				if len(direct) == 0 && len(wantDirect) == 0 {
					continue
				}
				if !reflect.DeepEqual(direct, wantDirect) {
					t.Fatalf("trial %d: direct neighbours of %d = %v, want %v", trial, v, direct, wantDirect)
				}
			}
		}
	}
}

// TestDeleteViewQueries covers the O(1) overlay accessors against the
// rebuilt graph.
func TestDeleteViewQueries(t *testing.T) {
	g := Grid(4, 4)
	view := NewDeleteView(g)
	if !view.Alive(5) || view.NumLive() != 16 {
		t.Fatal("fresh view should have all 16 vertices live")
	}
	if !view.Delete(5) {
		t.Fatal("Delete(5) on a live vertex should report true")
	}
	if view.Delete(5) {
		t.Fatal("double Delete should report false")
	}
	if view.Delete(999) {
		t.Fatal("Delete of an absent vertex should report false")
	}
	if view.Alive(5) || view.NumLive() != 15 {
		t.Fatal("vertex 5 should be dead")
	}
	live := g.DeleteVertices([]NodeID{5})
	if !reflect.DeepEqual(view.LiveNodes(), live.Nodes()) {
		t.Fatalf("LiveNodes = %v, want %v", view.LiveNodes(), live.Nodes())
	}
	for _, v := range live.Nodes() {
		if view.LiveDegree(v) != live.Degree(v) {
			t.Fatalf("LiveDegree(%d) = %d, want %d", v, view.LiveDegree(v), live.Degree(v))
		}
		got, want := view.LiveNeighbors(v), live.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("LiveNeighbors(%d) = %v, want %v", v, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("LiveNeighbors(%d) = %v, want %v", v, got, want)
			}
		}
	}
	if view.LiveNeighbors(5) != nil || view.LiveDegree(5) != 0 {
		t.Fatal("dead vertex should have no live neighbours")
	}
	if view.KHopBall(5, 2, NewScratch(g)) != nil {
		t.Fatal("KHopBall of a dead vertex should be nil")
	}
}

// TestDeleteViewRestore pins the re-insertion path node-join events take:
// Restore is the exact inverse of Delete — after delete+restore every query
// matches a never-deleted view — and revived vertices rejoin with all their
// base edges to live endpoints.
func TestDeleteViewRestore(t *testing.T) {
	g := Grid(4, 4)
	view := NewDeleteView(g)
	if view.Restore(5) {
		t.Fatal("Restore of a live vertex must report false")
	}
	if view.Restore(999) {
		t.Fatal("Restore of an absent vertex must report false")
	}
	if !view.Delete(5) || !view.Restore(5) {
		t.Fatal("delete+restore of a live vertex must both report true")
	}
	if view.Restore(5) {
		t.Fatal("double Restore must report false")
	}
	if !view.Alive(5) || view.NumLive() != 16 {
		t.Fatal("restored vertex must be live again")
	}
	if !reflect.DeepEqual(view.LiveNeighbors(5), g.Neighbors(5)) {
		t.Fatalf("restored vertex neighbours %v, want %v", view.LiveNeighbors(5), g.Neighbors(5))
	}

	// Randomized inverse law: delete a set, restore a subset, and compare
	// every query against a view that only ever deleted the difference.
	r := rand.New(rand.NewSource(23))
	s := NewScratch(nil)
	for trial := 0; trial < 30; trial++ {
		rg := randomGraph(r, 5+r.Intn(35), 0.1+r.Float64()*0.25)
		del := pickDead(r, rg, 0.5)
		revive := make(map[NodeID]bool)
		stillDead := make(map[NodeID]bool)
		for _, v := range del {
			if r.Float64() < 0.5 {
				revive[v] = true
			} else {
				stillDead[v] = true
			}
		}
		got := NewDeleteView(rg)
		for _, v := range del {
			got.Delete(v)
		}
		for _, v := range del {
			if revive[v] && !got.Restore(v) {
				t.Fatalf("trial %d: Restore(%d) of dead vertex reported false", trial, v)
			}
		}
		want := NewDeleteView(rg)
		for _, v := range del {
			if stillDead[v] {
				want.Delete(v)
			}
		}
		if got.NumLive() != want.NumLive() {
			t.Fatalf("trial %d: NumLive %d, want %d", trial, got.NumLive(), want.NumLive())
		}
		if !reflect.DeepEqual(got.Materialize(), want.Materialize()) {
			t.Fatalf("trial %d: delete+restore view materializes differently from direct deletion", trial)
		}
		for _, v := range want.LiveNodes() {
			if !reflect.DeepEqual(got.LiveNeighbors(v), want.LiveNeighbors(v)) {
				t.Fatalf("trial %d: LiveNeighbors(%d) differ after restore", trial, v)
			}
			for k := 1; k <= 3; k++ {
				a := got.KHopBall(v, k, s)
				b := want.KHopBall(v, k, s)
				if len(a) == 0 && len(b) == 0 {
					continue
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("trial %d: KHopBall(%d,%d) differs after restore", trial, v, k)
				}
			}
		}
	}
}

// TestNeighborhoodFingerprint pins the memo-key contract of the streaming
// verdict cache: the fingerprint is a pure function of the labelled k-hop
// neighbourhood — equal across structurally different base graphs that
// induce the same live neighbourhood, sensitive to any vertex or edge
// change inside the ball, insensitive to changes strictly outside it.
func TestNeighborhoodFingerprint(t *testing.T) {
	s := NewScratch(nil)

	// Dead and absent vertices hash to the reserved 0.
	g := Grid(3, 3)
	view := NewDeleteView(g)
	view.Delete(4)
	if view.NeighborhoodFingerprint(4, 2, s) != 0 || view.NeighborhoodFingerprint(99, 2, s) != 0 {
		t.Fatal("dead/absent fingerprint must be 0")
	}

	// Equality across base graphs: a view with dead vertices must
	// fingerprint like a fresh view over the materialized remainder.
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		rg := randomGraph(r, 5+r.Intn(35), 0.1+r.Float64()*0.25)
		v1 := NewDeleteView(rg)
		for _, v := range pickDead(r, rg, 0.3) {
			v1.Delete(v)
		}
		v2 := NewDeleteView(v1.Materialize())
		for _, v := range v1.LiveNodes() {
			for k := 1; k <= 3; k++ {
				a := v1.NeighborhoodFingerprint(v, k, s)
				b := v2.NeighborhoodFingerprint(v, k, s)
				if a != b {
					t.Fatalf("trial %d: fingerprint(%d,k=%d) differs across base graphs: %x vs %x", trial, v, k, a, b)
				}
				if a == 0 {
					t.Fatalf("trial %d: live vertex %d fingerprinted to the reserved 0", trial, v)
				}
			}
		}
	}

	// Sensitivity inside the ball vs. insensitivity outside it, on a path
	// where hop distances are unambiguous: 0-1-2-3-4-5.
	b := NewBuilder()
	for i := NodeID(0); i < 6; i++ {
		b.AddNode(i)
	}
	for i := NodeID(0); i < 5; i++ {
		b.AddEdge(i, i+1)
	}
	path := b.MustBuild()
	base := NewDeleteView(path)
	fp := base.NeighborhoodFingerprint(0, 2, s)
	inBall := NewDeleteView(path)
	inBall.Delete(2) // distance 2 from v=0: inside the ball
	if inBall.NeighborhoodFingerprint(0, 2, s) == fp {
		t.Fatal("deleting a ball vertex must change the fingerprint")
	}
	outside := NewDeleteView(path)
	outside.Delete(5) // distance 5 from v=0: outside the 2-hop ball
	if outside.NeighborhoodFingerprint(0, 2, s) != fp {
		t.Fatal("deleting outside the ball must not change the fingerprint")
	}
}

// TestScratchReuseAcrossGraphs: one Scratch must serve graphs of different
// sizes back to back without cross-contamination (epoch stamping).
func TestScratchReuseAcrossGraphs(t *testing.T) {
	s := NewScratch(nil)
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 3+r.Intn(50), 0.2)
		view := NewDeleteView(g)
		for _, v := range pickDead(r, g, 0.25) {
			view.Delete(v)
		}
		live := view.Materialize()
		for _, v := range live.Nodes() {
			sub, _ := view.ExtractNeighborhood(v, 2, s)
			want := live.InducedSubgraph(live.KHopNeighbors(v, 2))
			if !reflect.DeepEqual(sub, want) {
				t.Fatalf("trial %d: scratch reuse corrupted extraction at %d", trial, v)
			}
		}
	}
}
