//go:build dccdebug

package graph

import "fmt"

// debugChecks gates the deep structural invariant assertions; this build
// has them on (-tags dccdebug).
const debugChecks = true

// debugCheckGraph panics unless g satisfies every structural invariant the
// rest of the repository relies on: node IDs strictly sorted and densely
// indexed, edges normalized (U < V), strictly sorted and uniquely indexed
// (no duplicates), adjacency lists strictly sorted with a consistent
// parallel edge-index list, and the handshake sum matching the edge count.
// The static maprange analyzer can only approximate these properties;
// dccdebug builds check them on every construction.
func debugCheckGraph(g *Graph) {
	if len(g.idx) != len(g.ids) {
		panic(fmt.Sprintf("graph debug: %d ids but %d index entries", len(g.ids), len(g.idx)))
	}
	for i, v := range g.ids {
		if i > 0 && g.ids[i-1] >= v {
			panic(fmt.Sprintf("graph debug: ids not strictly sorted at %d: %d >= %d", i, g.ids[i-1], v))
		}
		if g.idx[v] != i {
			panic(fmt.Sprintf("graph debug: idx[%d] = %d, want %d", v, g.idx[v], i))
		}
	}
	if len(g.eidx) != len(g.edges) {
		panic(fmt.Sprintf("graph debug: %d edges but %d edge-index entries (duplicate edge?)", len(g.edges), len(g.eidx)))
	}
	for i, e := range g.edges {
		if e.U >= e.V {
			panic(fmt.Sprintf("graph debug: edge %d not normalized: {%d,%d}", i, e.U, e.V))
		}
		if i > 0 {
			p := g.edges[i-1]
			if p.U > e.U || (p.U == e.U && p.V >= e.V) {
				panic(fmt.Sprintf("graph debug: edges not strictly sorted at %d: {%d,%d} then {%d,%d}", i, p.U, p.V, e.U, e.V))
			}
		}
		if g.eidx[e] != i {
			panic(fmt.Sprintf("graph debug: eidx[{%d,%d}] = %d, want %d", e.U, e.V, g.eidx[e], i))
		}
	}
	total := 0
	for i := range g.adj {
		a, ae := g.adj[i], g.adjEdge[i]
		if len(a) != len(ae) {
			panic(fmt.Sprintf("graph debug: node %d: %d neighbours but %d edge indices", g.ids[i], len(a), len(ae)))
		}
		for j, w := range a {
			if j > 0 && a[j-1] >= w {
				panic(fmt.Sprintf("graph debug: adjacency of %d not strictly sorted at %d (duplicate edge?)", g.ids[i], j))
			}
			if int(ae[j]) < 0 || int(ae[j]) >= len(g.edges) {
				panic(fmt.Sprintf("graph debug: node %d: edge index %d out of range", g.ids[i], ae[j]))
			}
			if got, want := g.edges[ae[j]], NormEdge(g.ids[i], g.ids[w]); got != want {
				panic(fmt.Sprintf("graph debug: node %d neighbour %d: adjEdge says {%d,%d}, want {%d,%d}",
					g.ids[i], g.ids[w], got.U, got.V, want.U, want.V))
			}
		}
		total += len(a)
	}
	if total != 2*len(g.edges) {
		panic(fmt.Sprintf("graph debug: handshake sum %d != 2·%d edges", total, len(g.edges)))
	}
}
