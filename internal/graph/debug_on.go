//go:build dccdebug

package graph

import "fmt"

// debugChecks gates the deep structural invariant assertions; this build
// has them on (-tags dccdebug).
const debugChecks = true

// debugCheckGraph panics unless g satisfies every structural invariant the
// rest of the repository relies on: node IDs strictly sorted, edges
// normalized (U < V), strictly sorted and uniquely indexed (no duplicates),
// dense endpoint arrays consistent with the edge list, adjacency lists
// strictly sorted with a consistent parallel edge-index list, and the
// handshake sum matching the edge count. The static maprange analyzer can
// only approximate these properties; dccdebug builds check them on every
// construction.
func debugCheckGraph(g *Graph) {
	for i, v := range g.ids {
		if i > 0 && g.ids[i-1] >= v {
			panic(fmt.Sprintf("graph debug: ids not strictly sorted at %d: %d >= %d", i, g.ids[i-1], v))
		}
	}
	if len(g.edgeU) != len(g.edges) || len(g.edgeV) != len(g.edges) {
		panic(fmt.Sprintf("graph debug: %d edges but %d/%d endpoint entries", len(g.edges), len(g.edgeU), len(g.edgeV)))
	}
	for i, e := range g.edges {
		if e.U >= e.V {
			panic(fmt.Sprintf("graph debug: edge %d not normalized: {%d,%d}", i, e.U, e.V))
		}
		if i > 0 {
			p := g.edges[i-1]
			if p.U > e.U || (p.U == e.U && p.V >= e.V) {
				panic(fmt.Sprintf("graph debug: edges not strictly sorted at %d: {%d,%d} then {%d,%d}", i, p.U, p.V, e.U, e.V))
			}
		}
		ui, uok := g.index(e.U)
		vi, vok := g.index(e.V)
		if !uok || !vok {
			panic(fmt.Sprintf("graph debug: edge %d endpoint missing from id list: {%d,%d}", i, e.U, e.V))
		}
		if int(g.edgeU[i]) != ui || int(g.edgeV[i]) != vi {
			panic(fmt.Sprintf("graph debug: edge %d endpoint arrays say (%d,%d), want (%d,%d)",
				i, g.edgeU[i], g.edgeV[i], ui, vi))
		}
	}
	total := 0
	for i := range g.adj {
		a, ae := g.adj[i], g.adjEdge[i]
		if len(a) != len(ae) {
			panic(fmt.Sprintf("graph debug: node %d: %d neighbours but %d edge indices", g.ids[i], len(a), len(ae)))
		}
		for j, w := range a {
			if j > 0 && a[j-1] >= w {
				panic(fmt.Sprintf("graph debug: adjacency of %d not strictly sorted at %d (duplicate edge?)", g.ids[i], j))
			}
			if int(ae[j]) < 0 || int(ae[j]) >= len(g.edges) {
				panic(fmt.Sprintf("graph debug: node %d: edge index %d out of range", g.ids[i], ae[j]))
			}
			if got, want := g.edges[ae[j]], NormEdge(g.ids[i], g.ids[w]); got != want {
				panic(fmt.Sprintf("graph debug: node %d neighbour %d: adjEdge says {%d,%d}, want {%d,%d}",
					g.ids[i], g.ids[w], got.U, got.V, want.U, want.V))
			}
		}
		total += len(a)
	}
	if total != 2*len(g.edges) {
		panic(fmt.Sprintf("graph debug: handshake sum %d != 2·%d edges", total, len(g.edges)))
	}
}
