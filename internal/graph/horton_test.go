package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// validateCandidate checks that the reported edge set forms a simple cycle
// of the reported length passing through the root.
func validateCandidate(t *testing.T, g *Graph, root NodeID, length int, edges []int32) {
	t.Helper()
	if len(edges) != length {
		t.Fatalf("edge count %d != reported length %d", len(edges), length)
	}
	deg := make(map[NodeID]int)
	seen := make(map[int32]bool)
	for _, ei := range edges {
		if seen[ei] {
			t.Fatalf("duplicate edge %d in candidate", ei)
		}
		seen[ei] = true
		e := g.EdgeAt(int(ei))
		deg[e.U]++
		deg[e.V]++
	}
	if deg[root] != 2 {
		t.Fatalf("root %d has degree %d in candidate", root, deg[root])
	}
	for v, d := range deg {
		if d != 2 {
			t.Fatalf("vertex %d has degree %d in candidate", v, d)
		}
	}
	// Connectivity of the candidate edge set (single cycle, not a union).
	sub := NewBuilder()
	for ei := range seen {
		e := g.EdgeAt(int(ei))
		sub.AddEdge(e.U, e.V)
	}
	if !sub.MustBuild().IsConnected() {
		t.Fatal("candidate is a disjoint union of cycles")
	}
}

func TestHortonCandidatesAreCycles(t *testing.T) {
	graphs := map[string]*Graph{
		"K5":                Complete(5),
		"C7":                Cycle(7),
		"grid":              Grid(4, 4),
		"triangulated grid": TriangulatedGrid(4, 4),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			count := 0
			g.ForEachHortonCandidate(-1, func(root NodeID, length int, edges []int32) bool {
				validateCandidate(t, g, root, length, edges)
				count++
				return true
			})
			if count == 0 {
				t.Fatal("no candidates on a cyclic graph")
			}
		})
	}
}

func TestHortonCandidatesEmptyOnForest(t *testing.T) {
	Path(6).ForEachHortonCandidate(-1, func(NodeID, int, []int32) bool {
		t.Fatal("candidate on a tree")
		return true
	})
}

func TestHortonCandidatesRespectMaxLen(t *testing.T) {
	g := Grid(5, 5)
	g.ForEachHortonCandidate(4, func(_ NodeID, length int, _ []int32) bool {
		if length > 4 {
			t.Fatalf("candidate length %d exceeds bound", length)
		}
		return true
	})
	// A C8 has no candidates below its girth.
	Cycle(8).ForEachHortonCandidate(7, func(NodeID, int, []int32) bool {
		t.Fatal("candidate below girth reported")
		return true
	})
}

func TestHortonCandidateBufferReuseSafe(t *testing.T) {
	// The callback buffer is reused; capturing it without copying is a
	// documented misuse. Verify copies are stable by checking that every
	// copied candidate is still a valid cycle afterwards.
	g := TriangulatedGrid(3, 3)
	type cand struct {
		root   NodeID
		length int
		edges  []int32
	}
	var all []cand
	g.ForEachHortonCandidate(-1, func(root NodeID, length int, edges []int32) bool {
		cp := make([]int32, len(edges))
		copy(cp, edges)
		all = append(all, cand{root: root, length: length, edges: cp})
		return true
	})
	for _, c := range all {
		validateCandidate(t, g, c.root, c.length, c.edges)
	}
}

func TestHortonSpansCycleSpace(t *testing.T) {
	// The unbounded candidate set must span the full cycle space: it
	// contains a minimum cycle basis (Horton 1987). Rank check via simple
	// GF(2) elimination over edge sets.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		n := 10
		for i := 1; i < n; i++ {
			b.AddEdge(NodeID(i), NodeID(r.Intn(i)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.3 {
					b.AddEdge(NodeID(i), NodeID(j))
				}
			}
		}
		g := b.MustBuild()
		rows := [][]uint64{}
		wordLen := (g.NumEdges() + 63) / 64
		insert := func(edges []int32) {
			v := make([]uint64, wordLen)
			for _, e := range edges {
				v[e/64] ^= 1 << (uint(e) % 64)
			}
			for _, row := range rows {
				p := firstBit(v)
				if p < 0 {
					return
				}
				if firstBit(row) == p {
					for i := range v {
						v[i] ^= row[i]
					}
				}
			}
			if firstBit(v) >= 0 {
				rows = append(rows, v)
				// Keep rows sorted by pivot for the simple reduction above.
				for i := len(rows) - 1; i > 0 && firstBit(rows[i-1]) > firstBit(rows[i]); i-- {
					rows[i-1], rows[i] = rows[i], rows[i-1]
				}
			}
		}
		g.ForEachHortonCandidate(-1, func(_ NodeID, _ int, edges []int32) bool {
			insert(edges)
			return true
		})
		return len(rows) == g.CycleSpaceDim()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func firstBit(v []uint64) int {
	for i, w := range v {
		if w != 0 {
			for b := 0; b < 64; b++ {
				if w&(1<<uint(b)) != 0 {
					return i*64 + b
				}
			}
		}
	}
	return -1
}

func BenchmarkHortonCandidates(b *testing.B) {
	g := TriangulatedGrid(10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		g.ForEachHortonCandidate(6, func(NodeID, int, []int32) bool { n++; return true })
		if n == 0 {
			b.Fatal("no candidates")
		}
	}
}
