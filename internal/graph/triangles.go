package graph

// ForEachTriangle enumerates each 3-clique of g once as an edge-index
// triple, stopping early when fn returns false. For every edge {u,v} the
// sorted adjacency lists of u and v are merge-intersected, and a triangle
// is reported at the common neighbour w only when w > v, so each triangle
// is seen exactly once, in increasing order of its lowest edge index.
//
// Triangles are the first generators the short-cycle span inserts (see
// internal/cycles), which makes this a hot path; the merge works entirely
// on the dense internal arrays and performs no allocation.
func (g *Graph) ForEachTriangle(fn func(e1, e2, e3 int32) bool) {
	for ei := range g.edges {
		ui, vi := g.edgeU[ei], g.edgeV[ei]
		au, av := g.adj[ui], g.adj[vi]
		aeu, aev := g.adjEdge[ui], g.adjEdge[vi]
		a, b := 0, 0
		for a < len(au) && b < len(av) {
			switch {
			case au[a] < av[b]:
				a++
			case au[a] > av[b]:
				b++
			default:
				// Internal index order equals ID order, so w > vi selects
				// exactly the w with ID greater than the edge's V endpoint.
				if w := au[a]; w > vi {
					if !fn(int32(ei), aeu[a], aev[b]) {
						return
					}
				}
				a++
				b++
			}
		}
	}
}
