package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestStreamBuilderMatchesBuilder: on random inputs — duplicate records,
// arbitrary insertion order, isolated nodes, non-contiguous IDs — the
// StreamBuilder must produce a Graph reflect.DeepEqual-identical to the
// map-based Builder, so every downstream structural comparison (the shard
// engine's byte-identity contract) holds by construction.
func TestStreamBuilderMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		b := NewBuilder()
		sb := NewStreamBuilder(0, 0)
		// Sparse, possibly disconnected random graph over non-contiguous IDs.
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = NodeID(i*3 + rng.Intn(2)) // collisions on purpose
		}
		for _, v := range ids {
			b.AddNode(v)
			sb.AddNode(v)
		}
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			u, v := ids[rng.Intn(n)], ids[rng.Intn(n)]
			if u == v {
				continue
			}
			// Feed duplicates and both orientations.
			b.AddEdge(u, v)
			sb.AddEdge(v, u)
			if rng.Intn(3) == 0 {
				sb.AddEdge(u, v)
			}
		}
		want := b.MustBuild()
		got := sb.MustBuild()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: StreamBuilder graph differs from Builder graph\nwant ids=%v edges=%v\ngot  ids=%v edges=%v",
				trial, want.Nodes(), want.Edges(), got.Nodes(), got.Edges())
		}
	}
}

// TestStreamBuilderEmpty: zero records must equal Builder's empty graph.
func TestStreamBuilderEmpty(t *testing.T) {
	want := NewBuilder().MustBuild()
	got := NewStreamBuilder(0, 0).MustBuild()
	if !reflect.DeepEqual(want, got) {
		t.Fatal("empty StreamBuilder graph differs from empty Builder graph")
	}
}

// TestStreamBuilderImplicitEndpoints: AddEdge must imply its endpoints,
// exactly like Builder.AddEdge.
func TestStreamBuilderImplicitEndpoints(t *testing.T) {
	b := NewBuilder()
	b.AddEdge(5, 2)
	sb := NewStreamBuilder(0, 1)
	sb.AddEdge(5, 2)
	if want, got := b.MustBuild(), sb.MustBuild(); !reflect.DeepEqual(want, got) {
		t.Fatalf("implicit endpoints differ: want %v, got %v", want.Nodes(), got.Nodes())
	}
}

// TestStreamBuilderSelfLoop: a recorded self-loop must surface as the same
// Build-time error Builder reports.
func TestStreamBuilderSelfLoop(t *testing.T) {
	sb := NewStreamBuilder(0, 0)
	sb.AddEdge(4, 4)
	if _, err := sb.Build(); err == nil {
		t.Fatal("Build accepted a self-loop")
	}
}

// TestStreamBuilderNumRecords: the progress probe reports raw record
// counts, duplicates included.
func TestStreamBuilderNumRecords(t *testing.T) {
	sb := NewStreamBuilder(0, 0)
	sb.AddNode(1)
	sb.AddNode(1)
	sb.AddEdge(1, 2)
	if n, m := sb.NumRecords(); n != 2 || m != 1 {
		t.Fatalf("NumRecords = (%d,%d), want (2,1)", n, m)
	}
}
