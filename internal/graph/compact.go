package graph

import (
	"math"
	"sort"
	"sync"
)

// Scratch holds the reusable buffers behind the compact subgraph
// constructor and the deletion-overlay BFS: visit stamps, BFS queues and
// base→local index mappings. A Scratch amortizes the per-call allocations
// of the deletability hot loop (ISSUE: per-worker scratch); it is NOT safe
// for concurrent use — give each worker its own via NewScratch.
//
// All buffers are epoch-stamped: reuse never requires clearing, so a
// Scratch can serve graphs of different sizes back to back.
type Scratch struct {
	// BFS state (ballIdx, twoCore).
	stamp []int32
	epoch int32
	queue []int32
	ball  []int32
	// Base→local mapping for compactInduced.
	local  []int32
	lstamp []int32
	lepoch int32
	// Per-local-node degree counts for compactInduced.
	deg []int32
}

// NewScratch returns a Scratch pre-sized for graphs up to g's order. A nil
// g yields an empty Scratch that grows on first use (handy for pooled
// per-worker scratch created before the target graph is known).
func NewScratch(g *Graph) *Scratch {
	s := &Scratch{}
	if g != nil {
		s.ensure(len(g.ids))
	}
	return s
}

func (s *Scratch) ensure(n int) {
	if len(s.stamp) < n {
		s.stamp = make([]int32, n)
		s.local = make([]int32, n)
		s.lstamp = make([]int32, n)
	}
}

// nextEpoch advances the BFS epoch, resetting the stamp array on the
// (practically unreachable) int32 wraparound.
func (s *Scratch) nextEpoch() int32 {
	if s.epoch == math.MaxInt32 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 0
	}
	s.epoch++
	return s.epoch
}

func (s *Scratch) nextLocalEpoch() int32 {
	if s.lepoch == math.MaxInt32 {
		for i := range s.lstamp {
			s.lstamp[i] = 0
		}
		s.lepoch = 0
	}
	s.lepoch++
	return s.lepoch
}

// scratchPool recycles Scratch instances for the public graph-derivation
// entry points (InducedSubgraph, DeleteVertices, TwoCore), which cannot
// thread a caller-owned Scratch without changing their signatures.
var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

func getScratch(n int) *Scratch {
	s := scratchPool.Get().(*Scratch)
	s.ensure(n)
	return s
}

func putScratch(s *Scratch) { scratchPool.Put(s) }

// compactInduced builds the subgraph induced by the base-index set keep
// (strictly ascending). It produces a Graph structurally identical to the
// one Builder would construct from the same nodes and edges — node IDs
// ascending, edges sorted by (U,V), adjacency lists sorted with the
// parallel edge-index lists — but in two array passes with no maps, which
// is what makes per-candidate neighbourhood extraction affordable inside
// the deletability hot loop.
//
//lint:ignore hotalloc constructs the returned Graph: its backing arrays are owned by the result and must outlive every scratch buffer; the two-pass layout already allocates the exact final sizes
func (g *Graph) compactInduced(keep []int32, s *Scratch) *Graph {
	s.ensure(len(g.ids))
	nl := len(keep)
	sub := &Graph{
		ids:     make([]NodeID, nl),
		adj:     make([][]int32, nl),
		adjEdge: make([][]int32, nl),
	}
	ep := s.nextLocalEpoch()
	for li, bi := range keep {
		sub.ids[li] = g.ids[bi]
		s.local[bi] = int32(li)
		s.lstamp[bi] = ep
	}
	// Pass 1: count the surviving degree of each kept node and the number
	// of surviving edges.
	if cap(s.deg) < nl {
		s.deg = make([]int32, nl)
	}
	deg := s.deg[:nl]
	for li := range deg {
		deg[li] = 0
	}
	ne := 0
	for li, bi := range keep {
		for _, w := range g.adj[bi] {
			if s.lstamp[w] == ep {
				deg[li]++
				if s.local[w] > int32(li) {
					ne++
				}
			}
		}
	}
	if ne > 0 {
		sub.edges = make([]Edge, ne)
	}
	sub.edgeU = make([]int32, ne)
	sub.edgeV = make([]int32, ne)
	nbrBack := make([]int32, 2*ne)
	edgeBack := make([]int32, 2*ne)
	off := 0
	for li := range deg {
		d := int(deg[li])
		if d == 0 {
			continue // leave nil, matching Builder output for isolated nodes
		}
		sub.adj[li] = nbrBack[off : off : off+d]
		sub.adjEdge[li] = edgeBack[off : off : off+d]
		off += d
	}
	// Pass 2: enumerate surviving edges with the lower local endpoint
	// major. Local order equals ID order (keep ascending), so this emits
	// edges in (U,V)-sorted order, and each adjacency list fills in
	// ascending neighbour order — exactly the Builder invariants.
	e := 0
	for li, bi := range keep {
		for _, w := range g.adj[bi] {
			if s.lstamp[w] != ep {
				continue
			}
			lw := s.local[w]
			if lw <= int32(li) {
				continue
			}
			sub.edges[e] = Edge{U: sub.ids[li], V: sub.ids[lw]}
			sub.edgeU[e] = int32(li)
			sub.edgeV[e] = lw
			sub.adj[li] = append(sub.adj[li], lw)
			sub.adjEdge[li] = append(sub.adjEdge[li], int32(e))
			sub.adj[lw] = append(sub.adj[lw], int32(li))
			sub.adjEdge[lw] = append(sub.adjEdge[lw], int32(e))
			e++
		}
	}
	debugCheckGraph(sub) // no-op unless built with -tags dccdebug
	return sub
}

// sortDedupIndices sorts keep ascending and removes duplicates in place.
func sortDedupIndices(keep []int32) []int32 {
	sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
	out := keep[:0]
	for i, b := range keep {
		if i > 0 && keep[i-1] == b {
			continue
		}
		//lint:ignore hotalloc in-place dedup: out aliases keep's storage and never outgrows it, so the append cannot reallocate
		out = append(out, b)
	}
	return out
}
