package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder()
	b.AddEdge(3, 1)
	b.AddEdge(1, 3) // duplicate, reversed
	b.AddEdge(1, 2)
	b.AddNode(7)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(3, 1) || !g.HasEdge(1, 3) {
		t.Fatal("edge {1,3} missing")
	}
	if g.HasEdge(2, 3) {
		t.Fatal("phantom edge {2,3}")
	}
	if got := g.Nodes(); !reflect.DeepEqual(got, []NodeID{1, 2, 3, 7}) {
		t.Fatalf("Nodes = %v", got)
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []NodeID{2, 3}) {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	if g.Degree(7) != 0 {
		t.Fatalf("Degree(7) = %d, want 0", g.Degree(7))
	}
	if g.Degree(100) != 0 {
		t.Fatalf("Degree of absent node = %d, want 0", g.Degree(100))
	}
}

func TestBuilderSelfLoop(t *testing.T) {
	b := NewBuilder()
	b.AddEdge(5, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("self-loop not rejected")
	}
}

func TestEdgeIndexingStable(t *testing.T) {
	// Two builders adding the same edges in different orders must produce
	// identical edge indexing.
	b1 := NewBuilder()
	b1.AddEdge(0, 1)
	b1.AddEdge(1, 2)
	b1.AddEdge(0, 2)
	b2 := NewBuilder()
	b2.AddEdge(0, 2)
	b2.AddEdge(1, 2)
	b2.AddEdge(0, 1)
	g1, g2 := b1.MustBuild(), b2.MustBuild()
	for i := 0; i < g1.NumEdges(); i++ {
		if g1.EdgeAt(i) != g2.EdgeAt(i) {
			t.Fatalf("edge %d differs: %v vs %v", i, g1.EdgeAt(i), g2.EdgeAt(i))
		}
	}
}

func TestEdgeIndexRoundTrip(t *testing.T) {
	g := Complete(5)
	for i := 0; i < g.NumEdges(); i++ {
		e := g.EdgeAt(i)
		j, ok := g.EdgeIndex(e.V, e.U) // reversed on purpose
		if !ok || j != i {
			t.Fatalf("EdgeIndex(%v) = %d,%v want %d", e, j, ok, i)
		}
	}
	if _, ok := g.EdgeIndex(0, 100); ok {
		t.Fatal("EdgeIndex of absent edge reported ok")
	}
}

func TestBFSDepths(t *testing.T) {
	g := Path(5)
	tree := g.BFS(0, -1)
	for i := 0; i < 5; i++ {
		if d := tree.Depth(NodeID(i)); d != i {
			t.Fatalf("Depth(%d) = %d, want %d", i, d, i)
		}
	}
	if _, ok := tree.Parent(0); ok {
		t.Fatal("root has a parent")
	}
	p, ok := tree.Parent(3)
	if !ok || p != 2 {
		t.Fatalf("Parent(3) = %d,%v want 2", p, ok)
	}
	if path := tree.PathToRoot(4); !reflect.DeepEqual(path, []NodeID{4, 3, 2, 1, 0}) {
		t.Fatalf("PathToRoot(4) = %v", path)
	}
}

func TestBFSMaxDepth(t *testing.T) {
	g := Path(10)
	tree := g.BFS(0, 3)
	if d := tree.Depth(3); d != 3 {
		t.Fatalf("Depth(3) = %d, want 3", d)
	}
	if d := tree.Depth(4); d != -1 {
		t.Fatalf("Depth(4) = %d, want -1 (beyond horizon)", d)
	}
}

func TestBFSDisconnected(t *testing.T) {
	g, err := FromEdges([]Edge{{0, 1}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	tree := g.BFS(0, -1)
	if tree.Depth(5) != -1 {
		t.Fatal("unreachable node has non-negative depth")
	}
	if tree.PathToRoot(5) != nil {
		t.Fatal("PathToRoot of unreachable node not nil")
	}
}

func TestLCA(t *testing.T) {
	//      0
	//     / \
	//    1   2
	//   / \   \
	//  3   4   5
	g, err := FromEdges([]Edge{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}})
	if err != nil {
		t.Fatal(err)
	}
	tree := g.BFS(0, -1)
	tests := []struct {
		u, v, want NodeID
	}{
		{3, 4, 1},
		{3, 5, 0},
		{1, 4, 1},
		{0, 5, 0},
		{3, 3, 3},
	}
	for _, tt := range tests {
		got, ok := tree.LCA(tt.u, tt.v)
		if !ok || got != tt.want {
			t.Fatalf("LCA(%d,%d) = %d,%v want %d", tt.u, tt.v, got, ok, tt.want)
		}
	}
}

func TestKHopNeighbors(t *testing.T) {
	g := Path(7)
	got := g.KHopNeighbors(3, 2)
	want := []NodeID{1, 2, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("KHopNeighbors(3,2) = %v, want %v", got, want)
	}
	if g.KHopNeighbors(3, 0) != nil {
		t.Fatal("k=0 should return nil")
	}
	// k-hop neighbours never include the centre.
	for _, v := range g.KHopNeighbors(3, 6) {
		if v == 3 {
			t.Fatal("centre included in its own k-hop neighbourhood")
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	sub := g.InducedSubgraph([]NodeID{0, 1, 2, 99}) // 99 ignored
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced K3: n=%d m=%d", sub.NumNodes(), sub.NumEdges())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || !sub.HasEdge(0, 2) {
		t.Fatal("induced subgraph missing edges")
	}
}

func TestDeleteVertices(t *testing.T) {
	g := Cycle(5)
	h := g.DeleteVertices([]NodeID{2})
	if h.NumNodes() != 4 || h.NumEdges() != 3 {
		t.Fatalf("after delete: n=%d m=%d, want 4,3", h.NumNodes(), h.NumEdges())
	}
	if h.HasNode(2) {
		t.Fatal("deleted node still present")
	}
	if h.HasEdge(1, 2) || h.HasEdge(2, 3) {
		t.Fatal("incident edge survived vertex deletion")
	}
	// Original graph untouched.
	if !g.HasNode(2) || g.NumEdges() != 5 {
		t.Fatal("DeleteVertices mutated the receiver")
	}
}

func TestDeleteEdges(t *testing.T) {
	g := Cycle(4)
	h := g.DeleteEdges([]Edge{{1, 0}}) // reversed endpoints on purpose
	if h.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", h.NumEdges())
	}
	if h.NumNodes() != 4 {
		t.Fatal("endpoints dropped by edge deletion")
	}
	if h.HasEdge(0, 1) {
		t.Fatal("deleted edge still present")
	}
}

func TestConnectivity(t *testing.T) {
	tests := []struct {
		name  string
		g     *Graph
		conn  bool
		comps int
	}{
		{"empty", NewBuilder().MustBuild(), true, 0},
		{"single", Path(1), true, 1},
		{"path", Path(4), true, 1},
		{"two components", func() *Graph {
			g, _ := FromEdges([]Edge{{0, 1}, {2, 3}})
			return g
		}(), false, 2},
		{"isolated node", func() *Graph {
			g, _ := FromEdges([]Edge{{0, 1}}, 9)
			return g
		}(), false, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.IsConnected(); got != tt.conn {
				t.Fatalf("IsConnected = %v, want %v", got, tt.conn)
			}
			if got := tt.g.NumComponents(); got != tt.comps {
				t.Fatalf("NumComponents = %d, want %d", got, tt.comps)
			}
		})
	}
}

func TestConnectedComponentsContents(t *testing.T) {
	g, err := FromEdges([]Edge{{4, 5}, {0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("got %d components", len(comps))
	}
	if !reflect.DeepEqual(comps[0], []NodeID{0, 1, 2}) {
		t.Fatalf("comps[0] = %v", comps[0])
	}
	if !reflect.DeepEqual(comps[1], []NodeID{4, 5}) {
		t.Fatalf("comps[1] = %v", comps[1])
	}
}

func TestCycleSpaceDim(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"tree", Path(10), 0},
		{"cycle", Cycle(6), 1},
		{"K4", Complete(4), 3},
		{"K5", Complete(5), 6},
		{"grid 3x3", Grid(3, 3), 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.CycleSpaceDim(); got != tt.want {
				t.Fatalf("CycleSpaceDim = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestTwoCore(t *testing.T) {
	// Cycle with a pendant path attached: the 2-core is exactly the cycle.
	b := NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddEdge(NodeID(i), NodeID((i+1)%4))
	}
	b.AddEdge(0, 10)
	b.AddEdge(10, 11)
	g := b.MustBuild()
	core := g.TwoCore()
	if core.NumNodes() != 4 || core.NumEdges() != 4 {
		t.Fatalf("2-core: n=%d m=%d, want 4,4", core.NumNodes(), core.NumEdges())
	}
	if core.HasNode(10) || core.HasNode(11) {
		t.Fatal("pendant nodes survive 2-core")
	}
	// A tree's 2-core is empty.
	if tc := Path(8).TwoCore(); tc.NumNodes() != 0 {
		t.Fatalf("tree 2-core has %d nodes", tc.NumNodes())
	}
}

func TestTwoCorePreservesCycleSpaceDim(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)), 20, 0.15)
		return g.CycleSpaceDim() == g.TwoCore().CycleSpaceDim()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShortestPathLen(t *testing.T) {
	g := Grid(3, 4)
	if d := g.ShortestPathLen(0, 11); d != 5 {
		t.Fatalf("d(0,11) = %d, want 5", d)
	}
	if d := g.ShortestPathLen(0, 0); d != 0 {
		t.Fatalf("d(0,0) = %d, want 0", d)
	}
	h, _ := FromEdges([]Edge{{0, 1}}, 5)
	if d := h.ShortestPathLen(0, 5); d != -1 {
		t.Fatalf("disconnected distance = %d, want -1", d)
	}
}

func TestGenerators(t *testing.T) {
	if g := Path(1); g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatal("Path(1) malformed")
	}
	if g := Cycle(3); g.NumEdges() != 3 {
		t.Fatal("Cycle(3) malformed")
	}
	if g := Complete(6); g.NumEdges() != 15 {
		t.Fatal("K6 malformed")
	}
	if g := Grid(2, 2); g.NumEdges() != 4 {
		t.Fatal("Grid(2,2) malformed")
	}
	if g := TriangulatedGrid(2, 2); g.NumEdges() != 5 {
		t.Fatalf("TriangulatedGrid(2,2) has %d edges, want 5", g.NumEdges())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Cycle(2) did not panic")
			}
		}()
		Cycle(2)
	}()
}

// randomGraph returns a G(n,p) random graph.
func randomGraph(r *rand.Rand, n int, p float64) *Graph {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(NodeID(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				b.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return b.MustBuild()
}

func TestRandomGraphInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 30, 0.1)
		// Handshake lemma.
		sum := 0
		for _, v := range g.Nodes() {
			sum += g.Degree(v)
		}
		if sum != 2*g.NumEdges() {
			return false
		}
		// Components partition the node set.
		total := 0
		for _, c := range g.ConnectedComponents() {
			total += len(c)
		}
		return total == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNodesReturnsFreshCopies(t *testing.T) {
	// The documented guarantee on Nodes(): every call hands out a fresh
	// slice, so callers may filter one result in place (as the dist
	// runtime's liveNodes does) without corrupting graph internals or any
	// other caller's slice.
	g := Grid(4, 4)
	want := g.Nodes()
	first := g.Nodes()
	// Destructive in-place filter of one result, mimicking nodes[:0] reuse.
	trashed := first[:0]
	for _, v := range first {
		if v%2 == 0 {
			trashed = append(trashed, v+1000)
		}
	}
	second := g.Nodes()
	if !reflect.DeepEqual(second, want) {
		t.Fatalf("Nodes() result corrupted by a previous caller's in-place filter:\ngot:  %v\nwant: %v", second, want)
	}
	// And mutating the new slice must not write through to graph state.
	second[0] = -1
	if third := g.Nodes(); !reflect.DeepEqual(third, want) {
		t.Fatalf("Nodes() results alias each other: %v", third)
	}
}

func BenchmarkBFS1600(b *testing.B) {
	g := Grid(40, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(0, -1)
	}
}

func BenchmarkKHop(b *testing.B) {
	g := TriangulatedGrid(40, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.KHopNeighbors(820, 3)
	}
}
