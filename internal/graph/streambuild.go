package graph

import (
	"fmt"
	"sort"
)

// StreamBuilder accumulates node and edge records in flat append-only
// slices and assembles the CSR arrays with two sort passes — no maps at
// any point. Builder keeps a map of nodes and a map of edges to dedup on
// the fly, which is fine at evaluation scale but dominates both time and
// memory when a deployment has millions of links; StreamBuilder instead
// tolerates duplicate records and dedups after sorting, so building a
// graph costs O((n+m)·log(n+m)) time and exactly the final arrays plus
// the record slices in memory. The shard engine feeds one StreamBuilder
// per region from its record stream, which is how a million-node
// deployment is scheduled without ever materializing a global adjacency
// map (DESIGN.md §15).
//
// The produced Graph is structurally identical — reflect.DeepEqual
// identical — to what Builder yields from the same logical node and edge
// sets: node IDs ascending, edges sorted by (U,V), ascending adjacency
// lists with parallel edge-index lists. Tests pin this equivalence.
//
// A StreamBuilder is not safe for concurrent use.
type StreamBuilder struct {
	nodes []NodeID
	edges []Edge
}

// NewStreamBuilder returns an empty StreamBuilder with capacity hints
// (pass 0 when unknown).
func NewStreamBuilder(nodeHint, edgeHint int) *StreamBuilder {
	return &StreamBuilder{
		nodes: make([]NodeID, 0, nodeHint),
		edges: make([]Edge, 0, edgeHint),
	}
}

// AddNode records a node. Duplicates are cheap and removed at Build time.
func (b *StreamBuilder) AddNode(v NodeID) { b.nodes = append(b.nodes, v) }

// AddEdge records the undirected edge {u,v}, implicitly adding both
// endpoints (mirroring Builder.AddEdge). Duplicates are removed at Build
// time; self-loops are reported as an error by Build.
func (b *StreamBuilder) AddEdge(u, v NodeID) {
	b.edges = append(b.edges, NormEdge(u, v))
}

// NumRecords returns the number of node and edge records accumulated so
// far (duplicates included) — a cheap progress/size probe for callers
// that stream records region by region.
func (b *StreamBuilder) NumRecords() (nodes, edges int) {
	return len(b.nodes), len(b.edges)
}

// Build assembles the immutable Graph. It returns an error if a self-loop
// was recorded. The builder may be reused afterwards; its records are
// consumed (reset to empty).
func (b *StreamBuilder) Build() (*Graph, error) {
	// Node universe: explicit records plus every edge endpoint, sorted and
	// deduped in place.
	ids := b.nodes
	for _, e := range b.edges {
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at node %d", e.U)
		}
		ids = append(ids, e.U, e.V)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w := 0
	for i, v := range ids {
		if i > 0 && ids[i-1] == v {
			continue
		}
		ids[w] = v
		w++
	}
	ids = ids[:w]

	// Edge list: sort by (U,V), dedup in place.
	edges := b.edges
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	w = 0
	for i, e := range edges {
		if i > 0 && edges[i-1] == e {
			continue
		}
		edges[w] = e
		w++
	}
	edges = edges[:w]
	b.nodes, b.edges = nil, nil

	g := &Graph{
		// Copy the (possibly over-capacity) record slices into exact-size
		// arrays so the Graph retains no oversized backing.
		ids:     append(make([]NodeID, 0, len(ids)), ids...),
		adj:     make([][]int32, len(ids)),
		adjEdge: make([][]int32, len(ids)),
		edgeU:   make([]int32, len(edges)),
		edgeV:   make([]int32, len(edges)),
	}
	if len(edges) > 0 {
		g.edges = append(make([]Edge, 0, len(edges)), edges...)
	}

	// Degree count, then one shared backing array per CSR side — the
	// compactInduced layout.
	deg := make([]int32, len(ids))
	for i, e := range g.edges {
		ui, vi := g.internalIndex(e.U), g.internalIndex(e.V)
		g.edgeU[i], g.edgeV[i] = int32(ui), int32(vi)
		deg[ui]++
		deg[vi]++
	}
	nbrBack := make([]int32, 2*len(edges))
	edgeBack := make([]int32, 2*len(edges))
	off := 0
	for i, d := range deg {
		if d == 0 {
			continue // leave nil, matching Builder output for isolated nodes
		}
		g.adj[i] = nbrBack[off : off : off+int(d)]
		g.adjEdge[i] = edgeBack[off : off : off+int(d)]
		off += int(d)
	}
	// Fill in edge-index order: edges are (U,V)-sorted, so each adjacency
	// list receives its below-ID neighbours first (ascending, U-major) and
	// its above-ID neighbours after (ascending) — ascending overall, the
	// Builder invariant.
	for i := range g.edges {
		ui, vi := g.edgeU[i], g.edgeV[i]
		g.adj[ui] = append(g.adj[ui], vi)
		g.adjEdge[ui] = append(g.adjEdge[ui], int32(i))
		g.adj[vi] = append(g.adj[vi], ui)
		g.adjEdge[vi] = append(g.adjEdge[vi], int32(i))
	}
	debugCheckGraph(g) // no-op unless built with -tags dccdebug
	return g, nil
}

// MustBuild is Build that panics on error, for inputs known loop-free.
func (b *StreamBuilder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
