//go:build !dccdebug

package graph

// debugChecks gates the deep structural invariant assertions. Build with
// -tags dccdebug (e.g. `go test -tags dccdebug ./...`) to enable them; in
// regular builds this file provides free no-ops.
const debugChecks = false

func debugCheckGraph(*Graph) {}
