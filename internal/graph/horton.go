package graph

// ForEachHortonCandidate enumerates the Horton candidate cycles of the
// graph: for every vertex r (the root) and every non-tree edge (x,y) of a
// BFS shortest-path tree rooted at r whose tree LCA is r, the cycle
// path(r,x) + path(r,y) + (x,y). Candidates are reported as edge-index
// slices (the buffer is reused across calls — callers must copy).
// Enumeration stops early when fn returns false.
//
// maxLen > 0 restricts enumeration to cycles of length ≤ maxLen and bounds
// the BFS depth at ⌊maxLen/2⌋ (sufficient: the two tree paths of a
// candidate differ in depth by at most one). maxLen ≤ 0 is unbounded.
//
// This is the hot path of every void-preserving-transformation test, so it
// works entirely on internal dense indices: no map lookups, and the BFS
// state is reused across roots via an epoch-stamping trick.
//
//lint:ignore hotalloc six O(n) buffers allocated once per enumeration and reused across all n roots via epoch stamps — amortized by construction; threading a caller Workspace through the public iterator would churn every call site for no measured gain
func (g *Graph) ForEachHortonCandidate(maxLen int, fn func(root NodeID, length int, edges []int32) bool) {
	n := len(g.ids)
	if n == 0 || len(g.edges) == 0 {
		return
	}
	depthLimit := -1
	if maxLen > 0 {
		depthLimit = maxLen / 2
	}

	// Dense endpoint arrays for the edge scan, precomputed at Build time.
	eu, ev := g.edgeU, g.edgeV

	var (
		depth      = make([]int32, n)
		parent     = make([]int32, n)
		parentEdge = make([]int32, n)
		stamp      = make([]int32, n) // BFS epoch a node was last visited in
		queue      = make([]int32, 0, n)
		buf        = make([]int32, 0, 64)
		epoch      int32
	)

	for ri := 0; ri < n; ri++ {
		epoch++
		queue = queue[:0]
		queue = append(queue, int32(ri))
		stamp[ri] = epoch
		depth[ri] = 0
		parent[ri] = -1
		parentEdge[ri] = -1
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			if depthLimit >= 0 && int(depth[u]) >= depthLimit {
				continue
			}
			adj := g.adj[u]
			adjE := g.adjEdge[u]
			for ai, w := range adj {
				if stamp[w] != epoch {
					stamp[w] = epoch
					depth[w] = depth[u] + 1
					parent[w] = u
					parentEdge[w] = adjE[ai]
					queue = append(queue, w)
				}
			}
		}

		for ei := range g.edges {
			x, y := eu[ei], ev[ei]
			if stamp[x] != epoch || stamp[y] != epoch {
				continue
			}
			if parentEdge[x] == int32(ei) || parentEdge[y] == int32(ei) {
				continue // tree edge
			}
			length := int(depth[x]+depth[y]) + 1
			if maxLen > 0 && length > maxLen {
				continue
			}
			// LCA must be the root: walk both ends upward to equal depth,
			// then in lockstep.
			a, b := x, y
			for depth[a] > depth[b] {
				a = parent[a]
			}
			for depth[b] > depth[a] {
				b = parent[b]
			}
			for a != b {
				a = parent[a]
				b = parent[b]
			}
			if int(a) != ri {
				continue
			}
			buf = buf[:0]
			buf = append(buf, int32(ei))
			for c := x; parentEdge[c] >= 0; c = parent[c] {
				buf = append(buf, parentEdge[c])
			}
			for c := y; parentEdge[c] >= 0; c = parent[c] {
				buf = append(buf, parentEdge[c])
			}
			if !fn(g.ids[ri], length, buf) {
				return
			}
		}
	}
}
