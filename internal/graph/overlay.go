package graph

// DeleteView is a deletion overlay over an immutable base Graph: vertices
// are marked dead in O(1) instead of rebuilding the graph after every
// deletion round. All queries see only the live subgraph. The overlay is
// the substrate of the incremental deletability engine (internal/vpt
// Cache): scheduling deletes thousands of vertices one independent set at
// a time, and rebuilding a Graph per round was the dominant allocation
// cost of the hot loop.
//
// A DeleteView never resurrects vertices; Materialize produces a real
// Graph of the live remainder (structurally identical to
// Base().DeleteVertices(everything deleted so far)).
//
// The zero value is not usable; construct with NewDeleteView. A DeleteView
// is not safe for concurrent mutation; concurrent read-only queries (with
// distinct Scratch instances) are safe.
type DeleteView struct {
	g       *Graph
	gone    []bool // by base index
	numGone int
}

// NewDeleteView returns an overlay on g with every vertex live.
func NewDeleteView(g *Graph) *DeleteView {
	return &DeleteView{g: g, gone: make([]bool, len(g.ids))}
}

// Base returns the underlying immutable graph.
func (d *DeleteView) Base() *Graph { return d.g }

// NumLive returns the number of live vertices.
func (d *DeleteView) NumLive() int { return len(d.g.ids) - d.numGone }

// Alive reports whether v is a live vertex of the view.
func (d *DeleteView) Alive(v NodeID) bool {
	i, ok := d.g.index(v)
	return ok && !d.gone[i]
}

// Delete marks v dead and reports whether it was live. Absent or
// already-dead vertices are a no-op.
func (d *DeleteView) Delete(v NodeID) bool {
	i, ok := d.g.index(v)
	if !ok || d.gone[i] {
		return false
	}
	d.gone[i] = true
	d.numGone++
	return true
}

// LiveNodes returns the live vertices in increasing ID order (fresh copy).
func (d *DeleteView) LiveNodes() []NodeID {
	out := make([]NodeID, 0, d.NumLive())
	for i, v := range d.g.ids {
		if !d.gone[i] {
			out = append(out, v)
		}
	}
	return out
}

// LiveNeighbors returns the live neighbours of v in increasing ID order
// (fresh copy), nil if v is dead or absent.
func (d *DeleteView) LiveNeighbors(v NodeID) []NodeID {
	i, ok := d.g.index(v)
	if !ok || d.gone[i] {
		return nil
	}
	out := make([]NodeID, 0, len(d.g.adj[i]))
	for _, w := range d.g.adj[i] {
		if !d.gone[w] {
			out = append(out, d.g.ids[w])
		}
	}
	return out
}

// LiveDegree returns the number of live neighbours of v (0 if dead or
// absent).
func (d *DeleteView) LiveDegree(v NodeID) int {
	i, ok := d.g.index(v)
	if !ok || d.gone[i] {
		return 0
	}
	n := 0
	for _, w := range d.g.adj[i] {
		if !d.gone[w] {
			n++
		}
	}
	return n
}

// ballIdx runs a depth-bounded BFS from base index vi over live vertices
// and returns the visited base indices excluding vi, sorted ascending. The
// result aliases s.ball and is valid until the next use of s.
func (d *DeleteView) ballIdx(vi int, k int, s *Scratch) []int32 {
	s.ensure(len(d.g.ids))
	ep := s.nextEpoch()
	queue := s.queue[:0]
	queue = append(queue, int32(vi))
	s.stamp[vi] = ep
	head := 0
	for depth := 0; depth < k && head < len(queue); depth++ {
		tail := len(queue)
		for ; head < tail; head++ {
			u := queue[head]
			for _, w := range d.g.adj[u] {
				if d.gone[w] || s.stamp[w] == ep {
					continue
				}
				s.stamp[w] = ep
				queue = append(queue, w)
			}
		}
	}
	s.queue = queue[:0]
	s.ball = append(s.ball[:0], queue[1:]...)
	return sortDedupIndices(s.ball)
}

// KHopBallIndices returns the base indices of the live vertices within k
// hops of v (via live paths), excluding v, sorted ascending — the dirty
// region of a deletion at v. Returns nil when v is dead or absent. The
// slice aliases s and is only valid until s is next used.
func (d *DeleteView) KHopBallIndices(v NodeID, k int, s *Scratch) []int32 {
	vi, ok := d.g.index(v)
	if !ok || d.gone[vi] {
		return nil
	}
	return d.ballIdx(vi, k, s)
}

// KHopBall is KHopBallIndices resolved to node IDs (fresh copy). It equals
// Materialize().KHopNeighbors(v, k).
func (d *DeleteView) KHopBall(v NodeID, k int, s *Scratch) []NodeID {
	idx := d.KHopBallIndices(v, k, s)
	if idx == nil {
		return nil
	}
	out := make([]NodeID, len(idx))
	for i, bi := range idx {
		out[i] = d.g.ids[bi]
	}
	return out
}

// ExtractNeighborhood builds the neighbourhood graph Γ^k(v) of the live
// view — the subgraph induced by the live vertices within k hops of v, v
// itself excluded — together with v's live direct neighbours (ascending).
// This is exactly what the void-preserving-transformation test consumes;
// the graph is structurally identical to
// Materialize().InducedSubgraph(Materialize().KHopNeighbors(v, k)) but
// costs two passes over the ball. Returns (nil, nil) when v is dead or
// absent.
//
//lint:ignore hotalloc the direct-neighbour slice is part of the return value (bounded by deg(v), consumed by the deletability test); ball traversal and subgraph construction reuse the caller's Scratch
func (d *DeleteView) ExtractNeighborhood(v NodeID, k int, s *Scratch) (*Graph, []NodeID) {
	vi, ok := d.g.index(v)
	if !ok || d.gone[vi] {
		return nil, nil
	}
	ball := d.ballIdx(vi, k, s)
	sub := d.g.compactInduced(ball, s)
	direct := make([]NodeID, 0, len(d.g.adj[vi]))
	for _, w := range d.g.adj[vi] {
		if !d.gone[w] {
			direct = append(direct, d.g.ids[w])
		}
	}
	return sub, direct
}

// Materialize builds the live remainder as a real Graph, structurally
// identical to applying DeleteVertices for every deleted vertex at once.
func (d *DeleteView) Materialize() *Graph {
	s := getScratch(len(d.g.ids))
	defer putScratch(s)
	keep := s.ball[:0]
	for i := range d.g.ids {
		if !d.gone[i] {
			keep = append(keep, int32(i))
		}
	}
	sub := d.g.compactInduced(keep, s)
	s.ball = keep[:0]
	return sub
}
