package graph

// DeleteView is a deletion overlay over an immutable base Graph: vertices
// are marked dead in O(1) instead of rebuilding the graph after every
// deletion round. All queries see only the live subgraph. The overlay is
// the substrate of the incremental deletability engine (internal/vpt
// Cache): scheduling deletes thousands of vertices one independent set at
// a time, and rebuilding a Graph per round was the dominant allocation
// cost of the hot loop.
//
// Deletion is reversible: Restore revives a dead vertex in O(1), the path
// the streaming engine's node-rejoin events take (internal/stream).
// Materialize produces a real Graph of the live remainder (structurally
// identical to Base().DeleteVertices(everything currently dead)).
//
// The zero value is not usable; construct with NewDeleteView. A DeleteView
// is not safe for concurrent mutation; concurrent read-only queries (with
// distinct Scratch instances) are safe.
type DeleteView struct {
	g       *Graph
	gone    []bool // by base index
	numGone int
}

// NewDeleteView returns an overlay on g with every vertex live.
func NewDeleteView(g *Graph) *DeleteView {
	return &DeleteView{g: g, gone: make([]bool, len(g.ids))}
}

// Base returns the underlying immutable graph.
func (d *DeleteView) Base() *Graph { return d.g }

// NumLive returns the number of live vertices.
func (d *DeleteView) NumLive() int { return len(d.g.ids) - d.numGone }

// Alive reports whether v is a live vertex of the view.
func (d *DeleteView) Alive(v NodeID) bool {
	i, ok := d.g.index(v)
	return ok && !d.gone[i]
}

// Delete marks v dead and reports whether it was live. Absent or
// already-dead vertices are a no-op.
func (d *DeleteView) Delete(v NodeID) bool {
	i, ok := d.g.index(v)
	if !ok || d.gone[i] {
		return false
	}
	d.gone[i] = true
	d.numGone++
	return true
}

// Restore marks a dead vertex live again and reports whether it was dead.
// Absent or already-live vertices are a no-op. The revived vertex rejoins
// with every base-graph edge whose other endpoint is live — Restore is the
// exact inverse of Delete.
func (d *DeleteView) Restore(v NodeID) bool {
	i, ok := d.g.index(v)
	if !ok || !d.gone[i] {
		return false
	}
	d.gone[i] = false
	d.numGone--
	return true
}

// LiveNodes returns the live vertices in increasing ID order (fresh copy).
func (d *DeleteView) LiveNodes() []NodeID {
	out := make([]NodeID, 0, d.NumLive())
	for i, v := range d.g.ids {
		if !d.gone[i] {
			out = append(out, v)
		}
	}
	return out
}

// LiveNeighbors returns the live neighbours of v in increasing ID order
// (fresh copy), nil if v is dead or absent.
func (d *DeleteView) LiveNeighbors(v NodeID) []NodeID {
	i, ok := d.g.index(v)
	if !ok || d.gone[i] {
		return nil
	}
	out := make([]NodeID, 0, len(d.g.adj[i]))
	for _, w := range d.g.adj[i] {
		if !d.gone[w] {
			out = append(out, d.g.ids[w])
		}
	}
	return out
}

// LiveDegree returns the number of live neighbours of v (0 if dead or
// absent).
func (d *DeleteView) LiveDegree(v NodeID) int {
	i, ok := d.g.index(v)
	if !ok || d.gone[i] {
		return 0
	}
	n := 0
	for _, w := range d.g.adj[i] {
		if !d.gone[w] {
			n++
		}
	}
	return n
}

// ballIdx runs a depth-bounded BFS from base index vi over live vertices
// and returns the visited base indices excluding vi, sorted ascending. The
// result aliases s.ball and is valid until the next use of s.
func (d *DeleteView) ballIdx(vi int, k int, s *Scratch) []int32 {
	s.ensure(len(d.g.ids))
	ep := s.nextEpoch()
	queue := s.queue[:0]
	queue = append(queue, int32(vi))
	s.stamp[vi] = ep
	head := 0
	for depth := 0; depth < k && head < len(queue); depth++ {
		tail := len(queue)
		for ; head < tail; head++ {
			u := queue[head]
			for _, w := range d.g.adj[u] {
				if d.gone[w] || s.stamp[w] == ep {
					continue
				}
				s.stamp[w] = ep
				queue = append(queue, w)
			}
		}
	}
	s.queue = queue[:0]
	s.ball = append(s.ball[:0], queue[1:]...)
	return sortDedupIndices(s.ball)
}

// KHopBallIndices returns the base indices of the live vertices within k
// hops of v (via live paths), excluding v, sorted ascending — the dirty
// region of a deletion at v. Returns nil when v is dead or absent. The
// slice aliases s and is only valid until s is next used.
func (d *DeleteView) KHopBallIndices(v NodeID, k int, s *Scratch) []int32 {
	vi, ok := d.g.index(v)
	if !ok || d.gone[vi] {
		return nil
	}
	return d.ballIdx(vi, k, s)
}

// KHopBall is KHopBallIndices resolved to node IDs (fresh copy). It equals
// Materialize().KHopNeighbors(v, k).
func (d *DeleteView) KHopBall(v NodeID, k int, s *Scratch) []NodeID {
	idx := d.KHopBallIndices(v, k, s)
	if idx == nil {
		return nil
	}
	out := make([]NodeID, len(idx))
	for i, bi := range idx {
		out[i] = d.g.ids[bi]
	}
	return out
}

// ExtractNeighborhood builds the neighbourhood graph Γ^k(v) of the live
// view — the subgraph induced by the live vertices within k hops of v, v
// itself excluded — together with v's live direct neighbours (ascending).
// This is exactly what the void-preserving-transformation test consumes;
// the graph is structurally identical to
// Materialize().InducedSubgraph(Materialize().KHopNeighbors(v, k)) but
// costs two passes over the ball. Returns (nil, nil) when v is dead or
// absent.
//
//lint:ignore hotalloc the direct-neighbour slice is part of the return value (bounded by deg(v), consumed by the deletability test); ball traversal and subgraph construction reuse the caller's Scratch
func (d *DeleteView) ExtractNeighborhood(v NodeID, k int, s *Scratch) (*Graph, []NodeID) {
	vi, ok := d.g.index(v)
	if !ok || d.gone[vi] {
		return nil, nil
	}
	ball := d.ballIdx(vi, k, s)
	sub := d.g.compactInduced(ball, s)
	direct := make([]NodeID, 0, len(d.g.adj[vi]))
	for _, w := range d.g.adj[vi] {
		if !d.gone[w] {
			direct = append(direct, d.g.ids[w])
		}
	}
	return sub, direct
}

// FNV-1a 64-bit parameters for NeighborhoodFingerprint.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a hash, byte by byte so the
// diffusion matches the reference function.
func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

// NeighborhoodFingerprint hashes the structure the deletability verdict of
// v depends on — Γ^k(v) plus v's own live adjacency: the live vertices
// within k hops of v in increasing ID order, and for each of them (v
// included, v first) its live adjacency restricted to the ball. Everything
// is hashed over node IDs, never base indices, so fingerprints are
// comparable across views over structurally different base graphs: two
// views agree on the fingerprint iff v's k-hop neighbourhood is identical
// as a labelled graph (modulo 64-bit FNV-1a collisions). Returns 0 when v
// is dead or absent — 0 is reserved and never produced for a live vertex.
//
// This is the memo key of the streaming engine's verdict cache
// (internal/stream): a cover re-election may rebuild the base CSR many
// times, but a vertex whose fingerprint is unchanged provably has an
// unchanged verdict.
func (d *DeleteView) NeighborhoodFingerprint(v NodeID, k int, s *Scratch) uint64 {
	vi, ok := d.g.index(v)
	if !ok || d.gone[vi] {
		return 0
	}
	// ballIdx stamps every visited vertex (vi included) with the current
	// epoch; the stamps stay valid until s is next used, which is exactly
	// the membership test the restriction needs.
	ball := d.ballIdx(vi, k, s)
	ep := s.epoch
	h := uint64(fnvOffset64)
	h = fnvMix(h, uint64(len(ball))+1)
	hashAdj := func(xi int32) uint64 {
		h = fnvMix(h, uint64(d.g.ids[xi]))
		for _, w := range d.g.adj[xi] {
			if !d.gone[w] && s.stamp[w] == ep {
				h = fnvMix(h, uint64(d.g.ids[w])^0x9e3779b97f4a7c15)
			}
		}
		return fnvMix(h, 0xfe)
	}
	h = hashAdj(int32(vi))
	for _, bi := range ball {
		h = hashAdj(bi)
	}
	if h == 0 {
		h = 1 // keep 0 as the dead/absent sentinel
	}
	return h
}

// Materialize builds the live remainder as a real Graph, structurally
// identical to applying DeleteVertices for every deleted vertex at once.
func (d *DeleteView) Materialize() *Graph {
	s := getScratch(len(d.g.ids))
	defer putScratch(s)
	keep := s.ball[:0]
	for i := range d.g.ids {
		if !d.gone[i] {
			keep = append(keep, int32(i))
		}
	}
	sub := d.g.compactInduced(keep, s)
	s.ball = keep[:0]
	return sub
}
