//go:build dccdebug

package graph

import "testing"

func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: corrupted graph passed debugCheckGraph", name)
		}
	}()
	f()
}

// TestDebugCheckGraphCatchesCorruption verifies the dccdebug assertions are
// not vacuous: hand-corrupted graphs must panic.
func TestDebugCheckGraphCatchesCorruption(t *testing.T) {
	build := func() *Graph {
		b := NewBuilder()
		b.AddEdge(1, 2)
		b.AddEdge(2, 3)
		b.AddEdge(1, 3)
		return b.MustBuild()
	}

	g := build()
	g.adj[0][0], g.adj[0][1] = g.adj[0][1], g.adj[0][0] // unsorted adjacency
	expectPanic(t, "unsorted adjacency", func() { debugCheckGraph(g) })

	g = build()
	g.edges[0], g.edges[1] = g.edges[1], g.edges[0] // unsorted edge list
	expectPanic(t, "unsorted edges", func() { debugCheckGraph(g) })

	g = build()
	g.adj[0] = append(g.adj[0], g.adj[0][0]) // duplicate neighbour entry
	g.adjEdge[0] = append(g.adjEdge[0], g.adjEdge[0][0])
	expectPanic(t, "duplicate edge", func() { debugCheckGraph(g) })

	g = build()
	g.edgeU[0], g.edgeV[0] = g.edgeV[0], g.edgeU[0] // inconsistent endpoint arrays
	expectPanic(t, "bad endpoint arrays", func() { debugCheckGraph(g) })
}
