package graph

import "fmt"

// Path returns the path graph 0-1-…-(n−1).
func Path(n int) *Graph {
	b := NewBuilder()
	if n == 1 {
		b.AddNode(0)
	}
	for i := 0; i < n-1; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	return b.MustBuild()
}

// Cycle returns the cycle graph on n ≥ 3 nodes 0-1-…-(n−1)-0.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n >= 3, got %d", n))
	}
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddEdge(NodeID(i), NodeID((i+1)%n))
	}
	return b.MustBuild()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder()
	if n == 1 {
		b.AddNode(0)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(NodeID(i), NodeID(j))
		}
	}
	return b.MustBuild()
}

// Grid returns the rows×cols grid graph with node (r,c) numbered r*cols+c.
func Grid(rows, cols int) *Graph {
	b := NewBuilder()
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddNode(id(r, c))
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// TriangulatedGrid returns the rows×cols grid with one diagonal added per
// cell, so every unit face is split into two triangles. Useful as a dense
// planar test graph whose cycle space is spanned by 3-cycles.
func TriangulatedGrid(rows, cols int) *Graph {
	b := NewBuilder()
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddNode(id(r, c))
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < cols && r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c+1))
			}
		}
	}
	return b.MustBuild()
}
