package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// workerCounts are the pool sizes every behaviour is checked under; 0
// means GOMAXPROCS and 100 exceeds the job counts used in the tests.
var workerCounts = []int{0, 1, 2, 3, 4, 8, 100}

func TestMapResultsIndexOrdered(t *testing.T) {
	const n = 137
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, w := range workerCounts {
		got, err := Map(n, w, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results, want %d", w, len(got), n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	got, err := Map(0, 4, func(i int) (int, error) { return 1, nil })
	if err != nil || got != nil {
		t.Fatalf("n=0: got %v, %v", got, err)
	}
	got, err = Map(1, 8, func(i int) (int, error) { return 42, nil })
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("n=1: got %v, %v", got, err)
	}
}

func TestMapErrorIsLowestIndex(t *testing.T) {
	const n = 60
	errAt := map[int]error{
		7:  errors.New("fail at 7"),
		13: errors.New("fail at 13"),
		55: errors.New("fail at 55"),
	}
	for _, w := range workerCounts {
		_, err := Map(n, w, func(i int) (string, error) {
			if e := errAt[i]; e != nil {
				return "", e
			}
			return "ok", nil
		})
		if err != errAt[7] {
			t.Fatalf("workers=%d: err = %v, want %v", w, err, errAt[7])
		}
	}
}

func TestMapRunsEverythingBelowFailure(t *testing.T) {
	const n, failAt = 80, 41
	boom := errors.New("boom")
	for _, w := range workerCounts {
		var ran [n]atomic.Bool
		_, err := Map(n, w, func(i int) (int, error) {
			ran[i].Store(true)
			if i == failAt {
				return 0, boom
			}
			return i, nil
		})
		if err != boom {
			t.Fatalf("workers=%d: err = %v", w, err)
		}
		for i := 0; i < failAt; i++ {
			if !ran[i].Load() {
				t.Fatalf("workers=%d: job %d below the failure never ran", w, i)
			}
		}
	}
}

func TestMapPanicLowestIndexRethrown(t *testing.T) {
	for _, w := range workerCounts {
		got := func() (msg string) {
			defer func() {
				if r := recover(); r != nil {
					msg = fmt.Sprint(r)
				}
			}()
			_, _ = Map(20, w, func(i int) (int, error) {
				if i == 4 || i == 11 {
					panic(fmt.Sprintf("job %d exploded", i))
				}
				return i, nil
			})
			return ""
		}()
		if !strings.Contains(got, "job 4") {
			t.Fatalf("workers=%d: recovered %q, want lowest panicking index 4", w, got)
		}
	}
}

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(1, 2, 3)
	if b := DeriveSeed(1, 2, 3); b != a {
		t.Fatalf("same inputs, different seeds: %d vs %d", a, b)
	}
	if DeriveSeed(1, 2, 4) == a || DeriveSeed(1, 3, 3) == a || DeriveSeed(2, 2, 3) == a {
		t.Fatal("varying any input must vary the seed")
	}
}

func TestDeriveSeedCollisionSmoke(t *testing.T) {
	for _, base := range []int64{0, 1, -1, 1 << 40} {
		seen := make(map[int64]string, 4*2000)
		for stream := uint64(1); stream <= 4; stream++ {
			for run := 0; run < 2000; run++ {
				s := DeriveSeed(base, stream, run)
				key := fmt.Sprintf("stream %d run %d", stream, run)
				if prev, dup := seen[s]; dup {
					t.Fatalf("base %d: seed collision between %s and %s", base, prev, key)
				}
				seen[s] = key
			}
		}
	}
}
