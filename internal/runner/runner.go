// Package runner is the deterministic worker-pool engine behind the
// experiment harness: it fans N independent jobs across a bounded set of
// goroutines while guaranteeing that every observable output — results,
// their order, and the propagated error — is identical for every worker
// count, including the sequential Workers=1 path.
//
// The determinism contract (DESIGN.md §8/§9) is preserved by construction:
//
//   - Results are collected by job index, never by completion order; the
//     caller merges them in index order after the barrier, so stats series
//     and text emission are bit-identical regardless of scheduling.
//   - On failure the error returned is the one produced by the lowest job
//     index that fails — exactly the error a sequential left-to-right run
//     would surface. Jobs are dispatched in increasing index order and a
//     job is only skipped when a lower-indexed job has already failed, so
//     the minimal failing index is always discovered.
//   - Each job derives its own randomness from DeriveSeed; no job shares
//     mutable state with another.
//
// The package itself uses no wall clock and no global rand source, so it
// passes the repository's dcclint gates and stays inside the "reproducible
// from Config alone" guarantee.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dcc/internal/telemetry"
)

// tel is the pool's registry, attached by Instrument. The pool is shared
// process-wide, so its telemetry hook is too; a nil registry (the
// default) makes every telemetry operation a no-op.
var tel atomic.Pointer[telemetry.Registry]

// Instrument routes the pool's metrics into reg: the deterministic
// runner.maps / runner.jobs counters, the runner.job span (per-job
// latency, when reg has a clock), and the runner.occupancy timing
// histogram of jobs-per-worker (scheduler-dependent by nature, so
// timing-class). Pass nil to detach.
func Instrument(reg *telemetry.Registry) { tel.Store(reg) }

// occupancyBounds buckets jobs-per-worker counts.
var occupancyBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Map runs job(0..n-1) across at most workers goroutines and returns the
// results indexed by job. workers ≤ 0 selects runtime.GOMAXPROCS(0);
// workers == 1 is the plain sequential loop. The result slice, the error
// (the lowest-index failure), and any panic surfaced are independent of
// the worker count.
//
// When a job fails, jobs with higher indices may be skipped; their slots
// in the (discarded) result slice stay zero. A panicking job does not
// crash the pool: the panic of the lowest panicking index is re-raised on
// the caller's goroutine after all workers have drained.
func Map[T any](n, workers int, job func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	reg := tel.Load()
	reg.Counter("runner.maps").Inc()
	reg.Counter("runner.jobs").Add(int64(n))
	occupancy := reg.TimingValues("runner.occupancy", occupancyBounds)
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			sp := reg.StartSpan("runner.job")
			v, err := job(i)
			sp.End()
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		occupancy.Observe(int64(n))
		return out, nil
	}

	var (
		next   atomic.Int64 // dispatch counter: indices are claimed in order
		failed atomic.Int64 // lowest job index that errored or panicked so far
		errs   = make([]error, n)
		panics = make([]*panicValue, n)
		wg     sync.WaitGroup
	)
	failed.Store(int64(n))

	// lowerFailure publishes i as a failure index, keeping the minimum.
	lowerFailure := func(i int) {
		for {
			cur := failed.Load()
			if int64(i) >= cur || failed.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	}

	runOne := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panics[i] = &panicValue{val: r}
				lowerFailure(i)
			}
		}()
		sp := reg.StartSpan("runner.job")
		v, err := job(i)
		sp.End()
		if err != nil {
			errs[i] = err
			lowerFailure(i)
			return
		}
		out[i] = v
	}

	perWorker := make([]int64, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				// Once some job below i has failed, i's result can never be
				// observed; every later dispatch is larger still, so stop.
				// Jobs with indices below the failure keep running, which is
				// what makes the final minimum deterministic.
				if int64(i) > failed.Load() {
					return
				}
				perWorker[w]++
				runOne(i)
			}
		}(w)
	}
	wg.Wait()
	for _, c := range perWorker {
		occupancy.Observe(c)
	}

	if f := failed.Load(); f < int64(n) {
		i := int(f)
		if p := panics[i]; p != nil {
			panic(fmt.Sprintf("runner: job %d panicked: %v", i, p.val))
		}
		return nil, errs[i]
	}
	return out, nil
}

// panicValue wraps a recovered panic so a nil entry means "no panic".
type panicValue struct{ val any }

// DeriveSeed deterministically derives the seed of one job from a base
// seed, a stream identifier, and a run index, via chained SplitMix64
// finalizers. Distinct (stream, run) pairs map to statistically
// independent, collision-free seeds (TestSeedDerivationDisjoint covers
// every stream the experiment harness uses for runs ≤ 10000), replacing
// the earlier ad-hoc `seed + run*prime` offsets whose streams overlap.
func DeriveSeed(base int64, stream uint64, run int) int64 {
	x := splitmix64(uint64(base))
	x = splitmix64(x ^ stream)
	x = splitmix64(x ^ uint64(int64(run)))
	return int64(x)
}

// splitmix64 is the finalizer of the SplitMix64 generator (Steele et al.,
// "Fast splittable pseudorandom number generators", OOPSLA 2014): a
// bijective avalanche mix on 64 bits.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
