// Package experiments regenerates every table and figure of the paper's
// evaluation section (§VI). Each runner prints the same rows/series the
// paper reports and returns them as data for tests and benchmarks.
//
// The absolute numbers differ from the paper (different random networks,
// synthetic trace), but the shapes the paper argues from — who wins, by
// roughly what factor, where the knees fall — are reproduced. EXPERIMENTS.md
// records paper-vs-measured values.
//
// Every Monte-Carlo loop runs on the deterministic worker pool of
// internal/runner: each run is a pure runOne(run) closure with its own
// seed derived from runner.DeriveSeed(cfg.Seed, stream, run), results are
// merged in run-index order after the barrier, and all text is emitted
// only after the merge — so every series and every byte of output is
// identical for any Workers value (the equivalence tests pin this).
package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"

	"dcc"
	"dcc/internal/core"
	"dcc/internal/cycles"
	"dcc/internal/hgc"
	"dcc/internal/nets"
	"dcc/internal/runner"
	"dcc/internal/stats"
	"dcc/internal/telemetry"
	"dcc/internal/trace"
)

// Config scales the harness. The zero value is filled with paper-like
// parameters; Quick selects a reduced configuration suitable for CI and
// benchmarks.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Runs is the number of random repetitions averaged (paper: 100).
	Runs int
	// Nodes is the deployment size for Figures 2–4 (paper: 1600).
	Nodes int
	// AvgDegree is the UDG density (paper: ≈25).
	AvgDegree float64
	// MaxTau bounds the confine-size sweep of Figure 3 (paper: 9).
	MaxTau int
	// Quick shrinks everything for fast runs.
	Quick bool
	// Workers bounds the number of Monte-Carlo runs in flight at once
	// (0 = GOMAXPROCS, 1 = sequential). Results are worker-count-invariant.
	Workers int
	// Telemetry, when non-nil, is threaded into the scheduling engines
	// (core.Options.Telemetry) and receives post-barrier aggregates from
	// the streaming experiment. Deterministic series stay worker-count-
	// invariant; enabling collection never changes any figure's output.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Runs == 0 {
		if c.Quick {
			c.Runs = 2
		} else {
			c.Runs = 10
		}
	}
	if c.Nodes == 0 {
		if c.Quick {
			c.Nodes = 300
		} else {
			c.Nodes = 1600
		}
	}
	if c.AvgDegree == 0 {
		c.AvgDegree = 25
	}
	if c.MaxTau == 0 {
		if c.Quick {
			c.MaxTau = 6
		} else {
			c.MaxTau = 9
		}
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// deploy builds one random deployment under the harness configuration,
// resampling until the network is fully 3-partitionable (H1-trivial Rips
// complex, the regime in which the HGC baseline is even defined and the
// paper's smooth curves arise). Random unit-disk deployments contain
// occasional Rips 4/5-holes — a quadrilateral with empty diagonal lenses,
// not a geometric hole — whose rate falls rapidly with density: at average
// degree 25 roughly one deployment in six qualifies; at 30+, most do. If
// no attempt qualifies, the best (smallest achievable τ) deployment is
// used — the schedules remain well-defined, only the τ-confine guarantee
// then starts above 3.
func (c Config) deploy(seed int64, gamma float64) (*dcc.Deployment, error) {
	var best *dcc.Deployment
	bestTau := int(^uint(0) >> 1)
	for attempt := 0; attempt < 25; attempt++ {
		dep, err := dcc.Deploy(dcc.DeployOptions{
			Nodes:     c.Nodes,
			AvgDegree: c.AvgDegree,
			Gamma:     gamma,
			Seed:      seed + int64(attempt)*1_000_003,
		})
		if err != nil {
			return nil, err
		}
		tau, err := dep.AchievableTau(8)
		if err != nil {
			continue
		}
		if tau == 3 {
			return dep, nil
		}
		if tau < bestTau {
			best, bestTau = dep, tau
		}
	}
	if best == nil {
		return nil, fmt.Errorf("experiments: no usable deployment after 25 attempts")
	}
	return best, nil
}

// Figure1Result reports the möbius-band comparison (paper Figure 1 and
// §IV-B).
type Figure1Result struct {
	// DCCCovered is the cycle-partition verdict (expected true).
	DCCCovered bool
	// HGCCovered is the homology verdict (expected false — the phantom
	// hole).
	HGCCovered bool
	// H1Rank is the first-homology rank of the möbius complex.
	H1Rank int
}

// Figure1 evaluates both criteria on the möbius-band network.
func Figure1(w io.Writer) (Figure1Result, error) {
	g, k, boundaryOrder := nets.Mobius()
	outer, err := cycles.FromVertices(g, boundaryOrder)
	if err != nil {
		return Figure1Result{}, err
	}
	res := Figure1Result{
		DCCCovered: cycles.Partitionable(g, outer.Vector(g.NumEdges()), 3),
		HGCCovered: hgc.Verify(g, nil),
		H1Rank:     k.H1Rank(),
	}
	fmt.Fprintf(w, "Figure 1 — möbius-band network (12 nodes, 28 links, 16 triangles)\n")
	fmt.Fprintf(w, "  cycle-partition criterion (DCC):  covered=%v\n", res.DCCCovered)
	fmt.Fprintf(w, "  homology-group criterion (HGC):   covered=%v (H1 rank %d)\n",
		res.HGCCovered, res.H1Rank)
	fmt.Fprintf(w, "  paper: DCC certifies full coverage; HGC reports a phantom hole\n")
	return res, nil
}

// Figure2Result holds one deletion snapshot per confine size.
type Figure2Result struct {
	Taus []int
	// KeptInternal is the number of internal nodes left per τ.
	KeptInternal []int
	// Results holds the full scheduling results (for rendering).
	Results []dcc.ScheduleResult
	// Dep is the deployment the snapshots were computed on.
	Dep *dcc.Deployment
}

// Figure2 reproduces the visual experiment of Figure 2: one random
// network, maximal vertex deletion for τ = 3..6. The four per-τ schedules
// are independent jobs and run on the worker pool.
func Figure2(w io.Writer, cfg Config) (Figure2Result, error) {
	cfg = cfg.withDefaults()
	n := cfg.Nodes
	if !cfg.Quick && n > 600 {
		n = 600 // the paper's Figure 2 network is small; keep it renderable
	}
	sub := cfg
	sub.Nodes = n
	dep, err := sub.deploy(runner.DeriveSeed(cfg.Seed, streamFig2Deploy, 0), math.Sqrt(3))
	if err != nil {
		return Figure2Result{}, err
	}
	taus := []int{3, 4, 5, 6}
	results, err := runner.Map(len(taus), cfg.Workers, func(i int) (dcc.ScheduleResult, error) {
		return dep.ScheduleDCC(taus[i], dcc.ScheduleOptions{
			Seed: runner.DeriveSeed(cfg.Seed, streamFig2Schedule, i),
		})
	})
	if err != nil {
		return Figure2Result{}, err
	}
	out := Figure2Result{Dep: dep}
	fmt.Fprintf(w, "Figure 2 — maximal vertex deletion snapshots (n=%d)\n", dep.G.NumNodes())
	for i, tau := range taus {
		res := results[i]
		out.Taus = append(out.Taus, tau)
		out.KeptInternal = append(out.KeptInternal, len(res.KeptInternal))
		out.Results = append(out.Results, res)
		fmt.Fprintf(w, "  τ=%d: internal nodes kept %4d / %4d (deleted %d)\n",
			tau, len(res.KeptInternal), n, len(res.Deleted))
	}
	return out, nil
}

// Figure3Result is the normalized coverage-set-size series of Figure 3.
type Figure3Result struct {
	Taus []int
	// Ratio[i] is size(τ_i-confine set) / size(3-confine set), averaged
	// over runs (y-axis of Figure 3).
	Ratio []float64
	// StdErr per point.
	StdErr []float64
}

// Figure3 reproduces the confine-size sweep: the number of nodes in the
// coverage set, normalized by the τ=3 result, for τ = 3..MaxTau. Runs are
// independent Monte-Carlo jobs on the worker pool.
func Figure3(w io.Writer, cfg Config) (Figure3Result, error) {
	cfg = cfg.withDefaults()
	taus := make([]int, 0, cfg.MaxTau-2)
	for tau := 3; tau <= cfg.MaxTau; tau++ {
		taus = append(taus, tau)
	}
	perRun, err := runner.Map(cfg.Runs, cfg.Workers, func(run int) ([]float64, error) {
		dep, err := cfg.deploy(runner.DeriveSeed(cfg.Seed, streamFig3Deploy, run), math.Sqrt(3))
		if err != nil {
			return nil, err
		}
		scheduleSeed := runner.DeriveSeed(cfg.Seed, streamFig3Schedule, run)
		ratios := make([]float64, len(taus))
		var base float64
		for i, tau := range taus {
			res, err := dep.ScheduleDCC(tau, dcc.ScheduleOptions{Seed: scheduleSeed})
			if err != nil {
				return nil, err
			}
			size := float64(len(res.KeptInternal))
			if i == 0 {
				if size == 0 {
					return nil, fmt.Errorf(
						"experiments: figure 3 run %d: τ=3 coverage set kept no internal nodes; normalized ratios are undefined (deployment too small or dense for a meaningful τ=3 baseline)", run)
				}
				base = size
			}
			ratios[i] = size / base
		}
		return ratios, nil
	})
	if err != nil {
		return Figure3Result{}, err
	}
	samples := make([][]float64, len(taus))
	for _, ratios := range perRun {
		for i := range taus {
			samples[i] = append(samples[i], ratios[i])
		}
	}
	out := Figure3Result{Taus: taus}
	series := stats.Series{Name: "size ratio"}
	errs := stats.Series{Name: "stderr"}
	for i, tau := range taus {
		out.Ratio = append(out.Ratio, stats.Mean(samples[i]))
		out.StdErr = append(out.StdErr, stats.StdErr(samples[i]))
		series.X = append(series.X, float64(tau))
		series.Y = append(series.Y, out.Ratio[i])
		errs.X = append(errs.X, float64(tau))
		errs.Y = append(errs.Y, out.StdErr[i])
	}
	fmt.Fprintf(w, "Figure 3 — coverage-set size vs confine size (n=%d, degree≈%.0f, %d runs)\n",
		cfg.Nodes, cfg.AvgDegree, cfg.Runs)
	fmt.Fprint(w, stats.Table("tau", series, errs))
	fmt.Fprintf(w, "  paper: ratio decreases from 1.0 (τ=3) to ≈0.4–0.5 (τ=9)\n")
	return out, nil
}

// Figure4Result is the saved-nodes comparison of Figure 4.
type Figure4Result struct {
	Gammas []float64
	// Lambda[d][i] is the saved-node fraction λ=(n1−n2)/n1 for
	// hole-diameter requirement DMaxes[d] at sensing ratio Gammas[i];
	// NaN marks infeasible configurations.
	DMaxes []float64
	Lambda [][]float64
}

// fig4Run is one Monte-Carlo run of Figure 4: the λ contribution per
// (Dmax, γ) cell, with has marking feasible cells. skip marks runs whose
// HGC baseline was empty (no contribution at all).
type fig4Run struct {
	skip   bool
	lambda [][]float64
	has    [][]bool
}

// Figure4 compares DCC against HGC over sensing ratios γ ∈ [1,2] and
// hole-diameter requirements {0, 0.4, 0.8, 1.2}·Rc. n1 is the HGC
// (triangle-granularity) coverage-set size; n2 the DCC size at the largest
// feasible τ (Proposition 1); λ = (n1−n2)/n1. Runs execute on the worker
// pool; per-cell averages are accumulated in run order after the barrier.
func Figure4(w io.Writer, cfg Config) (Figure4Result, error) {
	cfg = cfg.withDefaults()
	out := Figure4Result{
		Gammas: []float64{2.0, 1.8, 1.6, 1.4, 1.2, 1.0},
		DMaxes: []float64{0, 0.4, 0.8, 1.2},
	}
	out.Lambda = make([][]float64, len(out.DMaxes))
	for d := range out.Lambda {
		out.Lambda[d] = make([]float64, len(out.Gammas))
	}

	perRun, err := runner.Map(cfg.Runs, cfg.Workers, func(run int) (fig4Run, error) {
		// Rc (hence connectivity) is fixed; γ only rescales Rs, so one
		// deployment serves every point of the sweep, like the paper.
		dep, err := cfg.deploy(runner.DeriveSeed(cfg.Seed, streamFig4Deploy, run), 2.0)
		if err != nil {
			return fig4Run{}, err
		}
		scheduleSeed := runner.DeriveSeed(cfg.Seed, streamFig4Schedule, run)
		hgcRes, err := dep.ScheduleHGC(scheduleSeed)
		if err != nil {
			return fig4Run{}, err
		}
		n1 := float64(len(hgcRes.KeptInternal))
		if n1 == 0 {
			return fig4Run{skip: true}, nil
		}
		// Cache DCC sizes per τ for this deployment.
		dccSize := map[int]float64{3: float64(len(hgcRes.KeptInternal))}
		sizeFor := func(tau int) (float64, error) {
			if s, ok := dccSize[tau]; ok {
				return s, nil
			}
			res, err := dep.ScheduleDCC(tau, dcc.ScheduleOptions{Seed: scheduleSeed})
			if err != nil {
				return 0, err
			}
			s := float64(len(res.KeptInternal))
			dccSize[tau] = s
			return s, nil
		}
		r := fig4Run{
			lambda: make([][]float64, len(out.DMaxes)),
			has:    make([][]bool, len(out.DMaxes)),
		}
		for d, dmax := range out.DMaxes {
			r.lambda[d] = make([]float64, len(out.Gammas))
			r.has[d] = make([]bool, len(out.Gammas))
			for i, gamma := range out.Gammas {
				tau, err := core.PlanTau(core.Requirement{Gamma: gamma, MaxHoleDiameter: dmax})
				if err != nil {
					continue // infeasible: skip (HGC is no better here)
				}
				if tau > cfg.MaxTau {
					tau = cfg.MaxTau
				}
				n2, err := sizeFor(tau)
				if err != nil {
					return fig4Run{}, err
				}
				r.lambda[d][i] = (n1 - n2) / n1
				r.has[d][i] = true
			}
		}
		return r, nil
	})
	if err != nil {
		return Figure4Result{}, err
	}

	type sample struct{ sum, n float64 }
	acc := make([][]sample, len(out.DMaxes))
	for d := range acc {
		acc[d] = make([]sample, len(out.Gammas))
	}
	for _, r := range perRun {
		if r.skip {
			continue
		}
		for d := range out.DMaxes {
			for i := range out.Gammas {
				if r.has[d][i] {
					acc[d][i].sum += r.lambda[d][i]
					acc[d][i].n++
				}
			}
		}
	}
	series := make([]stats.Series, len(out.DMaxes))
	for d, dmax := range out.DMaxes {
		name := fmt.Sprintf("Dmax=%.1fRc", dmax)
		if dmax == 0 {
			name = "Full"
		}
		series[d].Name = name
		for i, gamma := range out.Gammas {
			v := math.NaN()
			if acc[d][i].n > 0 {
				v = acc[d][i].sum / acc[d][i].n
			}
			out.Lambda[d][i] = v
			series[d].X = append(series[d].X, gamma)
			series[d].Y = append(series[d].Y, v)
		}
	}
	fmt.Fprintf(w, "Figure 4 — nodes saved by DCC over HGC, λ=(n1−n2)/n1 (n=%d, %d runs)\n",
		cfg.Nodes, cfg.Runs)
	fmt.Fprint(w, stats.Table("gamma", series...))
	fmt.Fprintf(w, "  paper: λ grows with larger sensing ranges (smaller γ) and looser hole bounds\n")
	return out, nil
}

// traceConfig derives the trace-synthesis configuration from the harness
// configuration.
func (c Config) traceConfig() trace.Config {
	tc := trace.Config{Seed: runner.DeriveSeed(c.Seed, streamTrace, 0)}
	if c.Quick {
		tc.InteriorNodes = 120
		tc.Epochs = 40
	}
	return tc.ApplyDefaults()
}

// Figure5Result is the RSSI CDF of the (synthetic) trace.
type Figure5Result struct {
	// ThresholdDBm retains 80% of undirected edges.
	ThresholdDBm float64
	// DBm / Fraction are the CDF sample points (fraction of edges with
	// RSSI ≥ the threshold, matching the paper's y-axis).
	DBm      []float64
	Fraction []float64
	// Edges is the total undirected edge count.
	Edges int
}

// Figure5 reproduces the RSSI CDF: the proportion of edges with average
// RSSI greater than or equal to a threshold.
func Figure5(w io.Writer, cfg Config) (Figure5Result, error) {
	cfg = cfg.withDefaults()
	tr := trace.Generate(cfg.traceConfig())
	values := tr.RSSIValues()
	cdf := stats.NewCDF(values)
	out := Figure5Result{
		ThresholdDBm: tr.ThresholdForFraction(0.8),
		Edges:        len(values),
	}
	series := stats.Series{Name: "frac ≥ thr"}
	for dbm := -45.0; dbm >= -95; dbm -= 5 {
		frac := 1 - cdf.At(dbm)
		out.DBm = append(out.DBm, dbm)
		out.Fraction = append(out.Fraction, frac)
		series.X = append(series.X, dbm)
		series.Y = append(series.Y, frac)
	}
	fmt.Fprintf(w, "Figure 5 — CDF of edge RSSI (synthetic GreenOrbs trace, %d undirected edges)\n", out.Edges)
	fmt.Fprint(w, stats.Table("dBm", series))
	fmt.Fprintf(w, "  80%% retention threshold: %.1f dBm (paper: ≈ −85 dBm)\n", out.ThresholdDBm)
	return out, nil
}

// Figure6Result is the trace-topology confine-size sweep.
type Figure6Result struct {
	Taus []int
	// LeftInner is the number of internal nodes kept per τ.
	LeftInner []int
	// TotalInner is the internal node count of the trace network.
	TotalInner int
}

// Figure6 runs DCC on the trace topology for τ = 3..8 and reports the
// number of internal nodes left, as in the paper's Figure 6. The per-τ
// schedules are independent jobs on the worker pool.
func Figure6(w io.Writer, cfg Config) (Figure6Result, error) {
	cfg = cfg.withDefaults()
	tr := trace.Generate(cfg.traceConfig())
	net, err := tr.Network(tr.ThresholdForFraction(0.8))
	if err != nil {
		return Figure6Result{}, err
	}
	minTau, err := core.AchievableTau(net, 8)
	if err != nil {
		return Figure6Result{}, fmt.Errorf("trace network: %w", err)
	}
	const firstTau, lastTau = 3, 8
	results, err := runner.Map(lastTau-firstTau+1, cfg.Workers, func(i int) (core.Result, error) {
		return core.Schedule(net, core.Options{
			Tau: firstTau + i, Seed: cfg.Seed, Telemetry: cfg.Telemetry,
		})
	})
	if err != nil {
		return Figure6Result{}, err
	}
	out := Figure6Result{TotalInner: len(net.InternalNodes())}
	series := stats.Series{Name: "left nodes"}
	fmt.Fprintf(w, "Figure 6 — left internal nodes vs confine size (trace topology, %d internal nodes)\n",
		out.TotalInner)
	if minTau > 3 {
		fmt.Fprintf(w, "  note: trace boundary becomes partitionable at τ=%d\n", minTau)
	}
	for i, res := range results {
		tau := firstTau + i
		out.Taus = append(out.Taus, tau)
		out.LeftInner = append(out.LeftInner, len(res.KeptInternal))
		series.X = append(series.X, float64(tau))
		series.Y = append(series.Y, float64(len(res.KeptInternal)))
	}
	fmt.Fprint(w, stats.Table("tau", series))
	fmt.Fprintf(w, "  paper: sharp drop from τ=3 to τ=5, then flattening\n")
	return out, nil
}

// Figure7Result holds the trace snapshots.
type Figure7Result struct {
	Taus      []int
	LeftInner []int
	// Trace and Net expose the underlying data for rendering.
	Trace *trace.Trace
	Net   core.Network
	// Results holds the scheduling outcomes per τ.
	Results []core.Result
}

// Figure7 reproduces the trace-topology snapshots: DCC for τ = 3..7, with
// the number of inner-circle nodes left (paper: 17, 8, 6, 5, 4). The
// per-τ schedules are independent jobs on the worker pool.
func Figure7(w io.Writer, cfg Config) (Figure7Result, error) {
	cfg = cfg.withDefaults()
	tr := trace.Generate(cfg.traceConfig())
	net, err := tr.Network(tr.ThresholdForFraction(0.8))
	if err != nil {
		return Figure7Result{}, err
	}
	const firstTau, lastTau = 3, 7
	results, err := runner.Map(lastTau-firstTau+1, cfg.Workers, func(i int) (core.Result, error) {
		return core.Schedule(net, core.Options{
			Tau: firstTau + i, Seed: cfg.Seed, Telemetry: cfg.Telemetry,
		})
	})
	if err != nil {
		return Figure7Result{}, err
	}
	out := Figure7Result{Trace: tr, Net: net}
	fmt.Fprintf(w, "Figure 7 — trace-topology snapshots (%d nodes, %d boundary)\n",
		net.G.NumNodes(), len(net.BoundaryCycles[0]))
	for i, res := range results {
		tau := firstTau + i
		out.Taus = append(out.Taus, tau)
		out.LeftInner = append(out.LeftInner, len(res.KeptInternal))
		out.Results = append(out.Results, res)
		fmt.Fprintf(w, "  τ=%d: inner nodes left %d\n", tau, len(res.KeptInternal))
	}
	fmt.Fprintf(w, "  paper: 17, 8, 6, 5, 4 inner nodes for τ=3..7\n")
	return out, nil
}
