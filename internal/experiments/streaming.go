package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"

	"dcc/internal/core"
	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/runner"
	"dcc/internal/stream"
)

// streamingTau is the confine size of the streaming replay experiment.
// deploy() resamples until τ=3 is achievable, so τ=4 is always legal and
// gives the verdict memo a 2-hop neighborhood to work with.
const streamingTau = 4

// StreamingResult summarizes the event-sourced replay experiment: every
// run drives a mutation stream through the streaming engine (WAL
// attached), checks the cover against the batch canonical schedule of an
// independently maintained shadow topology at fixed checkpoints, then
// crashes the engine at a random WAL offset and re-converges via
// recovery plus producer redelivery.
type StreamingResult struct {
	Runs   int
	Events int
	// Checkpoints is the number of convergence checks per run;
	// Converged counts matches across all runs (success ⇒ Runs·Checkpoints).
	Checkpoints int
	Converged   int
	// Recovered counts crash-restart re-convergences (success ⇒ Runs).
	Recovered int
	// Per-run averages of the engine's own accounting.
	AvgApplied      float64
	AvgCoalesced    float64
	AvgRebuilds     float64
	AvgFastRestores float64
	AvgElections    float64
	// MemoHitRate is hits/(hits+misses) summed over all runs.
	MemoHitRate float64
}

// streamingRun is one Monte-Carlo run's contribution.
type streamingRun struct {
	converged int
	recovered int
	st        stream.Stats
}

// Streaming reproduces the dynamic-network claim of §V on the streaming
// engine: under continuous joins, departures, crashes and mobility the
// incrementally maintained cover stays identical to the from-scratch
// canonical schedule, and a crash at any WAL byte recovers to the same
// state. Runs are independent Monte-Carlo jobs on the worker pool.
func Streaming(w io.Writer, cfg Config) (StreamingResult, error) {
	cfg = cfg.withDefaults()
	events := 120
	if cfg.Quick {
		events = 40
	}
	const checkpoints = 4
	out := StreamingResult{Runs: cfg.Runs, Events: events, Checkpoints: checkpoints}

	perRun, err := runner.Map(cfg.Runs, cfg.Workers, func(run int) (streamingRun, error) {
		dep, err := cfg.deploy(runner.DeriveSeed(cfg.Seed, streamStreamEvents, run), math.Sqrt(3))
		if err != nil {
			return streamingRun{}, err
		}
		net := dep.Network()
		pos := make(map[graph.NodeID]geom.Point, len(dep.Points))
		for i, p := range dep.Points {
			pos[graph.NodeID(i)] = p
		}
		chaosSeed := runner.DeriveSeed(cfg.Seed, streamStreamChaos, run)
		var wal bytes.Buffer
		scfg := stream.Config{
			Tau: streamingTau, Seed: chaosSeed, Radius: dep.Rc,
			Positions: pos, WAL: &wal,
		}
		eng, err := stream.New(net, scfg)
		if err != nil {
			return streamingRun{}, err
		}
		mut := stream.NewMutator(net, scfg, runner.DeriveSeed(cfg.Seed, streamStreamEvents, run)+1)

		var r streamingRun
		all := make([]stream.Event, 0, events)
		every := events / checkpoints
		for i := 0; i < events; i++ {
			ev := mut.Next()
			all = append(all, ev)
			if err := eng.Ingest(ev); err != nil {
				return streamingRun{}, fmt.Errorf("run %d event %d (%v): %w", run, i, ev, err)
			}
			if (i+1)%every != 0 {
				continue
			}
			shadow := mut.Network(net)
			res, err := core.Schedule(shadow, core.Options{
				Tau: streamingTau, Seed: chaosSeed, Mode: core.Canonical,
			})
			if err != nil {
				return streamingRun{}, fmt.Errorf("run %d: batch schedule of shadow topology: %w", run, err)
			}
			want := stream.CoverFingerprintOf(streamingTau, chaosSeed, mut.Nodes(), mut.Edges(), res.KeptInternal)
			if eng.CoverFingerprint() != want {
				return streamingRun{}, fmt.Errorf(
					"run %d: streaming cover diverged from the batch canonical schedule after %d events", run, i+1)
			}
			r.converged++
		}

		// Crash at a random WAL byte, recover, redeliver, re-converge.
		image := wal.Bytes()
		rng := rand.New(rand.NewSource(chaosSeed))
		cut := 1 + rng.Intn(len(image))
		rcfg := scfg
		rcfg.WAL = nil
		rec, info, err := stream.Recover(net, rcfg, nil, bytes.NewReader(image[:cut]))
		if err != nil {
			return streamingRun{}, fmt.Errorf("run %d: recovery at WAL byte %d: %w", run, cut, err)
		}
		if info.ValidWALBytes > int64(cut) {
			return streamingRun{}, fmt.Errorf("run %d: recovery claims %d valid bytes from a %d-byte prefix",
				run, info.ValidWALBytes, cut)
		}
		for _, ev := range all {
			if ev.Seq <= rec.Watermark() {
				continue
			}
			if err := rec.Step(ev); err != nil {
				return streamingRun{}, fmt.Errorf("run %d: redelivery of %v: %w", run, ev, err)
			}
		}
		if rec.StateFingerprint() != eng.StateFingerprint() || rec.CoverFingerprint() != eng.CoverFingerprint() {
			return streamingRun{}, fmt.Errorf("run %d: crash-restart at WAL byte %d did not re-converge", run, cut)
		}
		r.recovered++
		r.st = eng.Stats()
		return r, nil
	})
	if err != nil {
		return StreamingResult{}, err
	}

	var hits, misses float64
	for _, r := range perRun {
		out.Converged += r.converged
		out.Recovered += r.recovered
		out.AvgApplied += float64(r.st.Applied)
		out.AvgCoalesced += float64(r.st.Coalesced)
		out.AvgRebuilds += float64(r.st.Rebuilds)
		out.AvgFastRestores += float64(r.st.FastRestores)
		out.AvgElections += float64(r.st.Elections)
		hits += float64(r.st.MemoHits)
		misses += float64(r.st.MemoMisses)
	}
	// Aggregate telemetry is published only here, after the barrier: the
	// per-run engines never see the registry, so no gauge is ever written
	// from a concurrent worker and the counter totals are plain sums of a
	// worker-count-invariant multiset.
	if reg := cfg.Telemetry; reg != nil {
		var applied, coalesced, rebuilds, restores, elections, hits, misses int64
		for _, r := range perRun {
			applied += int64(r.st.Applied)
			coalesced += int64(r.st.Coalesced)
			rebuilds += int64(r.st.Rebuilds)
			restores += int64(r.st.FastRestores)
			elections += int64(r.st.Elections)
			hits += int64(r.st.MemoHits)
			misses += int64(r.st.MemoMisses)
		}
		reg.Counter("experiments.stream.applied").Add(applied)
		reg.Counter("experiments.stream.coalesced").Add(coalesced)
		reg.Counter("experiments.stream.rebuilds").Add(rebuilds)
		reg.Counter("experiments.stream.fast_restores").Add(restores)
		reg.Counter("experiments.stream.elections").Add(elections)
		reg.Counter("experiments.stream.memo_hits").Add(hits)
		reg.Counter("experiments.stream.memo_misses").Add(misses)
		reg.Counter("experiments.stream.converged").Add(int64(out.Converged))
		reg.Counter("experiments.stream.recovered").Add(int64(out.Recovered))
	}

	n := float64(cfg.Runs)
	out.AvgApplied /= n
	out.AvgCoalesced /= n
	out.AvgRebuilds /= n
	out.AvgFastRestores /= n
	out.AvgElections /= n
	if hits+misses > 0 {
		out.MemoHitRate = hits / (hits + misses)
	}

	fmt.Fprintf(w, "Streaming — event-sourced coverage under churn (n=%d, %d runs × %d events, τ=%d)\n",
		cfg.Nodes, cfg.Runs, events, streamingTau)
	fmt.Fprintf(w, "  convergence checkpoints matched: %d/%d\n", out.Converged, cfg.Runs*checkpoints)
	fmt.Fprintf(w, "  crash-restart re-convergences:   %d/%d\n", out.Recovered, cfg.Runs)
	fmt.Fprintf(w, "  avg per run: applied %.1f  coalesced %.1f  rebuilds %.1f  fast restores %.1f  elections %.1f\n",
		out.AvgApplied, out.AvgCoalesced, out.AvgRebuilds, out.AvgFastRestores, out.AvgElections)
	fmt.Fprintf(w, "  verdict-memo hit rate: %.2f\n", out.MemoHitRate)
	fmt.Fprintf(w, "  streaming cover == batch canonical schedule at every checkpoint and after every crash\n")
	return out, nil
}
