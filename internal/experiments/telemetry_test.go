package experiments

import (
	"reflect"
	"strings"
	"testing"

	"dcc/internal/telemetry"
)

// TestTelemetryDoesNotPerturbResults pins the observability contract of
// DESIGN.md §14 from the experiment layer: enabling telemetry collection
// changes neither a figure's bytes nor its result struct, and the
// registry actually accumulates the deterministic series it promises.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	cfg := Config{Seed: 1, Runs: 2, Nodes: 100, MaxTau: 5, Quick: true, Workers: 4}

	type runFn func(w *strings.Builder, cfg Config) (any, error)
	cases := []struct {
		name string
		run  runFn
	}{
		{"Figure6", func(w *strings.Builder, cfg Config) (any, error) { return Figure6(w, cfg) }},
		{"Streaming", func(w *strings.Builder, cfg Config) (any, error) { return Streaming(w, cfg) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var off strings.Builder
			resOff, err := c.run(&off, cfg)
			if err != nil {
				t.Fatalf("telemetry off: %v", err)
			}

			reg := telemetry.NewWithClock(&telemetry.ManualClock{Tick: 1})
			on := cfg
			on.Telemetry = reg
			var onOut strings.Builder
			resOn, err := c.run(&onOut, on)
			if err != nil {
				t.Fatalf("telemetry on: %v", err)
			}

			if off.String() != onOut.String() {
				t.Fatalf("enabling telemetry changed the output\n--- off ---\n%s\n--- on ---\n%s",
					off.String(), onOut.String())
			}
			if !deepEqualNaN(reflect.ValueOf(resOff), reflect.ValueOf(resOn)) {
				t.Fatalf("enabling telemetry changed the result struct:\noff %+v\non  %+v", resOff, resOn)
			}
		})
	}
}

// TestTelemetrySeriesPopulated asserts the wiring is live: a figure run
// with a registry attached must account for every scheduled run and
// every verdict-cache lookup, and the streaming experiment must publish
// its post-barrier aggregates.
func TestTelemetrySeriesPopulated(t *testing.T) {
	cfg := Config{Seed: 1, Runs: 2, Nodes: 100, MaxTau: 5, Quick: true, Workers: 4}
	reg := telemetry.NewWithClock(&telemetry.ManualClock{Tick: 1})
	cfg.Telemetry = reg

	if _, err := Figure6(&strings.Builder{}, cfg); err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	// Figure6 schedules τ=3..8 over one deployment: exactly 6 runs.
	if got := reg.Counter("core.runs").Value(); got != 6 {
		t.Fatalf("core.runs = %d, want 6", got)
	}
	for _, name := range []string{"core.tests", "vpt.lookups"} {
		if reg.Counter(name).Value() == 0 {
			t.Fatalf("counter %s stayed zero after an instrumented Figure6 run", name)
		}
	}

	res, err := Streaming(&strings.Builder{}, cfg)
	if err != nil {
		t.Fatalf("Streaming: %v", err)
	}
	if got, want := reg.Counter("experiments.stream.converged").Value(), int64(res.Converged); got != want {
		t.Fatalf("experiments.stream.converged = %d, want %d", got, want)
	}
	if got, want := reg.Counter("experiments.stream.recovered").Value(), int64(res.Recovered); got != want {
		t.Fatalf("experiments.stream.recovered = %d, want %d", got, want)
	}
	if reg.Counter("experiments.stream.applied").Value() == 0 {
		t.Fatal("experiments.stream.applied stayed zero after an instrumented Streaming run")
	}
}
