package experiments

import (
	"strings"
	"testing"
)

func TestAblationEngines(t *testing.T) {
	var b strings.Builder
	res, err := AblationEngines(&b, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.KeptSequential <= 0 || res.KeptParallel <= 0 || res.KeptDistributed <= 0 {
		t.Fatalf("degenerate coverage sets: %+v", res)
	}
	// All engines land in the same ballpark (order effects only).
	lo, hi := res.KeptSequential, res.KeptSequential
	for _, v := range []float64{res.KeptParallel, res.KeptDistributed} {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 2.5*lo {
		t.Fatalf("engines diverge too much: %+v", res)
	}
	if res.Broadcasts <= 0 || res.KBytes <= 0 || res.Rounds <= 0 {
		t.Fatalf("distributed cost not recorded: %+v", res)
	}
	if !strings.Contains(b.String(), "Ablation") {
		t.Fatal("missing header")
	}
}

func TestAblationLoss(t *testing.T) {
	var b strings.Builder
	res, err := AblationLoss(&b, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LossRates) != len(res.Kept) || len(res.Kept) != len(res.CriterionOK) {
		t.Fatal("series lengths differ")
	}
	// Loss-free runs must always satisfy the criterion.
	if res.CriterionOK[0] != 1 {
		t.Fatalf("criterion violated without loss: %v", res.CriterionOK)
	}
	for i, k := range res.Kept {
		if k <= 0 {
			t.Fatalf("no nodes kept at loss %v", res.LossRates[i])
		}
	}
}

func TestAblationQuasiUDG(t *testing.T) {
	var b strings.Builder
	res, err := AblationQuasiUDG(&b, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.KeptUDG <= 0 || res.KeptQuasi <= 0 {
		t.Fatalf("degenerate coverage sets: %+v", res)
	}
	// The criterion must hold under both models whenever it held
	// initially (τ is chosen at or above the achievable value).
	if res.OKUDG < 1 || res.OKQuasi < 1 {
		t.Fatalf("criterion broken: %+v", res)
	}
}

func TestAblationRotation(t *testing.T) {
	var b strings.Builder
	res, err := AblationRotation(&b, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.PerEpoch <= 0 {
		t.Fatal("empty epochs")
	}
	if res.Distinct < res.PerEpoch {
		t.Fatalf("distinct nodes %v below per-epoch %v", res.Distinct, res.PerEpoch)
	}
	if res.MaxDuty > float64(res.Epochs) {
		t.Fatalf("duty %v exceeds epochs %d", res.MaxDuty, res.Epochs)
	}
}
