package experiments

import (
	"fmt"
	"io"
	"reflect"

	"dcc/internal/core"
	"dcc/internal/runner"
	"dcc/internal/shard"
)

// shardedTau is the confine size of the shard-engine experiment; matches
// the streaming experiment so the two dynamic/scale extensions report on
// the same verdict locality (k = 2 hops).
const shardedTau = 4

// shardedCounts is the shard-count sweep checked against the unsharded
// canonical engine in every run. Stats are reported at the largest count,
// where cross-shard coordination (halo deltas, batch aborts) is busiest.
var shardedCounts = []int{1, 4, 9}

// ShardedResult summarizes the spatial-shard-engine experiment: every run
// schedules one deployment with the unsharded canonical engine and with
// the shard engine at each shard count, requiring byte-identical results,
// and reports the coordinator's work profile at the largest shard count.
type ShardedResult struct {
	Runs int
	Tau  int
	// Matched counts byte-identical (deployment, shard-count) schedules;
	// success ⇒ Runs·len(shardedCounts).
	Matched int
	// Per-run averages of the canonical schedule being reproduced.
	AvgDeletions float64
	AvgTests     float64
	// Coordinator profile at the largest shard count, averaged per run.
	AvgBatches    float64
	AvgDeferred   float64
	AvgHaloDeltas float64
	// AvgReplication is mean total shard residents (owned + halo copies)
	// divided by n — the memory price of the halo invariant.
	AvgReplication float64
}

// shardedRun is one Monte-Carlo run's contribution.
type shardedRun struct {
	matched   int
	deletions int
	tests     int
	st        shard.Stats
	nodes     int
}

// Sharded exercises the spatial shard engine (DESIGN.md §15) as a figure
// runner: the sharded schedule must equal the unsharded canonical engine
// for every shard count, on every deployment, while the engine only ever
// materializes per-shard subgraphs. Runs are independent Monte-Carlo jobs
// on the worker pool; the shard engine's own parallel sections run
// sequentially inside each job so the outer pool owns all concurrency.
func Sharded(w io.Writer, cfg Config) (ShardedResult, error) {
	cfg = cfg.withDefaults()
	out := ShardedResult{Runs: cfg.Runs, Tau: shardedTau}

	perRun, err := runner.Map(cfg.Runs, cfg.Workers, func(run int) (shardedRun, error) {
		dep, err := cfg.deploy(runner.DeriveSeed(cfg.Seed, streamShardedDeploy, run), 1.0)
		if err != nil {
			return shardedRun{}, err
		}
		schedSeed := runner.DeriveSeed(cfg.Seed, streamShardedSchedule, run)
		net, _, err := core.RepairBoundaries(dep.Network())
		if err != nil {
			return shardedRun{}, err
		}
		want, err := core.Schedule(net, core.Options{Tau: shardedTau, Seed: schedSeed, Mode: core.Canonical})
		if err != nil {
			return shardedRun{}, fmt.Errorf("run %d: canonical reference: %w", run, err)
		}

		boundary := make([]bool, len(dep.Points))
		for _, v := range dep.BoundaryNodes {
			boundary[v] = true
		}
		in := shard.Input{Points: dep.Points, Rc: dep.Rc, Boundary: boundary, G: dep.G}

		r := shardedRun{deletions: want.Stats.Deletions, tests: want.Stats.Tests, nodes: len(dep.Points)}
		for _, shards := range shardedCounts {
			got, st, err := shard.Schedule(in, shard.Options{
				Tau: shardedTau, Seed: schedSeed, Shards: shards, Workers: 1,
			})
			if err != nil {
				return shardedRun{}, fmt.Errorf("run %d shards=%d: %w", run, shards, err)
			}
			if !reflect.DeepEqual(want, got) {
				return shardedRun{}, fmt.Errorf(
					"run %d shards=%d: sharded schedule diverged from the unsharded canonical engine", run, shards)
			}
			r.matched++
			r.st = st
		}
		return r, nil
	})
	if err != nil {
		return ShardedResult{}, err
	}

	for _, r := range perRun {
		out.Matched += r.matched
		out.AvgDeletions += float64(r.deletions)
		out.AvgTests += float64(r.tests)
		out.AvgBatches += float64(r.st.Batches)
		out.AvgDeferred += float64(r.st.Deferred)
		out.AvgHaloDeltas += float64(r.st.HaloDeltas)
		out.AvgReplication += float64(r.st.Replicas) / float64(r.nodes)
	}
	// Aggregate telemetry is published only here, after the barrier, like
	// the streaming experiment: per-run engines never see the registry.
	if reg := cfg.Telemetry; reg != nil {
		var batches, deferred, deltas int64
		for _, r := range perRun {
			batches += int64(r.st.Batches)
			deferred += int64(r.st.Deferred)
			deltas += int64(r.st.HaloDeltas)
		}
		reg.Counter("experiments.sharded.matched").Add(int64(out.Matched))
		reg.Counter("experiments.sharded.batches").Add(batches)
		reg.Counter("experiments.sharded.deferred").Add(deferred)
		reg.Counter("experiments.sharded.halo_deltas").Add(deltas)
	}

	n := float64(cfg.Runs)
	out.AvgDeletions /= n
	out.AvgTests /= n
	out.AvgBatches /= n
	out.AvgDeferred /= n
	out.AvgHaloDeltas /= n
	out.AvgReplication /= n

	fmt.Fprintf(w, "Sharded — spatial shard engine vs unsharded canonical (n=%d, %d runs, τ=%d, shards %v)\n",
		cfg.Nodes, cfg.Runs, shardedTau, shardedCounts)
	fmt.Fprintf(w, "  byte-identical schedules: %d/%d\n", out.Matched, cfg.Runs*len(shardedCounts))
	fmt.Fprintf(w, "  avg per run: deletions %.1f  tests %.1f\n", out.AvgDeletions, out.AvgTests)
	fmt.Fprintf(w, "  coordinator at %d shards: batches %.1f  deferred %.1f  halo deltas %.1f  replication ×%.2f\n",
		shardedCounts[len(shardedCounts)-1], out.AvgBatches, out.AvgDeferred, out.AvgHaloDeltas, out.AvgReplication)
	return out, nil
}
