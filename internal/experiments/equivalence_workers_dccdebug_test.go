//go:build dccdebug

package experiments

// equivalenceWorkers under the dccdebug deep-assertion build: the per
// super-round MIS assertions make distributed runs several times more
// expensive, so the matrix shrinks to the sequential path plus one
// parallel width. The full {1, 2, 4, 8} matrix runs in the default -race
// gate (equivalence_workers_default_test.go).
var equivalenceWorkers = []int{1, 4}
