package experiments

import (
	"fmt"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"dcc/internal/runner"
	"dcc/internal/telemetry"
)

// equivalenceWorkers (declared in equivalence_workers_*.go) are the pool
// sizes across which every figure and ablation must produce byte-identical
// output and deeply equal results (the keystone test of the parallel
// experiment engine; see DESIGN.md §9).

// equivCases enumerates every figure runner and ablation of the harness.
// Each returns its result as any for the NaN-tolerant deep comparison.
// The ablations exercise the distributed protocol, which is far more
// expensive per run, so they use a smaller deployment; both sizes keep
// Runs=2 so the index-ordered merge is genuinely exercised.
func equivCases() []struct {
	name string
	cfg  Config
	run  func(w io.Writer, cfg Config) (any, error)
} {
	figCfg := Config{Seed: 1, Runs: 2, Nodes: 100, MaxTau: 5, Quick: true}
	ablCfg := Config{Seed: 1, Runs: 2, Nodes: 40, MaxTau: 5, Quick: true}
	return []struct {
		name string
		cfg  Config
		run  func(w io.Writer, cfg Config) (any, error)
	}{
		{"Figure1", figCfg, func(w io.Writer, cfg Config) (any, error) { return Figure1(w) }},
		{"Figure2", figCfg, func(w io.Writer, cfg Config) (any, error) { return Figure2(w, cfg) }},
		{"Figure3", figCfg, func(w io.Writer, cfg Config) (any, error) { return Figure3(w, cfg) }},
		{"Figure4", figCfg, func(w io.Writer, cfg Config) (any, error) { return Figure4(w, cfg) }},
		{"Figure5", figCfg, func(w io.Writer, cfg Config) (any, error) { return Figure5(w, cfg) }},
		{"Figure6", figCfg, func(w io.Writer, cfg Config) (any, error) { return Figure6(w, cfg) }},
		{"Figure7", figCfg, func(w io.Writer, cfg Config) (any, error) { return Figure7(w, cfg) }},
		{"AblationEngines", ablCfg, func(w io.Writer, cfg Config) (any, error) { return AblationEngines(w, cfg) }},
		{"AblationLoss", ablCfg, func(w io.Writer, cfg Config) (any, error) { return AblationLoss(w, cfg) }},
		{"AblationReliability", ablCfg, func(w io.Writer, cfg Config) (any, error) { return AblationReliability(w, cfg) }},
		{"AblationQuasiUDG", ablCfg, func(w io.Writer, cfg Config) (any, error) { return AblationQuasiUDG(w, cfg) }},
		{"AblationRotation", ablCfg, func(w io.Writer, cfg Config) (any, error) { return AblationRotation(w, cfg) }},
		{"ScenarioOracles", figCfg, func(w io.Writer, cfg Config) (any, error) { return ScenarioOracles(w, cfg) }},
		{"ScenarioStability", figCfg, func(w io.Writer, cfg Config) (any, error) { return ScenarioStability(w, cfg) }},
		{"Streaming", figCfg, func(w io.Writer, cfg Config) (any, error) { return Streaming(w, cfg) }},
		{"Sharded", figCfg, func(w io.Writer, cfg Config) (any, error) { return Sharded(w, cfg) }},
		// Telemetry re-runs a figure and the streaming experiment with a
		// live registry (manual clock, instrumented worker pool) and folds
		// the registry's deterministic-class fingerprint into the compared
		// output, pinning that every deterministic series is itself
		// worker-count-invariant — not just that collection is harmless.
		{"Telemetry", figCfg, func(w io.Writer, cfg Config) (any, error) {
			reg := telemetry.NewWithClock(&telemetry.ManualClock{Tick: 1})
			runner.Instrument(reg)
			defer runner.Instrument(nil)
			cfg.Telemetry = reg
			if _, err := Figure6(w, cfg); err != nil {
				return nil, err
			}
			res, err := Streaming(w, cfg)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(w, "  deterministic telemetry fingerprint: %x\n", reg.Fingerprint())
			return res, nil
		}},
	}
}

// TestWorkerCountEquivalence pins the determinism contract of the parallel
// experiment engine: for every figure and ablation, any worker count
// yields the same bytes on the io.Writer and the same result struct as the
// sequential Workers=1 path. Under the dccdebug deep-assertion build the
// worker matrix shrinks to {1, 4} (equivalenceWorkers in the tagged
// files): the per-round MIS assertions multiply distributed-run cost, and
// the full {1,2,4,8} matrix is already pinned by the default -race gate.
func TestWorkerCountEquivalence(t *testing.T) {
	for _, c := range equivCases() {
		t.Run(c.name, func(t *testing.T) {
			var refOut string
			var refRes any
			for i, workers := range equivalenceWorkers {
				cfg := c.cfg
				cfg.Workers = workers
				var b strings.Builder
				res, err := c.run(&b, cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if i == 0 {
					refOut, refRes = b.String(), res
					continue
				}
				if b.String() != refOut {
					t.Fatalf("workers=%d: output differs from workers=%d\n--- want ---\n%s\n--- got ---\n%s",
						workers, equivalenceWorkers[0], refOut, b.String())
				}
				if !deepEqualNaN(reflect.ValueOf(refRes), reflect.ValueOf(res)) {
					t.Fatalf("workers=%d: result struct differs from workers=%d:\nwant %+v\ngot  %+v",
						workers, equivalenceWorkers[0], refRes, res)
				}
			}
		})
	}
}

// deepEqualNaN is reflect.DeepEqual with one relaxation: two NaN floats in
// the same position compare equal (Figure 4 marks infeasible cells NaN,
// and NaN != NaN would otherwise fail the comparison on identical runs).
// It reads unexported fields without calling Interface(), so it works on
// the graph/network internals embedded in the result structs.
func deepEqualNaN(a, b reflect.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case reflect.Invalid:
		return b.Kind() == reflect.Invalid
	case reflect.Float32, reflect.Float64:
		af, bf := a.Float(), b.Float()
		return af == bf || (math.IsNaN(af) && math.IsNaN(bf))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return a.Int() == b.Int()
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return a.Uint() == b.Uint()
	case reflect.Bool:
		return a.Bool() == b.Bool()
	case reflect.String:
		return a.String() == b.String()
	case reflect.Ptr, reflect.Interface:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		return deepEqualNaN(a.Elem(), b.Elem())
	case reflect.Struct:
		if a.Type() != b.Type() {
			return false
		}
		for i := 0; i < a.NumField(); i++ {
			if !deepEqualNaN(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	case reflect.Slice, reflect.Array:
		if a.Kind() == reflect.Slice && (a.IsNil() || b.IsNil()) {
			return a.IsNil() == b.IsNil() && a.Len() == b.Len()
		}
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !deepEqualNaN(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Map:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil() && a.Len() == b.Len()
		}
		if a.Len() != b.Len() {
			return false
		}
		iter := a.MapRange()
		for iter.Next() {
			bv := b.MapIndex(iter.Key())
			if !bv.IsValid() || !deepEqualNaN(iter.Value(), bv) {
				return false
			}
		}
		return true
	default:
		// Chan/Func/UnsafePointer do not occur in result structs.
		return false
	}
}

// TestDeepEqualNaN pins the helper itself.
func TestDeepEqualNaN(t *testing.T) {
	type s struct {
		f float64
		v []float64
	}
	a := s{f: math.NaN(), v: []float64{1, math.NaN()}}
	b := s{f: math.NaN(), v: []float64{1, math.NaN()}}
	c := s{f: math.NaN(), v: []float64{2, math.NaN()}}
	if !deepEqualNaN(reflect.ValueOf(a), reflect.ValueOf(b)) {
		t.Fatal("identical NaN structs must compare equal")
	}
	if deepEqualNaN(reflect.ValueOf(a), reflect.ValueOf(c)) {
		t.Fatal("differing structs must not compare equal")
	}
}

// TestFigure3EmptyBaseErrors is the regression test for the former silent
// `base == 0 → base = 1` fallback: a deployment whose τ=3 schedule keeps
// no internal nodes makes every normalized ratio meaningless, so Figure3
// must fail loudly — and identically on the sequential and parallel paths.
func TestFigure3EmptyBaseErrors(t *testing.T) {
	cfg := Config{Seed: 1, Runs: 1, Nodes: 8, AvgDegree: 8, MaxTau: 3, Quick: true}
	var first string
	for _, workers := range []int{1, 4} {
		c := cfg
		c.Workers = workers
		_, err := Figure3(io.Discard, c)
		if err == nil {
			t.Fatalf("workers=%d: empty τ=3 cover must be an error, not a silent base=1 fallback", workers)
		}
		if !strings.Contains(err.Error(), "kept no internal nodes") {
			t.Fatalf("workers=%d: undescriptive error: %v", workers, err)
		}
		if first == "" {
			first = err.Error()
		} else if err.Error() != first {
			t.Fatalf("error differs across worker counts: %q vs %q", first, err.Error())
		}
	}
}

// TestSeedDerivationDisjoint asserts that the per-run seed streams of all
// figure runners and ablations never collide for Runs ≤ 10000 — the
// guarantee the old ad-hoc `seed + run*prime` offsets silently lacked
// (e.g. fig3's deploy seed at run=1 equalled fig4's schedule seed at
// run=7919).
func TestSeedDerivationDisjoint(t *testing.T) {
	const maxRuns = 10_000
	for _, base := range []int64{0, 1, 42} {
		seen := make(map[int64]string, len(seedStreams)*maxRuns)
		for name, stream := range seedStreams {
			for run := 0; run < maxRuns; run++ {
				s := runner.DeriveSeed(base, stream, run)
				if prev, dup := seen[s]; dup {
					t.Fatalf("base %d: stream %q run %d collides with %s (seed %d)",
						base, name, run, prev, s)
				}
				seen[s] = name
			}
		}
	}
}
