// Stream-id registry of the experiment harness. This file is the single
// place stream constants are declared: the streamid analyzer requires every
// runner.DeriveSeed call to pass one of these names, and streams_test.go
// holds the registry to its invariants (unique values, exhaustive naming,
// kebab-case pairing), so adding a stream here is a compile-plus-test-
// checked operation, not a convention.
package experiments

// Seed streams of the harness. Every randomized draw derives its seed as
// runner.DeriveSeed(cfg.Seed, stream, run); distinct streams keep the
// figure runners' randomness disjoint no matter how many runners exist
// (TestSeedDerivationDisjoint checks all of them for Runs ≤ 10000).
//
// Values are iota-assigned, so uniqueness inside this block is structural;
// the stream constants living outside this package
// (core.streamBiasedShuffle = 0x62696173 and core.streamCanonicalPriority
// = 0x63616e6f) are far above this range by construction, and
// TestStreamRegistry pins the ceiling at the lower of the two.
const (
	streamFig2Deploy uint64 = iota + 1
	streamFig2Schedule
	streamFig3Deploy
	streamFig3Schedule
	streamFig4Deploy
	streamFig4Schedule
	streamTrace // Figures 5–7 share one synthetic trace
	streamEnginesDeploy
	streamEnginesSchedule
	streamLossDeploy
	streamLossSchedule
	streamQuasiDeploy
	streamQuasiSchedule
	streamRotationDeploy
	streamRotationSchedule
	streamReliabilityDeploy
	streamReliabilitySchedule
	streamScenarioSchedule
	streamStabilityJitter
	streamStreamEvents // streaming replay: deployment + Mutator event randomness
	streamStreamChaos  // streaming replay: engine/schedule seed + crash offsets
	streamShardedDeploy
	streamShardedSchedule
)

// seedStreams names every stream above for the disjointness and registry
// tests. The key is the kebab-case form of the constant name minus its
// "stream" prefix; TestStreamRegistry enforces the pairing.
var seedStreams = map[string]uint64{
	"fig2-deploy":          streamFig2Deploy,
	"fig2-schedule":        streamFig2Schedule,
	"fig3-deploy":          streamFig3Deploy,
	"fig3-schedule":        streamFig3Schedule,
	"fig4-deploy":          streamFig4Deploy,
	"fig4-schedule":        streamFig4Schedule,
	"trace":                streamTrace,
	"engines-deploy":       streamEnginesDeploy,
	"engines-schedule":     streamEnginesSchedule,
	"loss-deploy":          streamLossDeploy,
	"loss-schedule":        streamLossSchedule,
	"quasi-deploy":         streamQuasiDeploy,
	"quasi-schedule":       streamQuasiSchedule,
	"rotation-deploy":      streamRotationDeploy,
	"rotation-schedule":    streamRotationSchedule,
	"reliability-deploy":   streamReliabilityDeploy,
	"reliability-schedule": streamReliabilitySchedule,
	"scenario-schedule":    streamScenarioSchedule,
	"stability-jitter":     streamStabilityJitter,
	"stream-events":        streamStreamEvents,
	"stream-chaos":         streamStreamChaos,
	"sharded-deploy":       streamShardedDeploy,
	"sharded-schedule":     streamShardedSchedule,
}
