package experiments

import (
	"io"
	"math"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests. MaxTau ends on
// an even confine size: odd values are neighbourhood-radius jumps
// (k = ⌈τ/2⌉ grows), where void pockets can transiently suppress deletions
// (see the Figure 3 notes in EXPERIMENTS.md).
func tiny() Config {
	return Config{Seed: 1, Runs: 1, Nodes: 150, MaxTau: 6, Quick: true}
}

func TestFigure1(t *testing.T) {
	var b strings.Builder
	res, err := Figure1(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DCCCovered {
		t.Fatal("DCC must certify the möbius network")
	}
	if res.HGCCovered {
		t.Fatal("HGC must report a phantom hole on the möbius network")
	}
	if res.H1Rank != 1 {
		t.Fatalf("H1 rank = %d, want 1", res.H1Rank)
	}
	if !strings.Contains(b.String(), "Figure 1") {
		t.Fatal("missing output header")
	}
}

func TestFigure2(t *testing.T) {
	var b strings.Builder
	res, err := Figure2(&b, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Taus) != 4 {
		t.Fatalf("want 4 snapshots, got %d", len(res.Taus))
	}
	// Single-run size series may bump at neighbourhood-radius jumps
	// (τ=5); the end-to-end reduction is what Figure 2 demonstrates.
	first, last := res.KeptInternal[0], res.KeptInternal[len(res.KeptInternal)-1]
	if last > first {
		t.Fatalf("τ=6 kept more than τ=3: %v", res.KeptInternal)
	}
	if res.Dep == nil || len(res.Results) != 4 {
		t.Fatal("missing rendering data")
	}
}

func TestFigure3(t *testing.T) {
	var b strings.Builder
	res, err := Figure3(&b, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Taus) == 0 || res.Taus[0] != 3 {
		t.Fatalf("tau sweep wrong: %v", res.Taus)
	}
	if math.Abs(res.Ratio[0]-1.0) > 1e-9 {
		t.Fatalf("τ=3 ratio = %v, want 1.0 (normalization)", res.Ratio[0])
	}
	// Shape: overall decline; single-run series may bump at the
	// neighbourhood-radius jump (τ=5).
	last := res.Ratio[len(res.Ratio)-1]
	if last >= 1.0 {
		t.Fatalf("largest τ saved nothing: %v", res.Ratio)
	}
	for i := 1; i < len(res.Ratio); i++ {
		if res.Ratio[i] > res.Ratio[i-1]+0.5 {
			t.Fatalf("ratio spiked implausibly: %v", res.Ratio)
		}
	}
	if !strings.Contains(b.String(), "Figure 3") {
		t.Fatal("missing output header")
	}
}

func TestFigure4(t *testing.T) {
	var b strings.Builder
	res, err := Figure4(&b, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lambda) != 4 || len(res.Lambda[0]) != len(res.Gammas) {
		t.Fatal("lambda matrix malformed")
	}
	// λ must never be meaningfully negative (DCC never keeps more than
	// the τ=3 pattern) and must be positive somewhere.
	positive := false
	for d := range res.Lambda {
		for i, v := range res.Lambda[d] {
			if math.IsNaN(v) {
				continue
			}
			if v < -0.05 {
				t.Fatalf("λ[%d][%d] = %v strongly negative", d, i, v)
			}
			if v > 0.01 {
				positive = true
			}
		}
	}
	if !positive {
		t.Fatal("DCC saved nodes nowhere")
	}
	// Blanket coverage at γ=2 is infeasible for any connectivity method.
	if !math.IsNaN(res.Lambda[0][0]) {
		t.Fatalf("λ(Full, γ=2) = %v, want NaN (infeasible)", res.Lambda[0][0])
	}
	// γ=1 admits τ=6 blanket coverage → strictly better than HGC.
	full := res.Lambda[0]
	if v := full[len(full)-1]; math.IsNaN(v) || v <= 0 {
		t.Fatalf("λ(Full, γ=1) = %v, want > 0", v)
	}
}

func TestFigure5(t *testing.T) {
	var b strings.Builder
	res, err := Figure5(&b, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges == 0 {
		t.Fatal("no edges in trace")
	}
	// Fraction of edges ≥ threshold grows as the threshold loosens.
	for i := 1; i < len(res.Fraction); i++ {
		if res.Fraction[i] < res.Fraction[i-1]-1e-9 {
			t.Fatalf("CDF fraction not monotone: %v", res.Fraction)
		}
	}
	if res.Fraction[len(res.Fraction)-1] < 0.99 {
		t.Fatalf("fraction at −95 dBm = %v, want ≈1", res.Fraction[len(res.Fraction)-1])
	}
	if res.ThresholdDBm > -60 || res.ThresholdDBm < -95 {
		t.Fatalf("80%% threshold %v dBm implausible", res.ThresholdDBm)
	}
}

func TestFigure6(t *testing.T) {
	var b strings.Builder
	res, err := Figure6(&b, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Taus) != 6 {
		t.Fatalf("want τ=3..8, got %v", res.Taus)
	}
	// The headline effect: a large reduction from the full population,
	// with τ=8 at or below τ=3 (monotone up to radius-jump bumps).
	first, last := res.LeftInner[0], res.LeftInner[len(res.LeftInner)-1]
	if last > first {
		t.Fatalf("τ=8 kept more than τ=3: %v", res.LeftInner)
	}
	if last >= res.TotalInner {
		t.Fatalf("no reduction: %v of %d", res.LeftInner, res.TotalInner)
	}
}

func TestFigure7(t *testing.T) {
	var b strings.Builder
	res, err := Figure7(&b, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Taus) != 5 {
		t.Fatalf("want τ=3..7, got %v", res.Taus)
	}
	for i, n := range res.LeftInner {
		if n < 0 || n > res.Net.G.NumNodes() {
			t.Fatalf("snapshot %d has %d nodes", i, n)
		}
	}
	if res.Trace == nil || len(res.Results) != 5 {
		t.Fatal("missing rendering data")
	}
}

func TestConfigDefaults(t *testing.T) {
	full := Config{}.withDefaults()
	if full.Nodes != 1600 || full.MaxTau != 9 || full.Runs != 10 {
		t.Fatalf("full defaults: %+v", full)
	}
	quick := Config{Quick: true}.withDefaults()
	if quick.Nodes != 300 || quick.MaxTau != 6 || quick.Runs != 2 {
		t.Fatalf("quick defaults: %+v", quick)
	}
}

func TestDeployConfig(t *testing.T) {
	cfg := tiny().withDefaults()
	dep, err := cfg.deploy(99, math.Sqrt(3))
	if err != nil {
		t.Fatal(err)
	}
	if dep.G.NumNodes() <= cfg.Nodes {
		t.Fatal("deployment missing boundary ring")
	}
	if math.Abs(dep.Gamma()-math.Sqrt(3)) > 1e-9 {
		t.Fatalf("gamma = %v", dep.Gamma())
	}
}

func BenchmarkFigure3Tiny(b *testing.B) {
	cfg := tiny()
	for i := 0; i < b.N; i++ {
		if _, err := Figure3(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
