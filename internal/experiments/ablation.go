package experiments

import (
	"fmt"
	"io"
	"math"

	"dcc"
	"dcc/internal/dist"
	"dcc/internal/runner"
	"dcc/internal/stats"
)

// EnginesResult compares the three scheduling engines on identical
// networks: the sequential oracle, the MIS-parallel round engine, and the
// fully distributed message-passing protocol.
type EnginesResult struct {
	Tau int
	// KeptSequential/KeptParallel/KeptDistributed are mean coverage-set
	// sizes.
	KeptSequential, KeptParallel, KeptDistributed float64
	// TestsSequential/TestsParallel/TestsDistributed are mean deletability
	// test counts.
	TestsSequential, TestsParallel, TestsDistributed float64
	// Rounds is the mean number of MIS super-rounds of the distributed
	// engine; Broadcasts and KBytes its mean radio cost.
	Rounds, Broadcasts, KBytes float64
}

// enginesRun is one Monte-Carlo run of the engines ablation.
type enginesRun struct {
	kept, tests            [3]float64
	rounds, bcasts, kbytes float64
}

// AblationEngines quantifies what distribution costs: all three engines
// must land on locally-maximal coverage sets of comparable size; the
// distributed protocol pays communication for it. Runs execute on the
// worker pool; means are computed after the barrier in run order.
func AblationEngines(w io.Writer, cfg Config) (EnginesResult, error) {
	cfg = cfg.withDefaults()
	tau := 4
	out := EnginesResult{Tau: tau}
	perRun, err := runner.Map(cfg.Runs, cfg.Workers, func(run int) (enginesRun, error) {
		dep, err := cfg.deploy(runner.DeriveSeed(cfg.Seed, streamEnginesDeploy, run), math.Sqrt(3))
		if err != nil {
			return enginesRun{}, err
		}
		scheduleSeed := runner.DeriveSeed(cfg.Seed, streamEnginesSchedule, run)
		seq, err := dep.ScheduleDCC(tau, dcc.ScheduleOptions{Seed: scheduleSeed})
		if err != nil {
			return enginesRun{}, err
		}
		par, err := dep.ScheduleDCC(tau, dcc.ScheduleOptions{
			Seed: scheduleSeed, Parallel: true, Workers: cfg.Workers,
		})
		if err != nil {
			return enginesRun{}, err
		}
		dst, err := dep.ScheduleDCCDistributed(dist.Config{Tau: tau, Seed: scheduleSeed})
		if err != nil {
			return enginesRun{}, err
		}
		return enginesRun{
			kept: [3]float64{
				float64(len(seq.KeptInternal)),
				float64(len(par.KeptInternal)),
				float64(len(dst.KeptInternal)),
			},
			tests: [3]float64{
				float64(seq.Stats.Tests),
				float64(par.Stats.Tests),
				float64(dst.Stats.Tests),
			},
			rounds: float64(dst.Stats.Rounds),
			bcasts: float64(dst.Stats.Broadcasts),
			kbytes: float64(dst.Stats.BytesSent) / 1024,
		}, nil
	})
	if err != nil {
		return EnginesResult{}, err
	}
	var kept [3][]float64
	var tests [3][]float64
	var rounds, bcasts, kbytes []float64
	for _, r := range perRun {
		for e := 0; e < 3; e++ {
			kept[e] = append(kept[e], r.kept[e])
			tests[e] = append(tests[e], r.tests[e])
		}
		rounds = append(rounds, r.rounds)
		bcasts = append(bcasts, r.bcasts)
		kbytes = append(kbytes, r.kbytes)
	}
	out.KeptSequential = stats.Mean(kept[0])
	out.KeptParallel = stats.Mean(kept[1])
	out.KeptDistributed = stats.Mean(kept[2])
	out.TestsSequential = stats.Mean(tests[0])
	out.TestsParallel = stats.Mean(tests[1])
	out.TestsDistributed = stats.Mean(tests[2])
	out.Rounds = stats.Mean(rounds)
	out.Broadcasts = stats.Mean(bcasts)
	out.KBytes = stats.Mean(kbytes)

	fmt.Fprintf(w, "Ablation — scheduling engines (τ=%d, n=%d, %d runs)\n", tau, cfg.Nodes, cfg.Runs)
	fmt.Fprintf(w, "  %-22s %10s %10s\n", "engine", "kept", "VPT tests")
	fmt.Fprintf(w, "  %-22s %10.1f %10.1f\n", "sequential (oracle)", out.KeptSequential, out.TestsSequential)
	fmt.Fprintf(w, "  %-22s %10.1f %10.1f\n", "MIS-parallel", out.KeptParallel, out.TestsParallel)
	fmt.Fprintf(w, "  %-22s %10.1f %10.1f\n", "distributed protocol", out.KeptDistributed, out.TestsDistributed)
	fmt.Fprintf(w, "  distributed cost: %.1f super-rounds, %.0f broadcasts, %.1f KiB on air\n",
		out.Rounds, out.Broadcasts, out.KBytes)
	return out, nil
}

// LossResult records the distributed protocol's behaviour under message
// loss.
type LossResult struct {
	LossRates []float64
	// Kept is the mean coverage-set size per loss rate.
	Kept []float64
	// CriterionOK is the fraction of runs whose final graph still passes
	// the global criterion.
	CriterionOK []float64
	// Broadcasts is the mean broadcast count (retries make it grow).
	Broadcasts []float64
}

// lossRun is one Monte-Carlo run at one loss rate; skip marks runs on
// pathological deployments (no achievable τ).
type lossRun struct {
	skip         bool
	kept, bcasts float64
	ok           float64
}

// AblationLoss stresses the distributed protocol under increasing per-link
// message loss. Liveness must hold at every rate; the documented safety
// caveat (simultaneous nearby winners under lost candidate floods) shows
// up, if at all, as a sub-unit CriterionOK fraction. Each run uses the
// smallest confine size its network satisfies initially (Theorem 5's
// precondition), so loss-free runs must always preserve the criterion.
// Runs within each loss rate execute on the worker pool; the same derived
// per-run seeds are reused at every rate, keeping the sweep paired.
func AblationLoss(w io.Writer, cfg Config) (LossResult, error) {
	cfg = cfg.withDefaults()
	out := LossResult{LossRates: []float64{0, 0.05, 0.1, 0.2, 0.3}}
	if cfg.Quick {
		out.LossRates = []float64{0, 0.1, 0.3}
	}
	for _, loss := range out.LossRates {
		perRun, err := runner.Map(cfg.Runs, cfg.Workers, func(run int) (lossRun, error) {
			dep, err := cfg.deploy(runner.DeriveSeed(cfg.Seed, streamLossDeploy, run), math.Sqrt(3))
			if err != nil {
				return lossRun{}, err
			}
			tau, err := dep.AchievableTau(8)
			if err != nil {
				return lossRun{skip: true}, nil // pathological deployment; skip the run
			}
			if tau < 4 {
				tau = 4
			}
			res, err := dep.ScheduleDCCDistributed(dist.Config{
				Tau: tau, Seed: runner.DeriveSeed(cfg.Seed, streamLossSchedule, run), Loss: loss,
			})
			if err != nil {
				return lossRun{}, err
			}
			ok, err := dep.VerifyConfine(res.Final, tau)
			if err != nil {
				return lossRun{}, err
			}
			r := lossRun{
				kept:   float64(len(res.KeptInternal)),
				bcasts: float64(res.Stats.Broadcasts),
			}
			if ok {
				r.ok = 1
			}
			return r, nil
		})
		if err != nil {
			return LossResult{}, err
		}
		var kept, okRuns, bcasts []float64
		for _, r := range perRun {
			if r.skip {
				continue
			}
			kept = append(kept, r.kept)
			okRuns = append(okRuns, r.ok)
			bcasts = append(bcasts, r.bcasts)
		}
		out.Kept = append(out.Kept, stats.Mean(kept))
		out.CriterionOK = append(out.CriterionOK, stats.Mean(okRuns))
		out.Broadcasts = append(out.Broadcasts, stats.Mean(bcasts))
	}
	fmt.Fprintf(w, "Ablation — message loss robustness (τ per-run achievable, n=%d, %d runs)\n", cfg.Nodes, cfg.Runs)
	fmt.Fprint(w, stats.Table("loss",
		stats.Series{Name: "kept", X: out.LossRates, Y: out.Kept},
		stats.Series{Name: "criterion ok", X: out.LossRates, Y: out.CriterionOK},
		stats.Series{Name: "broadcasts", X: out.LossRates, Y: out.Broadcasts},
	))
	return out, nil
}

// ReliabilityResult compares the unreliable baseline floods against the
// acknowledged reliability layer (DESIGN.md §10) across loss rates.
type ReliabilityResult struct {
	LossRates []float64
	// OKNone / OKAck are the fractions of runs whose final graph passes
	// the global criterion under each reliability mode.
	OKNone, OKAck []float64
	// AckOverhead is the mean fraction of AckFloods airtime spent on ACK
	// frames (AckBytes / BytesSent).
	AckOverhead []float64
	// RetransmitsAck is the mean retransmission count under AckFloods.
	RetransmitsAck []float64
}

// reliabilityModeRun is the outcome of one reliability mode within a run.
type reliabilityModeRun struct {
	ok, ackFrac, retrans float64
}

// reliabilityRun is one Monte-Carlo run of the reliability ablation; skip
// marks runs on pathological deployments (no achievable τ).
type reliabilityRun struct {
	skip      bool
	none, ack reliabilityModeRun
}

// AblationReliability quantifies what the ACK/retransmit layer buys and
// costs: under ReliabilityNone the criterion-preservation rate degrades
// with loss (the documented Theorem 5/6 gap); under AckFloods it must stay
// at 1.0 for every rate, paid for in ACK airtime and retransmissions. Runs
// within each loss rate execute on the worker pool; both modes and all
// rates share one derived seed per run, keeping every comparison paired.
func AblationReliability(w io.Writer, cfg Config) (ReliabilityResult, error) {
	cfg = cfg.withDefaults()
	out := ReliabilityResult{LossRates: []float64{0, 0.05, 0.1, 0.2}}
	if cfg.Quick {
		out.LossRates = []float64{0, 0.2}
	}
	for _, loss := range out.LossRates {
		perRun, err := runner.Map(cfg.Runs, cfg.Workers, func(run int) (reliabilityRun, error) {
			dep, err := cfg.deploy(runner.DeriveSeed(cfg.Seed, streamReliabilityDeploy, run), math.Sqrt(3))
			if err != nil {
				return reliabilityRun{}, err
			}
			tau, err := dep.AchievableTau(8)
			if err != nil {
				return reliabilityRun{skip: true}, nil // pathological deployment; skip the run
			}
			if tau < 4 {
				tau = 4
			}
			var r reliabilityRun
			for _, mode := range []dist.Reliability{dist.ReliabilityNone, dist.AckFloods} {
				res, err := dep.ScheduleDCCDistributed(dist.Config{
					Tau:         tau,
					Seed:        runner.DeriveSeed(cfg.Seed, streamReliabilitySchedule, run),
					Loss:        loss,
					Reliability: mode,
				})
				if err != nil {
					return reliabilityRun{}, err
				}
				ok, err := dep.VerifyConfine(res.Final, tau)
				if err != nil {
					return reliabilityRun{}, err
				}
				m := reliabilityModeRun{retrans: float64(res.Stats.Retransmits)}
				if ok {
					m.ok = 1
				}
				if res.Stats.BytesSent > 0 {
					m.ackFrac = float64(res.Stats.AckBytes) / float64(res.Stats.BytesSent)
				}
				if mode == dist.AckFloods {
					r.ack = m
				} else {
					r.none = m
				}
			}
			return r, nil
		})
		if err != nil {
			return ReliabilityResult{}, err
		}
		var okNone, okAck, ackFrac, retrans []float64
		for _, r := range perRun {
			if r.skip {
				continue
			}
			okNone = append(okNone, r.none.ok)
			okAck = append(okAck, r.ack.ok)
			ackFrac = append(ackFrac, r.ack.ackFrac)
			retrans = append(retrans, r.ack.retrans)
		}
		out.OKNone = append(out.OKNone, stats.Mean(okNone))
		out.OKAck = append(out.OKAck, stats.Mean(okAck))
		out.AckOverhead = append(out.AckOverhead, stats.Mean(ackFrac))
		out.RetransmitsAck = append(out.RetransmitsAck, stats.Mean(retrans))
	}
	fmt.Fprintf(w, "Ablation — reliability layer (τ per-run achievable, n=%d, %d runs)\n", cfg.Nodes, cfg.Runs)
	fmt.Fprint(w, stats.Table("loss",
		stats.Series{Name: "ok (none)", X: out.LossRates, Y: out.OKNone},
		stats.Series{Name: "ok (ack)", X: out.LossRates, Y: out.OKAck},
		stats.Series{Name: "ack byte frac", X: out.LossRates, Y: out.AckOverhead},
		stats.Series{Name: "retransmits", X: out.LossRates, Y: out.RetransmitsAck},
	))
	return out, nil
}

// QuasiUDGResult compares scheduling under UDG and quasi-UDG links.
type QuasiUDGResult struct {
	Tau int
	// KeptUDG / KeptQuasi are mean coverage-set sizes under the two link
	// models; OKUDG / OKQuasi the fraction of runs whose result passes the
	// global criterion.
	KeptUDG, KeptQuasi float64
	OKUDG, OKQuasi     float64
}

// quasiModelRun is the outcome for one link model within a run; have is
// false when the deployment had no achievable τ under that model.
type quasiModelRun struct {
	have     bool
	kept, ok float64
}

// quasiRun is one Monte-Carlo run of the link-model ablation.
type quasiRun struct {
	udg, quasi quasiModelRun
}

// AblationQuasiUDG supports the paper's claim (§VI-B) that the algorithm
// does not rely on the unit-disk model: scheduling runs unchanged on
// quasi-UDG connectivity (links between 0.6·Rc and Rc exist only with
// probability ½) and still preserves the criterion. Runs execute on the
// worker pool; both link models share one derived seed per run, keeping
// the comparison paired.
func AblationQuasiUDG(w io.Writer, cfg Config) (QuasiUDGResult, error) {
	cfg = cfg.withDefaults()
	out := QuasiUDGResult{Tau: 5}
	perRun, err := runner.Map(cfg.Runs, cfg.Workers, func(run int) (quasiRun, error) {
		var r quasiRun
		deploySeed := runner.DeriveSeed(cfg.Seed, streamQuasiDeploy, run)
		scheduleSeed := runner.DeriveSeed(cfg.Seed, streamQuasiSchedule, run)
		for _, model := range []dcc.LinkModel{dcc.UDG, dcc.QuasiUDG} {
			dep, err := dcc.Deploy(dcc.DeployOptions{
				Nodes:     cfg.Nodes,
				AvgDegree: cfg.AvgDegree,
				Gamma:     1.0,
				Seed:      deploySeed,
				Model:     model,
			})
			if err != nil {
				return quasiRun{}, err
			}
			// Use the smallest τ the network satisfies (≥ 5) so the
			// preservation guarantee applies under both models.
			tau, err := dep.AchievableTau(8)
			if err != nil {
				continue
			}
			if tau < out.Tau {
				tau = out.Tau
			}
			res, err := dep.ScheduleDCC(tau, dcc.ScheduleOptions{Seed: scheduleSeed})
			if err != nil {
				return quasiRun{}, err
			}
			ok, err := dep.VerifyConfine(res.Final, tau)
			if err != nil {
				return quasiRun{}, err
			}
			m := quasiModelRun{have: true, kept: float64(len(res.KeptInternal))}
			if ok {
				m.ok = 1
			}
			if model == dcc.UDG {
				r.udg = m
			} else {
				r.quasi = m
			}
		}
		return r, nil
	})
	if err != nil {
		return QuasiUDGResult{}, err
	}
	var keptU, keptQ, okU, okQ []float64
	for _, r := range perRun {
		if r.udg.have {
			keptU = append(keptU, r.udg.kept)
			okU = append(okU, r.udg.ok)
		}
		if r.quasi.have {
			keptQ = append(keptQ, r.quasi.kept)
			okQ = append(okQ, r.quasi.ok)
		}
	}
	out.KeptUDG = stats.Mean(keptU)
	out.KeptQuasi = stats.Mean(keptQ)
	out.OKUDG = stats.Mean(okU)
	out.OKQuasi = stats.Mean(okQ)
	fmt.Fprintf(w, "Ablation — communication model (τ≥%d, n=%d, %d runs)\n", out.Tau, cfg.Nodes, cfg.Runs)
	fmt.Fprintf(w, "  %-10s %10s %14s\n", "model", "kept", "criterion ok")
	fmt.Fprintf(w, "  %-10s %10.1f %14.2f\n", "UDG", out.KeptUDG, out.OKUDG)
	fmt.Fprintf(w, "  %-10s %10.1f %14.2f\n", "quasi-UDG", out.KeptQuasi, out.OKQuasi)
	fmt.Fprintf(w, "  paper §VI-B: the algorithm uses connectivity only; no UDG assumption\n")
	return out, nil
}

// RotationResultSummary summarises the sleep-rotation ablation.
type RotationResultSummary struct {
	Epochs int
	// PerEpoch is the mean awake-set size; Distinct the number of distinct
	// nodes used across all epochs; MaxDuty the worst per-node duty.
	PerEpoch, Distinct, MaxDuty float64
}

// rotationRun is one Monte-Carlo run of the rotation ablation.
type rotationRun struct {
	perEpoch, distinct, maxDuty float64
}

// AblationRotation measures how well duty-biased rescheduling spreads load
// across epochs (the lifetime application of §III-B). Runs execute on the
// worker pool.
func AblationRotation(w io.Writer, cfg Config) (RotationResultSummary, error) {
	cfg = cfg.withDefaults()
	const epochs = 5
	tau := 5
	perRun, err := runner.Map(cfg.Runs, cfg.Workers, func(run int) (rotationRun, error) {
		dep, err := cfg.deploy(runner.DeriveSeed(cfg.Seed, streamRotationDeploy, run), 1.0)
		if err != nil {
			return rotationRun{}, err
		}
		rot, err := dep.Rotate(tau, epochs, runner.DeriveSeed(cfg.Seed, streamRotationSchedule, run))
		if err != nil {
			return rotationRun{}, err
		}
		duty := make(map[dcc.NodeID]int)
		total := 0
		for _, ep := range rot {
			total += len(ep.Result.KeptInternal)
			for _, v := range ep.Result.KeptInternal {
				duty[v]++
			}
		}
		worst := 0
		for _, d := range duty {
			if d > worst {
				worst = d
			}
		}
		return rotationRun{
			perEpoch: float64(total) / epochs,
			distinct: float64(len(duty)),
			maxDuty:  float64(worst),
		}, nil
	})
	if err != nil {
		return RotationResultSummary{}, err
	}
	var perEpoch, distinct, maxDuty []float64
	for _, r := range perRun {
		perEpoch = append(perEpoch, r.perEpoch)
		distinct = append(distinct, r.distinct)
		maxDuty = append(maxDuty, r.maxDuty)
	}
	out := RotationResultSummary{
		Epochs:   epochs,
		PerEpoch: stats.Mean(perEpoch),
		Distinct: stats.Mean(distinct),
		MaxDuty:  stats.Mean(maxDuty),
	}
	fmt.Fprintf(w, "Ablation — sleep rotation (τ=%d, %d epochs, n=%d, %d runs)\n",
		tau, epochs, cfg.Nodes, cfg.Runs)
	fmt.Fprintf(w, "  awake per epoch: %.1f   distinct nodes used: %.1f   worst duty: %.1f/%d\n",
		out.PerEpoch, out.Distinct, out.MaxDuty, epochs)
	return out, nil
}
