package experiments

import (
	"fmt"
	"io"
	"math"

	"dcc"
	"dcc/internal/dist"
	"dcc/internal/stats"
)

// EnginesResult compares the three scheduling engines on identical
// networks: the sequential oracle, the MIS-parallel round engine, and the
// fully distributed message-passing protocol.
type EnginesResult struct {
	Tau int
	// KeptSequential/KeptParallel/KeptDistributed are mean coverage-set
	// sizes.
	KeptSequential, KeptParallel, KeptDistributed float64
	// TestsSequential/TestsParallel/TestsDistributed are mean deletability
	// test counts.
	TestsSequential, TestsParallel, TestsDistributed float64
	// Rounds is the mean number of MIS super-rounds of the distributed
	// engine; Broadcasts and KBytes its mean radio cost.
	Rounds, Broadcasts, KBytes float64
}

// AblationEngines quantifies what distribution costs: all three engines
// must land on locally-maximal coverage sets of comparable size; the
// distributed protocol pays communication for it.
func AblationEngines(w io.Writer, cfg Config) (EnginesResult, error) {
	cfg = cfg.withDefaults()
	tau := 4
	out := EnginesResult{Tau: tau}
	var kept [3][]float64
	var tests [3][]float64
	var rounds, bcasts, kbytes []float64
	for run := 0; run < cfg.Runs; run++ {
		dep, err := cfg.deploy(cfg.Seed+int64(run)*13_007, math.Sqrt(3))
		if err != nil {
			return EnginesResult{}, err
		}
		seq, err := dep.ScheduleDCC(tau, dcc.ScheduleOptions{Seed: cfg.Seed + int64(run)})
		if err != nil {
			return EnginesResult{}, err
		}
		par, err := dep.ScheduleDCC(tau, dcc.ScheduleOptions{
			Seed: cfg.Seed + int64(run), Parallel: true, Workers: cfg.Workers,
		})
		if err != nil {
			return EnginesResult{}, err
		}
		dst, err := dep.ScheduleDCCDistributed(dist.Config{Tau: tau, Seed: cfg.Seed + int64(run)})
		if err != nil {
			return EnginesResult{}, err
		}
		kept[0] = append(kept[0], float64(len(seq.KeptInternal)))
		kept[1] = append(kept[1], float64(len(par.KeptInternal)))
		kept[2] = append(kept[2], float64(len(dst.KeptInternal)))
		tests[0] = append(tests[0], float64(seq.Stats.Tests))
		tests[1] = append(tests[1], float64(par.Stats.Tests))
		tests[2] = append(tests[2], float64(dst.Stats.Tests))
		rounds = append(rounds, float64(dst.Stats.SuperRounds))
		bcasts = append(bcasts, float64(dst.Stats.Broadcasts))
		kbytes = append(kbytes, float64(dst.Stats.BytesSent)/1024)
	}
	out.KeptSequential = stats.Mean(kept[0])
	out.KeptParallel = stats.Mean(kept[1])
	out.KeptDistributed = stats.Mean(kept[2])
	out.TestsSequential = stats.Mean(tests[0])
	out.TestsParallel = stats.Mean(tests[1])
	out.TestsDistributed = stats.Mean(tests[2])
	out.Rounds = stats.Mean(rounds)
	out.Broadcasts = stats.Mean(bcasts)
	out.KBytes = stats.Mean(kbytes)

	fmt.Fprintf(w, "Ablation — scheduling engines (τ=%d, n=%d, %d runs)\n", tau, cfg.Nodes, cfg.Runs)
	fmt.Fprintf(w, "  %-22s %10s %10s\n", "engine", "kept", "VPT tests")
	fmt.Fprintf(w, "  %-22s %10.1f %10.1f\n", "sequential (oracle)", out.KeptSequential, out.TestsSequential)
	fmt.Fprintf(w, "  %-22s %10.1f %10.1f\n", "MIS-parallel", out.KeptParallel, out.TestsParallel)
	fmt.Fprintf(w, "  %-22s %10.1f %10.1f\n", "distributed protocol", out.KeptDistributed, out.TestsDistributed)
	fmt.Fprintf(w, "  distributed cost: %.1f super-rounds, %.0f broadcasts, %.1f KiB on air\n",
		out.Rounds, out.Broadcasts, out.KBytes)
	return out, nil
}

// LossResult records the distributed protocol's behaviour under message
// loss.
type LossResult struct {
	LossRates []float64
	// Kept is the mean coverage-set size per loss rate.
	Kept []float64
	// CriterionOK is the fraction of runs whose final graph still passes
	// the global criterion.
	CriterionOK []float64
	// Broadcasts is the mean broadcast count (retries make it grow).
	Broadcasts []float64
}

// AblationLoss stresses the distributed protocol under increasing per-link
// message loss. Liveness must hold at every rate; the documented safety
// caveat (simultaneous nearby winners under lost candidate floods) shows
// up, if at all, as a sub-unit CriterionOK fraction. Each run uses the
// smallest confine size its network satisfies initially (Theorem 5's
// precondition), so loss-free runs must always preserve the criterion.
func AblationLoss(w io.Writer, cfg Config) (LossResult, error) {
	cfg = cfg.withDefaults()
	out := LossResult{LossRates: []float64{0, 0.05, 0.1, 0.2, 0.3}}
	if cfg.Quick {
		out.LossRates = []float64{0, 0.1, 0.3}
	}
	for _, loss := range out.LossRates {
		var kept, okRuns, bcasts []float64
		for run := 0; run < cfg.Runs; run++ {
			dep, err := cfg.deploy(cfg.Seed+int64(run)*17_389, math.Sqrt(3))
			if err != nil {
				return LossResult{}, err
			}
			tau, err := dep.AchievableTau(8)
			if err != nil {
				continue // pathological deployment; skip the run
			}
			if tau < 4 {
				tau = 4
			}
			res, err := dep.ScheduleDCCDistributed(dist.Config{
				Tau: tau, Seed: cfg.Seed + int64(run), Loss: loss,
			})
			if err != nil {
				return LossResult{}, err
			}
			ok, err := dep.VerifyConfine(res.Final, tau)
			if err != nil {
				return LossResult{}, err
			}
			kept = append(kept, float64(len(res.KeptInternal)))
			if ok {
				okRuns = append(okRuns, 1)
			} else {
				okRuns = append(okRuns, 0)
			}
			bcasts = append(bcasts, float64(res.Stats.Broadcasts))
		}
		out.Kept = append(out.Kept, stats.Mean(kept))
		out.CriterionOK = append(out.CriterionOK, stats.Mean(okRuns))
		out.Broadcasts = append(out.Broadcasts, stats.Mean(bcasts))
	}
	fmt.Fprintf(w, "Ablation — message loss robustness (τ per-run achievable, n=%d, %d runs)\n", cfg.Nodes, cfg.Runs)
	fmt.Fprint(w, stats.Table("loss",
		stats.Series{Name: "kept", X: out.LossRates, Y: out.Kept},
		stats.Series{Name: "criterion ok", X: out.LossRates, Y: out.CriterionOK},
		stats.Series{Name: "broadcasts", X: out.LossRates, Y: out.Broadcasts},
	))
	return out, nil
}

// QuasiUDGResult compares scheduling under UDG and quasi-UDG links.
type QuasiUDGResult struct {
	Tau int
	// KeptUDG / KeptQuasi are mean coverage-set sizes under the two link
	// models; OKUDG / OKQuasi the fraction of runs whose result passes the
	// global criterion.
	KeptUDG, KeptQuasi float64
	OKUDG, OKQuasi     float64
}

// AblationQuasiUDG supports the paper's claim (§VI-B) that the algorithm
// does not rely on the unit-disk model: scheduling runs unchanged on
// quasi-UDG connectivity (links between 0.6·Rc and Rc exist only with
// probability ½) and still preserves the criterion.
func AblationQuasiUDG(w io.Writer, cfg Config) (QuasiUDGResult, error) {
	cfg = cfg.withDefaults()
	out := QuasiUDGResult{Tau: 5}
	var keptU, keptQ, okU, okQ []float64
	for run := 0; run < cfg.Runs; run++ {
		for _, model := range []dcc.LinkModel{dcc.UDG, dcc.QuasiUDG} {
			dep, err := dcc.Deploy(dcc.DeployOptions{
				Nodes:     cfg.Nodes,
				AvgDegree: cfg.AvgDegree,
				Gamma:     1.0,
				Seed:      cfg.Seed + int64(run)*7_561,
				Model:     model,
			})
			if err != nil {
				return QuasiUDGResult{}, err
			}
			// Use the smallest τ the network satisfies (≥ 5) so the
			// preservation guarantee applies under both models.
			tau, err := dep.AchievableTau(8)
			if err != nil {
				continue
			}
			if tau < out.Tau {
				tau = out.Tau
			}
			res, err := dep.ScheduleDCC(tau, dcc.ScheduleOptions{Seed: cfg.Seed + int64(run)})
			if err != nil {
				return QuasiUDGResult{}, err
			}
			ok, err := dep.VerifyConfine(res.Final, tau)
			if err != nil {
				return QuasiUDGResult{}, err
			}
			kept := float64(len(res.KeptInternal))
			okv := 0.0
			if ok {
				okv = 1
			}
			if model == dcc.UDG {
				keptU = append(keptU, kept)
				okU = append(okU, okv)
			} else {
				keptQ = append(keptQ, kept)
				okQ = append(okQ, okv)
			}
		}
	}
	out.KeptUDG = stats.Mean(keptU)
	out.KeptQuasi = stats.Mean(keptQ)
	out.OKUDG = stats.Mean(okU)
	out.OKQuasi = stats.Mean(okQ)
	fmt.Fprintf(w, "Ablation — communication model (τ≥%d, n=%d, %d runs)\n", out.Tau, cfg.Nodes, cfg.Runs)
	fmt.Fprintf(w, "  %-10s %10s %14s\n", "model", "kept", "criterion ok")
	fmt.Fprintf(w, "  %-10s %10.1f %14.2f\n", "UDG", out.KeptUDG, out.OKUDG)
	fmt.Fprintf(w, "  %-10s %10.1f %14.2f\n", "quasi-UDG", out.KeptQuasi, out.OKQuasi)
	fmt.Fprintf(w, "  paper §VI-B: the algorithm uses connectivity only; no UDG assumption\n")
	return out, nil
}

// RotationResultSummary summarises the sleep-rotation ablation.
type RotationResultSummary struct {
	Epochs int
	// PerEpoch is the mean awake-set size; Distinct the number of distinct
	// nodes used across all epochs; MaxDuty the worst per-node duty.
	PerEpoch, Distinct, MaxDuty float64
}

// AblationRotation measures how well duty-biased rescheduling spreads load
// across epochs (the lifetime application of §III-B).
func AblationRotation(w io.Writer, cfg Config) (RotationResultSummary, error) {
	cfg = cfg.withDefaults()
	const epochs = 5
	tau := 5
	var perEpoch, distinct, maxDuty []float64
	for run := 0; run < cfg.Runs; run++ {
		dep, err := cfg.deploy(cfg.Seed+int64(run)*23_567, 1.0)
		if err != nil {
			return RotationResultSummary{}, err
		}
		rot, err := dep.Rotate(tau, epochs, cfg.Seed+int64(run))
		if err != nil {
			return RotationResultSummary{}, err
		}
		duty := make(map[dcc.NodeID]int)
		total := 0
		for _, ep := range rot {
			total += len(ep.Result.KeptInternal)
			for _, v := range ep.Result.KeptInternal {
				duty[v]++
			}
		}
		worst := 0
		for _, d := range duty {
			if d > worst {
				worst = d
			}
		}
		perEpoch = append(perEpoch, float64(total)/epochs)
		distinct = append(distinct, float64(len(duty)))
		maxDuty = append(maxDuty, float64(worst))
	}
	out := RotationResultSummary{
		Epochs:   epochs,
		PerEpoch: stats.Mean(perEpoch),
		Distinct: stats.Mean(distinct),
		MaxDuty:  stats.Mean(maxDuty),
	}
	fmt.Fprintf(w, "Ablation — sleep rotation (τ=%d, %d epochs, n=%d, %d runs)\n",
		tau, epochs, cfg.Nodes, cfg.Runs)
	fmt.Fprintf(w, "  awake per epoch: %.1f   distinct nodes used: %.1f   worst duty: %.1f/%d\n",
		out.PerEpoch, out.Distinct, out.MaxDuty, epochs)
	return out, nil
}
