package experiments

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
	"unicode"
)

// streamBiasedShuffleValue mirrors core.streamBiasedShuffle, the lowest
// stream constant living outside this registry (unexported there; the
// other, core.streamCanonicalPriority = 0x63616e6f, sits above it). The
// registry must stay far below both.
const streamBiasedShuffleValue uint64 = 0x62696173

// declaredStreams parses streams.go and returns the stream constant names
// in declaration order — with iota+1 assignment, the i-th name has value
// uint64(i+1), which lets the test pin name↔value pairing without a type
// checker.
func declaredStreams(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "streams.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for _, name := range vs.Names {
				if strings.HasPrefix(name.Name, "stream") {
					names = append(names, name.Name)
				}
			}
		}
	}
	if len(names) == 0 {
		t.Fatal("no stream constants found in streams.go")
	}
	return names
}

// kebab converts a constant name like streamFig2Deploy to its registry key
// fig2-deploy.
func kebab(constName string) string {
	s := strings.TrimPrefix(constName, "stream")
	var b strings.Builder
	for i, r := range s {
		if unicode.IsUpper(r) {
			if i > 0 {
				b.WriteByte('-')
			}
			b.WriteRune(unicode.ToLower(r))
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// TestStreamRegistry holds streams.go to its invariants: every declared
// stream constant is named in seedStreams under its kebab-case key with the
// right value, values are unique and contiguous from 1, and the whole range
// stays clear of the out-of-package biased-shuffle stream.
func TestStreamRegistry(t *testing.T) {
	names := declaredStreams(t)
	if len(names) != len(seedStreams) {
		t.Fatalf("streams.go declares %d stream constants but seedStreams names %d",
			len(names), len(seedStreams))
	}
	seen := make(map[uint64]string, len(seedStreams))
	for key, v := range seedStreams {
		if prev, dup := seen[v]; dup {
			t.Errorf("stream value %d is shared by %q and %q", v, prev, key)
		}
		seen[v] = key
		if v >= streamBiasedShuffleValue {
			t.Errorf("stream %q (= %d) collides with the reserved range at core.streamBiasedShuffle (= %d)",
				key, v, streamBiasedShuffleValue)
		}
	}
	for i, name := range names {
		key := kebab(name)
		got, ok := seedStreams[key]
		if !ok {
			t.Errorf("constant %s has no seedStreams entry under key %q", name, key)
			continue
		}
		if want := uint64(i + 1); got != want {
			t.Errorf("seedStreams[%q] = %d, but %s is the %d-th declared constant (value %d): the map pairs the wrong constant",
				key, got, name, i+1, want)
		}
	}
}
