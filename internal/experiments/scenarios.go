package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"dcc"
	"dcc/internal/runner"
	"dcc/internal/scenario"
	"dcc/internal/stats"
)

// ScenarioOraclesResult reports the deterministic-catalogue audit: one row
// per connected scenario, pairing the closed-form oracle with what the
// pipeline measured.
type ScenarioOraclesResult struct {
	Names []string
	// Taus holds the oracle's smallest achievable confine size per row.
	Taus []int
	// OracleCovered / MeasuredCovered pair the closed-form coverage verdict
	// with the sampled ground truth of the full deployment.
	OracleCovered   []bool
	MeasuredCovered []bool
	// CriterionAfterSchedule records whether the τ-confine criterion still
	// holds on the scheduled set (Theorem 5 says it must).
	CriterionAfterSchedule []bool
	// KeptInternal is the scheduled coverage-set size per row.
	KeptInternal []int
	// Mismatches counts rows whose oracle and measurement disagree on
	// coverage or whose scheduled set fails the criterion.
	Mismatches int
}

// scenarioOracleRow is the per-scenario outcome computed on the worker pool.
type scenarioOracleRow struct {
	measuredCovered bool
	criterionOK     bool
	keptInternal    int
}

// ScenarioOracles runs every connected catalogue scenario through the full
// pipeline — schedule at the oracle's achievable τ, re-verify the criterion
// on the result, and measure geometric coverage of the full deployment —
// and prints the oracle-vs-measured table. A non-zero mismatch count means
// the pipeline disagrees with closed-form ground truth.
func ScenarioOracles(w io.Writer, cfg Config) (ScenarioOraclesResult, error) {
	cfg = cfg.withDefaults()
	cat, err := scenario.Catalogue()
	if err != nil {
		return ScenarioOraclesResult{}, err
	}
	connected := cat[:0]
	for _, sc := range cat {
		if sc.Oracle.Connected {
			connected = append(connected, sc)
		}
	}
	rows, err := runner.Map(len(connected), cfg.Workers, func(i int) (scenarioOracleRow, error) {
		sc := connected[i]
		res, err := sc.Dep.ScheduleDCC(sc.Oracle.AchievableTau, dcc.ScheduleOptions{
			Seed: runner.DeriveSeed(cfg.Seed, streamScenarioSchedule, i),
		})
		if err != nil {
			return scenarioOracleRow{}, fmt.Errorf("%s: %w", sc.Name, err)
		}
		ok, err := sc.Dep.VerifyConfine(res.Final, sc.Oracle.AchievableTau)
		if err != nil {
			return scenarioOracleRow{}, fmt.Errorf("%s: %w", sc.Name, err)
		}
		return scenarioOracleRow{
			measuredCovered: sc.Coverage(nil).FullyCovered(),
			criterionOK:     ok,
			keptInternal:    len(res.KeptInternal),
		}, nil
	})
	if err != nil {
		return ScenarioOraclesResult{}, err
	}
	out := ScenarioOraclesResult{}
	fmt.Fprintf(w, "Scenario oracles — closed-form catalogue vs pipeline (%d scenarios)\n", len(connected))
	fmt.Fprintf(w, "  %-26s %4s %8s %9s %10s %6s\n", "scenario", "tau", "oracle", "measured", "criterion", "kept")
	for i, sc := range connected {
		r := rows[i]
		out.Names = append(out.Names, sc.Name)
		out.Taus = append(out.Taus, sc.Oracle.AchievableTau)
		out.OracleCovered = append(out.OracleCovered, sc.Oracle.Covered)
		out.MeasuredCovered = append(out.MeasuredCovered, r.measuredCovered)
		out.CriterionAfterSchedule = append(out.CriterionAfterSchedule, r.criterionOK)
		out.KeptInternal = append(out.KeptInternal, r.keptInternal)
		if r.measuredCovered != sc.Oracle.Covered || !r.criterionOK {
			out.Mismatches++
		}
		fmt.Fprintf(w, "  %-26s %4d %8v %9v %10v %6d\n",
			sc.Name, sc.Oracle.AchievableTau, sc.Oracle.Covered, r.measuredCovered, r.criterionOK, r.keptInternal)
	}
	fmt.Fprintf(w, "  oracle mismatches: %d (expected 0)\n", out.Mismatches)
	return out, nil
}

// stabilityTaus is the confine-size range of the perturbation sweep.
var stabilityTaus = []int{3, 4, 5, 6}

// stabilityLabels abbreviates the stability scenario names to fit the
// table columns (same order as stabilityScenarios).
var stabilityLabels = []string{
	"square3", "square4", "tri3", "honey6", "honey3", "annulus3", "masked3", "hetero3",
}

// stabilityScenarios returns the catalogue subset swept for stability: one
// covered regime per family, so every τ column has both below-threshold
// (verdict false) and at-threshold rows.
func stabilityScenarios() ([]*scenario.Scenario, error) {
	names := []string{
		"square/tau3/covered",
		"square/tau4/covered",
		"triangular/tau3/covered",
		"honeycomb/tau6/covered",
		"honeycomb/tau3/covered",
		"annulus/tau3/covered",
		"masked/tau3/covered",
		"hetero/tau3/covered",
	}
	cat, err := scenario.Catalogue()
	if err != nil {
		return nil, err
	}
	byName := make(map[string]*scenario.Scenario, len(cat))
	for _, sc := range cat {
		byName[sc.Name] = sc
	}
	out := make([]*scenario.Scenario, 0, len(names))
	for _, n := range names {
		sc, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("experiments: stability scenario %q not in catalogue", n)
		}
		out = append(out, sc)
	}
	return out, nil
}

// ScenarioStabilityResult is the perturbation-stability sweep: EpsStar[s][t]
// is the mean stability margin ε*/spacing of scenario Names[s] at confine
// size Taus[t] — the smallest jitter amplitude (as a fraction of the lattice
// spacing, averaged over seeded displacement fields) at which the τ-confine
// verdict first differs from the unperturbed one. NaN means no flip within
// the swept range.
type ScenarioStabilityResult struct {
	Names   []string
	Taus    []int
	EpsStar [][]float64
}

// ScenarioStability jitters every node of each stability scenario along a
// seeded per-run displacement field, growing the amplitude ε until the
// τ-confine verdict flips (a broken boundary-cycle link counts as a flip),
// and reports the mean flip threshold ε* per scenario and τ — the
// Hiraoka–Kusano-style stability margin of the verdict. Runs are
// independent displacement fields on the worker pool.
func ScenarioStability(w io.Writer, cfg Config) (ScenarioStabilityResult, error) {
	cfg = cfg.withDefaults()
	scs, err := stabilityScenarios()
	if err != nil {
		return ScenarioStabilityResult{}, err
	}
	// Amplitude grid in fractions of the lattice spacing. A half-spacing
	// jitter already collapses most lattices, so the sweep stops at 0.5.
	stepFrac := 0.02
	if cfg.Quick {
		stepFrac = 0.05
	}
	var fracs []float64
	for f := stepFrac; f <= 0.5+1e-9; f += stepFrac {
		fracs = append(fracs, f)
	}

	// Unperturbed baseline verdicts, shared by all runs.
	base := make([][]bool, len(scs))
	for s, sc := range scs {
		base[s] = make([]bool, len(stabilityTaus))
		for t, tau := range stabilityTaus {
			v, err := sc.CriterionOK(tau)
			if err != nil {
				return ScenarioStabilityResult{}, fmt.Errorf("%s: unperturbed verdict: %w", sc.Name, err)
			}
			base[s][t] = v
		}
	}

	perRun, err := runner.Map(cfg.Runs, cfg.Workers, func(run int) ([][]float64, error) {
		rng := rand.New(rand.NewSource(runner.DeriveSeed(cfg.Seed, streamStabilityJitter, run)))
		eps := make([][]float64, len(scs))
		for s, sc := range scs {
			// One displacement field per scenario and run: growing ε slides
			// every node further along a fixed ray, so the flip threshold is
			// well-defined.
			disp := sc.Displacements(rng)
			eps[s] = make([]float64, len(stabilityTaus))
			for t := range stabilityTaus {
				eps[s][t] = math.NaN()
			}
			remaining := len(stabilityTaus)
			for _, f := range fracs {
				if remaining == 0 {
					break
				}
				jittered := sc.Displace(disp, f*sc.Spacing)
				for t, tau := range stabilityTaus {
					if !math.IsNaN(eps[s][t]) {
						continue
					}
					v, err := jittered.CriterionOK(tau)
					if err != nil || v != base[s][t] {
						eps[s][t] = f
						remaining--
					}
				}
			}
		}
		return eps, nil
	})
	if err != nil {
		return ScenarioStabilityResult{}, err
	}

	out := ScenarioStabilityResult{Taus: stabilityTaus}
	series := make([]stats.Series, len(scs))
	for s, sc := range scs {
		out.Names = append(out.Names, sc.Name)
		row := make([]float64, len(stabilityTaus))
		for t := range stabilityTaus {
			sum, n := 0.0, 0
			for _, eps := range perRun {
				if !math.IsNaN(eps[s][t]) {
					sum += eps[s][t]
					n++
				}
			}
			if n > 0 {
				row[t] = sum / float64(n)
			} else {
				row[t] = math.NaN()
			}
		}
		out.EpsStar = append(out.EpsStar, row)
		series[s].Name = stabilityLabels[s]
		for t, tau := range stabilityTaus {
			series[s].X = append(series[s].X, float64(tau))
			series[s].Y = append(series[s].Y, row[t])
		}
	}
	fmt.Fprintf(w, "Scenario stability — mean verdict-flip jitter ε*/spacing (%d runs, grid step %.2f)\n",
		cfg.Runs, stepFrac)
	fmt.Fprint(w, stats.Table("tau", series...))
	fmt.Fprintf(w, "  NaN: verdict never flipped within ε ≤ 0.5·spacing\n")
	return out, nil
}
