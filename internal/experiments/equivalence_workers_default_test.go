//go:build !dccdebug

package experiments

// equivalenceWorkers is the full worker matrix of the determinism
// acceptance criterion; the -race gate runs it in this configuration.
var equivalenceWorkers = []int{1, 2, 4, 8}
