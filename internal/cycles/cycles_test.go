package cycles

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"dcc/internal/bitvec"
	"dcc/internal/graph"
)

func mustFromVertices(t *testing.T, g *graph.Graph, verts []graph.NodeID) Cycle {
	t.Helper()
	c, err := FromVertices(g, verts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCycleDedup(t *testing.T) {
	c := NewCycle([]int{3, 1, 3, 2, 1})
	if got := c.EdgeIndices(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("EdgeIndices = %v", got)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestFromVerticesAndVector(t *testing.T) {
	g := graph.Cycle(4)
	c := mustFromVertices(t, g, []graph.NodeID{0, 1, 2, 3})
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	v := c.Vector(g.NumEdges())
	if v.PopCount() != 4 {
		t.Fatalf("vector weight %d, want 4", v.PopCount())
	}
	if _, err := FromVertices(g, []graph.NodeID{0, 1}); err == nil {
		t.Fatal("2-vertex cycle accepted")
	}
	if _, err := FromVertices(g, []graph.NodeID{0, 1, 3}); err == nil {
		t.Fatal("cycle with missing edge accepted")
	}
}

func TestSumCancels(t *testing.T) {
	// Two triangles sharing an edge sum to the 4-cycle around them.
	b := graph.NewBuilder()
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	b.AddEdge(0, 2)
	g := b.MustBuild()
	t1 := mustFromVertices(t, g, []graph.NodeID{0, 1, 2})
	t2 := mustFromVertices(t, g, []graph.NodeID{0, 2, 3})
	outer := mustFromVertices(t, g, []graph.NodeID{0, 1, 2, 3})
	if !Sum(g.NumEdges(), t1, t2).Equal(outer.Vector(g.NumEdges())) {
		t.Fatal("triangle sum does not equal outer 4-cycle")
	}
	if !Sum(g.NumEdges(), t1, t1).IsZero() {
		t.Fatal("C ⊕ C != 0")
	}
}

func TestVertexOrderRoundTrip(t *testing.T) {
	g := graph.Cycle(7)
	c := mustFromVertices(t, g, []graph.NodeID{0, 1, 2, 3, 4, 5, 6})
	order, err := VertexOrder(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 7 {
		t.Fatalf("order length %d, want 7", len(order))
	}
	// Walking the order must reproduce the same edge set.
	c2, err := FromVertices(g, order)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.EdgeIndices(), c2.EdgeIndices()) {
		t.Fatal("vertex order does not reproduce cycle")
	}
}

func TestVertexOrderRejectsNonCycle(t *testing.T) {
	g := graph.Complete(5)
	// Edge set {0-1, 1-2, 2-3}: a path, not a cycle.
	e1, _ := g.EdgeIndex(0, 1)
	e2, _ := g.EdgeIndex(1, 2)
	e3, _ := g.EdgeIndex(2, 3)
	if _, err := VertexOrder(g, NewCycle([]int{e1, e2, e3})); err == nil {
		t.Fatal("path accepted as cycle")
	}
	// Two disjoint triangles in K6.
	g6 := graph.Complete(6)
	var idx []int
	for _, pair := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		e, _ := g6.EdgeIndex(pair[0], pair[1])
		idx = append(idx, e)
	}
	if _, err := VertexOrder(g6, NewCycle(idx)); err == nil {
		t.Fatal("disjoint union of cycles accepted as simple cycle")
	}
}

func TestCandidatesTriangle(t *testing.T) {
	g := graph.Complete(3)
	cands := Candidates(g, -1)
	if len(cands) == 0 {
		t.Fatal("no candidates for triangle")
	}
	for _, c := range cands {
		if c.Len() != 3 {
			t.Fatalf("triangle candidate of length %d", c.Len())
		}
	}
}

func TestCandidatesRespectMaxLen(t *testing.T) {
	g := graph.Cycle(8)
	if cands := Candidates(g, 7); len(cands) != 0 {
		t.Fatalf("got %d candidates below the girth", len(cands))
	}
	cands := Candidates(g, 8)
	if len(cands) == 0 {
		t.Fatal("8-cycle candidate missing at maxLen=8")
	}
	for _, c := range cands {
		if c.Len() > 8 {
			t.Fatalf("candidate of length %d exceeds bound", c.Len())
		}
	}
}

func TestCandidatesSortedByLength(t *testing.T) {
	g := graph.TriangulatedGrid(4, 4)
	cands := Candidates(g, -1)
	for i := 1; i < len(cands); i++ {
		if cands[i].Len() < cands[i-1].Len() {
			t.Fatal("candidates not sorted by length")
		}
	}
}

func TestMCBKnownGraphs(t *testing.T) {
	tests := []struct {
		name     string
		g        *graph.Graph
		nu       int
		min, max int
	}{
		{"triangle", graph.Complete(3), 1, 3, 3},
		{"K4", graph.Complete(4), 3, 3, 3},
		{"K5", graph.Complete(5), 6, 3, 3},
		{"C6", graph.Cycle(6), 1, 6, 6},
		{"grid3x3", graph.Grid(3, 3), 4, 4, 4},
		{"triangulated grid", graph.TriangulatedGrid(3, 3), 8, 3, 3},
		{"theta", thetaGraph(), 2, 4, 5},
		{"petersen", petersen(), 6, 5, 5},
		{"tree", graph.Path(6), 0, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			basis, err := MCB(tt.g)
			if err != nil {
				t.Fatal(err)
			}
			if len(basis) != tt.nu {
				t.Fatalf("|MCB| = %d, want %d", len(basis), tt.nu)
			}
			mn, mx, err := MinMaxIrreducible(tt.g)
			if err != nil {
				t.Fatal(err)
			}
			if mn != tt.min || mx != tt.max {
				t.Fatalf("MinMaxIrreducible = (%d,%d), want (%d,%d)", mn, mx, tt.min, tt.max)
			}
		})
	}
}

// thetaGraph: vertices 0 and 1 joined by three internally disjoint paths of
// lengths 2, 2 and 3. Cycle lengths: 4 (two short paths), 5, 5.
// MCB = {4, 5}.
func thetaGraph() *graph.Graph {
	b := graph.NewBuilder()
	b.AddEdge(0, 2)
	b.AddEdge(2, 1) // path A, length 2
	b.AddEdge(0, 3)
	b.AddEdge(3, 1) // path B, length 2
	b.AddEdge(0, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 1) // path C, length 3
	return b.MustBuild()
}

// petersen returns the Petersen graph (girth 5, ν = 6, all MCB cycles of
// length 5).
func petersen() *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < 5; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%5))     // outer C5
		b.AddEdge(graph.NodeID(5+i), graph.NodeID(5+(i+2)%5)) // inner pentagram
		b.AddEdge(graph.NodeID(i), graph.NodeID(5+i))         // spokes
	}
	return b.MustBuild()
}

func TestMCBIsBasis(t *testing.T) {
	g := graph.TriangulatedGrid(4, 5)
	basis, err := MCB(g)
	if err != nil {
		t.Fatal(err)
	}
	m := g.NumEdges()
	ech := bitvec.NewEchelon(m)
	for _, c := range basis {
		if !ech.Insert(c.Vector(m)) {
			t.Fatal("MCB contains dependent cycle")
		}
	}
	if ech.Rank() != g.CycleSpaceDim() {
		t.Fatalf("MCB rank %d, want %d", ech.Rank(), g.CycleSpaceDim())
	}
}

func TestMCBMinimalVsFundamental(t *testing.T) {
	// The MCB total length never exceeds that of a BFS fundamental basis.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnected(r, 12, 0.3)
		basis, err := MCB(g)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range basis {
			total += c.Len()
		}
		return total <= fundamentalTotal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// fundamentalTotal computes the total length of the fundamental cycle basis
// induced by a BFS tree (an independent upper bound on the MCB total).
func fundamentalTotal(g *graph.Graph) int {
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return 0
	}
	tr := g.BFS(nodes[0], -1)
	total := 0
	for i := 0; i < g.NumEdges(); i++ {
		e := g.EdgeAt(i)
		if p, ok := tr.Parent(e.U); ok && p == e.V {
			continue
		}
		if p, ok := tr.Parent(e.V); ok && p == e.U {
			continue
		}
		lca, ok := tr.LCA(e.U, e.V)
		if !ok {
			continue
		}
		total += tr.Depth(e.U) + tr.Depth(e.V) - 2*tr.Depth(lca) + 1
	}
	return total
}

func TestMCBLengthMultisetInvariantUnderRelabeling(t *testing.T) {
	// Chickering et al.: every MCB has the same multiset of lengths, so the
	// multiset must be invariant under vertex relabelling.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(r, 14, 0.25)
		perm := r.Perm(1000)
		b := graph.NewBuilder()
		for _, v := range g.Nodes() {
			b.AddNode(graph.NodeID(perm[v]))
		}
		for _, e := range g.Edges() {
			b.AddEdge(graph.NodeID(perm[e.U]), graph.NodeID(perm[e.V]))
		}
		h := b.MustBuild()
		if !reflect.DeepEqual(lengthMultiset(t, g), lengthMultiset(t, h)) {
			t.Fatal("MCB length multiset changed under relabelling")
		}
	}
}

func lengthMultiset(t *testing.T, g *graph.Graph) []int {
	t.Helper()
	basis, err := MCB(g)
	if err != nil {
		t.Fatal(err)
	}
	ls := make([]int, len(basis))
	for i, c := range basis {
		ls[i] = c.Len()
	}
	sort.Ints(ls)
	return ls
}

func TestSpannedByShort(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		tau  int
		want bool
	}{
		{"triangulated grid tau=3", graph.TriangulatedGrid(4, 4), 3, true},
		{"plain grid tau=3", graph.Grid(4, 4), 3, false},
		{"plain grid tau=4", graph.Grid(4, 4), 4, true},
		{"C6 tau=5", graph.Cycle(6), 5, false},
		{"C6 tau=6", graph.Cycle(6), 6, true},
		{"theta tau=4", thetaGraph(), 4, false},
		{"theta tau=5", thetaGraph(), 5, true},
		{"tree tau=3", graph.Path(9), 3, true}, // empty cycle space
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SpannedByShort(tt.g, tt.tau); got != tt.want {
				t.Fatalf("SpannedByShort = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSpannedByShortMatchesMaxIrreducible(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnected(r, 12, 0.25)
		_, mx, err := MinMaxIrreducible(g)
		if err != nil {
			return false
		}
		if g.CycleSpaceDim() == 0 {
			return SpannedByShort(g, 3)
		}
		// Spanned exactly from τ = max irreducible size upward.
		return !SpannedByShort(g, mx-1) && SpannedByShort(g, mx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionableGridPerimeter(t *testing.T) {
	g := graph.Grid(4, 4)
	perim := gridPerimeter(t, g, 4, 4)
	target := perim.Vector(g.NumEdges())
	if Partitionable(g, target, 3) {
		t.Fatal("grid perimeter reported 3-partitionable")
	}
	if !Partitionable(g, target, 4) {
		t.Fatal("grid perimeter not 4-partitionable")
	}
	// The perimeter is trivially partitionable by itself at τ = its length.
	if !Partitionable(g, target, perim.Len()) {
		t.Fatal("cycle not partitionable by itself")
	}
}

func gridPerimeter(t *testing.T, g *graph.Graph, rows, cols int) Cycle {
	t.Helper()
	var verts []graph.NodeID
	for c := 0; c < cols; c++ {
		verts = append(verts, graph.NodeID(c))
	}
	for r := 1; r < rows; r++ {
		verts = append(verts, graph.NodeID(r*cols+cols-1))
	}
	for c := cols - 2; c >= 0; c-- {
		verts = append(verts, graph.NodeID((rows-1)*cols+c))
	}
	for r := rows - 2; r >= 1; r-- {
		verts = append(verts, graph.NodeID(r*cols))
	}
	return mustFromVertices(t, g, verts)
}

func TestPartitionableMonotoneInTau(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnected(r, 12, 0.3)
		basis, err := MCB(g)
		if err != nil || len(basis) < 2 {
			return true
		}
		// Random target in the cycle space.
		var pick []Cycle
		for _, c := range basis {
			if r.Intn(2) == 1 {
				pick = append(pick, c)
			}
		}
		target := Sum(g.NumEdges(), pick...)
		prev := false
		for tau := 3; tau <= g.NumNodes(); tau++ {
			cur := Partitionable(g, target, tau)
			if prev && !cur {
				return false // must be monotone
			}
			prev = cur
		}
		// At τ = n every cycle-space vector is partitionable.
		return prev || target.IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFindPartitionGrid(t *testing.T) {
	g := graph.Grid(3, 3)
	perim := gridPerimeter(t, g, 3, 3)
	target := perim.Vector(g.NumEdges())
	part, err := FindPartition(g, target, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != 4 {
		t.Fatalf("partition size %d, want 4 unit squares", len(part))
	}
	for _, c := range part {
		if c.Len() > 4 {
			t.Fatalf("partition cycle of length %d exceeds τ", c.Len())
		}
	}
	if !Sum(g.NumEdges(), part...).Equal(target) {
		t.Fatal("partition does not sum to target")
	}
}

func TestFindPartitionFailure(t *testing.T) {
	g := graph.Grid(3, 3)
	perim := gridPerimeter(t, g, 3, 3)
	_, err := FindPartition(g, perim.Vector(g.NumEdges()), 3)
	if !errors.Is(err, ErrNotPartitionable) {
		t.Fatalf("err = %v, want ErrNotPartitionable", err)
	}
}

func TestFindPartitionZeroTarget(t *testing.T) {
	g := graph.Grid(3, 3)
	part, err := FindPartition(g, bitvec.New(g.NumEdges()), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != 0 {
		t.Fatalf("zero target produced %d cycles", len(part))
	}
}

func TestFindPartitionAgreesWithPartitionable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnected(r, 10, 0.3)
		basis, err := MCB(g)
		if err != nil {
			return false
		}
		if len(basis) == 0 {
			return true
		}
		target := Sum(g.NumEdges(), basis[r.Intn(len(basis))])
		tau := 3 + r.Intn(6)
		part, ferr := FindPartition(g, target, tau)
		ok := Partitionable(g, target, tau)
		if ok != (ferr == nil) {
			return false
		}
		if ferr == nil && !Sum(g.NumEdges(), part...).Equal(target) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomConnected returns a connected random graph: a random spanning tree
// plus G(n,p) extra edges.
func randomConnected(r *rand.Rand, n int, p float64) *graph.Graph {
	b := graph.NewBuilder()
	for i := 1; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(r.Intn(i)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				b.AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	if n == 1 {
		b.AddNode(0)
	}
	return b.MustBuild()
}

func BenchmarkMCBTriangulatedGrid(b *testing.B) {
	g := graph.TriangulatedGrid(8, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MCB(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpannedByShort(b *testing.B) {
	g := graph.TriangulatedGrid(10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !SpannedByShort(g, 3) {
			b.Fatal("expected spanned")
		}
	}
}
