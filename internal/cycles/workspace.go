package cycles

import (
	"dcc/internal/bitvec"
	"dcc/internal/graph"
)

// Workspace holds reusable GF(2) elimination state for repeated short-span
// tests: the echelon (with its recycled row storage) and a flat arena for
// the Horton candidates of the current graph. A Workspace amortizes the
// per-test allocations of SpannedByShort across the thousands of
// deletability evaluations a scheduling run performs; it is NOT safe for
// concurrent use — give each worker its own.
type Workspace struct {
	ech   *bitvec.Echelon
	offs  []int32 // candidate i occupies arena[offs[i]:offs[i+1]]
	arena []int32 // concatenated candidate edge lists
}

// NewWorkspace returns an empty Workspace.
func NewWorkspace() *Workspace {
	return &Workspace{ech: bitvec.NewEchelon(0)}
}

// SpannedByShortWS is SpannedByShort evaluated with ws's reusable buffers —
// same verdict, amortized allocations. This is the form the incremental
// deletability engine (internal/vpt Cache) calls per candidate.
func SpannedByShortWS(g *graph.Graph, tau int, ws *Workspace) bool {
	// Trees carry no cycles; restricting to the 2-core preserves the cycle
	// space while shrinking the candidate generation work.
	return ws.spansAll(g.TwoCore(), tau)
}

// spansAll reports whether cycles of length ≤ tau span the entire cycle
// space of core (assumed 2-core-reduced). Triangles are inserted straight
// from the adjacency intersection first — in the dense unit-disk patches
// the deletability test sees, they usually reach full rank on their own —
// then the remaining Horton candidates are gathered into the arena (no
// per-candidate copies or sorting: span membership is order-independent)
// and eliminated with the same cannot-reach-rank early abort the batch
// builder uses.
func (ws *Workspace) spansAll(core *graph.Graph, tau int) bool {
	nu := core.CycleSpaceDim()
	if nu == 0 {
		return true
	}
	if tau < 3 {
		return false
	}
	m := core.NumEdges()
	ws.ech.Reset(m)
	ech := ws.ech
	scratch := ech.TakeScratch()
	full := false
	core.ForEachTriangle(func(e1, e2, e3 int32) bool {
		scratch.Set(int(e1), true)
		scratch.Set(int(e2), true)
		scratch.Set(int(e3), true)
		if _, taken := ech.InsertOwned(scratch); taken {
			if ech.Rank() == nu {
				full = true
				return false
			}
			scratch = ech.TakeScratch()
		}
		// A rejected scratch comes back zeroed by the reduction.
		return true
	})
	if full || tau == 3 {
		// For τ=3 the triangles are the only generators ≤ τ (every 3-cycle
		// is a 3-clique), so the verdict is already decided.
		return full
	}
	ws.offs = ws.offs[:0]
	ws.arena = ws.arena[:0]
	core.ForEachHortonCandidate(tau, func(_ graph.NodeID, _ int, edges []int32) bool {
		ws.offs = append(ws.offs, int32(len(ws.arena)))
		ws.arena = append(ws.arena, edges...)
		return true
	})
	ws.offs = append(ws.offs, int32(len(ws.arena)))
	ncand := len(ws.offs) - 1
	for i := 0; i < ncand; i++ {
		if ech.Rank()+(ncand-i) < nu {
			return false // even a fully independent tail cannot reach ν
		}
		for _, e := range ws.arena[ws.offs[i]:ws.offs[i+1]] {
			scratch.Set(int(e), true)
		}
		if _, taken := ech.InsertOwned(scratch); taken {
			if ech.Rank() == nu {
				return true
			}
			scratch = ech.TakeScratch()
		}
	}
	return false
}
