// Package cycles implements the cycle-space algebra of the paper: incidence
// vectors over GF(2), Horton candidate cycles, minimum cycle bases,
// Algorithm 1 (minimum and maximum irreducible-cycle sizes) and the
// τ-partitionability tests behind the coverage criterion (Propositions 2
// and 3 of the paper).
//
// Terminology (paper §IV-A and §V-A):
//   - The cycle space C_H of a graph H is the GF(2) vector space spanned by
//     the incidence vectors of simple cycles; its dimension is
//     ν = m − n + c.
//   - A minimum cycle basis (MCB) is a basis of minimum total length.
//   - A cycle is irreducible (a.k.a. relevant, Vismara 1997) if it cannot
//     be written as a sum of strictly shorter cycles; the irreducible
//     cycles are exactly the cycles appearing in some MCB, and every MCB
//     has the same multiset of cycle lengths (Chickering et al. 1995) —
//     which is why Algorithm 1 may read the min/max irreducible sizes off
//     any single MCB.
//   - A cycle set C is a cycle partition of a target cycle (set) when the
//     GF(2) sum of C equals the target sum; the target is τ-partitionable
//     when a partition using only cycles of length ≤ τ exists.
package cycles

import (
	"errors"
	"fmt"
	"sort"

	"dcc/internal/bitvec"
	"dcc/internal/graph"
)

// ErrNotPartitionable is returned when no cycle partition within the
// requested length bound exists.
var ErrNotPartitionable = errors.New("cycles: target is not partitionable within the length bound")

// Cycle is a set of edges of a specific graph, identified by edge indices.
// It usually represents a simple cycle but, as an element of the cycle
// space, may also be a disjoint union of simple cycles (e.g. a cycle sum).
type Cycle struct {
	edges []int32 // sorted edge indices
}

// NewCycle builds a Cycle from edge indices (copied, sorted, deduplicated).
func NewCycle(edgeIdx []int) Cycle {
	es := make([]int32, 0, len(edgeIdx))
	for _, e := range edgeIdx {
		es = append(es, int32(e))
	}
	sort.Slice(es, func(i, j int) bool { return es[i] < es[j] })
	out := es[:0]
	for i, e := range es {
		if i > 0 && es[i-1] == e {
			continue
		}
		out = append(out, e)
	}
	return Cycle{edges: out}
}

// Len returns the number of edges in the cycle.
func (c Cycle) Len() int { return len(c.edges) }

// EdgeIndices returns the sorted edge indices. The slice is a copy.
func (c Cycle) EdgeIndices() []int {
	out := make([]int, len(c.edges))
	for i, e := range c.edges {
		out[i] = int(e)
	}
	return out
}

// Vector returns the GF(2) incidence vector of the cycle over a graph with
// m edges.
func (c Cycle) Vector(m int) bitvec.Vector {
	v := bitvec.New(m)
	for _, e := range c.edges {
		v.Set(int(e), true)
	}
	return v
}

// FromVertices builds the cycle passing through the given vertices in
// order, closing back from the last to the first. It errors if any required
// edge is missing or the sequence is shorter than 3 vertices.
func FromVertices(g *graph.Graph, verts []graph.NodeID) (Cycle, error) {
	if len(verts) < 3 {
		return Cycle{}, fmt.Errorf("cycles: need at least 3 vertices, got %d", len(verts))
	}
	idx := make([]int, 0, len(verts))
	for i := range verts {
		u, v := verts[i], verts[(i+1)%len(verts)]
		e, ok := g.EdgeIndex(u, v)
		if !ok {
			return Cycle{}, fmt.Errorf("cycles: edge {%d,%d} not in graph", u, v)
		}
		idx = append(idx, e)
	}
	return NewCycle(idx), nil
}

// Sum returns the GF(2) sum of the given cycles as an incidence vector over
// a graph with m edges.
func Sum(m int, cs ...Cycle) bitvec.Vector {
	v := bitvec.New(m)
	for _, c := range cs {
		for _, e := range c.edges {
			v.Flip(int(e))
		}
	}
	return v
}

// FromVector converts an incidence vector back to a Cycle (edge set).
func FromVector(v bitvec.Vector) Cycle {
	idx := v.Indices()
	es := make([]int32, len(idx))
	for i, e := range idx {
		es[i] = int32(e)
	}
	return Cycle{edges: es}
}

// VertexOrder returns the vertices of a simple cycle in traversal order, or
// an error if the edge set is not a single simple cycle in g.
func VertexOrder(g *graph.Graph, c Cycle) ([]graph.NodeID, error) {
	if len(c.edges) < 3 {
		return nil, fmt.Errorf("cycles: %d edges cannot form a simple cycle", len(c.edges))
	}
	next := make(map[graph.NodeID][]graph.NodeID, len(c.edges))
	for _, ei := range c.edges {
		e := g.EdgeAt(int(ei))
		next[e.U] = append(next[e.U], e.V)
		next[e.V] = append(next[e.V], e.U)
	}
	// Validate in sorted vertex order so the reported error (and the walk's
	// start vertex) never depend on map iteration order.
	verts := make([]graph.NodeID, 0, len(next))
	for v := range next {
		verts = append(verts, v)
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	for _, v := range verts {
		if ns := next[v]; len(ns) != 2 {
			return nil, fmt.Errorf("cycles: vertex %d has degree %d in edge set", v, len(ns))
		}
	}
	// Walk from the smallest vertex.
	start := verts[0]
	order := make([]graph.NodeID, 0, len(c.edges))
	prev, cur := graph.NodeID(-1), start
	for {
		order = append(order, cur)
		ns := next[cur]
		nxt := ns[0]
		if nxt == prev {
			nxt = ns[1]
		}
		prev, cur = cur, nxt
		if cur == start {
			break
		}
		if len(order) > len(c.edges) {
			return nil, errors.New("cycles: edge set is not a single simple cycle")
		}
	}
	if len(order) != len(c.edges) {
		return nil, errors.New("cycles: edge set contains multiple disjoint cycles")
	}
	return order, nil
}

// Candidates generates the Horton candidate cycles of g, sorted by
// non-decreasing length. For each vertex v a BFS shortest-path tree is
// built; every non-tree edge (x,y) whose tree LCA is v yields the candidate
// C(v,x,y) = path(v,x) + path(v,y) + (x,y) (Algorithm 1, lines 2–6).
//
// maxLen > 0 restricts generation to candidates of length ≤ maxLen (the BFS
// is truncated to depth ⌊maxLen/2⌋, which is sufficient since the two tree
// paths of a candidate differ in depth by at most one). maxLen ≤ 0 means
// unbounded.
//
// Every minimum cycle basis is contained in the unbounded candidate set
// (Horton 1987), and every cycle of length ≤ L is a GF(2) sum of
// irreducible cycles of length ≤ L, so the candidates of length ≤ L span
// exactly the subspace generated by all cycles of length ≤ L.
func Candidates(g *graph.Graph, maxLen int) []Cycle {
	// Bucket by length: candidate lengths are small integers, so bucketing
	// replaces an O(c log c) sort and keeps generation order stable within
	// a length class.
	var buckets [][]Cycle
	count := 0
	g.ForEachHortonCandidate(maxLen, func(_ graph.NodeID, length int, edges []int32) bool {
		for length >= len(buckets) {
			buckets = append(buckets, nil)
		}
		es := make([]int32, len(edges))
		copy(es, edges)
		sort.Slice(es, func(i, j int) bool { return es[i] < es[j] })
		buckets[length] = append(buckets[length], Cycle{edges: es})
		count++
		return true
	})
	cands := make([]Cycle, 0, count)
	for _, b := range buckets {
		cands = append(cands, b...)
	}
	return cands
}

// MCB computes a minimum cycle basis of g by greedy Gaussian elimination
// over the Horton candidates (Algorithm 1, lines 7–14). The basis is
// returned sorted by non-decreasing length. A forest yields an empty basis.
func MCB(g *graph.Graph) ([]Cycle, error) {
	nu := g.CycleSpaceDim()
	if nu == 0 {
		return nil, nil
	}
	m := g.NumEdges()
	ech := bitvec.NewEchelon(m)
	basis := make([]Cycle, 0, nu)
	for _, c := range Candidates(g, -1) {
		if ech.Insert(c.Vector(m)) {
			basis = append(basis, c)
			if len(basis) == nu {
				return basis, nil
			}
		}
	}
	return nil, fmt.Errorf("cycles: candidate set spans rank %d, want %d (internal error)", len(basis), nu)
}

// MinMaxIrreducible implements Algorithm 1 of the paper: it returns the
// minimum and maximum sizes of irreducible cycles in g. For a forest (no
// cycles) it returns (0, 0).
func MinMaxIrreducible(g *graph.Graph) (minLen, maxLen int, err error) {
	basis, err := MCB(g)
	if err != nil {
		return 0, 0, err
	}
	if len(basis) == 0 {
		return 0, 0, nil
	}
	return basis[0].Len(), basis[len(basis)-1].Len(), nil
}

// ShortSpan is the echelon of all candidate cycles of length ≤ tau,
// pre-reduced so that membership queries are cheap.
type ShortSpan struct {
	g    *graph.Graph
	tau  int
	ech  *bitvec.Echelon
	full bool // rank reached ν: the short cycles span the whole cycle space
}

// NewShortSpan builds the complete span of cycles of length ≤ tau in g
// (insertion stops early only once the span already covers the full cycle
// space, which loses nothing). Triangles are inserted first, enumerated
// directly by adjacency intersection: in the dense unit-disk patches the
// void-preserving transformation tests, triangles alone usually reach full
// rank, making the much heavier Horton candidate generation unnecessary.
func NewShortSpan(g *graph.Graph, tau int) *ShortSpan {
	m := g.NumEdges()
	nu := g.CycleSpaceDim()
	s := &ShortSpan{g: g, tau: tau, ech: bitvec.NewEchelon(m)}
	if nu == 0 {
		s.full = true
		return s
	}
	if tau >= 3 {
		scratch := bitvec.New(m)
		full := false
		forEachTriangle(g, func(e1, e2, e3 int) bool {
			scratch.Set(e1, true)
			scratch.Set(e2, true)
			scratch.Set(e3, true)
			if _, taken := s.ech.InsertOwned(scratch); taken {
				if s.ech.Rank() == nu {
					full = true
					return false
				}
				scratch = bitvec.New(m)
			}
			// A rejected scratch comes back zeroed by the reduction.
			return true
		})
		if full {
			s.full = true
			return s
		}
		if tau == 3 {
			return s
		}
	}
	scratch := bitvec.New(m)
	for _, c := range Candidates(g, tau) {
		for _, e := range c.edges {
			scratch.Set(int(e), true)
		}
		if _, taken := s.ech.InsertOwned(scratch); taken {
			scratch = bitvec.New(m)
			if s.ech.Rank() == nu {
				s.full = true
				break
			}
		}
	}
	return s
}

// forEachTriangle enumerates each 3-clique of g once (by edge indices),
// stopping when fn returns false. It delegates to the graph package's
// dense, allocation-free merge-intersection enumerator.
func forEachTriangle(g *graph.Graph, fn func(e1, e2, e3 int) bool) {
	g.ForEachTriangle(func(e1, e2, e3 int32) bool {
		return fn(int(e1), int(e2), int(e3))
	})
}

// SpansAll reports whether cycles of length ≤ tau span the entire cycle
// space of g — equivalently (Theorem 4 + Chickering), whether the maximum
// irreducible cycle of g has length ≤ tau.
func (s *ShortSpan) SpansAll() bool { return s.full }

// Contains reports whether the target incidence vector lies in the span,
// i.e. whether target is τ-partitionable in g (Definitions 2 and 3).
func (s *ShortSpan) Contains(target bitvec.Vector) bool {
	return s.ech.Spans(target)
}

// Residue returns the part of the target not expressible by cycles of
// length ≤ τ — the obstruction witness (zero iff Contains). Useful for
// diagnosing where a network fails the coverage criterion.
func (s *ShortSpan) Residue(target bitvec.Vector) bitvec.Vector {
	return s.ech.Reduce(target)
}

// SpannedByShort reports whether the cycle space of g is generated by
// cycles of length ≤ tau. This is the core test of the void-preserving
// transformation (Definition 5): it holds iff the maximum irreducible cycle
// of g is bounded by tau.
func SpannedByShort(g *graph.Graph, tau int) bool {
	return SpannedByShortWS(g, tau, NewWorkspace())
}

// Partitionable reports whether the target vector (typically the GF(2) sum
// of the boundary cycles) is expressible as a sum of cycles of length
// ≤ tau in g. This is the coverage criterion of Propositions 2 and 3.
func Partitionable(g *graph.Graph, target bitvec.Vector, tau int) bool {
	return NewShortSpan(g, tau).Contains(target)
}

// FindPartition returns an explicit cycle partition of the target using
// cycles of length ≤ tau, or ErrNotPartitionable. It tracks elimination
// coefficients, so it is heavier than Partitionable; use it for reporting
// and visualisation rather than in inner loops.
func FindPartition(g *graph.Graph, target bitvec.Vector, tau int) ([]Cycle, error) {
	m := g.NumEdges()
	cands := Candidates(g, tau)
	// Extended vectors: m edge bits followed by one coefficient bit per
	// candidate. Eliminating extended vectors keeps track of which
	// candidates sum to each echelon row.
	ext := m + len(cands)
	ech := bitvec.NewEchelon(ext)
	nu := g.CycleSpaceDim()
	rank := 0
	for i, c := range cands {
		v := bitvec.New(ext)
		for _, e := range c.edges {
			v.Set(int(e), true)
		}
		v.Set(m+i, true)
		// Only rows pivoted in the edge region grow the edge-space rank;
		// rows whose edge bits cancelled are dependency records.
		if p, ok := ech.InsertPivot(v); ok && p < m {
			rank++
			if rank == nu {
				break
			}
		}
	}
	tv := bitvec.New(ext)
	for _, e := range target.Indices() {
		tv.Set(e, true)
	}
	res := ech.Reduce(tv)
	for _, b := range res.Indices() {
		if b < m {
			return nil, ErrNotPartitionable
		}
	}
	var part []Cycle
	for _, b := range res.Indices() {
		part = append(part, cands[b-m])
	}
	// Sanity: the chosen cycles must sum exactly to the target.
	if !Sum(m, part...).Equal(target) {
		return nil, errors.New("cycles: internal error: partition does not sum to target")
	}
	return part, nil
}
