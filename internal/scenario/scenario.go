// Package scenario is the ground-truth engine of the test suite: a
// catalogue of deterministic topologies whose coverage, connectivity and
// confine-size properties are known in closed form, so the DCC pipeline
// (graph build → schedule → verifier) can be checked against an
// *independent* source of truth rather than against its own past output.
//
// Each generator emits a full dcc.Deployment together with an Oracle — the
// closed-form expectations derived from the family's geometry (Tripathi et
// al.: deterministic lattice deployments admit exact coverage thresholds):
//
//   - square lattice, spacing s:  covered ⇔ s ≤ √2·Rs,  τ* = 3 (s√2 ≤ Rc) or 4
//   - triangular lattice:         covered ⇔ s ≤ √3·Rs,  τ* = 3
//   - honeycomb lattice:          covered ⇔ s ≤ Rs,     τ* = 6 (s√3 > Rc) or 3
//   - strip (thin square):        same cell math as the square lattice
//   - annulus (obstacle ring):    covered ⇔ trapezoid circumradius ≤ Rs
//   - masked lattice:             square lattice with an obstacle crater
//   - hetero checkerboard:        covered ⇔ rBig ≥ √(s² + rSmall² − √2·s·rSmall)
//
// On top of the catalogue the package provides seeded point perturbation
// (Displacements/Displace) for stability-margin sweeps in the spirit of
// Hiraoka–Kusano: jitter every point by ε and find the smallest ε at which
// a verdict flips.
//
// The package deliberately reuses the public entry points (dcc.Deployment,
// ScheduleDCC, VerifyConfine) so oracle disagreements implicate the real
// pipeline, not a test-only shadow of it.
package scenario

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dcc"
	"dcc/internal/cover"
	"dcc/internal/geom"
	"dcc/internal/graph"
)

// Oracle holds the closed-form expected properties of a scenario. All
// expectations refer to the *full* (unscheduled) deployment; the guarantee
// tests combine them with Proposition 1 to constrain scheduled results.
type Oracle struct {
	// Connected is the closed-form connectivity verdict of the UDG.
	Connected bool
	// AchievableTau is the closed-form smallest confine size for which the
	// boundary cycles are τ-partitionable (0 when the family's regime is
	// disconnected or out of catalogue form).
	AchievableTau int
	// Covered reports whether the monitored region (the core area minus
	// obstacle interiors) is fully sensing-covered.
	Covered bool
	// CoverageThreshold is the critical spacing s*: the family is covered
	// exactly when its spacing is ≤ s* (for the hetero family the threshold
	// is on rBig instead and this field holds the critical rBig).
	CoverageThreshold float64
	// HoleCenters are representative uncovered points, one or more per
	// expected hole, all inside the monitored region. Empty when Covered.
	HoleCenters []geom.Point
	// HoleCount is the expected number of connected uncovered regions.
	// Meaningful only when HoleCountExact is set; families whose hole
	// regions have parameter-dependent connectivity publish centers only.
	HoleCount int
	// HoleCountExact marks families whose hole regions are provably
	// disjoint, making HoleCount an exact expectation.
	HoleCountExact bool
}

// Scenario is one deterministic topology with its ground truth.
type Scenario struct {
	// Name identifies the family and regime (e.g. "square/tau3/covered").
	Name string
	// Dep is the embedded deployment consumed by the DCC pipeline.
	Dep *dcc.Deployment
	// Spacing is the lattice constant s the oracle thresholds refer to.
	Spacing float64
	// Radii holds per-node sensing radii for heterogeneous scenarios
	// (indexed by node ID); nil means the uniform Dep.Rs applies.
	Radii []float64
	// Oracle is the closed-form expectation set.
	Oracle Oracle
}

// Resolution returns the sampling cell size used by Coverage: an eighth of
// the smallest sensing radius, fine enough that every oracle hole blob
// spans multiple sample cells in catalogue regimes.
func (sc *Scenario) Resolution() float64 {
	rs := sc.Dep.Rs
	for _, r := range sc.Radii {
		if r > 0 && r < rs {
			rs = r
		}
	}
	return rs / 8
}

// Coverage measures ground-truth sensing coverage of the given node set
// (nil means the full deployment) over the core area, honouring per-node
// radii and exempting obstacle interiors, exactly like dcc's
// CoverageReport but generalized to heterogeneous sensing.
func (sc *Scenario) Coverage(final *graph.Graph) cover.Report {
	if final == nil {
		final = sc.Dep.G
	}
	if sc.Radii == nil {
		return sc.Dep.CoverageReport(final, sc.Resolution())
	}
	var active []geom.Point
	var radii []float64
	for _, v := range final.Nodes() {
		if int(v) < len(sc.Dep.Points) {
			active = append(active, sc.Dep.Points[v])
			radii = append(radii, sc.Radii[v])
		}
	}
	rep := cover.AnalyzeRadii(active, radii, sc.Dep.CoreArea(), sc.Resolution())
	return dropObstacleHoles(rep, sc.Dep.Obstacles)
}

// dropObstacleHoles removes holes lying entirely inside obstacle regions
// (their interiors are not part of the monitored area).
func dropObstacleHoles(rep cover.Report, obstacles []geom.Circle) cover.Report {
	if len(obstacles) == 0 {
		return rep
	}
	kept := rep.Holes[:0]
	for _, h := range rep.Holes {
		outside := false
		for _, c := range h.Cells {
			if !insideAny(c, obstacles) {
				outside = true
				break
			}
		}
		if outside {
			kept = append(kept, h)
		}
	}
	rep.Holes = kept
	return rep
}

func insideAny(p geom.Point, obstacles []geom.Circle) bool {
	for _, ob := range obstacles {
		if geom.Dist(p, ob.Center) < ob.R {
			return true
		}
	}
	return false
}

// PointCovered evaluates coverage of a single point directly from the node
// positions — the sampling-free ground truth used to validate oracle hole
// centers independent of grid resolution.
func (sc *Scenario) PointCovered(p geom.Point) bool {
	for i, q := range sc.Dep.Points {
		rs := sc.Dep.Rs
		if sc.Radii != nil {
			rs = sc.Radii[i]
		}
		if geom.Dist(p, q) <= rs {
			return true
		}
	}
	return false
}

// CriterionOK evaluates the τ-confine criterion on the full (unscheduled)
// graph — the verdict whose stability the perturbation sweep measures. A
// perturbation that breaks a boundary-cycle edge makes the verdict
// undefined; callers should treat an error as a flip.
func (sc *Scenario) CriterionOK(tau int) (bool, error) {
	return sc.Dep.VerifyConfine(sc.Dep.G, tau)
}

// Displacements draws one unit displacement direction per node. Drawing
// the field once and scaling it by ε (Displace) makes the flip threshold
// of a perturbation sweep well-defined per seed: growing ε moves every
// node further along a fixed ray instead of resampling the geometry.
func (sc *Scenario) Displacements(rng *rand.Rand) []geom.Point {
	out := make([]geom.Point, len(sc.Dep.Points))
	for i := range out {
		a := 2 * math.Pi * rng.Float64()
		out[i] = geom.Point{X: math.Cos(a), Y: math.Sin(a)}
	}
	return out
}

// Displace returns a copy of the scenario with every point moved by
// eps·disp[i] and the connectivity graph rebuilt under the same link
// radius. Boundary cycles and node IDs are preserved; the oracle still
// describes the unperturbed deployment. The returned scenario may be
// structurally invalid (jitter can break boundary-cycle links) — its
// CriterionOK then reports the error.
func (sc *Scenario) Displace(disp []geom.Point, eps float64) *Scenario {
	if len(disp) != len(sc.Dep.Points) {
		panic(fmt.Sprintf("scenario: %d displacements for %d points", len(disp), len(sc.Dep.Points)))
	}
	pts := make([]geom.Point, len(sc.Dep.Points))
	for i, p := range sc.Dep.Points {
		pts[i] = geom.Point{X: p.X + eps*disp[i].X, Y: p.Y + eps*disp[i].Y}
	}
	dep := *sc.Dep
	dep.Points = pts
	dep.G = geom.UDG(pts, sc.Dep.Rc)
	out := *sc
	out.Name = sc.Name + "/displaced"
	out.Dep = &dep
	return &out
}

// assemble builds the Scenario around generated points: UDG graph, boundary
// bookkeeping, deployment struct, and (when the regime is connected) a
// structural validation of the boundary cycles against the graph.
func assemble(name string, pts []geom.Point, spacing, rc, rs float64, target geom.Rect,
	outer []graph.NodeID, inner [][]graph.NodeID, obstacles []geom.Circle,
	radii []float64, o Oracle) (*Scenario, error) {

	g := geom.UDG(pts, rc)
	var bnodes []graph.NodeID
	bset := make(map[graph.NodeID]bool, len(outer))
	for _, v := range outer {
		bset[v] = true
	}
	for _, cyc := range inner {
		for _, v := range cyc {
			bset[v] = true
		}
	}
	for _, v := range g.Nodes() {
		if bset[v] {
			bnodes = append(bnodes, v)
		}
	}
	dep := &dcc.Deployment{
		Points:        pts,
		G:             g,
		Target:        target,
		Rc:            rc,
		Rs:            rs,
		BoundaryNodes: bnodes,
		OuterCycle:    outer,
		InnerCycles:   inner,
		Obstacles:     obstacles,
	}
	sc := &Scenario{Name: name, Dep: dep, Spacing: spacing, Radii: radii, Oracle: o}
	if o.Connected {
		if err := dep.Network().Validate(); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", name, err)
		}
	}
	return sc, nil
}

// outerFaceCycle traces the outer boundary of an embedded planar graph by
// face tracing: starting at the bottom-most (then left-most) vertex, at
// each vertex the next edge is the first one clockwise from the reversed
// incoming edge — the rule that keeps the face on the walker's left, which
// for this start vertex and a virtual eastward incoming edge is the outer
// face (angle ties broken toward the nearer neighbor, so collinear
// long-range links never skip a perimeter vertex). Every catalogue lattice
// is 2-connected, making the walk a simple cycle; a repeated vertex aborts
// with an error rather than emitting a pinched boundary.
//
// The rule is only sound on plane (non-crossing) embeddings — callers in
// dense regimes trace on the unit-distance subgraph, whose edges all exist
// in the full graph.
func outerFaceCycle(pts []geom.Point, g *graph.Graph) ([]graph.NodeID, error) {
	if g.NumNodes() < 3 {
		return nil, errors.New("scenario: outer face of a graph with <3 nodes")
	}
	start := g.Nodes()[0]
	for _, v := range g.Nodes() {
		p, q := pts[v], pts[start]
		if p.Y < q.Y || (p.Y == q.Y && p.X < q.X) {
			start = v
		}
	}
	// Virtual incoming direction +x: reversing it puts "back" at west, and
	// the first edge clockwise from west at the bottom-most vertex starts
	// the clockwise perimeter walk (up the left side of the hull).
	cycle := []graph.NodeID{start}
	onCycle := map[graph.NodeID]bool{start: true}
	prevDir := geom.Point{X: 1, Y: 0}
	v := start
	for {
		next, ok := clockwiseNext(pts, g, v, prevDir)
		if !ok {
			return nil, fmt.Errorf("scenario: outer-face walk stuck at node %d", v)
		}
		if next == start {
			break
		}
		if onCycle[next] {
			return nil, fmt.Errorf("scenario: outer face revisits node %d (graph not 2-connected)", next)
		}
		onCycle[next] = true
		cycle = append(cycle, next)
		prevDir = geom.Point{X: pts[next].X - pts[v].X, Y: pts[next].Y - pts[v].Y}
		v = next
		if len(cycle) > g.NumNodes() {
			return nil, errors.New("scenario: outer-face walk did not close")
		}
	}
	if len(cycle) < 3 {
		return nil, errors.New("scenario: outer face shorter than a 3-cycle")
	}
	return cycle, nil
}

// clockwiseNext picks the first neighbor of v encountered rotating
// clockwise from the reversed incoming direction, breaking exact-angle
// ties by distance (nearest first). The reverse edge itself sits at angle
// 2π, so the walk only backtracks at a degree-1 vertex.
func clockwiseNext(pts []geom.Point, g *graph.Graph, v graph.NodeID, inDir geom.Point) (graph.NodeID, bool) {
	back := math.Atan2(-inDir.Y, -inDir.X)
	best := graph.NodeID(0)
	bestAngle := math.Inf(1)
	bestDist := math.Inf(1)
	found := false
	for _, w := range g.Neighbors(v) {
		d := geom.Point{X: pts[w].X - pts[v].X, Y: pts[w].Y - pts[v].Y}
		a := back - math.Atan2(d.Y, d.X)
		for a <= 1e-12 { // angle strictly in (0, 2π]: never walk straight back unless forced
			a += 2 * math.Pi
		}
		for a > 2*math.Pi+1e-12 {
			a -= 2 * math.Pi
		}
		dist := math.Hypot(d.X, d.Y)
		if a < bestAngle-1e-12 || (math.Abs(a-bestAngle) <= 1e-12 && dist < bestDist) {
			best, bestAngle, bestDist, found = w, a, dist, true
		}
	}
	return best, found
}

// circumradius returns the circumradius of the triangle abc (∞ for
// degenerate triples).
func circumradius(a, b, c geom.Point) float64 {
	la, lb, lc := geom.Dist(b, c), geom.Dist(a, c), geom.Dist(a, b)
	area2 := math.Abs((b.X-a.X)*(c.Y-a.Y) - (c.X-a.X)*(b.Y-a.Y)) // 2·area
	if area2 < 1e-14 {
		return math.Inf(1)
	}
	return la * lb * lc / (2 * area2)
}

// circumcenter returns the circumcenter of the triangle abc.
func circumcenter(a, b, c geom.Point) geom.Point {
	ax, ay := b.X-a.X, b.Y-a.Y
	bx, by := c.X-a.X, c.Y-a.Y
	d := 2 * (ax*by - ay*bx)
	ux := (by*(ax*ax+ay*ay) - ay*(bx*bx+by*by)) / d
	uy := (ax*(bx*bx+by*by) - bx*(ax*ax+ay*ay)) / d
	return geom.Point{X: a.X + ux, Y: a.Y + uy}
}

// sortedCenters orders hole centers lexicographically so oracle output is
// independent of generator enumeration order.
func sortedCenters(cs []geom.Point) []geom.Point {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Y != cs[j].Y {
			return cs[i].Y < cs[j].Y
		}
		return cs[i].X < cs[j].X
	})
	return cs
}
