package scenario

import (
	"math"
	"testing"

	"dcc"
	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/hgc"
)

// coveredInFinal reports whether p is sensed by any node kept in final,
// honouring per-node radii. Virtual repair apexes (IDs beyond Points) have
// no position and never cover anything.
func coveredInFinal(sc *Scenario, final *graph.Graph, p geom.Point) bool {
	for _, v := range final.Nodes() {
		if int(v) >= len(sc.Dep.Points) {
			continue
		}
		rs := sc.Dep.Rs
		if sc.Radii != nil {
			rs = sc.Radii[v]
		}
		if geom.Dist(p, sc.Dep.Points[v]) <= rs {
			return true
		}
	}
	return false
}

func scenarioByName(t *testing.T, cat []*Scenario, name string) *Scenario {
	t.Helper()
	for _, sc := range cat {
		if sc.Name == name {
			return sc
		}
	}
	t.Fatalf("scenario %q not in catalogue", name)
	return nil
}

// TestRipsRelaxation pins the paper's separation between the two criteria
// (§IV-B): where the Rips complex is triangle-filled both criteria accept,
// and on triangle-free lattices HGC reports a hole (H1 non-trivial) while
// the τ-confine criterion accepts at the matching larger τ. The homology
// verdict comes from the independent internal/hgc implementation, so
// agreement here is a genuine cross-check, not a mirror.
func TestRipsRelaxation(t *testing.T) {
	cat := mustCatalogue(t)
	cases := []struct {
		name    string
		wantHGC bool
	}{
		{"square/tau3/covered", true},     // diagonals make every cell a 4-clique
		{"triangular/tau3/covered", true}, // unit triangles are 3-cliques
		{"honeycomb/tau3/covered", true},  // √3-chords triangulate every hexagon
		{"square/tau4/covered", false},    // bipartite: no triangles, empty 4-cycles
		{"honeycomb/tau6/covered", false}, // girth 6: no triangles, empty 6-cycles
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sc := scenarioByName(t, cat, tc.name)
			if got := hgc.Verify(sc.Dep.G, sc.Dep.InnerCycles); got != tc.wantHGC {
				t.Errorf("hgc.Verify = %v, want %v", got, tc.wantHGC)
			}
			ok, err := sc.Dep.VerifyConfine(sc.Dep.G, sc.Oracle.AchievableTau)
			if err != nil {
				t.Fatalf("VerifyConfine: %v", err)
			}
			if !ok {
				t.Errorf("τ-confine criterion rejects at the oracle τ = %d", sc.Oracle.AchievableTau)
			}
		})
	}
}

// TestDifferentialDCCvsHGC schedules every connected catalogue scenario
// with both the DCC scheduler (at the oracle τ) and the independent HGC
// baseline, then cross-checks the two against the closed form:
//
//   - τ = 3 scenarios are triangle-filled by construction, so the HGC final
//     must pass the homology criterion;
//   - τ > 3 catalogue scenarios are triangle-free, so HGC must report a
//     hole even when the oracle proves the region covered — the phantom
//     verdict the τ-confine relaxation exists to avoid;
//   - on uncovered scenarios, every oracle hole stays uncovered under both
//     schedulers (deletion never manufactures coverage);
//   - on covered uniform scenarios within the HGC range condition γ ≤ √3,
//     the HGC final must remain fully covered, measured geometrically.
func TestDifferentialDCCvsHGC(t *testing.T) {
	ran := 0
	for _, sc := range mustCatalogue(t) {
		sc := sc
		if !sc.Oracle.Connected {
			continue
		}
		ran++
		t.Run(sc.Name, func(t *testing.T) {
			o := sc.Oracle
			hgcRes, err := sc.Dep.ScheduleHGC(1)
			if err != nil {
				t.Fatalf("ScheduleHGC: %v", err)
			}
			dccRes, err := sc.Dep.ScheduleDCC(o.AchievableTau, dcc.ScheduleOptions{Seed: 1})
			if err != nil {
				t.Fatalf("ScheduleDCC: %v", err)
			}

			if o.AchievableTau == 3 {
				if !hgcRes.HomologyOK {
					t.Error("HGC rejects a triangle-filled τ=3 scenario")
				}
			} else if !hasTriangles(sc.Dep.G) {
				if hgcRes.HomologyOK {
					t.Error("HGC accepts a triangle-free lattice; H1 should be non-trivial")
				}
			}

			for _, c := range o.HoleCenters {
				if coveredInFinal(sc, dccRes.Final, c) {
					t.Errorf("DCC final covers oracle hole center %v", c)
				}
				if coveredInFinal(sc, hgcRes.Final, c) {
					t.Errorf("HGC final covers oracle hole center %v", c)
				}
			}

			if o.Covered && sc.Radii == nil && sc.Dep.Gamma() <= math.Sqrt(3)+1e-9 && o.AchievableTau == 3 {
				rep := sc.Coverage(hgcRes.Final)
				if !rep.FullyCovered() {
					t.Errorf("HGC schedule opened %d holes (max diameter %.3f) within its range condition",
						len(rep.Holes), rep.MaxHoleDiameter())
				}
			}
		})
	}
	if ran < 15 {
		t.Errorf("differential ran on %d scenarios; catalogue should provide more", ran)
	}
}

func hasTriangles(g *graph.Graph) bool {
	for _, v := range g.Nodes() {
		nb := g.Neighbors(v)
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				if g.HasEdge(nb[i], nb[j]) {
					return true
				}
			}
		}
	}
	return false
}
