package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"dcc"
)

// fingerprint reduces a freshly generated square-lattice scenario — oracle,
// outer face, schedule, and jittered criterion verdicts — to one string.
// Everything downstream of the generator that consumes randomness is seeded,
// so two calls with the same inputs must agree byte for byte.
func fingerprint(rows, cols int, s, rc, rs float64, seed int64, eps float64) (string, error) {
	sc, err := SquareLattice("fuzz/square", rows, cols, s, rc, rs)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	o := sc.Oracle
	fmt.Fprintf(&b, "oracle:%v,%d,%v,%.6f,%d,%v\n",
		o.Connected, o.AchievableTau, o.Covered, o.CoverageThreshold, o.HoleCount, o.HoleCountExact)
	fmt.Fprintf(&b, "outer:%v\n", sc.Dep.OuterCycle)
	fmt.Fprintf(&b, "edges:%d\n", sc.Dep.G.NumEdges())
	if o.Connected {
		tau, err := sc.Dep.AchievableTau(8)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "tau:%d\n", tau)
		res, err := sc.Dep.ScheduleDCC(tau, dcc.ScheduleOptions{Seed: 1})
		if err != nil {
			return "", err
		}
		kept := append([]dcc.NodeID(nil), res.KeptInternal...)
		sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
		fmt.Fprintf(&b, "kept:%v\n", kept)
	}
	rng := rand.New(rand.NewSource(seed))
	jittered := sc.Displace(sc.Displacements(rng), eps)
	for tau := 3; tau <= 6; tau++ {
		v, err := jittered.CriterionOK(tau)
		fmt.Fprintf(&b, "jitter tau=%d: %v err=%v\n", tau, v, err != nil)
	}
	return b.String(), nil
}

// FuzzScenarioDeterminism holds the scenario engine to full determinism:
// generating, scheduling, and jittering the same lattice twice from scratch
// must produce byte-identical results for arbitrary parameters. Any map
// iteration or pointer-order dependence sneaking into the pipeline shows up
// here as a flaky mismatch.
func FuzzScenarioDeterminism(f *testing.F) {
	f.Add(uint8(6), uint8(6), uint16(500), uint16(500), int64(1), uint16(100))
	f.Add(uint8(3), uint8(9), uint16(0), uint16(999), int64(42), uint16(499))
	f.Add(uint8(250), uint8(7), uint16(999), uint16(0), int64(-5), uint16(0))
	f.Fuzz(func(t *testing.T, rowsB, colsB uint8, rcQ, rsQ uint16, seed int64, epsQ uint16) {
		rows := 3 + int(rowsB)%6
		cols := 3 + int(colsB)%6
		s := 1.0
		rc := 1.0 + float64(rcQ%1000)/1000.0
		rs := 0.3 + float64(rsQ%1000)/1000.0*1.2
		eps := float64(epsQ%500) / 1000.0 * s

		a, err := fingerprint(rows, cols, s, rc, rs, seed, eps)
		if err != nil {
			t.Skip()
		}
		b, err := fingerprint(rows, cols, s, rc, rs, seed, eps)
		if err != nil {
			t.Fatalf("second generation failed where first succeeded: %v", err)
		}
		if a != b {
			t.Fatalf("scenario pipeline is nondeterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
		}
	})
}
