package scenario

import (
	"math"
	"testing"

	"dcc"
	"dcc/internal/core"
	"dcc/internal/geom"
	"dcc/internal/graph"
)

// relabel maps every node of a network through φ(v) = 7v + 3 — sparse, so
// hidden assumptions of contiguous IDs surface, and monotone, so the
// scheduler's sorted internal-node queue keeps its order and the whole
// deletion trace must map node-for-node through φ.
func relabel(net core.Network) (core.Network, func(graph.NodeID) graph.NodeID) {
	phi := func(v graph.NodeID) graph.NodeID { return 7*v + 3 }
	b := graph.NewBuilder()
	for _, v := range net.G.Nodes() {
		b.AddNode(phi(v))
	}
	for _, e := range net.G.Edges() {
		b.AddEdge(phi(e.U), phi(e.V))
	}
	boundary := make(map[graph.NodeID]bool, len(net.Boundary))
	for _, v := range net.G.Nodes() {
		if net.Boundary[v] {
			boundary[phi(v)] = true
		}
	}
	cyc := make([][]graph.NodeID, len(net.BoundaryCycles))
	for i, c := range net.BoundaryCycles {
		cyc[i] = make([]graph.NodeID, len(c))
		for j, v := range c {
			cyc[i][j] = phi(v)
		}
	}
	return core.Network{G: b.MustBuild(), Boundary: boundary, BoundaryCycles: cyc}, phi
}

// TestRelabelInvariance holds the graph pipeline to node-ID independence:
// under a monotone sparse relabeling, the achievable τ is unchanged and the
// scheduled set is exactly the φ-image of the original one.
func TestRelabelInvariance(t *testing.T) {
	for _, sc := range mustCatalogue(t) {
		sc := sc
		if !sc.Oracle.Connected {
			continue
		}
		t.Run(sc.Name, func(t *testing.T) {
			net := sc.Dep.Network()
			relab, phi := relabel(net)

			repairedA, _, err := core.RepairBoundaries(net)
			if err != nil {
				t.Fatal(err)
			}
			repairedB, _, err := core.RepairBoundaries(relab)
			if err != nil {
				t.Fatalf("relabeled: %v", err)
			}
			tauA, err := core.AchievableTau(repairedA, 8)
			if err != nil {
				t.Fatal(err)
			}
			tauB, err := core.AchievableTau(repairedB, 8)
			if err != nil {
				t.Fatalf("relabeled: %v", err)
			}
			if tauA != tauB {
				t.Fatalf("achievable τ changed under relabeling: %d vs %d", tauA, tauB)
			}

			resA, err := core.Schedule(repairedA, core.Options{Tau: tauA, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			resB, err := core.Schedule(repairedB, core.Options{Tau: tauA, Seed: 7})
			if err != nil {
				t.Fatalf("relabeled: %v", err)
			}
			if len(resA.KeptInternal) != len(resB.KeptInternal) {
				t.Fatalf("schedule size changed under relabeling: %d vs %d",
					len(resA.KeptInternal), len(resB.KeptInternal))
			}
			// Repair apexes get fresh IDs outside φ's range; compare only the
			// real nodes, which must correspond exactly.
			want := make(map[graph.NodeID]bool)
			for _, v := range resA.KeptInternal {
				if int(v) < len(sc.Dep.Points) {
					want[phi(v)] = true
				}
			}
			for _, v := range resB.KeptInternal {
				if int(v) < len(sc.Dep.Points)*7+3 && (v-3)%7 == 0 {
					if !want[v] {
						t.Fatalf("relabeled schedule kept %d, not the φ-image of the original set", v)
					}
					delete(want, v)
				}
			}
			if len(want) != 0 {
				t.Fatalf("%d original kept nodes missing from the relabeled schedule", len(want))
			}
		})
	}
}

// transform applies a point map to a scenario, scaling radii and obstacle
// sizes by k and mapping the target rectangle through the same motion, and
// returns the rebuilt scenario (same node order, fresh UDG).
func transform(sc *Scenario, f func(geom.Point) geom.Point, mapRect func(geom.Rect) geom.Rect, k float64) *Scenario {
	pts := make([]geom.Point, len(sc.Dep.Points))
	for i, p := range sc.Dep.Points {
		pts[i] = f(p)
	}
	obstacles := make([]geom.Circle, len(sc.Dep.Obstacles))
	for i, ob := range sc.Dep.Obstacles {
		obstacles[i] = geom.Circle{Center: f(ob.Center), R: k * ob.R}
	}
	var radii []float64
	if sc.Radii != nil {
		radii = make([]float64, len(sc.Radii))
		for i, r := range sc.Radii {
			radii[i] = k * r
		}
	}
	dep := &dcc.Deployment{
		Points:        pts,
		G:             geom.UDG(pts, k*sc.Dep.Rc),
		Target:        mapRect(sc.Dep.Target),
		Rc:            k * sc.Dep.Rc,
		Rs:            k * sc.Dep.Rs,
		BoundaryNodes: sc.Dep.BoundaryNodes,
		OuterCycle:    sc.Dep.OuterCycle,
		InnerCycles:   sc.Dep.InnerCycles,
		Obstacles:     obstacles,
	}
	out := *sc
	out.Dep = dep
	out.Spacing = k * sc.Spacing
	out.Radii = radii
	return &out
}

func sameGraph(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			return false
		}
	}
	return true
}

// TestRigidMotionInvariance holds the geometric pipeline to coordinate-frame
// independence: translating, rotating by 90°, or uniformly scaling a
// deployment (with radii scaled along) must leave the connectivity graph,
// the scheduled set, the coverage verdict, and the hole count unchanged.
// The motions are FP-benign (exact negation/swap/power-of-two scale; a
// translation offset with a short binary expansion), so any drift they
// surface is a genuine coordinate dependence, not rounding.
func TestRigidMotionInvariance(t *testing.T) {
	motions := []struct {
		name    string
		f       func(geom.Point) geom.Point
		mapRect func(geom.Rect) geom.Rect
		k       float64
	}{
		{
			"translate",
			func(p geom.Point) geom.Point { return geom.Point{X: p.X + 37.25, Y: p.Y - 18.5} },
			func(r geom.Rect) geom.Rect {
				return geom.Rect{MinX: r.MinX + 37.25, MinY: r.MinY - 18.5, MaxX: r.MaxX + 37.25, MaxY: r.MaxY - 18.5}
			},
			1,
		},
		{
			"rotate90",
			func(p geom.Point) geom.Point { return geom.Point{X: -p.Y, Y: p.X} },
			func(r geom.Rect) geom.Rect {
				return geom.Rect{MinX: -r.MaxY, MinY: r.MinX, MaxX: -r.MinY, MaxY: r.MaxX}
			},
			1,
		},
		{
			"scale2x",
			func(p geom.Point) geom.Point { return geom.Point{X: 2 * p.X, Y: 2 * p.Y} },
			func(r geom.Rect) geom.Rect {
				return geom.Rect{MinX: 2 * r.MinX, MinY: 2 * r.MinY, MaxX: 2 * r.MaxX, MaxY: 2 * r.MaxY}
			},
			2,
		},
	}
	for _, sc := range mustCatalogue(t) {
		sc := sc
		if !sc.Oracle.Connected {
			continue
		}
		repBase := sc.Coverage(nil)
		resBase, err := sc.Dep.ScheduleDCC(sc.Oracle.AchievableTau, dcc.ScheduleOptions{Seed: 11})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		for _, m := range motions {
			m := m
			t.Run(sc.Name+"/"+m.name, func(t *testing.T) {
				moved := transform(sc, m.f, m.mapRect, m.k)
				if !sameGraph(sc.Dep.G, moved.Dep.G) {
					t.Fatal("connectivity graph changed under a rigid motion")
				}
				rep := moved.Coverage(nil)
				if rep.FullyCovered() != repBase.FullyCovered() {
					t.Errorf("coverage verdict changed: %v vs %v", rep.FullyCovered(), repBase.FullyCovered())
				}
				if len(rep.Holes) != len(repBase.Holes) {
					t.Errorf("hole count changed: %d vs %d", len(rep.Holes), len(repBase.Holes))
				}
				if m.k != 1 {
					// Hole diameters must scale with the motion.
					if len(rep.Holes) > 0 && math.Abs(rep.MaxHoleDiameter()-m.k*repBase.MaxHoleDiameter()) > 1e-6*m.k {
						t.Errorf("max hole diameter %.6f does not scale to %.6f", rep.MaxHoleDiameter(), m.k*repBase.MaxHoleDiameter())
					}
				}
				res, err := moved.Dep.ScheduleDCC(sc.Oracle.AchievableTau, dcc.ScheduleOptions{Seed: 11})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.KeptInternal) != len(resBase.KeptInternal) {
					t.Fatalf("schedule size changed: %d vs %d", len(res.KeptInternal), len(resBase.KeptInternal))
				}
				kept := make(map[graph.NodeID]bool, len(resBase.KeptInternal))
				for _, v := range resBase.KeptInternal {
					kept[v] = true
				}
				for _, v := range res.KeptInternal {
					if !kept[v] {
						t.Fatalf("scheduled set changed under a rigid motion (node %d)", v)
					}
				}
			})
		}
	}
}
