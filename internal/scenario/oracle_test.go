package scenario

import (
	"math"
	"testing"

	"dcc"
	"dcc/internal/cover"
	"dcc/internal/geom"
)

func mustCatalogue(t *testing.T) []*Scenario {
	t.Helper()
	cat, err := Catalogue()
	if err != nil {
		t.Fatalf("catalogue: %v", err)
	}
	return cat
}

// holeNear reports whether some measured hole has a cell within tol of p
// (the oracle's representative point for that hole).
func holeNear(rep cover.Report, p geom.Point, tol float64) bool {
	for _, h := range rep.Holes {
		for _, c := range h.Cells {
			if math.Abs(c.X-p.X) <= tol && math.Abs(c.Y-p.Y) <= tol {
				return true
			}
		}
	}
	return false
}

// TestCatalogueOracles holds the DCC pipeline to every closed-form
// expectation the catalogue publishes: connectivity of the built graph,
// the smallest achievable confine size, the coverage verdict, exact hole
// counts where the family proves them, and the location of every expected
// hole.
func TestCatalogueOracles(t *testing.T) {
	for _, sc := range mustCatalogue(t) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			o := sc.Oracle
			if got := sc.Dep.G.IsConnected(); got != o.Connected {
				t.Errorf("IsConnected = %v, oracle says %v", got, o.Connected)
			}
			if o.Connected {
				tau, err := sc.Dep.AchievableTau(8)
				if err != nil {
					t.Fatalf("AchievableTau: %v", err)
				}
				if tau != o.AchievableTau {
					t.Errorf("AchievableTau = %d, oracle says %d", tau, o.AchievableTau)
				}
				// The verifier must reject the next-smaller confine size:
				// the oracle claims the minimum, not just achievability.
				if o.AchievableTau > 3 {
					ok, err := sc.Dep.VerifyConfine(sc.Dep.G, o.AchievableTau-1)
					if err != nil {
						t.Fatalf("VerifyConfine(τ-1): %v", err)
					}
					if ok {
						t.Errorf("VerifyConfine accepts τ = %d below the oracle minimum", o.AchievableTau-1)
					}
				}
			} else {
				if _, err := sc.Dep.AchievableTau(8); err == nil {
					t.Error("AchievableTau succeeded on a disconnected deployment")
				}
			}

			rep := sc.Coverage(nil)
			if got := rep.FullyCovered(); got != o.Covered {
				t.Errorf("FullyCovered = %v, oracle says %v (%d holes, max diameter %.3f)",
					got, o.Covered, len(rep.Holes), rep.MaxHoleDiameter())
			}
			if o.HoleCountExact && len(rep.Holes) != o.HoleCount {
				t.Errorf("measured %d holes, oracle says exactly %d", len(rep.Holes), o.HoleCount)
			}
			tol := 2 * rep.Resolution
			for _, c := range o.HoleCenters {
				if sc.PointCovered(c) {
					t.Errorf("oracle hole center %v is covered", c)
				}
				if !holeNear(rep, c, tol) {
					t.Errorf("no measured hole near oracle center %v", c)
				}
			}
		})
	}
}

// TestThresholdCrossing sweeps each family's critical knob across its
// closed-form coverage threshold and checks that the generator's verdict
// and the measured ground truth flip together — the boundary cases where
// an off-by-one in the closed form or a discretisation bug in the pipeline
// would show first.
func TestThresholdCrossing(t *testing.T) {
	cases := []struct {
		name  string
		knobs []float64
		build func(name string, knob float64) (*Scenario, error)
	}{
		{"square", []float64{0.66, 0.75}, func(n string, k float64) (*Scenario, error) {
			return SquareLattice(n, 6, 6, 1, 1.5, k) // threshold rs* = 1/√2 ≈ 0.707
		}},
		{"strip", []float64{0.66, 0.75}, func(n string, k float64) (*Scenario, error) {
			return SquareLattice(n, 4, 12, 1, 1.2, k)
		}},
		{"triangular", []float64{0.55, 0.62}, func(n string, k float64) (*Scenario, error) {
			return TriangularLattice(n, 6, 6, 1, 1.2, k) // rs* = 1/√3 ≈ 0.577
		}},
		{"honeycomb", []float64{0.93, 1.08}, func(n string, k float64) (*Scenario, error) {
			return Honeycomb(n, 4, 8, 1, 1.2, k) // rs* = 1
		}},
		{"annulus", []float64{1.35, 1.9}, func(n string, k float64) (*Scenario, error) {
			return Annulus(n, []float64{1.2, 4.5}, 12, 3.8, k, 3.0) // rs* ≈ 1.82 (band circumradius)
		}},
		{"masked", []float64{1.0, 1.15}, func(n string, k float64) (*Scenario, error) {
			return MaskedLattice(n, 7, 7, 1, 1.5, 0.9, k) // obstacleR* = 1.1
		}},
		{"hetero", []float64{0.68, 0.75}, func(n string, k float64) (*Scenario, error) {
			return HeteroCheckerboard(n, 6, 6, 1, 1.5, k, 0.6) // rBig* ≈ 0.716
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			verdicts := make(map[bool]bool)
			for _, knob := range tc.knobs {
				sc, err := tc.build(tc.name, knob)
				if err != nil {
					t.Fatalf("knob %g: %v", knob, err)
				}
				verdicts[sc.Oracle.Covered] = true
				if got := sc.Coverage(nil).FullyCovered(); got != sc.Oracle.Covered {
					t.Errorf("knob %g: measured covered = %v, oracle says %v", knob, got, sc.Oracle.Covered)
				}
			}
			if !verdicts[true] || !verdicts[false] {
				t.Error("knob grid does not cross the coverage threshold")
			}
		})
	}
}

// TestSchedulePreservesOracleCoverage is the paper's guarantee tested
// against independent geometric truth: on every covered scenario whose
// sensing ratio satisfies the blanket condition γ ≤ 2·sin(π/τ)
// (Proposition 1), scheduling at the achievable τ must keep the criterion
// true AND keep the measured region fully covered.
func TestSchedulePreservesOracleCoverage(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	ran := 0
	for _, sc := range mustCatalogue(t) {
		sc := sc
		o := sc.Oracle
		if !o.Connected || !o.Covered || sc.Radii != nil {
			continue
		}
		gamma := sc.Dep.Gamma()
		tau := o.AchievableTau
		if gamma > 2*math.Sin(math.Pi/float64(tau))+1e-9 {
			continue // no blanket guarantee at this γ; nothing to hold the scheduler to
		}
		ran++
		t.Run(sc.Name, func(t *testing.T) {
			for _, seed := range seeds {
				res, err := sc.Dep.ScheduleDCC(tau, dcc.ScheduleOptions{Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: ScheduleDCC: %v", seed, err)
				}
				ok, err := sc.Dep.VerifyConfine(res.Final, tau)
				if err != nil {
					t.Fatalf("seed %d: VerifyConfine: %v", seed, err)
				}
				if !ok {
					t.Fatalf("seed %d: scheduled set fails the τ=%d criterion", seed, tau)
				}
				rep := sc.Coverage(res.Final)
				if !rep.FullyCovered() {
					t.Errorf("seed %d: schedule opened %d coverage holes (max diameter %.3f) despite γ=%.3f ≤ 2sin(π/%d)",
						seed, len(rep.Holes), rep.MaxHoleDiameter(), gamma, tau)
				}
			}
		})
	}
	if ran < 6 {
		t.Errorf("only %d covered scenarios met the blanket condition; catalogue should provide more", ran)
	}
}

// TestOuterFaceTrace pins the generic perimeter trace on shapes whose
// boundary is known in closed form.
func TestOuterFaceTrace(t *testing.T) {
	t.Run("square", func(t *testing.T) {
		sc, err := SquareLattice("trace-square", 5, 7, 1, 1.2, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if want := 2*(5+7) - 4; len(sc.Dep.OuterCycle) != want {
			t.Errorf("perimeter length %d, want %d", len(sc.Dep.OuterCycle), want)
		}
	})
	t.Run("cycle-integrity", func(t *testing.T) {
		for _, sc := range mustCatalogue(t) {
			if !sc.Oracle.Connected {
				continue
			}
			cyc := sc.Dep.OuterCycle
			seen := make(map[dcc.NodeID]bool, len(cyc))
			for i, v := range cyc {
				if seen[v] {
					t.Errorf("%s: outer cycle repeats node %d", sc.Name, v)
				}
				seen[v] = true
				next := cyc[(i+1)%len(cyc)]
				if !sc.Dep.G.HasEdge(v, next) {
					t.Errorf("%s: outer cycle edge %d–%d missing from graph", sc.Name, v, next)
				}
			}
			// The trace must reach the extreme points of the hull.
			var lo, hi geom.Point
			lo.X, lo.Y = math.Inf(1), math.Inf(1)
			hi.X, hi.Y = math.Inf(-1), math.Inf(-1)
			for _, p := range sc.Dep.Points {
				lo.X, lo.Y = math.Min(lo.X, p.X), math.Min(lo.Y, p.Y)
				hi.X, hi.Y = math.Max(hi.X, p.X), math.Max(hi.Y, p.Y)
			}
			onCycle := func(p geom.Point) bool {
				for _, v := range cyc {
					if sc.Dep.Points[v] == p {
						return true
					}
				}
				return false
			}
			for _, p := range sc.Dep.Points {
				if p.X == lo.X || p.X == hi.X || p.Y == lo.Y || p.Y == hi.Y {
					if !onCycle(p) {
						t.Errorf("%s: extreme point %v not on the outer cycle", sc.Name, p)
					}
				}
			}
		}
	})
}
