package scenario

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dcc/internal/geom"
	"dcc/internal/graph"
)

// The family generators below refuse parameter regimes whose ground truth
// is ambiguous (spacings at a threshold, link radii that admit edges the
// closed form does not account for) instead of emitting a best-effort
// oracle: a scenario only enters the catalogue when its expectations are
// provable from the geometry.

// expand grows a core rectangle by rc on every side, so that
// Deployment.CoreArea (= Target.Shrink(Rc)) recovers exactly the region
// the oracle's closed form describes.
func expand(core geom.Rect, rc float64) geom.Rect {
	return geom.Rect{MinX: core.MinX - rc, MinY: core.MinY - rc, MaxX: core.MaxX + rc, MaxY: core.MaxY + rc}
}

// pointCoveredRaw reports whether p lies within rs of any point (uniform
// radius; O(n), generator-side use only).
func pointCoveredRaw(pts []geom.Point, rs float64, p geom.Point) bool {
	for _, q := range pts {
		if geom.Dist(p, q) <= rs {
			return true
		}
	}
	return false
}

// checkOracle validates a generated scenario's own claims that are cheap to
// verify directly from the geometry: every published hole center must lie
// in the monitored region (inside the core, outside every obstacle) and be
// provably uncovered; a covered oracle must publish no centers.
func checkOracle(sc *Scenario) (*Scenario, error) {
	core := sc.Dep.CoreArea()
	if sc.Oracle.Covered && len(sc.Oracle.HoleCenters) > 0 {
		return nil, fmt.Errorf("scenario %s: covered oracle publishes hole centers", sc.Name)
	}
	if !sc.Oracle.Covered && len(sc.Oracle.HoleCenters) == 0 {
		return nil, fmt.Errorf("scenario %s: uncovered oracle publishes no hole centers", sc.Name)
	}
	for _, c := range sc.Oracle.HoleCenters {
		if !core.Contains(c) {
			return nil, fmt.Errorf("scenario %s: hole center %v outside the core area", sc.Name, c)
		}
		if insideAny(c, sc.Dep.Obstacles) {
			return nil, fmt.Errorf("scenario %s: hole center %v inside an obstacle", sc.Name, c)
		}
		if sc.PointCovered(c) {
			return nil, fmt.Errorf("scenario %s: hole center %v is covered", sc.Name, c)
		}
	}
	return sc, nil
}

// SquareLattice builds a rows×cols square lattice with spacing s,
// communication radius rc and sensing radius rs. Ground truth (Tripathi et
// al. closed forms):
//
//	covered    ⇔ s ≤ √2·rs   (cell circumradius s/√2 within sensing range)
//	connected  ⇔ rc ≥ s
//	τ* = 3 when rc ≥ √2·s (diagonals triangulate every cell),
//	   = 4 when s ≤ rc < √2·s (the grid is bipartite: no 3-cycles exist,
//	        and the perimeter is the GF(2) sum of the unit 4-cells)
//
// In the uncovered regime with s < 2·rs the cell edges stay covered, so
// the uncovered blobs are confined one per cell: exactly
// (rows−1)(cols−1) holes at the cell centers.
func SquareLattice(name string, rows, cols int, s, rc, rs float64) (*Scenario, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("scenario %s: square lattice needs rows, cols ≥ 3", name)
	}
	if s <= 0 || rc <= 0 || rs <= 0 {
		return nil, fmt.Errorf("scenario %s: non-positive spacing or radius", name)
	}
	if rc >= 2*s {
		return nil, fmt.Errorf("scenario %s: rc ≥ 2s admits skip links the closed form does not cover", name)
	}
	pts := make([]geom.Point, 0, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			pts = append(pts, geom.Point{X: float64(j) * s, Y: float64(i) * s})
		}
	}
	core := geom.Rect{MaxX: float64(cols-1) * s, MaxY: float64(rows-1) * s}

	connected := rc >= s
	tau := 0
	if rc >= math.Sqrt2*s {
		tau = 3
	} else if connected {
		tau = 4
	}

	var outer []graph.NodeID
	if connected {
		var err error
		if outer, err = outerFaceCycle(pts, geom.UDG(pts, 1.01*s)); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", name, err)
		}
	} else {
		// No edges exist below the connectivity threshold; publish the
		// analytic perimeter so the deployment still names its intended
		// boundary (Validate is skipped for disconnected oracles).
		id := func(i, j int) graph.NodeID { return graph.NodeID(i*cols + j) }
		for j := 0; j < cols; j++ {
			outer = append(outer, id(0, j))
		}
		for i := 1; i < rows; i++ {
			outer = append(outer, id(i, cols-1))
		}
		for j := cols - 2; j >= 0; j-- {
			outer = append(outer, id(rows-1, j))
		}
		for i := rows - 2; i >= 1; i-- {
			outer = append(outer, id(i, 0))
		}
	}

	o := Oracle{
		Connected:         connected,
		AchievableTau:     tau,
		Covered:           s <= math.Sqrt2*rs,
		CoverageThreshold: math.Sqrt2 * rs,
	}
	if !o.Covered {
		for i := 0; i < rows-1; i++ {
			for j := 0; j < cols-1; j++ {
				o.HoleCenters = append(o.HoleCenters,
					geom.Point{X: (float64(j) + 0.5) * s, Y: (float64(i) + 0.5) * s})
			}
		}
		o.HoleCenters = sortedCenters(o.HoleCenters)
		if s < 2*rs {
			o.HoleCount = (rows - 1) * (cols - 1)
			o.HoleCountExact = true
		}
	}
	sc, err := assemble(name, pts, s, rc, rs, expand(core, rc), outer, nil, nil, nil, o)
	if err != nil {
		return nil, err
	}
	return checkOracle(sc)
}

// TriangularLattice builds a rows×cols triangular lattice (odd rows offset
// by s/2, row pitch (√3/2)·s). Ground truth:
//
//	covered    ⇔ s ≤ √3·rs   (equilateral cell circumradius s/√3)
//	connected, τ* = 3 for s ≤ rc < √3·s (the lattice is its own
//	triangulation; larger rc admits second-neighbor chords outside the
//	closed form and is refused)
//
// Uncovered blobs sit at the triangle circumcenters (= centroids); their
// connectivity across cell edges depends on rs, so the oracle publishes
// centers without an exact count.
func TriangularLattice(name string, rows, cols int, s, rc, rs float64) (*Scenario, error) {
	if rows < 3 || cols < 4 {
		return nil, fmt.Errorf("scenario %s: triangular lattice needs rows ≥ 3, cols ≥ 4", name)
	}
	if s <= 0 || rs <= 0 || rc < s || rc >= math.Sqrt(3)*s {
		return nil, fmt.Errorf("scenario %s: triangular lattice needs s ≤ rc < √3·s", name)
	}
	h := math.Sqrt(3) / 2 * s
	pts := make([]geom.Point, 0, rows*cols)
	for i := 0; i < rows; i++ {
		off := 0.0
		if i%2 == 1 {
			off = 0.5 * s
		}
		for j := 0; j < cols; j++ {
			pts = append(pts, geom.Point{X: float64(j)*s + off, Y: float64(i) * h})
		}
	}
	// The strip between consecutive rows is a parallelogram leaning left or
	// right by s/2; the x-range [s/2, (cols−1)·s] is inside every strip.
	core := geom.Rect{MinX: 0.5 * s, MaxX: float64(cols-1) * s, MaxY: float64(rows-1) * h}

	outer, err := outerFaceCycle(pts, geom.UDG(pts, 1.01*s))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	o := Oracle{
		Connected:         true,
		AchievableTau:     3,
		Covered:           s <= math.Sqrt(3)*rs,
		CoverageThreshold: math.Sqrt(3) * rs,
	}
	if !o.Covered {
		for i := 0; i < rows-1; i++ {
			base := float64(i) * h
			for j := 0; j < cols-1; j++ {
				x0 := float64(j) * s
				var c1, c2 geom.Point
				if i%2 == 0 {
					c1 = geom.Point{X: x0 + 0.5*s, Y: base + h/3}
					c2 = geom.Point{X: x0 + s, Y: base + 2*h/3}
				} else {
					c1 = geom.Point{X: x0 + 0.5*s, Y: base + 2*h/3}
					c2 = geom.Point{X: x0 + s, Y: base + h/3}
				}
				for _, c := range []geom.Point{c1, c2} {
					if core.Contains(c) {
						o.HoleCenters = append(o.HoleCenters, c)
					}
				}
			}
		}
		o.HoleCenters = sortedCenters(o.HoleCenters)
	}
	sc, err := assemble(name, pts, s, rc, rs, expand(core, rc), outer, nil, nil, nil, o)
	if err != nil {
		return nil, err
	}
	return checkOracle(sc)
}

// Honeycomb builds a rows×cols honeycomb (hexagonal) lattice with edge
// length s in brick coordinates: column pitch (√3/2)·s, row pitch 1.5·s,
// odd-parity nodes lifted by s/2. Ground truth:
//
//	covered    ⇔ s ≤ rs       (hexagon circumradius s, maximized at the
//	                           face centers)
//	connected  for rc ≥ s; τ* = 6 when s ≤ rc < √3·s (girth 6: no shorter
//	cycle exists, and the perimeter is the GF(2) sum of the hexagon faces),
//	τ* = 3 when √3·s ≤ rc < 2·s (second-neighbor chords split every
//	hexagon into four triangles)
func Honeycomb(name string, rows, cols int, s, rc, rs float64) (*Scenario, error) {
	if rows < 3 || cols < 6 {
		return nil, fmt.Errorf("scenario %s: honeycomb needs rows ≥ 3, cols ≥ 6", name)
	}
	if s <= 0 || rs <= 0 || rc < s || rc >= 2*s {
		return nil, fmt.Errorf("scenario %s: honeycomb needs s ≤ rc < 2·s", name)
	}
	hx := math.Sqrt(3) / 2 * s
	pts := make([]geom.Point, 0, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			y := 1.5 * s * float64(i)
			if (i+j)%2 == 1 {
				y += 0.5 * s
			}
			pts = append(pts, geom.Point{X: hx * float64(j), Y: y})
		}
	}
	// Grid corners whose vertical link is parity-forbidden are pendant
	// (degree 1) and belong to no hexagon face; prune them so the lattice is
	// 2-connected and its outer face is the hexagon-union boundary. Only
	// corners can be pendant, so the extreme rows and columns survive and the
	// formula bbox below stays exact.
	for {
		g := geom.UDG(pts, 1.01*s)
		kept := make([]geom.Point, 0, len(pts))
		for i, p := range pts {
			if len(g.Neighbors(graph.NodeID(i))) >= 2 {
				kept = append(kept, p)
			}
		}
		if len(kept) == len(pts) {
			break
		}
		pts = kept
	}
	bbox := geom.Rect{MaxX: hx * float64(cols-1), MaxY: 1.5*s*float64(rows-1) + 0.5*s}
	core := bbox.Shrink(s)
	if core.Width() <= 0 || core.Height() <= 0 {
		return nil, fmt.Errorf("scenario %s: honeycomb too small for a core area", name)
	}

	tau := 6
	if rc >= math.Sqrt(3)*s {
		tau = 3
	}
	outer, err := outerFaceCycle(pts, geom.UDG(pts, 1.01*s))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	o := Oracle{
		Connected:         true,
		AchievableTau:     tau,
		Covered:           s <= rs,
		CoverageThreshold: rs,
	}
	if !o.Covered {
		// One face per even-parity node that is a hexagon's bottom vertex:
		// the face center sits one edge length straight above it.
		for i := 0; i < rows-1; i++ {
			for j := 1; j < cols-1; j++ {
				if (i+j)%2 != 0 {
					continue
				}
				c := geom.Point{X: hx * float64(j), Y: 1.5*s*float64(i) + s}
				if core.Contains(c) {
					o.HoleCenters = append(o.HoleCenters, c)
				}
			}
		}
		o.HoleCenters = sortedCenters(o.HoleCenters)
	}
	sc, err := assemble(name, pts, s, rc, rs, expand(core, rc), outer, nil, nil, nil, o)
	if err != nil {
		return nil, err
	}
	return checkOracle(sc)
}

// Annulus builds concentric rings of n nodes each (shared angular grid) at
// the given ascending radii, with an obstacle filling the innermost ring's
// disk: the monitored region is the core square minus the obstacle, the
// innermost ring is the inner boundary cycle and the outermost ring the
// outer one. Each cell of the mesh is a cyclic isosceles trapezoid:
//
//	covered ⇔ every band's trapezoid circumradius ≤ rs
//	τ* = 3 when every cell diagonal ≤ rc (full triangulation),
//	   = 4 when no diagonal and no skip chord ≤ rc (girth-4 quad mesh)
//
// In the uncovered regime exactly one band must be bad; its holes merge
// into a single annular hole when the radial edge midpoints are uncovered,
// and stay n disjoint blobs otherwise — both counts are exact, with the n
// trapezoid circumcenters as representative centers either way.
func Annulus(name string, radii []float64, n int, rc, rs, coreHalf float64) (*Scenario, error) {
	if len(radii) < 2 || n < 8 {
		return nil, fmt.Errorf("scenario %s: annulus needs ≥ 2 rings and n ≥ 8", name)
	}
	if !sort.Float64sAreSorted(radii) || radii[0] <= 0 {
		return nil, fmt.Errorf("scenario %s: ring radii must be positive ascending", name)
	}
	if rc <= 0 || rs <= 0 || coreHalf <= 0 {
		return nil, fmt.Errorf("scenario %s: non-positive radius or core size", name)
	}
	rOut := radii[len(radii)-1]
	if coreHalf*math.Sqrt2 > rOut*math.Cos(math.Pi/float64(n)) {
		return nil, fmt.Errorf("scenario %s: core square reaches outside the outer chord polygon", name)
	}
	step := 2 * math.Pi / float64(n)
	at := func(r, theta float64) geom.Point {
		return geom.Point{X: r * math.Cos(theta), Y: r * math.Sin(theta)}
	}
	// Nodes sit at half-step offsets so the spoke directions avoid the core
	// square's axes and diagonals: the uncovered bulges of a bad band peak at
	// the cell mid-angles (now the axis-aligned and diagonal directions),
	// where the square boundary clips their thin tapering tips — keeping the
	// merged-hole geometry robust at sampling resolution.
	pts := make([]geom.Point, 0, len(radii)*n)
	for _, r := range radii {
		for m := 0; m < n; m++ {
			pts = append(pts, at(r, step*(float64(m)+0.5)))
		}
	}

	// Edge inventory against the closed form: ring chords and radial rungs
	// must exist; diagonals and skip chords decide τ.
	minDiag, maxDiag := math.Inf(1), 0.0
	for k := 0; k+1 < len(radii); k++ {
		if radii[k+1]-radii[k] > rc {
			return nil, fmt.Errorf("scenario %s: radial gap %g exceeds rc", name, radii[k+1]-radii[k])
		}
		d := geom.Dist(at(radii[k], 0), at(radii[k+1], step))
		minDiag = math.Min(minDiag, d)
		maxDiag = math.Max(maxDiag, d)
	}
	for _, r := range radii {
		if chord := 2 * r * math.Sin(math.Pi/float64(n)); chord > rc {
			return nil, fmt.Errorf("scenario %s: ring chord %g exceeds rc", name, chord)
		}
	}
	tau := 0
	switch {
	case maxDiag <= rc:
		tau = 3
	case minDiag > rc:
		tau = 4
		for _, r := range radii {
			if skip := 2 * r * math.Sin(2*math.Pi/float64(n)); skip <= rc {
				return nil, fmt.Errorf("scenario %s: skip chord %g ≤ rc creates triangles in the τ=4 regime", name, skip)
			}
		}
	default:
		return nil, fmt.Errorf("scenario %s: mixed diagonal regime (min %g, max %g vs rc %g)", name, minDiag, maxDiag, rc)
	}

	// Per-band circumradius of the trapezoid cell (any 3 corners determine
	// the circle of the cyclic quad).
	bad := -1
	for k := 0; k+1 < len(radii); k++ {
		cr := circumradius(at(radii[k], 0), at(radii[k], step), at(radii[k+1], 0))
		if cr > rs {
			if bad >= 0 {
				return nil, fmt.Errorf("scenario %s: more than one uncovered band", name)
			}
			bad = k
		}
	}
	o := Oracle{
		Connected:     true,
		AchievableTau: tau,
		Covered:       bad < 0,
		// Critical sensing radius: the largest band circumradius.
		CoverageThreshold: func() float64 {
			worst := 0.0
			for k := 0; k+1 < len(radii); k++ {
				worst = math.Max(worst, circumradius(at(radii[k], 0), at(radii[k], step), at(radii[k+1], 0)))
			}
			return worst
		}(),
	}
	if bad >= 0 {
		cc := circumcenter(at(radii[bad], 0), at(radii[bad], step), at(radii[bad+1], 0))
		ccR := math.Hypot(cc.X, cc.Y)
		for m := 0; m < n; m++ {
			// Cell mid-angles in the half-step-offset frame.
			o.HoleCenters = append(o.HoleCenters, at(ccR, step*float64(m)))
		}
		o.HoleCenters = sortedCenters(o.HoleCenters)
		o.HoleCountExact = true
		// Midpoint of a radial edge (a node angle): covered ⇒ the blobs stay
		// confined to their trapezoids, uncovered ⇒ they merge into a ring.
		mid := at((radii[bad]+radii[bad+1])/2, step*0.5)
		if pointCoveredRaw(pts, rs, mid) {
			o.HoleCount = n // blobs stay confined to their trapezoids
		} else {
			o.HoleCount = 1 // blobs merge through the radial edges into one ring
		}
	}

	outer := make([]graph.NodeID, n)
	inner := make([]graph.NodeID, n)
	for m := 0; m < n; m++ {
		inner[m] = graph.NodeID(m)
		outer[m] = graph.NodeID((len(radii)-1)*n + m)
	}
	core := geom.Rect{MinX: -coreHalf, MinY: -coreHalf, MaxX: coreHalf, MaxY: coreHalf}
	obstacles := []geom.Circle{{Center: geom.Point{}, R: radii[0]}}
	sc, err := assemble(name, pts, radii[1]-radii[0], rc, rs, expand(core, rc),
		outer, [][]graph.NodeID{inner}, obstacles, nil, o)
	if err != nil {
		return nil, err
	}
	return checkOracle(sc)
}

// MaskedLattice builds a square lattice in the τ=3 (diagonal) regime with a
// plus-shaped crater — the center node and its four axis neighbors removed —
// masked by a circular obstacle of radius obstacleR at the crater center.
// The eight surviving nodes around the crater form the inner boundary
// cycle (consecutive distance √2·s). Ground truth: the crater leaves an
// uncovered plus-shaped region reaching 2s−rs along the axes, so
//
//	covered ⇔ obstacleR ≥ 2s − rs   (the obstacle exempts the whole blob)
//
// and in the uncovered regime the blob is a single hole (its lobes connect
// through the obstacle interior), represented by the four axis midpoints
// between the obstacle edge and the blob tip.
func MaskedLattice(name string, rows, cols int, s, rc, rs, obstacleR float64) (*Scenario, error) {
	if rows < 7 || cols < 7 || rows%2 == 0 || cols%2 == 0 {
		return nil, fmt.Errorf("scenario %s: masked lattice needs odd rows, cols ≥ 7", name)
	}
	if s <= 0 || rc < math.Sqrt2*s || rc >= 2*s {
		return nil, fmt.Errorf("scenario %s: masked lattice needs √2·s ≤ rc < 2·s", name)
	}
	if rs <= s/2 || rs >= s || s > math.Sqrt2*rs {
		// rs ∈ (s/2, s): the base lattice is covered and edge strips stay
		// covered, so the only uncovered region is the crater blob.
		return nil, fmt.Errorf("scenario %s: masked lattice needs rs ∈ (s/2, s) with s ≤ √2·rs", name)
	}
	if obstacleR >= math.Sqrt2*s {
		return nil, fmt.Errorf("scenario %s: obstacle reaches the inner boundary ring", name)
	}
	ci, cj := rows/2, cols/2
	removed := func(i, j int) bool {
		di, dj := i-ci, j-cj
		return di*di+dj*dj <= 1
	}
	ids := make(map[[2]int]graph.NodeID)
	var pts []geom.Point
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if removed(i, j) {
				continue
			}
			ids[[2]int{i, j}] = graph.NodeID(len(pts))
			pts = append(pts, geom.Point{X: float64(j) * s, Y: float64(i) * s})
		}
	}
	center := geom.Point{X: float64(cj) * s, Y: float64(ci) * s}
	core := geom.Rect{MaxX: float64(cols-1) * s, MaxY: float64(rows-1) * s}

	outer, err := outerFaceCycle(pts, geom.UDG(pts, 1.01*s))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	ringOffsets := [8][2]int{{2, 0}, {1, 1}, {0, 2}, {-1, 1}, {-2, 0}, {-1, -1}, {0, -2}, {1, -1}}
	inner := make([]graph.NodeID, 0, 8)
	for _, d := range ringOffsets {
		id, ok := ids[[2]int{ci + d[0], cj + d[1]}]
		if !ok {
			return nil, fmt.Errorf("scenario %s: inner ring node missing", name)
		}
		inner = append(inner, id)
	}

	blobTip := 2*s - rs // farthest uncovered axis point from the crater center
	o := Oracle{
		Connected:         true,
		AchievableTau:     3,
		Covered:           obstacleR >= blobTip,
		CoverageThreshold: blobTip, // critical obstacle radius
	}
	if !o.Covered {
		mid := (obstacleR + blobTip) / 2
		o.HoleCenters = sortedCenters([]geom.Point{
			{X: center.X + mid, Y: center.Y},
			{X: center.X - mid, Y: center.Y},
			{X: center.X, Y: center.Y + mid},
			{X: center.X, Y: center.Y - mid},
		})
		o.HoleCount = 1
		o.HoleCountExact = true
	}
	obstacles := []geom.Circle{{Center: center, R: obstacleR}}
	sc, err := assemble(name, pts, s, rc, rs, expand(core, rc),
		outer, [][]graph.NodeID{inner}, obstacles, nil, o)
	if err != nil {
		return nil, err
	}
	return checkOracle(sc)
}

// HeteroCheckerboard builds a square lattice with two sensing classes in a
// checkerboard: even-parity nodes sense to rBig, odd-parity nodes to
// rSmall. The worst-case point lies on the diagonal between two adjacent
// small nodes, at the edge of a small disk; its distance to the nearest
// big node gives the closed form
//
//	covered ⇔ rBig ≥ √(s² + rSmall² − √2·s·rSmall)
//
// which degenerates to the uniform square-lattice threshold s ≤ √2·r at
// rSmall = rBig = r. Communication is uniform (rc), so connectivity and τ*
// follow the square-lattice rules. Uncovered blobs straddle the cell
// centers (each center is √2/2·s from all four corners); their exact count
// is parameter-dependent, so the oracle publishes centers only.
func HeteroCheckerboard(name string, rows, cols int, s, rc, rBig, rSmall float64) (*Scenario, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("scenario %s: checkerboard needs rows, cols ≥ 3", name)
	}
	if s <= 0 || rc < s || rc >= 2*s {
		return nil, fmt.Errorf("scenario %s: checkerboard needs s ≤ rc < 2·s", name)
	}
	if rSmall < s/2 || rSmall >= s/math.Sqrt2 {
		// rSmall ≥ s/2 keeps the lattice edges covered; rSmall < s/√2
		// keeps the small–small diagonal the binding constraint.
		return nil, fmt.Errorf("scenario %s: checkerboard needs rSmall ∈ [s/2, s/√2)", name)
	}
	crit := math.Sqrt(s*s + rSmall*rSmall - math.Sqrt2*s*rSmall)
	covered := rBig >= crit
	if !covered && rBig >= s/math.Sqrt2 {
		// Uncovered, but the blob hides near the critical point rather
		// than the cell center: no provable representative point.
		return nil, fmt.Errorf("scenario %s: rBig between √2/2·s and the threshold leaves no provable hole center", name)
	}
	pts := make([]geom.Point, 0, rows*cols)
	radii := make([]float64, 0, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			pts = append(pts, geom.Point{X: float64(j) * s, Y: float64(i) * s})
			if (i+j)%2 == 0 {
				radii = append(radii, rBig)
			} else {
				radii = append(radii, rSmall)
			}
		}
	}
	core := geom.Rect{MaxX: float64(cols-1) * s, MaxY: float64(rows-1) * s}
	tau := 4
	if rc >= math.Sqrt2*s {
		tau = 3
	}
	outer, err := outerFaceCycle(pts, geom.UDG(pts, 1.01*s))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	o := Oracle{
		Connected:         true,
		AchievableTau:     tau,
		Covered:           covered,
		CoverageThreshold: crit, // critical rBig
	}
	if !covered {
		for i := 0; i < rows-1; i++ {
			for j := 0; j < cols-1; j++ {
				o.HoleCenters = append(o.HoleCenters,
					geom.Point{X: (float64(j) + 0.5) * s, Y: (float64(i) + 0.5) * s})
			}
		}
		o.HoleCenters = sortedCenters(o.HoleCenters)
	}
	sc, err := assemble(name, pts, s, rc, rSmall, expand(core, rc), outer, nil, nil, radii, o)
	if err != nil {
		return nil, err
	}
	return checkOracle(sc)
}

// Catalogue returns the full deterministic scenario set: every family at
// every τ regime it supports, each with at least one threshold-crossing
// negative case. The catalogue is pure geometry — building it runs no part
// of the DCC pipeline — so tests can hold the pipeline to it as an
// independent ground truth.
func Catalogue() ([]*Scenario, error) {
	type gen struct {
		name  string
		build func(name string) (*Scenario, error)
	}
	gens := []gen{
		{"square/tau3/covered", func(n string) (*Scenario, error) { return SquareLattice(n, 6, 6, 1, 1.5, 0.9) }},
		{"square/tau3/uncovered", func(n string) (*Scenario, error) { return SquareLattice(n, 6, 6, 1, 1.5, 0.65) }},
		{"square/tau4/covered", func(n string) (*Scenario, error) { return SquareLattice(n, 6, 6, 1, 1.2, 0.85) }},
		{"square/tau4/uncovered", func(n string) (*Scenario, error) { return SquareLattice(n, 6, 6, 1, 1.2, 0.65) }},
		{"square/disconnected", func(n string) (*Scenario, error) { return SquareLattice(n, 6, 6, 1, 0.9, 0.9) }},
		{"triangular/tau3/covered", func(n string) (*Scenario, error) { return TriangularLattice(n, 6, 6, 1, 1.2, 0.7) }},
		{"triangular/tau3/uncovered", func(n string) (*Scenario, error) { return TriangularLattice(n, 6, 6, 1, 1.2, 0.5) }},
		{"honeycomb/tau6/covered", func(n string) (*Scenario, error) { return Honeycomb(n, 4, 8, 1, 1.2, 1.25) }},
		{"honeycomb/tau6/uncovered", func(n string) (*Scenario, error) { return Honeycomb(n, 4, 8, 1, 1.2, 0.85) }},
		{"honeycomb/tau3/covered", func(n string) (*Scenario, error) { return Honeycomb(n, 4, 8, 1, 1.8, 1.05) }},
		{"strip/tau4/covered", func(n string) (*Scenario, error) { return SquareLattice(n, 4, 12, 1, 1.2, 0.85) }},
		{"strip/tau4/uncovered", func(n string) (*Scenario, error) { return SquareLattice(n, 4, 12, 1, 1.2, 0.65) }},
		{"annulus/tau3/covered", func(n string) (*Scenario, error) {
			return Annulus(n, []float64{2.0, 2.9, 3.8}, 16, 1.7, 1.0, 2.5)
		}},
		{"annulus/tau4/covered", func(n string) (*Scenario, error) {
			return Annulus(n, []float64{3.0, 4.0}, 24, 1.2, 0.9, 2.8)
		}},
		{"annulus/tau3/uncovered", func(n string) (*Scenario, error) {
			// rs = 1.35 keeps the merged annular hole ≥ 3 sampling cells wide
			// at its narrowest (node angles: covered to 2.55 from inside,
			// from 3.15 outside), so the single-hole count is robust.
			return Annulus(n, []float64{1.2, 4.5}, 12, 3.8, 1.35, 3.0)
		}},
		{"masked/tau3/covered", func(n string) (*Scenario, error) { return MaskedLattice(n, 7, 7, 1, 1.5, 0.9, 1.2) }},
		{"masked/tau3/uncovered", func(n string) (*Scenario, error) { return MaskedLattice(n, 7, 7, 1, 1.5, 0.9, 0.9) }},
		{"hetero/tau3/covered", func(n string) (*Scenario, error) { return HeteroCheckerboard(n, 6, 6, 1, 1.5, 0.8, 0.6) }},
		{"hetero/tau3/uncovered", func(n string) (*Scenario, error) { return HeteroCheckerboard(n, 6, 6, 1, 1.5, 0.63, 0.6) }},
		{"hetero/tau4/covered", func(n string) (*Scenario, error) { return HeteroCheckerboard(n, 6, 6, 1, 1.2, 0.8, 0.6) }},
	}
	out := make([]*Scenario, 0, len(gens))
	seen := make(map[string]bool, len(gens))
	for _, g := range gens {
		if seen[g.name] {
			return nil, fmt.Errorf("scenario: duplicate catalogue name %s", g.name)
		}
		seen[g.name] = true
		sc, err := g.build(g.name)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, errors.New("scenario: empty catalogue")
	}
	return out, nil
}
