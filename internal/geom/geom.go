// Package geom provides the planar-geometry substrate for network
// simulation: points, rectangles, deployment generators, communication
// link models (UDG, quasi-UDG) and minimum enclosing circles.
//
// Geometry exists only on the simulation side of the reproduction: the
// coverage algorithms themselves never see coordinates (the paper's whole
// point), but generating networks, validating Proposition 1 and rendering
// figures all require an embedding.
package geom

import (
	"fmt"
	"math"
	"math/rand"

	"dcc/internal/graph"
)

// Point is a point in the Euclidean plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b Point) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// Rect is an axis-aligned rectangle.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Square returns the square [0,side]².
func Square(side float64) Rect {
	return Rect{MaxX: side, MaxY: side}
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies in the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Shrink returns the rectangle shrunk inward by d on every side.
func (r Rect) Shrink(d float64) Rect {
	return Rect{MinX: r.MinX + d, MinY: r.MinY + d, MaxX: r.MaxX - d, MaxY: r.MaxY - d}
}

// BorderDist returns the distance from p to the rectangle border (0 outside
// or on the border).
func (r Rect) BorderDist(p Point) float64 {
	if !r.Contains(p) {
		return 0
	}
	d := math.Min(p.X-r.MinX, r.MaxX-p.X)
	d = math.Min(d, p.Y-r.MinY)
	return math.Min(d, r.MaxY-p.Y)
}

// UniformPoints places n points uniformly at random in rect.
func UniformPoints(rng *rand.Rand, n int, rect Rect) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X: rect.MinX + rng.Float64()*rect.Width(),
			Y: rect.MinY + rng.Float64()*rect.Height(),
		}
	}
	return pts
}

// PerturbedGrid places points on a rows×cols grid covering rect, each
// perturbed uniformly by ±jitter in both axes (clamped to rect).
func PerturbedGrid(rng *rand.Rand, rows, cols int, rect Rect, jitter float64) []Point {
	pts := make([]Point, 0, rows*cols)
	dx := rect.Width() / float64(cols)
	dy := rect.Height() / float64(rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			p := Point{
				X: rect.MinX + (float64(c)+0.5)*dx + (rng.Float64()*2-1)*jitter,
				Y: rect.MinY + (float64(r)+0.5)*dy + (rng.Float64()*2-1)*jitter,
			}
			p.X = math.Min(math.Max(p.X, rect.MinX), rect.MaxX)
			p.Y = math.Min(math.Max(p.Y, rect.MinY), rect.MaxY)
			pts = append(pts, p)
		}
	}
	return pts
}

// RingPoints places points evenly along the border of rect, spaced at most
// maxSpacing apart, in counter-clockwise order starting at (MinX, MinY).
func RingPoints(rect Rect, maxSpacing float64) []Point {
	if maxSpacing <= 0 {
		panic(fmt.Sprintf("geom: non-positive ring spacing %v", maxSpacing))
	}
	var pts []Point
	side := func(a, b Point) {
		d := Dist(a, b)
		steps := int(math.Ceil(d / maxSpacing))
		for i := 0; i < steps; i++ {
			t := float64(i) / float64(steps)
			pts = append(pts, Point{X: a.X + t*(b.X-a.X), Y: a.Y + t*(b.Y-a.Y)})
		}
	}
	c1 := Point{X: rect.MinX, Y: rect.MinY}
	c2 := Point{X: rect.MaxX, Y: rect.MinY}
	c3 := Point{X: rect.MaxX, Y: rect.MaxY}
	c4 := Point{X: rect.MinX, Y: rect.MaxY}
	side(c1, c2)
	side(c2, c3)
	side(c3, c4)
	side(c4, c1)
	return pts
}

// CirclePoints places n points evenly on the circle of the given center and
// radius, counter-clockwise.
func CirclePoints(center Point, radius float64, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = Point{X: center.X + radius*math.Cos(a), Y: center.Y + radius*math.Sin(a)}
	}
	return pts
}

// RcForAvgDegree returns the UDG communication radius that yields the given
// expected average node degree for n nodes deployed uniformly in an area:
// deg ≈ n·π·Rc²/area.
func RcForAvgDegree(n int, area, avgDegree float64) float64 {
	return math.Sqrt(avgDegree * area / (math.Pi * float64(n)))
}

// cellIndex keys the uniform spatial hash used by the link-model builders.
type cellIndex struct{ cx, cy int }

// buildIndex hashes points into cells of the given size.
func buildIndex(pts []Point, cell float64) map[cellIndex][]int {
	idx := make(map[cellIndex][]int, len(pts))
	for i, p := range pts {
		c := cellIndex{cx: int(math.Floor(p.X / cell)), cy: int(math.Floor(p.Y / cell))}
		idx[c] = append(idx[c], i)
	}
	return idx
}

// PairsWithin calls fn for every unordered pair (i<j) of points at
// distance ≤ maxDist, using a spatial hash for near-linear performance.
// i ascends across calls; the j order within one i is unspecified (sort
// or dedup downstream when order matters). Exported for the shard engine,
// which
// derives each region's links locally from positions instead of inducing
// them from a global graph.
func PairsWithin(pts []Point, maxDist float64, fn func(i, j int, d float64)) {
	pairsWithin(pts, maxDist, fn)
}

// pairsWithin calls fn for every unordered pair (i<j) of points at distance
// ≤ maxDist, using a spatial hash for near-linear performance.
func pairsWithin(pts []Point, maxDist float64, fn func(i, j int, d float64)) {
	idx := buildIndex(pts, maxDist)
	for i, p := range pts {
		ci := int(math.Floor(p.X / maxDist))
		cj := int(math.Floor(p.Y / maxDist))
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range idx[cellIndex{cx: ci + dx, cy: cj + dy}] {
					if j <= i {
						continue
					}
					if d := Dist(p, pts[j]); d <= maxDist {
						fn(i, j, d)
					}
				}
			}
		}
	}
}

// UDG builds the unit-disk graph: node i ↔ node j iff dist ≤ rc. Node IDs
// are the point indices.
func UDG(pts []Point, rc float64) *graph.Graph {
	b := graph.NewBuilder()
	for i := range pts {
		b.AddNode(graph.NodeID(i))
	}
	pairsWithin(pts, rc, func(i, j int, _ float64) {
		b.AddEdge(graph.NodeID(i), graph.NodeID(j))
	})
	return b.MustBuild()
}

// QuasiUDG builds a quasi unit-disk graph (Kuhn et al.): pairs within rIn
// are always connected; pairs in (rIn, rOut] are connected independently
// with probability p; pairs beyond rOut never. rOut is the maximum
// communication range Rc of the confine-coverage model.
func QuasiUDG(rng *rand.Rand, pts []Point, rIn, rOut, p float64) *graph.Graph {
	b := graph.NewBuilder()
	for i := range pts {
		b.AddNode(graph.NodeID(i))
	}
	pairsWithin(pts, rOut, func(i, j int, d float64) {
		if d <= rIn || rng.Float64() < p {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	})
	return b.MustBuild()
}

// Circle is a circle in the plane.
type Circle struct {
	Center Point
	R      float64
}

// contains reports whether p is inside the circle with a small tolerance.
func (c Circle) contains(p Point) bool {
	return Dist(c.Center, p) <= c.R*(1+1e-10)+1e-12
}

// MinEnclosingCircle returns the smallest circle containing all points
// (Welzl's algorithm, iterative move-to-front variant). The empty set
// yields a zero circle.
func MinEnclosingCircle(pts []Point) Circle {
	switch len(pts) {
	case 0:
		return Circle{}
	case 1:
		return Circle{Center: pts[0]}
	}
	// Work on a copy in a deterministic shuffled order: Welzl's expected
	// linear time needs a random-ish order, and determinism keeps results
	// reproducible.
	ps := append([]Point(nil), pts...)
	//lint:ignore seedflow fixed shuffle order is part of the algorithm, not an experiment: the circle is order-independent, only the expected running time needs a scrambled input, and a constant keeps it Config-independent
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })

	c := circleFrom2(ps[0], ps[1])
	for i := 2; i < len(ps); i++ {
		if c.contains(ps[i]) {
			continue
		}
		c = circleFrom2(ps[i], ps[0])
		for j := 1; j < i; j++ {
			if c.contains(ps[j]) {
				continue
			}
			c = circleFrom2(ps[i], ps[j])
			for k := 0; k < j; k++ {
				if !c.contains(ps[k]) {
					c = circleFrom3(ps[i], ps[j], ps[k])
				}
			}
		}
	}
	return c
}

func circleFrom2(a, b Point) Circle {
	center := Point{X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2}
	return Circle{Center: center, R: Dist(a, b) / 2}
}

func circleFrom3(a, b, c Point) Circle {
	ax, ay := b.X-a.X, b.Y-a.Y
	bx, by := c.X-a.X, c.Y-a.Y
	d := 2 * (ax*by - ay*bx)
	if math.Abs(d) < 1e-14 {
		// Degenerate (collinear): fall back to the widest 2-point circle.
		c1, c2, c3 := circleFrom2(a, b), circleFrom2(b, c), circleFrom2(a, c)
		best := c1
		if c2.R > best.R {
			best = c2
		}
		if c3.R > best.R {
			best = c3
		}
		return best
	}
	ux := (by*(ax*ax+ay*ay) - ay*(bx*bx+by*by)) / d
	uy := (ax*(bx*bx+by*by) - bx*(ax*ax+ay*ay)) / d
	center := Point{X: a.X + ux, Y: a.Y + uy}
	return Circle{Center: center, R: Dist(center, a)}
}
