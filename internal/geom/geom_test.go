package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dcc/internal/graph"
)

func TestDist(t *testing.T) {
	if d := Dist(Point{0, 0}, Point{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d := Dist(Point{1, 1}, Point{1, 1}); d != 0 {
		t.Fatalf("Dist of identical points = %v", d)
	}
}

func TestRect(t *testing.T) {
	r := Square(10)
	if r.Width() != 10 || r.Height() != 10 || r.Area() != 100 {
		t.Fatal("Square(10) malformed")
	}
	if !r.Contains(Point{5, 5}) || r.Contains(Point{11, 5}) {
		t.Fatal("Contains wrong")
	}
	s := r.Shrink(2)
	if s.MinX != 2 || s.MaxX != 8 {
		t.Fatalf("Shrink wrong: %+v", s)
	}
	if d := r.BorderDist(Point{3, 5}); math.Abs(d-3) > 1e-12 {
		t.Fatalf("BorderDist = %v, want 3", d)
	}
	if d := r.BorderDist(Point{-1, 5}); d != 0 {
		t.Fatalf("BorderDist outside = %v, want 0", d)
	}
}

func TestUniformPointsInRect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rect := Rect{MinX: -5, MinY: 3, MaxX: 5, MaxY: 13}
	pts := UniformPoints(rng, 500, rect)
	if len(pts) != 500 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !rect.Contains(p) {
			t.Fatalf("point %v outside rect", p)
		}
	}
}

func TestPerturbedGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rect := Square(10)
	pts := PerturbedGrid(rng, 4, 5, rect, 0.3)
	if len(pts) != 20 {
		t.Fatalf("got %d points, want 20", len(pts))
	}
	for _, p := range pts {
		if !rect.Contains(p) {
			t.Fatalf("point %v escaped rect", p)
		}
	}
}

func TestRingPoints(t *testing.T) {
	rect := Square(10)
	pts := RingPoints(rect, 1.0)
	if len(pts) < 40 {
		t.Fatalf("ring too sparse: %d points", len(pts))
	}
	// Consecutive spacing (including wraparound) must respect the bound.
	for i := range pts {
		d := Dist(pts[i], pts[(i+1)%len(pts)])
		if d > 1.0+1e-9 {
			t.Fatalf("ring spacing %v exceeds bound at %d", d, i)
		}
	}
	// All points on the border.
	for _, p := range pts {
		if rect.BorderDist(p) > 1e-9 {
			t.Fatalf("ring point %v not on border", p)
		}
	}
}

func TestCirclePoints(t *testing.T) {
	pts := CirclePoints(Point{5, 5}, 2, 8)
	if len(pts) != 8 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if math.Abs(Dist(p, Point{5, 5})-2) > 1e-9 {
			t.Fatalf("point %v not on circle", p)
		}
	}
}

func TestRcForAvgDegree(t *testing.T) {
	// Empirical check: degree within 15% of requested for a large network.
	rng := rand.New(rand.NewSource(3))
	n := 2000
	rect := Square(100)
	rc := RcForAvgDegree(n, rect.Area(), 20)
	pts := UniformPoints(rng, n, rect)
	g := UDG(pts, rc)
	avg := 2 * float64(g.NumEdges()) / float64(n)
	if avg < 15 || avg > 25 {
		t.Fatalf("average degree %v, want ≈20", avg)
	}
}

func TestUDG(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {3, 0}, {3.5, 0}}
	g := UDG(pts, 1.0)
	if !g.HasEdge(0, 1) {
		t.Fatal("edge {0,1} missing at distance 1.0")
	}
	if g.HasEdge(1, 2) {
		t.Fatal("edge {1,2} present at distance 2.0")
	}
	if !g.HasEdge(2, 3) {
		t.Fatal("edge {2,3} missing at distance 0.5")
	}
	if g.NumNodes() != 4 {
		t.Fatal("isolated nodes lost")
	}
}

func TestUDGMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := UniformPoints(rng, 60, Square(5))
		rc := 0.5 + rng.Float64()
		g := UDG(pts, rc)
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				want := Dist(pts[i], pts[j]) <= rc
				if g.HasEdge(graph.NodeID(i), graph.NodeID(j)) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuasiUDG(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := UniformPoints(rng, 300, Square(10))
	rIn, rOut := 0.8, 1.6
	g := QuasiUDG(rng, pts, rIn, rOut, 0.5)
	short, long, beyond := 0, 0, 0
	shortConn, longConn := 0, 0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			d := Dist(pts[i], pts[j])
			has := g.HasEdge(graph.NodeID(i), graph.NodeID(j))
			switch {
			case d <= rIn:
				short++
				if has {
					shortConn++
				}
			case d <= rOut:
				long++
				if has {
					longConn++
				}
			default:
				if has {
					beyond++
				}
			}
		}
	}
	if shortConn != short {
		t.Fatalf("inner-radius pairs connected %d/%d, want all", shortConn, short)
	}
	if beyond != 0 {
		t.Fatalf("%d edges beyond rOut", beyond)
	}
	frac := float64(longConn) / float64(long)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("grey-zone connection fraction %v, want ≈0.5", frac)
	}
}

func TestMinEnclosingCircleKnown(t *testing.T) {
	tests := []struct {
		name   string
		pts    []Point
		radius float64
	}{
		{"empty", nil, 0},
		{"single", []Point{{3, 4}}, 0},
		{"pair", []Point{{0, 0}, {2, 0}}, 1},
		{"equilateral-ish square", []Point{{0, 0}, {2, 0}, {0, 2}, {2, 2}}, math.Sqrt2},
		{"collinear", []Point{{0, 0}, {1, 0}, {4, 0}}, 2},
		{"obtuse triangle", []Point{{0, 0}, {4, 0}, {1, 0.5}}, math.Sqrt(4*4+0) / 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := MinEnclosingCircle(tt.pts)
			if math.Abs(c.R-tt.radius) > 1e-9 {
				t.Fatalf("R = %v, want %v", c.R, tt.radius)
			}
			for _, p := range tt.pts {
				if Dist(c.Center, p) > c.R+1e-9 {
					t.Fatalf("point %v outside circle", p)
				}
			}
		})
	}
}

func TestMinEnclosingCircleProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := UniformPoints(rng, 2+rng.Intn(50), Square(10))
		c := MinEnclosingCircle(pts)
		// Encloses all points.
		for _, p := range pts {
			if Dist(c.Center, p) > c.R+1e-7 {
				return false
			}
		}
		// Not larger than the circumscribed circle of the bounding box,
		// and at least half the maximum pairwise distance.
		maxPair := 0.0
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				if d := Dist(pts[i], pts[j]); d > maxPair {
					maxPair = d
				}
			}
		}
		return c.R >= maxPair/2-1e-7 && c.R <= maxPair/math.Sqrt(3)+1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUDG1600(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pts := UniformPoints(rng, 1600, Square(40))
	rc := RcForAvgDegree(1600, 1600, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UDG(pts, rc)
	}
}

func BenchmarkMinEnclosingCircle(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	pts := UniformPoints(rng, 1000, Square(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinEnclosingCircle(pts)
	}
}
