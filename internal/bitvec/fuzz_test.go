package bitvec

import (
	"math/rand"
	"testing"
)

// vectorFromBytes builds a length-8·len(data) vector whose bits follow the
// byte stream (bit i of byte j → index 8j+i), padded to n when longer.
func vectorFromBytes(n int, data []byte) Vector {
	v := New(n)
	for j, b := range data {
		for i := 0; i < 8; i++ {
			idx := 8*j + i
			if idx >= n {
				return v
			}
			v.Set(idx, b&(1<<i) != 0)
		}
	}
	return v
}

// FuzzVectorXOR checks the GF(2) group laws of Vector addition on
// arbitrary bit patterns: XOR is self-inverse, commutative, has the zero
// vector as identity, every element is its own inverse, and popcount
// parity is additive.
func FuzzVectorXOR(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0x01}, []byte{0xff})
	f.Add([]byte{0xaa, 0x55, 0x00, 0xf0}, []byte{0x0f, 0x12})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05}, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x80})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		n := 8 * max(len(a), len(b))
		if n == 0 {
			n = 1
		}
		va := vectorFromBytes(n, a)
		vb := vectorFromBytes(n, b)

		sum := va.Add(vb)
		if !sum.Add(vb).Equal(va) {
			t.Fatalf("XOR not self-inverse: (a⊕b)⊕b != a for a=%s b=%s", va, vb)
		}
		if !sum.Equal(vb.Add(va)) {
			t.Fatalf("XOR not commutative for a=%s b=%s", va, vb)
		}
		if !va.Add(New(n)).Equal(va) {
			t.Fatalf("zero vector is not the identity for a=%s", va)
		}
		if !va.Add(va).IsZero() {
			t.Fatalf("a⊕a != 0 for a=%s", va)
		}
		if (sum.PopCount()+2*va.And(vb).PopCount())%2 != (va.PopCount()+vb.PopCount())%2 {
			t.Fatalf("popcount parity broken: |a⊕b|=%d |a|=%d |b|=%d",
				sum.PopCount(), va.PopCount(), vb.PopCount())
		}
		// In-place Xor must agree with the allocating Add.
		inPlace := va.Clone()
		inPlace.Xor(vb)
		if !inPlace.Equal(sum) {
			t.Fatalf("Xor (in place) disagrees with Add for a=%s b=%s", va, vb)
		}
	})
}

// FuzzRank checks the rank laws of Gaussian elimination over GF(2) on
// arbitrary row sets: rank never exceeds the dimension or the row count,
// rank is invariant under any permutation of insertion order (row swaps),
// and inserting a GF(2) combination of stored rows never raises the rank.
func FuzzRank(f *testing.F) {
	f.Add([]byte{}, uint8(0), int64(0))
	f.Add([]byte{0x01, 0x02, 0x03}, uint8(3), int64(1))
	f.Add([]byte{0xff, 0xff, 0x0f, 0xf0, 0x33, 0xcc}, uint8(2), int64(7))
	f.Add([]byte{0x80, 0x40, 0x20, 0x10, 0x08, 0x04, 0x02, 0x01}, uint8(8), int64(42))
	f.Fuzz(func(t *testing.T, data []byte, rowLen uint8, permSeed int64) {
		// Slice data into rows of rowLen bytes (dimension 8·rowLen bits).
		w := int(rowLen%16) + 1
		n := 8 * w
		var rows []Vector
		for i := 0; i+w <= len(data) && len(rows) < 64; i += w {
			rows = append(rows, vectorFromBytes(n, data[i:i+w]))
		}

		e := NewEchelon(n)
		for _, r := range rows {
			e.Insert(r)
		}
		if e.Rank() > n {
			t.Fatalf("rank %d exceeds dimension %d", e.Rank(), n)
		}
		if e.Rank() > len(rows) {
			t.Fatalf("rank %d exceeds row count %d", e.Rank(), len(rows))
		}

		// Row swaps: any insertion order yields the same rank.
		perm := rand.New(rand.NewSource(permSeed)).Perm(len(rows))
		shuffled := NewEchelon(n)
		for _, i := range perm {
			shuffled.Insert(rows[i])
		}
		if shuffled.Rank() != e.Rank() {
			t.Fatalf("rank depends on insertion order: %d vs %d", shuffled.Rank(), e.Rank())
		}

		// A GF(2) combination of stored rows is dependent: rank must not
		// move, and the echelon must report that it spans the combination.
		if len(rows) >= 2 {
			combo := rows[0].Add(rows[len(rows)-1])
			before := e.Rank()
			if e.Insert(combo) && before == e.Rank() {
				t.Fatalf("Insert reported independence without raising rank")
			}
			if e.Rank() > before {
				// combo may be independent only if it is NOT a combination
				// of *inserted* rows; rows[0] and rows[len-1] were inserted,
				// so their sum is always dependent.
				t.Fatalf("rank rose on a GF(2) combination of inserted rows")
			}
			if !e.Spans(combo) {
				t.Fatalf("echelon does not span a combination of its own rows")
			}
		}
	})
}
