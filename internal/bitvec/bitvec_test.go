package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndLen(t *testing.T) {
	tests := []struct {
		name string
		n    int
	}{
		{"empty", 0},
		{"one", 1},
		{"word boundary", 64},
		{"word boundary plus one", 65},
		{"large", 1000},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := New(tt.n)
			if v.Len() != tt.n {
				t.Fatalf("Len() = %d, want %d", v.Len(), tt.n)
			}
			if !v.IsZero() {
				t.Fatalf("new vector is not zero")
			}
			if v.PopCount() != 0 {
				t.Fatalf("PopCount() = %d, want 0", v.PopCount())
			}
		})
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetFlip(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("bit %d set in zero vector", i)
		}
		v.Set(i, true)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Flip(i)
		if v.Get(i) {
			t.Fatalf("bit %d still set after Flip", i)
		}
		v.Flip(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after second Flip", i)
		}
		v.Set(i, false)
		if v.Get(i) {
			t.Fatalf("bit %d set after Set(false)", i)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestFromIndices(t *testing.T) {
	v := FromIndices(100, 3, 64, 99)
	if v.PopCount() != 3 {
		t.Fatalf("PopCount() = %d, want 3", v.PopCount())
	}
	want := []int{3, 64, 99}
	got := v.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices() = %v, want %v", got, want)
		}
	}
}

func TestFirstSet(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want int
	}{
		{"zero", New(100), -1},
		{"bit 0", FromIndices(100, 0), 0},
		{"bit 63", FromIndices(100, 63), 63},
		{"bit 64", FromIndices(100, 64), 64},
		{"lowest wins", FromIndices(100, 70, 5, 99), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.FirstSet(); got != tt.want {
				t.Fatalf("FirstSet() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestXorAdd(t *testing.T) {
	a := FromIndices(70, 1, 2, 65)
	b := FromIndices(70, 2, 3, 65)
	sum := a.Add(b)
	want := FromIndices(70, 1, 3)
	if !sum.Equal(want) {
		t.Fatalf("Add = %v, want %v", sum.Indices(), want.Indices())
	}
	// Add must not mutate operands.
	if !a.Equal(FromIndices(70, 1, 2, 65)) {
		t.Fatal("Add mutated left operand")
	}
	if !b.Equal(FromIndices(70, 2, 3, 65)) {
		t.Fatal("Add mutated right operand")
	}
	// In-place Xor.
	c := a.Clone()
	c.Xor(b)
	if !c.Equal(want) {
		t.Fatalf("Xor = %v, want %v", c.Indices(), want.Indices())
	}
}

func TestAnd(t *testing.T) {
	a := FromIndices(70, 1, 2, 65)
	b := FromIndices(70, 2, 3, 65)
	got := a.And(b)
	want := FromIndices(70, 2, 65)
	if !got.Equal(want) {
		t.Fatalf("And = %v, want %v", got.Indices(), want.Indices())
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a := New(10)
	b := New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("Xor with mismatched lengths did not panic")
		}
	}()
	a.Xor(b)
}

func TestCloneIsIndependent(t *testing.T) {
	a := FromIndices(10, 1)
	b := a.Clone()
	b.Set(2, true)
	if a.Get(2) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestString(t *testing.T) {
	v := FromIndices(5, 0, 3)
	if got, want := v.String(), "10010"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if New(5).Equal(New(6)) {
		t.Fatal("vectors of different lengths reported equal")
	}
}

// xorIsCommutativeAssociative is a property test of GF(2) addition laws.
func TestXorAlgebraProperties(t *testing.T) {
	const n = 130
	gen := func(r *rand.Rand) Vector {
		v := New(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 1 {
				v.Set(i, true)
			}
		}
		return v
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		if !a.Add(b).Equal(b.Add(a)) {
			t.Fatal("xor not commutative")
		}
		if !a.Add(b).Add(c).Equal(a.Add(b.Add(c))) {
			t.Fatal("xor not associative")
		}
		if !a.Add(a).IsZero() {
			t.Fatal("x ⊕ x != 0")
		}
		if !a.Add(New(n)).Equal(a) {
			t.Fatal("x ⊕ 0 != x")
		}
	}
}

func TestEchelonBasic(t *testing.T) {
	e := NewEchelon(4)
	v1 := FromIndices(4, 0, 1)
	v2 := FromIndices(4, 1, 2)
	v3 := FromIndices(4, 0, 2) // v1 ⊕ v2
	if !e.Insert(v1) {
		t.Fatal("v1 should be independent")
	}
	if !e.Insert(v2) {
		t.Fatal("v2 should be independent")
	}
	if e.Insert(v3) {
		t.Fatal("v3 = v1 ⊕ v2 should be dependent")
	}
	if e.Rank() != 2 {
		t.Fatalf("Rank() = %d, want 2", e.Rank())
	}
	if !e.Spans(v3) {
		t.Fatal("echelon should span v1 ⊕ v2")
	}
	if e.Spans(FromIndices(4, 3)) {
		t.Fatal("echelon should not span e3")
	}
}

func TestEchelonZeroVector(t *testing.T) {
	e := NewEchelon(8)
	if e.Insert(New(8)) {
		t.Fatal("zero vector reported independent")
	}
	if !e.Spans(New(8)) {
		t.Fatal("zero vector not in empty span")
	}
}

func TestEchelonFullRank(t *testing.T) {
	const n = 65
	e := NewEchelon(n)
	for i := 0; i < n; i++ {
		// e_i ⊕ e_{i+1 mod n}: n cyclic difference vectors have rank n-1.
		v := FromIndices(n, i, (i+1)%n)
		e.Insert(v)
	}
	if e.Rank() != n-1 {
		t.Fatalf("Rank() = %d, want %d", e.Rank(), n-1)
	}
	// The all-ones vector is NOT in the span of differences... over GF(2)
	// each difference has even weight, so any combination has even weight.
	ones := New(n)
	for i := 0; i < n; i++ {
		ones.Set(i, true)
	}
	if e.Spans(ones) {
		t.Fatal("odd-weight vector reported in even-weight span")
	}
}

// TestEchelonRankMatchesBruteForce checks rank against an independent
// O(n^3) elimination on random small matrices.
func TestEchelonRankMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		rows := 1 + r.Intn(20)
		mat := make([][]bool, rows)
		e := NewEchelon(n)
		for i := range mat {
			mat[i] = make([]bool, n)
			v := New(n)
			for j := 0; j < n; j++ {
				if r.Intn(2) == 1 {
					mat[i][j] = true
					v.Set(j, true)
				}
			}
			e.Insert(v)
		}
		return e.Rank() == bruteRank(mat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func bruteRank(mat [][]bool) int {
	rows := len(mat)
	if rows == 0 {
		return 0
	}
	n := len(mat[0])
	m := make([][]bool, rows)
	for i := range mat {
		m[i] = append([]bool(nil), mat[i]...)
	}
	rank := 0
	for col := 0; col < n && rank < rows; col++ {
		piv := -1
		for i := rank; i < rows; i++ {
			if m[i][col] {
				piv = i
				break
			}
		}
		if piv < 0 {
			continue
		}
		m[rank], m[piv] = m[piv], m[rank]
		for i := 0; i < rows; i++ {
			if i != rank && m[i][col] {
				for j := 0; j < n; j++ {
					m[i][j] = m[i][j] != m[rank][j]
				}
			}
		}
		rank++
	}
	return rank
}

func TestEchelonReduceReturnsResidue(t *testing.T) {
	e := NewEchelon(6)
	e.Insert(FromIndices(6, 0, 1))
	res := e.Reduce(FromIndices(6, 0, 2))
	if !res.Equal(FromIndices(6, 1, 2)) {
		t.Fatalf("Reduce residue = %v, want [1 2]", res.Indices())
	}
	// Reduce must not insert.
	if e.Rank() != 1 {
		t.Fatalf("Reduce changed rank to %d", e.Rank())
	}
}

func BenchmarkEchelonInsertDense(b *testing.B) {
	const n = 2048
	r := rand.New(rand.NewSource(7))
	vecs := make([]Vector, 512)
	for i := range vecs {
		v := New(n)
		for j := 0; j < n; j++ {
			if r.Intn(2) == 1 {
				v.Set(j, true)
			}
		}
		vecs[i] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEchelon(n)
		for _, v := range vecs {
			e.Insert(v)
		}
	}
}

func BenchmarkXor(b *testing.B) {
	v := New(4096)
	u := FromIndices(4096, 1, 100, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Xor(u)
	}
}
