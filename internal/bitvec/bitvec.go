// Package bitvec provides fixed-length bit vectors over GF(2) and the
// Gaussian-elimination machinery used by all cycle-space algebra in this
// repository.
//
// A Vector is a sequence of bits indexed from 0. Addition over GF(2) is XOR.
// The Echelon type maintains a set of linearly independent vectors in row
// echelon form and supports incremental rank queries, which is the core
// primitive behind minimum-cycle-basis selection (Algorithm 1 of the paper)
// and the τ-partitionability tests (Propositions 2 and 3).
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length bit vector over GF(2).
//
// The zero value is an empty (length-0) vector. Vectors of different lengths
// must not be mixed in algebraic operations; methods panic on length
// mismatch because such a mix is always a programming error, never a runtime
// condition.
type Vector struct {
	n     int
	words []uint64
}

// New returns a zero vector of length n.
//
//lint:ignore hotalloc constructor of a caller-owned vector; the hot loop reaches it only through Echelon.TakeScratch's recycler-dry fallback, which is cold once the elimination workspace is warm
func New(n int) Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a vector of length n with the given bits set.
func FromIndices(n int, idx ...int) Vector {
	v := New(n)
	for _, i := range idx {
		v.Set(i, true)
	}
	return v
}

// Len returns the number of bits in the vector.
func (v Vector) Len() int { return v.n }

// Get reports whether bit i is set.
func (v Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i to b.
func (v Vector) Set(i int, b bool) {
	v.check(i)
	if b {
		v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Flip toggles bit i.
func (v Vector) Flip(i int) {
	v.check(i)
	v.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

func (v Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// IsZero reports whether no bit is set.
func (v Vector) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits.
func (v Vector) PopCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// FirstSet returns the index of the lowest set bit, or -1 if the vector is
// zero.
func (v Vector) FirstSet() int {
	return v.firstSetFrom(0)
}

// firstSetFrom returns the index of the lowest set bit at or above word
// index fromWord, or -1.
func (v Vector) firstSetFrom(fromWord int) int {
	for wi := fromWord; wi < len(v.words); wi++ {
		if w := v.words[wi]; w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Zero clears every bit in place.
func (v Vector) Zero() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Indices returns the indices of all set bits in increasing order.
func (v Vector) Indices() []int {
	out := make([]int, 0, v.PopCount())
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// Xor sets v = v ⊕ u in place. The receiver's storage is reused.
func (v Vector) Xor(u Vector) {
	if v.n != u.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, u.n))
	}
	for i := range v.words {
		v.words[i] ^= u.words[i]
	}
}

// Add returns the GF(2) sum v ⊕ u as a new vector.
func (v Vector) Add(u Vector) Vector {
	w := v.Clone()
	w.Xor(u)
	return w
}

// And returns the bitwise intersection of v and u as a new vector.
func (v Vector) And(u Vector) Vector {
	if v.n != u.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, u.n))
	}
	w := v.Clone()
	for i := range w.words {
		w.words[i] &= u.words[i]
	}
	return w
}

// Equal reports whether v and u have the same length and bits.
func (v Vector) Equal(u Vector) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// String renders the vector as a bit string, lowest index first.
func (v Vector) String() string {
	var b strings.Builder
	b.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Echelon maintains a set of GF(2) vectors in row echelon form. Each stored
// row has a distinct pivot (its lowest set bit), and rows are kept indexed by
// pivot so that reduction of an incoming vector touches only rows whose pivot
// is present in it.
//
// The zero value is not usable; construct with NewEchelon.
type Echelon struct {
	n      int
	byPiv  []Vector // pivot index -> row with that pivot (zero-length = none)
	rank   int
	pivots []int32    // pivots inserted so far, for cheap Reset
	free   [][]uint64 // recycled row storage, fed by Reset, drained by TakeScratch
}

// NewEchelon returns an empty echelon for vectors of length n.
func NewEchelon(n int) *Echelon {
	return &Echelon{n: n, byPiv: make([]Vector, n)}
}

// Reset empties the echelon and re-dimensions it for vectors of length n,
// recycling the storage of all previously stored rows. Together with
// TakeScratch it makes repeated elimination runs (the per-candidate
// short-span tests of the deletability engine) allocation-free in steady
// state.
func (e *Echelon) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	for _, p := range e.pivots {
		e.free = append(e.free, e.byPiv[p].words)
		e.byPiv[p] = Vector{}
	}
	e.pivots = e.pivots[:0]
	e.rank = 0
	e.n = n
	if len(e.byPiv) < n {
		e.byPiv = make([]Vector, n)
	}
}

// TakeScratch returns a zero vector of the echelon's current length, reusing
// recycled row storage when available. The vector is caller-owned; handing
// it back via InsertOwned (taken or not) keeps the cycle allocation-free.
func (e *Echelon) TakeScratch() Vector {
	need := (e.n + wordBits - 1) / wordBits
	for len(e.free) > 0 {
		w := e.free[len(e.free)-1]
		e.free = e.free[:len(e.free)-1]
		if cap(w) < need {
			continue // drop undersized storage
		}
		w = w[:need]
		for i := range w {
			w[i] = 0
		}
		return Vector{n: e.n, words: w}
	}
	return New(e.n)
}

// Rank returns the number of independent vectors inserted so far.
func (e *Echelon) Rank() int { return e.rank }

// Len returns the vector length the echelon operates on.
func (e *Echelon) Len() int { return e.n }

// reduceInPlace eliminates v against the stored rows in place and returns
// the residue pivot (lowest set bit), or -1 when v reduced to zero. The
// pivot scan resumes from the previous pivot's word: elimination only
// clears bits at or below the current pivot.
func (e *Echelon) reduceInPlace(v Vector) int {
	if v.n != e.n {
		panic(fmt.Sprintf("bitvec: echelon length %d vs vector %d", e.n, v.n))
	}
	p := v.firstSetFrom(0)
	for p >= 0 {
		row := e.byPiv[p]
		if row.n == 0 {
			return p
		}
		v.xorFrom(row, p/wordBits)
		p = v.firstSetFrom(p / wordBits)
	}
	return -1
}

// xorFrom XORs u into v starting at the given word index; the words below
// are known equal to zero in both relevant positions for echelon reduction.
func (v Vector) xorFrom(u Vector, fromWord int) {
	vw, uw := v.words[fromWord:], u.words[fromWord:]
	for i := range vw {
		vw[i] ^= uw[i]
	}
}

// Reduce returns the residue of v after elimination against the stored rows.
// The residue is zero iff v lies in the span of the inserted vectors. The
// returned vector is freshly allocated and owned by the caller.
func (e *Echelon) Reduce(v Vector) Vector {
	r := v.Clone()
	e.reduceInPlace(r)
	return r
}

// Insert reduces v and, if the residue is nonzero, stores it and returns
// true (v was independent of the current span). Otherwise returns false.
// v itself is not modified or retained.
func (e *Echelon) Insert(v Vector) bool {
	_, ok := e.InsertPivot(v)
	return ok
}

// InsertPivot is Insert that also reports the pivot (lowest set bit) of the
// stored residue row. The pivot is -1 when v was dependent and nothing was
// stored.
func (e *Echelon) InsertPivot(v Vector) (pivot int, ok bool) {
	return e.InsertOwned(v.Clone())
}

// InsertOwned is InsertPivot for callers that relinquish ownership of v:
// the vector is reduced in place and, when independent, stored directly
// with no copy. When it reports ok, the caller must stop using v (the
// echelon owns it now); when it reports !ok, v has been zeroed by the
// reduction and may be reused. This is the allocation-free hot path of the
// cycle-space elimination loops.
func (e *Echelon) InsertOwned(v Vector) (pivot int, ok bool) {
	p := e.reduceInPlace(v)
	if p < 0 {
		return -1, false
	}
	e.byPiv[p] = v
	e.pivots = append(e.pivots, int32(p))
	e.rank++
	return p, true
}

// Spans reports whether v lies in the span of the inserted vectors.
func (e *Echelon) Spans(v Vector) bool {
	return e.Reduce(v).IsZero()
}
