// Package cover measures ground-truth sensing coverage of an embedded
// network: which parts of the target area are covered by sensing disks,
// what coverage holes remain, and how large they are.
//
// This is the oracle against which the paper's location-free guarantees
// are validated (Proposition 1): after scheduling, every hole's
// circumscribing-circle diameter must respect the τ-confine bound. The
// coverage algorithms never see this package's output; it exists for
// evaluation only.
package cover

import (
	"math"

	"dcc/internal/geom"
)

// Hole is a maximal 4-connected uncovered region of the sampling grid.
type Hole struct {
	// Cells are the centres of the uncovered sample cells.
	Cells []geom.Point
	// Diameter is the diameter of the minimum circle circumscribing the
	// uncovered cell centres — the paper's hole-diameter metric.
	Diameter float64
	// Area is the approximate hole area (cell count × cell area).
	Area float64
}

// Report summarises the coverage of a target area.
type Report struct {
	// Holes lists all uncovered regions, largest diameter first.
	Holes []Hole
	// CoveredFraction is the fraction of sample cells covered.
	CoveredFraction float64
	// Resolution is the sampling cell size used.
	Resolution float64
}

// FullyCovered reports whether no hole was found at the sampling
// resolution.
func (r Report) FullyCovered() bool { return len(r.Holes) == 0 }

// MaxHoleDiameter returns the largest hole diameter (0 when fully covered).
func (r Report) MaxHoleDiameter() float64 {
	if len(r.Holes) == 0 {
		return 0
	}
	return r.Holes[0].Diameter
}

// Analyze samples the target rectangle on a grid with the given cell size
// and reports the uncovered regions given sensing disks of radius rs
// centred at the active points.
//
// The sampling introduces a discretisation error of at most one cell
// diagonal in hole diameters; callers comparing against analytic bounds
// should allow that slack.
func Analyze(active []geom.Point, rs float64, target geom.Rect, resolution float64) Report {
	radii := make([]float64, len(active))
	for i := range radii {
		radii[i] = rs
	}
	return AnalyzeRadii(active, radii, target, resolution)
}

// AnalyzeRadii is Analyze for heterogeneous sensing: radii[i] is the
// sensing radius of active[i]. The spatial hash is keyed at the maximum
// radius so the 3×3 neighbourhood query stays sufficient for every disk.
func AnalyzeRadii(active []geom.Point, radii []float64, target geom.Rect, resolution float64) Report {
	if resolution <= 0 {
		panic("cover: non-positive resolution")
	}
	if len(radii) != len(active) {
		panic("cover: radii/active length mismatch")
	}
	cols := int(math.Ceil(target.Width() / resolution))
	rows := int(math.Ceil(target.Height() / resolution))
	if cols <= 0 || rows <= 0 {
		return Report{Resolution: resolution, CoveredFraction: 1}
	}

	maxR := 0.0
	for _, r := range radii {
		if r > maxR {
			maxR = r
		}
	}

	// Spatial hash of active sensors at cell size maxR for O(1) disk
	// queries: a disk of radius ≤ maxR centred anywhere in a cell only
	// reaches the 3×3 neighbourhood of that cell.
	type sensor struct {
		p geom.Point
		r float64
	}
	type cellKey struct{ x, y int }
	idx := make(map[cellKey][]sensor)
	if maxR > 0 {
		for i, p := range active {
			if radii[i] <= 0 {
				continue
			}
			k := cellKey{x: int(math.Floor(p.X / maxR)), y: int(math.Floor(p.Y / maxR))}
			idx[k] = append(idx[k], sensor{p: p, r: radii[i]})
		}
	}
	coveredAt := func(p geom.Point) bool {
		if maxR <= 0 {
			return false
		}
		cx, cy := int(math.Floor(p.X/maxR)), int(math.Floor(p.Y/maxR))
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, s := range idx[cellKey{x: cx + dx, y: cy + dy}] {
					if geom.Dist(p, s.p) <= s.r {
						return true
					}
				}
			}
		}
		return false
	}

	center := func(r, c int) geom.Point {
		return geom.Point{
			X: target.MinX + (float64(c)+0.5)*resolution,
			Y: target.MinY + (float64(r)+0.5)*resolution,
		}
	}

	covered := make([]bool, rows*cols)
	nCovered := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if coveredAt(center(r, c)) {
				covered[r*cols+c] = true
				nCovered++
			}
		}
	}

	// Flood-fill uncovered cells into 4-connected holes.
	seen := make([]bool, rows*cols)
	var holes []Hole
	for start := 0; start < rows*cols; start++ {
		if covered[start] || seen[start] {
			continue
		}
		var cells []geom.Point
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			r, c := cur/cols, cur%cols
			cells = append(cells, center(r, c))
			for _, nb := range [4][2]int{{r - 1, c}, {r + 1, c}, {r, c - 1}, {r, c + 1}} {
				nr, nc := nb[0], nb[1]
				if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
					continue
				}
				ni := nr*cols + nc
				if !covered[ni] && !seen[ni] {
					seen[ni] = true
					stack = append(stack, ni)
				}
			}
		}
		mec := geom.MinEnclosingCircle(cells)
		holes = append(holes, Hole{
			Cells:    cells,
			Diameter: 2 * mec.R,
			Area:     float64(len(cells)) * resolution * resolution,
		})
	}
	// Largest first.
	for i := 0; i < len(holes); i++ {
		for j := i + 1; j < len(holes); j++ {
			if holes[j].Diameter > holes[i].Diameter {
				holes[i], holes[j] = holes[j], holes[i]
			}
		}
	}
	return Report{
		Holes:           holes,
		CoveredFraction: float64(nCovered) / float64(rows*cols),
		Resolution:      resolution,
	}
}
