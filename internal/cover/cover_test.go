package cover

import (
	"math"
	"math/rand"
	"testing"

	"dcc/internal/geom"
)

func TestFullCoverageSingleDisk(t *testing.T) {
	target := geom.Square(2)
	// Disk of radius 2 centred at the middle covers the whole 2×2 square
	// (corner distance = √2 < 2).
	rep := Analyze([]geom.Point{{X: 1, Y: 1}}, 2, target, 0.05)
	if !rep.FullyCovered() {
		t.Fatalf("expected full coverage, %d holes, max diameter %v",
			len(rep.Holes), rep.MaxHoleDiameter())
	}
	if rep.CoveredFraction != 1 {
		t.Fatalf("CoveredFraction = %v, want 1", rep.CoveredFraction)
	}
	if rep.MaxHoleDiameter() != 0 {
		t.Fatal("MaxHoleDiameter non-zero for full coverage")
	}
}

func TestNoSensors(t *testing.T) {
	target := geom.Square(4)
	rep := Analyze(nil, 1, target, 0.1)
	if len(rep.Holes) != 1 {
		t.Fatalf("expected one big hole, got %d", len(rep.Holes))
	}
	if rep.CoveredFraction != 0 {
		t.Fatalf("CoveredFraction = %v, want 0", rep.CoveredFraction)
	}
	// The hole spans the whole square; diameter ≈ diagonal = 4√2.
	want := 4 * math.Sqrt2
	if d := rep.MaxHoleDiameter(); math.Abs(d-want) > 0.3 {
		t.Fatalf("hole diameter %v, want ≈%v", d, want)
	}
}

func TestSingleCircularHole(t *testing.T) {
	// Sensors on a dense ring of radius 3 with rs=1 leave a circular hole
	// of radius ≈2 in the middle.
	target := geom.Square(10)
	center := geom.Point{X: 5, Y: 5}
	var sensors []geom.Point
	sensors = append(sensors, geom.CirclePoints(center, 3, 64)...)
	// Cover the outside with a dense grid of sensors beyond radius 3.
	for x := 0.25; x < 10; x += 0.5 {
		for y := 0.25; y < 10; y += 0.5 {
			p := geom.Point{X: x, Y: y}
			if geom.Dist(p, center) > 3.4 {
				sensors = append(sensors, p)
			}
		}
	}
	rep := Analyze(sensors, 1, target, 0.1)
	if len(rep.Holes) != 1 {
		t.Fatalf("expected exactly one hole, got %d", len(rep.Holes))
	}
	// The hole is the disk of radius 3−1=2 → diameter ≈4.
	if d := rep.MaxHoleDiameter(); d < 3.4 || d > 4.4 {
		t.Fatalf("hole diameter %v, want ≈4", d)
	}
	// Area ≈ π·2² ≈ 12.6.
	if a := rep.Holes[0].Area; a < 10 || a > 15 {
		t.Fatalf("hole area %v, want ≈12.6", a)
	}
}

func TestTwoSeparateHoles(t *testing.T) {
	target := geom.Square(12)
	var sensors []geom.Point
	h1 := geom.Point{X: 3, Y: 6}
	h2 := geom.Point{X: 9, Y: 6}
	for x := 0.25; x < 12; x += 0.5 {
		for y := 0.25; y < 12; y += 0.5 {
			p := geom.Point{X: x, Y: y}
			if geom.Dist(p, h1) > 1.9 && geom.Dist(p, h2) > 1.4 {
				sensors = append(sensors, p)
			}
		}
	}
	rep := Analyze(sensors, 1, target, 0.1)
	if len(rep.Holes) != 2 {
		t.Fatalf("expected 2 holes, got %d", len(rep.Holes))
	}
	// Sorted largest first.
	if rep.Holes[0].Diameter < rep.Holes[1].Diameter {
		t.Fatal("holes not sorted by diameter")
	}
}

func TestHolesDisjointAndComplete(t *testing.T) {
	// Cell accounting: covered fraction + hole cells must account for the
	// entire grid.
	rng := rand.New(rand.NewSource(8))
	target := geom.Square(8)
	sensors := geom.UniformPoints(rng, 30, target)
	res := 0.2
	rep := Analyze(sensors, 0.8, target, res)
	cols := int(math.Ceil(target.Width() / res))
	rows := int(math.Ceil(target.Height() / res))
	holeCells := 0
	for _, h := range rep.Holes {
		holeCells += len(h.Cells)
	}
	total := rows * cols
	coveredCells := int(math.Round(rep.CoveredFraction * float64(total)))
	if coveredCells+holeCells != total {
		t.Fatalf("cells: covered %d + holes %d != total %d", coveredCells, holeCells, total)
	}
}

func TestResolutionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive resolution did not panic")
		}
	}()
	Analyze(nil, 1, geom.Square(1), 0)
}

func TestDiameterShrinksWithMoreSensors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	target := geom.Square(10)
	prev := math.Inf(1)
	for _, n := range []int{10, 60, 400} {
		sensors := geom.UniformPoints(rng, n, target)
		rep := Analyze(sensors, 1, target, 0.15)
		d := rep.MaxHoleDiameter()
		if d > prev+1 { // allow randomness slack
			t.Fatalf("hole diameter grew markedly with more sensors: %v -> %v", prev, d)
		}
		prev = d
	}
}

func BenchmarkAnalyze(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	target := geom.Square(40)
	sensors := geom.UniformPoints(rng, 1600, target)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(sensors, 1.2, target, 0.25)
	}
}
