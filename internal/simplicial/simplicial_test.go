package simplicial

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dcc/internal/bitvec"
	"dcc/internal/graph"
)

func TestRipsTriangleCount(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"triangle", graph.Complete(3), 1},
		{"K4", graph.Complete(4), 4},
		{"K5", graph.Complete(5), 10},
		{"C6", graph.Cycle(6), 0},
		{"grid", graph.Grid(3, 3), 0},
		{"triangulated grid 2x2", graph.TriangulatedGrid(2, 2), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			k := Rips(tt.g)
			if got := k.NumTriangles(); got != tt.want {
				t.Fatalf("NumTriangles = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestRipsTrianglesAreCliquesAndUnique(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder()
		n := 15
		for i := 0; i < n; i++ {
			b.AddNode(graph.NodeID(i))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.35 {
					b.AddEdge(graph.NodeID(i), graph.NodeID(j))
				}
			}
		}
		g := b.MustBuild()
		k := Rips(g)
		seen := make(map[Triangle]bool)
		for _, tr := range k.Triangles() {
			if !(tr.A < tr.B && tr.B < tr.C) {
				return false
			}
			if !g.HasEdge(tr.A, tr.B) || !g.HasEdge(tr.B, tr.C) || !g.HasEdge(tr.A, tr.C) {
				return false
			}
			if seen[tr] {
				return false
			}
			seen[tr] = true
		}
		// Independent brute-force count.
		count := 0
		nodes := g.Nodes()
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				for l := j + 1; l < len(nodes); l++ {
					if g.HasEdge(nodes[i], nodes[j]) && g.HasEdge(nodes[j], nodes[l]) && g.HasEdge(nodes[i], nodes[l]) {
						count++
					}
				}
			}
		}
		return count == k.NumTriangles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsTrianglesWithMissingEdges(t *testing.T) {
	g := graph.Path(3) // edges 0-1, 1-2; no 0-2
	k := New(g, []Triangle{{A: 0, B: 1, C: 2}})
	if k.NumTriangles() != 0 {
		t.Fatal("triangle with missing edge accepted")
	}
}

func TestNewNormalizesOrder(t *testing.T) {
	g := graph.Complete(3)
	k := New(g, []Triangle{{A: 2, B: 0, C: 1}})
	if k.NumTriangles() != 1 {
		t.Fatal("unordered triangle rejected")
	}
	tr := k.Triangles()[0]
	if tr.A != 0 || tr.B != 1 || tr.C != 2 {
		t.Fatalf("triangle not normalized: %+v", tr)
	}
}

func TestH1RankKnownComplexes(t *testing.T) {
	tests := []struct {
		name string
		k    *Complex
		want int
	}{
		{"filled triangle", Rips(graph.Complete(3)), 0},
		{"hollow hexagon", Rips(graph.Cycle(6)), 1},
		{"hollow grid", Rips(graph.Grid(4, 4)), 9},
		{"filled disk (triangulated grid)", Rips(graph.TriangulatedGrid(4, 4)), 0},
		{"K5 full Rips", Rips(graph.Complete(5)), 0},
		{"two hollow squares", Rips(mustGraph(t, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0},
			{U: 10, V: 11}, {U: 11, V: 12}, {U: 12, V: 13}, {U: 13, V: 10},
		})), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.k.H1Rank(); got != tt.want {
				t.Fatalf("H1Rank = %d, want %d", got, tt.want)
			}
			if want := tt.want == 0; tt.k.H1Trivial() != want {
				t.Fatalf("H1Trivial inconsistent with rank")
			}
		})
	}
}

func mustGraph(t *testing.T, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestAnnulusRelativeHomology: a triangulated annulus has H1 = Z (rank 1
// over GF(2)), so the absolute criterion detects the inner hole. The inner
// and outer boundary classes are homologous, hence coning either boundary
// kills the class — which is exactly why hole *detection* must use absolute
// H1 and cone only boundaries declared as not-requiring-coverage.
func TestAnnulusRelativeHomology(t *testing.T) {
	g, k, inner, outer := annulus()
	if got := k.H1Rank(); got != 1 {
		t.Fatalf("annulus H1 = %d, want 1", got)
	}
	if !k.H1TrivialRelative(outer) {
		t.Fatal("annulus relative to its outer boundary should have trivial H1")
	}
	if !k.H1TrivialRelative(inner) {
		t.Fatal("coning the declared inner boundary should kill H1")
	}
	if !k.H1TrivialRelative(append(append([]graph.NodeID{}, outer...), inner...)) {
		t.Fatal("coning both boundaries should kill H1")
	}
	_ = g
}

// annulus builds a triangulated annulus: inner square 0..3, outer octagon
// 4..11, triangulated strip between them.
func annulus() (*graph.Graph, *Complex, []graph.NodeID, []graph.NodeID) {
	inner := []graph.NodeID{0, 1, 2, 3}
	outer := []graph.NodeID{4, 5, 6, 7, 8, 9, 10, 11}
	b := graph.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddEdge(inner[i], inner[(i+1)%4])
	}
	for j := 0; j < 8; j++ {
		b.AddEdge(outer[j], outer[(j+1)%8])
	}
	var tris []Triangle
	// Each outer vertex 4+j maps to inner vertex j/2; strip triangles.
	for j := 0; j < 8; j++ {
		in := inner[j/2]
		inNext := inner[((j+1)/2)%4]
		b.AddEdge(outer[j], in)
		b.AddEdge(outer[(j+1)%8], in)
		tris = append(tris, Triangle{A: outer[j], B: outer[(j+1)%8], C: in})
		if in != inNext {
			b.AddEdge(outer[(j+1)%8], inNext)
			tris = append(tris, Triangle{A: outer[(j+1)%8], B: in, C: inNext})
		}
	}
	// j = 7 wraps: triangle (outer[0], inner[3], inner[0]).
	tris = append(tris, Triangle{A: outer[0], B: inner[3], C: inner[0]})
	g := b.MustBuild()
	return g, New(g, tris), inner, outer
}

func TestConeFenceApexFresh(t *testing.T) {
	g := graph.Cycle(5)
	k := Rips(g)
	cone, apex := k.ConeFence(g.Nodes())
	if g.HasNode(apex) {
		t.Fatal("apex collides with an existing node")
	}
	if cone.Graph().NumNodes() != g.NumNodes()+1 {
		t.Fatal("cone node count wrong")
	}
	// Coning a full cycle kills its H1.
	if !cone.H1Trivial() {
		t.Fatal("coned cycle should be contractible-ish (H1 trivial)")
	}
}

func TestBoundarySpans(t *testing.T) {
	g := graph.TriangulatedGrid(3, 3)
	k := Rips(g)
	// Perimeter of the grid: null-homologous in the filled disk.
	verts := []graph.NodeID{0, 1, 2, 5, 8, 7, 6, 3}
	target := cycleVector(t, g, verts)
	if !k.BoundarySpans(target) {
		t.Fatal("perimeter of a filled disk should be a boundary")
	}
	// In the hollow grid it is not.
	hollow := Rips(graph.Grid(3, 3))
	hverts := []graph.NodeID{0, 1, 2, 5, 8, 7, 6, 3}
	htarget := cycleVector(t, graph.Grid(3, 3), hverts)
	if hollow.BoundarySpans(htarget) {
		t.Fatal("perimeter of a hollow grid reported null-homologous")
	}
}

func cycleVector(t *testing.T, g *graph.Graph, verts []graph.NodeID) bitvec.Vector {
	t.Helper()
	v := bitvec.New(g.NumEdges())
	for i := range verts {
		e, ok := g.EdgeIndex(verts[i], verts[(i+1)%len(verts)])
		if !ok {
			t.Fatalf("edge {%d,%d} missing", verts[i], verts[(i+1)%len(verts)])
		}
		v.Set(e, true)
	}
	return v
}

func TestDeleteVertices(t *testing.T) {
	g := graph.Complete(4)
	k := Rips(g)
	k2 := k.DeleteVertices([]graph.NodeID{3})
	if k2.Graph().NumNodes() != 3 {
		t.Fatal("vertex not deleted from 1-skeleton")
	}
	if k2.NumTriangles() != 1 {
		t.Fatalf("NumTriangles = %d, want 1", k2.NumTriangles())
	}
	// Original untouched.
	if k.NumTriangles() != 4 {
		t.Fatal("DeleteVertices mutated receiver")
	}
}

func TestEulerConsistency(t *testing.T) {
	// For a 2-complex, over GF(2): χ = n − m + t = dim H0 − dim H1 + dim H2.
	// We only verify the inequality dim H1 ≥ 0 implicitly plus χ on
	// complexes where H2 is known: a filled disk has H2 = 0, so
	// χ = c − dim H1.
	g := graph.TriangulatedGrid(5, 5)
	k := Rips(g)
	chi := g.NumNodes() - g.NumEdges() + k.NumTriangles()
	if want := 1 - k.H1Rank(); chi != want {
		t.Fatalf("Euler characteristic %d, want %d", chi, want)
	}
}

func BenchmarkRips(b *testing.B) {
	g := graph.TriangulatedGrid(15, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rips(g)
	}
}

func BenchmarkH1Rank(b *testing.B) {
	k := Rips(graph.TriangulatedGrid(12, 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.H1Trivial() {
			b.Fatal("expected trivial H1")
		}
	}
}
