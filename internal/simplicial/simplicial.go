// Package simplicial implements the 2-dimensional simplicial-complex
// machinery behind the homology-group coverage baseline (HGC, Ghrist et
// al.): Rips complexes over connectivity graphs, the GF(2) boundary
// operator ∂2, first-homology ranks, and relative first homology with
// respect to a fence subcomplex via coning.
//
// Over GF(2):
//
//	dim H1 = dim Z1 − dim B1 = (m − n + c) − rank(∂2)
//
// where Z1 is the cycle space of the 1-skeleton and B1 the boundary space
// spanned by triangle boundaries. H1 is trivial iff every cycle of the
// 1-skeleton is a sum of triangle boundaries — the homology-group coverage
// criterion, and exactly the condition the paper's cycle-partition
// criterion relaxes.
package simplicial

import (
	"sort"

	"dcc/internal/bitvec"
	"dcc/internal/graph"
)

// Triangle is a 2-simplex, stored with A < B < C.
type Triangle struct {
	A, B, C graph.NodeID
}

// Complex is a 2-dimensional simplicial complex: a graph (the 1-skeleton)
// plus a set of triangles whose edges all belong to the graph.
type Complex struct {
	g         *graph.Graph
	triangles []Triangle
}

// Rips returns the Vietoris–Rips 2-complex of g: every 3-clique of the
// connectivity graph becomes a 2-simplex. This is the complex HGC builds
// from pure connectivity information.
func Rips(g *graph.Graph) *Complex {
	var tris []Triangle
	for i := 0; i < g.NumEdges(); i++ {
		e := g.EdgeAt(i)
		u, v := e.U, e.V // u < v by construction
		nu, nv := g.Neighbors(u), g.Neighbors(v)
		// Intersect the two sorted neighbour lists, keeping w > v so each
		// triangle is enumerated exactly once.
		a, b := 0, 0
		for a < len(nu) && b < len(nv) {
			switch {
			case nu[a] < nv[b]:
				a++
			case nu[a] > nv[b]:
				b++
			default:
				if w := nu[a]; w > v {
					tris = append(tris, Triangle{A: u, B: v, C: w})
				}
				a++
				b++
			}
		}
	}
	return &Complex{g: g, triangles: tris}
}

// New builds a complex from an explicit triangle list. Triangles whose
// edges are not all present in g are ignored (a complex must be closed
// under taking faces).
func New(g *graph.Graph, tris []Triangle) *Complex {
	kept := make([]Triangle, 0, len(tris))
	for _, t := range tris {
		v := []graph.NodeID{t.A, t.B, t.C}
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		t = Triangle{A: v[0], B: v[1], C: v[2]}
		if g.HasEdge(t.A, t.B) && g.HasEdge(t.B, t.C) && g.HasEdge(t.A, t.C) {
			kept = append(kept, t)
		}
	}
	return &Complex{g: g, triangles: kept}
}

// Graph returns the 1-skeleton.
func (k *Complex) Graph() *graph.Graph { return k.g }

// NumTriangles returns the number of 2-simplices.
func (k *Complex) NumTriangles() int { return len(k.triangles) }

// Triangles returns a copy of the triangle list.
func (k *Complex) Triangles() []Triangle {
	return append([]Triangle(nil), k.triangles...)
}

// boundaryVector returns ∂2 of a triangle as a GF(2) vector over the edge
// indices of the 1-skeleton.
func (k *Complex) boundaryVector(t Triangle) bitvec.Vector {
	v := bitvec.New(k.g.NumEdges())
	for _, pair := range [3][2]graph.NodeID{{t.A, t.B}, {t.B, t.C}, {t.A, t.C}} {
		if e, ok := k.g.EdgeIndex(pair[0], pair[1]); ok {
			v.Set(e, true)
		}
	}
	return v
}

// BoundaryRank returns rank(∂2), the dimension of the boundary space B1.
// Insertion stops early once the rank reaches the cycle-space dimension
// (at which point H1 is already known to be trivial).
func (k *Complex) BoundaryRank() int {
	nu := k.g.CycleSpaceDim()
	ech := bitvec.NewEchelon(k.g.NumEdges())
	for _, t := range k.triangles {
		if ech.Insert(k.boundaryVector(t)) && ech.Rank() == nu {
			break
		}
	}
	return ech.Rank()
}

// H1Rank returns dim H1 of the complex over GF(2).
func (k *Complex) H1Rank() int {
	return k.g.CycleSpaceDim() - k.BoundaryRank()
}

// H1Trivial reports whether the first homology group is trivial —
// the (absolute) homology-group coverage criterion.
func (k *Complex) H1Trivial() bool { return k.H1Rank() == 0 }

// BoundarySpans reports whether the given edge-incidence vector is a sum of
// triangle boundaries, i.e. whether the corresponding cycle is
// null-homologous in the complex.
func (k *Complex) BoundarySpans(target bitvec.Vector) bool {
	nu := k.g.CycleSpaceDim()
	ech := bitvec.NewEchelon(k.g.NumEdges())
	for _, t := range k.triangles {
		if ech.Insert(k.boundaryVector(t)) && ech.Rank() == nu {
			break
		}
	}
	return ech.Spans(target)
}

// ConeFence returns the complex obtained by coning the fence: a fresh apex
// vertex is joined to every fence node, and a triangle {apex,u,v} is added
// for every fence edge {u,v} present in the 1-skeleton. Coning makes the
// fence subcomplex contractible, so the cone's absolute H1 equals the
// original pair's relative H1(K, F) — the fenced criterion of de Silva and
// Ghrist. The apex ID is returned alongside the new complex.
func (k *Complex) ConeFence(fence []graph.NodeID) (*Complex, graph.NodeID) {
	apex := graph.NodeID(0)
	for _, v := range k.g.Nodes() {
		if v >= apex {
			apex = v + 1
		}
	}
	b := graph.NewBuilder()
	for _, v := range k.g.Nodes() {
		b.AddNode(v)
	}
	for _, e := range k.g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	inFence := make(map[graph.NodeID]struct{}, len(fence))
	for _, v := range fence {
		if k.g.HasNode(v) {
			inFence[v] = struct{}{}
			b.AddEdge(apex, v)
		}
	}
	cg := b.MustBuild()
	tris := append([]Triangle(nil), k.triangles...)
	for _, e := range k.g.Edges() {
		if _, ok := inFence[e.U]; !ok {
			continue
		}
		if _, ok := inFence[e.V]; !ok {
			continue
		}
		tris = append(tris, Triangle{A: e.U, B: e.V, C: apex})
	}
	return New(cg, tris), apex
}

// H1TrivialRelative reports whether H1(K, fence) is trivial, computed via
// the fence cone.
func (k *Complex) H1TrivialRelative(fence []graph.NodeID) bool {
	cone, _ := k.ConeFence(fence)
	return cone.H1Trivial()
}

// DeleteVertices returns the subcomplex induced by removing the given
// vertices: their incident edges and triangles disappear.
func (k *Complex) DeleteVertices(del []graph.NodeID) *Complex {
	g2 := k.g.DeleteVertices(del)
	drop := make(map[graph.NodeID]struct{}, len(del))
	for _, v := range del {
		drop[v] = struct{}{}
	}
	tris := make([]Triangle, 0, len(k.triangles))
	for _, t := range k.triangles {
		if _, gone := drop[t.A]; gone {
			continue
		}
		if _, gone := drop[t.B]; gone {
			continue
		}
		if _, gone := drop[t.C]; gone {
			continue
		}
		tris = append(tris, t)
	}
	return &Complex{g: g2, triangles: tris}
}
