package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The clockflow analyzer is the static half of the observability contract
// (DESIGN.md §14): telemetry may *measure* the engines, but timing values
// must never *influence* them. Timing enters through exactly two doors —
// the time package and the telemetry package's reading surface
// (Clock.Now, Span.End, Hist.Quantile) — and clockflow taint-tracks every
// value derived from those doors through the intraprocedural value-flow
// index (flow.go). In simulation packages (dcc/internal/..., telemetry
// itself excepted) a tainted value may only flow back into the telemetry
// package; reaching a branch condition, a store into state, an argument of
// a non-telemetry call, or a return value is a finding. Everywhere —
// including cmd/ and the telemetry package — a tainted value feeding a
// rand seed or runner.DeriveSeed is a finding: a timing-dependent seed
// silently destroys "reproducible from Config alone" no matter which
// layer it happens in.
//
// The analysis is intraprocedural and flag-conservative like the rest of
// the framework: a flow it cannot prove is not reported.

// telemetryPkg is the one simulation package allowed to hold timing
// values; its reading surface is the sanctioned source set.
const telemetryPkg = "dcc/internal/telemetry"

// timingSourceMethods are the telemetry functions whose results carry
// timing (or otherwise scheduler-dependent) values.
var timingSourceMethods = map[string]bool{
	"Now":      true, // Clock.Now, WallClock.Now, ManualClock.Now
	"End":      true, // Span.End (duration)
	"Quantile": true, // Hist.Quantile (timing-class reads in practice)
}

// timingTimeFuncs are the time-package sources. The wallclock analyzer
// already bans them in simulation packages; clockflow additionally tracks
// what their results flow into, everywhere.
var timingTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// ClockFlowAnalyzer proves no timing value reaches algorithmic state,
// seeds, or control flow in simulation packages.
var ClockFlowAnalyzer = &Analyzer{
	Name: "clockflow",
	Doc:  "timing-derived value reaching state, seeds, or control flow (telemetry must measure, never steer)",
	Run:  runClockFlow,
}

func runClockFlow(pass *Pass) {
	path := pass.Pkg.Path
	// strict: full sink set (simulation packages, telemetry excepted).
	// Elsewhere (cmd/, root, telemetry itself) only seed sinks apply:
	// operator-facing timing output is the point of a cmd binary.
	strict := strings.HasPrefix(path, simPkgPrefix) &&
		path != telemetryPkg && !strings.HasPrefix(path, telemetryPkg+"/")
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			cf := &clockFlow{pass: pass, ff: newFuncFlow(pass, fn), strict: strict}
			cf.walk(fn.Body)
		}
	}
}

// clockFlow is the per-function sink walk.
type clockFlow struct {
	pass   *Pass
	ff     *funcFlow
	strict bool
}

func (cf *clockFlow) walk(body ast.Node) {
	pkg := cf.pass.Pkg.Path
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			if cf.strict && cf.tainted(s.Cond) {
				cf.pass.Reportf(s.Cond.Pos(), "",
					"timing-derived value controls a branch in simulation package %s; telemetry must measure, never steer", pkg)
			}
		case *ast.ForStmt:
			if cf.strict && s.Cond != nil && cf.tainted(s.Cond) {
				cf.pass.Reportf(s.Cond.Pos(), "",
					"timing-derived value controls a loop in simulation package %s; telemetry must measure, never steer", pkg)
			}
		case *ast.SwitchStmt:
			if cf.strict && s.Tag != nil && cf.tainted(s.Tag) {
				cf.pass.Reportf(s.Tag.Pos(), "",
					"timing-derived value controls a switch in simulation package %s; telemetry must measure, never steer", pkg)
			}
		case *ast.CaseClause:
			if !cf.strict {
				return true
			}
			for _, e := range s.List {
				if cf.tainted(e) {
					cf.pass.Reportf(e.Pos(), "",
						"timing-derived value controls a case in simulation package %s; telemetry must measure, never steer", pkg)
				}
			}
		case *ast.AssignStmt:
			if !cf.strict {
				return true
			}
			for i, lhs := range s.Lhs {
				// Stores into fields, elements or pointees are state;
				// plain local assignments are propagation, handled by the
				// taint index.
				switch ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				default:
					continue
				}
				var rhs ast.Expr
				if len(s.Lhs) == len(s.Rhs) {
					rhs = s.Rhs[i]
				} else if len(s.Rhs) == 1 {
					rhs = s.Rhs[0]
				}
				if rhs != nil && cf.tainted(rhs) {
					cf.pass.Reportf(rhs.Pos(), "",
						"timing-derived value stored into state in simulation package %s", pkg)
				}
			}
		case *ast.ReturnStmt:
			if !cf.strict {
				return true
			}
			for _, res := range s.Results {
				if cf.tainted(res) {
					cf.pass.Reportf(res.Pos(), "",
						"timing-derived value returned from simulation package %s", pkg)
				}
			}
		case *ast.CallExpr:
			cf.checkCall(s)
		}
		return true
	})
}

// checkCall applies the call sinks: seed arguments everywhere, and — in
// strict packages — any tainted argument escaping into a non-telemetry
// call.
func (cf *clockFlow) checkCall(call *ast.CallExpr) {
	pass := cf.pass
	if isConversion(pass, call) {
		return // conversions are taint propagation, not calls
	}
	fn := pass.calleeFunc(call)

	// Seed sinks, in every package. Every argument of a sink shapes the
	// seed (for DeriveSeed: base, stream and run all do).
	if isSeedSinkFunc(fn) {
		for _, arg := range call.Args {
			if cf.tainted(arg) {
				pass.Reportf(arg.Pos(), "",
					"timing-derived value seeds %s; seeds must be reproducible from Config alone", fn.FullName())
			}
		}
		return
	}
	if !cf.strict {
		return
	}
	// Telemetry's own surface is the sanctioned destination for timing
	// values (Hist.Observe, span plumbing).
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == telemetryPkg {
		return
	}
	for _, arg := range call.Args {
		if cf.tainted(arg) {
			pass.Reportf(arg.Pos(), "",
				"timing-derived value escapes into a call argument in simulation package %s", pass.Pkg.Path)
		}
	}
}

// isSeedSinkFunc matches the functions whose arguments become RNG seeds.
func isSeedSinkFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "NewSource", "NewPCG", "Seed":
			return true
		}
	}
	return isDeriveSeedFunc(fn)
}

// isConversion reports whether call is a type conversion like int64(x).
func isConversion(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// tainted reports whether expr provably carries a timing-derived value.
func (cf *clockFlow) tainted(expr ast.Expr) bool {
	return cf.taintedAt(expr, 0)
}

func (cf *clockFlow) taintedAt(expr ast.Expr, depth int) bool {
	if expr == nil || depth > 32 {
		return false
	}
	expr = ast.Unparen(expr)
	// Compile-time constants are never timing values.
	if tv, ok := cf.pass.Pkg.Info.Types[expr]; ok && tv.Value != nil {
		return false
	}
	switch e := expr.(type) {
	case *ast.BinaryExpr:
		return cf.taintedAt(e.X, depth+1) || cf.taintedAt(e.Y, depth+1)
	case *ast.UnaryExpr:
		return cf.taintedAt(e.X, depth+1)
	case *ast.StarExpr:
		return cf.taintedAt(e.X, depth+1)
	case *ast.IndexExpr:
		return cf.taintedAt(e.X, depth+1)
	case *ast.SliceExpr:
		return cf.taintedAt(e.X, depth+1)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if cf.taintedAt(elt, depth+1) {
				return true
			}
		}
		return false
	case *ast.SelectorExpr:
		// Field read off a tainted value stays tainted; package-qualified
		// identifiers resolve X to a PkgName and are never tainted.
		return cf.taintedAt(e.X, depth+1)
	case *ast.CallExpr:
		if isConversion(cf.pass, e) && len(e.Args) == 1 {
			return cf.taintedAt(e.Args[0], depth+1)
		}
		if isTimingSource(cf.pass.calleeFunc(e)) {
			return true
		}
		// A method chained off a tainted value keeps the taint
		// (d.Round(...), d.Seconds(), ...).
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			return cf.taintedAt(sel.X, depth+1)
		}
		return false
	case *ast.Ident:
		obj := cf.pass.ObjectOf(e)
		if _, ok := obj.(*types.Var); !ok {
			return false
		}
		defs := cf.ff.defs[obj]
		if len(defs) == 0 || cf.ff.visited[obj] {
			return false
		}
		cf.ff.visited[obj] = true
		defer delete(cf.ff.visited, obj)
		for _, d := range defs {
			if d.rhs != nil && cf.taintedAt(d.rhs, depth+1) {
				return true
			}
		}
		return false
	}
	return false
}

// isTimingSource matches the sanctioned timing doors: the time package's
// clock reads and the telemetry package's value-reading methods.
func isTimingSource(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "time":
		return timingTimeFuncs[fn.Name()]
	case telemetryPkg:
		return timingSourceMethods[fn.Name()]
	}
	return false
}
