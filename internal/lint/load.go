package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FindModuleRoot walks upward from dir to the directory containing go.mod
// and returns that directory plus the declared module path.
func FindModuleRoot(dir string) (root, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if mod, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(mod), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// loader type-checks module packages on demand. Imports within the module
// are resolved from source; everything else (the standard library) goes
// through go/importer's source importer, so no compiled artifacts or
// network access are needed.
type loader struct {
	fset       *token.FileSet
	root       string // module root directory (or corpus src root)
	modulePath string
	corpus     bool // corpus mode: any path with a directory under root is internal
	std        types.Importer
	cache      map[string]*Package // keyed by import path
	loading    map[string]bool     // import-cycle guard
}

func newLoader(root, modulePath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:       fset,
		root:       root,
		modulePath: modulePath,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if ld.internal(path) {
		pkg, err := ld.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

// internal reports whether path resolves inside the loaded tree rather than
// the standard library. In corpus mode any import with a package directory
// under the corpus src root shadows the real package of the same path —
// the analysistest trick that lets testdata packages pose as
// dcc/internal/runner and friends.
func (ld *loader) internal(path string) bool {
	if ld.corpus {
		if fi, err := os.Stat(ld.dirFor(path)); err == nil && fi.IsDir() {
			return true
		}
		return false
	}
	return path == ld.modulePath || strings.HasPrefix(path, ld.modulePath+"/")
}

// dirFor maps an internal import path to its directory.
func (ld *loader) dirFor(path string) string {
	if ld.corpus || path != ld.modulePath {
		rel := path
		if !ld.corpus {
			rel = strings.TrimPrefix(path, ld.modulePath+"/")
		}
		return filepath.Join(ld.root, filepath.FromSlash(rel))
	}
	return ld.root
}

// loadPath loads the internal package with the given import path.
func (ld *loader) loadPath(path string) (*Package, error) {
	if pkg, ok := ld.cache[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir := ld.dirFor(path)
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	// Test files are intentionally excluded (bp.GoFiles omits *_test.go):
	// the determinism contract governs shipped code, and tests may use
	// unsorted iteration or unseeded randomness freely.
	files := make(map[string]string, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		files[name] = string(data)
	}
	pkg, err := ld.check(path, dir, files)
	if err != nil {
		return nil, err
	}
	ld.cache[path] = pkg
	return pkg, nil
}

// check parses and type-checks one package from in-memory sources. Keys of
// files are file names; they are joined to dir for positions.
func (ld *loader) check(path, dir string, files map[string]string) (*Package, error) {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var astFiles []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), files[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Fset: ld.fset, Files: astFiles, Types: tpkg, Info: info}
	pkg.collectWaivers()
	return pkg, nil
}

// Load loads the packages matched by the given patterns, resolved relative
// to dir (which must be inside a module). Supported patterns: "./...",
// "./relative/path", "./relative/path/...". Directories named "testdata"
// or starting with "." or "_" are skipped by "..." expansion.
func Load(dir string, patterns ...string) ([]*Package, error) {
	root, modulePath, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	base, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ld := newLoader(root, modulePath)

	var dirs []string
	seen := make(map[string]bool)
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			start := filepath.Join(base, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != start && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				addDir(p)
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			addDir(filepath.Join(base, filepath.FromSlash(pat)))
		}
	}

	var pkgs []*Package
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: %s is outside module %s", d, root)
		}
		path := modulePath
		if rel != "." {
			path = modulePath + "/" + filepath.ToSlash(rel)
		}
		if _, err := build.ImportDir(d, 0); err != nil {
			if _, noGo := err.(*build.NoGoError); noGo {
				continue // directory without buildable Go files
			}
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		pkg, err := ld.loadPath(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadSource type-checks a single synthetic package given as file name →
// source text, under the given import path. Imports are resolved from the
// standard library only. Intended for analyzer tests.
func LoadSource(path string, files map[string]string) (*Package, error) {
	ld := newLoader(string(filepath.Separator), "synthetic/no/such/module")
	return ld.check(path, "", files)
}
