package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// StreamIDAnalyzer audits the DeriveSeed stream-id discipline. Seed streams
// are only disjoint if every Monte-Carlo loop passes its own named stream
// constant, so the analyzer (1) requires every stream argument of
// runner.DeriveSeed — and of wrappers that forward a parameter into it — to
// resolve to a named constant; (2) collects every such use and, after all
// packages are visited, flags distinct constants that share a value and
// single constants used from different functions (two loops drawing from
// one stream produce correlated runs). A function passing its own parameter
// through as the stream is recorded as a forwarder — its call sites are
// checked like DeriveSeed itself — but the pass-through site is still
// reported unless waived, so every trampoline is deliberate.
var StreamIDAnalyzer = &Analyzer{
	Name:   "streamid",
	Doc:    "DeriveSeed stream arguments must be named, globally disjoint constants",
	Run:    runStreamID,
	Finish: finishStreamID,
}

func runStreamID(pass *Pass) {
	// First pass: record forwarder facts for this package, so the second
	// pass (and dependent packages) treats wrappers as stream call sites.
	pass.forEachFuncDecl(func(fn *types.Func, decl *ast.FuncDecl) {
		if decl.Body == nil {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			arg := streamArgOf(pass, call)
			if arg == nil {
				return true
			}
			if idx := paramIndexOf(pass, fn, arg); idx >= 0 {
				pass.Facts.StreamForwarders[funcKey(fn)] = idx
			}
			return true
		})
	})

	// Second pass: classify every stream argument.
	pass.forEachFuncDecl(func(fn *types.Func, decl *ast.FuncDecl) {
		if decl.Body == nil {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			arg := streamArgOf(pass, call)
			if arg == nil {
				return true
			}
			if c := constOf(pass, arg); c != nil {
				val, _ := constant.Uint64Val(constant.ToInt(c.Val()))
				key := c.Name()
				if c.Pkg() != nil {
					key = c.Pkg().Path() + "." + c.Name()
				}
				pass.Facts.StreamUses = append(pass.Facts.StreamUses, StreamUse{
					ConstKey: key,
					Value:    val,
					FuncKey:  funcKey(fn),
					FuncName: fn.Name(),
					Pos:      pass.Pkg.Fset.Position(arg.Pos()),
					Waived:   pass.Pkg.waived(pass.Analyzer.Name, "", arg.Pos()),
				})
				return true
			}
			if idx := paramIndexOf(pass, fn, arg); idx >= 0 {
				pass.Reportf(arg.Pos(), "",
					"stream argument is the function's own parameter; callers of %s are checked in its place — waive if this forwarder is deliberate", fn.Name())
				return true
			}
			pass.Reportf(arg.Pos(), "",
				"stream argument must be a named stream constant, not %s", describeExpr(arg))
			return true
		})
	})
}

// streamArgOf returns the stream argument expression of call if call
// invokes runner.DeriveSeed or a recorded forwarder (nil otherwise).
func streamArgOf(pass *Pass, call *ast.CallExpr) ast.Expr {
	fn := pass.calleeFunc(call)
	if fn == nil {
		return nil
	}
	idx := -1
	if isDeriveSeedFunc(fn) {
		idx = 1
	} else if i, ok := pass.Facts.StreamForwarders[funcKey(fn)]; ok {
		idx = i
	}
	if idx < 0 || idx >= len(call.Args) {
		return nil
	}
	return ast.Unparen(call.Args[idx])
}

// constOf resolves expr to the named constant it denotes, through a plain
// identifier or a package selector (nil otherwise).
func constOf(pass *Pass, expr ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, _ := pass.ObjectOf(id).(*types.Const)
	return c
}

// paramIndexOf returns the index of expr among fn's parameters, or -1.
func paramIndexOf(pass *Pass, fn *types.Func, expr ast.Expr) int {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return -1
	}
	obj := pass.ObjectOf(id)
	if obj == nil {
		return -1
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i
		}
	}
	return -1
}

func describeExpr(e ast.Expr) string {
	switch e.(type) {
	case *ast.BasicLit:
		return "a literal"
	case *ast.BinaryExpr:
		return "an arithmetic expression"
	case *ast.CallExpr:
		return "a call result"
	default:
		return "a computed value"
	}
}

// finishStreamID runs the whole-module duplicate checks over the collected
// stream uses.
func finishStreamID(facts *Facts, report func(Diagnostic)) {
	// Distinct constants sharing a value: streams collide outright.
	byValue := make(map[uint64][]StreamUse)
	for _, u := range facts.StreamUses {
		byValue[u.Value] = append(byValue[u.Value], u)
	}
	for _, uses := range byValue {
		consts := make(map[string]bool)
		for _, u := range uses {
			consts[u.ConstKey] = true
		}
		if len(consts) < 2 {
			continue
		}
		reported := make(map[string]bool)
		for _, u := range uses {
			if u.Waived || reported[u.ConstKey] {
				continue
			}
			reported[u.ConstKey] = true
			others := make([]string, 0, len(consts)-1)
			for c := range consts {
				if c != u.ConstKey {
					others = append(others, c)
				}
			}
			sort.Strings(others)
			report(Diagnostic{
				Pos:      u.Pos,
				Analyzer: "streamid",
				Message: fmt.Sprintf("stream constant %s (= %d) has the same value as %s; stream ids must be globally unique",
					u.ConstKey, u.Value, strings.Join(others, ", ")),
			})
		}
	}

	// One constant drawn from several functions: two Monte-Carlo loops
	// sharing a stream produce correlated runs.
	byConst := make(map[string]map[string]bool)
	for _, u := range facts.StreamUses {
		funcs := byConst[u.ConstKey]
		if funcs == nil {
			funcs = make(map[string]bool)
			byConst[u.ConstKey] = funcs
		}
		funcs[u.FuncKey] = true
	}
	for constKey, funcs := range byConst {
		if len(funcs) < 2 {
			continue
		}
		names := make([]string, 0, len(funcs))
		for f := range funcs {
			names = append(names, f)
		}
		sort.Strings(names)
		reported := make(map[string]bool)
		for _, u := range facts.StreamUses {
			if u.ConstKey != constKey || u.Waived || reported[u.FuncKey] {
				continue
			}
			reported[u.FuncKey] = true
			report(Diagnostic{
				Pos:      u.Pos,
				Analyzer: "streamid",
				Message: fmt.Sprintf("stream constant %s is used by %d functions (%s); each Monte-Carlo loop needs its own stream",
					constKey, len(funcs), strings.Join(names, ", ")),
			})
		}
	}
}
