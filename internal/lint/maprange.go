package lint

import (
	"go/ast"
	"go/types"
)

// MapRangeAnalyzer flags `range` over a map in a deterministic package
// (DeterministicPkgs). Go randomizes map iteration order, so any such loop
// in a protocol or graph-algebra path silently breaks the "reproducible
// from Config alone" guarantee.
//
// Two escapes exist:
//
//   - Sorted-before-use: when the loop only collects keys/values into
//     slices that are passed to a sort/slices call later in the same
//     function, the iteration order cannot leak into results.
//   - Explicit waiver: `//lint:ordered <reason>` on the range line or the
//     line above, for loops that are order-independent for a subtler
//     reason (∃/∀ reductions, pure map-to-map rewrites, ...).
var MapRangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc:  "range over a map in a deterministic package without sorting or a //lint:ordered waiver",
	Run:  runMapRange,
}

func runMapRange(pass *Pass) {
	if !DeterministicPkgs[pass.Pkg.Path] {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkMapRangesIn(pass, fn.Body)
			return true
		})
	}
}

// checkMapRangesIn flags unsorted map ranges anywhere inside body, treating
// body as the scope in which a later sort call may launder the order.
func checkMapRangesIn(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if sortedAfter(pass, body, rs) {
			return true
		}
		pass.Reportf(rs.For, "ordered",
			"range over map %s in deterministic package %s: sort the keys before use or add //lint:ordered <reason>",
			types.TypeString(t, types.RelativeTo(pass.Pkg.Types)), pass.Pkg.Path)
		return true
	})
}

// sortedAfter reports whether every slice appended to inside the range body
// is later (after the loop, within scope) passed to a sort.* or slices.*
// call — the "collect then sort" idiom, whose results are order-independent.
func sortedAfter(pass *Pass, scope *ast.BlockStmt, rs *ast.RangeStmt) bool {
	collected := make(map[types.Object]bool)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil {
					collected[obj] = true
				}
			}
		}
		return true
	})
	if len(collected) == 0 {
		return false
	}
	sorted := false
	ast.Inspect(scope, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.ObjectOf(pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if usesAny(pass, arg, collected) {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// usesAny reports whether expr mentions any of the given objects.
func usesAny(pass *Pass, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[pass.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}
