package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file implements the intraprocedural value-flow tracking the dataflow
// analyzers (seedflow, hotalloc) are built on: expressions are classified
// by following assignments, calls and returns within one package, with
// conservative cross-package propagation via Facts (a function analyzed in
// a dependency exports whether its result is a derived seed; dependents
// only see the fact). "Conservative" throughout means: when the flow cannot
// be proven, the classification decays to originUnknown and nothing is
// flagged — the analyzers only report provably bad dataflow.

// origin classifies where a seed expression's value comes from.
type origin int

const (
	// originUnknown: not provable either way (parameters, results of
	// unclassified calls, merged branches). Never flagged.
	originUnknown origin = iota
	// originDerived: traces to runner.DeriveSeed (directly or through a
	// fact-carrying wrapper). The blessed form everywhere.
	originDerived
	// originConfig: a Seed field read off a Config/Options struct. Fine as
	// the base of a derivation; flagged when re-seeding inside a loop
	// (every iteration would see the same stream).
	originConfig
	// originLiteral: a compile-time constant. Raw literal seeds bypass the
	// DeriveSeed stream discipline.
	originLiteral
	// originArith: an arithmetic combination (seed+run*31, seed^salt, ...)
	// that did not go through DeriveSeed — the overlapping-streams bug
	// class PR 2 removed.
	originArith
)

func (o origin) String() string {
	switch o {
	case originDerived:
		return "derived"
	case originConfig:
		return "config"
	case originLiteral:
		return "literal"
	case originArith:
		return "arithmetic"
	default:
		return "unknown"
	}
}

// arithOps are the binary operators whose use on a seed counts as ad-hoc
// arithmetic derivation.
var arithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.AND: true, token.OR: true, token.XOR: true,
	token.SHL: true, token.SHR: true, token.AND_NOT: true,
}

// flowDef is one reaching definition of a local variable.
type flowDef struct {
	rhs    ast.Expr // nil when the definition is opaque (range clause, ...)
	arith  bool     // definition via ++/--/op= with an arithmetic operator
	opaque bool
}

// funcFlow is the value-flow context of one outermost function declaration:
// an index of every assignment to every local object, including inside
// nested function literals.
type funcFlow struct {
	pass    *Pass
	defs    map[types.Object][]flowDef
	visited map[types.Object]bool // recursion guard for originOf/scratchBacked
}

// newFuncFlow indexes the assignments of fn (body may be nil for
// declarations without bodies).
func newFuncFlow(pass *Pass, fn *ast.FuncDecl) *funcFlow {
	ff := &funcFlow{
		pass:    pass,
		defs:    make(map[types.Object][]flowDef),
		visited: make(map[types.Object]bool),
	}
	if fn.Body == nil {
		return ff
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
				if len(s.Lhs) == len(s.Rhs) {
					for i := range s.Lhs {
						ff.addDef(s.Lhs[i], flowDef{rhs: s.Rhs[i]})
					}
				} else {
					// Multi-value call/comma-ok: opaque.
					for _, lhs := range s.Lhs {
						ff.addDef(lhs, flowDef{opaque: true})
					}
				}
				return true
			}
			// Compound assignment x op= y: arithmetic ops derive, the rest
			// are opaque.
			for _, lhs := range s.Lhs {
				ff.addDef(lhs, flowDef{arith: arithAssign(s.Tok), opaque: !arithAssign(s.Tok)})
			}
		case *ast.IncDecStmt:
			ff.addDef(s.X, flowDef{arith: true})
		case *ast.RangeStmt:
			if s.Key != nil {
				ff.addDef(s.Key, flowDef{opaque: true})
			}
			if s.Value != nil {
				ff.addDef(s.Value, flowDef{opaque: true})
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) {
					ff.addDef(name, flowDef{rhs: s.Values[i]})
				}
			}
		}
		return true
	})
	return ff
}

func arithAssign(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN,
		token.REM_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN,
		token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
		return true
	}
	return false
}

func (ff *funcFlow) addDef(lhs ast.Expr, def flowDef) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := ff.pass.ObjectOf(id)
	if obj == nil {
		return
	}
	ff.defs[obj] = append(ff.defs[obj], def)
}

// originOf classifies a seed expression. The depth cap bounds pathological
// assignment chains; past it the result decays to unknown.
func (ff *funcFlow) originOf(expr ast.Expr, depth int) origin {
	if depth > 32 {
		return originUnknown
	}
	expr = ast.Unparen(expr)

	// Compile-time constants (literals, named constants, constant
	// arithmetic) are all raw literal seeds.
	if tv, ok := ff.pass.Pkg.Info.Types[expr]; ok && tv.Value != nil {
		return originLiteral
	}

	switch e := expr.(type) {
	case *ast.BinaryExpr:
		if arithOps[e.Op] {
			return originArith
		}
		return originUnknown
	case *ast.UnaryExpr:
		if arithOps[e.Op] || e.Op == token.SUB {
			return originArith
		}
		return originUnknown
	case *ast.CallExpr:
		// Conversions like int64(x) are transparent.
		if len(e.Args) == 1 {
			if tv, ok := ff.pass.Pkg.Info.Types[e.Fun]; ok && tv.IsType() {
				return ff.originOf(e.Args[0], depth+1)
			}
		}
		fn := ff.pass.calleeFunc(e)
		if fn == nil {
			return originUnknown
		}
		if isDeriveSeedFunc(fn) || ff.pass.isSeedDeriver(fn) {
			return originDerived
		}
		return originUnknown
	case *ast.SelectorExpr:
		// A Seed field read off any struct counts as a Config seed: the
		// repository convention keeps base seeds in Config/Options fields.
		if v, ok := ff.pass.ObjectOf(e.Sel).(*types.Var); ok && v.IsField() &&
			strings.Contains(v.Name(), "Seed") {
			return originConfig
		}
		return originUnknown
	case *ast.Ident:
		obj := ff.pass.ObjectOf(e)
		v, ok := obj.(*types.Var)
		if !ok {
			return originUnknown
		}
		if v.IsField() {
			if strings.Contains(v.Name(), "Seed") {
				return originConfig
			}
			return originUnknown
		}
		defs := ff.defs[obj]
		if len(defs) == 0 {
			return originUnknown // parameter or out-of-function state
		}
		if ff.visited[obj] {
			return originUnknown
		}
		ff.visited[obj] = true
		defer delete(ff.visited, obj)
		return ff.joinDefs(defs, depth)
	}
	return originUnknown
}

// joinDefs merges the origins of every reaching definition. The join is
// flag-conservative: a variable is only classified as bad when every
// definition is bad (all-literal, or all literal/arithmetic), and only as
// derived/config when every definition agrees.
func (ff *funcFlow) joinDefs(defs []flowDef, depth int) origin {
	merged := origin(-1)
	for _, d := range defs {
		var o origin
		switch {
		case d.opaque:
			o = originUnknown
		case d.arith:
			o = originArith
		default:
			o = ff.originOf(d.rhs, depth+1)
		}
		if merged == -1 {
			merged = o
			continue
		}
		if merged == o {
			continue
		}
		// literal ∪ arith stays arith (both bad); anything else decays.
		if (merged == originLiteral || merged == originArith) &&
			(o == originLiteral || o == originArith) {
			merged = originArith
			continue
		}
		return originUnknown
	}
	if merged == -1 {
		return originUnknown
	}
	return merged
}

// isDeriveSeedFunc recognizes the canonical runner.DeriveSeed.
func isDeriveSeedFunc(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == runnerPkg && fn.Name() == "DeriveSeed"
}

// isSeedDeriver reports (and lazily computes, for functions of the current
// package) whether fn's result provably traces to runner.DeriveSeed on
// every return path. Cross-package lookups hit only the fact store:
// packages are analyzed in import-path order, so a dependency's wrappers
// are already recorded.
func (p *Pass) isSeedDeriver(fn *types.Func) bool {
	key := fn.FullName()
	if v, ok := p.Facts.SeedDerivers[key]; ok {
		return v > 0
	}
	decl := p.Pkg.declOf(fn)
	if decl == nil || decl.Body == nil {
		p.Facts.SeedDerivers[key] = -1
		return false
	}
	// Mark in-progress (recursive wrappers resolve to "not a deriver").
	p.Facts.SeedDerivers[key] = -1

	// Only single-result functions can be seed derivers.
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() != 1 {
		return false
	}
	ff := newFuncFlow(p, decl)
	derived := false
	ok := true
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // returns inside closures are not fn's returns
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet || len(ret.Results) != 1 {
			return true
		}
		if ff.originOf(ret.Results[0], 0) == originDerived {
			derived = true
		} else {
			ok = false
		}
		return true
	})
	if derived && ok {
		p.Facts.SeedDerivers[key] = 1
		return true
	}
	return false
}

// scratchCarrierNames are the type names whose fields hold amortized,
// reusable storage: appends that provably target them are not hot-path
// allocations (growth is bounded and reused across calls).
var scratchCarrierNames = map[string]bool{
	"Scratch":   true, // dcc/internal/graph
	"Workspace": true, // dcc/internal/cycles
	"Echelon":   true, // dcc/internal/bitvec
	"Tester":    true, // dcc/internal/vpt
}

// isScratchCarrier reports whether t (possibly a pointer) is one of the
// reusable-buffer carrier types.
func isScratchCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return scratchCarrierNames[named.Obj().Name()]
}

// scratchBacked reports whether a slice expression provably aliases the
// storage of a scratch carrier: a field of Scratch/Workspace/..., a reslice
// of one, or a local whose every definition traces back to one (the
// `queue := s.queue[:0]; queue = append(queue, ...)` idiom).
func (ff *funcFlow) scratchBacked(expr ast.Expr, depth int) bool {
	if depth > 32 {
		return false
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		return isScratchCarrier(ff.pass.TypeOf(e.X))
	case *ast.SliceExpr:
		return ff.scratchBacked(e.X, depth+1)
	case *ast.CallExpr:
		// append(scratchBacked, ...) stays scratch-backed.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			if _, isBuiltin := ff.pass.ObjectOf(id).(*types.Builtin); isBuiltin {
				return ff.scratchBacked(e.Args[0], depth+1)
			}
		}
		return false
	case *ast.Ident:
		obj := ff.pass.ObjectOf(e)
		if obj == nil {
			return false
		}
		defs := ff.defs[obj]
		if len(defs) == 0 || ff.visited[obj] {
			return false
		}
		ff.visited[obj] = true
		defer delete(ff.visited, obj)
		any := false
		for _, d := range defs {
			if d.opaque || d.arith || d.rhs == nil {
				continue
			}
			// Self-referential defs (x = append(x, ...)) neither prove nor
			// disprove; a cycle hit returns false and is tolerated as long
			// as one def resolves.
			if ff.scratchBacked(d.rhs, depth+1) {
				any = true
			} else if !mentionsObj(ff.pass, d.rhs, obj) {
				return false // a genuinely foreign definition vetoes
			}
		}
		return any
	}
	return false
}

// mentionsObj reports whether expr references obj (used to recognize
// self-referential definitions like x = append(x, y)).
func mentionsObj(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
