package lint

import (
	"fmt"
	"go/build"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Golden-corpus harness (analysistest-style, stdlib only): a corpus is a
// directory holding an src/ tree of mini-packages whose import paths are
// their src-relative paths — so a corpus can pose as dcc/internal/runner or
// dcc/internal/graph and exercise analyzers whose rules key off real import
// paths. Expected findings are written next to the code they anchor to:
//
//	rng := rand.New(rand.NewSource(42)) // want `seed .* is a raw literal`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match one diagnostic ("analyzer: message") reported
// on that line; DiffCorpus returns one problem string per unmatched
// expectation and per unexpected diagnostic.

// LoadCorpus loads every package under dir/src (the corpus tree), sorted by
// import path — the same dependency-friendly order Load produces.
func LoadCorpus(dir string) ([]*Package, error) {
	src := filepath.Join(dir, "src")
	ld := newLoader(src, "")
	ld.corpus = true

	var paths []string
	err := filepath.WalkDir(src, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if _, err := build.ImportDir(p, 0); err != nil {
			if _, noGo := err.(*build.NoGoError); noGo {
				return nil // intermediate directory
			}
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		paths = append(paths, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: corpus %s: %w", dir, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("lint: corpus %s has no packages under src/", dir)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := ld.loadPath(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// wantExpectation is one parsed // want "..." assertion.
type wantExpectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantMarker = regexp.MustCompile(`//\s*want\s`)

// collectWants parses the // want expectations of every corpus file.
func collectWants(pkgs []*Package) ([]*wantExpectation, error) {
	var wants []*wantExpectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					loc := wantMarker.FindStringIndex(c.Text)
					if loc == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimSpace(c.Text[loc[1]:])
					n := 0
					for rest != "" {
						q, err := strconv.QuotedPrefix(rest)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: malformed want expectation %q: %v",
								pos.Filename, pos.Line, rest, err)
						}
						pattern, err := strconv.Unquote(q)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: %q: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v",
								pos.Filename, pos.Line, pattern, err)
						}
						wants = append(wants, &wantExpectation{
							file: pos.Filename,
							line: pos.Line,
							re:   re,
							raw:  pattern,
						})
						n++
						rest = strings.TrimSpace(rest[len(q):])
					}
					if n == 0 {
						return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern",
							pos.Filename, pos.Line)
					}
				}
			}
		}
	}
	return wants, nil
}

// DiffCorpus runs no analysis itself: it reconciles already-produced
// diagnostics against the corpus's // want expectations and returns one
// human-readable problem per mismatch (empty means the corpus is golden).
func DiffCorpus(pkgs []*Package, diags []Diagnostic) ([]string, error) {
	wants, err := collectWants(pkgs)
	if err != nil {
		return nil, err
	}
	byLine := make(map[string][]*wantExpectation)
	key := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	for _, w := range wants {
		k := key(w.file, w.line)
		byLine[k] = append(byLine[k], w)
	}
	var problems []string
	for _, d := range diags {
		rendered := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range byLine[key(d.Pos.Filename, d.Pos.Line)] {
			if !w.matched && w.re.MatchString(rendered) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matching %q",
				w.file, w.line, w.raw))
		}
	}
	return problems, nil
}
