package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// HotAllocAnalyzer guards the allocation-free hot paths. Functions marked
// //lint:hotpath are roots (the vpt.Cache deletability test path); every
// function reachable from a root through the approximate call graph is hot,
// and allocation expressions there — make, new, slice/map composite
// literals, &T{} and append — are flagged unless the storage provably
// belongs to a scratch carrier (graph.Scratch, cycles.Workspace,
// bitvec.Echelon, vpt.Tester): appends into carrier fields and
// makes/literals assigned directly to them are amortized by construction.
// Value composite literals (Vector{...}, Edge{...}) do not heap-allocate
// and are not flagged. A //lint:ignore hotalloc waiver on an allocation
// line waives that site; on the function declaration line it waives the
// whole function (for the deliberate cold setup paths that hot functions
// share code with). Reachability crosses packages: call edges and sites are
// accumulated per package and resolved in the Finish hook.
var HotAllocAnalyzer = &Analyzer{
	Name:   "hotalloc",
	Doc:    "no allocation in functions reachable from //lint:hotpath roots",
	Run:    runHotAlloc,
	Finish: finishHotAlloc,
}

func runHotAlloc(pass *Pass) {
	pass.forEachFuncDecl(func(fn *types.Func, decl *ast.FuncDecl) {
		pass.collectCallEdges(fn, decl)
		if pass.Pkg.hotpathRoot(decl.Pos()) {
			pass.Facts.HotRoots = append(pass.Facts.HotRoots, funcKey(fn))
		}
		if decl.Body == nil {
			return
		}
		funcWaived := pass.Pkg.waived(pass.Analyzer.Name, "", decl.Pos())
		ff := newFuncFlow(pass, decl)
		exempt := scratchAssignedExprs(pass, decl)
		key := funcKey(fn)

		record := func(pos ast.Node, kind, detail string) {
			pass.Facts.AllocSites = append(pass.Facts.AllocSites, AllocSite{
				FuncKey: key,
				Kind:    kind,
				Detail:  detail,
				Pos:     pass.Pkg.Fset.Position(pos.Pos()),
				Waived:  funcWaived || pass.Pkg.waived(pass.Analyzer.Name, "", pos.Pos()),
			})
		}

		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				id, ok := ast.Unparen(e.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); !isBuiltin {
					return true
				}
				switch id.Name {
				case "make", "new":
					if !exempt[ast.Expr(e)] {
						detail := ""
						if len(e.Args) > 0 {
							detail = types.ExprString(e.Args[0])
						}
						record(e, id.Name, detail)
					}
				case "append":
					if len(e.Args) > 0 && !ff.scratchBacked(e.Args[0], 0) {
						record(e, "append", types.ExprString(e.Args[0]))
					}
				}
			case *ast.UnaryExpr:
				// &T{...} escapes to the heap.
				if lit, ok := e.X.(*ast.CompositeLit); ok && !exempt[ast.Expr(e)] {
					record(e, "heap composite literal", types.ExprString(lit.Type))
				}
			case *ast.CompositeLit:
				// Slice and map literals allocate backing storage; value
				// struct/array literals do not.
				if exempt[ast.Expr(e)] {
					return true
				}
				switch pass.TypeOf(e).Underlying().(type) {
				case *types.Slice:
					record(e, "slice literal", types.ExprString(e.Type))
				case *types.Map:
					record(e, "map literal", types.ExprString(e.Type))
				}
			}
			return true
		})
	})
}

// scratchAssignedExprs collects right-hand sides assigned directly into a
// field of a scratch carrier (s.stamp = make(...), e.byPiv = make(...)):
// those allocations (re)establish the amortized buffers themselves.
func scratchAssignedExprs(pass *Pass, decl *ast.FuncDecl) map[ast.Expr]bool {
	exempt := make(map[ast.Expr]bool)
	if decl.Body == nil {
		return exempt
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if isScratchCarrier(pass.TypeOf(sel.X)) {
				exempt[ast.Unparen(assign.Rhs[i])] = true
			}
		}
		return true
	})
	return exempt
}

// finishHotAlloc computes the set of functions reachable from the
// //lint:hotpath roots and reports the unwaived allocation sites inside it.
func finishHotAlloc(facts *Facts, report func(Diagnostic)) {
	reachable := make(map[string]bool)
	queue := append([]string(nil), facts.HotRoots...)
	for _, r := range queue {
		reachable[r] = true
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range facts.CallEdges[fn] {
			if !reachable[callee] {
				reachable[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	sites := append([]AllocSite(nil), facts.AllocSites...)
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i].Pos, sites[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, s := range sites {
		if s.Waived || !reachable[s.FuncKey] {
			continue
		}
		detail := ""
		if s.Detail != "" {
			detail = fmt.Sprintf(" of %s", s.Detail)
		}
		report(Diagnostic{
			Pos:      s.Pos,
			Analyzer: "hotalloc",
			Message: fmt.Sprintf("%s%s in %s, which is reachable from a //lint:hotpath root; reuse a scratch buffer or waive with a reason",
				s.Kind, detail, s.FuncKey),
		})
	}
}
