package lint

import (
	"go/ast"
	"go/types"
)

// This file builds the approximate module-internal call graph the hotalloc
// reachability walk runs on: edges are statically resolved calls (plain
// identifiers and selectors); calls through function values, interfaces and
// deferred method values are conservatively missed. Function-literal bodies
// are attributed to their enclosing declaration — a closure's allocations
// and calls belong to the function that runs it.

// declOf returns the *ast.FuncDecl declaring fn, for functions declared in
// this package (nil otherwise). The index is built lazily on first use.
func (p *Package) declOf(fn *types.Func) *ast.FuncDecl {
	if p.decls == nil {
		p.decls = make(map[types.Object]*ast.FuncDecl)
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					if obj := p.Info.Defs[fd.Name]; obj != nil {
						p.decls[obj] = fd
					}
				}
			}
		}
	}
	return p.decls[fn]
}

// funcKey is the cross-package-stable identity of a function:
// types.Func.FullName(), e.g. "dcc/internal/runner.DeriveSeed" or
// "(*dcc/internal/vpt.Cache).Deletable".
func funcKey(fn *types.Func) string { return fn.FullName() }

// forEachFuncDecl invokes visit for every function declaration of the
// package (with its *types.Func), in file then declaration order.
func (p *Pass) forEachFuncDecl(visit func(fn *types.Func, decl *ast.FuncDecl)) {
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			visit(fn, fd)
		}
	}
}

// collectCallEdges records fn's statically resolved callees (including
// those inside nested function literals) into the fact store.
func (p *Pass) collectCallEdges(fn *types.Func, decl *ast.FuncDecl) {
	if decl.Body == nil {
		return
	}
	caller := funcKey(fn)
	seen := make(map[string]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := p.calleeFunc(call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		key := funcKey(callee)
		if !seen[key] {
			seen[key] = true
			p.Facts.CallEdges[caller] = append(p.Facts.CallEdges[caller], key)
		}
		return true
	})
}

// enclosingFunc returns the key and display name of the outermost function
// declaration whose body contains pos ("" if at package scope). Used by
// streamid to attribute call sites to their Monte-Carlo loop.
func (p *Pass) enclosingFunc(pos ast.Node) (key, name string) {
	target := pos.Pos()
	for _, f := range p.Pkg.Files {
		if f.FileStart <= target && target < f.FileEnd {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fd.Body.Pos() <= target && target < fd.Body.End() {
					if fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
						return funcKey(fn), fd.Name.Name
					}
				}
			}
		}
	}
	return "", ""
}
