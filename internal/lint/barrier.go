package lint

import (
	"go/ast"
	"go/types"
)

// BarrierAnalyzer enforces the runner.Map task-closure hygiene of DESIGN.md
// §9: a task must communicate only through its return value, which the pool
// slots into the results slice at the task's own index — the join is the
// barrier, and everything observable must happen after it. Inside a task
// closure the analyzer flags (1) writes to captured variables, except
// stores to a captured slice at exactly the closure's own index parameter;
// (2) calls to pointer-receiver methods of the deterministic packages on
// captured values (those methods mutate shared engine state — a data race
// and an iteration-order hazard even when guarded, since completion order
// is scheduler-dependent); and (3) I/O — fmt printing or Write-family
// method calls on captured writers — which would interleave output before
// the barrier. Provably task-local state (declared inside the closure)
// is exempt.
var BarrierAnalyzer = &Analyzer{
	Name: "barrier",
	Doc:  "runner.Map task closures must not mutate shared state or emit output before the barrier",
	Run:  runBarrier,
}

func runBarrier(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.calleeFunc(call)
			if fn == nil || fn.Pkg() == nil ||
				fn.Pkg().Path() != runnerPkg || fn.Name() != "Map" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			task, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
			if !ok {
				return true
			}
			checkTaskClosure(pass, task)
			return true
		})
	}
}

// checkTaskClosure walks one runner.Map task body. Nested function literals
// are part of the task: the capture boundary is the task closure itself.
func checkTaskClosure(pass *Pass, task *ast.FuncLit) {
	indexParam := taskIndexParam(pass, task)
	captured := func(obj types.Object) bool {
		return obj != nil &&
			(obj.Pos() < task.Pos() || obj.Pos() >= task.End())
	}

	ast.Inspect(task.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				checkWrite(pass, lhs, indexParam, captured)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, s.X, indexParam, captured)
		case *ast.UnaryExpr:
			// &captured escaping into a call is beyond this analyzer;
			// mutation through it is caught by the race-detector gate.
		case *ast.CallExpr:
			checkTaskCall(pass, s, captured)
		}
		return true
	})
}

// taskIndexParam returns the object of the task closure's index parameter
// (the int argument runner.Map invokes the task with), or nil.
func taskIndexParam(pass *Pass, task *ast.FuncLit) types.Object {
	params := task.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return nil
	}
	return pass.ObjectOf(params.List[0].Names[0])
}

// checkWrite flags an assignment target that reaches captured state. The
// one blessed shape is captured[i] = ... with i exactly the task's index
// parameter — each task owns that slot by construction.
func checkWrite(pass *Pass, lhs ast.Expr, indexParam types.Object, captured func(types.Object) bool) {
	lhs = ast.Unparen(lhs)
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		if base := baseObject(pass, idx.X); captured(base) {
			if id, ok := ast.Unparen(idx.Index).(*ast.Ident); ok &&
				indexParam != nil && pass.ObjectOf(id) == indexParam {
				return // the task's own slot
			}
			pass.Reportf(lhs.Pos(), "",
				"task closure writes to captured %q at an index other than the task's own; return the value through runner.Map instead", baseObject(pass, idx.X).Name())
			return
		}
	}
	if obj := baseObject(pass, lhs); captured(obj) {
		pass.Reportf(lhs.Pos(), "",
			"task closure writes to captured %q before the barrier; return the value through runner.Map instead", obj.Name())
	}
}

// checkTaskCall flags I/O and deterministic-package mutation reached
// through captured values.
func checkTaskCall(pass *Pass, call *ast.CallExpr, captured func(types.Object) bool) {
	fn := pass.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// fmt printing: output before the barrier interleaves across workers.
	if fn.Pkg().Path() == "fmt" && ioFuncNames[fn.Name()] {
		pass.Reportf(call.Pos(), "",
			"task closure calls fmt.%s before the barrier; collect results and emit after runner.Map returns", fn.Name())
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := baseObject(pass, sel.X)
	if !captured(recv) {
		return
	}
	// Write-family methods on a captured receiver: emission before the
	// barrier regardless of the concrete writer.
	if ioMethodNames[fn.Name()] {
		pass.Reportf(call.Pos(), "",
			"task closure calls %s.%s before the barrier; collect results and emit after runner.Map returns", recv.Name(), fn.Name())
		return
	}
	// Pointer-receiver methods of the deterministic packages mutate engine
	// state shared across tasks.
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return
	}
	if _, isPtr := sig.Recv().Type().(*types.Pointer); !isPtr {
		return
	}
	if DeterministicPkgs[fn.Pkg().Path()] {
		pass.Reportf(call.Pos(), "",
			"task closure calls pointer-receiver method (%s).%s on captured %q; shared deterministic-engine state must not be touched from tasks", sig.Recv().Type(), fn.Name(), recv.Name())
	}
}

var ioFuncNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

var ioMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
}

// baseObject peels selectors, indexes, stars and parens off expr and
// resolves the base identifier's object (nil if the base is not a plain
// identifier).
func baseObject(pass *Pass, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			return pass.ObjectOf(e)
		default:
			return nil
		}
	}
}
