package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DroppedErrAnalyzer flags calls whose error result is silently discarded:
// a call used as a bare statement (or in defer/go) when its results include
// an error. Assigning the error to `_` is an explicit, visible discard and
// is not flagged. Print-style helpers and in-memory writers that cannot
// meaningfully fail are exempt.
var DroppedErrAnalyzer = &Analyzer{
	Name: "droppederr",
	Doc:  "call discards an error result; handle it or assign to _ explicitly",
	Run:  runDroppedErr,
}

func runDroppedErr(pass *Pass) {
	check := func(call *ast.CallExpr, keyword string) {
		if !returnsError(pass, call) || errExempt(pass, call) {
			return
		}
		pass.Reportf(call.Pos(), "",
			"%sdiscards error result of %s; handle it or assign to _", keyword, calleeName(pass, call))
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					check(call, "")
				}
			case *ast.DeferStmt:
				check(s.Call, "defer ")
			case *ast.GoStmt:
				check(s.Call, "go ")
			}
			return true
		})
	}
}

// returnsError reports whether any result of the call is of type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// errExempt reports whether the callee is on the can't-usefully-fail list:
// fmt's print family (errors only on broken writers; stdout/stderr
// diagnostics are fire-and-forget) and the in-memory writers bytes.Buffer
// and strings.Builder, whose Write methods are documented to always return
// a nil error.
func errExempt(pass *Pass, call *ast.CallExpr) bool {
	fn := pass.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	return full == "bytes.Buffer" || full == "strings.Builder"
}

// calleeName renders the called function for the diagnostic message.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	if fn := pass.calleeFunc(call); fn != nil {
		sig, _ := fn.Type().(*types.Signature)
		if fn.Pkg() != nil && sig != nil && sig.Recv() == nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}
