package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// runCase type-checks a synthetic package and returns the rendered
// diagnostics of the given analyzers.
func runCase(t *testing.T, pkgPath string, files map[string]string, analyzers ...*Analyzer) []string {
	t.Helper()
	pkg, err := LoadSource(pkgPath, files)
	if err != nil {
		t.Fatalf("LoadSource: %v", err)
	}
	diags := Run([]*Package{pkg}, analyzers)
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}

func expect(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d\ngot:  %q\nwant: %q", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
}

// TestCorpus runs each analyzer against its golden corpus under
// testdata/<name>/src and reconciles the diagnostics with the // want
// expectations written next to the code. The badwaiver corpus runs with no
// analyzers at all: waiver validation is part of Run itself.
func TestCorpus(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatalf("no testdata corpus tree: %v", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			var analyzers []*Analyzer
			if name != "badwaiver" {
				analyzers, err = AnalyzersByName(name)
				if err != nil {
					t.Fatalf("corpus dir %q does not name an analyzer: %v", name, err)
				}
			}
			pkgs, err := LoadCorpus(filepath.Join("testdata", name))
			if err != nil {
				t.Fatalf("LoadCorpus: %v", err)
			}
			wants, err := collectWants(pkgs)
			if err != nil {
				t.Fatal(err)
			}
			if len(wants) == 0 {
				t.Fatalf("corpus %q has no // want expectations: it cannot prove the analyzer fires", name)
			}
			diags := Run(pkgs, analyzers)
			problems, err := DiffCorpus(pkgs, diags)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range problems {
				t.Error(p)
			}
		})
	}
}

// TestCorpusCoversEveryAnalyzer is the no-silently-dead-analyzer gate:
// every registered analyzer must have a golden corpus, and every corpus
// asserts at least one finding (checked in TestCorpus).
func TestCorpusCoversEveryAnalyzer(t *testing.T) {
	for _, a := range Analyzers() {
		dir := filepath.Join("testdata", a.Name)
		info, err := os.Stat(filepath.Join(dir, "src"))
		if err != nil || !info.IsDir() {
			t.Errorf("analyzer %s has no golden corpus at %s/src", a.Name, dir)
		}
	}
}

func TestAnalyzersByName(t *testing.T) {
	got, err := AnalyzersByName("maprange,hotalloc")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "maprange" || got[1].Name != "hotalloc" {
		t.Fatalf("AnalyzersByName(maprange,hotalloc) = %v", got)
	}
	if _, err := AnalyzersByName("maprange,bogus"); err == nil {
		t.Fatal("AnalyzersByName accepted unknown analyzer name")
	}
}

// The waiver grammar's edge cases: reasons are mandatory, placement is
// same-line or line-above, comma lists fan out, and malformed directives
// are themselves findings.

const waiverProbe = `package dist

import (
	"os"
	"time"
)

func Probe() {
	os.Remove(time.Now().String())
}
`

// TestWaiverEmptyReason: a waiver without a reason waives nothing — every
// exception must be self-documenting.
func TestWaiverEmptyReason(t *testing.T) {
	src := `package dist

import "os"

func Probe() {
	//lint:ignore droppederr
	os.Remove("x")
}
`
	got := runCase(t, "dcc/internal/dist", map[string]string{"a.go": src}, DroppedErrAnalyzer)
	expect(t, got, []string{
		"a.go:7:2: droppederr: discards error result of os.Remove; handle it or assign to _",
	})
}

// TestWaiverPlacement: both the line above and the end of the flagged line
// are valid waiver positions.
func TestWaiverPlacement(t *testing.T) {
	above := `package dist

import "os"

func Probe() {
	//lint:ignore droppederr best-effort cleanup
	os.Remove("x")
}
`
	sameLine := `package dist

import "os"

func Probe() {
	os.Remove("x") //lint:ignore droppederr best-effort cleanup
}
`
	for name, src := range map[string]string{"above": above, "same line": sameLine} {
		if got := runCase(t, "dcc/internal/dist", map[string]string{"a.go": src}, DroppedErrAnalyzer); len(got) != 0 {
			t.Errorf("%s waiver did not suppress: %q", name, got)
		}
	}
}

// TestWaiverCommaList: one //lint:ignore can waive several analyzers
// firing on the same line.
func TestWaiverCommaList(t *testing.T) {
	// Control: both analyzers fire on the unwaived probe line.
	got := runCase(t, "dcc/internal/dist", map[string]string{"a.go": waiverProbe},
		DroppedErrAnalyzer, WallClockAnalyzer)
	if len(got) != 2 {
		t.Fatalf("control: got %q, want droppederr and wallclock", got)
	}
	waived := `package dist

import (
	"os"
	"time"
)

func Probe() {
	//lint:ignore droppederr,wallclock timing probe with best-effort cleanup
	os.Remove(time.Now().String())
}
`
	got = runCase(t, "dcc/internal/dist", map[string]string{"a.go": waived},
		DroppedErrAnalyzer, WallClockAnalyzer)
	expect(t, got, nil)
}

// TestWaiverStacked: a line-above waiver and a same-line waiver compose on
// one flagged line.
func TestWaiverStacked(t *testing.T) {
	src := `package dist

import (
	"os"
	"time"
)

func Probe() {
	//lint:ignore wallclock the probe measures the clock on purpose
	os.Remove(time.Now().String()) //lint:ignore droppederr best-effort cleanup
}
`
	got := runCase(t, "dcc/internal/dist", map[string]string{"a.go": src},
		DroppedErrAnalyzer, WallClockAnalyzer)
	expect(t, got, nil)
}

// TestWaiverBareIgnore: //lint:ignore with no analyzer list is reported —
// it cannot be covered by a corpus // want because any token after the
// directive would parse as an analyzer name.
func TestWaiverBareIgnore(t *testing.T) {
	src := `package dist

func Probe() int {
	//lint:ignore
	return 1
}
`
	got := runCase(t, "dcc/internal/dist", map[string]string{"a.go": src})
	expect(t, got, []string{
		"a.go:4:2: badwaiver: //lint:ignore names no analyzer; the waiver has no effect",
	})
}

// TestWaiverUnknownAnalyzerStillWaivesKnown: a comma list naming one real
// and one unknown analyzer waives the real one and reports the typo.
func TestWaiverUnknownAnalyzerStillWaivesKnown(t *testing.T) {
	src := `package dist

import "os"

func Probe() {
	//lint:ignore droppederr,droppedwrr best-effort cleanup
	os.Remove("x")
}
`
	got := runCase(t, "dcc/internal/dist", map[string]string{"a.go": src}, DroppedErrAnalyzer)
	expect(t, got, []string{
		`a.go:6:2: badwaiver: //lint:ignore names unknown analyzer "droppedwrr"; the waiver has no effect`,
	})
}
