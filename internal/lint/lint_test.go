package lint

import (
	"testing"
)

// runCase type-checks a synthetic package and returns the rendered
// diagnostics of the given analyzers.
func runCase(t *testing.T, pkgPath string, files map[string]string, analyzers ...*Analyzer) []string {
	t.Helper()
	pkg, err := LoadSource(pkgPath, files)
	if err != nil {
		t.Fatalf("LoadSource: %v", err)
	}
	diags := Run([]*Package{pkg}, analyzers)
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}

func expect(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d\ngot:  %q\nwant: %q", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
}

func TestMapRange(t *testing.T) {
	cases := []struct {
		name    string
		pkgPath string
		src     string
		want    []string
	}{
		{
			name:    "unsorted range flagged",
			pkgPath: "dcc/internal/graph",
			src: `package graph

func Values(m map[int]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`,
			want: []string{
				"a.go:5:2: maprange: range over map map[int]int in deterministic package dcc/internal/graph: sort the keys before use or add //lint:ordered <reason>",
			},
		},
		{
			name:    "collect then sort allowed",
			pkgPath: "dcc/internal/graph",
			src: `package graph

import "sort"

func Keys(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
`,
			want: nil,
		},
		{
			name:    "waiver with reason allowed",
			pkgPath: "dcc/internal/dist",
			src: `package dist

func Count(m map[string]bool) int {
	n := 0
	//lint:ordered pure count, order-independent
	for range m {
		n++
	}
	return n
}
`,
			want: nil,
		},
		{
			name:    "waiver without reason still flagged",
			pkgPath: "dcc/internal/dist",
			src: `package dist

func Count(m map[string]bool) int {
	n := 0
	//lint:ordered
	for range m {
		n++
	}
	return n
}
`,
			want: []string{
				"a.go:6:2: maprange: range over map map[string]bool in deterministic package dcc/internal/dist: sort the keys before use or add //lint:ordered <reason>",
			},
		},
		{
			name:    "non-deterministic package exempt",
			pkgPath: "dcc/internal/viz",
			src: `package viz

func Values(m map[int]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runCase(t, tc.pkgPath, map[string]string{"a.go": tc.src}, MapRangeAnalyzer)
			expect(t, got, tc.want)
		})
	}
}

func TestGlobalRand(t *testing.T) {
	src := `package foo

import "math/rand"

func Bad() int { return rand.Intn(10) }

func AlsoBad() { rand.Shuffle(3, func(i, j int) {}) }

func Good() int {
	rng := rand.New(rand.NewSource(7))
	return rng.Intn(10)
}
`
	got := runCase(t, "dcc/internal/foo", map[string]string{"a.go": src}, GlobalRandAnalyzer)
	expect(t, got, []string{
		"a.go:5:25: globalrand: package-level math/rand.Intn uses the shared global source; draw from a seeded *rand.Rand",
		"a.go:7:18: globalrand: package-level math/rand.Shuffle uses the shared global source; draw from a seeded *rand.Rand",
	})
}

func TestWallClock(t *testing.T) {
	src := `package sim

import "time"

func Bad() time.Time { return time.Now() }

func Elapsed(t0 time.Time) time.Duration { return time.Since(t0) }

func OK(d time.Duration) time.Duration { return 2 * d }
`
	got := runCase(t, "dcc/internal/sim", map[string]string{"a.go": src}, WallClockAnalyzer)
	expect(t, got, []string{
		"a.go:5:31: wallclock: time.Now in simulation package dcc/internal/sim: results must not depend on the wall clock",
		"a.go:7:51: wallclock: time.Since in simulation package dcc/internal/sim: results must not depend on the wall clock",
	})

	// The same source outside internal/ (a cmd binary) is allowed to time
	// things.
	got = runCase(t, "dcc/cmd/tool", map[string]string{"a.go": src}, WallClockAnalyzer)
	expect(t, got, nil)
}

func TestDroppedErr(t *testing.T) {
	src := `package foo

import (
	"fmt"
	"os"
	"strings"
)

func Bad() {
	os.Remove("x")
}

func Deferred(f *os.File) {
	defer f.Close()
}

func OK() {
	fmt.Println("hi")
	_ = os.Remove("x")
	var sb strings.Builder
	sb.WriteString("hi")
}

func Waived() {
	//lint:ignore droppederr best-effort cleanup
	os.Remove("x")
}
`
	got := runCase(t, "dcc/internal/foo", map[string]string{"a.go": src}, DroppedErrAnalyzer)
	expect(t, got, []string{
		"a.go:10:2: droppederr: discards error result of os.Remove; handle it or assign to _",
		"a.go:14:8: droppederr: defer discards error result of Close; handle it or assign to _",
	})
}

func TestLooseSeed(t *testing.T) {
	src := `package foo

import (
	"math/rand"
	"time"
)

func Bad() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

func AlsoBad() {
	rand.Seed(time.Now().UnixNano())
}

func Good() *rand.Rand {
	return rand.New(rand.NewSource(42))
}
`
	got := runCase(t, "dcc/internal/foo", map[string]string{"a.go": src}, LooseSeedAnalyzer)
	expect(t, got, []string{
		"a.go:9:18: looseseed: rand seed derived from time.Now is different on every run; derive seeds from Config",
		"a.go:13:2: looseseed: rand seed derived from time.Now is different on every run; derive seeds from Config",
	})
}

// TestAllAnalyzersFire feeds one deliberately-broken source through the full
// suite and checks every analyzer reports at least once — the acceptance
// gate that no analyzer is silently dead.
func TestAllAnalyzersFire(t *testing.T) {
	src := `package dist

import (
	"math/rand"
	"os"
	"time"
)

func Broken(m map[int]int) int {
	os.Remove("x")
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	total := rand.Intn(10) + rng.Intn(10)
	for _, v := range m {
		total += v
	}
	return total
}
`
	got := runCase(t, "dcc/internal/dist", map[string]string{"a.go": src}, Analyzers()...)
	fired := make(map[string]bool)
	pkg, err := LoadSource("dcc/internal/dist", map[string]string{"a.go": src})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run([]*Package{pkg}, Analyzers()) {
		fired[d.Analyzer] = true
	}
	if len(got) == 0 {
		t.Fatal("no diagnostics at all")
	}
	for _, a := range Analyzers() {
		if !fired[a.Name] {
			t.Errorf("analyzer %s reported nothing on the broken fixture", a.Name)
		}
	}
}
