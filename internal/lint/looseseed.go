package lint

import (
	"go/ast"
	"go/types"
)

// LooseSeedAnalyzer flags nondeterministic seeding: a math/rand NewSource /
// New / Seed call whose seed expression reads the wall clock or the process
// environment (time.Now().UnixNano(), os.Getpid(), ...). Such a generator
// is seeded differently on every run, which silently defeats the
// reproducibility contract even though the code dutifully threads a
// *rand.Rand everywhere. Seeds must come from Config.
var LooseSeedAnalyzer = &Analyzer{
	Name: "looseseed",
	Doc:  "rand source seeded from the wall clock or process state; seeds must come from Config",
	Run:  runLooseSeed,
}

// looseSeedSinks are the math/rand functions whose arguments are seeds.
var looseSeedSinks = map[string]bool{
	"NewSource": true,
	"Seed":      true,
	"NewPCG":    true, // math/rand/v2
}

// looseSeedSources are the calls that make a seed nondeterministic.
var looseSeedSources = map[string]map[string]bool{
	"time":        {"Now": true},
	"os":          {"Getpid": true, "Getppid": true, "Environ": true, "Getenv": true},
	"crypto/rand": {"Read": true, "Int": true, "Prime": true, "Text": true},
}

func runLooseSeed(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.calleeFunc(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if path := fn.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
				// (*rand.Rand).Seed: still a reseed sink.
				if fn.Name() != "Seed" {
					return true
				}
			} else if !looseSeedSinks[fn.Name()] {
				return true
			}
			for _, arg := range call.Args {
				if src := findNondetSource(pass, arg); src != "" {
					pass.Reportf(call.Pos(), "",
						"rand seed derived from %s is different on every run; derive seeds from Config", src)
					break
				}
			}
			return true
		})
	}
}

// findNondetSource returns the rendered name of the first nondeterministic
// call inside expr, or "".
func findNondetSource(pass *Pass, expr ast.Expr) string {
	found := ""
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.calleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if names := looseSeedSources[fn.Pkg().Path()]; names[fn.Name()] {
			found = fn.Pkg().Name() + "." + fn.Name()
			return false
		}
		return true
	})
	return found
}
