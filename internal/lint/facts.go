package lint

import "go/token"

// Facts is the cross-package knowledge store of one Run. Packages are
// analyzed in import-path order, so a fact exported while analyzing a
// dependency is visible when its dependents are analyzed — the conservative
// cross-package half of the value-flow analyses. Whole-module accumulations
// (stream-id uses, call edges, allocation sites) are consumed by the
// analyzers' Finish hooks after every package has been visited.
//
// Functions are keyed by types.Func.FullName() — e.g.
// "dcc/internal/runner.DeriveSeed" or
// "(*dcc/internal/vpt.Cache).Deletable" — which is stable across packages
// within one Run.
type Facts struct {
	// SeedDerivers marks functions whose int64 result provably traces to
	// runner.DeriveSeed on every return path (wrappers like the public
	// dcc.DeriveSeed re-export). Calls to them count as derived seeds.
	// Values: 1 = deriver, -1 = analyzed and not a deriver, 0/absent =
	// not yet analyzed (the lazy memo of flow.go).
	SeedDerivers map[string]int

	// StreamForwarders maps wrapper functions that pass one of their own
	// parameters through as the stream argument of runner.DeriveSeed to
	// that parameter's index. Calls to a forwarder are stream call sites
	// and subject to the same named-constant rule.
	StreamForwarders map[string]int

	// StreamUses records every DeriveSeed stream argument that resolved to
	// a named constant, for the Finish-time duplicate checks.
	StreamUses []StreamUse

	// HotRoots lists the //lint:hotpath-annotated functions, the roots of
	// the hot-path allocation reachability walk.
	HotRoots []string

	// CallEdges is the approximate module-internal call graph: caller
	// function key -> statically resolved callee keys (calls through
	// function values or interfaces are conservatively missed).
	CallEdges map[string][]string

	// AllocSites records the candidate hot-path allocation findings of
	// every package, with waivers already resolved; Finish reports the
	// unwaived ones that fall inside functions reachable from HotRoots.
	AllocSites []AllocSite
}

// StreamUse is one DeriveSeed call site whose stream argument is a named
// constant.
type StreamUse struct {
	ConstKey string // package path + "." + constant name
	Value    uint64
	FuncKey  string // enclosing (outermost) function
	FuncName string // rendered name for diagnostics
	Pos      token.Position
	Waived   bool
}

// AllocSite is one allocation expression found in shipped code, a hotalloc
// finding if its function turns out to be reachable from a hot-path root.
type AllocSite struct {
	FuncKey string
	Kind    string // "make", "new", "composite literal", "map literal", "append"
	Detail  string
	Pos     token.Position
	Waived  bool
}

// NewFacts returns an empty fact store for one Run.
func NewFacts() *Facts {
	return &Facts{
		SeedDerivers:     make(map[string]int),
		StreamForwarders: make(map[string]int),
		CallEdges:        make(map[string][]string),
	}
}
