package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallClockBanned lists the package time functions that read or depend on
// the wall clock / real scheduler. Any of them inside simulation or
// protocol code makes results depend on when (and on what machine) the run
// happened.
var wallClockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
	"Sleep":     true,
}

// WallClockAnalyzer flags wall-clock reads in simulation/protocol packages
// (everything under dcc/internal/). Timing measurements belong in the cmd/
// binaries, around — never inside — the deterministic core.
var WallClockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "wall-clock call (time.Now, time.Since, ...) inside a simulation/protocol package",
	Run:  runWallClock,
}

func runWallClock(pass *Pass) {
	if !strings.HasPrefix(pass.Pkg.Path, simPkgPrefix) {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.calleeFunc(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
				return true
			}
			if !wallClockBanned[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(), "",
				"time.%s in simulation package %s: results must not depend on the wall clock",
				fn.Name(), pass.Pkg.Path)
			return true
		})
	}
}
