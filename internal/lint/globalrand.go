package lint

import (
	"go/ast"
	"go/types"
)

// globalRandOK lists the math/rand package-level functions that are
// acceptable everywhere: constructors that feed an explicit seed into an
// explicit generator. Everything else at package level (rand.Intn,
// rand.Float64, rand.Shuffle, rand.Seed, ...) draws from the shared global
// source, whose stream depends on what every other caller in the process
// has consumed — unreproducible by construction.
var globalRandOK = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// GlobalRandAnalyzer flags package-level math/rand (and math/rand/v2)
// calls anywhere in shipped code; randomness must flow through a seeded
// *rand.Rand so runs are reproducible from their Config alone.
var GlobalRandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "package-level math/rand call; use a seeded *rand.Rand instead",
	Run:  runGlobalRand,
}

func runGlobalRand(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.calleeFunc(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand carry their own source: fine.
			if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
				return true
			}
			if globalRandOK[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(), "",
				"package-level %s.%s uses the shared global source; draw from a seeded *rand.Rand",
				path, fn.Name())
			return true
		})
	}
}
