// Package lint implements dcclint, the repository's determinism & safety
// static-analysis framework. The simulator's reproducibility guarantee — "a
// run is reproducible from its Config alone" (internal/dist) — rests on
// coding conventions: sorted map iteration, seeded *rand.Rand, no wall
// clock, seeds derived through runner.DeriveSeed, emission after the
// runner.Map barrier, allocation-free deletability hot paths. This package
// machine-checks those conventions using only the standard library
// (go/parser, go/ast, go/types with the source importer), so the module
// stays dependency-free.
//
// Beyond the original per-file syntactic checks, the framework provides:
//
//   - per-run Facts shared across packages (packages are analyzed in
//     import-path order, so facts exported by a dependency are visible to
//     its dependents — conservative cross-package propagation);
//   - intraprocedural value-flow tracking (flow.go): seed expressions are
//     traced through assignments, calls and returns within a package;
//   - an approximate call graph (callgraph.go) for reachability analyses
//     such as the hot-path allocation check;
//   - an optional per-analyzer Finish hook that runs after every package
//     has been visited, for whole-module findings (duplicate stream ids,
//     hot-path reachability).
//
// Findings can be waived per-site with a comment on the flagged line or the
// line immediately above:
//
//	//lint:ordered <reason>              waives maprange (reason required)
//	//lint:ignore <analyzers> <reason>   waives the named analyzer(s);
//	                                     comma-separated list, reason required
//
// A waiver with an empty reason does not waive anything; dcclint reports
// the site regardless, so every exception is self-documenting. A waiver
// naming an unknown analyzer is itself reported (analyzer "badwaiver")
// rather than silently accepted. For hotalloc, a waiver on the function
// declaration line waives every allocation site in that function.
//
// The //lint:hotpath directive (on a function declaration) is not a waiver:
// it marks the function as a root of the hot-path allocation analysis.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DeterministicPkgs lists the packages whose iteration order and shared
// state are part of the reproducibility contract: ranging over a map there
// is flagged by the maprange analyzer unless the keys are sorted before use
// or the site carries a //lint:ordered waiver, and calling a
// pointer-receiver method of one of these packages on a variable captured
// by a runner.Map task is flagged by the barrier analyzer unless waived.
var DeterministicPkgs = map[string]bool{
	"dcc/internal/graph":  true,
	"dcc/internal/dist":   true,
	"dcc/internal/vpt":    true,
	"dcc/internal/cycles": true,
	"dcc/internal/core":   true,
	"dcc/internal/runner": true,
}

// simPkgPrefix marks simulation/protocol code: wall-clock reads and
// underived rand seeds are banned under it (timing belongs in cmd/
// binaries, seeds come from Config via runner.DeriveSeed).
const simPkgPrefix = "dcc/internal/"

// runnerPkg is the import path of the deterministic worker pool; seedflow,
// streamid and barrier all key off its DeriveSeed and Map entry points.
const runnerPkg = "dcc/internal/runner"

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is a loaded, type-checked package ready for analysis.
type Package struct {
	Path    string // import path, e.g. "dcc/internal/dist"
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	waivers map[string]map[int][]waiver // filename -> line -> waivers
	decls   map[types.Object]*ast.FuncDecl
}

// waiver is one parsed //lint: directive.
type waiver struct {
	directive string   // "ordered", "ignore" or "hotpath"
	analyzers []string // for "ignore": the analyzers it targets
	reason    string
	pos       token.Position
}

// collectWaivers parses //lint: comment directives from every file. A line
// may accumulate several waivers (a trailing comment plus one on the line
// above both apply to the same site).
func (p *Package) collectWaivers() {
	p.waivers = make(map[string]map[int][]waiver)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				w := waiver{directive: fields[0], pos: pos}
				rest := fields[1:]
				if w.directive == "ignore" && len(rest) > 0 {
					for _, name := range strings.Split(rest[0], ",") {
						if name = strings.TrimSpace(name); name != "" {
							w.analyzers = append(w.analyzers, name)
						}
					}
					rest = rest[1:]
				}
				w.reason = strings.Join(rest, " ")
				byLine := p.waivers[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]waiver)
					p.waivers[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], w)
			}
		}
	}
}

// waiversAt returns every waiver that applies to pos: directives on the
// same line or the line immediately above.
func (p *Package) waiversAt(pos token.Pos) []waiver {
	position := p.Fset.Position(pos)
	byLine := p.waivers[position.Filename]
	if byLine == nil {
		return nil
	}
	var ws []waiver
	ws = append(ws, byLine[position.Line]...)
	ws = append(ws, byLine[position.Line-1]...)
	return ws
}

// waived reports whether a finding of the named analyzer at pos is waived
// by a directive (on the same line or the line above). directive is the
// analyzer-specific directive ("ordered" for maprange); the generic
// "//lint:ignore <analyzer> <reason>" form always applies. Waivers without
// a reason never waive.
func (p *Package) waived(analyzer, directive string, pos token.Pos) bool {
	for _, w := range p.waiversAt(pos) {
		if w.reason == "" {
			continue
		}
		if w.directive == directive && directive != "" {
			return true
		}
		if w.directive == "ignore" {
			for _, a := range w.analyzers {
				if a == analyzer {
					return true
				}
			}
		}
	}
	return false
}

// hotpathRoot reports whether the declaration at pos carries a
// //lint:hotpath directive (same line or the line above).
func (p *Package) hotpathRoot(pos token.Pos) bool {
	for _, w := range p.waiversAt(pos) {
		if w.directive == "hotpath" {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Facts    *Facts
	report   func(Diagnostic)
}

// Reportf records a finding at pos unless the site carries a waiver.
// directive is the analyzer-specific waiver keyword ("" = generic-only).
func (p *Pass) Reportf(pos token.Pos, directive, format string, args ...any) {
	if p.Pkg.waived(p.Analyzer.Name, directive, pos) {
		return
	}
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf resolves the type of an expression (nil if unknown).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves the object an identifier denotes (nil if unknown).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Pkg.Info.ObjectOf(id)
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (through selector or plain identifier), or nil for non-functions
// (conversions, builtins, function-typed variables).
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// Analyzer is one named check over a package. Run is invoked once per
// package (in import-path order); the optional Finish hook is invoked once
// after every package has been visited and may report whole-module findings
// accumulated in Facts.
type Analyzer struct {
	Name   string
	Doc    string
	Run    func(*Pass)
	Finish func(*Facts, func(Diagnostic))
}

// Analyzers returns the full dcclint suite, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapRangeAnalyzer,
		GlobalRandAnalyzer,
		WallClockAnalyzer,
		DroppedErrAnalyzer,
		LooseSeedAnalyzer,
		SeedFlowAnalyzer,
		StreamIDAnalyzer,
		BarrierAnalyzer,
		HotAllocAnalyzer,
		ClockFlowAnalyzer,
	}
}

// AnalyzersByName resolves a comma-separated list of analyzer names against
// the registry, in registry order.
func AnalyzersByName(names string) ([]*Analyzer, error) {
	want := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	var out []*Analyzer
	for _, a := range Analyzers() {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("lint: unknown analyzer(s): %s", strings.Join(unknown, ", "))
	}
	return out, nil
}

// validateWaivers reports //lint: directives that cannot take effect:
// unknown directive names and //lint:ignore targets naming no registered
// analyzer. Silent typos would otherwise read as active waivers. Validation
// is against the full registry, not the analyzers of the current run, so a
// partial run (dcclint -analyzers=...) does not misreport waivers for the
// disabled checks.
func validateWaivers(pkg *Package, report func(Diagnostic)) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, byLine := range pkg.waivers {
		for _, ws := range byLine {
			for _, w := range ws {
				switch w.directive {
				case "ordered", "hotpath":
					// Valid, no analyzer list to check.
				case "ignore":
					for _, a := range w.analyzers {
						if !known[a] {
							report(Diagnostic{
								Pos:      w.pos,
								Analyzer: "badwaiver",
								Message: fmt.Sprintf(
									"//lint:ignore names unknown analyzer %q; the waiver has no effect", a),
							})
						}
					}
					if len(w.analyzers) == 0 {
						report(Diagnostic{
							Pos:      w.pos,
							Analyzer: "badwaiver",
							Message:  "//lint:ignore names no analyzer; the waiver has no effect",
						})
					}
				default:
					report(Diagnostic{
						Pos:      w.pos,
						Analyzer: "badwaiver",
						Message: fmt.Sprintf(
							"unknown //lint: directive %q (known: ordered, ignore, hotpath)", w.directive),
					})
				}
			}
		}
	}
}

// Run applies every analyzer to every package (in the order given — Load
// returns packages sorted by import path, which makes dependency facts
// visible to dependents), fires each analyzer's Finish hook, validates
// waiver directives, and returns the findings sorted by position then
// analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	facts := NewFacts()
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Facts:    facts,
				report:   report,
			}
			a.Run(pass)
		}
		validateWaivers(pkg, report)
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(facts, report)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
