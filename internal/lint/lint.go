// Package lint implements dcclint, the repository's determinism & safety
// static-analysis pass. The simulator's reproducibility guarantee — "a run
// is reproducible from its Config alone" (internal/dist) — rests on coding
// conventions: sorted map iteration, seeded *rand.Rand, no wall clock.
// This package machine-checks those conventions using only the standard
// library (go/parser, go/ast, go/types with the source importer), so the
// module stays dependency-free.
//
// Findings can be waived per-site with a comment on the flagged line or the
// line immediately above:
//
//	//lint:ordered <reason>            waives maprange (reason required)
//	//lint:ignore <analyzer> <reason>  waives any analyzer (reason required)
//
// A waiver with an empty reason does not waive anything; dcclint reports
// the site regardless, so every exception is self-documenting.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DeterministicPkgs lists the packages whose iteration order is part of the
// reproducibility contract: ranging over a map there is flagged by the
// maprange analyzer unless the keys are sorted before use or the site
// carries a //lint:ordered waiver.
var DeterministicPkgs = map[string]bool{
	"dcc/internal/graph":  true,
	"dcc/internal/dist":   true,
	"dcc/internal/vpt":    true,
	"dcc/internal/cycles": true,
	"dcc/internal/core":   true,
	"dcc/internal/runner": true,
}

// simPkgPrefix marks simulation/protocol code: wall-clock reads are banned
// under it (timing belongs in cmd/ binaries, never in simulation results).
const simPkgPrefix = "dcc/internal/"

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is a loaded, type-checked package ready for analysis.
type Package struct {
	Path    string // import path, e.g. "dcc/internal/dist"
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	waivers map[string]map[int]waiver // filename -> line -> waiver
}

// waiver is one parsed //lint: directive.
type waiver struct {
	directive string // "ordered" or "ignore"
	analyzer  string // for "ignore": the analyzer it targets
	reason    string
}

// collectWaivers parses //lint: comment directives from every file.
func (p *Package) collectWaivers() {
	p.waivers = make(map[string]map[int]waiver)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				w := waiver{directive: fields[0]}
				rest := fields[1:]
				if w.directive == "ignore" && len(rest) > 0 {
					w.analyzer = rest[0]
					rest = rest[1:]
				}
				w.reason = strings.Join(rest, " ")
				pos := p.Fset.Position(c.Pos())
				byLine := p.waivers[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]waiver)
					p.waivers[pos.Filename] = byLine
				}
				byLine[pos.Line] = w
			}
		}
	}
}

// waived reports whether a finding of the named analyzer at pos is waived
// by a directive (on the same line or the line above). directive is the
// analyzer-specific directive ("ordered" for maprange); the generic
// "//lint:ignore <analyzer> <reason>" form always applies. Waivers without
// a reason never waive.
func (p *Package) waived(analyzer, directive string, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	byLine := p.waivers[position.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{position.Line, position.Line - 1} {
		w, ok := byLine[line]
		if !ok || w.reason == "" {
			continue
		}
		if w.directive == directive && directive != "" {
			return true
		}
		if w.directive == "ignore" && w.analyzer == analyzer {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos unless the site carries a waiver.
// directive is the analyzer-specific waiver keyword ("" = generic-only).
func (p *Pass) Reportf(pos token.Pos, directive, format string, args ...any) {
	if p.Pkg.waived(p.Analyzer.Name, directive, pos) {
		return
	}
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf resolves the type of an expression (nil if unknown).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves the object an identifier denotes (nil if unknown).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Pkg.Info.ObjectOf(id)
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (through selector or plain identifier), or nil for non-functions
// (conversions, builtins, function-typed variables).
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// Analyzer is one named check over a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full dcclint suite, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapRangeAnalyzer,
		GlobalRandAnalyzer,
		WallClockAnalyzer,
		DroppedErrAnalyzer,
		LooseSeedAnalyzer,
	}
}

// Run applies every analyzer to every package and returns the findings
// sorted by position then analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
