package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeedFlowAnalyzer enforces seed provenance in simulation code: every seed
// fed to a *rand.Rand source under dcc/internal/ must trace — through the
// package's assignments, calls and returns — to runner.DeriveSeed (or a
// wrapper with a SeedDeriver fact), or be an unmodified Config seed field
// outside a loop. Raw literals and ad-hoc arithmetic (seed+run*31,
// seed^salt, ...) are flagged everywhere: they bypass the stream discipline
// that keeps Monte-Carlo runs statistically disjoint. Re-seeding inside a
// loop body from a loop-invariant source (Config field, literal,
// arithmetic) is flagged too: every iteration would replay the same stream.
// Expressions whose provenance cannot be proven (parameters, unclassified
// calls) stay silent — the analyzer reports only provably bad dataflow.
var SeedFlowAnalyzer = &Analyzer{
	Name: "seedflow",
	Doc:  "seeds in internal/ must trace to runner.DeriveSeed or a Config seed field",
	Run:  runSeedFlow,
}

func runSeedFlow(pass *Pass) {
	inScope := strings.HasPrefix(pass.Pkg.Path, simPkgPrefix)

	pass.forEachFuncDecl(func(fn *types.Func, decl *ast.FuncDecl) {
		// Export the SeedDeriver fact for every function of the package,
		// in or out of scope: a wrapper in the root package (dcc.DeriveSeed)
		// must be recognized when internal packages are out of... — the
		// root package sorts first, so dependents see the fact either way.
		pass.isSeedDeriver(fn)
		if !inScope {
			return
		}
		ff := newFuncFlow(pass, decl)
		if decl.Body == nil {
			return
		}
		// Manual stack walk: loop nesting is lexical and resets at function
		// literal boundaries (a closure body is a fresh function, not part
		// of the enclosing loop).
		var stack []ast.Node
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if call, ok := n.(*ast.CallExpr); ok {
				checkSeedSink(pass, ff, call, inLoop(stack))
			}
			return true
		})
	})
}

// inLoop reports whether the innermost enclosing construct below the
// nearest function literal is a for/range statement.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

// checkSeedSink classifies the seed arguments of rand source constructors
// and re-seed calls.
func checkSeedSink(pass *Pass, ff *funcFlow, call *ast.CallExpr, loop bool) {
	fn := pass.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkgPath := fn.Pkg().Path()
	if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
		return
	}
	switch fn.Name() {
	case "NewSource", "NewPCG", "Seed":
	default:
		return
	}
	for _, arg := range call.Args {
		o := ff.originOf(arg, 0)
		switch o {
		case originLiteral:
			pass.Reportf(arg.Pos(), "",
				"seed for rand.%s is a raw literal; derive it from the Config seed via runner.DeriveSeed", fn.Name())
		case originArith:
			pass.Reportf(arg.Pos(), "",
				"seed for rand.%s is built by ad-hoc arithmetic; use runner.DeriveSeed(base, stream, run) so streams stay disjoint", fn.Name())
		case originConfig:
			if loop {
				pass.Reportf(arg.Pos(), "",
					"re-seeding from a Config seed field inside a loop replays the same stream every iteration; derive a per-iteration seed via runner.DeriveSeed")
			}
		case originDerived:
			// Blessed.
		}
	}
}
