// Package lstest exercises the loose-seed check: rand sources seeded from
// the wall clock or process state differ on every run.
package lstest

import (
	"math/rand"
	"time"
)

// Bad seeds from the wall clock.
func Bad() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand seed derived from time.Now is different on every run`
}

// AlsoBad reseeds the global source from the wall clock.
func AlsoBad() {
	rand.Seed(time.Now().UnixNano()) // want `rand seed derived from time.Now is different on every run`
}

// Good uses a fixed seed.
func Good() *rand.Rand {
	return rand.New(rand.NewSource(42))
}
