// Package hotmain holds the //lint:hotpath root for the hotalloc corpus.
package hotmain

import "hotdep"

type point struct {
	x, y int
}

// Root is the hot entry point: everything it reaches is allocation-free
// or waived.
//
//lint:hotpath
func Root(s *hotdep.Scratch, n int) int {
	weights := map[string]int{"a": 1} // want `map literal of map\[string\]int in hotmain.Root, which is reachable from a //lint:hotpath root`
	steps := []int{1, 2, 3}           // want `slice literal of \[\]int in hotmain.Root`
	q := &point{x: 1, y: 2}           // want `heap composite literal of point in hotmain.Root`
	c := new(int)                     // want `new of int in hotmain.Root`
	p := point{x: 3, y: 4}            // value literal: no heap allocation
	//lint:ignore hotalloc one-time table built before the hot loop
	table := make([]int, n)
	total := hotdep.Helper(s, n) + len(hotdep.NewBuf(n))
	return total + weights["a"] + steps[0] + q.x + p.y + *c + len(table)
}
