// Package hotdep is a callee package for the hotalloc corpus: its Helper
// is reachable from the hotmain root across the package boundary.
package hotdep

// Scratch mimics the real reusable-buffer carriers (graph.Scratch,
// cycles.Workspace): appends into its fields are amortized by
// construction.
type Scratch struct {
	Queue []int32
}

// Helper is hot via hotmain.Root. The raw make is flagged; the appends
// provably target the scratch carrier and are not.
func Helper(s *Scratch, n int) int {
	tmp := make([]int32, n) // want `make of \[\]int32 in hotdep.Helper, which is reachable from a //lint:hotpath root`
	s.Queue = s.Queue[:0]
	for i := 0; i < n; i++ {
		s.Queue = append(s.Queue, int32(i))
		tmp[i] = int32(i)
	}
	queue := s.Queue[:0]
	queue = append(queue, tmp...)
	return len(queue)
}

// NewBuf allocates caller-owned storage by contract: the whole function
// is waived from the declaration line.
//
//lint:ignore hotalloc constructor of caller-owned storage, cold by contract
func NewBuf(n int) []int {
	return make([]int, n)
}

// Cold is never reached from a root: its allocations are fine.
func Cold() []int {
	return []int{1, 2, 3}
}
