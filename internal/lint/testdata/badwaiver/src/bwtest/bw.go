// Package bwtest exercises waiver validation: directives that cannot take
// effect are reported instead of silently reading as active waivers.
package bwtest

// Mistyped directive name: reported, not ignored.
func Mistyped() int {
	//lint:nonsense this directive does not exist // want `directive "nonsense" \(known: ordered, ignore, hotpath\)`
	return 1
}

// WrongAnalyzer waives a check that is not registered: the typo would
// otherwise read as an active waiver.
func WrongAnalyzer() int {
	//lint:ignore notachk reason for a check that does not exist // want `names unknown analyzer "notachk"; the waiver has no effect`
	return 2
}

// Valid is a well-formed waiver naming a real analyzer: nothing to report.
func Valid() int {
	//lint:ignore hotalloc deliberate, documented exception
	return 3
}
