// Package vpt poses as the real dcc/internal/vpt for the corpus: a
// deterministic-engine type with one mutating and one read-only method.
package vpt

// Cache mimics the real deletability cache: pointer methods mutate
// shared memo state.
type Cache struct {
	n int
}

// Bump mutates the cache (pointer receiver).
func (c *Cache) Bump() {
	c.n++
}

// Peek reads the cache (value receiver).
func (c Cache) Peek() int {
	return c.n
}
