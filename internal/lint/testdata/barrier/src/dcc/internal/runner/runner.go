// Package runner poses as the real dcc/internal/runner for the corpus:
// only the Map signature matters to the barrier analyzer.
package runner

// Map mimics the real deterministic fan-out: results land at the task's
// own index, the join is the barrier.
func Map[T any](n, workers int, job func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	for i := 0; i < n; i++ {
		v, err := job(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
