// Package btest exercises the runner.Map task-closure hygiene: tasks
// communicate only through their return value; everything observable
// happens after the barrier.
package btest

import (
	"fmt"
	"strings"

	"dcc/internal/runner"
	"dcc/internal/vpt"
)

// OwnSlot writes a captured slice at exactly the task's own index: the
// one blessed captured write.
func OwnSlot(n int) []int {
	extra := make([]int, n)
	_, _ = runner.Map(n, 4, func(i int) (int, error) {
		extra[i] = i * i
		return i, nil
	})
	return extra
}

// ForeignSlot writes another task's slot: order-dependent clobbering.
func ForeignSlot(n int) []int {
	acc := make([]int, n)
	_, _ = runner.Map(n, 4, func(i int) (int, error) {
		acc[0] = i // want `task closure writes to captured "acc" at an index other than the task's own`
		return i, nil
	})
	return acc
}

// SharedCounter accumulates into a captured scalar: a data race.
func SharedCounter(n int) int {
	total := 0
	_, _ = runner.Map(n, 4, func(i int) (int, error) {
		total += i // want `task closure writes to captured "total" before the barrier`
		return i, nil
	})
	return total
}

// PrintsEarly emits output from inside a task: interleaves across workers.
func PrintsEarly(n int) {
	_, _ = runner.Map(n, 4, func(i int) (int, error) {
		fmt.Println(i) // want `task closure calls fmt.Println before the barrier`
		return i, nil
	})
}

// WritesBuilder streams into a captured writer from inside a task.
func WritesBuilder(n int) string {
	var sb strings.Builder
	_, _ = runner.Map(n, 4, func(i int) (int, error) {
		sb.WriteString("x") // want `task closure calls sb.WriteString before the barrier`
		return i, nil
	})
	return sb.String()
}

// MutatesEngine calls a pointer-receiver method of a deterministic
// package on captured state.
func MutatesEngine(n int, c *vpt.Cache) {
	_, _ = runner.Map(n, 4, func(i int) (int, error) {
		c.Bump() // want `task closure calls pointer-receiver method \(\*dcc/internal/vpt\.Cache\)\.Bump on captured "c"`
		return i, nil
	})
}

// ReadsEngine calls a value-receiver method on captured state: reads are
// fine.
func ReadsEngine(n int, c *vpt.Cache) ([]int, error) {
	return runner.Map(n, 4, func(i int) (int, error) {
		return i + c.Peek(), nil
	})
}

// TaskLocal mutates state declared inside the closure: provably private.
func TaskLocal(n int) ([]int, error) {
	return runner.Map(n, 4, func(i int) (int, error) {
		var sb strings.Builder
		sum := 0
		for j := 0; j < i; j++ {
			sum += j
			sb.WriteString("y")
		}
		return sum + len(sb.String()), nil
	})
}

// WaivedWrite documents a deliberate captured write.
func WaivedWrite(n int) int {
	hits := 0
	_, _ = runner.Map(n, 1, func(i int) (int, error) {
		//lint:ignore barrier single-worker pool by construction, no race
		hits++
		return i, nil
	})
	return hits
}
