// Package runner poses as the real dcc/internal/runner for the corpus:
// only the DeriveSeed signature matters to the streamid analyzer.
package runner

// DeriveSeed mimics the real chained-SplitMix64 derivation.
func DeriveSeed(base int64, stream uint64, run int) int64 {
	return base ^ int64(stream)<<1 ^ int64(run)<<2
}
