// Package sidtest exercises the stream-id discipline: DeriveSeed stream
// arguments must be named constants, globally unique by value, and each
// Monte-Carlo loop must own its stream.
package sidtest

import "dcc/internal/runner"

const (
	streamAlpha  uint64 = 1
	streamBeta   uint64 = 2
	streamDup    uint64 = 2 // collides with streamBeta
	streamShared uint64 = 3
)

// UseAlpha is the clean case: one named constant, one function.
func UseAlpha(seed int64, run int) int64 {
	return runner.DeriveSeed(seed, streamAlpha, run)
}

// UseBeta draws from a stream whose value another constant duplicates.
func UseBeta(seed int64, run int) int64 {
	return runner.DeriveSeed(seed, streamBeta, run) // want `streamBeta \(= 2\) has the same value as dcc/internal/sidtest.streamDup`
}

// UseDup is the other half of the collision.
func UseDup(seed int64, run int) int64 {
	return runner.DeriveSeed(seed, streamDup, run) // want `streamDup \(= 2\) has the same value as dcc/internal/sidtest.streamBeta`
}

// SharedOne and SharedTwo draw from one stream in two different loops:
// their runs are correlated.
func SharedOne(seed int64) int64 {
	return runner.DeriveSeed(seed, streamShared, 0) // want `streamShared is used by 2 functions`
}

// SharedTwo is the second loop on the shared stream.
func SharedTwo(seed int64) int64 {
	return runner.DeriveSeed(seed, streamShared, 1) // want `streamShared is used by 2 functions`
}

// Literal passes a bare number where a named constant belongs.
func Literal(seed int64) int64 {
	return runner.DeriveSeed(seed, 99, 0) // want `stream argument must be a named stream constant, not a literal`
}

// Computed passes an expression where a named constant belongs.
func Computed(seed int64, n uint64) int64 {
	return runner.DeriveSeed(seed, n+1, 0) // want `stream argument must be a named stream constant, not an arithmetic expression`
}

// Forward passes its own parameter through: a trampoline. The site is
// reported (unless waived) and callers are checked via the forwarder fact.
func Forward(seed int64, stream uint64, run int) int64 {
	return runner.DeriveSeed(seed, stream, run) // want `stream argument is the function's own parameter`
}

// ViaForward hits the forwarder with a literal: checked like DeriveSeed.
func ViaForward(seed int64, run int) int64 {
	return Forward(seed, 7, run) // want `stream argument must be a named stream constant, not a literal`
}

// WaivedForward is a documented trampoline: the pass-through is waived.
func WaivedForward(seed int64, stream uint64, run int) int64 {
	//lint:ignore streamid deliberate public shim, callers pick the constant
	return runner.DeriveSeed(seed, stream, run)
}
