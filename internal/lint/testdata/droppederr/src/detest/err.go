// Package detest exercises the dropped-error check: error results may not
// vanish silently in statement position or behind defer.
package detest

import (
	"fmt"
	"os"
	"strings"
)

// Bad discards the error of os.Remove.
func Bad() {
	os.Remove("x") // want `discards error result of os.Remove`
}

// Deferred drops the error behind defer.
func Deferred(f *os.File) {
	defer f.Close() // want `defer discards error result of Close`
}

// OK handles, blanks, or calls never-failing writers.
func OK() {
	fmt.Println("hi")
	_ = os.Remove("x")
	var sb strings.Builder
	sb.WriteString("hi")
}

// Waived documents a best-effort call.
func Waived() {
	//lint:ignore droppederr best-effort cleanup
	os.Remove("x")
}
