// Package grtest exercises the global-rand ban: package-level math/rand
// draws are flagged everywhere, seeded generators are fine.
package grtest

import "math/rand"

// Bad draws from the shared global source.
func Bad() int {
	return rand.Intn(10) // want `package-level math/rand.Intn uses the shared global source`
}

// AlsoBad shuffles with the global source.
func AlsoBad() {
	rand.Shuffle(3, func(i, j int) {}) // want `package-level math/rand.Shuffle uses the shared global source`
}

// Good threads an explicit generator.
func Good(rng *rand.Rand) int {
	return rng.Intn(10)
}

// Ctor uses the constructors, which are allowed at package level.
func Ctor() *rand.Rand {
	return rand.New(rand.NewSource(7))
}

// Waived keeps a deliberate global draw with a written reason.
func Waived() int {
	//lint:ignore globalrand corpus example of a documented exception
	return rand.Intn(10)
}
