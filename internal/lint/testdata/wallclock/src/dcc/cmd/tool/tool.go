// Package tool sits outside dcc/internal/: cmd binaries are allowed to
// time things around the deterministic core.
package tool

import "time"

// Timed may read the wall clock here.
func Timed() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
