// Package wctest sits under dcc/internal/, where wall-clock reads are
// banned: simulation results must not depend on when the run happened.
package wctest

import "time"

// Bad reads the wall clock.
func Bad() time.Time {
	return time.Now() // want `time.Now in simulation package dcc/internal/wctest`
}

// Elapsed depends on the wall clock through Since.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in simulation package dcc/internal/wctest`
}

// OK manipulates durations without reading the clock.
func OK(d time.Duration) time.Duration {
	return 2 * d
}
