// Package sftest exercises the seed-provenance dataflow: under
// dcc/internal/ every rand seed must trace to runner.DeriveSeed or an
// unmodified Config seed field.
package sftest

import (
	"math/rand"

	"dcc/internal/runner"
)

const streamShuffle uint64 = 1

// Config carries the base seed, the only legitimate seed origin.
type Config struct {
	Seed int64
}

// Literal bypasses Config entirely.
func Literal() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `seed for rand.NewSource is a raw literal`
}

// Arith reintroduces the seed+run*31 bug class the stream discipline
// exists to prevent: runs overlap statistically.
func Arith(cfg Config, run int) *rand.Rand {
	seed := cfg.Seed + int64(run)*31
	return rand.New(rand.NewSource(seed)) // want `seed for rand.NewSource is built by ad-hoc arithmetic`
}

// ArithInline is the same bug without the intermediate variable.
func ArithInline(cfg Config, run int) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed ^ int64(run))) // want `seed for rand.NewSource is built by ad-hoc arithmetic`
}

// Derived is the blessed form.
func Derived(cfg Config, run int) *rand.Rand {
	return rand.New(rand.NewSource(runner.DeriveSeed(cfg.Seed, streamShuffle, run)))
}

// Wrapper forwards to DeriveSeed on every return path, so callers of it
// count as derived (the SeedDeriver fact).
func Wrapper(cfg Config, run int) int64 {
	return runner.DeriveSeed(cfg.Seed, streamShuffle, run)
}

// ViaWrapper seeds through the wrapper: clean.
func ViaWrapper(cfg Config, run int) *rand.Rand {
	return rand.New(rand.NewSource(Wrapper(cfg, run)))
}

// LoopReseed replays the identical stream every iteration.
func LoopReseed(cfg Config, runs int) int {
	total := 0
	for run := 0; run < runs; run++ {
		rng := rand.New(rand.NewSource(cfg.Seed)) // want `re-seeding from a Config seed field inside a loop`
		total += rng.Intn(10) + run
	}
	return total
}

// LoopDerived derives a fresh per-iteration seed: clean.
func LoopDerived(cfg Config, runs int) int {
	total := 0
	for run := 0; run < runs; run++ {
		rng := rand.New(rand.NewSource(runner.DeriveSeed(cfg.Seed, streamShuffle, run)))
		total += rng.Intn(10)
	}
	return total
}

// ClosureNotLoop shows the loop check stops at function-literal
// boundaries: the closure body is a fresh function.
func ClosureNotLoop(cfg Config, runs int) []func() *rand.Rand {
	var out []func() *rand.Rand
	for run := 0; run < runs; run++ {
		out = append(out, func() *rand.Rand {
			return rand.New(rand.NewSource(cfg.Seed))
		})
		_ = run
	}
	return out
}

// Unknown takes an opaque parameter: not provable, stays silent.
func Unknown(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Waived keeps a fixed algorithmic seed with a written reason.
func Waived() *rand.Rand {
	//lint:ignore seedflow fixed shuffle order is algorithmic, not an experiment input
	return rand.New(rand.NewSource(1))
}
