// Command tool exercises the non-strict clockflow rules: cmd/ binaries
// may print and branch on timing (operator-facing output is their job),
// but timing-dependent seeds are flagged even here — with the written
// waiver form as the escape hatch.
package main

import (
	"fmt"
	"math/rand"

	"dcc/internal/telemetry"
)

func main() {
	clk := &telemetry.ManualClock{}
	d := clk.Now()
	fmt.Println("elapsed ns:", d) // timing output is what a cmd binary is for
	if d > 1_000_000 {            // branching on timing: allowed outside simulation packages
		fmt.Println("slow run")
	}
	_ = rand.New(rand.NewSource(d)) // want `timing-derived value seeds math/rand\.NewSource`
	//lint:ignore clockflow jitter seed only shuffles operator-facing progress output, never results
	_ = rand.New(rand.NewSource(d))
}
