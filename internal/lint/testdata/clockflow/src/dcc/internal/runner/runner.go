// Package runner is a corpus stub of dcc/internal/runner: clockflow
// treats DeriveSeed arguments as seed sinks in every package.
package runner

// DeriveSeed mirrors the real derivation entry point.
func DeriveSeed(base int64, stream uint64, run int) int64 {
	return base ^ int64(stream) ^ int64(run)
}
