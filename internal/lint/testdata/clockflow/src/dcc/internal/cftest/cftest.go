// Package cftest exercises the clockflow sinks inside a simulation
// package: every way a timing value can steer the deterministic engines
// must be flagged, and the sanctioned measure-only patterns must not.
package cftest

import (
	"math/rand"

	"dcc/internal/runner"
	"dcc/internal/telemetry"
)

type state struct {
	lastLatency int64
}

func record(int64) {}

// Steering: timing values reaching control flow, state, seeds, calls and
// returns.
func Steering(reg *telemetry.Registry, clk telemetry.Clock) int64 {
	sp := reg.StartSpan("phase")
	d := sp.End()
	if d > 1000 { // want `timing-derived value controls a branch in simulation package dcc/internal/cftest`
		record(0)
	}
	for i := int64(0); i < d; i++ { // want `timing-derived value controls a loop in simulation package dcc/internal/cftest`
		record(0)
	}
	switch d { // want `timing-derived value controls a switch in simulation package dcc/internal/cftest`
	}
	_ = rand.New(rand.NewSource(d))     // want `timing-derived value seeds math/rand\.NewSource; seeds must be reproducible from Config alone`
	_ = runner.DeriveSeed(1, 2, int(d)) // want `timing-derived value seeds dcc/internal/runner\.DeriveSeed`
	var s state
	s.lastLatency = d // want `timing-derived value stored into state in simulation package dcc/internal/cftest`
	record(d)         // want `timing-derived value escapes into a call argument in simulation package dcc/internal/cftest`
	t := clk.Now()
	return t // want `timing-derived value returned from simulation package dcc/internal/cftest`
}

// Arithmetic and conversions propagate taint through locals.
func Derived(reg *telemetry.Registry) {
	lat := reg.TimingHistogram("lat")
	p99 := lat.Quantile(0.99)
	us := float64(p99) / 1e3
	record(int64(us)) // want `timing-derived value escapes into a call argument in simulation package dcc/internal/cftest`
}

// Measuring: the sanctioned patterns — spans around work, observations
// into telemetry, discarded durations — produce no findings.
func Measuring(reg *telemetry.Registry) {
	sp := reg.StartSpan("phase")
	record(0)
	d := sp.End()
	reg.TimingHistogram("lat").Observe(d) // telemetry is the allowed destination
	reg.Counter("work").Add(1)

	sp2 := reg.StartSpan("phase2")
	defer sp2.End() // discarded duration: nothing flows

	n := int64(42) // untainted locals stay untainted
	if n > 3 {
		record(n)
	}
}
