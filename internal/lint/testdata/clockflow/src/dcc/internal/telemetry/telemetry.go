// Package telemetry is a corpus stub of the real dcc/internal/telemetry:
// just enough surface for the clockflow corpus to exercise the sanctioned
// sources (Clock.Now, Span.End, Hist.Quantile) and the allowed
// destinations (Observe, StartSpan). Sinks inside this package follow the
// non-strict rules — it is the one simulation package allowed to hold
// timing values.
package telemetry

// Clock is the injected time source.
type Clock interface {
	Now() int64
}

// ManualClock is the test clock.
type ManualClock struct{ now int64 }

// Now returns the current reading.
func (c *ManualClock) Now() int64 { return c.now }

// Span is a phase-scoped measurement.
type Span struct{ t0 int64 }

// End returns the span duration.
func (s Span) End() int64 { return s.t0 }

// Hist is a fixed-bucket histogram.
type Hist struct{ sum int64 }

// Observe records one value.
func (h *Hist) Observe(v int64) {
	if h != nil {
		h.sum += v
	}
}

// Quantile returns a quantile upper bound.
func (h *Hist) Quantile(q float64) int64 { return h.sum }

// Counter is a monotonic counter.
type Counter struct{ v int64 }

// Add increments the counter.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v += d
	}
}

// Registry holds named series.
type Registry struct{ clock Clock }

// StartSpan begins a span.
func (r *Registry) StartSpan(name string) Span {
	if r == nil || r.clock == nil {
		return Span{}
	}
	return Span{t0: r.clock.Now()}
}

// TimingHistogram returns a latency histogram.
func (r *Registry) TimingHistogram(name string) *Hist {
	if r == nil {
		return nil
	}
	return &Hist{}
}

// Counter returns a counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{}
}
