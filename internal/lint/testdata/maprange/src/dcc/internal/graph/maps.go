// Package graph poses as the real deterministic package of the same import
// path: map iteration order here is part of the reproducibility contract.
package graph

import "sort"

// Values ranges a map without sorting anything.
func Values(m map[int]int) []int {
	var out []int
	for _, v := range m { // want `range over map map\[int\]int in deterministic package dcc/internal/graph`
		out = append(out, v)
	}
	return out
}

// Keys collects then sorts: the blessed pattern.
func Keys(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// CountAbove carries a same-line waiver with a reason.
func CountAbove(m map[string]bool) int {
	n := 0
	//lint:ordered pure count, order-independent
	for range m {
		n++
	}
	return n
}

// CountInline carries the waiver as a trailing comment on the range line.
func CountInline(m map[string]bool) int {
	n := 0
	for range m { //lint:ordered pure count, order-independent
		n++
	}
	return n
}

// CountBare has a waiver with no reason: it does not waive.
func CountBare(m map[string]bool) int {
	n := 0
	//lint:ordered
	for range m { // want `range over map map\[string\]bool in deterministic package dcc/internal/graph`
		n++
	}
	return n
}
