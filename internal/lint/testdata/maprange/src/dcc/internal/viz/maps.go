// Package viz is not a deterministic package: map ranges are allowed.
package viz

// Values may range freely here.
func Values(m map[int]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
