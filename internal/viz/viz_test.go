package viz

import (
	"strings"
	"testing"

	"dcc/internal/geom"
	"dcc/internal/graph"
)

func testScene() Scene {
	g := graph.Cycle(4)
	return Scene{
		G: g,
		Pos: map[graph.NodeID]geom.Point{
			0: {X: 0, Y: 0}, 1: {X: 1, Y: 0}, 2: {X: 1, Y: 1}, 3: {X: 0, Y: 1},
		},
		Boundary: map[graph.NodeID]bool{0: true},
		Title:    "test scene",
	}
}

func TestRenderBasics(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, testScene(), Style{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if strings.Count(out, "<line") != 4 {
		t.Fatalf("expected 4 edge lines, got %d", strings.Count(out, "<line"))
	}
	if strings.Count(out, "<circle") != 3 {
		t.Fatalf("expected 3 circles, got %d", strings.Count(out, "<circle"))
	}
	// Boundary node drawn as square plus background rect.
	if strings.Count(out, "<rect") != 2 {
		t.Fatalf("expected background + 1 boundary rect, got %d", strings.Count(out, "<rect"))
	}
	if !strings.Contains(out, "test scene") {
		t.Fatal("title missing")
	}
}

func TestRenderDeletedMarkers(t *testing.T) {
	sc := testScene()
	sc.Deleted = []graph.NodeID{9}
	sc.DeletedPos = map[graph.NodeID]geom.Point{9: {X: 0.5, Y: 0.5}}
	var b strings.Builder
	if err := Render(&b, sc, Style{}); err != nil {
		t.Fatal(err)
	}
	// Two cross strokes plus four edges.
	if got := strings.Count(b.String(), "<line"); got != 6 {
		t.Fatalf("expected 6 lines (4 edges + 2 cross strokes), got %d", got)
	}
}

func TestRenderSkipsNodesWithoutPosition(t *testing.T) {
	sc := testScene()
	delete(sc.Pos, 2)
	var b strings.Builder
	if err := Render(&b, sc, Style{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Node 2 and its two incident edges are skipped.
	if strings.Count(out, "<circle") != 2 {
		t.Fatalf("expected 2 circles, got %d", strings.Count(out, "<circle"))
	}
	if strings.Count(out, "<line") != 2 {
		t.Fatalf("expected 2 edges, got %d", strings.Count(out, "<line"))
	}
}

func TestRenderNilGraph(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, Scene{}, Style{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}
