// Package viz renders embedded networks and coverage schedules as SVG —
// the visual analogue of the paper's Figures 2 and 7 (original network,
// boundary nodes, and the coverage sets after maximal vertex deletion).
package viz

import (
	"fmt"
	"io"
	"sort"

	"dcc/internal/geom"
	"dcc/internal/graph"
)

// Style configures the rendering.
type Style struct {
	// Scale converts deployment units to pixels (default 12).
	Scale float64
	// Margin is the pixel padding around the drawing (default 20).
	Margin float64
	// NodeRadius is the marker radius in pixels (default 3.5).
	NodeRadius float64
}

func (s Style) withDefaults() Style {
	if s.Scale <= 0 {
		s.Scale = 12
	}
	if s.Margin <= 0 {
		s.Margin = 20
	}
	if s.NodeRadius <= 0 {
		s.NodeRadius = 3.5
	}
	return s
}

// Scene is one network snapshot to draw.
type Scene struct {
	// G is the graph whose edges are drawn.
	G *graph.Graph
	// Pos maps node IDs to deployment coordinates. Nodes without a
	// position are skipped (virtual repair nodes, typically).
	Pos map[graph.NodeID]geom.Point
	// Boundary nodes are drawn as squares, others as circles.
	Boundary map[graph.NodeID]bool
	// Deleted nodes (optional) are drawn as faint crosses to visualise
	// what scheduling removed.
	Deleted []graph.NodeID
	// DeletedPos supplies positions for deleted nodes when they are no
	// longer in G; falls back to Pos.
	DeletedPos map[graph.NodeID]geom.Point
	// Title is printed above the drawing.
	Title string
}

// Render writes the scene as a standalone SVG document.
func Render(w io.Writer, sc Scene, style Style) error {
	style = style.withDefaults()
	if sc.G == nil {
		return fmt.Errorf("viz: nil graph")
	}
	minX, minY, maxX, maxY := bounds(sc)
	tx := func(p geom.Point) (float64, float64) {
		return style.Margin + (p.X-minX)*style.Scale,
			style.Margin + (maxY-p.Y)*style.Scale // flip Y for screen coords
	}
	width := style.Margin*2 + (maxX-minX)*style.Scale
	height := style.Margin*2 + (maxY-minY)*style.Scale + 18

	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n",
		width, height, width, height)
	p("<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n")
	if sc.Title != "" {
		p("<text x=\"%.0f\" y=\"14\" font-family=\"sans-serif\" font-size=\"12\">%s</text>\n",
			style.Margin, sc.Title)
	}
	// Edges.
	p("<g stroke=\"#999\" stroke-width=\"0.7\">\n")
	for _, e := range sc.G.Edges() {
		pu, uok := sc.Pos[e.U]
		pv, vok := sc.Pos[e.V]
		if !uok || !vok {
			continue
		}
		x1, y1 := tx(pu)
		x2, y2 := tx(pv)
		p("<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\"/>\n", x1, y1, x2, y2)
	}
	p("</g>\n")
	// Deleted markers.
	if len(sc.Deleted) > 0 {
		p("<g stroke=\"#d88\" stroke-width=\"1\">\n")
		for _, v := range sc.Deleted {
			pos, ok := sc.DeletedPos[v]
			if !ok {
				pos, ok = sc.Pos[v]
			}
			if !ok {
				continue
			}
			x, y := tx(pos)
			r := style.NodeRadius * 0.8
			p("<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\"/>\n", x-r, y-r, x+r, y+r)
			p("<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\"/>\n", x-r, y+r, x+r, y-r)
		}
		p("</g>\n")
	}
	// Nodes (deterministic order).
	nodes := sc.G.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	p("<g>\n")
	for _, v := range nodes {
		pos, ok := sc.Pos[v]
		if !ok {
			continue
		}
		x, y := tx(pos)
		if sc.Boundary[v] {
			r := style.NodeRadius
			p("<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"#2a6\" stroke=\"black\" stroke-width=\"0.5\"/>\n",
				x-r, y-r, 2*r, 2*r)
		} else {
			p("<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"#36c\" stroke=\"black\" stroke-width=\"0.5\"/>\n",
				x, y, style.NodeRadius)
		}
	}
	p("</g>\n</svg>\n")
	return err
}

func bounds(sc Scene) (minX, minY, maxX, maxY float64) {
	first := true
	consider := func(p geom.Point) {
		if first {
			minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
			first = false
			return
		}
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	for _, p := range sc.Pos {
		consider(p)
	}
	for _, p := range sc.DeletedPos {
		consider(p)
	}
	if first {
		return 0, 0, 1, 1
	}
	return minX, minY, maxX, maxY
}
