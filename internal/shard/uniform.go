package shard

import (
	"math/rand"

	"dcc/internal/geom"
)

// UniformInput synthesizes a uniform deployment in shard-ingestible
// form: interior nodes uniformly at random in the side×side square plus
// an undeletable boundary ring on its border, spaced rc/2 apart so the
// frame stays connected. Links derive geometrically (Input.G is nil —
// the unit-disk rule i ↔ j iff dist ≤ rc), which is what lets the
// million-node bench run without a global graph ever existing. Node IDs
// are interior first (0..n-1), ring after.
//
// The generator is a bench/scale harness, not a paper scenario: it
// skips the Deploy-level support band and obstacle handling, because
// the shard engine's contract is topology-in, schedule-out.
func UniformInput(seed int64, interior int, side, rc float64) Input {
	rng := rand.New(rand.NewSource(seed))
	rect := geom.Square(side)
	pts := geom.UniformPoints(rng, interior, rect)
	ring := geom.RingPoints(rect, rc/2)
	all := append(pts, ring...)
	boundary := make([]bool, len(all))
	for i := interior; i < len(all); i++ {
		boundary[i] = true
	}
	return Input{Points: all, Rc: rc, Boundary: boundary}
}
