package shard

import (
	"math"
	"sort"

	"dcc/internal/core"
	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/runner"
)

// The coordinator's election protocol. The goal is byte-identity with
// the sequential canonical engine, so the coordinator runs the one true
// core.ElectionQueue and treats the regions purely as verdict servers:
//
//  1. Propose — pop a speculative batch off the queue: a maximal
//     contiguous prefix of the canonical order whose members are
//     pairwise farther apart than k·Rc. Geometric separation beyond
//     k·Rc implies graph distance beyond k (no edge exceeds Rc), which
//     by the dirty-ball lemma makes the members' verdicts mutually
//     independent — each member's verdict on the pre-batch residual
//     equals its verdict at its own sequential turn. The first
//     conflicting pop is pushed back and closes the batch.
//  2. Verdict wave — group the batch by owner region and evaluate
//     deletability on runner.Map. Regions are disjoint across groups, so
//     each vpt.Cache is touched by exactly one worker; results join
//     index-ordered, worker-count-invariant.
//  3. Replay + arbitrate — consume the batch strictly in canonical
//     order. A deletion is committed to every member region (the
//     halo-delta exchange); the regions' dirty sets union to exactly the
//     global dirty set, whose non-boundary members re-enter the queue.
//     Before consuming the next member the coordinator peeks the queue:
//     if a freshly dirtied node outranks the member, the sequential
//     engine would have tested that node first, so the remaining members
//     are deferred (their speculative verdicts are discarded — not
//     counted) and a new batch forms. DESIGN.md §15 walks the induction.
//
// maxBatch caps speculation per wave; any cap preserves the replay
// argument, it only bounds wasted verdicts when a batch aborts.
const maxBatch = 1024

// candidate is one speculatively popped batch member.
type candidate struct {
	v    graph.NodeID
	prio uint64
}

// elect runs the batched canonical election to fixpoint and returns the
// deleted nodes in deletion order plus the consumed test count — both
// byte-identical to core.CanonicalElect on the global topology.
func (e *engine) elect() ([]graph.NodeID, int, error) {
	internal := make([]graph.NodeID, 0, e.n)
	for i := 0; i < e.n; i++ {
		if !e.in.Boundary[i] {
			internal = append(internal, graph.NodeID(i))
		}
	}
	eq := core.NewElectionQueue(e.opts.Seed, internal)
	hash := newConflictHash(e.conf)
	var (
		deleted []graph.NodeID
		tests   int
		batch   []candidate
	)
	for eq.Len() > 0 {
		// Propose.
		batch = batch[:0]
		hash.reset()
		for len(batch) < maxBatch {
			v, ok := eq.Pop()
			if !ok {
				break
			}
			if !e.alive[v] {
				continue // skipped without a test, like the sequential engine
			}
			p := e.in.Points[v]
			if hash.conflicts(p) {
				eq.Push(v)
				e.stats.Deferred++
				break
			}
			batch = append(batch, candidate{v: v, prio: core.CanonicalPriority(e.opts.Seed, v)})
			hash.add(p)
		}
		if len(batch) == 0 {
			continue
		}
		e.stats.Batches++

		// Verdict wave.
		verdict, err := e.batchVerdicts(batch)
		if err != nil {
			return nil, 0, err
		}

		// Replay + arbitrate.
		for bi, c := range batch {
			tests++
			if !verdict[bi] {
				continue
			}
			deleted = append(deleted, c.v)
			e.alive[c.v] = false
			for _, w := range e.commit(c.v) {
				if !e.in.Boundary[w] {
					eq.Push(w)
				}
			}
			if bi+1 == len(batch) {
				break
			}
			next := batch[bi+1]
			if p, w, ok := eq.Peek(); ok && (p < next.prio || (p == next.prio && w < next.v)) {
				// A dirtied node outranks the rest of the batch: defer the
				// unconsumed members so the canonical order stays exact.
				for _, r := range batch[bi+1:] {
					eq.Push(r.v)
					e.stats.Deferred++
				}
				break
			}
		}
	}
	return deleted, tests, nil
}

// batchVerdicts evaluates the batch's deletability on the owner
// regions' caches, one runner.Map job per distinct region.
func (e *engine) batchVerdicts(batch []candidate) ([]bool, error) {
	groups := make(map[int32][]int32)
	var order []int32
	for bi, c := range batch {
		s := e.owner[c.v]
		if _, seen := groups[s]; !seen {
			order = append(order, s)
		}
		groups[s] = append(groups[s], int32(bi))
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	per, err := runner.Map(len(order), e.opts.Workers, func(gi int) ([]bool, error) {
		cache := e.regions[order[gi]].cache
		idxs := groups[order[gi]]
		out := make([]bool, len(idxs))
		for j, bi := range idxs {
			out[j] = cache.Deletable(batch[bi].v)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	verdict := make([]bool, len(batch))
	for gi, s := range order {
		for j, bi := range groups[s] {
			verdict[bi] = per[gi][j]
		}
	}
	return verdict, nil
}

// commit applies the deletion of v to every region holding a replica —
// owner and halo copies alike, so every region's residual view stays
// consistent with the global one — and returns the union of the
// regions' dirty sets, sorted and deduplicated. The owner's dirty set
// is exactly the global k-hop dirty ball (halo invariant) and the
// replicas' sets are subsets of it, so the union equals what the
// unsharded cache's Commit would have reported.
func (e *engine) commit(v graph.NodeID) []graph.NodeID {
	x0, x1, y0, y1 := e.gr.memberRange(e.in.Points[v])
	own := e.owner[v]
	var dirty []graph.NodeID
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			s := int32(cy*e.gr.gx + cx)
			if s != own {
				e.stats.HaloDeltas++
			}
			dirty = append(dirty, e.regions[s].cache.Commit([]graph.NodeID{v})...)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	w := 0
	for i, d := range dirty {
		if i > 0 && dirty[i-1] == d {
			continue
		}
		dirty[w] = d
		w++
	}
	return dirty[:w]
}

// conflictHash is a spatial hash over the current batch's positions
// with cell size equal to the conflict radius: any point within the
// radius of p lies in p's 3×3 cell neighbourhood. Lookups are direct
// map indexing in a fixed cell order — never a map range — so batch
// formation is deterministic.
type conflictHash struct {
	cell float64
	m    map[[2]int32][]geom.Point
	keys [][2]int32 // occupied cells, for O(batch) reset between waves
}

func newConflictHash(cell float64) *conflictHash {
	return &conflictHash{cell: cell, m: make(map[[2]int32][]geom.Point)}
}

func (h *conflictHash) key(p geom.Point) [2]int32 {
	return [2]int32{int32(math.Floor(p.X / h.cell)), int32(math.Floor(p.Y / h.cell))}
}

func (h *conflictHash) reset() {
	for _, k := range h.keys {
		delete(h.m, k)
	}
	h.keys = h.keys[:0]
}

func (h *conflictHash) add(p geom.Point) {
	k := h.key(p)
	if _, ok := h.m[k]; !ok {
		h.keys = append(h.keys, k)
	}
	h.m[k] = append(h.m[k], p)
}

func (h *conflictHash) conflicts(p geom.Point) bool {
	base := h.key(p)
	r2 := h.cell * h.cell
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for _, q := range h.m[[2]int32{base[0] + dx, base[1] + dy}] {
				ddx, ddy := p.X-q.X, p.Y-q.Y
				if ddx*ddx+ddy*ddy <= r2 {
					return true
				}
			}
		}
	}
	return false
}
