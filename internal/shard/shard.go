// Package shard schedules confine-based coverage over a spatially
// partitioned deployment: the bounding rectangle is cut into a grid of
// regions, each owning a local CSR subgraph plus a halo of replicated
// border nodes, and a coordinator replays the canonical election across
// the regions in geometry-separated batches.
//
// The design stands on the paper's locality results (Theorem 3 /
// Section V): deletability is a k-hop-local test with k = ⌈τ/2⌉, so a
// region that replicates every node within k·Rc of its cell sees, for
// each node it owns, exactly the global k-hop ball — every edge is at
// most Rc long, so a k-hop path starting at an owned node never leaves
// the cell's k·Rc-neighbourhood (DESIGN.md §15 has the full halo
// invariant). Verdicts therefore evaluate shard-locally with no global
// graph anywhere: each region's subgraph is assembled by a
// graph.StreamBuilder from streamed node/edge records, and the only
// global state the coordinator keeps is flat per-node arrays (owner
// cell, liveness, position).
//
// Equivalence contract: Schedule returns a core.Result byte-identical
// (reflect.DeepEqual) to core.Schedule in Canonical mode on the same
// topology, for every shard count and every worker count. The
// coordinator owns the one core.ElectionQueue; shards only ever receive
// deletion deltas and answer verdict queries, mirroring the controller
// split of SDN-style duty-cycling (SNIPPETS.md §1). Batching is
// speculative and validated: members are pairwise farther than k·Rc
// apart (verdict-independent), and a batch is cut short the moment a
// dirtied node outranks the next member (DESIGN.md §15 proves the replay
// is exactly the sequential order).
package shard

import (
	"errors"
	"fmt"
	"math"

	"dcc/internal/core"
	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/runner"
	"dcc/internal/telemetry"
	"dcc/internal/vpt"
)

// ErrUnsupported marks inputs outside the engine's geometric contract —
// today, a link longer than Rc, which would let a k-hop ball escape the
// halo. The public layer maps it onto dcc.ErrShardedUnsupported.
var ErrUnsupported = errors.New("shard: input outside the engine's geometric contract")

// Options configures a sharded schedule. The Seed/Workers/Telemetry
// trio follows the repo-wide config vocabulary (DESIGN.md §15): Seed is
// the base seed of the canonical priorities, Workers caps concurrency
// (0 = all CPUs, 1 = sequential; the result is identical for any
// value), Telemetry is the optional metrics registry (nil = no
// collection; never changes results).
type Options struct {
	// Tau is the confine size τ ≥ 3.
	Tau int
	// Seed is the base seed of the canonical deletion priorities. The
	// kept set is a pure function of (topology, Seed).
	Seed int64
	// Workers caps the worker count of every parallel section (0 = all
	// CPUs, 1 = sequential). Results are byte-identical for any value.
	Workers int
	// Shards is the number of grid regions (0 = auto-size at roughly one
	// region per 4096 nodes). Results are byte-identical for any value.
	Shards int
	// HaloHops is the replication depth of each region's halo in hops
	// (0 = the minimum sound depth ⌈τ/2⌉). Values below ⌈τ/2⌉ are
	// rejected: a thinner halo breaks the locality proof. Deeper halos
	// trade memory for nothing here — the verdict never looks past
	// ⌈τ/2⌉ hops — but are accepted for experimentation.
	HaloHops int
	// Telemetry is the optional metrics registry (nil = off). Collection
	// never changes the schedule.
	Telemetry *telemetry.Registry
}

// Input is a deployment in shard-ingestible form: positions plus
// boundary flags, with links either induced from an explicit graph or
// derived geometrically. Node IDs are the position indices 0..n-1.
type Input struct {
	// Points holds the node positions; node i sits at Points[i].
	Points []geom.Point
	// Rc is the maximum link length. Every edge must span at most Rc —
	// the halo soundness argument is geometric, so a longer link would
	// let a k-hop ball escape the replicated neighbourhood; Schedule
	// rejects such inputs.
	Rc float64
	// Boundary flags the undeletable frame nodes (len(Boundary) ==
	// len(Points)).
	Boundary []bool
	// G optionally supplies the link graph over IDs 0..n-1 (required
	// for non-geometric link models such as quasi-UDG, where links
	// cannot be re-derived from positions). nil derives unit-disk links
	// locally: i ↔ j iff dist ≤ Rc, exactly geom.UDG's rule.
	G *graph.Graph
}

// Stats describes the work a sharded schedule performed, alongside the
// core.Result counters.
type Stats struct {
	// Shards is the region count actually used; GridX×GridY = Shards.
	Shards, GridX, GridY int
	// HaloHops is the replication depth actually used.
	HaloHops int
	// Replicas counts node placements across regions (n means no node
	// was replicated; the excess over n is the halo overhead).
	Replicas int
	// MaxLocal is the largest region's node count, halo included.
	MaxLocal int
	// Batches counts coordinator rounds (parallel verdict waves).
	Batches int
	// Deferred counts batch members pushed back — by the geometric
	// conflict cut at batch formation or by the replay validation.
	Deferred int
	// Tests and Deletions mirror the core.Result counters.
	Tests, Deletions int
	// HaloDeltas counts deletion deltas applied to non-owner replicas —
	// the cross-region traffic a distributed deployment would pay.
	HaloDeltas int
}

// Schedule runs the sharded canonical election over the deployment and
// returns a core.Result byte-identical to core.Schedule with Mode
// Canonical on the same topology, plus the shard-level work counters.
func Schedule(in Input, opts Options) (core.Result, Stats, error) {
	e, err := newEngine(in, opts)
	if err != nil {
		return core.Result{}, Stats{}, err
	}
	reg := opts.Telemetry
	sp := reg.StartSpan("shard.partition")
	if err := e.build(); err != nil {
		return core.Result{}, Stats{}, err
	}
	sp.End()

	sp = reg.StartSpan("shard.elect")
	deleted, tests, err := e.elect()
	if err != nil {
		return core.Result{}, Stats{}, err
	}
	sp.End()

	sp = reg.StartSpan("shard.assemble")
	res := e.assemble(deleted, tests)
	sp.End()
	e.publish(reg)
	return res, e.stats, nil
}

// engine is the coordinator state of one sharded schedule.
type engine struct {
	in   Input
	opts Options
	gr   grid
	n    int
	k    int     // verdict locality radius ⌈τ/2⌉
	conf float64 // geometric conflict radius k·Rc (plus rounding slack)

	owner   []int32 // owning region per node
	alive   []bool  // coordinator liveness per node
	regions []*region
	stats   Stats
}

// region is one grid cell's share of the deployment: the subgraph
// induced on its owned-plus-halo node set and the deletability cache
// over it. Regions never talk to each other — the coordinator pushes
// deletion deltas in and pulls verdicts and dirty sets out.
type region struct {
	g     *graph.Graph
	cache *vpt.Cache
}

func newEngine(in Input, opts Options) (*engine, error) {
	n := len(in.Points)
	if n == 0 {
		return nil, errors.New("shard: empty deployment")
	}
	if in.Rc <= 0 {
		return nil, fmt.Errorf("shard: non-positive Rc %v", in.Rc)
	}
	if len(in.Boundary) != n {
		return nil, fmt.Errorf("shard: %d boundary flags for %d nodes", len(in.Boundary), n)
	}
	if opts.Tau < 3 {
		return nil, fmt.Errorf("shard: confine size %d < 3", opts.Tau)
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("shard: negative shard count %d", opts.Shards)
	}
	k := vpt.NeighborhoodRadius(opts.Tau)
	halo := opts.HaloHops
	if halo == 0 {
		halo = k
	}
	if halo < k {
		return nil, fmt.Errorf("shard: halo depth %d below the sound minimum ⌈τ/2⌉ = %d", halo, k)
	}
	if in.G != nil {
		if got := in.G.NumNodes(); got != n {
			return nil, fmt.Errorf("shard: graph has %d nodes, deployment has %d", got, n)
		}
		for i := 0; i < n; i++ {
			if in.G.NodeAt(i) != graph.NodeID(i) {
				return nil, fmt.Errorf("shard: node IDs must be dense 0..n-1 (index %d holds %d)", i, in.G.NodeAt(i))
			}
		}
	}

	shards := opts.Shards
	if shards == 0 {
		shards = autoShards(n)
	}
	gr := newGrid(in.Points, shards, float64(halo)*in.Rc)
	e := &engine{
		in:   in,
		opts: opts,
		gr:   gr,
		n:    n,
		k:    k,
		// Inflate the conflict radius by a whisper of slack so summed
		// floating-point edge lengths can never certify independence that
		// an exact k-hop walk would deny. Determinism is unaffected — the
		// radius is the same constant on every run.
		conf:  float64(k) * in.Rc * (1 + 1e-9),
		owner: make([]int32, n),
		alive: make([]bool, n),
	}
	e.stats.Shards = gr.gx * gr.gy
	e.stats.GridX, e.stats.GridY = gr.gx, gr.gy
	e.stats.HaloHops = halo
	for i := range e.alive {
		e.alive[i] = true
	}
	return e, nil
}

// autoShards sizes the grid at roughly one region per 4096 nodes,
// rounded to a perfect square so cells stay near-square.
func autoShards(n int) int {
	r := int(math.Sqrt(float64(n) / 4096))
	if r < 1 {
		r = 1
	}
	return r * r
}

// build streams every node and edge record into its member regions'
// StreamBuilders and assembles the per-region subgraphs and caches in
// parallel. No global adjacency is ever materialized: the only
// edge-model state is either the caller's CSR graph (iterated once) or
// geom.PairsWithin's spatial hash of positions.
func (e *engine) build() error {
	nr := e.gr.gx * e.gr.gy
	builders := make([]*graph.StreamBuilder, nr)
	for s := range builders {
		builders[s] = graph.NewStreamBuilder(0, 0)
	}
	for i, p := range e.in.Points {
		e.owner[i] = int32(e.gr.ownerOf(p))
		x0, x1, y0, y1 := e.gr.memberRange(p)
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				builders[cy*e.gr.gx+cx].AddNode(graph.NodeID(i))
				e.stats.Replicas++
			}
		}
	}
	emit := func(i, j int) {
		ax0, ax1, ay0, ay1 := e.gr.memberRange(e.in.Points[i])
		bx0, bx1, by0, by1 := e.gr.memberRange(e.in.Points[j])
		x0, x1 := maxInt(ax0, bx0), minInt(ax1, bx1)
		y0, y1 := maxInt(ay0, by0), minInt(ay1, by1)
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				builders[cy*e.gr.gx+cx].AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	if g := e.in.G; g != nil {
		for ei := 0; ei < g.NumEdges(); ei++ {
			ed := g.EdgeAt(ei)
			u, v := int(ed.U), int(ed.V)
			if d := geom.Dist(e.in.Points[u], e.in.Points[v]); d > e.in.Rc {
				return fmt.Errorf("%w: edge {%d,%d} spans %v > Rc %v — the halo invariant needs every link within Rc", ErrUnsupported, u, v, d, e.in.Rc)
			}
			emit(u, v)
		}
	} else {
		geom.PairsWithin(e.in.Points, e.in.Rc, func(i, j int, _ float64) { emit(i, j) })
	}

	regions, err := runner.Map(nr, e.opts.Workers, func(s int) (*region, error) {
		//lint:ignore barrier task s consumes only its own builders[s]; the builders are disjoint per region and never shared across tasks
		g, err := builders[s].Build()
		if err != nil {
			return nil, fmt.Errorf("shard: region %d: %w", s, err)
		}
		c := vpt.NewCache(g, e.opts.Tau)
		c.Instrument(e.opts.Telemetry)
		return &region{g: g, cache: c}, nil
	})
	if err != nil {
		return err
	}
	e.regions = regions
	for _, r := range regions {
		if nn := r.g.NumNodes(); nn > e.stats.MaxLocal {
			e.stats.MaxLocal = nn
		}
	}
	return nil
}

// assemble gathers the global result from the regions: liveness is the
// coordinator's flat array, and each surviving edge is emitted exactly
// once by the region owning its lower endpoint. The StreamBuilder yields
// the same CSR layout core's finishResult materializes, so the full
// Result — Final graph included — compares byte-identical.
func (e *engine) assemble(deleted []graph.NodeID, tests int) core.Result {
	sb := graph.NewStreamBuilder(e.n-len(deleted), 0)
	for i := 0; i < e.n; i++ {
		if e.alive[i] {
			sb.AddNode(graph.NodeID(i))
		}
	}
	for s, r := range e.regions {
		for ei := 0; ei < r.g.NumEdges(); ei++ {
			ed := r.g.EdgeAt(ei)
			if e.owner[ed.U] != int32(s) {
				continue
			}
			if !e.alive[ed.U] || !e.alive[ed.V] {
				continue
			}
			sb.AddEdge(ed.U, ed.V)
		}
	}
	final := sb.MustBuild()
	kept := final.Nodes()
	var internal []graph.NodeID
	for _, v := range kept {
		if !e.in.Boundary[v] {
			internal = append(internal, v)
		}
	}
	e.stats.Tests = tests
	e.stats.Deletions = len(deleted)
	return core.Result{
		Final:        final,
		Kept:         kept,
		KeptInternal: internal,
		Deleted:      deleted,
		Stats: core.Stats{
			Rounds:    1,
			Tests:     tests,
			Deletions: len(deleted),
			Deleted:   len(deleted),
		},
	}
}

// publish flushes the shard-level counters into the registry after the
// run — every one of them is a pure function of (topology, seed), so
// they land in the deterministic class regardless of Workers or Shards.
func (e *engine) publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("shard.regions").Add(int64(e.stats.Shards))
	reg.Counter("shard.replicas").Add(int64(e.stats.Replicas))
	reg.Counter("shard.batches").Add(int64(e.stats.Batches))
	reg.Counter("shard.deferred").Add(int64(e.stats.Deferred))
	reg.Counter("shard.tests").Add(int64(e.stats.Tests))
	reg.Counter("shard.deletions").Add(int64(e.stats.Deletions))
	reg.Counter("shard.halo_deltas").Add(int64(e.stats.HaloDeltas))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
