package shard

import (
	"reflect"
	"strings"
	"testing"

	"dcc/internal/core"
	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/vpt"
)

// canonicalResult runs the unsharded canonical engine over the input's
// global topology and assembles the same Result shape core.Schedule
// returns — the ground truth every sharded configuration must match
// byte-for-byte.
func canonicalResult(t *testing.T, in Input, tau int, seed int64) core.Result {
	t.Helper()
	g := in.G
	if g == nil {
		g = geom.UDG(in.Points, in.Rc)
	}
	boundary := make(map[graph.NodeID]bool, len(in.Boundary))
	for i, b := range in.Boundary {
		if b {
			boundary[graph.NodeID(i)] = true
		}
	}
	net := core.Network{G: g, Boundary: boundary}
	cache := vpt.NewCache(g, tau)
	deleted, tests := core.CanonicalElect(net, seed, cache, cache.Deletable)
	final := cache.LiveGraph()
	kept := final.Nodes()
	var internal []graph.NodeID
	for _, v := range kept {
		if !boundary[v] {
			internal = append(internal, v)
		}
	}
	return core.Result{
		Final:        final,
		Kept:         kept,
		KeptInternal: internal,
		Deleted:      deleted,
		Stats: core.Stats{
			Rounds:    1,
			Tests:     tests,
			Deletions: len(deleted),
			Deleted:   len(deleted),
		},
	}
}

func mustSchedule(t *testing.T, in Input, opts Options) (core.Result, Stats) {
	t.Helper()
	res, st, err := Schedule(in, opts)
	if err != nil {
		t.Fatalf("Schedule(%+v): %v", opts, err)
	}
	return res, st
}

// TestScheduleMatchesCanonical: the full Result — Final graph, kept
// sets, deletion order, Stats — must be reflect.DeepEqual to the
// unsharded canonical engine for every (shards, workers, halo)
// configuration, on both geometric and explicit-graph inputs.
func TestScheduleMatchesCanonical(t *testing.T) {
	taus, seeds, shardCounts := []int{3, 4, 5}, []int64{1, 7}, []int{1, 2, 4, 9, 16}
	if testing.Short() {
		// Smoke slice for the check.sh race gate: one tau, one seed, the
		// shard counts that exercise 1×1, square and non-square grids.
		taus, seeds, shardCounts = []int{4}, []int64{1}, []int{1, 4, 9}
	}
	for _, tau := range taus {
		for _, seed := range seeds {
			in := UniformInput(seed, 140, 10, 1.35)
			want := canonicalResult(t, in, tau, seed)
			if want.Stats.Deletions == 0 {
				t.Fatalf("tau=%d seed=%d: degenerate scenario, no deletions", tau, seed)
			}
			for _, shards := range shardCounts {
				for _, workers := range []int{1, 4} {
					got, st := mustSchedule(t, in, Options{
						Tau: tau, Seed: seed, Workers: workers, Shards: shards,
					})
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("tau=%d seed=%d shards=%d workers=%d: result differs from canonical\nwant stats %+v deleted %v\ngot  stats %+v deleted %v",
							tau, seed, shards, workers, want.Stats, want.Deleted, got.Stats, got.Deleted)
					}
					if st.Shards != shards || st.GridX*st.GridY != shards {
						t.Fatalf("shard stats %+v inconsistent with requested %d", st, shards)
					}
					if st.Tests != want.Stats.Tests || st.Deletions != want.Stats.Deletions {
						t.Fatalf("shard stats %+v disagree with core stats %+v", st, want.Stats)
					}
				}
			}
		}
	}
}

// TestExplicitGraphMatchesGeometric: handing the UDG explicitly must
// yield the identical result to deriving it geometrically — the two
// edge-ingestion paths are interchangeable when the link model is
// unit-disk.
func TestExplicitGraphMatchesGeometric(t *testing.T) {
	in := UniformInput(3, 120, 10, 1.3)
	opts := Options{Tau: 4, Seed: 3, Shards: 4}
	geo, _ := mustSchedule(t, in, opts)
	in.G = geom.UDG(in.Points, in.Rc)
	exp, _ := mustSchedule(t, in, opts)
	if !reflect.DeepEqual(geo, exp) {
		t.Fatal("explicit-graph input differs from geometric input")
	}
}

// TestDeepHaloMatchesMinimum: replicating deeper than ⌈τ/2⌉ changes
// memory, never the schedule.
func TestDeepHaloMatchesMinimum(t *testing.T) {
	in := UniformInput(5, 120, 10, 1.3)
	minHalo, _ := mustSchedule(t, in, Options{Tau: 5, Seed: 5, Shards: 9})
	deep, st := mustSchedule(t, in, Options{Tau: 5, Seed: 5, Shards: 9, HaloHops: 5})
	if !reflect.DeepEqual(minHalo, deep) {
		t.Fatal("deep halo changed the schedule")
	}
	if st.HaloHops != 5 {
		t.Fatalf("HaloHops stat = %d, want 5", st.HaloHops)
	}
}

// TestAutoShards: Shards 0 picks a grid and still matches canonical.
func TestAutoShards(t *testing.T) {
	in := UniformInput(2, 150, 10, 1.3)
	want := canonicalResult(t, in, 4, 2)
	got, st := mustSchedule(t, in, Options{Tau: 4, Seed: 2})
	if !reflect.DeepEqual(want, got) {
		t.Fatal("auto-sharded result differs from canonical")
	}
	if st.Shards < 1 {
		t.Fatalf("auto shard count %d", st.Shards)
	}
}

// TestScheduleValidation: every malformed input is rejected with a
// message naming the problem, before any scheduling work happens.
func TestScheduleValidation(t *testing.T) {
	good := UniformInput(1, 40, 6, 1.3)
	cases := []struct {
		name string
		in   Input
		opts Options
		frag string
	}{
		{"empty", Input{Rc: 1}, Options{Tau: 3}, "empty"},
		{"rc", Input{Points: good.Points, Boundary: good.Boundary}, Options{Tau: 3}, "Rc"},
		{"boundaryLen", Input{Points: good.Points, Rc: 1.3, Boundary: good.Boundary[1:]}, Options{Tau: 3}, "boundary flags"},
		{"tau", good, Options{Tau: 2}, "confine size"},
		{"negShards", good, Options{Tau: 3, Shards: -1}, "negative shard count"},
		{"thinHalo", good, Options{Tau: 5, HaloHops: 1}, "halo depth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Schedule(tc.in, tc.opts)
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %v, want fragment %q", err, tc.frag)
			}
		})
	}

	t.Run("longEdge", func(t *testing.T) {
		b := graph.NewBuilder()
		b.AddEdge(0, 1)
		in := Input{
			Points:   []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}},
			Rc:       1,
			Boundary: []bool{false, false},
			G:        b.MustBuild(),
		}
		_, _, err := Schedule(in, Options{Tau: 3})
		if err == nil || !strings.Contains(err.Error(), "halo invariant") {
			t.Fatalf("error %v, want long-edge rejection", err)
		}
	})

	t.Run("sparseIDs", func(t *testing.T) {
		b := graph.NewBuilder()
		b.AddEdge(0, 2)
		in := Input{
			Points:   []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}},
			Rc:       1,
			Boundary: []bool{false, false},
			G:        b.MustBuild(),
		}
		_, _, err := Schedule(in, Options{Tau: 3})
		if err == nil || !strings.Contains(err.Error(), "dense") {
			t.Fatalf("error %v, want dense-ID rejection", err)
		}
	})
}

// TestHaloDeltasFlow: with more than one shard on a dense deployment,
// some deletion must land on a replica — otherwise the halo exchange is
// dead code and the equivalence tests prove nothing about it.
func TestHaloDeltasFlow(t *testing.T) {
	in := UniformInput(1, 150, 10, 1.35)
	_, st := mustSchedule(t, in, Options{Tau: 4, Seed: 1, Shards: 9})
	if st.HaloDeltas == 0 {
		t.Fatal("no halo deltas on a 9-shard dense deployment")
	}
	if st.Replicas <= len(in.Points) {
		t.Fatalf("replicas %d imply an empty halo", st.Replicas)
	}
	if st.Batches == 0 || st.Tests == 0 {
		t.Fatalf("degenerate stats %+v", st)
	}
}
