package shard

import (
	"math"

	"dcc/internal/geom"
)

// grid is the shard map: a gx×gy decomposition of the deployment's
// bounding rectangle. Region s = cy·gx + cx owns every node whose
// position falls in its cell (border positions clamp toward the last
// cell, so ownership is total and unique), and replicates as halo every
// node within haloR of the cell — conservatively measured per axis, so
// the member set is a superset of the Euclidean haloR-neighbourhood.
// Supersets keep the halo invariant sound (more replication never loses
// a k-hop path) and the per-axis test keeps membership a pair of integer
// ranges, which is what lets the edge streamer intersect two nodes'
// memberships in O(1).
type grid struct {
	minX, minY float64
	cw, ch     float64 // cell extents; ≤ 0 collapses the axis to one column/row
	gx, gy     int
	haloR      float64
}

// newGrid builds the shard map over the bounding rectangle of pts. The
// shard count factors as gx·gy with gx the largest divisor not above
// √shards; the wider factor goes to the wider rectangle axis so cells
// stay near-square.
func newGrid(pts []geom.Point, shards int, haloR float64) grid {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	small := int(math.Sqrt(float64(shards)))
	for shards%small != 0 {
		small--
	}
	big := shards / small
	gx, gy := big, small
	if maxX-minX < maxY-minY {
		gx, gy = small, big
	}
	return grid{
		minX: minX, minY: minY,
		cw: (maxX - minX) / float64(gx),
		ch: (maxY - minY) / float64(gy),
		gx: gx, gy: gy,
		haloR: haloR,
	}
}

// axisCell maps a coordinate offset to its cell index on one axis,
// clamped into [0, cells). A non-positive extent (all points share the
// coordinate) collapses to cell 0.
func axisCell(off, extent float64, cells int) int {
	if extent <= 0 {
		return 0
	}
	c := int(math.Floor(off / extent))
	if c < 0 {
		return 0
	}
	if c >= cells {
		return cells - 1
	}
	return c
}

// ownerOf returns the region owning position p.
func (gr grid) ownerOf(p geom.Point) int {
	cx := axisCell(p.X-gr.minX, gr.cw, gr.gx)
	cy := axisCell(p.Y-gr.minY, gr.ch, gr.gy)
	return cy*gr.gx + cx
}

// memberRange returns the inclusive cell ranges [x0,x1]×[y0,y1] of the
// regions p is a member of: every cell within haloR of p on both axes.
// The owner cell is always inside the range.
func (gr grid) memberRange(p geom.Point) (x0, x1, y0, y1 int) {
	if gr.cw <= 0 {
		x0, x1 = 0, gr.gx-1
	} else {
		x0 = axisCell(p.X-gr.minX-gr.haloR, gr.cw, gr.gx)
		x1 = axisCell(p.X-gr.minX+gr.haloR, gr.cw, gr.gx)
	}
	if gr.ch <= 0 {
		y0, y1 = 0, gr.gy-1
	} else {
		y0 = axisCell(p.Y-gr.minY-gr.haloR, gr.ch, gr.gy)
		y1 = axisCell(p.Y-gr.minY+gr.haloR, gr.ch, gr.gy)
	}
	return x0, x1, y0, y1
}
