// Package nets provides small, hand-constructed example networks used by
// tests, examples and documentation — most importantly the möbius-band
// network of the paper's Figure 1, the separating example between the
// cycle-partition criterion and the homology-group criterion.
package nets

import (
	"dcc/internal/graph"
	"dcc/internal/simplicial"
)

// MobiusOuterLen is the length of the outer boundary cycle of Mobius().
const MobiusOuterLen = 8

// Mobius returns the möbius-band network of Figure 1: an outer boundary
// 8-cycle (nodes 0..7, the paper's a..h), a core 4-cycle (nodes 8..11, the
// paper's 1..4), and a strip of 16 triangles that wraps around the core
// twice. The outer boundary is the GF(2) sum of all triangles (hence
// 3-partitionable), yet the complex has the homology type of a circle
// (H1 ≅ Z/2), so the homology-group criterion wrongly reports a hole.
//
// It returns the connectivity graph, the Rips 2-complex, and the outer
// boundary vertex order.
func Mobius() (*graph.Graph, *simplicial.Complex, []graph.NodeID) {
	outer := func(j int) graph.NodeID { return graph.NodeID(j % 8) }
	core := func(i int) graph.NodeID { return graph.NodeID(8 + i%4) }

	b := graph.NewBuilder()
	for j := 0; j < 8; j++ {
		b.AddEdge(outer(j), outer(j+1)) // outer boundary
		b.AddEdge(outer(j), core(j))    // spoke
		b.AddEdge(outer(j+1), core(j))  // diagonal
	}
	for i := 0; i < 4; i++ {
		b.AddEdge(core(i), core(i+1)) // core circle
	}
	g := b.MustBuild()

	var tris []simplicial.Triangle
	for j := 0; j < 8; j++ {
		tris = append(tris,
			simplicial.Triangle{A: outer(j), B: outer(j + 1), C: core(j)},
			simplicial.Triangle{A: outer(j + 1), B: core(j), C: core(j + 1)},
		)
	}
	k := simplicial.New(g, tris)

	boundary := make([]graph.NodeID, 8)
	for j := 0; j < 8; j++ {
		boundary[j] = outer(j)
	}
	return g, k, boundary
}

// MinimalMobius returns the 5-vertex minimal triangulated möbius band:
// triangles (i, i+1, i+2) mod 5. Its boundary is the pentagram 5-cycle
// 0-2-4-1-3. Returned are the graph, the complex (with exactly those 5
// triangles), and the boundary vertex order.
//
// Note that the 1-skeleton is K5, so the Rips complex of the graph would
// contain all 10 triangles; the explicit 5-triangle complex is what makes
// this a möbius band.
func MinimalMobius() (*graph.Graph, *simplicial.Complex, []graph.NodeID) {
	g := graph.Complete(5)
	var tris []simplicial.Triangle
	for i := 0; i < 5; i++ {
		tris = append(tris, simplicial.Triangle{
			A: graph.NodeID(i), B: graph.NodeID((i + 1) % 5), C: graph.NodeID((i + 2) % 5),
		})
	}
	k := simplicial.New(g, tris)
	boundary := []graph.NodeID{0, 2, 4, 1, 3}
	return g, k, boundary
}
