package nets

import (
	"testing"

	"dcc/internal/cycles"
	"dcc/internal/graph"
)

// TestMobiusSeparatesCriteria reproduces the heart of the paper's Figure 1:
// the möbius-band network is correctly certified by the cycle-partition
// criterion (the outer boundary is 3-partitionable) while the
// homology-group criterion fails (H1 is non-trivial, same homology type as
// a circle).
func TestMobiusSeparatesCriteria(t *testing.T) {
	g, k, boundary := Mobius()

	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d, want 12", g.NumNodes())
	}
	if g.NumEdges() != 28 {
		t.Fatalf("edges = %d, want 28", g.NumEdges())
	}
	if k.NumTriangles() != 16 {
		t.Fatalf("triangles = %d, want 16", k.NumTriangles())
	}

	// Homology criterion: H1 has the homology type of a circle.
	if got := k.H1Rank(); got != 1 {
		t.Fatalf("H1 rank = %d, want 1 (möbius core circle)", got)
	}

	// Cycle-partition criterion: outer boundary is the sum of all triangles.
	outer, err := cycles.FromVertices(g, boundary)
	if err != nil {
		t.Fatal(err)
	}
	var tris []cycles.Cycle
	for _, tr := range k.Triangles() {
		c, err := cycles.FromVertices(g, []graph.NodeID{tr.A, tr.B, tr.C})
		if err != nil {
			t.Fatal(err)
		}
		tris = append(tris, c)
	}
	if !cycles.Sum(g.NumEdges(), tris...).Equal(outer.Vector(g.NumEdges())) {
		t.Fatal("outer boundary is not the sum of all triangles")
	}
	if !cycles.Partitionable(g, outer.Vector(g.NumEdges()), 3) {
		t.Fatal("outer boundary not 3-partitionable")
	}

	// The homology criterion fails even RELATIVE to the outer fence: the
	// core circle is not null-homologous.
	if k.H1TrivialRelative(boundary) {
		t.Fatal("relative H1 should be non-trivial for the möbius band")
	}
}

func TestMinimalMobius(t *testing.T) {
	g, k, boundary := MinimalMobius()
	if k.NumTriangles() != 5 {
		t.Fatalf("triangles = %d, want 5", k.NumTriangles())
	}
	if got := k.H1Rank(); got != 1 {
		t.Fatalf("H1 rank = %d, want 1", got)
	}
	outer, err := cycles.FromVertices(g, boundary)
	if err != nil {
		t.Fatal(err)
	}
	if outer.Len() != 5 {
		t.Fatalf("boundary length = %d, want 5", outer.Len())
	}
	if !cycles.Partitionable(g, outer.Vector(g.NumEdges()), 3) {
		t.Fatal("minimal möbius boundary not 3-partitionable")
	}
}
