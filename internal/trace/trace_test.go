package trace

import (
	"math"
	"testing"

	"dcc/internal/graph"
	"dcc/internal/stats"
)

// smallConfig keeps trace tests fast: fewer motes and epochs than the
// GreenOrbs-scale defaults.
func smallConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		InteriorNodes: 120,
		Epochs:        40,
	}.ApplyDefaults()
}

func TestApplyDefaults(t *testing.T) {
	c := Config{}.ApplyDefaults()
	if c.InteriorNodes != 270 || c.RecordsPerPacket != 10 || c.Epochs != 288 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	// Explicit values are preserved.
	c2 := Config{InteriorNodes: 50, Epochs: 10}.ApplyDefaults()
	if c2.InteriorNodes != 50 || c2.Epochs != 10 {
		t.Fatalf("explicit values overridden: %+v", c2)
	}
}

func TestGenerateBasicShape(t *testing.T) {
	cfg := smallConfig(1)
	tr := Generate(cfg)
	if len(tr.Pts) != cfg.InteriorNodes+len(tr.Ring) {
		t.Fatalf("points %d, ring %d, interior %d", len(tr.Pts), len(tr.Ring), cfg.InteriorNodes)
	}
	if len(tr.Ring) < 20 {
		t.Fatalf("ring too small: %d", len(tr.Ring))
	}
	edges := tr.UndirectedEdges()
	if len(edges) < cfg.InteriorNodes {
		t.Fatalf("too few undirected edges: %d", len(edges))
	}
	// Sorted by decreasing RSSI.
	for i := 1; i < len(edges); i++ {
		if edges[i].RSSI > edges[i-1].RSSI {
			t.Fatal("edges not sorted by RSSI")
		}
	}
	// Normalised endpoints.
	for _, e := range edges {
		if e.Edge.U >= e.Edge.V {
			t.Fatalf("unnormalised edge %+v", e.Edge)
		}
	}
}

func TestRSSIRange(t *testing.T) {
	tr := Generate(smallConfig(2))
	for _, v := range tr.RSSIValues() {
		if v > 0 || v < -96 {
			t.Fatalf("implausible RSSI %v dBm", v)
		}
	}
}

func TestThresholdForFraction(t *testing.T) {
	tr := Generate(smallConfig(3))
	edges := tr.UndirectedEdges()
	th := tr.ThresholdForFraction(0.8)
	kept := 0
	for _, e := range edges {
		if e.RSSI >= th {
			kept++
		}
	}
	frac := float64(kept) / float64(len(edges))
	if frac < 0.78 || frac > 0.82 {
		t.Fatalf("retained fraction %v, want ≈0.8", frac)
	}
	// The paper's threshold lands near −85 dBm; ours should be in a
	// plausible dBm band (not a degenerate value).
	if th > -60 || th < -95 {
		t.Fatalf("threshold %v dBm outside plausible band", th)
	}
}

func TestExtractGraphMonotoneInThreshold(t *testing.T) {
	tr := Generate(smallConfig(4))
	g85 := tr.ExtractGraph(-85)
	g75 := tr.ExtractGraph(-75)
	if g75.NumEdges() > g85.NumEdges() {
		t.Fatal("stricter threshold produced more edges")
	}
	if g85.NumNodes() != len(tr.Pts) {
		t.Fatal("isolated nodes dropped by ExtractGraph")
	}
}

func TestNetworkValidAtDefaultThreshold(t *testing.T) {
	tr := Generate(smallConfig(5))
	th := tr.ThresholdForFraction(0.8)
	net, err := tr.Network(th)
	if err != nil {
		t.Fatal(err)
	}
	if !net.G.IsConnected() {
		t.Fatal("trace network not connected after pruning")
	}
	// All ring nodes survive and are boundary.
	for _, v := range tr.Ring {
		if !net.G.HasNode(v) || !net.Boundary[v] {
			t.Fatalf("ring node %d missing or unmarked", v)
		}
	}
	// Interior nodes exist.
	if len(net.InternalNodes()) < 50 {
		t.Fatalf("only %d interior nodes survived", len(net.InternalNodes()))
	}
}

func TestNetworkRejectsAbsurdThreshold(t *testing.T) {
	tr := Generate(smallConfig(6))
	if _, err := tr.Network(-40); err == nil {
		t.Fatal("threshold above all ring RSSIs accepted")
	}
}

func TestLongLinksExist(t *testing.T) {
	// The paper attributes the trace results to long-range links; the
	// shadowing model must produce edges noticeably longer than the
	// deterministic cutoff.
	tr := Generate(smallConfig(7))
	th := tr.ThresholdForFraction(0.8)
	// Deterministic range at threshold: d where base RSSI = th.
	cfg := tr.cfg
	detRange := pow10((cfg.TxPowerDBm - cfg.PathLoss0 - th) / (10 * cfg.PathLossExp))
	long := 0
	for _, e := range tr.UndirectedEdges() {
		if e.RSSI < th {
			continue
		}
		d := dist(tr, e.Edge)
		if d > 1.2*detRange {
			long++
		}
	}
	if long == 0 {
		t.Fatalf("no long links beyond the deterministic range %.1f", detRange)
	}
}

func pow10(x float64) float64 {
	return math.Pow(10, x)
}

func dist(tr *Trace, e graph.Edge) float64 {
	return math.Hypot(tr.Pts[e.U].X-tr.Pts[e.V].X, tr.Pts[e.U].Y-tr.Pts[e.V].Y)
}

func TestDeterminism(t *testing.T) {
	a := Generate(smallConfig(9))
	b := Generate(smallConfig(9))
	ea, eb := a.UndirectedEdges(), b.UndirectedEdges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestCDFShape(t *testing.T) {
	// Figure 5 analogue: the RSSI CDF should be smooth-ish (monotone with
	// wide support), covering at least 20 dB between 5% and 95% quantiles.
	tr := Generate(smallConfig(10))
	c := stats.NewCDF(tr.RSSIValues())
	spread := c.Quantile(0.95) - c.Quantile(0.05)
	if spread < 10 {
		t.Fatalf("RSSI spread %v dB too narrow for a realistic CDF", spread)
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := Config{Seed: 1, InteriorNodes: 120, Epochs: 20}.ApplyDefaults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}
