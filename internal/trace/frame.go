package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary record framing — the durability contract of the streaming
// write-ahead log (internal/stream) and of any other length-delimited
// record file this package grows. One record on the wire is
//
//	uvarint payload-length | crc32c(payload) little-endian | payload
//
// The framing is self-delimiting and torn-write-detecting: a reader that
// hits EOF mid-record reports ErrTruncatedRecord (the kill-at-any-byte
// case — the surviving prefix of records is still fully usable), and a
// record whose checksum or length field is damaged reports ErrCorruptRecord
// with a descriptive position. Readers never guess: every byte of a
// returned payload was covered by its checksum.

// DefaultMaxRecordLen bounds record payloads when the caller passes no
// explicit limit: 1 MiB, far above any event or snapshot record the
// streaming engine writes, far below anything that could amplify a
// corrupted length field into an OOM.
const DefaultMaxRecordLen = 1 << 20

// ErrTruncatedRecord is wrapped by record-reading errors caused by EOF in
// the middle of a record — a torn write or truncated tail. Match with
// errors.Is.
var ErrTruncatedRecord = errors.New("trace: truncated record")

// ErrCorruptRecord is wrapped by record-reading errors caused by damaged
// bytes: a checksum mismatch or an implausible length field. Match with
// errors.Is.
var ErrCorruptRecord = errors.New("trace: corrupt record")

// crcTable is the Castagnoli polynomial table shared by all records.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord appends the framed encoding of payload to dst and returns
// the extended slice.
func AppendRecord(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// WriteRecord writes one framed record to w and returns the number of
// bytes written.
func WriteRecord(w io.Writer, payload []byte) (int, error) {
	buf := AppendRecord(make([]byte, 0, len(payload)+binary.MaxVarintLen64+4), payload)
	n, err := w.Write(buf)
	if err != nil {
		return n, fmt.Errorf("trace: write record: %w", err)
	}
	return n, nil
}

// RecordReader decodes a stream of framed records. It tracks the byte
// offset of the valid prefix so recovery code can truncate a damaged log
// exactly at the last intact record.
type RecordReader struct {
	r   *bufio.Reader
	max int
	off int64 // bytes consumed through the last successfully decoded record
}

// NewRecordReader wraps r. maxLen bounds the accepted payload length;
// maxLen ≤ 0 selects DefaultMaxRecordLen.
func NewRecordReader(r io.Reader, maxLen int) *RecordReader {
	if maxLen <= 0 {
		maxLen = DefaultMaxRecordLen
	}
	return &RecordReader{r: bufio.NewReader(r), max: maxLen}
}

// Offset returns the number of bytes consumed through the last record Next
// successfully returned — the length of the valid prefix. After a
// truncation or corruption error this is the exact offset recovery should
// truncate the log to.
func (rr *RecordReader) Offset() int64 { return rr.off }

// Next returns the payload of the next record (a fresh copy). At a clean
// record boundary it returns io.EOF. EOF inside a record wraps
// ErrTruncatedRecord; a damaged length field or checksum mismatch wraps
// ErrCorruptRecord. After any non-EOF error the reader is poisoned — the
// stream position is no longer trustworthy and further Next calls
// re-report from the same position.
func (rr *RecordReader) Next() ([]byte, error) {
	n := int64(0) // bytes of the current record consumed so far
	length := uint64(0)
	for shift := uint(0); ; shift += 7 {
		b, err := rr.r.ReadByte()
		if err == io.EOF {
			if n == 0 {
				return nil, io.EOF // clean boundary
			}
			return nil, fmt.Errorf("%w: offset %d: EOF inside length prefix", ErrTruncatedRecord, rr.off+n)
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read record at offset %d: %w", rr.off+n, err)
		}
		n++
		if shift >= 63 && b > 1 {
			return nil, fmt.Errorf("%w: offset %d: length prefix overflows uint64", ErrCorruptRecord, rr.off)
		}
		length |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
	}
	if length > uint64(rr.max) {
		return nil, fmt.Errorf("%w: offset %d: record length %d exceeds the %d-byte limit",
			ErrCorruptRecord, rr.off, length, rr.max)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(rr.r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: offset %d: EOF inside checksum", ErrTruncatedRecord, rr.off+n)
	}
	n += 4
	payload := make([]byte, length)
	if m, err := io.ReadFull(rr.r, payload); err != nil {
		return nil, fmt.Errorf("%w: offset %d: EOF after %d of %d payload bytes",
			ErrTruncatedRecord, rr.off+n+int64(m), m, length)
	}
	n += int64(length)
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("%w: offset %d: checksum %08x, want %08x", ErrCorruptRecord, rr.off, got, want)
	}
	rr.off += n
	return payload, nil
}
