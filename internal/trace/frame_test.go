package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// readAll drains a RecordReader, returning payloads and the terminal error.
func readAll(t *testing.T, buf []byte, maxLen int) ([][]byte, *RecordReader, error) {
	t.Helper()
	rr := NewRecordReader(bytes.NewReader(buf), maxLen)
	var out [][]byte
	for {
		p, err := rr.Next()
		if err == io.EOF {
			return out, rr, nil
		}
		if err != nil {
			return out, rr, err
		}
		out = append(out, p)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("hello, wal"),
		bytes.Repeat([]byte{0xAB}, 1000),
	}
	var buf bytes.Buffer
	var appended []byte
	for _, p := range payloads {
		n, err := WriteRecord(&buf, p)
		if err != nil {
			t.Fatal(err)
		}
		before := len(appended)
		appended = AppendRecord(appended, p)
		if n != len(appended)-before {
			t.Fatalf("WriteRecord wrote %d bytes, AppendRecord produced %d", n, len(appended)-before)
		}
	}
	if !bytes.Equal(buf.Bytes(), appended) {
		t.Fatal("WriteRecord and AppendRecord disagree on the byte image")
	}
	got, rr, err := readAll(t, buf.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("decoded %d records, want %d", len(got), len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(got[i], p) {
			t.Fatalf("record %d: %q, want %q", i, got[i], p)
		}
	}
	if rr.Offset() != int64(len(buf.Bytes())) {
		t.Fatalf("Offset() = %d after clean drain, want %d", rr.Offset(), len(buf.Bytes()))
	}
}

// TestRecordTornAtEveryByte is the framing half of the kill-at-any-byte
// contract: for every strict prefix of a valid multi-record stream, the
// reader must return exactly the records that fit completely, then either
// a clean EOF (cut at a boundary) or ErrTruncatedRecord — never a panic,
// never a short or invented payload — and Offset() must point at the end
// of the last intact record.
func TestRecordTornAtEveryByte(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var full []byte
	var ends []int64 // cumulative record end offsets
	var payloads [][]byte
	for i := 0; i < 6; i++ {
		p := make([]byte, rng.Intn(40))
		rng.Read(p)
		payloads = append(payloads, p)
		full = AppendRecord(full, p)
		ends = append(ends, int64(len(full)))
	}
	for cut := 0; cut <= len(full); cut++ {
		wantRecs := 0
		var wantOff int64
		for i, e := range ends {
			if int64(cut) >= e {
				wantRecs = i + 1
				wantOff = e
			}
		}
		got, rr, err := readAll(t, full[:cut], 0)
		if len(got) != wantRecs {
			t.Fatalf("cut %d: decoded %d records, want %d", cut, len(got), wantRecs)
		}
		for i := range got {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("cut %d: record %d corrupted", cut, i)
			}
		}
		atBoundary := int64(cut) == wantOff
		if atBoundary && err != nil {
			t.Fatalf("cut %d at record boundary: unexpected error %v", cut, err)
		}
		if !atBoundary && !errors.Is(err, ErrTruncatedRecord) {
			t.Fatalf("cut %d mid-record: err = %v, want ErrTruncatedRecord", cut, err)
		}
		if rr.Offset() != wantOff {
			t.Fatalf("cut %d: Offset() = %d, want %d", cut, rr.Offset(), wantOff)
		}
	}
}

func TestRecordChecksumMismatch(t *testing.T) {
	full := AppendRecord(nil, []byte("intact"))
	base := len(full)
	full = AppendRecord(full, []byte("damaged"))
	full[base+5+3] ^= 0x01 // flip a payload byte of the second record
	got, rr, err := readAll(t, full, 0)
	if len(got) != 1 || !bytes.Equal(got[0], []byte("intact")) {
		t.Fatalf("intact prefix not returned: %q", got)
	}
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("err = %v, want ErrCorruptRecord", err)
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("undescriptive checksum error: %v", err)
	}
	if rr.Offset() != int64(base) {
		t.Fatalf("Offset() = %d, want %d (end of intact record)", rr.Offset(), base)
	}
}

func TestRecordOversizedLength(t *testing.T) {
	// A length field far beyond the limit must be rejected before any
	// payload allocation, with the limit in the message.
	buf := []byte{0xFF, 0xFF, 0xFF, 0x7F} // uvarint ≈ 2^28
	buf = append(buf, 0, 0, 0, 0)
	_, _, err := readAll(t, buf, 1024)
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("err = %v, want ErrCorruptRecord", err)
	}
	if !strings.Contains(err.Error(), "1024") {
		t.Fatalf("limit missing from error: %v", err)
	}
	// Same bytes under the default limit: still oversized.
	_, _, err = readAll(t, buf, 0)
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("default limit: err = %v, want ErrCorruptRecord", err)
	}
}

func TestRecordLengthPrefixOverflow(t *testing.T) {
	// Ten continuation bytes overflow a uint64 length.
	buf := bytes.Repeat([]byte{0xFF}, 9)
	buf = append(buf, 0x7F)
	_, _, err := readAll(t, buf, 0)
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("err = %v, want ErrCorruptRecord", err)
	}
}

func TestRecordTruncatedChecksum(t *testing.T) {
	full := AppendRecord(nil, []byte("xyz"))
	_, _, err := readAll(t, full[:2], 0) // length byte + 1 of 4 crc bytes
	if !errors.Is(err, ErrTruncatedRecord) {
		t.Fatalf("err = %v, want ErrTruncatedRecord", err)
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("undescriptive truncation error: %v", err)
	}
}
