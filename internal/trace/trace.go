// Package trace synthesises a GreenOrbs-like sensor-network trace and
// extracts connectivity graphs from it, reproducing the pipeline of the
// paper's §VI-B.
//
// The paper uses real packet logs from the GreenOrbs forest deployment
// (~300 motes): every packet carries up to ten records naming the
// neighbours with the best received signal strength (RSSI); records are
// accumulated over two days, directed edges are dropped, and the undirected
// edges whose average RSSI clears a threshold (≈ −85 dBm, retaining ≈80% of
// edges) form the communication graph.
//
// The proprietary trace is unavailable, so this package substitutes a
// synthetic radio model that reproduces the two properties the paper
// credits for its trace results (§VI-B): long-range links (log-normal
// shadowing outliers) and a long, narrow, boundary-dominated deployment
// shape. The packet → best-RSSI-record → accumulate → threshold pipeline is
// then exercised unchanged. See DESIGN.md §5 for the substitution record.
package trace

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"

	"dcc/internal/core"
	"dcc/internal/geom"
	"dcc/internal/graph"
)

// Config parameterises trace synthesis. ApplyDefaults fills zero fields
// with values calibrated to resemble the GreenOrbs deployment.
type Config struct {
	// Seed drives deployment, shadowing and per-packet fading.
	Seed int64
	// InteriorNodes is the number of randomly deployed motes (excluding
	// the boundary ring).
	InteriorNodes int
	// Region is the deployment strip.
	Region geom.Rect
	// RingSpacing is the distance between consecutive boundary-ring motes.
	RingSpacing float64

	// TxPowerDBm, PathLoss0, PathLossExp and ShadowSigmaDB define the
	// log-distance path-loss model:
	//   RSSI(d) = TxPowerDBm − PathLoss0 − 10·PathLossExp·log10(d) + N(0,σ)
	// with a static per-link shadowing term (symmetric) plus per-packet
	// temporal fading of FadingSigmaDB.
	TxPowerDBm    float64
	PathLoss0     float64
	PathLossExp   float64
	ShadowSigmaDB float64
	FadingSigmaDB float64
	// SensitivityDBm is the radio floor below which packets are inaudible.
	SensitivityDBm float64
	// ShadowFullDist is the distance (metres) at which shadowing reaches
	// its full σ; shorter links see proportionally less obstruction
	// variance (σ_eff = σ·min(1, d/ShadowFullDist)).
	ShadowFullDist float64

	// Epochs is the number of collection epochs ("two days" of packets).
	Epochs int
	// RecordsPerPacket bounds the best-RSSI records per packet (10 in
	// GreenOrbs).
	RecordsPerPacket int
}

// ApplyDefaults returns the configuration with zero fields defaulted.
func (c Config) ApplyDefaults() Config {
	if c.InteriorNodes == 0 {
		c.InteriorNodes = 270
	}
	if c.Region == (geom.Rect{}) {
		c.Region = geom.Rect{MaxX: 100, MaxY: 14}
	}
	if c.RingSpacing == 0 {
		c.RingSpacing = 2.5
	}
	if c.TxPowerDBm == 0 {
		c.TxPowerDBm = 0
	}
	if c.PathLoss0 == 0 {
		c.PathLoss0 = 65
	}
	if c.PathLossExp == 0 {
		c.PathLossExp = 3.0
	}
	if c.ShadowSigmaDB == 0 {
		c.ShadowSigmaDB = 6
	}
	if c.FadingSigmaDB == 0 {
		c.FadingSigmaDB = 2
	}
	if c.SensitivityDBm == 0 {
		c.SensitivityDBm = -95
	}
	if c.ShadowFullDist == 0 {
		c.ShadowFullDist = 10
	}
	if c.Epochs == 0 {
		c.Epochs = 288 // two days of 10-minute epochs
	}
	if c.RecordsPerPacket == 0 {
		c.RecordsPerPacket = 10
	}
	return c
}

// Trace holds a synthesised packet log in accumulated form.
type Trace struct {
	cfg Config
	// Pts maps node ID (= index) to position; ring nodes come last.
	Pts []geom.Point
	// Ring lists the boundary-ring node IDs in cycle order.
	Ring []graph.NodeID

	// rssiSum / rssiN accumulate the per-directed-edge record statistics.
	rssiSum map[[2]graph.NodeID]float64
	rssiN   map[[2]graph.NodeID]int

	// logErr records a failure while streaming the packet log.
	logErr error
}

// Generate synthesises a trace: it deploys the motes, simulates the epochs
// and accumulates the best-RSSI records.
func Generate(cfg Config) *Trace {
	return generate(cfg.ApplyDefaults(), nil)
}

// generate is the shared implementation; when logW is non-nil every packet
// is also streamed to it in the textual log format.
func generate(cfg Config, logW io.Writer) *Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))

	interior := geom.UniformPoints(rng, cfg.InteriorNodes, cfg.Region.Shrink(cfg.RingSpacing/2))
	ringPts := geom.RingPoints(cfg.Region, cfg.RingSpacing)
	pts := append(interior, ringPts...)
	ring := make([]graph.NodeID, len(ringPts))
	for i := range ringPts {
		ring[i] = graph.NodeID(cfg.InteriorNodes + i)
	}

	t := &Trace{
		cfg:     cfg,
		Pts:     pts,
		Ring:    ring,
		rssiSum: make(map[[2]graph.NodeID]float64),
		rssiN:   make(map[[2]graph.NodeID]int),
	}

	// Static per-link shadowing, symmetric: shadow[{i,j}] ~ N(0, σ).
	n := len(pts)
	shadow := make(map[[2]int]float64)
	staticRSSI := func(i, j int) (float64, bool) {
		d := geom.Dist(pts[i], pts[j])
		if d < 1 {
			d = 1
		}
		base := cfg.TxPowerDBm - cfg.PathLoss0 - 10*cfg.PathLossExp*math.Log10(d)
		if base < cfg.SensitivityDBm-3*cfg.ShadowSigmaDB {
			return 0, false // hopelessly out of range; skip for speed
		}
		key := [2]int{i, j}
		if i > j {
			key = [2]int{j, i}
		}
		s, ok := shadow[key]
		if !ok {
			sigma := cfg.ShadowSigmaDB * math.Min(1, d/cfg.ShadowFullDist)
			s = rng.NormFloat64() * sigma
			shadow[key] = s
		}
		return base + s, true
	}

	// Precompute each receiver's audible neighbour list once (static part).
	type link struct {
		peer graph.NodeID
		rssi float64
	}
	audible := make([][]link, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			r, ok := staticRSSI(i, j)
			if ok && r >= cfg.SensitivityDBm {
				audible[i] = append(audible[i], link{peer: graph.NodeID(j), rssi: r})
			}
		}
	}

	if logW != nil {
		if err := writeHeader(logW, cfg, t); err != nil {
			t.logErr = fmt.Errorf("trace: write log header: %w", err)
			return t
		}
	}

	// Epoch loop: every node emits one packet per epoch carrying its
	// current best-RSSI records (static RSSI + temporal fading).
	scratch := make([]link, 0, 64)
	var line strings.Builder
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for i := 0; i < n; i++ {
			scratch = scratch[:0]
			for _, l := range audible[i] {
				inst := l.rssi + rng.NormFloat64()*cfg.FadingSigmaDB
				if inst >= cfg.SensitivityDBm {
					scratch = append(scratch, link{peer: l.peer, rssi: inst})
				}
			}
			sort.Slice(scratch, func(a, b int) bool { return scratch[a].rssi > scratch[b].rssi })
			top := scratch
			if len(top) > cfg.RecordsPerPacket {
				top = top[:cfg.RecordsPerPacket]
			}
			for _, l := range top {
				key := [2]graph.NodeID{graph.NodeID(i), l.peer}
				t.rssiSum[key] += l.rssi
				t.rssiN[key]++
			}
			if logW != nil && len(top) > 0 && t.logErr == nil {
				line.Reset()
				fmt.Fprintf(&line, "pkt %d %d", epoch, i)
				for _, l := range top {
					fmt.Fprintf(&line, " %d:%.1f", l.peer, l.rssi)
				}
				line.WriteByte('\n')
				if _, err := io.WriteString(logW, line.String()); err != nil {
					t.logErr = fmt.Errorf("trace: write log: %w", err)
				}
			}
		}
	}
	return t
}

// EdgeRSSI is an undirected edge with its accumulated average RSSI.
type EdgeRSSI struct {
	Edge graph.Edge
	RSSI float64
}

// UndirectedEdges drops one-directional records (as the paper does) and
// returns the undirected edges observed in both directions with their
// average RSSI, sorted by decreasing RSSI.
func (t *Trace) UndirectedEdges() []EdgeRSSI {
	var out []EdgeRSSI
	for key, sum := range t.rssiSum {
		i, j := key[0], key[1]
		if i >= j {
			continue // handled from the (smaller, larger) direction
		}
		rev := [2]graph.NodeID{j, i}
		revSum, ok := t.rssiSum[rev]
		if !ok {
			continue // directed-only: eliminated
		}
		avg := (sum/float64(t.rssiN[key]) + revSum/float64(t.rssiN[rev])) / 2
		out = append(out, EdgeRSSI{Edge: graph.Edge{U: i, V: j}, RSSI: avg})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].RSSI != out[b].RSSI {
			return out[a].RSSI > out[b].RSSI
		}
		if out[a].Edge.U != out[b].Edge.U {
			return out[a].Edge.U < out[b].Edge.U
		}
		return out[a].Edge.V < out[b].Edge.V
	})
	return out
}

// RSSIValues returns the average RSSI of every undirected edge (the data of
// the paper's Figure 5 CDF).
func (t *Trace) RSSIValues() []float64 {
	edges := t.UndirectedEdges()
	out := make([]float64, len(edges))
	for i, e := range edges {
		out[i] = e.RSSI
	}
	return out
}

// ThresholdForFraction returns the RSSI threshold that retains the given
// fraction of undirected edges (the paper picks ≈ −85 dBm to retain 80%).
func (t *Trace) ThresholdForFraction(frac float64) float64 {
	edges := t.UndirectedEdges()
	if len(edges) == 0 {
		return 0
	}
	keep := int(frac * float64(len(edges)))
	if keep <= 0 {
		keep = 1
	}
	if keep > len(edges) {
		keep = len(edges)
	}
	return edges[keep-1].RSSI
}

// ExtractGraph builds the communication graph from edges whose average
// RSSI clears the threshold. All deployed nodes appear (possibly isolated).
func (t *Trace) ExtractGraph(thresholdDBm float64) *graph.Graph {
	b := graph.NewBuilder()
	for i := range t.Pts {
		b.AddNode(graph.NodeID(i))
	}
	for _, e := range t.UndirectedEdges() {
		if e.RSSI >= thresholdDBm {
			b.AddEdge(e.Edge.U, e.Edge.V)
		}
	}
	return b.MustBuild()
}

// Network extracts the communication graph at the given threshold and
// packages it as a scheduling input: the boundary ring nodes are the
// boundary set and the ring order is the outer cycle. It errors if the ring
// is not closed in the extracted graph (threshold too aggressive) or if the
// graph is disconnected after dropping isolated motes.
func (t *Trace) Network(thresholdDBm float64) (core.Network, error) {
	g := t.ExtractGraph(thresholdDBm)
	for i := range t.Ring {
		u, v := t.Ring[i], t.Ring[(i+1)%len(t.Ring)]
		if !g.HasEdge(u, v) {
			return core.Network{}, fmt.Errorf(
				"trace: ring edge {%d,%d} below threshold %.1f dBm", u, v, thresholdDBm)
		}
	}
	// Drop motes disconnected from the ring (dead spots), as a deployment
	// would.
	comp := componentOf(g, t.Ring[0])
	g = g.InducedSubgraph(comp)
	net := core.Network{
		G:              g,
		Boundary:       make(map[graph.NodeID]bool, len(t.Ring)),
		BoundaryCycles: [][]graph.NodeID{t.Ring},
	}
	for _, v := range t.Ring {
		net.Boundary[v] = true
	}
	if err := net.Validate(); err != nil {
		return core.Network{}, fmt.Errorf("trace: %w", err)
	}
	return net, nil
}

func componentOf(g *graph.Graph, v graph.NodeID) []graph.NodeID {
	for _, comp := range g.ConnectedComponents() {
		for _, u := range comp {
			if u == v {
				return comp
			}
		}
	}
	return nil
}
