package trace

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestLogRoundTrip(t *testing.T) {
	cfg := Config{Seed: 30, InteriorNodes: 60, Epochs: 12}.ApplyDefaults()
	var log strings.Builder
	orig, err := GenerateWithLog(cfg, &log)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseLog(strings.NewReader(log.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Ring and node count survive.
	if len(parsed.Ring) != len(orig.Ring) {
		t.Fatalf("ring %d vs %d", len(parsed.Ring), len(orig.Ring))
	}
	if len(parsed.Pts) != len(orig.Pts) {
		t.Fatalf("nodes %d vs %d", len(parsed.Pts), len(orig.Pts))
	}
	// Edge sets identical; RSSI within formatting precision (1 decimal).
	eo, ep := orig.UndirectedEdges(), parsed.UndirectedEdges()
	if len(eo) != len(ep) {
		t.Fatalf("edges %d vs %d", len(eo), len(ep))
	}
	po := make(map[[2]int]float64, len(eo))
	for _, e := range eo {
		po[[2]int{int(e.Edge.U), int(e.Edge.V)}] = e.RSSI
	}
	for _, e := range ep {
		want, ok := po[[2]int{int(e.Edge.U), int(e.Edge.V)}]
		if !ok {
			t.Fatalf("edge %v missing from original", e.Edge)
		}
		if math.Abs(e.RSSI-want) > 0.06 {
			t.Fatalf("edge %v RSSI %.3f vs %.3f beyond precision", e.Edge, e.RSSI, want)
		}
	}
	// The extracted networks agree at a common threshold.
	th := orig.ThresholdForFraction(0.8)
	g1 := orig.ExtractGraph(th)
	g2 := parsed.ExtractGraph(th)
	diff := g1.NumEdges() - g2.NumEdges()
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.01*float64(g1.NumEdges())+2 {
		t.Fatalf("extracted edges differ: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	// Positions survive for rendering (3-decimal precision).
	if math.Abs(parsed.Pts[0].X-orig.Pts[0].X) > 5e-4 ||
		math.Abs(parsed.Pts[0].Y-orig.Pts[0].Y) > 5e-4 {
		t.Fatalf("position mismatch: %+v vs %+v", parsed.Pts[0], orig.Pts[0])
	}
}

func TestParsedTraceSchedulable(t *testing.T) {
	cfg := Config{Seed: 31, InteriorNodes: 60, Epochs: 12}.ApplyDefaults()
	var log strings.Builder
	if _, err := GenerateWithLog(cfg, &log); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseLog(strings.NewReader(log.String()))
	if err != nil {
		t.Fatal(err)
	}
	net, err := parsed.Network(parsed.ThresholdForFraction(0.8))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseLogErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad version", "# greenorbs-sim v9 nodes=3\nring 0 1 2\n"},
		{"no header", "ring 0 1\npkt 0 0 1:-50\n"},
		{"no ring", "# greenorbs-sim v1 nodes=3\npkt 0 0 1:-50.0\n"},
		{"bad directive", "# greenorbs-sim v1 nodes=3\nring 0 1\nzap\n"},
		{"bad record", "# greenorbs-sim v1 nodes=3\nring 0 1\npkt 0 0 notarecord\n"},
		{"bad rssi", "# greenorbs-sim v1 nodes=3\nring 0 1\npkt 0 0 1:loud\n"},
		{"id out of range", "# greenorbs-sim v1 nodes=3\nring 0 9\n"},
		{"negative id", "# greenorbs-sim v1 nodes=3\nring -1\n"},
		{"bad epoch", "# greenorbs-sim v1 nodes=3\nring 0 1\npkt x 0 1:-50.0\n"},
		{"bad pos", "# greenorbs-sim v1 nodes=3\nring 0 1\npos 0 a b\n"},
		{"bad header kv", "# greenorbs-sim v1 nodes\nring 0\n"},
		{"ring before header", "ring 0 1\n# greenorbs-sim v1 nodes=3\n"},
		{"pos before header", "pos 0 1.0 1.0\n# greenorbs-sim v1 nodes=3\nring 0 1\n"},
		{"pkt before header", "pkt 0 0 1:-50.0\n# greenorbs-sim v1 nodes=3\nring 0 1\n"},
		{"truncated final line", "# greenorbs-sim v1 nodes=3\nring 0 1\npkt 0 0 1:-50.0"},
		{"truncated header only", "# greenorbs-sim v1 nodes=3"},
		{"oversized record", "# greenorbs-sim v1 nodes=3\nring 0 1\npkt 0 0 " + strings.Repeat("1:-50.0 ", 1<<18) + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseLog(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("malformed log accepted")
			}
			if tc.name != "empty" && !errors.Is(err, ErrBadLog) {
				t.Fatalf("error not wrapped as ErrBadLog: %v", err)
			}
		})
	}
}

// TestParseLogTruncationDescriptive pins the torn-tail contract: a log cut
// mid-record must fail with a descriptive ErrBadLog error naming the
// truncation, not silently parse the surviving prefix (the silent-stop
// behaviour of the old Scanner-based reader).
func TestParseLogTruncationDescriptive(t *testing.T) {
	full := "# greenorbs-sim v1 nodes=3\nring 0 1\npkt 0 0 1:-50.0\npkt 0 1 0:-50.0\n"
	if _, err := ParseLog(strings.NewReader(full)); err != nil {
		t.Fatalf("intact log rejected: %v", err)
	}
	cut := full[:len(full)-3] // ends inside the last pkt record
	_, err := ParseLog(strings.NewReader(cut))
	if !errors.Is(err, ErrBadLog) {
		t.Fatalf("truncated log: err = %v, want ErrBadLog", err)
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("undescriptive truncation error: %v", err)
	}
}

func TestParseLogIgnoresBlankLines(t *testing.T) {
	in := "# greenorbs-sim v1 nodes=3\n\nring 0 1\n\npkt 0 0 1:-50.0\npkt 0 1 0:-50.0\n"
	tr, err := ParseLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.UndirectedEdges()) != 1 {
		t.Fatalf("edges = %d, want 1", len(tr.UndirectedEdges()))
	}
}
