package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dcc/internal/geom"
	"dcc/internal/graph"
)

// Packet-log format. The paper's pipeline starts from raw GreenOrbs packet
// logs; this file defines the equivalent textual log for the synthetic
// trace so the accumulate→threshold→extract pipeline can also run from a
// file, exactly as it would from a real deployment's data.
//
//	# greenorbs-sim v1 nodes=<total> interior=<interior> epochs=<epochs>
//	ring <id> <id> ...
//	pos <id> <x> <y>            (optional; simulation ground truth)
//	pkt <epoch> <src> <peer>:<rssi> <peer>:<rssi> ...
//
// RSSI values are dBm with one decimal. Unknown directives are rejected:
// a coverage deployment should fail loudly on malformed observations.

// logVersion is the current log format version string.
const logVersion = "greenorbs-sim v1"

// ErrBadLog is wrapped by all log-parsing errors.
var ErrBadLog = errors.New("trace: malformed packet log")

// GenerateWithLog is Generate that additionally streams every packet to w
// as it is produced.
func GenerateWithLog(cfg Config, w io.Writer) (*Trace, error) {
	cfg = cfg.ApplyDefaults()
	tr := generate(cfg, w)
	if tr.logErr != nil {
		return nil, tr.logErr
	}
	return tr, nil
}

// WriteHeader emits the log preamble for a trace (metadata, ring, node
// positions). Used by GenerateWithLog before the packet stream.
func writeHeader(w io.Writer, cfg Config, t *Trace) error {
	if _, err := fmt.Fprintf(w, "# %s nodes=%d interior=%d epochs=%d\n",
		logVersion, len(t.Pts), cfg.InteriorNodes, cfg.Epochs); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("ring")
	for _, v := range t.Ring {
		fmt.Fprintf(&b, " %d", v)
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for i, p := range t.Pts {
		if _, err := fmt.Fprintf(w, "pos %d %.3f %.3f\n", i, p.X, p.Y); err != nil {
			return err
		}
	}
	return nil
}

// ParseLog reconstructs a Trace from a packet log: records are accumulated
// exactly as Generate does in memory, so UndirectedEdges, thresholds and
// Network all work on the result.
func ParseLog(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	t := &Trace{
		rssiSum: make(map[[2]graph.NodeID]float64),
		rssiN:   make(map[[2]graph.NodeID]int),
	}
	total := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "#":
			rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if !strings.HasPrefix(rest, logVersion) {
				return nil, fmt.Errorf("%w: line %d: unsupported version %q", ErrBadLog, lineNo, rest)
			}
			for _, kv := range strings.Fields(strings.TrimPrefix(rest, logVersion)) {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("%w: line %d: bad header field %q", ErrBadLog, lineNo, kv)
				}
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrBadLog, lineNo, err)
				}
				switch k {
				case "nodes":
					total = n
					t.Pts = make([]geom.Point, n)
				case "interior", "epochs":
					// informational
				default:
					return nil, fmt.Errorf("%w: line %d: unknown header key %q", ErrBadLog, lineNo, k)
				}
			}
		case "ring":
			for _, f := range fields[1:] {
				id, err := parseID(f, total)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrBadLog, lineNo, err)
				}
				t.Ring = append(t.Ring, id)
			}
		case "pos":
			if len(fields) != 4 {
				return nil, fmt.Errorf("%w: line %d: pos needs 3 arguments", ErrBadLog, lineNo)
			}
			id, err := parseID(fields[1], total)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadLog, lineNo, err)
			}
			x, errX := strconv.ParseFloat(fields[2], 64)
			y, errY := strconv.ParseFloat(fields[3], 64)
			if errX != nil || errY != nil {
				return nil, fmt.Errorf("%w: line %d: bad coordinates", ErrBadLog, lineNo)
			}
			if int(id) < len(t.Pts) {
				t.Pts[id] = geom.Point{X: x, Y: y}
			}
		case "pkt":
			if len(fields) < 3 {
				return nil, fmt.Errorf("%w: line %d: pkt needs epoch and source", ErrBadLog, lineNo)
			}
			if _, err := strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("%w: line %d: bad epoch: %v", ErrBadLog, lineNo, err)
			}
			src, err := parseID(fields[2], total)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadLog, lineNo, err)
			}
			for _, rec := range fields[3:] {
				peerStr, rssiStr, ok := strings.Cut(rec, ":")
				if !ok {
					return nil, fmt.Errorf("%w: line %d: bad record %q", ErrBadLog, lineNo, rec)
				}
				peer, err := parseID(peerStr, total)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrBadLog, lineNo, err)
				}
				rssi, err := strconv.ParseFloat(rssiStr, 64)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: bad rssi %q", ErrBadLog, lineNo, rssiStr)
				}
				key := [2]graph.NodeID{src, peer}
				t.rssiSum[key] += rssi
				t.rssiN[key]++
			}
		default:
			return nil, fmt.Errorf("%w: line %d: unknown directive %q", ErrBadLog, lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read log: %w", err)
	}
	if total < 0 {
		return nil, fmt.Errorf("%w: missing header", ErrBadLog)
	}
	if len(t.Ring) == 0 {
		return nil, fmt.Errorf("%w: missing ring", ErrBadLog)
	}
	return t, nil
}

func parseID(s string, total int) (graph.NodeID, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad node id %q: %v", s, err)
	}
	if n < 0 || (total >= 0 && n >= total) {
		return 0, fmt.Errorf("node id %d out of range [0,%d)", n, total)
	}
	return graph.NodeID(n), nil
}
